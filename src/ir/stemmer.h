// Porter stemming algorithm (M.F. Porter, 1980), the classic suffix
// stripper used throughout the distributed-IR literature the paper builds
// on (CORI, GlOSS). Reduces inflected English words to a common stem so
// "connections", "connected", and "connecting" all index as "connect".

#ifndef IQN_IR_STEMMER_H_
#define IQN_IR_STEMMER_H_

#include <string>
#include <string_view>

namespace iqn {

/// Stateless; all methods are const and thread-compatible.
class PorterStemmer {
 public:
  /// Returns the stem of `word`. The input must be lowercase ASCII;
  /// non-alphabetic input is returned unchanged. Words of length <= 2 are
  /// never stemmed (per the original algorithm).
  std::string Stem(std::string_view word) const;
};

}  // namespace iqn

#endif  // IQN_IR_STEMMER_H_

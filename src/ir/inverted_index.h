// Local inverted index: the per-peer <term, docId, score> lists the paper
// assumes every peer maintains (Sec. 1.2), plus the collection statistics
// CORI and the directory Posts are computed from.

#ifndef IQN_IR_INVERTED_INDEX_H_
#define IQN_IR_INVERTED_INDEX_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ir/corpus.h"
#include "ir/scoring.h"
#include "synopses/synopsis.h"
#include "util/status.h"

namespace iqn {

struct Posting {
  DocId doc = 0;
  double score = 0.0;
};

class InvertedIndex {
 public:
  /// An empty index (no documents); assign from Build() to populate.
  InvertedIndex() = default;

  /// Indexes the corpus: one posting per distinct (term, doc) pair,
  /// scored by `model`, each list sorted by descending score (ties by
  /// ascending docId for determinism).
  static InvertedIndex Build(const Corpus& corpus,
                             const ScoringModel& model = {});

  /// Postings for a term, or nullptr if the term is not in the index.
  const std::vector<Posting>* postings(const std::string& term) const;

  /// Document frequency of a term (its index list length); 0 if absent.
  uint64_t DocumentFrequency(const std::string& term) const;

  /// Highest / mean score within a term's list (0 if absent). These are
  /// the per-term statistics included in directory Posts.
  double MaxScore(const std::string& term) const;
  double AvgScore(const std::string& term) const;

  /// DocIds of a term's list (the set a synopsis summarizes).
  std::vector<DocId> DocIdsFor(const std::string& term) const;

  /// Scores of a term's list normalized into (0, 1] by the list maximum
  /// (input to the histogram synopses of Sec. 7.1), aligned with
  /// DocIdsFor order.
  std::vector<double> NormalizedScoresFor(const std::string& term) const;

  /// Approximate bytes held by the index payload (term strings plus
  /// posting arrays) — the number a peer charges to the ir.postings
  /// memory tracker. Deterministic for a given corpus.
  int64_t ApproxMemoryBytes() const;

  /// Number of distinct terms (|V_i| in CORI's T component).
  size_t NumTerms() const { return lists_.size(); }
  uint64_t NumDocuments() const { return num_documents_; }
  double AverageDocumentLength() const { return avg_doc_length_; }

  /// Iteration over the vocabulary, in lexicographic order.
  const std::map<std::string, std::vector<Posting>>& lists() const {
    return lists_;
  }

 private:
  std::map<std::string, std::vector<Posting>> lists_;
  uint64_t num_documents_ = 0;
  double avg_doc_length_ = 0.0;
};

}  // namespace iqn

#endif  // IQN_IR_INVERTED_INDEX_H_

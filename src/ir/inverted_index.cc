#include "ir/inverted_index.h"

#include <algorithm>
#include <unordered_map>

namespace iqn {

InvertedIndex InvertedIndex::Build(const Corpus& corpus,
                                   const ScoringModel& model) {
  InvertedIndex index;
  index.num_documents_ = corpus.size();
  index.avg_doc_length_ = corpus.AverageDocumentLength();

  // Pass 1: term frequencies per document and document frequencies.
  struct TermDoc {
    DocId doc;
    uint64_t tf;
    size_t doc_length;
  };
  std::unordered_map<std::string, std::vector<TermDoc>> raw;
  for (const auto& doc : corpus.docs()) {
    std::unordered_map<std::string, uint64_t> tf;
    for (const auto& term : doc.terms) ++tf[term];
    for (const auto& [term, freq] : tf) {
      raw[term].push_back(TermDoc{doc.id, freq, doc.terms.size()});
    }
  }

  // Pass 2: score and sort each list.
  for (auto& [term, entries] : raw) {
    uint64_t df = entries.size();
    std::vector<Posting> list;
    list.reserve(entries.size());
    for (const TermDoc& e : entries) {
      double score = Score(model, e.tf, df, index.num_documents_,
                           e.doc_length, index.avg_doc_length_);
      list.push_back(Posting{e.doc, score});
    }
    std::sort(list.begin(), list.end(), [](const Posting& a, const Posting& b) {
      if (a.score != b.score) return a.score > b.score;
      return a.doc < b.doc;
    });
    index.lists_.emplace(term, std::move(list));
  }
  return index;
}

const std::vector<Posting>* InvertedIndex::postings(
    const std::string& term) const {
  auto it = lists_.find(term);
  return it == lists_.end() ? nullptr : &it->second;
}

uint64_t InvertedIndex::DocumentFrequency(const std::string& term) const {
  const auto* list = postings(term);
  return list == nullptr ? 0 : list->size();
}

double InvertedIndex::MaxScore(const std::string& term) const {
  const auto* list = postings(term);
  return (list == nullptr || list->empty()) ? 0.0 : list->front().score;
}

double InvertedIndex::AvgScore(const std::string& term) const {
  const auto* list = postings(term);
  if (list == nullptr || list->empty()) return 0.0;
  double sum = 0.0;
  for (const Posting& p : *list) sum += p.score;
  return sum / static_cast<double>(list->size());
}

std::vector<DocId> InvertedIndex::DocIdsFor(const std::string& term) const {
  std::vector<DocId> ids;
  const auto* list = postings(term);
  if (list == nullptr) return ids;
  ids.reserve(list->size());
  for (const Posting& p : *list) ids.push_back(p.doc);
  return ids;
}

int64_t InvertedIndex::ApproxMemoryBytes() const {
  int64_t bytes = 0;
  for (const auto& [term, list] : lists_) {
    bytes += static_cast<int64_t>(term.size() +
                                  list.size() * sizeof(Posting));
  }
  return bytes;
}

std::vector<double> InvertedIndex::NormalizedScoresFor(
    const std::string& term) const {
  std::vector<double> scores;
  const auto* list = postings(term);
  if (list == nullptr || list->empty()) return scores;
  double max = list->front().score;
  scores.reserve(list->size());
  for (const Posting& p : *list) {
    scores.push_back(max > 0.0 ? p.score / max : 0.0);
  }
  return scores;
}

}  // namespace iqn

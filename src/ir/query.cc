#include "ir/query.h"

#include <sstream>
#include <unordered_set>

namespace iqn {

std::string Query::ToString() const {
  std::ostringstream os;
  os << (mode == QueryMode::kConjunctive ? "AND(" : "OR(");
  for (size_t i = 0; i < terms.size(); ++i) {
    if (i > 0) os << ", ";
    os << terms[i];
  }
  os << ") top-" << k;
  return os.str();
}

Query ParseQuery(const std::string& text, const Tokenizer& tokenizer,
                 QueryMode mode, size_t k) {
  Query query;
  query.mode = mode;
  query.k = k;
  std::unordered_set<std::string> seen;
  for (auto& term : tokenizer.Tokenize(text)) {
    if (seen.insert(term).second) {
      query.terms.push_back(std::move(term));
    }
  }
  return query;
}

}  // namespace iqn

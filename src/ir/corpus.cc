#include "ir/corpus.h"

namespace iqn {

Status Corpus::AddDocumentText(DocId id, std::string_view text,
                               const Tokenizer& tokenizer) {
  return AddDocumentTerms(id, tokenizer.Tokenize(text));
}

Status Corpus::AddDocumentTerms(DocId id, std::vector<std::string> terms) {
  if (!ids_.insert(id).second) {
    return Status::InvalidArgument("duplicate docId " + std::to_string(id));
  }
  docs_.push_back(DocTerms{id, std::move(terms)});
  return Status::OK();
}

double Corpus::AverageDocumentLength() const {
  if (docs_.empty()) return 0.0;
  size_t total = 0;
  for (const auto& d : docs_) total += d.terms.size();
  return static_cast<double>(total) / static_cast<double>(docs_.size());
}

void Corpus::Merge(const Corpus& other) {
  for (const auto& d : other.docs_) {
    if (ids_.insert(d.id).second) {
      docs_.push_back(d);
    }
  }
}

}  // namespace iqn

#include "ir/top_k.h"

#include <algorithm>
#include <unordered_map>

#include "util/hash.h"

namespace iqn {

namespace {

void SortAndTruncate(std::vector<ScoredDoc>* results, size_t k) {
  // Ties are broken by a fixed hash of the docId, not by the id itself:
  // tf-idf scores are highly discrete, and id-ordered ties would
  // systematically privilege old (low-id) documents — newly crawled
  // documents could then never enter a top-k. Hashing keeps the order
  // deterministic but id-neutral.
  std::sort(results->begin(), results->end(),
            [](const ScoredDoc& a, const ScoredDoc& b) {
              if (a.score != b.score) return a.score > b.score;
              uint64_t ha = Hash64(a.doc, /*seed=*/0x7469656272656b31ULL);
              uint64_t hb = Hash64(b.doc, /*seed=*/0x7469656272656b31ULL);
              if (ha != hb) return ha < hb;
              return a.doc < b.doc;
            });
  if (results->size() > k) results->resize(k);
}

}  // namespace

std::vector<ScoredDoc> ExecuteQuery(const InvertedIndex& index,
                                    const Query& query) {
  std::vector<ScoredDoc> results;
  if (query.terms.empty()) return results;

  // Accumulate score and matched-term count per document.
  std::unordered_map<DocId, std::pair<double, size_t>> acc;
  for (const auto& term : query.terms) {
    const std::vector<Posting>* list = index.postings(term);
    if (list == nullptr) {
      if (query.mode == QueryMode::kConjunctive) return results;  // no hit
      continue;
    }
    for (const Posting& p : *list) {
      auto& entry = acc[p.doc];
      entry.first += p.score;
      entry.second += 1;
    }
  }

  for (const auto& [doc, entry] : acc) {
    if (query.mode == QueryMode::kConjunctive &&
        entry.second != query.terms.size()) {
      continue;
    }
    results.push_back(ScoredDoc{doc, entry.first});
  }
  SortAndTruncate(&results, query.k);
  return results;
}

std::vector<ScoredDoc> MergeResults(
    const std::vector<std::vector<ScoredDoc>>& per_peer_results, size_t k) {
  std::unordered_map<DocId, double> best;
  for (const auto& peer_results : per_peer_results) {
    for (const ScoredDoc& sd : peer_results) {
      auto it = best.find(sd.doc);
      if (it == best.end() || sd.score > it->second) {
        best[sd.doc] = sd.score;
      }
    }
  }
  std::vector<ScoredDoc> merged;
  merged.reserve(best.size());
  for (const auto& [doc, score] : best) merged.push_back(ScoredDoc{doc, score});
  SortAndTruncate(&merged, k);
  return merged;
}

}  // namespace iqn

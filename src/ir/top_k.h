// Local query execution: evaluates a Query against an InvertedIndex and
// returns the top-k scored documents. This is both what each contacted
// peer runs on its own collection and (over the full corpus) the
// centralized reference engine that relative recall is measured against
// (paper Sec. 8.1).

#ifndef IQN_IR_TOP_K_H_
#define IQN_IR_TOP_K_H_

#include <vector>

#include "ir/inverted_index.h"
#include "ir/query.h"

namespace iqn {

struct ScoredDoc {
  DocId doc = 0;
  double score = 0.0;

  bool operator==(const ScoredDoc& other) const {
    return doc == other.doc && score == other.score;
  }
};

/// Top-k execution. Disjunctive: score = sum of per-term scores over the
/// terms the document matches. Conjunctive: documents must appear in
/// every term's list; score = sum over all terms. Results are sorted by
/// descending score, ties broken by ascending docId.
std::vector<ScoredDoc> ExecuteQuery(const InvertedIndex& index,
                                    const Query& query);

/// Merges per-peer result lists into one global top-k (by score, dedup by
/// docId keeping the best score) — the result-merging step of the P2P
/// query processor.
std::vector<ScoredDoc> MergeResults(
    const std::vector<std::vector<ScoredDoc>>& per_peer_results, size_t k);

}  // namespace iqn

#endif  // IQN_IR_TOP_K_H_

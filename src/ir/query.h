// Query model: multi-keyword queries with conjunctive or disjunctive
// semantics (paper Sec. 6.1), requesting the top-k results.

#ifndef IQN_IR_QUERY_H_
#define IQN_IR_QUERY_H_

#include <cstddef>
#include <string>
#include <vector>

#include "ir/tokenizer.h"

namespace iqn {

enum class QueryMode {
  /// Documents must contain every term (Web-search default).
  kConjunctive,
  /// Documents containing any term qualify; more matching terms score
  /// higher (query-expansion / analytics workloads).
  kDisjunctive,
};

struct Query {
  std::vector<std::string> terms;
  QueryMode mode = QueryMode::kDisjunctive;
  size_t k = 10;

  std::string ToString() const;
};

/// Builds a query by running `text` through the same analysis chain as
/// indexing (so query terms match index terms), de-duplicating terms.
Query ParseQuery(const std::string& text, const Tokenizer& tokenizer,
                 QueryMode mode = QueryMode::kDisjunctive, size_t k = 10);

}  // namespace iqn

#endif  // IQN_IR_QUERY_H_

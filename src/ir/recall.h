// Evaluation measures for the paper's experiments (Sec. 8.1): relative
// recall against a centralized reference engine, plus duplicate-waste
// statistics that motivate novelty-aware routing in the first place.

#ifndef IQN_IR_RECALL_H_
#define IQN_IR_RECALL_H_

#include <vector>

#include "ir/top_k.h"

namespace iqn {

/// Fraction of `reference` docIds present in `results` ("a recall of x %
/// means the P2P system found x % of what the centralized engine found").
/// 1.0 when the reference is empty.
double RelativeRecall(const std::vector<ScoredDoc>& results,
                      const std::vector<ScoredDoc>& reference);

/// Fraction of retrieved documents (over all peers' raw result lists,
/// before merging) that are duplicates of a document some other peer
/// already returned — the redundancy IQN exists to avoid.
double DuplicateFraction(
    const std::vector<std::vector<ScoredDoc>>& per_peer_results);

/// Number of distinct documents across all per-peer result lists.
size_t DistinctResultCount(
    const std::vector<std::vector<ScoredDoc>>& per_peer_results);

}  // namespace iqn

#endif  // IQN_IR_RECALL_H_

// Text tokenization for the IR substrate: lowercasing, splitting on
// non-alphanumeric characters, stopword removal, and optional Porter
// stemming. This is the analysis chain each MINERVA peer runs over its
// crawled documents before indexing.

#ifndef IQN_IR_TOKENIZER_H_
#define IQN_IR_TOKENIZER_H_

#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

namespace iqn {

struct TokenizerOptions {
  bool lowercase = true;
  bool remove_stopwords = true;
  bool stem = true;
  /// Tokens shorter than this are dropped (after stemming).
  size_t min_token_length = 2;
  /// Tokens longer than this are truncated (guards against binary junk).
  size_t max_token_length = 40;
};

class Tokenizer {
 public:
  explicit Tokenizer(TokenizerOptions options = {});

  /// Splits `text` into index terms under the configured chain.
  std::vector<std::string> Tokenize(std::string_view text) const;

  /// True if `word` (already lowercase) is a stopword.
  bool IsStopword(const std::string& word) const;

  const TokenizerOptions& options() const { return options_; }

 private:
  TokenizerOptions options_;
  std::unordered_set<std::string> stopwords_;
};

}  // namespace iqn

#endif  // IQN_IR_TOKENIZER_H_

// Relevance scoring models for local index lists.
//
// Each peer scores <term, docId> entries with a local IR measure (paper
// Sec. 5.1 mentions tf*idf and language-model scores); the scores feed the
// local top-k execution, the CORI statistics posted to the directory, and
// the score histograms of Sec. 7.1.

#ifndef IQN_IR_SCORING_H_
#define IQN_IR_SCORING_H_

#include <cstddef>
#include <cstdint>

namespace iqn {

enum class ScoringFunction {
  kTfIdf,
  kBm25,
};

struct ScoringModel {
  ScoringFunction function = ScoringFunction::kTfIdf;
  // BM25 parameters (ignored by tf-idf).
  double bm25_k1 = 1.2;
  double bm25_b = 0.75;
};

/// Classic log-scaled tf*idf:
///   (1 + ln(tf)) * ln(1 + N/df).
double TfIdfScore(uint64_t term_frequency, uint64_t document_frequency,
                  uint64_t num_documents);

/// Okapi BM25 with the standard plus-0.5 idf smoothing.
double Bm25Score(uint64_t term_frequency, uint64_t document_frequency,
                 uint64_t num_documents, size_t document_length,
                 double average_document_length, double k1, double b);

/// Applies the configured model.
double Score(const ScoringModel& model, uint64_t term_frequency,
             uint64_t document_frequency, uint64_t num_documents,
             size_t document_length, double average_document_length);

}  // namespace iqn

#endif  // IQN_IR_SCORING_H_

#include "ir/stemmer.h"

#include <cctype>

namespace iqn {

namespace {

// Working buffer for one stemming run. Implements the five steps of the
// original Porter algorithm; `b` is the word, `k` the index of its last
// character, `j` a general offset set by the condition helpers. Indices
// are signed, as in Porter's reference implementation: several rules
// legitimately drive them to -1.
class Run {
 public:
  explicit Run(std::string_view word)
      : b_(word), k_(static_cast<long>(word.size()) - 1) {}

  std::string Finish() { return b_.substr(0, static_cast<size_t>(k_ + 1)); }

  void Step1a();
  void Step1b();
  void Step1c();
  void Step2();
  void Step3();
  void Step4();
  void Step5();

 private:
  bool IsConsonant(long i) const {
    char c = b_[static_cast<size_t>(i)];
    switch (c) {
      case 'a':
      case 'e':
      case 'i':
      case 'o':
      case 'u':
        return false;
      case 'y':
        return i == 0 ? true : !IsConsonant(i - 1);
      default:
        return true;
    }
  }

  /// m() measures the number of consonant-vowel sequences in b[0..j].
  int Measure() const {
    int n = 0;
    long i = 0;
    while (true) {
      if (i > j_) return n;
      if (!IsConsonant(i)) break;
      ++i;
    }
    ++i;
    while (true) {
      while (true) {
        if (i > j_) return n;
        if (IsConsonant(i)) break;
        ++i;
      }
      ++i;
      ++n;
      while (true) {
        if (i > j_) return n;
        if (!IsConsonant(i)) break;
        ++i;
      }
      ++i;
    }
  }

  /// True if b[0..j] contains a vowel.
  bool VowelInStem() const {
    for (long i = 0; i <= j_; ++i) {
      if (!IsConsonant(i)) return true;
    }
    return false;
  }

  /// True if b[i-1..i] is a double consonant.
  bool DoubleConsonant(long i) const {
    if (i < 1) return false;
    if (b_[static_cast<size_t>(i)] != b_[static_cast<size_t>(i - 1)]) {
      return false;
    }
    return IsConsonant(i);
  }

  /// cvc(i): b[i-2..i] is consonant-vowel-consonant and the final
  /// consonant is not w, x, or y (triggers the "-e restore" rules).
  bool Cvc(long i) const {
    if (i < 2 || !IsConsonant(i) || IsConsonant(i - 1) || !IsConsonant(i - 2)) {
      return false;
    }
    char c = b_[static_cast<size_t>(i)];
    return c != 'w' && c != 'x' && c != 'y';
  }

  /// True if the word ends with `s` (within b[0..k]); sets j_ to the
  /// offset just before the suffix.
  bool Ends(std::string_view s) {
    long len = static_cast<long>(s.size());
    if (len > k_ + 1) return false;
    if (b_.compare(static_cast<size_t>(k_ + 1 - len), s.size(), s) != 0) {
      return false;
    }
    j_ = k_ - len;
    return true;
  }

  /// Replaces the suffix matched by Ends with `s`.
  void SetTo(std::string_view s) {
    b_ = b_.substr(0, static_cast<size_t>(j_ + 1)) + std::string(s);
    k_ = static_cast<long>(b_.size()) - 1;
  }

  /// SetTo if m() > 0.
  void ReplaceIfMeasure(std::string_view s) {
    if (Measure() > 0) SetTo(s);
  }

  char At(long i) const { return b_[static_cast<size_t>(i)]; }

  std::string b_;
  long k_;
  long j_ = 0;
};

// Step 1a: plurals. SSES -> SS, IES -> I, SS -> SS, S -> "".
void Run::Step1a() {
  if (At(k_) != 's') return;
  if (Ends("sses")) {
    k_ -= 2;
  } else if (Ends("ies")) {
    SetTo("i");
  } else if (k_ >= 1 && At(k_ - 1) != 's') {
    --k_;
  }
}

// Step 1b: -eed, -ed, -ing.
void Run::Step1b() {
  bool restore = false;
  if (Ends("eed")) {
    if (Measure() > 0) --k_;
  } else if (Ends("ed")) {
    if (VowelInStem()) {
      k_ = j_;
      restore = true;
    }
  } else if (Ends("ing")) {
    if (VowelInStem()) {
      k_ = j_;
      restore = true;
    }
  }
  if (restore && k_ >= 0) {
    if (Ends("at")) {
      SetTo("ate");
    } else if (Ends("bl")) {
      SetTo("ble");
    } else if (Ends("iz")) {
      SetTo("ize");
    } else if (DoubleConsonant(k_)) {
      char c = At(k_);
      if (c != 'l' && c != 's' && c != 'z') --k_;
    } else {
      j_ = k_;
      if (Measure() == 1 && Cvc(k_)) {
        b_ = b_.substr(0, static_cast<size_t>(k_ + 1)) + "e";
        k_ = static_cast<long>(b_.size()) - 1;
      }
    }
  }
}

// Step 1c: terminal y -> i when there is a vowel in the stem.
void Run::Step1c() {
  if (Ends("y") && VowelInStem()) b_[static_cast<size_t>(k_)] = 'i';
}

// Step 2: double suffixes, e.g. -ational -> -ate (when m > 0).
void Run::Step2() {
  if (k_ < 2) return;
  switch (At(k_ - 1)) {
    case 'a':
      if (Ends("ational")) { ReplaceIfMeasure("ate"); return; }
      if (Ends("tional")) { ReplaceIfMeasure("tion"); return; }
      return;
    case 'c':
      if (Ends("enci")) { ReplaceIfMeasure("ence"); return; }
      if (Ends("anci")) { ReplaceIfMeasure("ance"); return; }
      return;
    case 'e':
      if (Ends("izer")) { ReplaceIfMeasure("ize"); return; }
      return;
    case 'l':
      if (Ends("abli")) { ReplaceIfMeasure("able"); return; }
      if (Ends("alli")) { ReplaceIfMeasure("al"); return; }
      if (Ends("entli")) { ReplaceIfMeasure("ent"); return; }
      if (Ends("eli")) { ReplaceIfMeasure("e"); return; }
      if (Ends("ousli")) { ReplaceIfMeasure("ous"); return; }
      return;
    case 'o':
      if (Ends("ization")) { ReplaceIfMeasure("ize"); return; }
      if (Ends("ation")) { ReplaceIfMeasure("ate"); return; }
      if (Ends("ator")) { ReplaceIfMeasure("ate"); return; }
      return;
    case 's':
      if (Ends("alism")) { ReplaceIfMeasure("al"); return; }
      if (Ends("iveness")) { ReplaceIfMeasure("ive"); return; }
      if (Ends("fulness")) { ReplaceIfMeasure("ful"); return; }
      if (Ends("ousness")) { ReplaceIfMeasure("ous"); return; }
      return;
    case 't':
      if (Ends("aliti")) { ReplaceIfMeasure("al"); return; }
      if (Ends("iviti")) { ReplaceIfMeasure("ive"); return; }
      if (Ends("biliti")) { ReplaceIfMeasure("ble"); return; }
      return;
    default:
      return;
  }
}

// Step 3: -icate, -ative, -alize, etc.
void Run::Step3() {
  switch (At(k_)) {
    case 'e':
      if (Ends("icate")) { ReplaceIfMeasure("ic"); return; }
      if (Ends("ative")) { ReplaceIfMeasure(""); return; }
      if (Ends("alize")) { ReplaceIfMeasure("al"); return; }
      return;
    case 'i':
      if (Ends("iciti")) { ReplaceIfMeasure("ic"); return; }
      return;
    case 'l':
      if (Ends("ical")) { ReplaceIfMeasure("ic"); return; }
      if (Ends("ful")) { ReplaceIfMeasure(""); return; }
      return;
    case 's':
      if (Ends("ness")) { ReplaceIfMeasure(""); return; }
      return;
    default:
      return;
  }
}

// Step 4: strip -ant, -ence, ... when m > 1.
void Run::Step4() {
  if (k_ < 1) return;
  switch (At(k_ - 1)) {
    case 'a':
      if (Ends("al")) break;
      return;
    case 'c':
      if (Ends("ance")) break;
      if (Ends("ence")) break;
      return;
    case 'e':
      if (Ends("er")) break;
      return;
    case 'i':
      if (Ends("ic")) break;
      return;
    case 'l':
      if (Ends("able")) break;
      if (Ends("ible")) break;
      return;
    case 'n':
      if (Ends("ant")) break;
      if (Ends("ement")) break;
      if (Ends("ment")) break;
      if (Ends("ent")) break;
      return;
    case 'o':
      if (Ends("ion") && j_ >= 0 && (At(j_) == 's' || At(j_) == 't')) break;
      if (Ends("ou")) break;
      return;
    case 's':
      if (Ends("ism")) break;
      return;
    case 't':
      if (Ends("ate")) break;
      if (Ends("iti")) break;
      return;
    case 'u':
      if (Ends("ous")) break;
      return;
    case 'v':
      if (Ends("ive")) break;
      return;
    case 'z':
      if (Ends("ize")) break;
      return;
    default:
      return;
  }
  if (Measure() > 1) k_ = j_;
}

// Step 5: remove final -e (m > 1, or m == 1 and not cvc) and collapse -ll.
void Run::Step5() {
  j_ = k_;
  if (At(k_) == 'e') {
    int m = Measure();
    if (m > 1 || (m == 1 && !Cvc(k_ - 1))) --k_;
  }
  if (At(k_) == 'l' && DoubleConsonant(k_) && Measure() > 1) --k_;
}

}  // namespace

std::string PorterStemmer::Stem(std::string_view word) const {
  if (word.size() <= 2) return std::string(word);
  for (char c : word) {
    if (!std::islower(static_cast<unsigned char>(c))) {
      return std::string(word);  // only lowercase ASCII is stemmable
    }
  }
  Run run(word);
  run.Step1a();
  run.Step1b();
  run.Step1c();
  run.Step2();
  run.Step3();
  run.Step4();
  run.Step5();
  return run.Finish();
}

}  // namespace iqn

#include "ir/tokenizer.h"

#include <cctype>

#include "ir/stemmer.h"

namespace iqn {

namespace {

// A compact English stopword list (the usual suspects from the SMART
// list); enough to keep function words out of the synthetic index.
const char* const kStopwords[] = {
    "a",     "about", "above", "after", "again", "all",   "also",  "an",
    "and",   "any",   "are",   "as",    "at",    "be",    "been",  "before",
    "being", "below", "between", "both", "but",  "by",    "can",   "could",
    "did",   "do",    "does",  "doing", "down",  "during", "each", "few",
    "for",   "from",  "further", "had", "has",   "have",  "having", "he",
    "her",   "here",  "hers",  "him",   "his",   "how",   "i",     "if",
    "in",    "into",  "is",    "it",    "its",   "just",  "me",    "more",
    "most",  "my",    "no",    "nor",   "not",   "now",   "of",    "off",
    "on",    "once",  "only",  "or",    "other", "our",   "ours",  "out",
    "over",  "own",   "same",  "she",   "should", "so",   "some",  "such",
    "than",  "that",  "the",   "their", "theirs", "them", "then",  "there",
    "these", "they",  "this",  "those", "through", "to",  "too",   "under",
    "until", "up",    "very",  "was",   "we",    "were",  "what",  "when",
    "where", "which", "while", "who",   "whom",  "why",   "will",  "with",
    "would", "you",   "your",  "yours",
};

const PorterStemmer& SharedStemmer() {
  static const PorterStemmer stemmer;
  return stemmer;
}

}  // namespace

Tokenizer::Tokenizer(TokenizerOptions options) : options_(options) {
  if (options_.remove_stopwords) {
    for (const char* w : kStopwords) stopwords_.insert(w);
  }
}

bool Tokenizer::IsStopword(const std::string& word) const {
  return stopwords_.count(word) > 0;
}

std::vector<std::string> Tokenizer::Tokenize(std::string_view text) const {
  std::vector<std::string> terms;
  std::string current;
  auto flush = [&]() {
    if (current.empty()) return;
    if (current.size() > options_.max_token_length) {
      current.resize(options_.max_token_length);
    }
    if (options_.remove_stopwords && IsStopword(current)) {
      current.clear();
      return;
    }
    std::string term =
        options_.stem ? SharedStemmer().Stem(current) : current;
    if (term.size() >= options_.min_token_length) {
      terms.push_back(std::move(term));
    }
    current.clear();
  };

  for (char raw : text) {
    unsigned char c = static_cast<unsigned char>(raw);
    if (std::isalnum(c)) {
      current.push_back(
          options_.lowercase ? static_cast<char>(std::tolower(c)) : raw);
    } else {
      flush();
    }
  }
  flush();
  return terms;
}

}  // namespace iqn

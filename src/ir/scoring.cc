#include "ir/scoring.h"

#include <algorithm>
#include <cmath>

namespace iqn {

double TfIdfScore(uint64_t term_frequency, uint64_t document_frequency,
                  uint64_t num_documents) {
  if (term_frequency == 0 || document_frequency == 0) return 0.0;
  double tf = 1.0 + std::log(static_cast<double>(term_frequency));
  double idf = std::log(1.0 + static_cast<double>(num_documents) /
                                  static_cast<double>(document_frequency));
  return tf * idf;
}

double Bm25Score(uint64_t term_frequency, uint64_t document_frequency,
                 uint64_t num_documents, size_t document_length,
                 double average_document_length, double k1, double b) {
  if (term_frequency == 0 || document_frequency == 0) return 0.0;
  double idf = std::log(
      1.0 + (static_cast<double>(num_documents) -
             static_cast<double>(document_frequency) + 0.5) /
                (static_cast<double>(document_frequency) + 0.5));
  double dl_norm =
      average_document_length > 0.0
          ? static_cast<double>(document_length) / average_document_length
          : 1.0;
  double tf = static_cast<double>(term_frequency);
  double denom = tf + k1 * (1.0 - b + b * dl_norm);
  return idf * tf * (k1 + 1.0) / denom;
}

double Score(const ScoringModel& model, uint64_t term_frequency,
             uint64_t document_frequency, uint64_t num_documents,
             size_t document_length, double average_document_length) {
  switch (model.function) {
    case ScoringFunction::kTfIdf:
      return TfIdfScore(term_frequency, document_frequency, num_documents);
    case ScoringFunction::kBm25:
      return Bm25Score(term_frequency, document_frequency, num_documents,
                       document_length, average_document_length,
                       model.bm25_k1, model.bm25_b);
  }
  return 0.0;
}

}  // namespace iqn

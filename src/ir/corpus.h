// Document collections.
//
// A Corpus is the bag-of-terms view of a peer's crawl (or of the global
// reference collection). Documents carry *global* DocIds — in a P2P crawl
// the same popular page is fetched by many peers and must be recognized
// as the same document everywhere, which is exactly what the synopses
// estimate overlap over.

#ifndef IQN_IR_CORPUS_H_
#define IQN_IR_CORPUS_H_

#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "ir/tokenizer.h"
#include "synopses/synopsis.h"
#include "util/status.h"

namespace iqn {

struct DocTerms {
  DocId id = 0;
  std::vector<std::string> terms;  // analysis-chain output, duplicates kept
};

class Corpus {
 public:
  Corpus() = default;

  /// Runs `text` through the tokenizer and appends the document.
  /// Rejects duplicate DocIds.
  Status AddDocumentText(DocId id, std::string_view text,
                         const Tokenizer& tokenizer);

  /// Appends a pre-analyzed document (the synthetic generator's path).
  Status AddDocumentTerms(DocId id, std::vector<std::string> terms);

  size_t size() const { return docs_.size(); }
  bool empty() const { return docs_.empty(); }
  const DocTerms& doc(size_t i) const { return docs_[i]; }
  const std::vector<DocTerms>& docs() const { return docs_; }

  bool ContainsDoc(DocId id) const { return ids_.count(id) > 0; }

  /// Average number of terms per document (0 for an empty corpus).
  double AverageDocumentLength() const;

  /// Folds another corpus in; documents already present are kept once
  /// (peer collections are unions of crawled fragments).
  void Merge(const Corpus& other);

 private:
  std::vector<DocTerms> docs_;
  std::unordered_set<DocId> ids_;
};

}  // namespace iqn

#endif  // IQN_IR_CORPUS_H_

#include "ir/recall.h"

#include <unordered_set>

namespace iqn {

double RelativeRecall(const std::vector<ScoredDoc>& results,
                      const std::vector<ScoredDoc>& reference) {
  if (reference.empty()) return 1.0;
  std::unordered_set<DocId> got;
  got.reserve(results.size());
  for (const ScoredDoc& sd : results) got.insert(sd.doc);
  size_t hit = 0;
  for (const ScoredDoc& ref : reference) {
    if (got.count(ref.doc)) ++hit;
  }
  return static_cast<double>(hit) / static_cast<double>(reference.size());
}

double DuplicateFraction(
    const std::vector<std::vector<ScoredDoc>>& per_peer_results) {
  size_t total = 0;
  std::unordered_set<DocId> distinct;
  for (const auto& peer : per_peer_results) {
    total += peer.size();
    for (const ScoredDoc& sd : peer) distinct.insert(sd.doc);
  }
  if (total == 0) return 0.0;
  return static_cast<double>(total - distinct.size()) /
         static_cast<double>(total);
}

size_t DistinctResultCount(
    const std::vector<std::vector<ScoredDoc>>& per_peer_results) {
  std::unordered_set<DocId> distinct;
  for (const auto& peer : per_peer_results) {
    for (const ScoredDoc& sd : peer) distinct.insert(sd.doc);
  }
  return distinct.size();
}

}  // namespace iqn

// Distributed top-k aggregation over DHT-partitioned scored lists —
// the "top-k peers over ALL lists, calculated by a distributed top-k
// algorithm like [KLEE]" that paper Sec. 4 prescribes for PeerList
// retrieval.
//
// The lists for different keys (query terms) live on different Chord
// owners; the goal is the k subkeys (peers) with the highest TOTAL score
// across all keys, without shipping any complete list. This implements
// the classic three-phase threshold algorithm (TPUT, Cao & Wang,
// PODC 2004 — the paper's ref. [14], which KLEE refines):
//
//   Phase 1  fetch each list's local top-k; tau1 = k-th best partial sum.
//   Phase 2  fetch from each list every entry scoring >= tau1 / m
//            (m = number of lists). Any subkey whose total could reach
//            the new threshold tau2 must now be partially visible.
//   Phase 3  fetch the exact missing scores of the surviving candidates
//            and return the true top-k.
//
// The result is exact (equal to the brute-force union ranking) while
// transferring only list heads — the property the tests verify.

#ifndef IQN_DHT_DISTRIBUTED_TOPK_H_
#define IQN_DHT_DISTRIBUTED_TOPK_H_

#include <string>
#include <vector>

#include "dht/kv_store.h"
#include "util/status.h"

namespace iqn {

struct TopKResult {
  /// The k best subkeys with their exact total scores, best first.
  std::vector<DhtStore::ScoredSubkey> best;
  /// Diagnostics: entries shipped in each phase (the bandwidth story).
  size_t phase1_entries = 0;
  size_t phase2_entries = 0;
  size_t phase3_candidates = 0;
};

/// Runs TPUT from `store`'s node over `keys`. Requires the deployment's
/// value scorer to be installed on the owners (the Directory installs
/// one on every node). Keys may be empty lists; `k` >= 1.
Result<TopKResult> DistributedTopK(DhtStore* store,
                                   const std::vector<std::string>& keys,
                                   size_t k);

}  // namespace iqn

#endif  // IQN_DHT_DISTRIBUTED_TOPK_H_

#include "dht/node_id.h"

#include <sstream>

#include "util/hash.h"

namespace iqn {

RingId RingIdForNode(NodeAddress addr) {
  return Hash64(addr, /*seed=*/0x43686f7264526e67ULL);  // "ChordRng"
}

RingId RingIdForKey(std::string_view key) {
  return HashString(key, /*seed=*/0x4b65794964486173ULL);  // "KeyIdHas"
}

uint64_t RingDistance(RingId from, RingId to) {
  return to - from;  // unsigned wraparound is exactly ring arithmetic
}

bool InOpenInterval(RingId a, RingId x, RingId b) {
  if (a == b) return x != a;  // full ring minus the endpoint
  return RingDistance(a, x) < RingDistance(a, b) && x != a && x != b;
}

bool InOpenClosedInterval(RingId a, RingId x, RingId b) {
  if (a == b) return true;  // single-node ring owns everything
  return x == b || (RingDistance(a, x) < RingDistance(a, b) && x != a);
}

std::string ChordPeer::ToString() const {
  std::ostringstream os;
  os << "peer(addr=" << address << ", id=" << std::hex << id << std::dec
     << ")";
  return os.str();
}

}  // namespace iqn

// Replicated key-value storage layered on Chord lookups.
//
// This is the storage substrate of the MINERVA directory (paper Sec. 4):
// values are keyed by a string (a term); each key maps to a *collection*
// of sub-keyed entries (one Post per posting peer), so a peer re-posting
// statistics for a term replaces its previous Post instead of
// accumulating duplicates.
//
// A write is routed to the key's Chord owner and chained to the next
// `replication - 1` successors ("for failure resilience and availability,
// the responsibility for a term can be replicated across multiple
// peers"). Reads go to the owner and fail over to replicas after churn
// once stabilization has repaired the ring. Graceful leave hands all
// locally stored keys to the successor.

#ifndef IQN_DHT_KV_STORE_H_
#define IQN_DHT_KV_STORE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "dht/chord.h"
#include "dht/kv_version.h"
#include "util/mem_stats.h"
#include "util/status.h"

namespace iqn {

class DhtStore {
 public:
  /// Attaches storage verbs to `node`. `replication` >= 1 counts the
  /// owner itself. The node must outlive the store.
  static Result<std::unique_ptr<DhtStore>> Attach(ChordNode* node,
                                                  size_t replication = 3);

  DhtStore(const DhtStore&) = delete;
  DhtStore& operator=(const DhtStore&) = delete;
  ~DhtStore();

  /// Inserts or replaces the entry `subkey` under `key`, on the key's
  /// owner and its replicas.
  Status Upsert(const std::string& key, const std::string& subkey,
                Bytes value);

  struct Entry {
    std::string key;
    std::string subkey;
    Bytes value;
  };

  /// Batched upsert (paper Sec. 7.2: "peers should batch multiple posts
  /// that are directed to the same recipient so that message sizes do
  /// indeed matter"): entries are grouped by their Chord owner and each
  /// owner receives ONE message carrying all of its entries, amortizing
  /// per-message framing and response legs.
  Status UpsertBatch(const std::vector<Entry>& entries);

  /// Ranks stored values server-side; larger is better. Installed by the
  /// application layer (every node runs the same code, so the scorer is
  /// a deployment-wide agreement, like the synopsis configuration).
  using ValueScorer = std::function<double(const Bytes& value)>;
  void set_value_scorer(ValueScorer scorer) { value_scorer_ = std::move(scorer); }

  /// Like GetAll but the owner returns only its `limit` best entries
  /// under the installed scorer (paper Sec. 4: "the query initiator can
  /// decide to not retrieve the complete PeerLists, but only a subset,
  /// say the top-k peers from each list"). Falls back to GetAll semantics
  /// when limit == 0 or no scorer is installed at the owner.
  Result<std::vector<Bytes>> GetTop(const std::string& key, size_t limit);

  /// All entries stored under `key` (one per subkey), fetched from the
  /// owner (or a replica after failover). Missing keys yield an empty
  /// vector, not an error: an unknown term simply has no PeerList.
  Result<std::vector<Bytes>> GetAll(const std::string& key);

  /// Removes one subkey entry (or the whole key when subkey is empty).
  Status Remove(const std::string& key, const std::string& subkey = "");

  // ---- Scored-entry operations (substrate of the distributed top-k
  //      algorithm, dht/distributed_topk.h). All require a value scorer.

  struct ScoredSubkey {
    std::string subkey;
    double score = 0.0;
  };

  /// The owner's `k` best (subkey, score) pairs under `key`, best first.
  Result<std::vector<ScoredSubkey>> ScoresTopK(const std::string& key,
                                               size_t k);

  /// Every (subkey, score) pair with score >= threshold, best first.
  Result<std::vector<ScoredSubkey>> ScoresAbove(const std::string& key,
                                                double threshold);

  /// Exact scores for specific subkeys (missing subkeys score 0).
  Result<std::vector<ScoredSubkey>> FetchScores(
      const std::string& key, const std::vector<std::string>& subkeys);

  /// The stored values for specific subkeys (missing ones are skipped).
  Result<std::vector<Bytes>> FetchEntries(
      const std::string& key, const std::vector<std::string>& subkeys);

  /// Local inspection (tests, replication checks).
  size_t LocalKeyCount() const { return data_.size(); }
  /// Payload bytes (keys + subkeys + values) this store currently holds
  /// and has charged to the mem.dht.kv_store tracker.
  int64_t LocalAccountedBytes() const { return accounted_bytes_; }
  bool LocalHasKey(const std::string& key) const { return data_.count(key) > 0; }
  size_t LocalEntryCount(const std::string& key) const;

  ChordNode* node() const { return node_; }
  size_t replication() const { return replication_; }

  /// Attaches a publish-version map (dht/kv_version.h): every local
  /// mutation this store applies bumps the touched key's counter, so a
  /// caching layer can invalidate precisely on publish/churn. Optional;
  /// nullptr detaches. The map must outlive the store.
  void set_version_map(KvVersionMap* versions) { versions_ = versions; }

 private:
  DhtStore(ChordNode* node, size_t replication)
      : node_(node),
        replication_(replication),
        mem_(MemStats::Default().GetTracker(kMemDhtKvStore)) {}

  Status InstallVerbs();

  // Verb handlers (run on the storage node).
  Result<Bytes> HandleUpsert(const Message& msg);
  Result<Bytes> HandleUpsertBatch(const Message& msg);
  Result<Bytes> HandleGet(const Message& msg);
  Result<Bytes> HandleGetTop(const Message& msg);
  Result<Bytes> HandleRemove(const Message& msg);
  Result<Bytes> HandleHandoff(const Message& msg);
  Result<Bytes> HandleScoresTopK(const Message& msg);
  Result<Bytes> HandleScoresAbove(const Message& msg);
  Result<Bytes> HandleFetchScores(const Message& msg);
  Result<Bytes> HandleFetchEntries(const Message& msg);

  /// Routes a request to the key's owner (with one failover retry),
  /// invoking the local handler directly when this node owns the key.
  Result<Bytes> OwnerRpc(const std::string& key, const std::string& verb,
                         Bytes payload);

  /// All (subkey, score) pairs under `key`, unsorted.
  std::vector<ScoredSubkey> ScoreAllLocal(const std::string& key) const;

  /// Forwards a replicated op down the successor chain.
  void ForwardToSuccessor(const std::string& verb, Bytes payload);

  /// Transfers all local data to the successor on graceful leave.
  void HandoffAll(const ChordPeer& successor);

  /// Bumps `key` in the attached version map (no-op when detached).
  void BumpVersion(const std::string& key) {
    if (versions_ != nullptr) versions_->Bump(key);
  }

  // Every local mutation flows through these three so the byte
  // accounting (util/mem_stats.h, kMemDhtKvStore) stays balanced:
  // payload bytes only — key once per key, subkey + value per entry.
  void PutLocal(const std::string& key, const std::string& subkey,
                Bytes value);
  /// Removes `subkey` (or the whole key when empty); true if anything
  /// was actually removed.
  bool EraseLocal(const std::string& key, const std::string& subkey);
  void Account(int64_t delta) {
    accounted_bytes_ += delta;
    mem_->Charge(delta);
  }

  ChordNode* node_;
  size_t replication_;
  ValueScorer value_scorer_;
  KvVersionMap* versions_ = nullptr;
  MemTracker* mem_;  // process-wide; this store's share is accounted_bytes_
  int64_t accounted_bytes_ = 0;
  std::map<std::string, std::map<std::string, Bytes>> data_;
};

}  // namespace iqn

#endif  // IQN_DHT_KV_STORE_H_

#include "dht/chord.h"

#include <algorithm>

#include "net/rpc_policy.h"
#include "util/check.h"

namespace iqn {

namespace {

constexpr int kMaxLookupIters = 256;

void PutPeer(ByteWriter* writer, const ChordPeer& peer) {
  writer->PutU64(peer.id);
  writer->PutU64(peer.address);
}

Status GetPeer(ByteReader* reader, ChordPeer* peer) {
  IQN_RETURN_IF_ERROR(reader->GetU64(&peer->id));
  IQN_RETURN_IF_ERROR(reader->GetU64(&peer->address));
  return Status::OK();
}

}  // namespace

ChordNode::ChordNode(Transport* network) : network_(network) {
  self_.address =
      network_->Register([this](const Message& msg) { return HandleMessage(msg); });
  self_.id = RingIdForNode(self_.address);
  successor_list_.push_back(self_);
  fingers_.assign(kNumFingers, self_);
}

Status ChordNode::CreateRing() {
  if (in_ring_) return Status::FailedPrecondition("already in a ring");
  successor_list_.assign(1, self_);
  predecessor_.reset();
  fingers_.assign(kNumFingers, self_);
  in_ring_ = true;
  return Status::OK();
}

Status ChordNode::RegisterVerb(const std::string& verb, VerbHandler handler) {
  if (verb.rfind("chord.", 0) == 0) {
    return Status::InvalidArgument("verb collides with chord protocol: " +
                                   verb);
  }
  if (!verbs_.emplace(verb, std::move(handler)).second) {
    return Status::InvalidArgument("verb already registered: " + verb);
  }
  return Status::OK();
}

Result<Bytes> ChordNode::HandleMessage(const Message& msg) {
  // Ring invariants every handler relies on: the successor list is never
  // empty (it always at least names this node) and the finger table keeps
  // its fixed size. These hold across Join/Leave/Stabilize by
  // construction; a violation means routing state is corrupted.
  IQN_CHECK(!successor_list_.empty());
  IQN_DCHECK_EQ(fingers_.size(), kNumFingers);
  ByteReader reader(msg.payload);
  if (msg.type == "chord.ping") {
    return Bytes{};
  }
  if (msg.type == "chord.get_successor") {
    ByteWriter writer;
    PutPeer(&writer, successor_list_.front());
    return writer.Take();
  }
  if (msg.type == "chord.get_predecessor") {
    ByteWriter writer;
    writer.PutU8(predecessor_.has_value() ? 1 : 0);
    if (predecessor_) PutPeer(&writer, *predecessor_);
    return writer.Take();
  }
  if (msg.type == "chord.get_succ_list") {
    ByteWriter writer;
    writer.PutVarint(successor_list_.size());
    for (const auto& p : successor_list_) PutPeer(&writer, p);
    return writer.Take();
  }
  if (msg.type == "chord.closest_preceding") {
    uint64_t key;
    IQN_RETURN_IF_ERROR(reader.GetU64(&key));
    ByteWriter writer;
    PutPeer(&writer, ClosestPrecedingLocal(key));
    return writer.Take();
  }
  if (msg.type == "chord.notify") {
    ChordPeer candidate;
    IQN_RETURN_IF_ERROR(GetPeer(&reader, &candidate));
    if (!predecessor_ ||
        InOpenInterval(predecessor_->id, candidate.id, self_.id) ||
        !network_->IsNodeUp(predecessor_->address)) {
      predecessor_ = candidate;
    }
    return Bytes{};
  }
  if (msg.type == "chord.set_predecessor") {
    uint8_t has;
    IQN_RETURN_IF_ERROR(reader.GetU8(&has));
    if (has) {
      ChordPeer p;
      IQN_RETURN_IF_ERROR(GetPeer(&reader, &p));
      predecessor_ = p;
    } else {
      predecessor_.reset();
    }
    return Bytes{};
  }
  if (msg.type == "chord.set_successor") {
    ChordPeer p;
    IQN_RETURN_IF_ERROR(GetPeer(&reader, &p));
    successor_list_.front() = p;
    return Bytes{};
  }
  auto it = verbs_.find(msg.type);
  if (it != verbs_.end()) return it->second(msg);
  return Status::NotFound("no handler for verb " + msg.type);
}

Result<ChordPeer> ChordNode::RemoteGetSuccessor(const ChordPeer& peer) const {
  if (peer == self_) return successor_list_.front();
  IQN_ASSIGN_OR_RETURN(Bytes resp, CallRpc(network_, self_.address, peer.address,
                                                 "chord.get_successor", {}));
  ByteReader reader(resp);
  ChordPeer out;
  IQN_RETURN_IF_ERROR(GetPeer(&reader, &out));
  return out;
}

Result<std::optional<ChordPeer>> ChordNode::RemoteGetPredecessor(
    const ChordPeer& peer) const {
  if (peer == self_) return predecessor_;
  IQN_ASSIGN_OR_RETURN(Bytes resp, CallRpc(network_, self_.address, peer.address,
                                                 "chord.get_predecessor", {}));
  ByteReader reader(resp);
  uint8_t has;
  IQN_RETURN_IF_ERROR(reader.GetU8(&has));
  if (!has) return std::optional<ChordPeer>();
  ChordPeer out;
  IQN_RETURN_IF_ERROR(GetPeer(&reader, &out));
  return std::optional<ChordPeer>(out);
}

Result<ChordPeer> ChordNode::RemoteClosestPreceding(const ChordPeer& peer,
                                                    RingId key) const {
  if (peer == self_) return ClosestPrecedingLocal(key);
  ByteWriter writer;
  writer.PutU64(key);
  IQN_ASSIGN_OR_RETURN(
      Bytes resp, CallRpc(network_, self_.address, peer.address,
                                "chord.closest_preceding", writer.Take()));
  ByteReader reader(resp);
  ChordPeer out;
  IQN_RETURN_IF_ERROR(GetPeer(&reader, &out));
  return out;
}

Status ChordNode::RemoteNotify(const ChordPeer& peer,
                               const ChordPeer& candidate) const {
  if (peer == self_) return Status::OK();
  ByteWriter writer;
  PutPeer(&writer, candidate);
  Result<Bytes> r =
      CallRpc(network_, self_.address, peer.address, "chord.notify", writer.Take());
  return r.ok() ? Status::OK() : r.status();
}

Result<std::vector<ChordPeer>> ChordNode::RemoteGetSuccessorList(
    const ChordPeer& peer) const {
  if (peer == self_) return successor_list_;
  IQN_ASSIGN_OR_RETURN(Bytes resp, CallRpc(network_, self_.address, peer.address,
                                                 "chord.get_succ_list", {}));
  ByteReader reader(resp);
  uint64_t n;
  IQN_RETURN_IF_ERROR(reader.GetVarint(&n));
  if (n > kSuccessorListSize + 1) {
    return Status::Corruption("oversized successor list");
  }
  std::vector<ChordPeer> out(n);
  for (auto& p : out) IQN_RETURN_IF_ERROR(GetPeer(&reader, &p));
  return out;
}

bool ChordNode::RemoteIsAlive(const ChordPeer& peer) const {
  if (peer == self_) return true;
  return CallRpc(network_, self_.address, peer.address, "chord.ping", {}).ok();
}

ChordPeer ChordNode::ClosestPrecedingLocal(RingId key) const {
  // Scan fingers from farthest to nearest; also consider the successor
  // list. IsNodeUp() stands in for the RPC-timeout liveness probe a real
  // deployment would use (a local check, so routing-table maintenance is
  // not charged as traffic).
  for (size_t i = kNumFingers; i-- > 0;) {
    const ChordPeer& f = fingers_[i];
    if (f.valid() && InOpenInterval(self_.id, f.id, key) &&
        network_->IsNodeUp(f.address)) {
      return f;
    }
  }
  for (size_t i = successor_list_.size(); i-- > 0;) {
    const ChordPeer& s = successor_list_[i];
    if (s.valid() && InOpenInterval(self_.id, s.id, key) &&
        network_->IsNodeUp(s.address)) {
      return s;
    }
  }
  return self_;
}

Result<LookupResult> ChordNode::IterativeLookup(const ChordPeer& start,
                                                RingId key) const {
  ChordPeer current = start;
  int hops = 0;
  for (int iter = 0; iter < kMaxLookupIters; ++iter) {
    Result<ChordPeer> succ_r = RemoteGetSuccessor(current);
    if (!succ_r.ok()) return succ_r.status();
    if (!(current == self_)) ++hops;
    const ChordPeer& succ = succ_r.value();
    if (InOpenClosedInterval(current.id, key, succ.id)) {
      return LookupResult{succ, hops};
    }
    IQN_ASSIGN_OR_RETURN(ChordPeer next, RemoteClosestPreceding(current, key));
    if (next == current) {
      // No routing progress possible: the successor is our best answer.
      return LookupResult{succ, hops};
    }
    current = next;
  }
  return Status::Internal("chord lookup did not converge");
}

Result<LookupResult> ChordNode::FindSuccessor(RingId key) const {
  if (!in_ring_) {
    return Status::FailedPrecondition("node is not in a ring");
  }
  return IterativeLookup(self_, key);
}

Status ChordNode::Join(NodeAddress bootstrap) {
  if (in_ring_) return Status::FailedPrecondition("already in a ring");
  // Reconnect in case this node previously left.
  IQN_RETURN_IF_ERROR(network_->SetNodeUp(self_.address, true));
  ChordPeer boot{RingIdForNode(bootstrap), bootstrap};
  IQN_ASSIGN_OR_RETURN(LookupResult found, IterativeLookup(boot, self_.id));
  successor_list_.assign(1, found.owner);
  predecessor_.reset();
  fingers_.assign(kNumFingers, found.owner);
  in_ring_ = true;
  return Status::OK();
}

ChordPeer ChordNode::FirstLiveSuccessor() {
  while (!successor_list_.empty()) {
    const ChordPeer& s = successor_list_.front();
    if (s == self_ || network_->IsNodeUp(s.address)) return s;
    successor_list_.erase(successor_list_.begin());
  }
  successor_list_.push_back(self_);
  IQN_CHECK(!successor_list_.empty());
  return self_;
}

Status ChordNode::Stabilize() {
  if (!in_ring_) return Status::FailedPrecondition("node is not in a ring");

  // Forget a dead predecessor so a live notifier can claim the slot.
  if (predecessor_ && !network_->IsNodeUp(predecessor_->address)) {
    predecessor_.reset();
  }

  // Note: when the successor is (currently) this node itself — a ring of
  // one, or every known successor died — the generic path below still
  // applies: the local predecessor pointer (set by a joiner's notify) is
  // how a lone node discovers its first real successor.
  ChordPeer succ = FirstLiveSuccessor();

  Result<std::optional<ChordPeer>> pred_r = RemoteGetPredecessor(succ);
  if (pred_r.ok() && pred_r.value().has_value()) {
    const ChordPeer& x = *pred_r.value();
    if (InOpenInterval(self_.id, x.id, succ.id) &&
        network_->IsNodeUp(x.address)) {
      succ = x;
    }
  }

  IQN_RETURN_IF_ERROR(RemoteNotify(succ, self_));

  // Refresh the successor list from the (possibly new) successor.
  Result<std::vector<ChordPeer>> list_r = RemoteGetSuccessorList(succ);
  std::vector<ChordPeer> fresh;
  fresh.push_back(succ);
  if (list_r.ok()) {
    for (const auto& p : list_r.value()) {
      if (fresh.size() >= kSuccessorListSize) break;
      if (p == succ) continue;
      fresh.push_back(p);
    }
  }
  IQN_CHECK(!fresh.empty());
  IQN_CHECK_LE(fresh.size(), kSuccessorListSize);
  successor_list_ = std::move(fresh);
  return Status::OK();
}

Status ChordNode::FixNextFinger() {
  if (!in_ring_) return Status::FailedPrecondition("node is not in a ring");
  size_t i = next_finger_to_fix_;
  IQN_DCHECK_LT(i, kNumFingers);
  next_finger_to_fix_ = (next_finger_to_fix_ + 1) % kNumFingers;
  RingId target = self_.id + (i == 63 ? (uint64_t{1} << 63) : (uint64_t{1} << i));
  IQN_ASSIGN_OR_RETURN(LookupResult found, FindSuccessor(target));
  fingers_[i] = found.owner;
  return Status::OK();
}

Status ChordNode::FixAllFingers() {
  for (size_t i = 0; i < kNumFingers; ++i) {
    IQN_RETURN_IF_ERROR(FixNextFinger());
  }
  return Status::OK();
}

Status ChordNode::Leave() {
  if (!in_ring_) return Status::OK();
  ChordPeer succ = FirstLiveSuccessor();
  if (!(succ == self_)) {
    if (on_leave_) on_leave_(succ);
    // Splice: successor adopts our predecessor; predecessor adopts our
    // successor.
    ByteWriter set_pred;
    set_pred.PutU8(predecessor_.has_value() ? 1 : 0);
    if (predecessor_) PutPeer(&set_pred, *predecessor_);
    // Best effort: if the successor misses the splice, stabilization
    // repairs the ring on its next round.
    (void)CallRpc(network_, self_.address, succ.address, "chord.set_predecessor",
                        set_pred.Take());
    if (predecessor_ && network_->IsNodeUp(predecessor_->address)) {
      ByteWriter set_succ;
      PutPeer(&set_succ, succ);
      // Best effort, same repair path as above.
      (void)CallRpc(network_, self_.address, predecessor_->address,
                          "chord.set_successor", set_succ.Take());
    }
  }
  in_ring_ = false;
  successor_list_.assign(1, self_);
  predecessor_.reset();
  fingers_.assign(kNumFingers, self_);
  // The process disconnects after handing off: remaining nodes route
  // around it immediately instead of talking to a zombie.
  (void)network_->SetNodeUp(self_.address, false);
  return Status::OK();
}

// ---------------------------------------------------------------- ChordRing

Result<std::unique_ptr<ChordRing>> ChordRing::Build(Transport* network,
                                                    size_t num_nodes) {
  if (num_nodes == 0) {
    return Status::InvalidArgument("ring needs at least one node");
  }
  auto ring = std::unique_ptr<ChordRing>(new ChordRing(network));
  for (size_t i = 0; i < num_nodes; ++i) {
    ring->nodes_.push_back(std::make_unique<ChordNode>(network));
  }

  // Offline bootstrap: install the converged routing state directly (the
  // fixpoint the join/stabilize/fix-fingers protocol reaches). The
  // protocol path itself is exercised by Join()/Stabilize() in tests and
  // in churn scenarios; building large benchmark rings this way avoids
  // megabytes of uninteresting warm-up traffic.
  std::vector<ChordNode*> sorted;
  sorted.reserve(num_nodes);
  for (auto& n : ring->nodes_) sorted.push_back(n.get());
  std::sort(sorted.begin(), sorted.end(),
            [](const ChordNode* a, const ChordNode* b) { return a->id() < b->id(); });

  const size_t n = sorted.size();
  for (size_t i = 0; i < n; ++i) {
    ChordNode* node = sorted[i];
    node->in_ring_ = true;
    node->predecessor_ = sorted[(i + n - 1) % n]->self();
    node->successor_list_.clear();
    for (size_t k = 1; k <= ChordNode::kSuccessorListSize; ++k) {
      node->successor_list_.push_back(sorted[(i + k) % n]->self());
    }
    // Exact finger table: finger[j] = successor(id + 2^j).
    for (size_t j = 0; j < ChordNode::kNumFingers; ++j) {
      RingId target = node->id() + (uint64_t{1} << j);
      // Binary search in the sorted ring for the first id >= target,
      // wrapping around.
      auto it = std::lower_bound(
          sorted.begin(), sorted.end(), target,
          [](const ChordNode* a, RingId t) { return a->id() < t; });
      if (it == sorted.end()) it = sorted.begin();
      node->fingers_[j] = (*it)->self();
    }
    IQN_DCHECK_EQ(node->successor_list_.size(), ChordNode::kSuccessorListSize);
  }
  return ring;
}

Status ChordRing::RunMaintenance(int rounds) {
  for (int r = 0; r < rounds; ++r) {
    for (auto& node : nodes_) {
      if (!node->in_ring() || !network_->IsNodeUp(node->address())) continue;
      Status st = node->Stabilize();
      // Unavailable neighbors are expected under churn; the next round
      // repairs them. Anything else is a real bug.
      if (!st.ok() && st.code() != StatusCode::kUnavailable) return st;
      st = node->FixNextFinger();
      if (!st.ok() && st.code() != StatusCode::kUnavailable) return st;
    }
  }
  return Status::OK();
}

Status ChordRing::SettleFingers() {
  for (auto& node : nodes_) {
    if (!node->in_ring() || !network_->IsNodeUp(node->address())) continue;
    IQN_RETURN_IF_ERROR(node->FixAllFingers());
  }
  return Status::OK();
}

Result<LookupResult> ChordRing::Lookup(size_t origin_index, RingId key) const {
  if (origin_index >= nodes_.size()) {
    return Status::InvalidArgument("origin index out of range");
  }
  return nodes_[origin_index]->FindSuccessor(key);
}

}  // namespace iqn

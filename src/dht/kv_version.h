// Publish-version counters for the replicated KV store.
//
// Every mutation a DhtStore applies to a key (upsert, batched upsert,
// remove, churn handoff) bumps the key's counter in the attached
// KvVersionMap. A caching layer that stamped its copy with the version
// at fill time can later tell, without any network traffic, whether the
// key has changed since: versions only move when stored bytes do, so
// "same version" means "bit-identical PeerList" — precise invalidation
// with no TTL guessing (ISSUE 5; the paper's lazy-refresh directory in
// Sec. 4 makes directory data change only on re-posting).
//
// The map is deliberately NOT thread-safe and holds no atomics: all
// mutations happen in the serial publish/churn phases of the simulator
// (publishing while per-query StatsCaptures run is already a checked
// precondition violation in SimulatedNetwork), and concurrent query
// threads only read. Replication means one logical publish bumps a key
// once per replica that applies it; cache correctness needs monotonicity,
// not exact counts. Crucially, a bump happens at APPLY time on the
// storage node — a replica forward dropped by fault injection does not
// bump, and the replica's previously stored (still current from its own
// point of view) value remains correctly cacheable.

#ifndef IQN_DHT_KV_VERSION_H_
#define IQN_DHT_KV_VERSION_H_

#include <cstdint>
#include <map>
#include <string>

namespace iqn {

class KvVersionMap {
 public:
  KvVersionMap() = default;
  KvVersionMap(const KvVersionMap&) = delete;
  KvVersionMap& operator=(const KvVersionMap&) = delete;

  /// Records a mutation of `key`. Serial phases only (see file comment).
  void Bump(const std::string& key) { ++versions_[key]; }

  /// Current version of `key`; 0 means "never written".
  uint64_t Get(const std::string& key) const {
    auto it = versions_.find(key);
    return it == versions_.end() ? 0 : it->second;
  }

  size_t size() const { return versions_.size(); }

 private:
  std::map<std::string, uint64_t> versions_;
};

}  // namespace iqn

#endif  // IQN_DHT_KV_VERSION_H_

// Chord distributed hash table (Stoica et al., SIGCOMM 2001).
//
// The MINERVA directory (paper Sec. 4) is layered on Chord: the term
// space is partitioned by hashing each term onto the ring, and the node
// owning a term's id maintains the PeerList of all Posts for that term.
//
// This is a full protocol implementation over the simulated network:
//  * iterative find_successor with finger-table routing (O(log n) hops),
//  * join via lookup + stabilization (stabilize / notify / fix_fingers),
//  * successor lists for failure resilience,
//  * graceful leave with key handoff, abrupt failure recovery via
//    successor-list repair,
//  * a verb registry so higher layers (the KV store, the MINERVA
//    directory) can install their own message handlers on the same node.

#ifndef IQN_DHT_CHORD_H_
#define IQN_DHT_CHORD_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dht/node_id.h"
#include "net/transport.h"
#include "util/status.h"

namespace iqn {

/// Result of a lookup, with the routing cost actually incurred.
struct LookupResult {
  ChordPeer owner;
  int hops = 0;
};

class ChordNode {
 public:
  /// Number of entries kept in the successor list (tolerates up to
  /// kSuccessorListSize - 1 consecutive node failures).
  static constexpr size_t kSuccessorListSize = 8;
  static constexpr size_t kNumFingers = 64;

  /// Registers the node on the network. The node starts outside any ring;
  /// call CreateRing() or Join() next.
  explicit ChordNode(Transport* network);

  ChordNode(const ChordNode&) = delete;
  ChordNode& operator=(const ChordNode&) = delete;

  NodeAddress address() const { return self_.address; }
  RingId id() const { return self_.id; }
  const ChordPeer& self() const { return self_; }
  bool in_ring() const { return in_ring_; }

  /// Bootstraps a new ring containing only this node.
  Status CreateRing();

  /// Joins the ring that `bootstrap` belongs to. The ring is consistent
  /// after the next stabilization round(s).
  Status Join(NodeAddress bootstrap);

  /// One round of the periodic protocol: verify successor via its
  /// predecessor pointer, adopt a closer successor if one appeared,
  /// notify the successor, refresh the successor list. Call repeatedly
  /// (on every node) until the ring converges.
  Status Stabilize();

  /// Refreshes one finger per call (cycling), as in the Chord paper.
  Status FixNextFinger();

  /// Rebuilds the entire finger table (used to settle a freshly built
  /// ring quickly in tests and benches).
  Status FixAllFingers();

  /// Gracefully leaves the ring: hands keys to the successor (via the
  /// on_leave hook) and splices neighbors together.
  Status Leave();

  /// Iterative lookup of the node owning `key`. May be called whether or
  /// not this node is in the ring (it must know a ring member then —
  /// itself if in_ring).
  Result<LookupResult> FindSuccessor(RingId key) const;

  const ChordPeer& successor() const { return successor_list_.front(); }
  const std::optional<ChordPeer>& predecessor() const { return predecessor_; }
  const std::vector<ChordPeer>& successor_list() const {
    return successor_list_;
  }
  const ChordPeer& finger(size_t i) const { return fingers_[i]; }

  /// Installs a handler for an application verb (e.g. "kv.put"). The verb
  /// must not collide with the built-in "chord.*" verbs.
  using VerbHandler = std::function<Result<Bytes>(const Message&)>;
  Status RegisterVerb(const std::string& verb, VerbHandler handler);

  /// Invoked with the successor when this node leaves gracefully, so the
  /// storage layer can hand its keys over.
  using LeaveHook = std::function<void(const ChordPeer& successor)>;
  void set_on_leave(LeaveHook hook) { on_leave_ = std::move(hook); }

  Transport* network() const { return network_; }

 private:
  /// Built-in protocol handler (dispatches chord.* and registered verbs).
  Result<Bytes> HandleMessage(const Message& msg);

  // Remote accessors (issue RPCs).
  Result<ChordPeer> RemoteGetSuccessor(const ChordPeer& peer) const;
  Result<std::optional<ChordPeer>> RemoteGetPredecessor(
      const ChordPeer& peer) const;
  Result<ChordPeer> RemoteClosestPreceding(const ChordPeer& peer,
                                           RingId key) const;
  Status RemoteNotify(const ChordPeer& peer, const ChordPeer& candidate) const;
  Result<std::vector<ChordPeer>> RemoteGetSuccessorList(
      const ChordPeer& peer) const;
  bool RemoteIsAlive(const ChordPeer& peer) const;

  /// Best local guess for a node preceding `key` (fingers + successors).
  ChordPeer ClosestPrecedingLocal(RingId key) const;

  /// Drops dead entries from the front of the successor list; returns the
  /// first live successor (self if the list drained).
  ChordPeer FirstLiveSuccessor();

  Transport* network_;
  ChordPeer self_;
  bool in_ring_ = false;

  std::vector<ChordPeer> successor_list_;  // [0] is THE successor
  std::optional<ChordPeer> predecessor_;
  std::vector<ChordPeer> fingers_;
  size_t next_finger_to_fix_ = 0;

  std::map<std::string, VerbHandler> verbs_;
  LeaveHook on_leave_;

  /// Core of FindSuccessor/Join: iterative routing from an arbitrary
  /// start peer.
  Result<LookupResult> IterativeLookup(const ChordPeer& start,
                                       RingId key) const;

  friend class ChordRing;  // offline bootstrap installs state directly
};

/// Convenience owner of a whole ring for tests, benches, and the engine:
/// constructs n nodes, joins them, and runs maintenance to convergence.
class ChordRing {
 public:
  /// Builds a converged ring of `num_nodes` nodes on `network`.
  static Result<std::unique_ptr<ChordRing>> Build(Transport* network,
                                                  size_t num_nodes);

  size_t size() const { return nodes_.size(); }
  ChordNode& node(size_t i) { return *nodes_[i]; }
  const ChordNode& node(size_t i) const { return *nodes_[i]; }

  /// Runs `rounds` rounds of stabilize + one finger fix on every node.
  Status RunMaintenance(int rounds);

  /// Rebuilds every node's full finger table.
  Status SettleFingers();

  /// Looks up `key` starting from node `origin_index`.
  Result<LookupResult> Lookup(size_t origin_index, RingId key) const;

 private:
  explicit ChordRing(Transport* network) : network_(network) {}

  Transport* network_;
  std::vector<std::unique_ptr<ChordNode>> nodes_;
};

}  // namespace iqn

#endif  // IQN_DHT_CHORD_H_

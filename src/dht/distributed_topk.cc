#include "dht/distributed_topk.h"

#include <algorithm>
#include <map>
#include <set>

namespace iqn {

namespace {

/// k-th largest partial sum (0.0 when fewer than k candidates).
double KthBest(const std::map<std::string, double>& partial_sums, size_t k) {
  if (partial_sums.size() < k) return 0.0;
  std::vector<double> sums;
  sums.reserve(partial_sums.size());
  for (const auto& [subkey, sum] : partial_sums) sums.push_back(sum);
  std::nth_element(sums.begin(), sums.begin() + (k - 1), sums.end(),
                   std::greater<double>());
  return sums[k - 1];
}

}  // namespace

Result<TopKResult> DistributedTopK(DhtStore* store,
                                   const std::vector<std::string>& keys,
                                   size_t k) {
  if (store == nullptr) return Status::InvalidArgument("null store");
  if (k == 0) return Status::InvalidArgument("k must be positive");
  if (keys.empty()) return Status::InvalidArgument("no keys");

  const size_t m = keys.size();
  TopKResult result;

  // seen[subkey][key index] = exact score (only for fetched entries).
  std::map<std::string, std::vector<double>> seen;
  std::map<std::string, std::vector<bool>> covered;
  auto record = [&](size_t key_index, const DhtStore::ScoredSubkey& entry) {
    auto [it, inserted] = seen.emplace(entry.subkey, std::vector<double>(m, 0.0));
    auto [cov_it, cov_inserted] =
        covered.emplace(entry.subkey, std::vector<bool>(m, false));
    it->second[key_index] = entry.score;
    cov_it->second[key_index] = true;
  };

  // ---- Phase 1: local top-k of every list.
  for (size_t j = 0; j < m; ++j) {
    IQN_ASSIGN_OR_RETURN(std::vector<DhtStore::ScoredSubkey> head,
                         store->ScoresTopK(keys[j], k));
    result.phase1_entries += head.size();
    for (const auto& entry : head) record(j, entry);
  }
  std::map<std::string, double> partial_sums;
  for (const auto& [subkey, scores] : seen) {
    double sum = 0.0;
    for (double s : scores) sum += s;
    partial_sums[subkey] = sum;
  }
  double tau1 = KthBest(partial_sums, k);

  // ---- Phase 2: every entry scoring >= tau1 / m from every list.
  // A subkey whose total reaches tau1 must score >= tau1/m in at least
  // one list, so after this phase every potential winner is visible.
  double per_list_threshold = tau1 / static_cast<double>(m);
  if (tau1 > 0.0) {
    for (size_t j = 0; j < m; ++j) {
      IQN_ASSIGN_OR_RETURN(std::vector<DhtStore::ScoredSubkey> entries,
                           store->ScoresAbove(keys[j], per_list_threshold));
      result.phase2_entries += entries.size();
      for (const auto& entry : entries) record(j, entry);
    }
    partial_sums.clear();
    for (const auto& [subkey, scores] : seen) {
      double sum = 0.0;
      for (double s : scores) sum += s;
      partial_sums[subkey] = sum;
    }
  }
  double tau2 = std::max(tau1, KthBest(partial_sums, k));

  // Candidate pruning: a subkey's unseen lists can contribute at most
  // per_list_threshold each (anything larger would have been returned
  // in phase 2).
  std::set<std::string> candidates;
  for (const auto& [subkey, scores] : seen) {
    size_t unseen = 0;
    const auto& cov = covered[subkey];
    for (size_t j = 0; j < m; ++j) {
      if (!cov[j]) ++unseen;
    }
    double upper = partial_sums[subkey] +
                   per_list_threshold * static_cast<double>(unseen);
    if (upper >= tau2) candidates.insert(subkey);
  }
  result.phase3_candidates = candidates.size();

  // ---- Phase 3: exact missing scores of the candidates.
  for (size_t j = 0; j < m; ++j) {
    std::vector<std::string> missing;
    for (const auto& subkey : candidates) {
      if (!covered[subkey][j]) missing.push_back(subkey);
    }
    if (missing.empty()) continue;
    IQN_ASSIGN_OR_RETURN(std::vector<DhtStore::ScoredSubkey> exact,
                         store->FetchScores(keys[j], missing));
    for (const auto& entry : exact) record(j, entry);
  }

  // Final ranking over the candidates.
  std::vector<DhtStore::ScoredSubkey> ranked;
  ranked.reserve(candidates.size());
  for (const auto& subkey : candidates) {
    double sum = 0.0;
    for (double s : seen[subkey]) sum += s;
    ranked.push_back(DhtStore::ScoredSubkey{subkey, sum});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const DhtStore::ScoredSubkey& a,
               const DhtStore::ScoredSubkey& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.subkey < b.subkey;
            });
  if (ranked.size() > k) ranked.resize(k);
  result.best = std::move(ranked);
  return result;
}

}  // namespace iqn

// Identifier-ring arithmetic for the Chord DHT (Stoica et al., the
// substrate of the MINERVA directory — paper Sec. 4).
//
// Identifiers live on a 2^64 ring. Both nodes and keys (terms) are hashed
// onto the ring; a key is owned by its *successor*, the first node whose
// id is >= the key id in clockwise ring order.

#ifndef IQN_DHT_NODE_ID_H_
#define IQN_DHT_NODE_ID_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "net/message.h"

namespace iqn {

/// Position on the 2^64 identifier ring.
using RingId = uint64_t;

/// Hashes a node's network address onto the ring.
RingId RingIdForNode(NodeAddress addr);

/// Hashes a directory key (term) onto the ring.
RingId RingIdForKey(std::string_view key);

/// Clockwise distance from `from` to `to` (wraps modulo 2^64).
uint64_t RingDistance(RingId from, RingId to);

/// x in (a, b) in clockwise ring order. An empty interval (a == b)
/// denotes the full ring minus {a}, matching Chord's conventions for
/// single-node rings.
bool InOpenInterval(RingId a, RingId x, RingId b);

/// x in (a, b]; (a, a] is the full ring, so a single node owns all keys.
bool InOpenClosedInterval(RingId a, RingId x, RingId b);

/// A node as seen by the Chord protocol: ring position + how to reach it.
struct ChordPeer {
  RingId id = 0;
  NodeAddress address = kInvalidAddress;

  bool valid() const { return address != kInvalidAddress; }
  bool operator==(const ChordPeer& other) const {
    return id == other.id && address == other.address;
  }
  std::string ToString() const;
};

}  // namespace iqn

#endif  // IQN_DHT_NODE_ID_H_

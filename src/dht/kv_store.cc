#include "dht/kv_store.h"

#include <algorithm>

#include "net/rpc_policy.h"
#include "util/check.h"

namespace iqn {

namespace {

// Upsert payload: key, subkey, value, replicas_left.
Bytes EncodeUpsert(const std::string& key, const std::string& subkey,
                   const Bytes& value, uint64_t replicas_left) {
  ByteWriter writer;
  writer.PutString(key);
  writer.PutString(subkey);
  writer.PutBytes(value);
  writer.PutVarint(replicas_left);
  return writer.Take();
}

// Remove payload: key, subkey (empty = whole key), replicas_left.
Bytes EncodeRemove(const std::string& key, const std::string& subkey,
                   uint64_t replicas_left) {
  ByteWriter writer;
  writer.PutString(key);
  writer.PutString(subkey);
  writer.PutVarint(replicas_left);
  return writer.Take();
}

}  // namespace

DhtStore::~DhtStore() {
  // Whatever this store still holds leaves the process with it.
  Account(-accounted_bytes_);
}

void DhtStore::PutLocal(const std::string& key, const std::string& subkey,
                        Bytes value) {
  auto [kit, new_key] = data_.try_emplace(key);
  if (new_key) Account(static_cast<int64_t>(key.size()));
  auto sit = kit->second.find(subkey);
  if (sit == kit->second.end()) {
    Account(static_cast<int64_t>(subkey.size() + value.size()));
    kit->second.emplace(subkey, std::move(value));
  } else {
    Account(static_cast<int64_t>(value.size()) -
            static_cast<int64_t>(sit->second.size()));
    sit->second = std::move(value);
  }
}

bool DhtStore::EraseLocal(const std::string& key, const std::string& subkey) {
  auto it = data_.find(key);
  if (it == data_.end()) return false;
  if (subkey.empty()) {
    int64_t bytes = static_cast<int64_t>(key.size());
    for (const auto& [sub, value] : it->second) {
      bytes += static_cast<int64_t>(sub.size() + value.size());
    }
    Account(-bytes);
    data_.erase(it);
    return true;
  }
  auto sit = it->second.find(subkey);
  if (sit == it->second.end()) return false;
  Account(-static_cast<int64_t>(subkey.size() + sit->second.size()));
  it->second.erase(sit);
  if (it->second.empty()) {
    Account(-static_cast<int64_t>(key.size()));
    data_.erase(it);
  }
  return true;
}

Result<std::unique_ptr<DhtStore>> DhtStore::Attach(ChordNode* node,
                                                   size_t replication) {
  if (node == nullptr) return Status::InvalidArgument("null node");
  if (replication < 1 || replication > ChordNode::kSuccessorListSize) {
    return Status::InvalidArgument("replication must be in [1, succ list]");
  }
  auto store = std::unique_ptr<DhtStore>(new DhtStore(node, replication));
  IQN_RETURN_IF_ERROR(store->InstallVerbs());
  DhtStore* raw = store.get();
  node->set_on_leave(
      [raw](const ChordPeer& successor) { raw->HandoffAll(successor); });
  return store;
}

Status DhtStore::InstallVerbs() {
  IQN_RETURN_IF_ERROR(node_->RegisterVerb(
      "kv.upsert", [this](const Message& m) { return HandleUpsert(m); }));
  IQN_RETURN_IF_ERROR(node_->RegisterVerb(
      "kv.upsert_batch",
      [this](const Message& m) { return HandleUpsertBatch(m); }));
  IQN_RETURN_IF_ERROR(node_->RegisterVerb(
      "kv.get", [this](const Message& m) { return HandleGet(m); }));
  IQN_RETURN_IF_ERROR(node_->RegisterVerb(
      "kv.get_top", [this](const Message& m) { return HandleGetTop(m); }));
  IQN_RETURN_IF_ERROR(node_->RegisterVerb(
      "kv.remove", [this](const Message& m) { return HandleRemove(m); }));
  IQN_RETURN_IF_ERROR(node_->RegisterVerb(
      "kv.handoff", [this](const Message& m) { return HandleHandoff(m); }));
  IQN_RETURN_IF_ERROR(node_->RegisterVerb(
      "kv.scores_topk",
      [this](const Message& m) { return HandleScoresTopK(m); }));
  IQN_RETURN_IF_ERROR(node_->RegisterVerb(
      "kv.scores_above",
      [this](const Message& m) { return HandleScoresAbove(m); }));
  IQN_RETURN_IF_ERROR(node_->RegisterVerb(
      "kv.fetch_scores",
      [this](const Message& m) { return HandleFetchScores(m); }));
  IQN_RETURN_IF_ERROR(node_->RegisterVerb(
      "kv.fetch_entries",
      [this](const Message& m) { return HandleFetchEntries(m); }));
  return Status::OK();
}

Result<Bytes> DhtStore::OwnerRpc(const std::string& key,
                                 const std::string& verb, Bytes payload) {
  Result<Bytes> resp = Status::Internal("unreached");
  for (int attempt = 0; attempt < 2; ++attempt) {
    IQN_ASSIGN_OR_RETURN(LookupResult found,
                         node_->FindSuccessor(RingIdForKey(key)));
    if (found.owner == node_->self()) {
      Message self_msg{node_->address(), node_->address(), verb, payload};
      if (verb == "kv.get") return HandleGet(self_msg);
      if (verb == "kv.get_top") return HandleGetTop(self_msg);
      if (verb == "kv.scores_topk") return HandleScoresTopK(self_msg);
      if (verb == "kv.scores_above") return HandleScoresAbove(self_msg);
      if (verb == "kv.fetch_scores") return HandleFetchScores(self_msg);
      if (verb == "kv.fetch_entries") return HandleFetchEntries(self_msg);
      return Status::Internal("OwnerRpc: no local dispatch for " + verb);
    }
    resp = CallRpc(node_->network(), node_->address(), found.owner.address, verb,
                                 payload);
    if (resp.ok()) break;
  }
  return resp;
}

void DhtStore::ForwardToSuccessor(const std::string& verb, Bytes payload) {
  const ChordPeer& succ = node_->successor();
  if (!succ.valid() || succ == node_->self()) return;
  // Best effort: a dead replica target is repaired by the next re-post.
  (void)CallRpc(node_->network(), node_->address(), succ.address, verb,
                              std::move(payload));
}

Result<Bytes> DhtStore::HandleUpsert(const Message& msg) {
  ByteReader reader(msg.payload);
  std::string key, subkey;
  Bytes value;
  uint64_t replicas_left;
  IQN_RETURN_IF_ERROR(reader.GetString(&key));
  IQN_RETURN_IF_ERROR(reader.GetString(&subkey));
  IQN_RETURN_IF_ERROR(reader.GetBytes(&value));
  IQN_RETURN_IF_ERROR(reader.GetVarint(&replicas_left));
  if (replicas_left > ChordNode::kSuccessorListSize) {
    // A forged replica count would forward the value all the way around
    // the ring; the protocol never sends more than the successor-list
    // replication factor.
    return Status::Corruption("upsert replica count out of range");
  }

  PutLocal(key, subkey, value);
  BumpVersion(key);
  if (replicas_left > 1) {
    ForwardToSuccessor("kv.upsert",
                       EncodeUpsert(key, subkey, value, replicas_left - 1));
  }
  return Bytes{};
}

Result<Bytes> DhtStore::HandleUpsertBatch(const Message& msg) {
  ByteReader reader(msg.payload);
  uint64_t count, replicas_left;
  IQN_RETURN_IF_ERROR(reader.GetVarint(&count));
  IQN_RETURN_IF_ERROR(reader.GetVarint(&replicas_left));
  if (replicas_left > ChordNode::kSuccessorListSize) {
    return Status::Corruption("batch upsert replica count out of range");
  }
  IQN_RETURN_IF_ERROR(reader.CheckCountFits(count, 3, "batch upsert entry"));
  for (uint64_t i = 0; i < count; ++i) {
    std::string key, subkey;
    Bytes value;
    IQN_RETURN_IF_ERROR(reader.GetString(&key));
    IQN_RETURN_IF_ERROR(reader.GetString(&subkey));
    IQN_RETURN_IF_ERROR(reader.GetBytes(&value));
    PutLocal(key, subkey, std::move(value));
    BumpVersion(key);
  }
  if (replicas_left > 1) {
    // Re-encode with a decremented replica count for the chain.
    ByteWriter writer;
    writer.PutVarint(count);
    writer.PutVarint(replicas_left - 1);
    ByteReader replay(msg.payload);
    uint64_t c2, r2;
    // Re-reads of the two counts parsed above; they cannot fail here.
    (void)replay.GetVarint(&c2);
    (void)replay.GetVarint(&r2);  // see above
    for (uint64_t i = 0; i < count; ++i) {
      std::string key, subkey;
      Bytes value;
      IQN_RETURN_IF_ERROR(replay.GetString(&key));
      IQN_RETURN_IF_ERROR(replay.GetString(&subkey));
      IQN_RETURN_IF_ERROR(replay.GetBytes(&value));
      writer.PutString(key);
      writer.PutString(subkey);
      writer.PutBytes(value);
    }
    ForwardToSuccessor("kv.upsert_batch", writer.Take());
  }
  return Bytes{};
}

Result<Bytes> DhtStore::HandleGet(const Message& msg) {
  ByteReader reader(msg.payload);
  std::string key;
  IQN_RETURN_IF_ERROR(reader.GetString(&key));
  ByteWriter writer;
  auto it = data_.find(key);
  if (it == data_.end()) {
    writer.PutVarint(0);
  } else {
    writer.PutVarint(it->second.size());
    for (const auto& [subkey, value] : it->second) {
      writer.PutBytes(value);
    }
  }
  return writer.Take();
}

Result<Bytes> DhtStore::HandleGetTop(const Message& msg) {
  ByteReader reader(msg.payload);
  std::string key;
  uint64_t limit;
  IQN_RETURN_IF_ERROR(reader.GetString(&key));
  IQN_RETURN_IF_ERROR(reader.GetVarint(&limit));

  ByteWriter writer;
  auto it = data_.find(key);
  if (it == data_.end()) {
    writer.PutVarint(0);
    return writer.Take();
  }
  if (limit == 0 || !value_scorer_ || it->second.size() <= limit) {
    writer.PutVarint(it->second.size());
    for (const auto& [subkey, value] : it->second) writer.PutBytes(value);
    return writer.Take();
  }
  // Rank server-side and ship only the best `limit` values.
  std::vector<std::pair<double, const Bytes*>> ranked;
  ranked.reserve(it->second.size());
  for (const auto& [subkey, value] : it->second) {
    ranked.emplace_back(value_scorer_(value), &value);
  }
  std::partial_sort(ranked.begin(), ranked.begin() + limit, ranked.end(),
                    [](const auto& a, const auto& b) { return a.first > b.first; });
  writer.PutVarint(limit);
  for (size_t i = 0; i < limit; ++i) writer.PutBytes(*ranked[i].second);
  return writer.Take();
}

Result<Bytes> DhtStore::HandleRemove(const Message& msg) {
  ByteReader reader(msg.payload);
  std::string key, subkey;
  uint64_t replicas_left;
  IQN_RETURN_IF_ERROR(reader.GetString(&key));
  IQN_RETURN_IF_ERROR(reader.GetString(&subkey));
  IQN_RETURN_IF_ERROR(reader.GetVarint(&replicas_left));
  if (replicas_left > ChordNode::kSuccessorListSize) {
    return Status::Corruption("remove replica count out of range");
  }

  if (EraseLocal(key, subkey)) BumpVersion(key);
  if (replicas_left > 1) {
    ForwardToSuccessor("kv.remove", EncodeRemove(key, subkey, replicas_left - 1));
  }
  return Bytes{};
}

Result<Bytes> DhtStore::HandleHandoff(const Message& msg) {
  ByteReader reader(msg.payload);
  uint64_t num_keys;
  IQN_RETURN_IF_ERROR(reader.GetVarint(&num_keys));
  IQN_RETURN_IF_ERROR(reader.CheckCountFits(num_keys, 2, "handoff key"));
  for (uint64_t i = 0; i < num_keys; ++i) {
    std::string key;
    uint64_t num_subs;
    IQN_RETURN_IF_ERROR(reader.GetString(&key));
    IQN_RETURN_IF_ERROR(reader.GetVarint(&num_subs));
    IQN_RETURN_IF_ERROR(reader.CheckCountFits(num_subs, 2, "handoff subkey"));
    for (uint64_t j = 0; j < num_subs; ++j) {
      std::string subkey;
      Bytes value;
      IQN_RETURN_IF_ERROR(reader.GetString(&subkey));
      IQN_RETURN_IF_ERROR(reader.GetBytes(&value));
      PutLocal(key, subkey, std::move(value));
      BumpVersion(key);
    }
  }
  return Bytes{};
}

// ------------------------ scored-entry operations ----------------------

namespace {

Bytes EncodeScoredSubkeys(const std::vector<DhtStore::ScoredSubkey>& list) {
  ByteWriter writer;
  writer.PutVarint(list.size());
  for (const auto& entry : list) {
    writer.PutString(entry.subkey);
    writer.PutDouble(entry.score);
  }
  return writer.Take();
}

Result<std::vector<DhtStore::ScoredSubkey>> DecodeScoredSubkeys(
    const Bytes& bytes) {
  ByteReader reader(bytes);
  uint64_t n;
  IQN_RETURN_IF_ERROR(reader.GetVarint(&n));
  // Each entry is a length-prefixed subkey (>= 1 byte) plus an 8-byte
  // score; reject counts the buffer cannot hold before allocating.
  IQN_RETURN_IF_ERROR(reader.CheckCountFits(n, 9, "scored subkey"));
  std::vector<DhtStore::ScoredSubkey> list(n);
  for (auto& entry : list) {
    IQN_RETURN_IF_ERROR(reader.GetString(&entry.subkey));
    IQN_RETURN_IF_ERROR(reader.GetDouble(&entry.score));
  }
  return list;
}

void SortByScoreDesc(std::vector<DhtStore::ScoredSubkey>* list) {
  std::sort(list->begin(), list->end(),
            [](const DhtStore::ScoredSubkey& a,
               const DhtStore::ScoredSubkey& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.subkey < b.subkey;
            });
}

}  // namespace

std::vector<DhtStore::ScoredSubkey> DhtStore::ScoreAllLocal(
    const std::string& key) const {
  std::vector<ScoredSubkey> scored;
  auto it = data_.find(key);
  if (it == data_.end() || !value_scorer_) return scored;
  scored.reserve(it->second.size());
  for (const auto& [subkey, value] : it->second) {
    // Threshold-algorithm correctness (distributed_topk) requires
    // non-negative scores; scorers flag malformed values with negatives.
    scored.push_back(ScoredSubkey{subkey, std::max(0.0, value_scorer_(value))});
  }
  return scored;
}

Result<Bytes> DhtStore::HandleScoresTopK(const Message& msg) {
  ByteReader reader(msg.payload);
  std::string key;
  uint64_t k;
  IQN_RETURN_IF_ERROR(reader.GetString(&key));
  IQN_RETURN_IF_ERROR(reader.GetVarint(&k));
  std::vector<ScoredSubkey> scored = ScoreAllLocal(key);
  SortByScoreDesc(&scored);
  if (scored.size() > k) scored.resize(k);
  return EncodeScoredSubkeys(scored);
}

Result<Bytes> DhtStore::HandleScoresAbove(const Message& msg) {
  ByteReader reader(msg.payload);
  std::string key;
  double threshold;
  IQN_RETURN_IF_ERROR(reader.GetString(&key));
  IQN_RETURN_IF_ERROR(reader.GetDouble(&threshold));
  std::vector<ScoredSubkey> scored = ScoreAllLocal(key);
  std::vector<ScoredSubkey> kept;
  for (auto& entry : scored) {
    if (entry.score >= threshold) kept.push_back(std::move(entry));
  }
  SortByScoreDesc(&kept);
  return EncodeScoredSubkeys(kept);
}

Result<Bytes> DhtStore::HandleFetchScores(const Message& msg) {
  ByteReader reader(msg.payload);
  std::string key;
  uint64_t n;
  IQN_RETURN_IF_ERROR(reader.GetString(&key));
  IQN_RETURN_IF_ERROR(reader.GetVarint(&n));
  IQN_RETURN_IF_ERROR(reader.CheckCountFits(n, 1, "fetch-scores subkey"));
  auto it = data_.find(key);
  std::vector<ScoredSubkey> scored;
  scored.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    std::string subkey;
    IQN_RETURN_IF_ERROR(reader.GetString(&subkey));
    double score = 0.0;
    if (it != data_.end() && value_scorer_) {
      auto sub_it = it->second.find(subkey);
      if (sub_it != it->second.end()) {
        score = std::max(0.0, value_scorer_(sub_it->second));
      }
    }
    scored.push_back(ScoredSubkey{std::move(subkey), score});
  }
  return EncodeScoredSubkeys(scored);
}

Result<Bytes> DhtStore::HandleFetchEntries(const Message& msg) {
  ByteReader reader(msg.payload);
  std::string key;
  uint64_t n;
  IQN_RETURN_IF_ERROR(reader.GetString(&key));
  IQN_RETURN_IF_ERROR(reader.GetVarint(&n));
  IQN_RETURN_IF_ERROR(reader.CheckCountFits(n, 1, "fetch-entries subkey"));
  auto it = data_.find(key);
  ByteWriter writer;
  std::vector<const Bytes*> found;
  for (uint64_t i = 0; i < n; ++i) {
    std::string subkey;
    IQN_RETURN_IF_ERROR(reader.GetString(&subkey));
    if (it == data_.end()) continue;
    auto sub_it = it->second.find(subkey);
    if (sub_it != it->second.end()) found.push_back(&sub_it->second);
  }
  writer.PutVarint(found.size());
  for (const Bytes* value : found) writer.PutBytes(*value);
  return writer.Take();
}

Result<std::vector<DhtStore::ScoredSubkey>> DhtStore::ScoresTopK(
    const std::string& key, size_t k) {
  ByteWriter writer;
  writer.PutString(key);
  writer.PutVarint(k);
  IQN_ASSIGN_OR_RETURN(Bytes resp,
                       OwnerRpc(key, "kv.scores_topk", writer.Take()));
  return DecodeScoredSubkeys(resp);
}

Result<std::vector<DhtStore::ScoredSubkey>> DhtStore::ScoresAbove(
    const std::string& key, double threshold) {
  ByteWriter writer;
  writer.PutString(key);
  writer.PutDouble(threshold);
  IQN_ASSIGN_OR_RETURN(Bytes resp,
                       OwnerRpc(key, "kv.scores_above", writer.Take()));
  return DecodeScoredSubkeys(resp);
}

Result<std::vector<DhtStore::ScoredSubkey>> DhtStore::FetchScores(
    const std::string& key, const std::vector<std::string>& subkeys) {
  ByteWriter writer;
  writer.PutString(key);
  writer.PutVarint(subkeys.size());
  for (const auto& subkey : subkeys) writer.PutString(subkey);
  IQN_ASSIGN_OR_RETURN(Bytes resp,
                       OwnerRpc(key, "kv.fetch_scores", writer.Take()));
  return DecodeScoredSubkeys(resp);
}

Result<std::vector<Bytes>> DhtStore::FetchEntries(
    const std::string& key, const std::vector<std::string>& subkeys) {
  ByteWriter writer;
  writer.PutString(key);
  writer.PutVarint(subkeys.size());
  for (const auto& subkey : subkeys) writer.PutString(subkey);
  IQN_ASSIGN_OR_RETURN(Bytes resp,
                       OwnerRpc(key, "kv.fetch_entries", writer.Take()));
  ByteReader reader(resp);
  uint64_t n;
  IQN_RETURN_IF_ERROR(reader.GetVarint(&n));
  IQN_RETURN_IF_ERROR(reader.CheckCountFits(n, 1, "fetched entry"));
  std::vector<Bytes> values(n);
  for (auto& v : values) IQN_RETURN_IF_ERROR(reader.GetBytes(&v));
  return values;
}

void DhtStore::HandoffAll(const ChordPeer& successor) {
  if (data_.empty() || !successor.valid()) return;
  ByteWriter writer;
  writer.PutVarint(data_.size());
  for (const auto& [key, subs] : data_) {
    writer.PutString(key);
    writer.PutVarint(subs.size());
    for (const auto& [subkey, value] : subs) {
      writer.PutString(subkey);
      writer.PutBytes(value);
    }
  }
  // Best effort: a lost handoff is repaired by the next re-post.
  (void)CallRpc(node_->network(), node_->address(), successor.address,
                              "kv.handoff", writer.Take());
  Account(-accounted_bytes_);
  data_.clear();
}

Status DhtStore::Upsert(const std::string& key, const std::string& subkey,
                        Bytes value) {
  // Attach() validated the replication factor; the forwarding chain and
  // the wire-side replica checks both depend on it staying in range.
  IQN_DCHECK_GE(replication_, size_t{1});
  IQN_DCHECK_LE(replication_, ChordNode::kSuccessorListSize);
  IQN_ASSIGN_OR_RETURN(LookupResult found,
                       node_->FindSuccessor(RingIdForKey(key)));
  Bytes payload = EncodeUpsert(key, subkey, value, replication_);
  if (found.owner == node_->self()) {
    Message self_msg{node_->address(), node_->address(), "kv.upsert",
                     std::move(payload)};
    return HandleUpsert(self_msg).ok() ? Status::OK()
                                       : Status::Internal("local upsert");
  }
  Result<Bytes> r = CallRpc(node_->network(), node_->address(),
                                          found.owner.address, "kv.upsert",
                                          std::move(payload));
  return r.ok() ? Status::OK() : r.status();
}

Status DhtStore::UpsertBatch(const std::vector<Entry>& entries) {
  if (entries.empty()) return Status::OK();
  // Group entries by the address of their Chord owner (one lookup per
  // distinct key, one data message per distinct owner).
  std::map<NodeAddress, std::vector<const Entry*>> by_owner;
  for (const Entry& entry : entries) {
    IQN_ASSIGN_OR_RETURN(LookupResult found,
                         node_->FindSuccessor(RingIdForKey(entry.key)));
    by_owner[found.owner.address].push_back(&entry);
  }
  for (const auto& [owner, group] : by_owner) {
    ByteWriter writer;
    writer.PutVarint(group.size());
    writer.PutVarint(replication_);
    for (const Entry* entry : group) {
      writer.PutString(entry->key);
      writer.PutString(entry->subkey);
      writer.PutBytes(entry->value);
    }
    if (owner == node_->address()) {
      Message self_msg{node_->address(), node_->address(), "kv.upsert_batch",
                       writer.Take()};
      Result<Bytes> r = HandleUpsertBatch(self_msg);
      if (!r.ok()) return r.status();
    } else {
      Result<Bytes> r = CallRpc(node_->network(), node_->address(), owner,
                                              "kv.upsert_batch", writer.Take());
      if (!r.ok()) return r.status();
    }
  }
  return Status::OK();
}

Result<std::vector<Bytes>> DhtStore::GetTop(const std::string& key,
                                            size_t limit) {
  ByteWriter writer;
  writer.PutString(key);
  writer.PutVarint(limit);
  Bytes payload = writer.Take();

  Result<Bytes> resp = Status::Internal("unreached");
  for (int attempt = 0; attempt < 2; ++attempt) {
    IQN_ASSIGN_OR_RETURN(LookupResult found,
                         node_->FindSuccessor(RingIdForKey(key)));
    if (found.owner == node_->self()) {
      Message self_msg{node_->address(), node_->address(), "kv.get_top",
                       payload};
      resp = HandleGetTop(self_msg);
    } else {
      resp = CallRpc(node_->network(), node_->address(), found.owner.address,
                                   "kv.get_top", payload);
    }
    if (resp.ok()) break;
  }
  if (!resp.ok()) return resp.status();

  ByteReader reader(resp.value());
  uint64_t n;
  IQN_RETURN_IF_ERROR(reader.GetVarint(&n));
  IQN_RETURN_IF_ERROR(reader.CheckCountFits(n, 1, "get-top value"));
  std::vector<Bytes> values(n);
  for (auto& v : values) IQN_RETURN_IF_ERROR(reader.GetBytes(&v));
  return values;
}

Result<std::vector<Bytes>> DhtStore::GetAll(const std::string& key) {
  ByteWriter writer;
  writer.PutString(key);
  Bytes payload = writer.Take();

  // Two attempts: a lookup that routed to a node that just died is
  // retried once (after which routing state may already have skipped it).
  Result<Bytes> resp = Status::Internal("unreached");
  for (int attempt = 0; attempt < 2; ++attempt) {
    IQN_ASSIGN_OR_RETURN(LookupResult found,
                         node_->FindSuccessor(RingIdForKey(key)));
    if (found.owner == node_->self()) {
      Message self_msg{node_->address(), node_->address(), "kv.get", payload};
      resp = HandleGet(self_msg);
    } else {
      resp = CallRpc(node_->network(), node_->address(), found.owner.address,
                                   "kv.get", payload);
    }
    if (resp.ok()) break;
  }
  if (!resp.ok()) return resp.status();

  ByteReader reader(resp.value());
  uint64_t n;
  IQN_RETURN_IF_ERROR(reader.GetVarint(&n));
  IQN_RETURN_IF_ERROR(reader.CheckCountFits(n, 1, "get-all value"));
  std::vector<Bytes> values(n);
  for (auto& v : values) IQN_RETURN_IF_ERROR(reader.GetBytes(&v));
  return values;
}

Status DhtStore::Remove(const std::string& key, const std::string& subkey) {
  IQN_ASSIGN_OR_RETURN(LookupResult found,
                       node_->FindSuccessor(RingIdForKey(key)));
  Bytes payload = EncodeRemove(key, subkey, replication_);
  if (found.owner == node_->self()) {
    Message self_msg{node_->address(), node_->address(), "kv.remove",
                     std::move(payload)};
    return HandleRemove(self_msg).ok() ? Status::OK()
                                       : Status::Internal("local remove");
  }
  Result<Bytes> r = CallRpc(node_->network(), node_->address(),
                                          found.owner.address, "kv.remove",
                                          std::move(payload));
  return r.ok() ? Status::OK() : r.status();
}

size_t DhtStore::LocalEntryCount(const std::string& key) const {
  auto it = data_.find(key);
  return it == data_.end() ? 0 : it->second.size();
}

}  // namespace iqn

// Per-peer failure detection and circuit breaking for the simulated
// network.
//
// HealthTracker maintains, per destination node, an EWMA of observed
// RPC error outcomes and simulated latencies, and a circuit-breaker
// state machine (closed -> open -> half-open -> closed). When a peer's
// error EWMA crosses error_threshold (or its latency EWMA crosses
// latency_threshold_ms) the circuit opens: AllowRequest refuses
// traffic to the peer until cooldown_ms of *simulated* time has
// elapsed, after which the circuit is half-open — one probe is allowed
// through and its outcome closes or re-opens the circuit.
//
// Determinism contract (same discipline as minerva's ReputationBook):
// queries only READ the tracker (AllowRequest / StateOf are const and
// touch no mutable state); the engine folds each query's observed RPC
// outcomes back via Observe AFTER a serial query completes, or in
// batch order after a parallel batch joins, always stamped with the
// network's commit-point simulated clock. State transitions are
// therefore pure functions of (observation sequence in commit order,
// simulated time) — no wall-clock, no RNG, no atomics — and identical
// across runs and thread counts.

#ifndef IQN_NET_HEALTH_H_
#define IQN_NET_HEALTH_H_

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "net/message.h"

namespace iqn {

/// Tuning knobs for the failure detector, the circuit breaker, and the
/// engine's deadline-pressure brownout (which lives in minerva but is
/// configured alongside the other overload defenses).
struct HealthParams {
  /// Master switch: when false the engine creates no tracker.
  bool enabled = false;
  /// EWMA smoothing factors in (0, 1]; higher reacts faster.
  double error_alpha = 0.4;
  double latency_alpha = 0.4;
  /// Open the circuit when the error EWMA reaches this.
  double error_threshold = 0.5;
  /// Also open when the latency EWMA reaches this (0 disables the
  /// latency trip wire).
  double latency_threshold_ms = 0.0;
  /// Simulated milliseconds an open circuit waits before half-open.
  double cooldown_ms = 250.0;
  /// Engine brownout: when a query's remaining deadline fraction falls
  /// below this threshold, max_peers is scaled down proportionally
  /// (see MinervaEngine::RunQueryMetered). 0 disables brownout.
  double brownout_threshold = 0.0;
};

/// One observed RPC outcome, buffered during a query and committed to
/// the tracker at the query's commit point.
struct HealthObservation {
  NodeAddress dst = 0;
  bool ok = true;
  /// Total simulated latency the logical RPC cost the caller
  /// (including retries, backoff, and fault penalties).
  double latency_ms = 0.0;
};

class HealthTracker {
 public:
  enum class CircuitState { kClosed, kOpen, kHalfOpen };

  explicit HealthTracker(const HealthParams& params) : params_(params) {}

  HealthTracker(const HealthTracker&) = delete;
  HealthTracker& operator=(const HealthTracker&) = delete;

  const HealthParams& params() const { return params_; }

  /// True when traffic to `dst` is allowed at simulated time `now_ms`:
  /// the circuit is closed, or it is open but the cooldown has elapsed
  /// (half-open — the caller's request doubles as the probe).
  /// Read-only; safe to call concurrently with other readers.
  bool AllowRequest(NodeAddress dst, double now_ms) const;

  /// The circuit state of `dst` at simulated time `now_ms`.
  CircuitState StateOf(NodeAddress dst, double now_ms) const;

  /// Folds one observed outcome into `dst`'s EWMAs and steps the
  /// circuit state machine. ENGINE COMMIT POINTS ONLY — never during
  /// a query (see the determinism contract above). `now_ms` is the
  /// network's simulated clock at the commit point.
  void Observe(NodeAddress dst, bool ok, double latency_ms, double now_ms);

  /// Number of peers with at least one observation.
  size_t peers_tracked() const { return peers_.size(); }

  /// Human-readable per-peer state, for tests and debugging.
  std::string DebugString() const;

 private:
  struct PeerHealth {
    double error_ewma = 0.0;
    double latency_ewma = 0.0;
    bool open = false;
    double opened_at_ms = 0.0;
  };

  HealthParams params_;
  // Ordered map: iteration order (DebugString, future export) must not
  // depend on hash seeds.
  std::map<NodeAddress, PeerHealth> peers_;
};

}  // namespace iqn

#endif  // IQN_NET_HEALTH_H_

#include "net/message.h"

namespace iqn {

size_t Message::WireSize() const {
  // 2 x 8-byte address + 4-byte length framing + type string + payload.
  return 20 + type.size() + payload.size();
}

}  // namespace iqn

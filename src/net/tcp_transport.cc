#include "net/tcp_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <ctime>
#include <utility>

#include "net/network.h"

namespace iqn {

namespace {

int64_t MonotonicMs() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000 + ts.tv_nsec / 1000000;
}

// "host:port" with a numeric IPv4 host ("localhost" and "" mean
// 127.0.0.1). Port 0 is allowed for listen sockets (ephemeral).
Status ParseEndpoint(const std::string& endpoint, sockaddr_in* out) {
  size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos) {
    return Status::InvalidArgument("endpoint '" + endpoint +
                                   "' is not host:port");
  }
  std::string host = endpoint.substr(0, colon);
  const std::string port_str = endpoint.substr(colon + 1);
  if (host.empty() || host == "localhost") host = "127.0.0.1";
  char* end = nullptr;
  const long port = std::strtol(port_str.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || port < 0 || port > 65535) {
    return Status::InvalidArgument("endpoint '" + endpoint +
                                   "' has an invalid port");
  }
  std::memset(out, 0, sizeof(*out));
  out->sin_family = AF_INET;
  out->sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &out->sin_addr) != 1) {
    return Status::InvalidArgument("endpoint '" + endpoint +
                                   "' has an invalid IPv4 host");
  }
  return Status::OK();
}

void SetSocketTimeouts(int fd, int timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

// One blocking connect attempt (SO_SNDTIMEO bounds it).
Result<int> TryConnect(const sockaddr_in& addr, int io_timeout_ms) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  SetSocketTimeouts(fd, io_timeout_ms);
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    close(fd);
    return Status::Unavailable(std::string("connect: ") + std::strerror(err));
  }
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

// Connect, retrying while the peer's listen socket may not exist yet
// (cluster startup races). Gives up after connect_wait_ms.
Result<int> ConnectWithRetry(const std::string& endpoint, int io_timeout_ms,
                             int connect_wait_ms) {
  sockaddr_in addr{};
  IQN_RETURN_IF_ERROR(ParseEndpoint(endpoint, &addr));
  const int64_t deadline = MonotonicMs() + connect_wait_ms;
  for (;;) {
    Result<int> fd = TryConnect(addr, io_timeout_ms);
    if (fd.ok()) return fd;
    if (MonotonicMs() >= deadline) {
      return Status::Unavailable("peer at " + endpoint +
                                 " unreachable: " + fd.status().message());
    }
    poll(nullptr, 0, 20);  // retry backoff; no fd to wait on yet
  }
}

// Writes the whole buffer; handles EINTR and, for non-blocking server
// sockets, waits for writability on EAGAIN (bounded by timeout_ms).
Status WriteAll(int fd, const uint8_t* data, size_t size, int timeout_ms) {
  size_t sent = 0;
  while (sent < size) {
    const ssize_t n = send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      pollfd pfd{fd, POLLOUT, 0};
      const int ready = poll(&pfd, 1, timeout_ms);
      if (ready <= 0) {
        return Status::DeadlineExceeded("timed out writing frame");
      }
      continue;
    }
    return Status::Unavailable(std::string("send: ") + std::strerror(errno));
  }
  return Status::OK();
}

// Blocking read of exactly one frame (SO_RCVTIMEO bounds each recv).
Result<Frame> ReadFrameBlocking(int fd, size_t max_frame_bytes,
                                bool* reusable) {
  *reusable = false;
  FrameAssembler assembler(max_frame_bytes);
  uint8_t buf[64 * 1024];
  for (;;) {
    const ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      IQN_RETURN_IF_ERROR(assembler.Feed(buf, static_cast<size_t>(n)));
      Frame frame;
      IQN_ASSIGN_OR_RETURN(const bool complete, assembler.Next(&frame));
      if (complete) {
        // Pool the socket again only if the peer sent exactly the one
        // response we waited for; stray bytes mean protocol confusion.
        *reusable = assembler.buffered() == 0;
        return frame;
      }
      continue;
    }
    if (n == 0) {
      return Status::Unavailable("connection closed while awaiting response");
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::DeadlineExceeded("timed out awaiting response frame");
    }
    return Status::Unavailable(std::string("recv: ") + std::strerror(errno));
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// TcpTransport

TcpTransport::TcpTransport(const TransportOptions& options,
                           const LatencyModel& latency)
    : Transport(latency), options_(options), rank_(options.rank) {
  peers_.reserve(options.endpoints.size());
  for (const std::string& endpoint : options.endpoints) {
    peers_.push_back(PeerInfo{endpoint});
  }
}

Result<std::unique_ptr<TcpTransport>> TcpTransport::Create(
    const TransportOptions& options, const LatencyModel& latency) {
  if (options.kind != TransportKind::kTcp) {
    return Status::InvalidArgument("TcpTransport requires kind == tcp");
  }
  if (options.endpoints.empty()) {
    return Status::InvalidArgument(
        "tcp transport requires at least one endpoint (one per rank)");
  }
  if (options.rank >= options.endpoints.size()) {
    return Status::InvalidArgument(
        "tcp transport rank " + std::to_string(options.rank) +
        " out of range for " + std::to_string(options.endpoints.size()) +
        " endpoints");
  }
  if (options.max_frame_bytes == 0) {
    return Status::InvalidArgument("max_frame_bytes must be positive");
  }
  std::unique_ptr<TcpTransport> transport(
      new TcpTransport(options, latency));
  IQN_RETURN_IF_ERROR(transport->Start());
  return transport;
}

TcpTransport::~TcpTransport() { Shutdown(); }

bool TcpTransport::IsLocal(NodeAddress addr) const {
  return addr < num_nodes() && OwnerRank(addr) == rank_;
}

Status TcpTransport::SetPeerEndpoint(uint32_t rank,
                                     const std::string& endpoint) {
  if (rank >= peers_.size()) {
    return Status::InvalidArgument("no such rank " + std::to_string(rank));
  }
  sockaddr_in parsed{};
  IQN_RETURN_IF_ERROR(ParseEndpoint(endpoint, &parsed));
  peers_[rank].endpoint = endpoint;
  std::vector<int> stale;
  {
    MutexLock lock(&conn_mu_);
    stale.swap(idle_conns_[rank]);
  }
  for (const int fd : stale) close(fd);
  return Status::OK();
}

void TcpTransport::SetControlHandler(ControlHandler handler) {
  control_handler_ = std::move(handler);
}

Status TcpTransport::Start() {
  {
    MutexLock lock(&conn_mu_);
    idle_conns_.resize(peers_.size());
  }
  sockaddr_in addr{};
  IQN_RETURN_IF_ERROR(ParseEndpoint(peers_[rank_].endpoint, &addr));

  listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
           sizeof(addr)) != 0) {
    return Status::Unavailable("bind " + peers_[rank_].endpoint + ": " +
                               std::strerror(errno));
  }
  if (listen(listen_fd_, 128) != 0) {
    return Status::Internal(std::string("listen: ") + std::strerror(errno));
  }
  // Resolve the actual port (the configured one may have been 0).
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                  &bound_len) != 0) {
    return Status::Internal(std::string("getsockname: ") +
                            std::strerror(errno));
  }
  char host[INET_ADDRSTRLEN] = {0};
  inet_ntop(AF_INET, &bound.sin_addr, host, sizeof(host));
  listen_endpoint_ =
      std::string(host) + ":" + std::to_string(ntohs(bound.sin_port));
  peers_[rank_].endpoint = listen_endpoint_;

  if (pipe2(wake_fds_, O_NONBLOCK) != 0) {
    return Status::Internal(std::string("pipe2: ") + std::strerror(errno));
  }
  epoll_fd_ = epoll_create1(0);
  if (epoll_fd_ < 0) {
    return Status::Internal(std::string("epoll_create1: ") +
                            std::strerror(errno));
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) != 0) {
    return Status::Internal(std::string("epoll_ctl: ") +
                            std::strerror(errno));
  }
  ev.data.fd = wake_fds_[0];
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fds_[0], &ev) != 0) {
    return Status::Internal(std::string("epoll_ctl: ") +
                            std::strerror(errno));
  }

  IQN_ASSIGN_OR_RETURN(loop_pool_, ThreadPool::Create(1));
  {
    MutexLock lock(&loop_mu_);
    loop_running_ = true;
  }
  Status scheduled = loop_pool_->Schedule([this] { ServeLoop(); });
  if (!scheduled.ok()) {
    MutexLock lock(&loop_mu_);
    loop_running_ = false;
    return scheduled;
  }
  return Status::OK();
}

void TcpTransport::ServeLoop() {
  epoll_event events[64];
  for (;;) {
    {
      MutexLock lock(&loop_mu_);
      if (stopping_) break;
    }
    const int n = epoll_wait(epoll_fd_, events, 64, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fds_[0]) {
        uint8_t drain[16];
        while (read(wake_fds_[0], drain, sizeof(drain)) > 0) {
        }
        continue;  // the top of the loop re-checks stopping_
      }
      if (fd == listen_fd_) {
        for (;;) {
          const int conn = accept4(listen_fd_, nullptr, nullptr,
                                   SOCK_NONBLOCK);
          if (conn < 0) break;
          const int one = 1;
          setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
          epoll_event cev{};
          cev.events = EPOLLIN;
          cev.data.fd = conn;
          if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, conn, &cev) == 0) {
            accepted_[conn] =
                std::make_unique<FrameAssembler>(options_.max_frame_bytes);
          } else {
            close(conn);
          }
        }
        continue;
      }
      if (!HandleReadable(fd)) {
        epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
        accepted_.erase(fd);
        close(fd);
      }
    }
  }
  for (const auto& [fd, assembler] : accepted_) close(fd);
  accepted_.clear();
  MutexLock lock(&loop_mu_);
  loop_running_ = false;
  loop_cv_.NotifyAll();
}

bool TcpTransport::HandleReadable(int fd) {
  const auto it = accepted_.find(fd);
  if (it == accepted_.end()) return false;
  uint8_t buf[64 * 1024];
  for (;;) {
    const ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      if (!it->second->Feed(buf, static_cast<size_t>(n)).ok()) {
        return false;  // oversized frame announced: drop the connection
      }
      for (;;) {
        Frame frame;
        Result<bool> got = it->second->Next(&frame);
        if (!got.ok()) return false;  // undecodable body: drop
        if (!got.value()) break;
        DispatchFrame(fd, frame);
      }
      continue;
    }
    if (n == 0) return false;  // peer closed
    if (errno == EINTR) continue;
    return errno == EAGAIN || errno == EWOULDBLOCK;
  }
}

void TcpTransport::DispatchFrame(int fd, const Frame& frame) {
  Result<Bytes> outcome = [&]() -> Result<Bytes> {
    if (frame.type == FrameType::kControl) {
      if (!control_handler_) {
        return Status::Unimplemented("no control handler installed");
      }
      return control_handler_(frame.verb, frame.payload);
    }
    if (frame.type != FrameType::kRequest) {
      return Status::InvalidArgument(
          "unexpected response frame on a server connection");
    }
    if (frame.dst >= num_nodes()) {
      return Status::NotFound("RPC to unregistered node");
    }
    if (!IsLocal(frame.dst)) {
      return Status::InvalidArgument(
          "node " + std::to_string(frame.dst) + " is owned by rank " +
          std::to_string(OwnerRank(frame.dst)) + ", not rank " +
          std::to_string(rank_));
    }
    if (!IsNodeUp(frame.dst)) {
      return Status::Unavailable("node " + std::to_string(frame.dst) +
                                 " is down");
    }
    Message msg;
    msg.src = frame.src;
    msg.dst = frame.dst;
    msg.type = frame.verb;
    msg.payload = frame.payload;
    return InvokeLocalHandler(msg);
  }();

  Frame response =
      outcome.ok()
          ? MakeResponseFrame(frame.request_id, Status::OK(),
                              std::move(outcome).value())
          : MakeResponseFrame(frame.request_id, outcome.status(), Bytes{});
  Bytes wire = EncodeFrame(response);
  if (wire.size() - kFrameLengthPrefixBytes > options_.max_frame_bytes) {
    response = MakeResponseFrame(
        frame.request_id,
        Status::InvalidArgument("response exceeds max_frame_bytes"), Bytes{});
    wire = EncodeFrame(response);
  }
  // Best effort: if the caller vanished mid-exchange it learns from its
  // own socket error; nothing to do with a failed write here.
  (void)WriteAll(fd, wire.data(), wire.size(), options_.io_timeout_ms);
}

Result<int> TcpTransport::LeaseConnection(uint32_t rank) {
  {
    MutexLock lock(&conn_mu_);
    if (!idle_conns_[rank].empty()) {
      const int fd = idle_conns_[rank].back();
      idle_conns_[rank].pop_back();
      return fd;
    }
  }
  return ConnectWithRetry(peers_[rank].endpoint, options_.io_timeout_ms,
                          options_.connect_wait_ms);
}

void TcpTransport::ReturnConnection(uint32_t rank, int fd) {
  MutexLock lock(&conn_mu_);
  idle_conns_[rank].push_back(fd);
}

Result<Bytes> TcpTransport::RemoteCall(uint32_t rank, const Message& msg,
                                       uint64_t attempt) {
  Frame request;
  request.type = FrameType::kRequest;
  {
    MutexLock lock(&conn_mu_);
    request.request_id = next_request_id_++;
  }
  request.src = msg.src;
  request.dst = msg.dst;
  request.attempt = attempt;
  request.verb = msg.type;
  request.payload = msg.payload;
  const Bytes wire = EncodeFrame(request);
  if (wire.size() - kFrameLengthPrefixBytes > options_.max_frame_bytes) {
    return Status::InvalidArgument(
        "request frame of " +
        std::to_string(wire.size() - kFrameLengthPrefixBytes) +
        " bytes exceeds limit of " + std::to_string(options_.max_frame_bytes));
  }
  IQN_ASSIGN_OR_RETURN(const int fd, LeaseConnection(rank));
  Status sent = WriteAll(fd, wire.data(), wire.size(), options_.io_timeout_ms);
  if (!sent.ok()) {
    close(fd);
    return sent;
  }
  bool reusable = false;
  Result<Frame> response =
      ReadFrameBlocking(fd, options_.max_frame_bytes, &reusable);
  if (!response.ok()) {
    close(fd);
    return response.status();
  }
  if (response.value().type != FrameType::kResponse ||
      response.value().request_id != request.request_id) {
    close(fd);
    return Status::Internal("response frame does not match request");
  }
  if (reusable) {
    ReturnConnection(rank, fd);
  } else {
    close(fd);
  }
  IQN_RETURN_IF_ERROR(FrameStatus(response.value()));
  return std::move(response.value().payload);
}

Result<Bytes> TcpTransport::Deliver(const Message& msg, uint64_t attempt) {
  if (IsLocal(msg.dst)) {
    return InvokeLocalHandler(msg);
  }
  return RemoteCall(OwnerRank(msg.dst), msg, attempt);
}

void TcpTransport::Shutdown() {
  {
    MutexLock lock(&loop_mu_);
    if (stopping_) {
      while (loop_running_) loop_cv_.Wait(&loop_mu_);
      return;
    }
    stopping_ = true;
  }
  if (wake_fds_[1] >= 0) {
    const uint8_t byte = 1;
    // Best effort: a full pipe already guarantees a pending wakeup.
    (void)!write(wake_fds_[1], &byte, 1);
  }
  {
    MutexLock lock(&loop_mu_);
    while (loop_running_) loop_cv_.Wait(&loop_mu_);
  }
  if (loop_pool_ != nullptr) loop_pool_->Shutdown();
  if (listen_fd_ >= 0) close(listen_fd_);
  if (epoll_fd_ >= 0) close(epoll_fd_);
  if (wake_fds_[0] >= 0) close(wake_fds_[0]);
  if (wake_fds_[1] >= 0) close(wake_fds_[1]);
  listen_fd_ = epoll_fd_ = wake_fds_[0] = wake_fds_[1] = -1;
  std::vector<int> stale;
  {
    MutexLock lock(&conn_mu_);
    for (std::vector<int>& pool : idle_conns_) {
      stale.insert(stale.end(), pool.begin(), pool.end());
      pool.clear();
    }
  }
  for (const int fd : stale) close(fd);
}

// ---------------------------------------------------------------------------
// FrameClient

FrameClient::FrameClient(int fd, size_t max_frame_bytes)
    : fd_(fd), max_frame_bytes_(max_frame_bytes) {}

FrameClient::~FrameClient() {
  if (fd_ >= 0) close(fd_);
}

Result<std::unique_ptr<FrameClient>> FrameClient::Connect(
    const std::string& endpoint, int io_timeout_ms, int connect_wait_ms,
    size_t max_frame_bytes) {
  IQN_ASSIGN_OR_RETURN(
      const int fd, ConnectWithRetry(endpoint, io_timeout_ms,
                                     connect_wait_ms));
  return std::unique_ptr<FrameClient>(new FrameClient(fd, max_frame_bytes));
}

Result<Bytes> FrameClient::Call(const std::string& verb, Bytes payload) {
  Frame request;
  request.type = FrameType::kControl;
  request.request_id = next_request_id_++;
  request.verb = verb;
  request.payload = std::move(payload);
  const Bytes wire = EncodeFrame(request);
  if (wire.size() - kFrameLengthPrefixBytes > max_frame_bytes_) {
    return Status::InvalidArgument("control frame exceeds max_frame_bytes");
  }
  IQN_RETURN_IF_ERROR(WriteAll(fd_, wire.data(), wire.size(),
                               /*timeout_ms=*/60000));
  bool reusable = false;
  IQN_ASSIGN_OR_RETURN(
      const Frame response,
      ReadFrameBlocking(fd_, max_frame_bytes_, &reusable));
  if (response.type != FrameType::kResponse ||
      response.request_id != request.request_id) {
    return Status::Internal("response frame does not match request");
  }
  IQN_RETURN_IF_ERROR(FrameStatus(response));
  return response.payload;
}

// ---------------------------------------------------------------------------
// Factory

Result<std::unique_ptr<Transport>> CreateTransport(
    const TransportOptions& options, const LatencyModel& latency) {
  switch (options.kind) {
    case TransportKind::kSimulated: {
      if (!options.endpoints.empty()) {
        return Status::InvalidArgument(
            "simulated transport takes no endpoints");
      }
      std::unique_ptr<Transport> transport =
          std::make_unique<SimulatedNetwork>(latency);
      return transport;
    }
    case TransportKind::kTcp: {
      IQN_ASSIGN_OR_RETURN(std::unique_ptr<TcpTransport> transport,
                           TcpTransport::Create(options, latency));
      std::unique_ptr<Transport> as_base = std::move(transport);
      return as_base;
    }
  }
  return Status::InvalidArgument("unknown transport kind");
}

}  // namespace iqn

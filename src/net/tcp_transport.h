// TCP Transport backend: real sockets between cooperating processes.
//
// Deployment model (DESIGN.md §16): every process ("rank") builds the
// SAME engine — registers the same handlers in the same order, so all
// ranks agree on the dense NodeAddress space — and node address `a` is
// OWNED by rank (a % nranks). An Rpc whose destination is owned locally
// is a direct handler call (exactly SimulatedNetwork); otherwise the
// message is framed (net/frame.h) and sent over a pooled TCP connection
// to the owning rank, whose event loop dispatches it to its local
// handler and streams the response back.
//
// Server side: a non-blocking listen socket plus all accepted
// connections are driven by one epoll event loop running on an internal
// single-thread pool (util/thread_pool.h — the repo's only sanctioned
// thread owner). Complete request frames are dispatched inline on the
// loop thread, which serializes all inbound handler invocations — the
// concurrency story the engine already assumes of a node. Control
// frames ("ctl.*", FrameType::kControl) bypass node addressing and go
// to the installed control handler; tools/minervad.cc builds its whole
// daemon protocol out of them.
//
// Client side: per-destination-rank pools of blocking sockets
// (SO_RCVTIMEO/SO_SNDTIMEO bound the exchange); one socket carries one
// RPC at a time, extra in-flight calls connect extra sockets on demand.
//
// Error mapping, pinned by tests/net/transport_conformance_test.cc:
//   connect refused/timeout  -> Unavailable
//   response wait timeout    -> DeadlineExceeded
//   connection reset mid-RPC -> Unavailable
//   malformed/oversized frame-> Corruption / InvalidArgument
//
// Accounting stays modeled (see net/transport.h): the base class
// charges WireSize-based costs identically to the simulator, so cost
// metrics are bit-identical across backends; only wall-clock changes.

#ifndef IQN_NET_TCP_TRANSPORT_H_
#define IQN_NET_TCP_TRANSPORT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/frame.h"
#include "net/transport.h"
#include "util/mutex.h"
#include "util/thread_pool.h"

namespace iqn {

class TcpTransport : public Transport {
 public:
  /// Validates options (kind == kTcp, rank < endpoints.size()), binds
  /// and listens on this rank's endpoint (port 0 = ephemeral; see
  /// listen_endpoint()), and starts the event loop. Peers need not be
  /// up yet — outbound connects retry for options.connect_wait_ms.
  static Result<std::unique_ptr<TcpTransport>> Create(
      const TransportOptions& options, const LatencyModel& latency);

  /// Stops the loop and closes every socket (== Shutdown()).
  ~TcpTransport() override;

  const char* kind_name() const override { return "tcp"; }

  /// True when this rank owns `addr` (addr % nranks == rank): delivery
  /// is a direct in-process call, no wire involved.
  bool IsLocal(NodeAddress addr) const override;

  uint32_t rank() const { return rank_; }
  uint32_t num_ranks() const { return static_cast<uint32_t>(peers_.size()); }
  /// Rank owning a node address.
  uint32_t OwnerRank(NodeAddress addr) const {
    return static_cast<uint32_t>(addr % peers_.size());
  }

  /// The bound listen endpoint "host:port" — with the actual port when
  /// the configured one was 0 (tests bind ephemeral ports and exchange
  /// them via SetPeerEndpoint before issuing traffic).
  const std::string& listen_endpoint() const { return listen_endpoint_; }

  /// Replaces the endpoint used for future connects to `rank`. Call
  /// before issuing traffic to that rank (not thread-safe against
  /// concurrent Rpc to it); existing pooled connections are dropped.
  Status SetPeerEndpoint(uint32_t rank, const std::string& endpoint);

  /// Handler for control frames ("ctl.*"): verb + request payload ->
  /// response payload. Install before peers start calling; replaces any
  /// previous handler. Runs on the event-loop thread, serialized with
  /// all other inbound dispatch.
  using ControlHandler =
      std::function<Result<Bytes>(const std::string& verb, const Bytes&)>;
  void SetControlHandler(ControlHandler handler);

  /// Stops accepting work, wakes and joins the event loop, closes all
  /// sockets. In-flight outbound calls fail with Unavailable when their
  /// peer shuts down first; calls arriving after shutdown are refused
  /// by the closed listen socket. Idempotent.
  void Shutdown();

 protected:
  /// Local dispatch for owned addresses; frame + socket exchange with
  /// the owning rank otherwise.
  Result<Bytes> Deliver(const Message& msg, uint64_t attempt) override;

 private:
  TcpTransport(const TransportOptions& options, const LatencyModel& latency);

  Status Start();
  void ServeLoop();
  /// Handles readable bytes on an accepted connection; false = close it.
  bool HandleReadable(int fd);
  /// Dispatches one complete inbound frame and writes the response.
  void DispatchFrame(int fd, const Frame& frame);
  /// One remote request/response exchange with `rank`.
  Result<Bytes> RemoteCall(uint32_t rank, const Message& msg,
                           uint64_t attempt);
  /// Leases a pooled (or freshly connected) socket to `rank`.
  Result<int> LeaseConnection(uint32_t rank) IQN_EXCLUDES(conn_mu_);
  void ReturnConnection(uint32_t rank, int fd) IQN_EXCLUDES(conn_mu_);

  struct PeerInfo {
    std::string endpoint;
  };

  const TransportOptions options_;
  const uint32_t rank_;
  std::vector<PeerInfo> peers_;
  std::string listen_endpoint_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  /// Self-pipe: Shutdown() writes a byte to wake the epoll loop.
  int wake_fds_[2] = {-1, -1};

  /// Per accepted connection: reassembly state.
  std::map<int, std::unique_ptr<FrameAssembler>> accepted_;

  ControlHandler control_handler_;

  std::unique_ptr<ThreadPool> loop_pool_;
  Mutex loop_mu_;
  CondVar loop_cv_;
  bool loop_running_ IQN_GUARDED_BY(loop_mu_) = false;
  bool stopping_ IQN_GUARDED_BY(loop_mu_) = false;

  Mutex conn_mu_;
  /// Idle pooled client sockets, per destination rank.
  std::vector<std::vector<int>> idle_conns_ IQN_GUARDED_BY(conn_mu_);
  uint64_t next_request_id_ IQN_GUARDED_BY(conn_mu_) = 1;
};

/// Minimal blocking client for one daemon's control plane: connects to
/// an endpoint and exchanges control frames. This is all
/// tools/minerva_client.cc and the cluster launcher need — no Transport,
/// no engine.
class FrameClient {
 public:
  /// Connects (retrying up to connect_wait_ms for a daemon still
  /// starting); io_timeout_ms bounds each subsequent Call exchange.
  static Result<std::unique_ptr<FrameClient>> Connect(
      const std::string& endpoint, int io_timeout_ms, int connect_wait_ms,
      size_t max_frame_bytes = 16 * 1024 * 1024);

  ~FrameClient();

  FrameClient(const FrameClient&) = delete;
  FrameClient& operator=(const FrameClient&) = delete;

  /// One control round trip: sends `verb` + payload, returns the
  /// response payload or the daemon's error status.
  Result<Bytes> Call(const std::string& verb, Bytes payload);

 private:
  FrameClient(int fd, size_t max_frame_bytes);

  int fd_;
  size_t max_frame_bytes_;
  uint64_t next_request_id_ = 1;
};

}  // namespace iqn

#endif  // IQN_NET_TCP_TRANSPORT_H_

#include "net/network.h"

#include <utility>

namespace iqn {

namespace {

// Innermost live StatsCapture sink of the current thread (nullptr = none).
// thread_local rather than a member so captures need no locking on the
// hot Charge() path; a single process rarely runs several networks, and
// captures are strictly scoped, so sharing the slot across instances is
// harmless.
thread_local NetworkStats* tls_stats_sink = nullptr;

}  // namespace

SimulatedNetwork::StatsCapture::StatsCapture(SimulatedNetwork* network,
                                             NetworkStats* sink)
    : previous_(tls_stats_sink) {
  (void)network;  // captured traffic is identified per-thread, not per-net
  tls_stats_sink = sink;
}

SimulatedNetwork::StatsCapture::~StatsCapture() {
  tls_stats_sink = previous_;
}

NetworkStats* SimulatedNetwork::ActiveStats() {
  return tls_stats_sink != nullptr ? tls_stats_sink : &stats_;
}

void SimulatedNetwork::MergeStats(const NetworkStats& delta) {
  stats_.messages += delta.messages;
  stats_.bytes += delta.bytes;
  stats_.latency_ms += delta.latency_ms;
  for (const auto& [type, count] : delta.messages_by_type) {
    stats_.messages_by_type[type] += count;
  }
  for (const auto& [type, bytes] : delta.bytes_by_type) {
    stats_.bytes_by_type[type] += bytes;
  }
}

NodeAddress SimulatedNetwork::Register(Handler handler) {
  nodes_.push_back(Node{std::move(handler), true});
  return static_cast<NodeAddress>(nodes_.size() - 1);
}

Status SimulatedNetwork::SetNodeUp(NodeAddress addr, bool up) {
  if (addr >= nodes_.size()) return Status::NotFound("no such node");
  nodes_[addr].up = up;
  return Status::OK();
}

bool SimulatedNetwork::IsNodeUp(NodeAddress addr) const {
  return addr < nodes_.size() && nodes_[addr].up;
}

void SimulatedNetwork::Charge(const std::string& type, size_t wire_bytes) {
  NetworkStats& stats = *ActiveStats();
  ++stats.messages;
  stats.bytes += wire_bytes;
  stats.latency_ms += latency_.per_message_ms +
                      latency_.per_byte_ms * static_cast<double>(wire_bytes);
  ++stats.messages_by_type[type];
  stats.bytes_by_type[type] += wire_bytes;
}

Result<Bytes> SimulatedNetwork::Rpc(NodeAddress src, NodeAddress dst,
                                    const std::string& type, Bytes payload) {
  if (dst >= nodes_.size()) {
    return Status::NotFound("RPC to unregistered node");
  }
  if (!nodes_[dst].up) {
    return Status::Unavailable("node " + std::to_string(dst) + " is down");
  }
  Message msg;
  msg.src = src;
  msg.dst = dst;
  msg.type = type;
  msg.payload = std::move(payload);
  Charge(type, msg.WireSize());

  // Copy the handler: the handler body may Register() new nodes and
  // invalidate references into nodes_.
  Handler handler = nodes_[dst].handler;
  Result<Bytes> response = handler(msg);
  if (response.ok()) {
    // Charge the response leg as the same message type.
    Charge(type, 20 + response.value().size());
  }
  return response;
}

}  // namespace iqn

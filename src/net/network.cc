#include "net/network.h"

namespace iqn {

SimulatedNetwork::SimulatedNetwork() : Transport() {}

SimulatedNetwork::SimulatedNetwork(LatencyModel latency)
    : Transport(latency) {}

Result<Bytes> SimulatedNetwork::Deliver(const Message& msg,
                                        uint64_t /*attempt*/) {
  return InvokeLocalHandler(msg);
}

}  // namespace iqn

#include "net/health.h"

#include <cstdio>

namespace iqn {

namespace {

const char* StateName(HealthTracker::CircuitState state) {
  switch (state) {
    case HealthTracker::CircuitState::kClosed:
      return "closed";
    case HealthTracker::CircuitState::kOpen:
      return "open";
    case HealthTracker::CircuitState::kHalfOpen:
      return "half_open";
  }
  return "unknown";
}

}  // namespace

bool HealthTracker::AllowRequest(NodeAddress dst, double now_ms) const {
  return StateOf(dst, now_ms) != CircuitState::kOpen;
}

HealthTracker::CircuitState HealthTracker::StateOf(NodeAddress dst,
                                                   double now_ms) const {
  auto it = peers_.find(dst);
  if (it == peers_.end() || !it->second.open) return CircuitState::kClosed;
  if (now_ms - it->second.opened_at_ms >= params_.cooldown_ms) {
    return CircuitState::kHalfOpen;
  }
  return CircuitState::kOpen;
}

void HealthTracker::Observe(NodeAddress dst, bool ok, double latency_ms,
                            double now_ms) {
  PeerHealth& peer = peers_[dst];
  peer.error_ewma = (1.0 - params_.error_alpha) * peer.error_ewma +
                    params_.error_alpha * (ok ? 0.0 : 1.0);
  peer.latency_ewma = (1.0 - params_.latency_alpha) * peer.latency_ewma +
                      params_.latency_alpha * latency_ms;
  if (peer.open) {
    if (now_ms - peer.opened_at_ms < params_.cooldown_ms) {
      // Still cooling down: the observation came from traffic sent
      // before the circuit opened (a batch commits all its outcomes at
      // one clock value); fold the EWMAs but hold the state.
      return;
    }
    // Half-open: this observation is the probe's outcome.
    if (ok) {
      peer.open = false;
    } else {
      peer.opened_at_ms = now_ms;  // re-open for a fresh cooldown
    }
    return;
  }
  const bool errors_trip = peer.error_ewma >= params_.error_threshold;
  const bool latency_trips = params_.latency_threshold_ms > 0.0 &&
                             peer.latency_ewma >= params_.latency_threshold_ms;
  if (errors_trip || latency_trips) {
    peer.open = true;
    peer.opened_at_ms = now_ms;
  }
}

std::string HealthTracker::DebugString() const {
  std::string out = "HealthTracker{";
  bool first = true;
  for (const auto& [dst, peer] : peers_) {
    char buf[128];
    std::snprintf(buf, sizeof(buf), "%s%llu: err=%.3f lat=%.2f %s",
                  first ? "" : ", ",
                  static_cast<unsigned long long>(dst), peer.error_ewma,
                  peer.latency_ewma,
                  peer.open ? StateName(CircuitState::kOpen) : "closed");
    out += buf;
    first = false;
  }
  out += "}";
  return out;
}

}  // namespace iqn

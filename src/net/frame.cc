#include "net/frame.h"

#include <cstring>
#include <utility>

namespace iqn {

namespace {

// Highest StatusCode value on the wire; decode rejects anything above
// so a corrupted code cannot alias into kOk.
constexpr uint64_t kMaxStatusCode =
    static_cast<uint64_t>(StatusCode::kDeadlineExceeded);

Status StatusFromWire(StatusCode code, std::string message) {
  switch (code) {
    case StatusCode::kOk:
      return Status::OK();
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(std::move(message));
    case StatusCode::kNotFound:
      return Status::NotFound(std::move(message));
    case StatusCode::kOutOfRange:
      return Status::OutOfRange(std::move(message));
    case StatusCode::kCorruption:
      return Status::Corruption(std::move(message));
    case StatusCode::kFailedPrecondition:
      return Status::FailedPrecondition(std::move(message));
    case StatusCode::kUnimplemented:
      return Status::Unimplemented(std::move(message));
    case StatusCode::kInternal:
      return Status::Internal(std::move(message));
    case StatusCode::kUnavailable:
      return Status::Unavailable(std::move(message));
    case StatusCode::kDeadlineExceeded:
      return Status::DeadlineExceeded(std::move(message));
  }
  return Status::Internal("unmapped status code");
}

}  // namespace

Bytes EncodeFrame(const Frame& frame) {
  ByteWriter body;
  body.PutU8(frame.version);
  body.PutU8(static_cast<uint8_t>(frame.type));
  body.PutU64(frame.request_id);
  if (frame.type == FrameType::kResponse) {
    body.PutVarint(static_cast<uint64_t>(frame.status_code));
    body.PutString(frame.status_message);
    body.PutBytes(frame.payload);
  } else {
    body.PutU64(frame.src);
    body.PutU64(frame.dst);
    body.PutU64(frame.attempt);
    body.PutString(frame.verb);
    body.PutBytes(frame.payload);
  }
  ByteWriter out;
  out.PutU32(static_cast<uint32_t>(body.size()));
  out.PutRaw(body.data().data(), body.size());
  return out.Take();
}

Result<Frame> DecodeFrameBody(const uint8_t* data, size_t size) {
  ByteReader reader(data, size);
  Frame frame;
  IQN_RETURN_IF_ERROR(reader.GetU8(&frame.version));
  if (frame.version != kFrameVersion) {
    return Status::Corruption("unsupported frame version " +
                              std::to_string(frame.version));
  }
  uint8_t raw_type = 0;
  IQN_RETURN_IF_ERROR(reader.GetU8(&raw_type));
  if (raw_type != static_cast<uint8_t>(FrameType::kRequest) &&
      raw_type != static_cast<uint8_t>(FrameType::kResponse) &&
      raw_type != static_cast<uint8_t>(FrameType::kControl)) {
    return Status::Corruption("unknown frame type " + std::to_string(raw_type));
  }
  frame.type = static_cast<FrameType>(raw_type);
  IQN_RETURN_IF_ERROR(reader.GetU64(&frame.request_id));
  if (frame.type == FrameType::kResponse) {
    uint64_t code = 0;
    IQN_RETURN_IF_ERROR(reader.GetVarint(&code));
    if (code > kMaxStatusCode) {
      return Status::Corruption("status code " + std::to_string(code) +
                                " out of range");
    }
    frame.status_code = static_cast<StatusCode>(code);
    IQN_RETURN_IF_ERROR(reader.GetString(&frame.status_message));
    IQN_RETURN_IF_ERROR(reader.GetBytes(&frame.payload));
  } else {
    IQN_RETURN_IF_ERROR(reader.GetU64(&frame.src));
    IQN_RETURN_IF_ERROR(reader.GetU64(&frame.dst));
    IQN_RETURN_IF_ERROR(reader.GetU64(&frame.attempt));
    IQN_RETURN_IF_ERROR(reader.GetString(&frame.verb));
    IQN_RETURN_IF_ERROR(reader.GetBytes(&frame.payload));
  }
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes after frame body");
  }
  return frame;
}

Frame MakeResponseFrame(uint64_t request_id, const Status& status,
                        Bytes payload) {
  Frame frame;
  frame.type = FrameType::kResponse;
  frame.request_id = request_id;
  frame.status_code = status.code();
  frame.status_message = status.message();
  frame.payload = status.ok() ? std::move(payload) : Bytes{};
  return frame;
}

Status FrameStatus(const Frame& response) {
  return StatusFromWire(response.status_code, response.status_message);
}

Status FrameAssembler::Feed(const uint8_t* data, size_t size) {
  IQN_RETURN_IF_ERROR(poisoned_);
  buffer_.insert(buffer_.end(), data, data + size);
  // Reject an oversized length claim as soon as the prefix is readable,
  // before any attempt to buffer the announced body.
  if (buffer_.size() >= kFrameLengthPrefixBytes) {
    uint32_t body_len = 0;
    ByteReader prefix(buffer_.data(), kFrameLengthPrefixBytes);
    IQN_RETURN_IF_ERROR(prefix.GetU32(&body_len));
    if (body_len > max_frame_bytes_) {
      poisoned_ = Status::InvalidArgument(
          "frame of " + std::to_string(body_len) + " bytes exceeds limit of " +
          std::to_string(max_frame_bytes_));
      return poisoned_;
    }
  }
  return Status::OK();
}

Result<bool> FrameAssembler::Next(Frame* frame) {
  IQN_RETURN_IF_ERROR(poisoned_);
  if (buffer_.size() < kFrameLengthPrefixBytes) return false;
  uint32_t body_len = 0;
  ByteReader prefix(buffer_.data(), kFrameLengthPrefixBytes);
  IQN_RETURN_IF_ERROR(prefix.GetU32(&body_len));
  if (buffer_.size() < kFrameLengthPrefixBytes + body_len) return false;
  Result<Frame> decoded =
      DecodeFrameBody(buffer_.data() + kFrameLengthPrefixBytes, body_len);
  if (!decoded.ok()) {
    poisoned_ = decoded.status();
    return poisoned_;
  }
  *frame = std::move(decoded).value();
  buffer_.erase(buffer_.begin(),
                buffer_.begin() + kFrameLengthPrefixBytes + body_len);
  // The next frame's prefix may already be buffered; re-run the Feed()
  // oversize check so a poisonous boundary is caught without new bytes.
  if (buffer_.size() >= kFrameLengthPrefixBytes) {
    uint32_t next_len = 0;
    ByteReader next_prefix(buffer_.data(), kFrameLengthPrefixBytes);
    IQN_RETURN_IF_ERROR(next_prefix.GetU32(&next_len));
    if (next_len > max_frame_bytes_) {
      poisoned_ = Status::InvalidArgument(
          "frame of " + std::to_string(next_len) + " bytes exceeds limit of " +
          std::to_string(max_frame_bytes_));
      return poisoned_;
    }
  }
  return true;
}

}  // namespace iqn

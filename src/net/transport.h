// Transport: the RPC surface every layer above net/ programs against.
//
// The repo grew up on net/network.h's SimulatedNetwork; this interface
// extracts the contract that the DHT, the query engine, rpc_policy
// (retry/hedge/deadline), the fault injector, and the health stack
// actually assume, so a second backend can slot in underneath them:
//
//   - Register(handler) -> dense NodeAddress (0, 1, 2, ... in call order)
//   - Rpc(src, dst, type, payload, attempt) -> synchronous Result<Bytes>
//   - per-thread StatsCapture metering with MergeStats commit
//   - a coarse simulated clock (now_ms / AdvanceSimTime)
//   - fault-plan installation and the retry/hedge/circuit accounting hooks
//
// Transport keeps all of that machinery concrete — accounting, the fault
// pipeline, the clock — and narrows the backend's job to one virtual:
// Deliver(msg, attempt), "get this request to dst's handler and return
// the response". SimulatedNetwork (net/network.h) delivers by direct
// in-process call; TcpTransport (net/tcp_transport.h) frames the message
// over a socket to the process that owns dst and delivers locally for
// addresses it owns itself.
//
// Accounting is MODELED, not measured, on every backend: the request and
// response legs are charged from Message::WireSize() and the payload
// size under the LatencyModel, never from socket byte counts. That keeps
// per-query cost metrics bit-identical across backends — the property
// the multi-process gate pins — while wall-clock timing (bench/daemon_qps)
// is what the real wire actually changes.

#ifndef IQN_NET_TRANSPORT_H_
#define IQN_NET_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/fault.h"
#include "net/message.h"
#include "util/status.h"

namespace iqn {

struct NetworkStats {
  uint64_t messages = 0;
  uint64_t bytes = 0;
  /// Simulated transfer cost in milliseconds under the latency model.
  double latency_ms = 0.0;
  /// Faults the installed FaultInjector fired against this traffic.
  uint64_t faults_injected = 0;
  /// Retry attempts issued by the rpc_policy layer (attempt > 0 sends).
  uint64_t rpc_retries = 0;
  /// Simulated backoff waiting charged by retries (also in latency_ms).
  double retry_backoff_ms = 0.0;
  /// Hedged backup requests issued by the rpc_policy layer, and the
  /// subset whose response beat (or outlived) the primary attempt.
  uint64_t hedges = 0;
  uint64_t hedges_won = 0;
  /// RPCs refused locally — no traffic sent — because the destination's
  /// circuit breaker (net/health.h) was open.
  uint64_t circuit_blocked = 0;
  /// faults_injected split by fault class (FaultClassName keys); the
  /// chaos bench turns the per-query deltas into histograms.
  std::map<std::string, uint64_t> faults_by_class;
  /// Message and byte counts per message type (e.g. "chord.find_succ").
  std::map<std::string, uint64_t> messages_by_type;
  std::map<std::string, uint64_t> bytes_by_type;
};

struct LatencyModel {
  /// Fixed per-message cost (network round trip).
  double per_message_ms = 1.0;
  /// Transfer cost per payload byte (e.g. ~0.001 ms/byte ~ 8 Mbit/s).
  double per_byte_ms = 0.001;
};

class Transport {
 public:
  /// Request handler: receives the message, returns the response payload.
  using Handler = std::function<Result<Bytes>(const Message&)>;

  Transport();
  explicit Transport(LatencyModel latency);
  virtual ~Transport();

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  /// Stable lowercase backend name ("simulated", "tcp") for logs and
  /// reports; matches TransportKindName of the kind that built it.
  virtual const char* kind_name() const = 0;

  /// RAII redirection of traffic accounting. While a StatsCapture is alive
  /// on a thread, every message that thread sends (including nested Rpcs
  /// issued from handlers it invokes) is charged to `sink` instead of the
  /// transport-wide stats — per-query metering that stays exact when many
  /// queries run concurrently over the same transport. The topology itself
  /// (Register / SetNodeUp) must not change while captures are live;
  /// Rpc over a fixed topology is otherwise thread-safe. Scopes nest:
  /// the innermost capture on the thread wins.
  class StatsCapture {
   public:
    StatsCapture(Transport* transport, NetworkStats* sink);
    ~StatsCapture();

    StatsCapture(const StatsCapture&) = delete;
    StatsCapture& operator=(const StatsCapture&) = delete;

   private:
    Transport* transport_;
    NetworkStats* previous_;
  };

  /// Folds a captured per-query delta into the transport-wide stats.
  /// Call from one thread at a time (the batch engine merges deltas in
  /// query order after joining its workers, keeping totals deterministic).
  void MergeStats(const NetworkStats& delta);

  /// Registers a node; the returned address is stable for the lifetime of
  /// the transport and dense in registration order — every backend
  /// assigns 0, 1, 2, ... so a cluster whose processes register the same
  /// handlers in the same order agrees on the address space without any
  /// name service. Precondition (checked): no StatsCapture is live.
  NodeAddress Register(Handler handler);

  /// Marks a node down (messages to it fail with Unavailable) or back up.
  /// A caller-side view: on a multi-process backend this marks the local
  /// process's opinion of addr, it does not reach across the wire.
  /// Precondition (checked): no StatsCapture is live — mutating the
  /// topology while per-query captures run would race with Rpc.
  Status SetNodeUp(NodeAddress addr, bool up);
  bool IsNodeUp(NodeAddress addr) const;

  /// True when messages to `addr` are delivered by direct in-process
  /// call rather than over a wire. Always true on SimulatedNetwork; on
  /// TcpTransport true only for addresses this process owns. The engine
  /// uses this to skip work (e.g. corpus publication) that another
  /// process is responsible for.
  virtual bool IsLocal(NodeAddress addr) const;

  /// Synchronous request/response. The request leg is always charged —
  /// a message to a down node, a dropped request, and a timed-out call
  /// all consumed uplink bandwidth; the response leg is charged when the
  /// handler produced one. Fails with Unavailable if dst is down,
  /// NotFound if dst was never registered. `attempt` is the retry
  /// ordinal (0 = first try); it feeds the fault injector's decision
  /// hash so a retry rolls fresh dice. Prefer CallRpc (net/rpc_policy.h)
  /// outside net/ — it layers retry/deadline policy over this.
  Result<Bytes> Rpc(NodeAddress src, NodeAddress dst, const std::string& type,
                    Bytes payload, uint64_t attempt = 0);

  /// Installs a fault injector driven by `plan`; replaces any previous
  /// one. Install before issuing traffic (not thread-safe against
  /// concurrent Rpc).
  void InstallFaultPlan(const FaultPlan& plan);
  /// Removes the installed fault injector (same caveat as install).
  void ClearFaults();
  /// The installed injector (for its counters), or nullptr.
  const FaultInjector* fault_injector() const { return faults_.get(); }

  /// Charges `backoff_ms` of simulated retry waiting to the calling
  /// thread's active stats sink (latency, retry counters; no message).
  void ChargeRetryBackoff(double backoff_ms);
  /// Records one hedged backup request in the calling thread's active
  /// sink and credits back `overlap_ms` of simulated latency: the hedge
  /// conceptually ran concurrently with the tail of the primary
  /// attempt, so the caller must not pay for both serially.
  void RecordHedge(bool won, double overlap_ms);
  /// Records an RPC refused locally (no traffic) because the
  /// destination's circuit breaker was open.
  void CountCircuitBlocked();
  /// Simulated latency accrued so far in the calling thread's active
  /// stats sink; the rpc_policy layer diffs this around an attempt to
  /// draw down deadline budgets.
  double CurrentLatencyMs();

  /// Ambient per-query fault context of the current thread. RpcScope
  /// installs it; 0 outside any scope.
  static uint64_t ThreadFaultContext();
  /// Sets the thread's fault context, returning the previous value.
  static uint64_t ExchangeThreadFaultContext(uint64_t context);

  /// Coarse simulated clock: milliseconds of committed simulated work.
  /// The engine advances it at its commit points (after a serial query,
  /// after a joined batch) by the latency the committed work cost.
  /// Partition windows (FaultPlan::partitions) and circuit-breaker
  /// cooldowns (net/health.h) are evaluated against it, so it is
  /// constant — and safe to read concurrently — while a batch runs.
  double now_ms() const { return now_ms_; }
  /// Advances the simulated clock. Precondition (checked): no
  /// StatsCapture is live — the clock only moves between batches.
  void AdvanceSimTime(double delta_ms);

  size_t num_nodes() const { return nodes_.size(); }

  const NetworkStats& stats() const { return stats_; }
  void ResetStats() { stats_ = NetworkStats(); }

 protected:
  /// Backend hook: get `msg` to dst's handler and return the response
  /// (or the handler's error). Called by Rpc() after the request leg was
  /// charged, liveness checked, and the caller-side fault pipeline ran;
  /// the base then charges the response leg. `attempt` rides along for
  /// wire framing (retry observability); it must not change the result.
  virtual Result<Bytes> Deliver(const Message& msg, uint64_t attempt) = 0;

  /// Invokes the locally registered handler for msg.dst (copying the
  /// handler first: a handler body may Register() new nodes and
  /// invalidate references into the node table). For backends' Deliver
  /// implementations and server-side dispatch.
  Result<Bytes> InvokeLocalHandler(const Message& msg);

 private:
  struct Node {
    Handler handler;
    bool up = true;
  };

  void Charge(const std::string& type, size_t wire_bytes);

  /// The single fault-accounting path: bumps the injector's per-class
  /// counter, the active sink's totals (faults_injected +
  /// faults_by_class), and the registry mirror ("fault.<class>").
  void CountFault(FaultClass klass, NetworkStats* active);

  /// The stats object Charge() writes to on this thread: the innermost
  /// live StatsCapture's sink, or the global stats_.
  NetworkStats* ActiveStats();

  LatencyModel latency_;
  std::vector<Node> nodes_;
  /// Simulated clock (see now_ms()); written only between batches,
  /// fenced by the live_captures_ runtime check like the topology.
  double now_ms_ = 0.0;
  /// Thread-confined, not locked (DESIGN.md §12): batch workers never
  /// write here — each carries its own StatsCapture sink, and Charge()
  /// routes to the innermost live sink via ActiveStats(). Topology
  /// writes are fenced by the live_captures_ runtime check below.
  NetworkStats stats_;
  std::unique_ptr<FaultInjector> faults_;
  /// Live StatsCapture count; topology mutation is checked against it.
  /// A RAII-guard refcount, not a metric — exempt from the
  /// metrics-registry rule.
  std::atomic<int> live_captures_{0};  // NOLINT(iqn-metrics)
  /// Cached registry instruments (looked up once; incremented lock-free
  /// on the Charge hot path).
  Counter* m_messages_;
  Counter* m_bytes_;
  Counter* m_rpc_retries_;
  Counter* m_backoff_us_;
  Counter* m_hedges_;
  Counter* m_hedges_won_;
  Counter* m_circuit_blocked_;
  Counter* m_faults_;
  Counter* m_fault_class_[kNumFaultClasses];
};

/// Which Transport backend an engine runs on. Parsed/printed by the
/// spellings below; EngineOptions and the scenario spec's `transport`
/// section carry it declaratively (mirroring RouterKind).
enum class TransportKind {
  /// In-process synchronous simulator (net/network.h). The default:
  /// deterministic, supports faults/health/churn, zero configuration.
  kSimulated,
  /// Real sockets (net/tcp_transport.h): length-prefixed frames over
  /// TCP between the processes listed in TransportOptions::endpoints.
  kTcp,
};

/// "simulated" | "tcp" (InvalidArgument otherwise, naming the input).
Result<TransportKind> ParseTransportKind(const std::string& name);
const char* TransportKindName(TransportKind kind);
/// Accepted ParseTransportKind spellings, for flag help text.
const char* TransportKindSpellings();

/// Declarative transport selection (EngineOptions::transport, scenario
/// `transport` section, minervad flags).
struct TransportOptions {
  TransportKind kind = TransportKind::kSimulated;
  /// One "host:port" listen endpoint per process rank, in rank order.
  /// Required (non-empty) for kTcp; must stay empty for kSimulated.
  /// Node address a is owned by rank (a % endpoints.size()).
  std::vector<std::string> endpoints;
  /// This process's index into `endpoints` (kTcp only).
  uint32_t rank = 0;
  /// Upper bound on one frame's encoded size; oversized frames are
  /// rejected on both send and receive (decoder hardening).
  size_t max_frame_bytes = 16 * 1024 * 1024;
  /// Socket receive/send timeout for one blocking RPC exchange.
  int io_timeout_ms = 30000;
  /// How long to keep retrying the initial connect to a peer that has
  /// not bound its listen socket yet (cluster startup races).
  int connect_wait_ms = 30000;
};

/// Builds the transport `options` describes. kSimulated ignores
/// everything but `latency`; kTcp validates endpoints/rank and binds its
/// listen socket (port 0 picks an ephemeral port) before returning, so a
/// returned transport is ready to accept peers.
Result<std::unique_ptr<Transport>> CreateTransport(
    const TransportOptions& options, const LatencyModel& latency = {});

}  // namespace iqn

#endif  // IQN_NET_TRANSPORT_H_

#include "net/fault.h"

#include <algorithm>
#include <cmath>

#include "util/hash.h"

namespace iqn {

namespace {

// Distinct class salts keep the per-class decisions independent: a
// message that dodges the drop die can still hit the timeout die.
enum FaultSalt : uint64_t {
  kClassUnavailable = 0xA1,
  kClassDropRequest = 0xA2,
  kClassDropResponse = 0xA3,
  kClassTimeout = 0xA4,
  kClassSlowLink = 0xA5,
  kClassCorrupt = 0xA6,
  kClassOverload = 0xA7,
  kClassLoadShed = 0xA8,
};

/// Maps a 64-bit hash to [0, 1) with 53 bits of precision (same
/// construction as Rng::NextDouble, but stateless).
double HashToUnit(uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Chains the standard decision coordinates through the mixer.
uint64_t DecisionHash(uint64_t seed, uint64_t klass, NodeAddress dst,
                      const std::string& type, uint64_t payload_fingerprint,
                      uint64_t context, uint64_t attempt) {
  uint64_t h = Mix64(seed ^ (klass * 0x9E3779B97F4A7C15ull));
  h = Mix64(h ^ dst);
  h = Mix64(h ^ HashString(type));
  h = Mix64(h ^ payload_fingerprint);
  h = Mix64(h ^ context);
  h = Mix64(h ^ attempt);
  return h;
}

bool ContainsNode(const std::vector<NodeAddress>& nodes, NodeAddress node) {
  return std::find(nodes.begin(), nodes.end(), node) != nodes.end();
}

}  // namespace

const char* FaultClassName(FaultClass klass) {
  switch (klass) {
    case FaultClass::kRequestDropped:
      return "requests_dropped";
    case FaultClass::kResponseDropped:
      return "responses_dropped";
    case FaultClass::kUnavailable:
      return "unavailable_injected";
    case FaultClass::kSlowLink:
      return "links_slowed";
    case FaultClass::kCorruptResponse:
      return "responses_corrupted";
    case FaultClass::kTimeout:
      return "timeouts_injected";
    case FaultClass::kOverloaded:
      return "overload_delays";
    case FaultClass::kLoadShed:
      return "loads_shed";
    case FaultClass::kPartitioned:
      return "partition_blocked";
  }
  return "unknown";
}

Counter& FaultCounters::ForClass(FaultClass klass) {
  switch (klass) {
    case FaultClass::kRequestDropped:
      return requests_dropped;
    case FaultClass::kResponseDropped:
      return responses_dropped;
    case FaultClass::kUnavailable:
      return unavailable_injected;
    case FaultClass::kSlowLink:
      return links_slowed;
    case FaultClass::kCorruptResponse:
      return responses_corrupted;
    case FaultClass::kTimeout:
      return timeouts_injected;
    case FaultClass::kOverloaded:
      return overload_delays;
    case FaultClass::kLoadShed:
      return loads_shed;
    case FaultClass::kPartitioned:
      return partition_blocked;
  }
  return requests_dropped;  // unreachable
}

bool FaultSpec::AppliesTo(NodeAddress dst, const std::string& type) const {
  if (rate <= 0.0) return false;
  if (!type_prefix.empty() && type.rfind(type_prefix, 0) != 0) return false;
  if (!nodes.empty() &&
      std::find(nodes.begin(), nodes.end(), dst) == nodes.end()) {
    return false;
  }
  return true;
}

bool FaultPlan::active() const {
  return drop_request.rate > 0.0 || drop_response.rate > 0.0 ||
         unavailable.rate > 0.0 || slow_link.rate > 0.0 ||
         corrupt_response.rate > 0.0 || timeout.rate > 0.0 ||
         overload.active() || !partitions.empty();
}

FaultPlan FaultPlan::MessageDrop(uint64_t seed, double rate) {
  FaultPlan plan;
  plan.seed = seed;
  plan.drop_request.rate = rate;
  plan.drop_response.rate = rate;
  return plan;
}

bool FaultInjector::Fires(const FaultSpec& spec, uint64_t klass,
                          NodeAddress dst, const std::string& type,
                          uint64_t payload_fingerprint, uint64_t context,
                          uint64_t attempt) const {
  if (!spec.AppliesTo(dst, type)) return false;
  // Chain the decision coordinates through the mixer; every argument
  // contributes, so two messages differing in any coordinate roll
  // independent dice.
  uint64_t h = Mix64(plan_.seed ^ (klass * 0x9E3779B97F4A7C15ull));
  h = Mix64(h ^ dst);
  if (klass != kClassUnavailable) {
    // Outage windows are per destination, not per message: within one
    // (context, attempt) window the node is down for everything.
    h = Mix64(h ^ HashString(type));
    h = Mix64(h ^ payload_fingerprint);
  }
  h = Mix64(h ^ context);
  h = Mix64(h ^ attempt);
  return HashToUnit(h) < spec.rate;
}

FaultDecision FaultInjector::Decide(NodeAddress dst, const std::string& type,
                                    uint64_t payload_fingerprint,
                                    uint64_t context,
                                    uint64_t attempt) const {
  FaultDecision d;
  d.unavailable = Fires(plan_.unavailable, kClassUnavailable, dst, type,
                        payload_fingerprint, context, attempt);
  d.drop_request = Fires(plan_.drop_request, kClassDropRequest, dst, type,
                         payload_fingerprint, context, attempt);
  d.drop_response = Fires(plan_.drop_response, kClassDropResponse, dst, type,
                          payload_fingerprint, context, attempt);
  d.timeout = Fires(plan_.timeout, kClassTimeout, dst, type,
                    payload_fingerprint, context, attempt);
  d.slow_link = Fires(plan_.slow_link, kClassSlowLink, dst, type,
                      payload_fingerprint, context, attempt);
  d.corrupt_response = Fires(plan_.corrupt_response, kClassCorrupt, dst, type,
                             payload_fingerprint, context, attempt);
  return d;
}

void FaultInjector::CorruptPayload(Bytes* payload, NodeAddress dst,
                                   const std::string& type,
                                   uint64_t payload_fingerprint,
                                   uint64_t context, uint64_t attempt) const {
  if (payload->empty()) return;
  uint64_t h = Mix64(plan_.seed ^ (kClassCorrupt * 0x9E3779B97F4A7C15ull));
  h = Mix64(h ^ dst);
  h = Mix64(h ^ HashString(type));
  h = Mix64(h ^ payload_fingerprint);
  h = Mix64(h ^ context);
  h = Mix64(h ^ (attempt + 1));  // offset from the decision stream
  if ((h & 1) != 0) {
    // Truncation: keep a hash-derived prefix (possibly empty).
    size_t keep = static_cast<size_t>((h >> 1) % payload->size());
    payload->resize(keep);
  } else {
    // Bit flips: up to 4 hash-derived positions.
    size_t flips = 1 + static_cast<size_t>((h >> 1) & 3);
    for (size_t i = 0; i < flips; ++i) {
      uint64_t g = Mix64(h ^ (i + 1));
      (*payload)[static_cast<size_t>(g % payload->size())] ^=
          static_cast<uint8_t>(1u << ((g >> 32) & 7));
    }
  }
}

double FaultInjector::OverloadDelayMs(NodeAddress dst, const std::string& type,
                                      uint64_t payload_fingerprint,
                                      uint64_t context,
                                      uint64_t attempt) const {
  const OverloadSpec& spec = plan_.overload;
  if (spec.utilization <= 0.0 || !ContainsNode(spec.nodes, dst)) return 0.0;
  // Inverse-CDF exponential draw with the M/M/1 mean waiting time
  // service_ms * rho / (1 - rho): the fate of one message at a queue
  // whose depth grows with utilization. HashToUnit < 1, so the log
  // argument stays positive.
  const double mean_wait_ms =
      spec.service_ms * spec.utilization / (1.0 - spec.utilization);
  const double u = HashToUnit(DecisionHash(plan_.seed, kClassOverload, dst,
                                           type, payload_fingerprint, context,
                                           attempt));
  return -mean_wait_ms * std::log(1.0 - u);
}

bool FaultInjector::ShedsLoad(NodeAddress dst, const std::string& type,
                              uint64_t payload_fingerprint, uint64_t context,
                              uint64_t attempt) const {
  const OverloadSpec& spec = plan_.overload;
  if (spec.shed_rate <= 0.0 || !ContainsNode(spec.nodes, dst)) return false;
  return HashToUnit(DecisionHash(plan_.seed, kClassLoadShed, dst, type,
                                 payload_fingerprint, context, attempt)) <
         spec.shed_rate;
}

bool FaultInjector::Partitioned(NodeAddress src, NodeAddress dst,
                                double now_ms,
                                const std::string** name) const {
  for (const PartitionSpec& partition : plan_.partitions) {
    if (now_ms < partition.start_ms || now_ms >= partition.end_ms) continue;
    // src and dst are separated when they sit in different listed
    // groups; unlisted nodes keep full connectivity.
    int src_group = -1;
    int dst_group = -1;
    for (size_t g = 0; g < partition.groups.size(); ++g) {
      if (ContainsNode(partition.groups[g], src)) {
        src_group = static_cast<int>(g);
      }
      if (ContainsNode(partition.groups[g], dst)) {
        dst_group = static_cast<int>(g);
      }
    }
    if (src_group >= 0 && dst_group >= 0 && src_group != dst_group) {
      if (name != nullptr) *name = &partition.name;
      return true;
    }
  }
  return false;
}

}  // namespace iqn

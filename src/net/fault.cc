#include "net/fault.h"

#include <algorithm>

#include "util/hash.h"

namespace iqn {

namespace {

// Distinct class salts keep the per-class decisions independent: a
// message that dodges the drop die can still hit the timeout die.
enum FaultSalt : uint64_t {
  kClassUnavailable = 0xA1,
  kClassDropRequest = 0xA2,
  kClassDropResponse = 0xA3,
  kClassTimeout = 0xA4,
  kClassSlowLink = 0xA5,
  kClassCorrupt = 0xA6,
};

/// Maps a 64-bit hash to [0, 1) with 53 bits of precision (same
/// construction as Rng::NextDouble, but stateless).
double HashToUnit(uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

const char* FaultClassName(FaultClass klass) {
  switch (klass) {
    case FaultClass::kRequestDropped:
      return "requests_dropped";
    case FaultClass::kResponseDropped:
      return "responses_dropped";
    case FaultClass::kUnavailable:
      return "unavailable_injected";
    case FaultClass::kSlowLink:
      return "links_slowed";
    case FaultClass::kCorruptResponse:
      return "responses_corrupted";
    case FaultClass::kTimeout:
      return "timeouts_injected";
  }
  return "unknown";
}

Counter& FaultCounters::ForClass(FaultClass klass) {
  switch (klass) {
    case FaultClass::kRequestDropped:
      return requests_dropped;
    case FaultClass::kResponseDropped:
      return responses_dropped;
    case FaultClass::kUnavailable:
      return unavailable_injected;
    case FaultClass::kSlowLink:
      return links_slowed;
    case FaultClass::kCorruptResponse:
      return responses_corrupted;
    case FaultClass::kTimeout:
      return timeouts_injected;
  }
  return requests_dropped;  // unreachable
}

bool FaultSpec::AppliesTo(NodeAddress dst, const std::string& type) const {
  if (rate <= 0.0) return false;
  if (!type_prefix.empty() && type.rfind(type_prefix, 0) != 0) return false;
  if (!nodes.empty() &&
      std::find(nodes.begin(), nodes.end(), dst) == nodes.end()) {
    return false;
  }
  return true;
}

bool FaultPlan::active() const {
  return drop_request.rate > 0.0 || drop_response.rate > 0.0 ||
         unavailable.rate > 0.0 || slow_link.rate > 0.0 ||
         corrupt_response.rate > 0.0 || timeout.rate > 0.0;
}

FaultPlan FaultPlan::MessageDrop(uint64_t seed, double rate) {
  FaultPlan plan;
  plan.seed = seed;
  plan.drop_request.rate = rate;
  plan.drop_response.rate = rate;
  return plan;
}

bool FaultInjector::Fires(const FaultSpec& spec, uint64_t klass,
                          NodeAddress dst, const std::string& type,
                          uint64_t payload_fingerprint, uint64_t context,
                          uint64_t attempt) const {
  if (!spec.AppliesTo(dst, type)) return false;
  // Chain the decision coordinates through the mixer; every argument
  // contributes, so two messages differing in any coordinate roll
  // independent dice.
  uint64_t h = Mix64(plan_.seed ^ (klass * 0x9E3779B97F4A7C15ull));
  h = Mix64(h ^ dst);
  if (klass != kClassUnavailable) {
    // Outage windows are per destination, not per message: within one
    // (context, attempt) window the node is down for everything.
    h = Mix64(h ^ HashString(type));
    h = Mix64(h ^ payload_fingerprint);
  }
  h = Mix64(h ^ context);
  h = Mix64(h ^ attempt);
  return HashToUnit(h) < spec.rate;
}

FaultDecision FaultInjector::Decide(NodeAddress dst, const std::string& type,
                                    uint64_t payload_fingerprint,
                                    uint64_t context,
                                    uint64_t attempt) const {
  FaultDecision d;
  d.unavailable = Fires(plan_.unavailable, kClassUnavailable, dst, type,
                        payload_fingerprint, context, attempt);
  d.drop_request = Fires(plan_.drop_request, kClassDropRequest, dst, type,
                         payload_fingerprint, context, attempt);
  d.drop_response = Fires(plan_.drop_response, kClassDropResponse, dst, type,
                          payload_fingerprint, context, attempt);
  d.timeout = Fires(plan_.timeout, kClassTimeout, dst, type,
                    payload_fingerprint, context, attempt);
  d.slow_link = Fires(plan_.slow_link, kClassSlowLink, dst, type,
                      payload_fingerprint, context, attempt);
  d.corrupt_response = Fires(plan_.corrupt_response, kClassCorrupt, dst, type,
                             payload_fingerprint, context, attempt);
  return d;
}

void FaultInjector::CorruptPayload(Bytes* payload, NodeAddress dst,
                                   const std::string& type,
                                   uint64_t payload_fingerprint,
                                   uint64_t context, uint64_t attempt) const {
  if (payload->empty()) return;
  uint64_t h = Mix64(plan_.seed ^ (kClassCorrupt * 0x9E3779B97F4A7C15ull));
  h = Mix64(h ^ dst);
  h = Mix64(h ^ HashString(type));
  h = Mix64(h ^ payload_fingerprint);
  h = Mix64(h ^ context);
  h = Mix64(h ^ (attempt + 1));  // offset from the decision stream
  if ((h & 1) != 0) {
    // Truncation: keep a hash-derived prefix (possibly empty).
    size_t keep = static_cast<size_t>((h >> 1) % payload->size());
    payload->resize(keep);
  } else {
    // Bit flips: up to 4 hash-derived positions.
    size_t flips = 1 + static_cast<size_t>((h >> 1) & 3);
    for (size_t i = 0; i < flips; ++i) {
      uint64_t g = Mix64(h ^ (i + 1));
      (*payload)[static_cast<size_t>(g % payload->size())] ^=
          static_cast<uint8_t>(1u << ((g >> 32) & 7));
    }
  }
}

}  // namespace iqn

#include "net/transport.h"

#include <cmath>
#include <utility>

#include "util/hash.h"
#include "util/metrics.h"

namespace iqn {

namespace {

// Innermost live StatsCapture sink of the current thread (nullptr = none).
// thread_local rather than a member so captures need no locking on the
// hot Charge() path; a single process rarely runs several transports, and
// captures are strictly scoped, so sharing the slot across instances is
// harmless.
thread_local NetworkStats* tls_stats_sink = nullptr;

// Ambient per-query fault context (net/rpc_policy.h installs it). Same
// thread-local idiom as the stats sink, for the same reason.
thread_local uint64_t tls_fault_context = 0;

// Seed separating payload fingerprints from other Hash64 uses.
constexpr uint64_t kFingerprintSeed = 0xFA17;

}  // namespace

Transport::Transport() : Transport(LatencyModel{}) {}

Transport::Transport(LatencyModel latency) : latency_(latency) {
  // Registry instruments are resolved once here; the hot paths below
  // only touch the cached pointers (lock-free relaxed increments).
  MetricsRegistry& registry = MetricsRegistry::Default();
  m_messages_ = registry.GetCounter("net.messages");
  m_bytes_ = registry.GetCounter("net.bytes");
  m_rpc_retries_ = registry.GetCounter("net.rpc_retries");
  m_backoff_us_ = registry.GetCounter("net.retry_backoff_us");
  m_hedges_ = registry.GetCounter("rpc.hedges");
  m_hedges_won_ = registry.GetCounter("rpc.hedges_won");
  m_circuit_blocked_ = registry.GetCounter("rpc.circuit_open_blocked");
  m_faults_ = registry.GetCounter("net.faults_injected");
  for (size_t i = 0; i < kNumFaultClasses; ++i) {
    m_fault_class_[i] = registry.GetCounter(
        std::string("fault.") + FaultClassName(static_cast<FaultClass>(i)));
  }
}

Transport::~Transport() = default;

Transport::StatsCapture::StatsCapture(Transport* transport, NetworkStats* sink)
    : transport_(transport), previous_(tls_stats_sink) {
  transport_->live_captures_.fetch_add(1, std::memory_order_relaxed);
  tls_stats_sink = sink;
}

Transport::StatsCapture::~StatsCapture() {
  tls_stats_sink = previous_;
  transport_->live_captures_.fetch_sub(1, std::memory_order_relaxed);
}

uint64_t Transport::ThreadFaultContext() { return tls_fault_context; }

uint64_t Transport::ExchangeThreadFaultContext(uint64_t context) {
  uint64_t previous = tls_fault_context;
  tls_fault_context = context;
  return previous;
}

NetworkStats* Transport::ActiveStats() {
  return tls_stats_sink != nullptr ? tls_stats_sink : &stats_;
}

void Transport::MergeStats(const NetworkStats& delta) {
  stats_.messages += delta.messages;
  stats_.bytes += delta.bytes;
  stats_.latency_ms += delta.latency_ms;
  stats_.faults_injected += delta.faults_injected;
  stats_.rpc_retries += delta.rpc_retries;
  stats_.retry_backoff_ms += delta.retry_backoff_ms;
  stats_.hedges += delta.hedges;
  stats_.hedges_won += delta.hedges_won;
  stats_.circuit_blocked += delta.circuit_blocked;
  for (const auto& [klass, count] : delta.faults_by_class) {
    stats_.faults_by_class[klass] += count;
  }
  for (const auto& [type, count] : delta.messages_by_type) {
    stats_.messages_by_type[type] += count;
  }
  for (const auto& [type, bytes] : delta.bytes_by_type) {
    stats_.bytes_by_type[type] += bytes;
  }
}

NodeAddress Transport::Register(Handler handler) {
  // Topology must not change during per-query metering (StatsCapture's
  // documented precondition — enforce it instead of racing).
  IQN_CHECK_EQ(live_captures_.load(std::memory_order_relaxed), 0);
  nodes_.push_back(Node{std::move(handler), true});
  return static_cast<NodeAddress>(nodes_.size() - 1);
}

Status Transport::SetNodeUp(NodeAddress addr, bool up) {
  IQN_CHECK_EQ(live_captures_.load(std::memory_order_relaxed), 0);
  if (addr >= nodes_.size()) return Status::NotFound("no such node");
  nodes_[addr].up = up;
  return Status::OK();
}

bool Transport::IsNodeUp(NodeAddress addr) const {
  return addr < nodes_.size() && nodes_[addr].up;
}

bool Transport::IsLocal(NodeAddress addr) const {
  return addr < nodes_.size();
}

void Transport::Charge(const std::string& type, size_t wire_bytes) {
  NetworkStats& stats = *ActiveStats();
  ++stats.messages;
  stats.bytes += wire_bytes;
  stats.latency_ms += latency_.per_message_ms +
                      latency_.per_byte_ms * static_cast<double>(wire_bytes);
  ++stats.messages_by_type[type];
  stats.bytes_by_type[type] += wire_bytes;
  m_messages_->Increment();
  m_bytes_->Increment(wire_bytes);
}

void Transport::CountFault(FaultClass klass, NetworkStats* active) {
  faults_->counters().ForClass(klass).Increment();
  ++active->faults_injected;
  ++active->faults_by_class[FaultClassName(klass)];
  m_faults_->Increment();
  m_fault_class_[static_cast<size_t>(klass)]->Increment();
}

void Transport::InstallFaultPlan(const FaultPlan& plan) {
  faults_ = std::make_unique<FaultInjector>(plan);
}

void Transport::ClearFaults() { faults_.reset(); }

void Transport::ChargeRetryBackoff(double backoff_ms) {
  NetworkStats& stats = *ActiveStats();
  stats.latency_ms += backoff_ms;
  stats.retry_backoff_ms += backoff_ms;
  ++stats.rpc_retries;
  m_rpc_retries_->Increment();
  m_backoff_us_->Increment(
      static_cast<uint64_t>(std::llround(backoff_ms * 1000.0)));
}

void Transport::RecordHedge(bool won, double overlap_ms) {
  NetworkStats& stats = *ActiveStats();
  ++stats.hedges;
  if (won) ++stats.hedges_won;
  // The overlap credit models the hedge running concurrently with the
  // primary attempt's tail; both attempts' traffic was already charged
  // in full, only the waiting collapses.
  stats.latency_ms -= overlap_ms;
  m_hedges_->Increment();
  if (won) m_hedges_won_->Increment();
}

void Transport::CountCircuitBlocked() {
  ++ActiveStats()->circuit_blocked;
  m_circuit_blocked_->Increment();
}

void Transport::AdvanceSimTime(double delta_ms) {
  IQN_CHECK_EQ(live_captures_.load(std::memory_order_relaxed), 0);
  now_ms_ += delta_ms;
}

double Transport::CurrentLatencyMs() { return ActiveStats()->latency_ms; }

Result<Bytes> Transport::InvokeLocalHandler(const Message& msg) {
  IQN_CHECK(msg.dst < nodes_.size());
  // Copy the handler: the handler body may Register() new nodes and
  // invalidate references into nodes_.
  Handler handler = nodes_[msg.dst].handler;
  return handler(msg);
}

Result<Bytes> Transport::Rpc(NodeAddress src, NodeAddress dst,
                             const std::string& type, Bytes payload,
                             uint64_t attempt) {
  if (dst >= nodes_.size()) {
    return Status::NotFound("RPC to unregistered node");
  }
  Message msg;
  msg.src = src;
  msg.dst = dst;
  msg.type = type;
  msg.payload = std::move(payload);
  // The request leg is charged no matter how the call ends: a message
  // to a down node, a dropped request, and a timed-out call all consumed
  // uplink bandwidth.
  Charge(type, msg.WireSize());
  if (!nodes_[dst].up) {
    return Status::Unavailable("node " + std::to_string(dst) + " is down");
  }

  FaultDecision fault;
  uint64_t fingerprint = 0;
  const bool faulty = faults_ != nullptr && faults_->plan().active();
  if (faulty) {
    // The fingerprint keys the decision to the message content, so two
    // different messages to the same (dst, type) roll independent dice.
    fingerprint =
        HashBytes(msg.payload.data(), msg.payload.size(), kFingerprintSeed);
    fault = faults_->Decide(dst, type, fingerprint, tls_fault_context, attempt);
  }
  NetworkStats& active = *ActiveStats();
  const FaultPlan* plan = faulty ? &faults_->plan() : nullptr;
  if (faulty) {
    const std::string* partition_name = nullptr;
    if (faults_->Partitioned(src, dst, now_ms_, &partition_name)) {
      CountFault(FaultClass::kPartitioned, &active);
      return Status::Unavailable("fault injection: partition '" +
                                 *partition_name + "' separates node " +
                                 std::to_string(src) + " from node " +
                                 std::to_string(dst));
    }
    if (faults_->ShedsLoad(dst, type, fingerprint, tls_fault_context,
                           attempt)) {
      CountFault(FaultClass::kLoadShed, &active);
      return Status::Unavailable("fault injection: node " +
                                 std::to_string(dst) +
                                 " shed the request under overload");
    }
  }
  if (fault.unavailable) {
    CountFault(FaultClass::kUnavailable, &active);
    return Status::Unavailable("fault injection: node " + std::to_string(dst) +
                               " transiently unavailable");
  }
  if (fault.drop_request) {
    CountFault(FaultClass::kRequestDropped, &active);
    // The caller waits out its timeout before giving up.
    active.latency_ms += plan->timeout_penalty_ms;
    return Status::DeadlineExceeded("fault injection: request to node " +
                                    std::to_string(dst) + " dropped");
  }

  if (faulty) {
    // The request reached an overloaded destination: it waits in the
    // queue before being serviced, whatever happens to the response.
    const double overload_delay_ms = faults_->OverloadDelayMs(
        dst, type, fingerprint, tls_fault_context, attempt);
    if (overload_delay_ms > 0.0) {
      CountFault(FaultClass::kOverloaded, &active);
      active.latency_ms += overload_delay_ms;
    }
  }
  Result<Bytes> response = Deliver(msg, attempt);
  if (!response.ok()) {
    return response;
  }
  if (fault.drop_response || fault.timeout) {
    // The handler ran (side effects happened) and the response was sent
    // — both legs cost bandwidth — but the caller never sees it.
    Charge(type, 20 + response.value().size());
    CountFault(fault.timeout ? FaultClass::kTimeout
                             : FaultClass::kResponseDropped,
               &active);
    active.latency_ms += plan->timeout_penalty_ms;
    return Status::DeadlineExceeded(
        fault.timeout ? "fault injection: response from node " +
                            std::to_string(dst) + " timed out"
                      : "fault injection: response from node " +
                            std::to_string(dst) + " dropped");
  }
  if (fault.corrupt_response) {
    faults_->CorruptPayload(&response.value(), dst, type, fingerprint,
                            tls_fault_context, attempt);
    CountFault(FaultClass::kCorruptResponse, &active);
  }
  // Charge the response leg as the same message type, at the size
  // actually delivered (a truncated corruption shrinks it).
  Charge(type, 20 + response.value().size());
  if (fault.slow_link) {
    CountFault(FaultClass::kSlowLink, &active);
    active.latency_ms += plan->slow_link_extra_ms;
  }
  return response;
}

Result<TransportKind> ParseTransportKind(const std::string& name) {
  if (name == "simulated") return TransportKind::kSimulated;
  if (name == "tcp") return TransportKind::kTcp;
  return Status::InvalidArgument("unknown transport kind '" + name +
                                 "' (expected " + TransportKindSpellings() +
                                 ")");
}

const char* TransportKindName(TransportKind kind) {
  switch (kind) {
    case TransportKind::kSimulated:
      return "simulated";
    case TransportKind::kTcp:
      return "tcp";
  }
  return "simulated";
}

const char* TransportKindSpellings() { return "simulated|tcp"; }

}  // namespace iqn

// Length-prefixed, versioned wire framing for the TCP transport.
//
// A frame on the wire is
//
//   u32 (LE)   body length N (bytes after this prefix; bounded)
//   N bytes    body
//
// and the body is (util/bytes.h encodings — LE fixed-width + LEB128
// varints, the same primitives every message.h payload already uses):
//
//   u8         version        (kFrameVersion = 1; other values rejected)
//   u8         frame type     (FrameType below)
//   u64        request id     (echoed verbatim in the response)
//   request / control request body:
//     u64      src address
//     u64      dst address    (ignored for control frames)
//     u64      attempt        (retry ordinal, observability only)
//     string   verb           (message type, e.g. "peer.query" / "ctl.ping")
//     bytes    payload
//   response body:
//     varint   status code    (StatusCode numeric value; 0 = OK)
//     string   status message (empty when OK)
//     bytes    payload        (empty on error)
//
// The codec is socket-free (fuzzable in isolation: fuzz/frame_decode_fuzz)
// and hardened: every length is bounds-checked via ByteReader, payload
// counts go through CheckCountFits before any allocation, and the u32
// prefix is capped by the assembler's max_frame_bytes so a hostile
// 4 GiB length claim is rejected without buffering.

#ifndef IQN_NET_FRAME_H_
#define IQN_NET_FRAME_H_

#include <cstdint>
#include <string>

#include "net/message.h"
#include "util/bytes.h"
#include "util/status.h"

namespace iqn {

inline constexpr uint8_t kFrameVersion = 1;
/// Wire size of the u32 length prefix.
inline constexpr size_t kFrameLengthPrefixBytes = 4;

enum class FrameType : uint8_t {
  /// Addressed RPC request, dispatched to the dst node's handler.
  kRequest = 1,
  /// Reply to a request or control frame.
  kResponse = 2,
  /// Daemon control request ("ctl.*" verbs), dispatched to the
  /// transport's control handler instead of a node address.
  kControl = 3,
};

struct Frame {
  uint8_t version = kFrameVersion;
  FrameType type = FrameType::kRequest;
  uint64_t request_id = 0;
  // Request / control fields.
  uint64_t src = 0;
  uint64_t dst = 0;
  uint64_t attempt = 0;
  std::string verb;
  // Response fields.
  StatusCode status_code = StatusCode::kOk;
  std::string status_message;
  // Request and OK-response payload.
  Bytes payload;
};

/// Encodes `frame` including the u32 length prefix, ready to write to a
/// socket.
Bytes EncodeFrame(const Frame& frame);

/// Decodes one frame BODY (the bytes after the length prefix). Returns
/// Corruption on malformed input; never reads past `size`.
Result<Frame> DecodeFrameBody(const uint8_t* data, size_t size);

/// Convenience for a response frame carrying `status` / `payload`.
Frame MakeResponseFrame(uint64_t request_id, const Status& status,
                        Bytes payload);
/// Re-materializes the Status a response frame carries (OK if kOk).
Status FrameStatus(const Frame& response);

/// Incremental reassembly of frames from a TCP byte stream. Feed()
/// appends whatever arrived; Next() extracts the earliest complete
/// frame, if any. A length prefix exceeding max_frame_bytes poisons the
/// stream (InvalidArgument) — the connection cannot be resynchronized
/// and must be dropped.
class FrameAssembler {
 public:
  explicit FrameAssembler(size_t max_frame_bytes)
      : max_frame_bytes_(max_frame_bytes) {}

  /// Appends raw stream bytes. Fails (and stays failed) if a frame
  /// boundary ever announces a body longer than max_frame_bytes.
  Status Feed(const uint8_t* data, size_t size);

  /// Extracts the next complete frame into *frame. Returns true when
  /// one was produced, false when more bytes are needed; Corruption if
  /// a complete body failed to decode (also poisons the stream — a
  /// framing bug upstream means the boundaries can no longer be
  /// trusted).
  Result<bool> Next(Frame* frame);

  /// Bytes buffered awaiting a complete frame.
  size_t buffered() const { return buffer_.size(); }

 private:
  size_t max_frame_bytes_;
  Bytes buffer_;
  Status poisoned_ = Status::OK();
};

}  // namespace iqn

#endif  // IQN_NET_FRAME_H_

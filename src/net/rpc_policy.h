// The single policy layer every remote interaction goes through.
//
// Raw Transport::Rpc is a one-shot synchronous call; real
// deployments wrap every RPC in retry and deadline policy. CallRpc is
// that wrapper, and it is the ONLY sanctioned way to issue an RPC from
// outside net/ (tools/lint.sh enforces this): dht/ and minerva/ call
// sites all route through it, so retry semantics, deadline budgets,
// and fault contexts apply uniformly to Chord maintenance, directory
// lookups, distributed top-k, and query forwarding alike.
//
// Policy is ambient, not threaded through signatures: an RpcScope
// installs a RetryPolicy, a per-query simulated-time deadline budget,
// and a fault context id into thread-local state (the same RAII idiom
// as Transport::StatsCapture), and every CallRpc under it —
// including nested calls made from handlers the scope's thread invokes
// — obeys them. With no scope installed, CallRpc degenerates to a
// single attempt with no deadline: exactly the raw Rpc behavior.
//
// Determinism: retry backoff jitter is a pure hash of (policy seed,
// destination, type, fault context, attempt) — no mutable RNG — and
// backoff is charged to SIMULATED latency, so outcomes and accounting
// are bit-identical across runs and thread counts.

#ifndef IQN_NET_RPC_POLICY_H_
#define IQN_NET_RPC_POLICY_H_

#include <string>
#include <vector>

#include "net/health.h"
#include "net/transport.h"
#include "util/status.h"

namespace iqn {

struct RetryPolicy {
  /// Total attempts (1 = no retry). Only Unavailable and
  /// DeadlineExceeded failures are retried; NotFound / Corruption are
  /// permanent and returned immediately.
  int max_attempts = 1;
  /// Backoff before retry k (k >= 1): initial * multiplier^(k-1),
  /// jittered by a seeded hash into [1 - jitter, 1 + jitter] times the
  /// nominal value, then clamped so the CHARGED wait never exceeds
  /// max_backoff_ms (the cap bounds what the caller pays, jitter
  /// included). The accumulated backoff is charged to simulated
  /// latency (waiting costs time).
  double initial_backoff_ms = 5.0;
  double backoff_multiplier = 2.0;
  double max_backoff_ms = 200.0;
  double jitter = 0.5;
  uint64_t jitter_seed = 0;

  static bool IsRetriable(StatusCode code) {
    return code == StatusCode::kUnavailable ||
           code == StatusCode::kDeadlineExceeded;
  }

  /// Jittered backoff before retry `attempt` (the attempt about to be
  /// made, >= 1) of a call to (dst, type) under fault context
  /// `context`. Pure function of its arguments; never exceeds
  /// max_backoff_ms.
  double BackoffMs(int attempt, NodeAddress dst, const std::string& type,
                   uint64_t context) const;
};

/// Hedged backup requests (the "tail at scale" defense): when an
/// attempt fails after costing more simulated latency than
/// threshold_ms — the policy's estimate of a healthy RPC's high
/// percentile — CallRpc deterministically charges ONE backup request
/// and takes the first success. The backup goes to the same overlay
/// destination on a fresh attempt nonce (fresh fault/queueing dice —
/// the simulator's stand-in for a replica), and the latency it would
/// have overlapped with the primary's tail is credited back
/// (Transport::RecordHedge). Decisions are pure functions of
/// simulated latency and the fault hash stream: no wall-clock, no RNG.
struct HedgePolicy {
  bool enabled = false;
  /// Fire the hedge when an attempt — successful or retriably failed —
  /// cost more than this (simulated ms). Tune to a high percentile of
  /// healthy RPC latency.
  double threshold_ms = 30.0;
};

/// A simulated-time budget. Constructed unlimited or with a budget in
/// milliseconds; Consume() draws it down as RPC latency accrues.
class Deadline {
 public:
  Deadline() = default;  // unlimited
  explicit Deadline(double budget_ms)
      : unlimited_(budget_ms <= 0.0), remaining_ms_(budget_ms) {}

  bool unlimited() const { return unlimited_; }
  bool Expired() const { return !unlimited_ && remaining_ms_ <= 0.0; }
  double remaining_ms() const { return remaining_ms_; }
  void Consume(double ms) {
    if (!unlimited_) remaining_ms_ -= ms;
  }

 private:
  bool unlimited_ = true;
  double remaining_ms_ = 0.0;
};

/// RAII install of retry/deadline/fault-context policy for the current
/// thread. Scopes nest; the innermost wins (each query gets exactly
/// one). The fault context id feeds the FaultInjector's decision hash,
/// so fault schedules are per-query-deterministic at any thread count.
class RpcScope {
 public:
  RpcScope(RetryPolicy policy, double deadline_budget_ms = 0.0,
           uint64_t fault_context = 0);
  ~RpcScope();

  RpcScope(const RpcScope&) = delete;
  RpcScope& operator=(const RpcScope&) = delete;

  const RetryPolicy& policy() const { return policy_; }
  Deadline& deadline() { return deadline_; }

  /// Optional hedging policy (off by default).
  void set_hedge(const HedgePolicy& hedge) { hedge_ = hedge; }
  const HedgePolicy& hedge() const { return hedge_; }

  /// Optional circuit-breaker consult: when set, CallRpc refuses to
  /// send to a destination whose circuit is open at simulated time
  /// `now_ms` (failing fast with Unavailable, no traffic). The tracker
  /// is READ-ONLY here; the engine owns writes at its commit points.
  void set_health(const HealthTracker* health, double now_ms) {
    health_ = health;
    now_ms_ = now_ms;
  }
  const HealthTracker* health() const { return health_; }
  double now_ms() const { return now_ms_; }

  /// Optional outcome buffer: when set, CallRpc appends one
  /// HealthObservation per logical RPC (final status + total simulated
  /// latency including retries, hedges, and backoff) for the engine to
  /// commit into its HealthTracker later. Circuit-refused sends record
  /// nothing — no traffic, no evidence.
  void set_observations(std::vector<HealthObservation>* observations) {
    observations_ = observations;
  }
  std::vector<HealthObservation>* observations() const {
    return observations_;
  }

  /// The innermost scope on this thread, or nullptr.
  static RpcScope* Current();
  /// True when a scope with a finite deadline is installed and its
  /// budget ran out (graceful-degradation callers stop issuing RPCs).
  static bool DeadlineExpired();

 private:
  RpcScope* previous_;
  uint64_t previous_context_;
  RetryPolicy policy_;
  Deadline deadline_;
  HedgePolicy hedge_;
  const HealthTracker* health_ = nullptr;
  double now_ms_ = 0.0;
  std::vector<HealthObservation>* observations_ = nullptr;
};

/// Issues the RPC under the ambient RpcScope: circuit breaker
/// consulted first (open = fail fast, no traffic), deadline checked
/// before every attempt, retriable failures retried up to the policy's
/// budget with seeded-jitter exponential backoff charged to simulated
/// latency (clamped to the remaining deadline budget — waiting cannot
/// be charged past the deadline), slow failures hedged when the scope
/// carries a HedgePolicy, and the final outcome appended to the
/// scope's observation buffer. Without a scope: one raw attempt.
Result<Bytes> CallRpc(Transport* network, NodeAddress src,
                      NodeAddress dst, const std::string& type, Bytes payload);

}  // namespace iqn

#endif  // IQN_NET_RPC_POLICY_H_

#include "net/rpc_policy.h"

#include <algorithm>
#include <utility>

#include "util/hash.h"
#include "util/logging.h"
#include "util/trace.h"

namespace iqn {

namespace {

// Innermost RpcScope of the current thread (same idiom as the stats
// sink in network.cc).
thread_local RpcScope* tls_rpc_scope = nullptr;

// Salt separating backoff jitter hashes from fault-decision hashes.
constexpr uint64_t kJitterSalt = 0xB0FF;

}  // namespace

double RetryPolicy::BackoffMs(int attempt, NodeAddress dst,
                              const std::string& type,
                              uint64_t context) const {
  double nominal = initial_backoff_ms;
  for (int i = 1; i < attempt; ++i) nominal *= backoff_multiplier;
  nominal = std::min(nominal, max_backoff_ms);
  if (jitter <= 0.0) return nominal;
  uint64_t h = Mix64(jitter_seed ^ (kJitterSalt * 0x9E3779B97F4A7C15ull));
  h = Mix64(h ^ dst);
  h = Mix64(h ^ HashString(type));
  h = Mix64(h ^ context);
  h = Mix64(h ^ static_cast<uint64_t>(attempt));
  // 53-bit hash fraction in [0, 1), mapped to [1 - jitter, 1 + jitter].
  double unit = static_cast<double>(h >> 11) * 0x1.0p-53;
  return nominal * (1.0 + jitter * (2.0 * unit - 1.0));
}

RpcScope::RpcScope(RetryPolicy policy, double deadline_budget_ms,
                   uint64_t fault_context)
    : previous_(tls_rpc_scope),
      previous_context_(
          SimulatedNetwork::ExchangeThreadFaultContext(fault_context)),
      policy_(policy),
      deadline_(deadline_budget_ms) {
  tls_rpc_scope = this;
}

RpcScope::~RpcScope() {
  SimulatedNetwork::ExchangeThreadFaultContext(previous_context_);
  tls_rpc_scope = previous_;
}

RpcScope* RpcScope::Current() { return tls_rpc_scope; }

bool RpcScope::DeadlineExpired() {
  return tls_rpc_scope != nullptr && tls_rpc_scope->deadline_.Expired();
}

namespace {

/// The retry/deadline loop proper; CallRpc wraps it in the trace span so
/// every return path gets its status annotated in one place.
Result<Bytes> CallRpcAttempts(SimulatedNetwork* network, NodeAddress src,
                              NodeAddress dst, const std::string& type,
                              Bytes payload, ScopedSpan* span) {
  RpcScope* scope = RpcScope::Current();
  if (scope == nullptr) {
    return network->Rpc(src, dst, type, std::move(payload));
  }
  const RetryPolicy& policy = scope->policy();
  const int attempts = std::max(1, policy.max_attempts);
  const uint64_t context = SimulatedNetwork::ThreadFaultContext();
  Result<Bytes> result = Status::Internal("CallRpc: no attempt made");
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (scope->deadline().Expired()) {
      span->Attr("deadline", "expired_before_send");
      return Status::DeadlineExceeded(
          "query deadline budget exhausted before sending " + type);
    }
    const bool last = attempt + 1 == attempts;
    const double before_ms = network->CurrentLatencyMs();
    result = network->Rpc(src, dst, type, last ? std::move(payload) : payload,
                          static_cast<uint64_t>(attempt));
    // Every simulated millisecond the attempt cost (including nested
    // cascades and injected penalties) draws down the deadline budget.
    scope->deadline().Consume(network->CurrentLatencyMs() - before_ms);
    if (result.ok() || !RetryPolicy::IsRetriable(result.status().code())) {
      return result;
    }
    if (span->active()) {
      span->Attr("attempt" + std::to_string(attempt),
                 StatusCodeName(result.status().code()));
    }
    if (!last) {
      const double backoff =
          policy.BackoffMs(attempt + 1, dst, type, context);
      network->ChargeRetryBackoff(backoff);
      scope->deadline().Consume(backoff);
      span->AttrDouble("backoff_ms", backoff);
      IQN_VLOG(1) << "rpc retry " << (attempt + 1) << "/" << (attempts - 1)
                  << " " << type << " -> " << dst << " after "
                  << result.status().ToString();
    }
  }
  return result;
}

}  // namespace

Result<Bytes> CallRpc(SimulatedNetwork* network, NodeAddress src,
                      NodeAddress dst, const std::string& type, Bytes payload) {
  // One span per logical RPC: all attempts, their faults, and the
  // backoff waits land inside it, so traces show retry storms directly.
  ScopedSpan span("rpc");
  if (span.active()) {
    span.Attr("type", type);
    span.AttrUint("dst", dst);
  }
  Result<Bytes> result =
      CallRpcAttempts(network, src, dst, type, std::move(payload), &span);
  if (span.active()) {
    span.Attr("status",
              result.ok() ? "OK" : StatusCodeName(result.status().code()));
  }
  return result;
}

}  // namespace iqn

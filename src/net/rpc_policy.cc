#include "net/rpc_policy.h"

#include <algorithm>
#include <utility>

#include "util/hash.h"
#include "util/logging.h"
#include "util/trace.h"

namespace iqn {

namespace {

// Innermost RpcScope of the current thread (same idiom as the stats
// sink in network.cc).
thread_local RpcScope* tls_rpc_scope = nullptr;

// Salt separating backoff jitter hashes from fault-decision hashes.
constexpr uint64_t kJitterSalt = 0xB0FF;

}  // namespace

double RetryPolicy::BackoffMs(int attempt, NodeAddress dst,
                              const std::string& type,
                              uint64_t context) const {
  double nominal = initial_backoff_ms;
  for (int i = 1; i < attempt; ++i) nominal *= backoff_multiplier;
  nominal = std::min(nominal, max_backoff_ms);
  if (jitter <= 0.0) return nominal;
  uint64_t h = Mix64(jitter_seed ^ (kJitterSalt * 0x9E3779B97F4A7C15ull));
  h = Mix64(h ^ dst);
  h = Mix64(h ^ HashString(type));
  h = Mix64(h ^ context);
  h = Mix64(h ^ static_cast<uint64_t>(attempt));
  // 53-bit hash fraction in [0, 1), mapped to [1 - jitter, 1 + jitter].
  // The cap applies to the CHARGED value: clamping after the jitter
  // multiply keeps the wait within max_backoff_ms even when the
  // nominal value already sits at the cap.
  double unit = static_cast<double>(h >> 11) * 0x1.0p-53;
  return std::min(nominal * (1.0 + jitter * (2.0 * unit - 1.0)),
                  max_backoff_ms);
}

RpcScope::RpcScope(RetryPolicy policy, double deadline_budget_ms,
                   uint64_t fault_context)
    : previous_(tls_rpc_scope),
      previous_context_(
          Transport::ExchangeThreadFaultContext(fault_context)),
      policy_(policy),
      deadline_(deadline_budget_ms) {
  tls_rpc_scope = this;
}

RpcScope::~RpcScope() {
  Transport::ExchangeThreadFaultContext(previous_context_);
  tls_rpc_scope = previous_;
}

RpcScope* RpcScope::Current() { return tls_rpc_scope; }

bool RpcScope::DeadlineExpired() {
  return tls_rpc_scope != nullptr && tls_rpc_scope->deadline_.Expired();
}

namespace {

// Attempt-nonce offset separating hedge dice from ordinary retry dice:
// the hedge to attempt k rolls nonce kHedgeNonceBase + k, a stream no
// plain retry schedule reaches.
constexpr uint64_t kHedgeNonceBase = 0x100;

/// The retry/deadline/hedge loop proper; CallRpc wraps it in the trace
/// span so every return path gets its status annotated in one place.
Result<Bytes> CallRpcAttempts(Transport* network, NodeAddress src,
                              NodeAddress dst, const std::string& type,
                              Bytes payload, ScopedSpan* span) {
  RpcScope* scope = RpcScope::Current();
  if (scope == nullptr) {
    return network->Rpc(src, dst, type, std::move(payload));
  }
  // Circuit breaker: an open circuit fails fast with no traffic. The
  // tracker only changes at engine commit points, so one consult per
  // logical RPC suffices.
  if (scope->health() != nullptr &&
      !scope->health()->AllowRequest(dst, scope->now_ms())) {
    network->CountCircuitBlocked();
    span->Attr("circuit", "open");
    return Status::Unavailable("circuit open to node " + std::to_string(dst));
  }
  const RetryPolicy& policy = scope->policy();
  const HedgePolicy& hedge = scope->hedge();
  const int attempts = std::max(1, policy.max_attempts);
  const uint64_t context = Transport::ThreadFaultContext();
  const double call_start_ms = network->CurrentLatencyMs();
  // One observation per logical RPC, recorded on every return path
  // below (the circuit-refused return above records none: no traffic,
  // no evidence).
  auto finish = [&](Result<Bytes> r) {
    if (scope->observations() != nullptr) {
      scope->observations()->push_back(HealthObservation{
          dst, r.ok(), network->CurrentLatencyMs() - call_start_ms});
    }
    return r;
  };
  bool hedged = false;
  Result<Bytes> result = Status::Internal("CallRpc: no attempt made");
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (scope->deadline().Expired()) {
      span->Attr("deadline", "expired_before_send");
      Status expired = Status::DeadlineExceeded(
          "query deadline budget exhausted before sending " + type);
      // Only attempts actually sent leave health evidence: a budget
      // that ran out before the first send says nothing about dst.
      return attempt == 0 ? Result<Bytes>(std::move(expired))
                          : finish(std::move(expired));
    }
    const bool last = attempt + 1 == attempts;
    // Hedging may need the payload again after the last attempt fails.
    const bool may_hedge = hedge.enabled && !hedged;
    const double before_ms = network->CurrentLatencyMs();
    result = network->Rpc(src, dst, type,
                          last && !may_hedge ? std::move(payload) : payload,
                          static_cast<uint64_t>(attempt));
    // Every simulated millisecond the attempt cost (including nested
    // cascades and injected penalties) draws down the deadline budget.
    const double attempt_cost_ms = network->CurrentLatencyMs() - before_ms;
    scope->deadline().Consume(attempt_cost_ms);
    if (!result.ok() && !RetryPolicy::IsRetriable(result.status().code())) {
      // Non-retriable errors are deterministic — a backup would hit the
      // same one, so neither hedging nor retrying applies.
      return finish(std::move(result));
    }
    if (!result.ok() && span->active()) {
      span->Attr("attempt" + std::to_string(attempt),
                 StatusCodeName(result.status().code()));
    }
    if (may_hedge && attempt_cost_ms > hedge.threshold_ms &&
        !scope->deadline().Expired()) {
      // The attempt ran slow — past the policy's healthy-latency
      // estimate — whether it eventually succeeded or failed. A real
      // client would have launched a backup request threshold_ms in;
      // charge that hedge now, on a fresh nonce stream, and credit back
      // the stretch where primary and hedge overlapped: the caller's
      // wait is max(primary, threshold + hedge), not the serial sum.
      hedged = true;
      ScopedSpan hedge_span("rpc.hedge");
      const double hedge_before_ms = network->CurrentLatencyMs();
      Result<Bytes> hedge_result =
          network->Rpc(src, dst, type, payload,
                       kHedgeNonceBase + static_cast<uint64_t>(attempt));
      const double hedge_cost_ms =
          network->CurrentLatencyMs() - hedge_before_ms;
      const double overlapped_ms =
          std::max(attempt_cost_ms, hedge.threshold_ms + hedge_cost_ms);
      const double credit_ms =
          std::max(0.0, attempt_cost_ms + hedge_cost_ms - overlapped_ms);
      // The hedge wins when it is the answer the caller would have used:
      // the primary failed and the backup delivered, or both delivered
      // and the backup (launched threshold_ms in) finished first.
      const bool won =
          hedge_result.ok() &&
          (!result.ok() ||
           hedge.threshold_ms + hedge_cost_ms < attempt_cost_ms);
      network->RecordHedge(won, credit_ms);
      scope->deadline().Consume(hedge_cost_ms - credit_ms);
      if (hedge_span.active()) {
        hedge_span.Attr("outcome", won ? "won" : "lost");
        hedge_span.AttrDouble("hedge_ms", hedge_cost_ms);
        hedge_span.AttrDouble("overlap_credit_ms", credit_ms);
      }
      if (won && !result.ok()) {
        return finish(std::move(hedge_result));
      }
      // A hedge racing a slow SUCCESS keeps the primary's bytes either
      // way (the peer's answer is deterministic); the win it buys is
      // the overlap credit already applied above.
      if (!result.ok()) {
        IQN_VLOG(1) << "rpc hedge lost " << type << " -> " << dst
                    << " after " << hedge_result.status().ToString();
      }
    }
    if (result.ok()) {
      return finish(std::move(result));
    }
    if (!last) {
      // The charged wait is clamped to the remaining budget: a backoff
      // cannot cost simulated time the deadline no longer has.
      double backoff = policy.BackoffMs(attempt + 1, dst, type, context);
      if (!scope->deadline().unlimited()) {
        backoff = std::min(backoff,
                           std::max(0.0, scope->deadline().remaining_ms()));
      }
      network->ChargeRetryBackoff(backoff);
      scope->deadline().Consume(backoff);
      span->AttrDouble("backoff_ms", backoff);
      IQN_VLOG(1) << "rpc retry " << (attempt + 1) << "/" << (attempts - 1)
                  << " " << type << " -> " << dst << " after "
                  << result.status().ToString();
    }
  }
  return finish(std::move(result));
}

}  // namespace

Result<Bytes> CallRpc(Transport* network, NodeAddress src,
                      NodeAddress dst, const std::string& type, Bytes payload) {
  // One span per logical RPC: all attempts, their faults, and the
  // backoff waits land inside it, so traces show retry storms directly.
  ScopedSpan span("rpc");
  if (span.active()) {
    span.Attr("type", type);
    span.AttrUint("dst", dst);
  }
  Result<Bytes> result =
      CallRpcAttempts(network, src, dst, type, std::move(payload), &span);
  if (span.active()) {
    span.Attr("status",
              result.ok() ? "OK" : StatusCodeName(result.status().code()));
  }
  return result;
}

}  // namespace iqn

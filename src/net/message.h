// Messages on the simulated network.
//
// A message is a typed, addressed byte payload. The type string selects
// the handler logic at the destination (Chord protocol verbs, KV store
// operations, MINERVA query execution); payloads are encoded with
// util/bytes.h.

#ifndef IQN_NET_MESSAGE_H_
#define IQN_NET_MESSAGE_H_

#include <cstdint>
#include <string>

#include "util/bytes.h"

namespace iqn {

/// Network address of a registered node (assigned by SimulatedNetwork).
using NodeAddress = uint64_t;

/// Address value never assigned to a real node.
inline constexpr NodeAddress kInvalidAddress = ~uint64_t{0};

struct Message {
  NodeAddress src = kInvalidAddress;
  NodeAddress dst = kInvalidAddress;
  std::string type;
  Bytes payload;

  /// Bytes charged on the wire: payload plus a fixed header estimate
  /// (addresses, type, framing).
  size_t WireSize() const;
};

}  // namespace iqn

#endif  // IQN_NET_MESSAGE_H_

// Deterministic fault injection for the simulated network.
//
// The paper evaluates IQN on a reliable PC cluster (Sec. 8), but the
// MINERVA setting it targets is a P2P network where peers churn, drop
// messages, and stall. A FaultInjector installed into SimulatedNetwork
// perturbs RPCs according to a FaultPlan: per destination node and
// message type it can drop requests or responses, put a destination
// into a transient Unavailable window, add slow-link latency, truncate
// or corrupt response payloads (exercising the hardened deserializers
// end to end), and fire simulated-time DeadlineExceeded timeouts.
// Beyond the per-message rate classes it models two capacity failures:
// overloaded peers (seeded queueing-delay model with optional load
// shedding, OverloadSpec) and scheduled network partitions that heal
// on the simulated clock (PartitionSpec).
//
// Determinism contract: every fault decision is a PURE FUNCTION of
// (plan seed, fault class, destination, message type, payload
// fingerprint, ambient fault context, attempt nonce) — no mutable RNG
// state. The ambient fault context is a per-query id installed by
// RpcScope (net/rpc_policy.h) and the attempt nonce is the retry
// ordinal, so a retried message can see a different fate than the
// original while the whole schedule stays bit-identical across runs
// and across any thread count. Injected faults are accounted in
// NetworkStats (the traffic they waste is real); the injector also
// keeps global per-class counters (atomic, order-independent sums) for
// chaos benches.

#ifndef IQN_NET_FAULT_H_
#define IQN_NET_FAULT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "net/message.h"
#include "util/metrics.h"

namespace iqn {

/// One class of fault: a rate plus an optional scope restriction.
struct FaultSpec {
  /// Probability in [0, 1] that the fault fires at its decision point.
  double rate = 0.0;
  /// Restrict to message types with this prefix ("kv.", "peer.query",
  /// ...); empty applies to every type.
  std::string type_prefix;
  /// Restrict to these destination nodes; empty applies to every node.
  std::vector<NodeAddress> nodes;

  bool AppliesTo(NodeAddress dst, const std::string& type) const;
};

/// A set of overloaded destinations modeled as seeded M/M/1-style
/// queues: each message to an overloaded node is charged a
/// deterministic queueing delay drawn (by pure hash, like every other
/// fault decision) from an exponential distribution whose mean is
/// service_ms * utilization / (1 - utilization) — the textbook mean
/// waiting time at the given utilization, so simulated service latency
/// grows without bound as the node saturates. Independently, a
/// saturated node may shed load: with probability shed_rate it
/// fast-fails the request with Unavailable before doing any work
/// (request bytes are still charged — they were sent).
struct OverloadSpec {
  /// The overloaded destinations; empty disables the model.
  std::vector<NodeAddress> nodes;
  /// Queue utilization rho in [0, 1). 0 disables queueing delay.
  double utilization = 0.0;
  /// Base service time of one request at the overloaded node.
  double service_ms = 5.0;
  /// Probability in [0, 1] that the node sheds (fast-fails) a request.
  double shed_rate = 0.0;

  bool active() const {
    return !nodes.empty() && (utilization > 0.0 || shed_rate > 0.0);
  }
};

/// A scheduled network partition: over the simulated-time window
/// [start_ms, end_ms) the named groups cannot reach each other — any
/// message whose source and destination sit in different groups fails
/// fast with Unavailable (request bytes charged). Nodes not listed in
/// any group are unaffected. The window is evaluated against
/// SimulatedNetwork's coarse simulated clock, so the partition heals
/// deterministically when the clock passes end_ms.
struct PartitionSpec {
  /// Diagnostic label, surfaced in error messages.
  std::string name = "partition";
  /// Disjoint node groups that lose mutual connectivity.
  std::vector<std::vector<NodeAddress>> groups;
  /// Simulated-time window; end_ms must exceed start_ms.
  double start_ms = 0.0;
  double end_ms = 0.0;
};

/// A reproducible failure schedule: a seed plus per-fault-class rates.
/// Two runs with equal plans see bit-identical fault sequences.
struct FaultPlan {
  uint64_t seed = 0;

  /// Request never reaches the destination; the caller times out
  /// (DeadlineExceeded) after timeout_penalty_ms of simulated waiting.
  /// Request bytes are charged (they were sent).
  FaultSpec drop_request;
  /// The handler runs (side effects happen) and the response is sent
  /// (both legs charged), but the caller never sees it and times out.
  FaultSpec drop_response;
  /// Transient per-destination outage: EVERY message to the node fails
  /// fast with Unavailable within the (context, attempt) window,
  /// regardless of type or payload — a stalled or restarting peer. A
  /// retry (next attempt nonce) sees a fresh die roll.
  FaultSpec unavailable;
  /// Delivered intact but slowly: slow_link_extra_ms extra simulated
  /// latency charged to the RPC.
  FaultSpec slow_link;
  /// Response payload is truncated or bit-flipped (hash-chosen) before
  /// delivery; the caller's deserializer must cope. Charged at the
  /// size actually delivered.
  FaultSpec corrupt_response;
  /// The full round trip happens (all traffic charged) but takes too
  /// long: the caller gets DeadlineExceeded plus timeout_penalty_ms of
  /// simulated waiting.
  FaultSpec timeout;

  /// Overloaded destinations (queueing delay + load shedding).
  OverloadSpec overload;
  /// Scheduled partition windows, evaluated against simulated time.
  std::vector<PartitionSpec> partitions;

  /// Simulated milliseconds a caller waits before declaring a timeout
  /// (applied by drop_request, drop_response, and timeout faults).
  double timeout_penalty_ms = 50.0;
  /// Extra simulated latency of a slow link.
  double slow_link_extra_ms = 25.0;

  /// True when any fault class has a nonzero rate, the overload model
  /// is active, or a partition window is scheduled.
  bool active() const;

  /// Convenience: a plan dropping requests and responses each with
  /// `rate` across all nodes and types (the chaos benches' x-axis).
  static FaultPlan MessageDrop(uint64_t seed, double rate);
};

/// Stable identities for the fault classes, for per-class accounting
/// (NetworkStats::faults_by_class, registry counters, chaos bench
/// histograms). Order matches the FaultCounters members.
enum class FaultClass {
  kRequestDropped = 0,
  kResponseDropped,
  kUnavailable,
  kSlowLink,
  kCorruptResponse,
  kTimeout,
  kOverloaded,
  kLoadShed,
  kPartitioned,
};
inline constexpr size_t kNumFaultClasses = 9;

/// Metric-style per-class name ("requests_dropped", ...), matching the
/// FaultCounters member names.
const char* FaultClassName(FaultClass klass);

/// Global (plan-lifetime) fault counts, summed across all queries and
/// threads. Counter (util/metrics.h) instruments: relaxed increments —
/// totals are deterministic because the set of injected faults is,
/// regardless of increment order.
struct FaultCounters {
  Counter requests_dropped;
  Counter responses_dropped;
  Counter unavailable_injected;
  Counter links_slowed;
  Counter responses_corrupted;
  Counter timeouts_injected;
  Counter overload_delays;
  Counter loads_shed;
  Counter partition_blocked;

  Counter& ForClass(FaultClass klass);

  uint64_t total() const {
    return requests_dropped.Value() + responses_dropped.Value() +
           unavailable_injected.Value() + links_slowed.Value() +
           responses_corrupted.Value() + timeouts_injected.Value() +
           overload_delays.Value() + loads_shed.Value() +
           partition_blocked.Value();
  }
};

/// Everything SimulatedNetwork::Rpc needs to know to perturb one
/// message, decided up front so the network code stays linear.
struct FaultDecision {
  bool unavailable = false;
  bool drop_request = false;
  bool drop_response = false;
  bool timeout = false;
  bool slow_link = false;
  bool corrupt_response = false;
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  const FaultPlan& plan() const { return plan_; }
  FaultCounters& counters() { return counters_; }
  const FaultCounters& counters() const { return counters_; }

  /// All fault decisions for one message. Pure w.r.t. the arguments:
  /// safe to call concurrently, identical across runs. `context` is
  /// the ambient per-query fault context (0 outside any RpcScope),
  /// `attempt` the retry ordinal.
  FaultDecision Decide(NodeAddress dst, const std::string& type,
                       uint64_t payload_fingerprint, uint64_t context,
                       uint64_t attempt) const;

  /// Deterministically corrupts `payload` in place: truncation at a
  /// hash-derived offset or bit flips at hash-derived positions,
  /// selected by the same (dst, type, fingerprint, context, attempt)
  /// coordinates the decision used.
  void CorruptPayload(Bytes* payload, NodeAddress dst,
                      const std::string& type, uint64_t payload_fingerprint,
                      uint64_t context, uint64_t attempt) const;

  /// Deterministic queueing delay (simulated ms) charged to one message
  /// bound for `dst`; 0 when dst is not overloaded or utilization is 0.
  /// Pure w.r.t. the arguments, like Decide.
  double OverloadDelayMs(NodeAddress dst, const std::string& type,
                         uint64_t payload_fingerprint, uint64_t context,
                         uint64_t attempt) const;

  /// True when the overloaded `dst` sheds this request (fast-fail
  /// Unavailable before any handler work). A retry (next attempt
  /// nonce) rolls a fresh die.
  bool ShedsLoad(NodeAddress dst, const std::string& type,
                 uint64_t payload_fingerprint, uint64_t context,
                 uint64_t attempt) const;

  /// True when an active partition window at simulated time `now_ms`
  /// separates src from dst. When it returns true, `*name` (if
  /// non-null) receives the partition's label. Pure window lookup — no
  /// hashing, so every cross-group message inside the window fails.
  bool Partitioned(NodeAddress src, NodeAddress dst, double now_ms,
                   const std::string** name) const;

 private:
  /// True with probability `spec.rate` for this decision coordinate.
  bool Fires(const FaultSpec& spec, uint64_t klass, NodeAddress dst,
             const std::string& type, uint64_t payload_fingerprint,
             uint64_t context, uint64_t attempt) const;

  FaultPlan plan_;
  mutable FaultCounters counters_;
};

}  // namespace iqn

#endif  // IQN_NET_FAULT_H_

// Simulated message-passing network.
//
// Substitution for the paper's PC-cluster deployment (DESIGN.md): nodes
// register a handler, and Rpc() delivers a message synchronously to the
// destination handler, accounting every message and byte. The paper's
// cost metrics (number of peers contacted, synopsis posting bandwidth,
// directory lookup traffic) are counting metrics, so a deterministic
// synchronous simulator measures them exactly.
//
// Handlers may issue nested Rpcs (e.g., a directory node forwarding a
// replica write); accounting covers the whole cascade. A latency model
// (per-message plus per-byte) accumulates a simulated-time cost for
// reporting; it does not reorder delivery.

#ifndef IQN_NET_NETWORK_H_
#define IQN_NET_NETWORK_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "net/message.h"
#include "util/status.h"

namespace iqn {

struct NetworkStats {
  uint64_t messages = 0;
  uint64_t bytes = 0;
  /// Simulated transfer cost in milliseconds under the latency model.
  double latency_ms = 0.0;
  /// Message and byte counts per message type (e.g. "chord.find_succ").
  std::map<std::string, uint64_t> messages_by_type;
  std::map<std::string, uint64_t> bytes_by_type;
};

struct LatencyModel {
  /// Fixed per-message cost (network round trip).
  double per_message_ms = 1.0;
  /// Transfer cost per payload byte (e.g. ~0.001 ms/byte ~ 8 Mbit/s).
  double per_byte_ms = 0.001;
};

class SimulatedNetwork {
 public:
  /// Request handler: receives the message, returns the response payload.
  using Handler = std::function<Result<Bytes>(const Message&)>;

  SimulatedNetwork() = default;
  explicit SimulatedNetwork(LatencyModel latency) : latency_(latency) {}

  SimulatedNetwork(const SimulatedNetwork&) = delete;
  SimulatedNetwork& operator=(const SimulatedNetwork&) = delete;

  /// RAII redirection of traffic accounting. While a StatsCapture is alive
  /// on a thread, every message that thread sends (including nested Rpcs
  /// issued from handlers it invokes) is charged to `sink` instead of the
  /// network-wide stats — per-query metering that stays exact when many
  /// queries run concurrently over the same network. The topology itself
  /// (Register / SetNodeUp) must not change while captures are live;
  /// Rpc over a fixed topology is otherwise thread-safe. Scopes nest:
  /// the innermost capture on the thread wins.
  class StatsCapture {
   public:
    StatsCapture(SimulatedNetwork* network, NetworkStats* sink);
    ~StatsCapture();

    StatsCapture(const StatsCapture&) = delete;
    StatsCapture& operator=(const StatsCapture&) = delete;

   private:
    NetworkStats* previous_;
  };

  /// Folds a captured per-query delta into the network-wide stats.
  /// Call from one thread at a time (the batch engine merges deltas in
  /// query order after joining its workers, keeping totals deterministic).
  void MergeStats(const NetworkStats& delta);

  /// Registers a node; the returned address is stable for the lifetime of
  /// the network.
  NodeAddress Register(Handler handler);

  /// Marks a node down (messages to it fail with Unavailable) or back up.
  Status SetNodeUp(NodeAddress addr, bool up);
  bool IsNodeUp(NodeAddress addr) const;

  /// Synchronous request/response. Charges the request and the response
  /// against the stats. Fails with Unavailable if dst is down, NotFound if
  /// dst was never registered.
  Result<Bytes> Rpc(NodeAddress src, NodeAddress dst, const std::string& type,
                    Bytes payload);

  size_t num_nodes() const { return nodes_.size(); }

  const NetworkStats& stats() const { return stats_; }
  void ResetStats() { stats_ = NetworkStats(); }

 private:
  struct Node {
    Handler handler;
    bool up = true;
  };

  void Charge(const std::string& type, size_t wire_bytes);

  /// The stats object Charge() writes to on this thread: the innermost
  /// live StatsCapture's sink, or the global stats_.
  NetworkStats* ActiveStats();

  LatencyModel latency_;
  std::vector<Node> nodes_;
  NetworkStats stats_;
};

}  // namespace iqn

#endif  // IQN_NET_NETWORK_H_

// Simulated message-passing network.
//
// Substitution for the paper's PC-cluster deployment (DESIGN.md): nodes
// register a handler, and Rpc() delivers a message synchronously to the
// destination handler, accounting every message and byte. The paper's
// cost metrics (number of peers contacted, synopsis posting bandwidth,
// directory lookup traffic) are counting metrics, so a deterministic
// synchronous simulator measures them exactly.
//
// Handlers may issue nested Rpcs (e.g., a directory node forwarding a
// replica write); accounting covers the whole cascade. A latency model
// (per-message plus per-byte) accumulates a simulated-time cost for
// reporting; it does not reorder delivery.

#ifndef IQN_NET_NETWORK_H_
#define IQN_NET_NETWORK_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "net/message.h"
#include "util/status.h"

namespace iqn {

struct NetworkStats {
  uint64_t messages = 0;
  uint64_t bytes = 0;
  /// Simulated transfer cost in milliseconds under the latency model.
  double latency_ms = 0.0;
  /// Message and byte counts per message type (e.g. "chord.find_succ").
  std::map<std::string, uint64_t> messages_by_type;
  std::map<std::string, uint64_t> bytes_by_type;
};

struct LatencyModel {
  /// Fixed per-message cost (network round trip).
  double per_message_ms = 1.0;
  /// Transfer cost per payload byte (e.g. ~0.001 ms/byte ~ 8 Mbit/s).
  double per_byte_ms = 0.001;
};

class SimulatedNetwork {
 public:
  /// Request handler: receives the message, returns the response payload.
  using Handler = std::function<Result<Bytes>(const Message&)>;

  SimulatedNetwork() = default;
  explicit SimulatedNetwork(LatencyModel latency) : latency_(latency) {}

  SimulatedNetwork(const SimulatedNetwork&) = delete;
  SimulatedNetwork& operator=(const SimulatedNetwork&) = delete;

  /// Registers a node; the returned address is stable for the lifetime of
  /// the network.
  NodeAddress Register(Handler handler);

  /// Marks a node down (messages to it fail with Unavailable) or back up.
  Status SetNodeUp(NodeAddress addr, bool up);
  bool IsNodeUp(NodeAddress addr) const;

  /// Synchronous request/response. Charges the request and the response
  /// against the stats. Fails with Unavailable if dst is down, NotFound if
  /// dst was never registered.
  Result<Bytes> Rpc(NodeAddress src, NodeAddress dst, const std::string& type,
                    Bytes payload);

  size_t num_nodes() const { return nodes_.size(); }

  const NetworkStats& stats() const { return stats_; }
  void ResetStats() { stats_ = NetworkStats(); }

 private:
  struct Node {
    Handler handler;
    bool up = true;
  };

  void Charge(const std::string& type, size_t wire_bytes);

  LatencyModel latency_;
  std::vector<Node> nodes_;
  NetworkStats stats_;
};

}  // namespace iqn

#endif  // IQN_NET_NETWORK_H_

// Simulated message-passing network — the in-process Transport backend.
//
// Substitution for the paper's PC-cluster deployment (DESIGN.md): nodes
// register a handler, and Rpc() delivers a message synchronously to the
// destination handler, accounting every message and byte. The paper's
// cost metrics (number of peers contacted, synopsis posting bandwidth,
// directory lookup traffic) are counting metrics, so a deterministic
// synchronous simulator measures them exactly.
//
// Handlers may issue nested Rpcs (e.g., a directory node forwarding a
// replica write); accounting covers the whole cascade. A latency model
// (per-message plus per-byte) accumulates a simulated-time cost for
// reporting; it does not reorder delivery.
//
// All the accounting, fault-injection, clock, and metering machinery
// lives in the Transport base (net/transport.h); this class is the
// trivial backend whose Deliver() is a direct handler call. Construct it
// through CreateTransport / EngineOptions outside net/ and tests — the
// no-direct-simnet lint rule keeps call sites backend-agnostic.

#ifndef IQN_NET_NETWORK_H_
#define IQN_NET_NETWORK_H_

#include "net/transport.h"

namespace iqn {

class SimulatedNetwork : public Transport {
 public:
  SimulatedNetwork();
  explicit SimulatedNetwork(LatencyModel latency);

  const char* kind_name() const override { return "simulated"; }

 protected:
  /// Direct synchronous dispatch to the registered handler; `attempt`
  /// is unused here (it already fed the caller-side fault pipeline).
  Result<Bytes> Deliver(const Message& msg, uint64_t attempt) override;
};

}  // namespace iqn

#endif  // IQN_NET_NETWORK_H_

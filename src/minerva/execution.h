// Public execution-phase data model: how per-peer result lists merge and
// what one executed query delivered. The QueryProcessor that produces a
// QueryExecution is internal (minerva/internal/query_processor.h);
// outside code receives these types inside QueryOutcome.

#ifndef IQN_MINERVA_EXECUTION_H_
#define IQN_MINERVA_EXECUTION_H_

#include <cstddef>
#include <vector>

#include "ir/top_k.h"
#include "minerva/routing.h"

namespace iqn {

enum class MergeStrategy {
  /// Trust raw peer scores (comparable when peers share statistics).
  kRawScores,
  /// Callan's CORI merge normalization (uses the collection scores the
  /// router recorded per selected peer).
  kCoriNormalized,
};

struct QueryExecution {
  /// The initiator's own result list.
  std::vector<ScoredDoc> local_results;
  /// One result list per attempted peer — the routed peers in selection
  /// order, then any replacements in replacement order; empty lists for
  /// peers that failed.
  std::vector<std::vector<ScoredDoc>> per_peer_results;
  /// The attempted peers themselves, aligned index-for-index with
  /// per_peer_results (selection-order originals, then replacements,
  /// each carrying its selection-time quality/novelty diagnostics).
  /// This is what claim-vs-observed calibration (minerva/reputation.h)
  /// compares deliveries against.
  std::vector<SelectedPeer> attempted;
  /// Global top-k after merging all lists (local included).
  std::vector<ScoredDoc> merged;
  /// Every distinct retrieved document, best score first (recall basis —
  /// "the results that the P2P search system found").
  std::vector<ScoredDoc> all_distinct;
  /// Selected peers that did not answer (down / unreachable).
  size_t failed_peers = 0;
};

}  // namespace iqn

#endif  // IQN_MINERVA_EXECUTION_H_

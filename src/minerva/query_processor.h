// Query execution phase: after routing has chosen the peers, forward the
// query to each of them, collect their top-k lists, and merge.
//
// Merging has a classic distributed-IR subtlety: peers score with LOCAL
// statistics (their own idf), so raw scores from different peers are not
// directly comparable. The CORI-normalized strategy applies Callan's
// standard merge heuristic, weighting each peer's scores by how its
// collection score deviates from the mean of the selected collections:
//   weight_i = 1 + kBeta * (C_i - C_mean) / C_mean
// (Callan's formula up to a uniform scale factor that cannot affect any
// ranking; this normalization keeps the mean collection neutral).

#ifndef IQN_MINERVA_QUERY_PROCESSOR_H_
#define IQN_MINERVA_QUERY_PROCESSOR_H_

#include <vector>

#include "minerva/peer.h"
#include "minerva/router.h"
#include "util/status.h"

namespace iqn {

enum class MergeStrategy {
  /// Trust raw peer scores (comparable when peers share statistics).
  kRawScores,
  /// Callan's CORI merge normalization (uses the collection scores the
  /// router recorded per selected peer).
  kCoriNormalized,
};

struct QueryExecution {
  /// The initiator's own result list.
  std::vector<ScoredDoc> local_results;
  /// One result list per selected peer (selection order; empty lists for
  /// peers that were down).
  std::vector<std::vector<ScoredDoc>> per_peer_results;
  /// Global top-k after merging all lists (local included).
  std::vector<ScoredDoc> merged;
  /// Every distinct retrieved document, best score first (recall basis —
  /// "the results that the P2P search system found").
  std::vector<ScoredDoc> all_distinct;
  /// Selected peers that did not answer (down / unreachable).
  size_t failed_peers = 0;
};

class QueryProcessor {
 public:
  /// `initiator` must outlive the processor.
  explicit QueryProcessor(Peer* initiator,
                          MergeStrategy merge = MergeStrategy::kRawScores)
      : initiator_(initiator), merge_(merge) {}

  /// Runs the query at the initiator and at every routed peer. Peer
  /// failures are tolerated (counted, not fatal).
  Result<QueryExecution> Execute(const Query& query,
                                 const RoutingDecision& decision) const;

  /// Callan's merge weight for a collection score C_i given the mean
  /// collection score of the selected peers (exposed for tests).
  static double CoriMergeWeight(double collection_score, double mean_score);

 private:
  Peer* initiator_;
  MergeStrategy merge_;
};

}  // namespace iqn

#endif  // IQN_MINERVA_QUERY_PROCESSOR_H_

// Routing explainability: reconstructs WHY IQN picked each peer from a
// query's trace (paper Sec. 5's quality x novelty argument, made
// visible per iteration).
//
// The IQN router records, in every "iqn.iteration" span, one "cand"
// attribute per eligible candidate (peer, quality, novelty, combined
// score — %.17g, so parsing recovers the exact doubles) plus the winner
// and the covered-cardinality advance. ExplainFromTrace parses those
// spans back into a structured report; RenderExplanation turns it into
// the per-iteration ranking tables the paper's worked examples show —
// e.g. a peer whose content the reference already covers has its
// novelty collapse toward zero in later iterations.

#ifndef IQN_MINERVA_EXPLAIN_H_
#define IQN_MINERVA_EXPLAIN_H_

#include <string>
#include <vector>

#include "minerva/engine.h"
#include "util/status.h"
#include "util/trace.h"

namespace iqn {

/// One candidate's row in one iteration's Select-Best-Peer ranking.
struct ExplainCandidateRow {
  uint64_t peer_id = 0;
  double quality = 0.0;
  double novelty = 0.0;
  double combined = 0.0;
  bool selected = false;
};

/// One IQN iteration: the full ranking plus the winner and the
/// reference-cardinality advance its absorption produced.
struct ExplainIteration {
  uint64_t index = 0;
  bool has_winner = false;
  uint64_t winner_peer = 0;
  double winner_quality = 0.0;
  double winner_novelty = 0.0;
  double winner_combined = 0.0;
  double covered_before = 0.0;
  double covered_after = 0.0;
  /// Ranked by combined score (desc), peer id tie-break — the argmax
  /// order Select-Best-Peer used.
  std::vector<ExplainCandidateRow> ranking;
};

struct QueryExplanation {
  /// Router self-description ("IQN(per-peer)" ...), when recorded.
  std::string router;
  std::vector<ExplainIteration> iterations;
};

/// Parses the ROUTING-phase iterations out of a query trace (re-entry
/// routing during execution repair is excluded: it explains a repair,
/// not the decision). Fails if the trace holds no "iqn.route" span.
Result<QueryExplanation> ExplainFromTrace(const QueryTrace& trace);

/// Fixed-width per-iteration ranking tables, one block per iteration,
/// winner marked with '*'.
std::string RenderExplanation(const QueryExplanation& explanation);

/// Convenience: ExplainFromTrace + RenderExplanation on an outcome's
/// attached trace. Fails unless the query ran with
/// EngineOptions::collect_traces.
Result<std::string> ExplainQuery(const QueryOutcome& outcome);

}  // namespace iqn

#endif  // IQN_MINERVA_EXPLAIN_H_

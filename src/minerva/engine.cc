#include "minerva/engine.h"

#include <limits>

namespace iqn {

Result<std::unique_ptr<MinervaEngine>> MinervaEngine::Create(
    EngineOptions options, std::vector<Corpus> collections) {
  if (collections.empty()) {
    return Status::InvalidArgument("engine needs at least one collection");
  }
  auto engine = std::unique_ptr<MinervaEngine>(new MinervaEngine(options));
  engine->network_ = std::make_unique<SimulatedNetwork>(options.latency);

  IQN_ASSIGN_OR_RETURN(
      engine->ring_,
      ChordRing::Build(engine->network_.get(), collections.size()));

  // The centralized reference collection is the union of all peers'
  // collections (recall is measured relative to it).
  Corpus reference;
  for (const Corpus& c : collections) reference.Merge(c);
  engine->reference_index_ = InvertedIndex::Build(reference, options.scoring);

  for (size_t i = 0; i < collections.size(); ++i) {
    ChordNode* node = &engine->ring_->node(i);
    IQN_ASSIGN_OR_RETURN(
        std::unique_ptr<DhtStore> store,
        DhtStore::Attach(node, options.directory_replication));
    engine->stores_.push_back(std::move(store));
    IQN_ASSIGN_OR_RETURN(
        std::unique_ptr<Peer> peer,
        Peer::Create(i, node, engine->stores_.back().get(), options.synopsis,
                     options.scoring));
    IQN_RETURN_IF_ERROR(peer->SetCollection(std::move(collections[i])));
    engine->peers_.push_back(std::move(peer));
  }
  return engine;
}

Status MinervaEngine::PublishAll() {
  for (auto& peer : peers_) {
    IQN_RETURN_IF_ERROR(options_.batch_posting ? peer->PublishPostsBatched()
                                               : peer->PublishPosts());
  }
  return Status::OK();
}

void MinervaEngine::RebuildReferenceIndex() {
  Corpus reference;
  for (const auto& peer : peers_) reference.Merge(peer->collection());
  reference_index_ = InvertedIndex::Build(reference, options_.scoring);
}

std::vector<ScoredDoc> MinervaEngine::ReferenceResults(
    const Query& query) const {
  return ExecuteQuery(reference_index_, query);
}

Result<QueryOutcome> MinervaEngine::RunQuery(size_t initiator_index,
                                             const Query& query,
                                             const Router& router,
                                             size_t max_peers) {
  if (initiator_index >= peers_.size()) {
    return Status::InvalidArgument("initiator index out of range");
  }
  Peer& initiator = *peers_[initiator_index];
  QueryOutcome outcome;

  const NetworkStats before_routing = network_->stats();

  // Routing phase: local execution (free), directory lookups (metered),
  // then the routing decision itself (pure computation on fetched data).
  std::vector<ScoredDoc> local = initiator.ExecuteLocal(query);
  std::vector<DocId> local_docs;
  local_docs.reserve(local.size());
  for (const ScoredDoc& sd : local) local_docs.push_back(sd.doc);

  std::vector<CandidatePeer> candidates;
  if (options_.distributed_topk_candidates > 0) {
    IQN_ASSIGN_OR_RETURN(candidates,
                         initiator.FetchCandidatesTopK(
                             query, options_.distributed_topk_candidates));
  } else {
    IQN_ASSIGN_OR_RETURN(
        candidates,
        initiator.FetchCandidates(query, options_.peerlist_limit));
  }

  RoutingInput input;
  input.query = &query;
  input.candidates = &candidates;
  input.max_peers = max_peers;
  input.total_peers = peers_.size();
  input.local_result_docs = &local_docs;
  input.synopsis_config = &options_.synopsis;
  Peer::QueryReference seed;  // must outlive Route()
  if (options_.seed_reference_from_synopses) {
    IQN_ASSIGN_OR_RETURN(seed, initiator.BuildQueryReference(query));
    input.seed_synopsis = seed.synopsis.get();
    input.seed_cardinality = seed.cardinality;
  }
  IQN_ASSIGN_OR_RETURN(outcome.decision, router.Route(input));

  const NetworkStats after_routing = network_->stats();
  outcome.routing_messages = after_routing.messages - before_routing.messages;
  outcome.routing_bytes = after_routing.bytes - before_routing.bytes;
  outcome.routing_latency_ms =
      after_routing.latency_ms - before_routing.latency_ms;

  // Execution phase: forward to the selected peers and merge.
  QueryProcessor processor(&initiator, options_.merge);
  IQN_ASSIGN_OR_RETURN(outcome.execution,
                       processor.Execute(query, outcome.decision));

  const NetworkStats after_execution = network_->stats();
  outcome.execution_messages =
      after_execution.messages - after_routing.messages;
  outcome.execution_bytes = after_execution.bytes - after_routing.bytes;
  outcome.execution_latency_ms =
      after_execution.latency_ms - after_routing.latency_ms;

  // Evaluation against the centralized reference.
  std::vector<ScoredDoc> reference = ReferenceResults(query);
  outcome.recall = RelativeRecall(outcome.execution.all_distinct, reference);
  std::vector<ScoredDoc> remote_only = MergeResults(
      outcome.execution.per_peer_results, std::numeric_limits<size_t>::max());
  outcome.recall_remote_only = RelativeRecall(remote_only, reference);
  outcome.duplicate_fraction =
      DuplicateFraction(outcome.execution.per_peer_results);
  outcome.distinct_results = outcome.execution.all_distinct.size();
  return outcome;
}

}  // namespace iqn

// This translation unit implements the legacy surface.
#define IQN_ALLOW_LEGACY_ENGINE_API

#include "minerva/engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "minerva/internal/query_processor.h"
#include "minerva/internal/router.h"
#include "util/hash.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace iqn {

namespace {

// Salt separating query fault contexts from other Hash64 uses.
constexpr uint64_t kQueryContextSeed = 0xC0A7E87;

/// Deterministic per-query fault context: a pure function of the query
/// content and its initiator, so the fault schedule a query experiences
/// is independent of which thread runs it and of what ran before it.
uint64_t QueryFaultContext(size_t initiator_index, const Query& query) {
  uint64_t h = Mix64(kQueryContextSeed ^ initiator_index);
  h = Mix64(h ^ query.k);
  h = Mix64(h ^ static_cast<uint64_t>(query.mode));
  for (const std::string& term : query.terms) {
    h = Mix64(h ^ HashString(term));
  }
  return h;
}

/// Order-independent per-query registry observations (all counters and
/// histograms accumulate in integers), recorded once per query whether
/// it ran serially or on a batch worker. Lookups go through the
/// registry map each time — a handful of map probes per query is noise
/// next to the query itself.
void RecordQueryMetrics(const QueryOutcome& outcome,
                        const NetworkStats& delta) {
  MetricsRegistry& registry = MetricsRegistry::Default();
  registry.GetCounter("query.count")->Increment();
  if (outcome.degradation.partial) {
    registry.GetCounter("query.partial")->Increment();
  }
  registry.GetCounter("query.peers_failed")
      ->Increment(outcome.degradation.peers_failed);
  registry.GetCounter("query.peers_replaced")
      ->Increment(outcome.degradation.peers_replaced);
  registry
      .GetHistogram("query.recall", {0.1, 0.25, 0.5, 0.75, 0.9, 0.99})
      ->Observe(outcome.recall);
  registry
      .GetHistogram("query.sim_latency_ms",
                    {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000})
      ->Observe(delta.latency_ms);
  registry
      .GetHistogram("query.messages",
                    {10, 20, 50, 100, 200, 500, 1000, 2000, 5000})
      ->Observe(static_cast<double>(delta.messages));
  registry.GetHistogram("query.rpc_retries", {0, 1, 2, 3, 5, 8, 13})
      ->Observe(static_cast<double>(delta.rpc_retries));
  if (outcome.degradation.brownout_peers_shed > 0) {
    registry.GetCounter("query.brownouts")->Increment();
  }
  registry.GetCounter("query.circuit_skips")
      ->Increment(outcome.degradation.open_circuit_skips);
  // Per-fault-class histograms over the query's own fault exposure: the
  // chaos bench's "which class hurt how many queries how much" view.
  for (const auto& [klass, count] : delta.faults_by_class) {
    registry
        .GetHistogram("fault.per_query." + klass, {0, 1, 2, 3, 5, 8, 13, 21})
        ->Observe(static_cast<double>(count));
  }
}

}  // namespace

Result<std::unique_ptr<MinervaEngine>> MinervaEngine::Create(
    EngineOptions options, std::vector<Corpus> collections) {
  if (collections.empty()) {
    return Status::InvalidArgument("engine needs at least one collection");
  }
  // A multi-rank tcp transport restricts the feature set: nested
  // replica-write RPCs issued from a remote handler would be charged at
  // the serving rank (breaking per-query metering identity with the
  // simulator) and could cycle two blocked event loops; the reputation
  // book and health tracker keep engine-global mutable state that each
  // rank would evolve from only its own queries, silently diverging.
  if (options.transport.kind == TransportKind::kTcp &&
      options.transport.endpoints.size() > 1) {
    if (options.directory_replication > 1) {
      return Status::InvalidArgument(
          "multi-rank tcp transport requires directory_replication == 1");
    }
    if (options.reputation.enabled) {
      return Status::InvalidArgument(
          "multi-rank tcp transport does not support reputation (per-rank "
          "books would diverge)");
    }
    if (options.health.enabled) {
      return Status::InvalidArgument(
          "multi-rank tcp transport does not support health tracking "
          "(per-rank trackers would diverge)");
    }
  }
  auto engine = std::unique_ptr<MinervaEngine>(new MinervaEngine(options));
  IQN_ASSIGN_OR_RETURN(
      engine->network_,
      CreateTransport(options.transport, options.latency));
  engine->versions_ = std::make_unique<KvVersionMap>();

  IQN_ASSIGN_OR_RETURN(
      engine->ring_,
      ChordRing::Build(engine->network_.get(), collections.size()));

  // The centralized reference collection is the union of all peers'
  // collections (recall is measured relative to it).
  Corpus reference;
  for (const Corpus& c : collections) reference.Merge(c);
  engine->reference_index_ = InvertedIndex::Build(reference, options.scoring);

  for (size_t i = 0; i < collections.size(); ++i) {
    ChordNode* node = &engine->ring_->node(i);
    IQN_ASSIGN_OR_RETURN(
        std::unique_ptr<DhtStore> store,
        DhtStore::Attach(node, options.directory_replication));
    store->set_version_map(engine->versions_.get());
    engine->stores_.push_back(std::move(store));
    IQN_ASSIGN_OR_RETURN(
        std::unique_ptr<Peer> peer,
        Peer::Create(i, node, engine->stores_.back().get(), options.synopsis,
                     options.scoring));
    IQN_RETURN_IF_ERROR(peer->SetCollection(std::move(collections[i])));
    engine->peers_.push_back(std::move(peer));
    if (options.cache.enabled) {
      engine->caches_.push_back(std::make_unique<DirectoryCache>(
          options.cache, engine->versions_.get()));
    }
  }
  // Turn the seeded exact fraction of peers adversarial BEFORE any
  // publish, so their very first posts already misreport.
  engine->adversary_indices_ =
      SelectAdversaries(options.adversary, engine->peers_.size());
  for (size_t idx : engine->adversary_indices_) {
    engine->peers_[idx]->SetBehavior(options.adversary.behavior,
                                     options.adversary.inflate_factor,
                                     options.adversary.seed);
  }
  if (options.reputation.enabled) {
    if (options.reputation.prior <= 0.0) {
      return Status::InvalidArgument("reputation.prior must be > 0");
    }
    if (options.reputation.floor < 0.0 || options.reputation.floor > 1.0) {
      return Status::InvalidArgument("reputation.floor must be in [0, 1]");
    }
    if (options.reputation.sharpness <= 0.0) {
      return Status::InvalidArgument("reputation.sharpness must be > 0");
    }
    engine->reputation_ =
        std::make_unique<ReputationBook>(options.reputation);
  }
  if (options.health.enabled) {
    if (options.health.error_alpha <= 0.0 || options.health.error_alpha > 1.0 ||
        options.health.latency_alpha <= 0.0 ||
        options.health.latency_alpha > 1.0) {
      return Status::InvalidArgument("health EWMA alphas must be in (0, 1]");
    }
    if (options.health.error_threshold <= 0.0 ||
        options.health.error_threshold > 1.0) {
      return Status::InvalidArgument(
          "health.error_threshold must be in (0, 1]");
    }
    if (options.health.cooldown_ms <= 0.0) {
      return Status::InvalidArgument("health.cooldown_ms must be > 0");
    }
    engine->health_ = std::make_unique<HealthTracker>(options.health);
  }
  if (options.health.brownout_threshold < 0.0 ||
      options.health.brownout_threshold > 1.0) {
    return Status::InvalidArgument(
        "health.brownout_threshold must be in [0, 1]");
  }
  return engine;
}

Status MinervaEngine::PublishAll() {
  for (size_t i = 0; i < peers_.size(); ++i) {
    // Remotely-owned peers are published by their own rank; publishing
    // them here too would double-post every directory entry.
    if (!network_->IsLocal(peers_[i]->node()->address())) continue;
    IQN_RETURN_IF_ERROR(PublishPeer(i));
  }
  return Status::OK();
}

Status MinervaEngine::PublishPeer(size_t peer_index) {
  if (peer_index >= peers_.size()) {
    return Status::InvalidArgument("peer index out of range");
  }
  Peer& peer = *peers_[peer_index];
  return options_.batch_posting ? peer.PublishPostsBatched()
                                : peer.PublishPosts();
}

void MinervaEngine::RebuildReferenceIndex() {
  Corpus reference;
  for (const auto& peer : peers_) reference.Merge(peer->collection());
  reference_index_ = InvertedIndex::Build(reference, options_.scoring);
}

std::vector<ScoredDoc> MinervaEngine::ReferenceResults(
    const Query& query) const {
  return ExecuteQuery(reference_index_, query);
}

MinervaEngine::~MinervaEngine() {
  if (pool_ != nullptr) pool_->Shutdown();
}

Status MinervaEngine::SetNumThreads(size_t num_threads) {
  if (num_threads <= 1) {
    if (pool_ != nullptr) {
      pool_->Shutdown();
      pool_.reset();
    }
    return Status::OK();
  }
  if (pool_ != nullptr && pool_->num_threads() == num_threads) {
    return Status::OK();
  }
  if (pool_ != nullptr) pool_->Shutdown();
  pool_.reset();
  IQN_ASSIGN_OR_RETURN(pool_, ThreadPool::Create(num_threads));
  return Status::OK();
}

void MinervaEngine::AdvanceCacheTime(double delta_ms) {
  for (auto& cache : caches_) cache->AdvanceTime(delta_ms);
}

Result<QueryOutcome> MinervaEngine::RunQuery(size_t initiator_index,
                                             const Query& query,
                                             const Router& router,
                                             size_t max_peers) {
  NetworkStats delta;
  DirectoryCache* cache = initiator_index < caches_.size()
                              ? caches_[initiator_index].get()
                              : nullptr;
  std::optional<DirectoryCache::Session> session;
  if (cache != nullptr) session.emplace(cache);
  IQN_ASSIGN_OR_RETURN(
      QueryOutcome outcome,
      RunQueryMetered(initiator_index, query, router, max_peers, &delta,
                      session.has_value() ? &*session : nullptr));
  network_->MergeStats(delta);
  // Serial queries commit their cache fills immediately: the next query
  // sees them (a batch, by contrast, commits only after it joins). The
  // reputation book commits at the same point, under the same contract.
  if (session.has_value()) cache->Commit(&*session);
  if (reputation_ != nullptr) {
    for (const PeerCalibration& cal : outcome.calibrations) {
      reputation_->Observe(cal.peer_id, cal.claimed, cal.delivered);
    }
  }
  // Health evidence commits under the same contract, stamped with the
  // pre-advance clock the query itself routed against; then the clock
  // moves by the simulated time the query cost (circuit cooldowns and
  // partition windows progress between queries, never within one).
  if (health_ != nullptr) {
    const double now_ms = network_->now_ms();
    for (const HealthObservation& obs : outcome.health_observations) {
      health_->Observe(obs.dst, obs.ok, obs.latency_ms, now_ms);
    }
  }
  network_->AdvanceSimTime(delta.latency_ms);
  return outcome;
}

Result<QueryOutcome> MinervaEngine::RunQueryMetered(
    size_t initiator_index, const Query& query, const Router& router,
    size_t max_peers, NetworkStats* delta,
    DirectoryCache::Session* cache_session) {
  if (initiator_index >= peers_.size()) {
    return Status::InvalidArgument("initiator index out of range");
  }
  Peer& initiator = *peers_[initiator_index];
  QueryOutcome outcome;

  // All traffic this thread generates below — including nested directory
  // and forwarding RPCs — lands in `delta`, so per-phase metering is just
  // snapshots of the (initially zero) delta.
  Transport::StatsCapture capture(network_.get(), delta);
  // Every RPC this query issues runs under the engine's retry policy and
  // the per-query deadline budget, keyed by a deterministic fault
  // context (see QueryFaultContext).
  RpcScope rpc_scope(options_.retry, options_.query_deadline_ms,
                     QueryFaultContext(initiator_index, query));
  rpc_scope.set_hedge(options_.hedge);
  if (health_ != nullptr) {
    // The tracker and the clock are frozen for the whole batch (writes
    // happen only at commit points), so every query of a batch sees the
    // same circuit states regardless of scheduling.
    rpc_scope.set_health(health_.get(), network_->now_ms());
    rpc_scope.set_observations(&outcome.health_observations);
  }
  // The trace clock is the query's own metered simulated latency, so
  // span timestamps are a pure function of the query and the seed —
  // identical at any thread count. Spans below are all opened on this
  // thread (never inside a ParallelFor body; see util/trace.h).
  std::shared_ptr<QueryTrace> trace;
  std::optional<TraceScope> trace_scope;
  if (options_.collect_traces) {
    NetworkStats* clock_source = delta;
    trace = std::make_shared<QueryTrace>(
        [clock_source] { return clock_source->latency_ms; });
    trace_scope.emplace(trace.get());
  }
  ScopedSpan query_span("query");
  if (query_span.active()) {
    query_span.Attr("query", query.ToString());
    query_span.AttrUint("initiator", initiator_index);
  }

  // Routing phase: local execution (free), directory lookups (metered),
  // then the routing decision itself (pure computation on fetched data).
  std::vector<ScoredDoc> local;
  {
    ScopedSpan span("local_execution");
    local = initiator.ExecuteLocal(query);
    span.AttrUint("results", local.size());
  }
  std::vector<DocId> local_docs;
  local_docs.reserve(local.size());
  for (const ScoredDoc& sd : local) local_docs.push_back(sd.doc);

  // Term fetch failures are tolerated (the candidate set is assembled
  // from the terms that answered) and accounted as degradation.
  std::vector<CandidatePeer> candidates;
  {
    ScopedSpan span("fetch_candidates");
    if (options_.distributed_topk_candidates > 0) {
      IQN_ASSIGN_OR_RETURN(
          candidates,
          initiator.FetchCandidatesTopK(
              query, options_.distributed_topk_candidates,
              &outcome.degradation.term_fetches_failed));
    } else {
      IQN_ASSIGN_OR_RETURN(
          candidates,
          initiator.FetchCandidates(query, options_.peerlist_limit,
                                    &outcome.degradation.term_fetches_failed,
                                    cache_session));
    }
    span.AttrUint("candidates", candidates.size());
    span.AttrUint("term_fetches_failed",
                  outcome.degradation.term_fetches_failed);
    if (cache_session != nullptr) {
      span.AttrUint("cache_hits", cache_session->hits());
      span.AttrUint("cache_misses", cache_session->misses());
    }
  }

  // Brownout: when directory lookups already burned most of the
  // deadline budget, shed fan-out instead of missing the deadline.
  // Below the threshold fraction, max_peers scales down linearly with
  // the remaining budget (never under 1 — the best peer is always
  // worth asking). Every input is simulated time, so the decision is
  // deterministic.
  size_t effective_max_peers = max_peers;
  if (options_.health.brownout_threshold > 0.0 &&
      options_.query_deadline_ms > 0.0 && max_peers > 1) {
    const double remaining_fraction =
        std::max(0.0, rpc_scope.deadline().remaining_ms()) /
        options_.query_deadline_ms;
    if (remaining_fraction < options_.health.brownout_threshold) {
      effective_max_peers = std::max<size_t>(
          1, static_cast<size_t>(std::floor(
                 static_cast<double>(max_peers) * remaining_fraction /
                 options_.health.brownout_threshold)));
      outcome.degradation.brownout_peers_shed =
          max_peers - effective_max_peers;
    }
  }

  RoutingInput input;
  input.query = &query;
  input.candidates = &candidates;
  input.max_peers = effective_max_peers;
  input.total_peers = peers_.size();
  input.local_result_docs = &local_docs;
  input.synopsis_config = &options_.synopsis;
  // Select-Best-Peer reads the book as committed BEFORE this query's
  // batch (or serial call); the engine applies this query's own
  // observations only at the commit point afterwards.
  input.reputation = reputation_.get();
  // Same read-only contract for the circuit breakers: open circuits
  // are skipped at selection time (load-shed-aware routing).
  input.health = health_.get();
  input.now_ms = network_->now_ms();
  // Routers may parallelize candidate scoring over the engine pool. When
  // this query itself runs on a pool worker (RunQueryBatch), the nested
  // ParallelFor falls back to serial automatically.
  input.pool = pool_.get();
  Peer::QueryReference seed;  // must outlive Route()
  if (options_.seed_reference_from_synopses) {
    IQN_ASSIGN_OR_RETURN(seed, initiator.BuildQueryReference(query));
    input.seed_synopsis = seed.synopsis.get();
    input.seed_cardinality = seed.cardinality;
  }
  {
    ScopedSpan span("route");
    span.Attr("router", router.name());
    if (span.active() && outcome.degradation.brownout_peers_shed > 0) {
      span.AttrUint("brownout_peers_shed",
                    outcome.degradation.brownout_peers_shed);
    }
    IQN_ASSIGN_OR_RETURN(outcome.decision, router.Route(input));
    span.AttrUint("selected", outcome.decision.peers.size());
    span.AttrDouble("estimated_cardinality",
                    outcome.decision.estimated_result_cardinality);
  }
  outcome.degradation.candidates_degraded =
      outcome.decision.candidates_degraded;
  outcome.degradation.open_circuit_skips =
      outcome.decision.open_circuit_skips;
  if (outcome.degradation.term_fetches_failed > 0) {
    outcome.degradation.partial = true;
  }

  outcome.routing_messages = delta->messages;
  outcome.routing_bytes = delta->bytes;
  outcome.routing_latency_ms = delta->latency_ms;

  // Execution phase: forward to the selected peers and merge. When a
  // selected peer fails mid-execution, Select-Best-Peer re-enters over
  // the candidates not yet tried and picks the next-best replacement
  // under whatever deadline budget remains.
  QueryProcessor::PeerReplacer replacer =
      [&](const std::vector<uint64_t>& known) -> std::optional<SelectedPeer> {
    std::vector<CandidatePeer> remaining;
    for (const CandidatePeer& cand : candidates) {
      if (std::find(known.begin(), known.end(), cand.peer_id) == known.end()) {
        remaining.push_back(cand);
      }
    }
    if (remaining.empty()) return std::nullopt;
    RoutingInput reentry = input;
    reentry.candidates = &remaining;
    reentry.max_peers = 1;
    Result<RoutingDecision> repaired = router.Route(reentry);
    if (!repaired.ok() || repaired.value().peers.empty()) return std::nullopt;
    return repaired.value().peers.front();
  };
  QueryProcessor processor(&initiator, options_.merge);
  {
    ScopedSpan span("execute");
    IQN_ASSIGN_OR_RETURN(outcome.execution,
                         processor.ExecuteWithReplacement(
                             query, outcome.decision, replacer,
                             &outcome.degradation));
    span.AttrUint("peers_failed", outcome.execution.failed_peers);
    span.AttrUint("peers_replaced", outcome.degradation.peers_replaced);
  }

  outcome.execution_messages = delta->messages - outcome.routing_messages;
  outcome.execution_bytes = delta->bytes - outcome.routing_bytes;
  outcome.execution_latency_ms =
      delta->latency_ms - outcome.routing_latency_ms;

  // Evaluation against the centralized reference.
  {
    ScopedSpan span("evaluate");
    std::vector<ScoredDoc> reference = ReferenceResults(query);
    outcome.recall = RelativeRecall(outcome.execution.all_distinct, reference);
    std::vector<ScoredDoc> remote_only =
        MergeResults(outcome.execution.per_peer_results,
                     std::numeric_limits<size_t>::max());
    outcome.recall_remote_only = RelativeRecall(remote_only, reference);
    outcome.duplicate_fraction =
        DuplicateFraction(outcome.execution.per_peer_results);
    outcome.distinct_results = outcome.execution.all_distinct.size();
    span.AttrDouble("recall", outcome.recall);
    span.AttrUint("distinct_results", outcome.distinct_results);
  }
  // Claim-vs-observed calibration (minerva/reputation.h): each answering
  // peer's selection-time novelty claim, capped at k (a top-k answer can
  // never deliver more), against the genuinely new documents its answer
  // contributed — counted in attempt order, after the local result, so
  // "new" means new to this query's accumulating result set. Peers that
  // did not answer are not judged: a missing answer is the fault layer's
  // business and carries no claim-vs-delivery evidence.
  {
    std::set<DocId> seen;
    for (const ScoredDoc& sd : outcome.execution.local_results) {
      seen.insert(sd.doc);
    }
    const double cap = static_cast<double>(query.k);
    const auto& attempted = outcome.execution.attempted;
    for (size_t i = 0;
         i < attempted.size() && i < outcome.execution.per_peer_results.size();
         ++i) {
      const std::vector<ScoredDoc>& delivered =
          outcome.execution.per_peer_results[i];
      if (delivered.empty()) continue;
      double fresh = 0.0;
      for (const ScoredDoc& sd : delivered) {
        if (seen.insert(sd.doc).second) fresh += 1.0;
      }
      PeerCalibration cal;
      cal.peer_id = attempted[i].peer_id;
      cal.claimed = std::min(attempted[i].novelty, cap);
      cal.delivered = fresh;
      outcome.calibrations.push_back(cal);
    }
  }
  // Retry and fault totals for this query fall out of its metered delta.
  outcome.degradation.rpc_retries = delta->rpc_retries;
  outcome.degradation.faults_survived = delta->faults_injected;
  outcome.degradation.circuit_blocked_rpcs = delta->circuit_blocked;
  if (query_span.active()) {
    query_span.AttrUint("rpc_retries", delta->rpc_retries);
    query_span.AttrUint("faults_survived", delta->faults_injected);
    if (outcome.degradation.partial) query_span.Attr("degraded", "partial");
  }
  query_span.End();
  trace_scope.reset();
  outcome.trace = std::move(trace);
  RecordQueryMetrics(outcome, *delta);
  return outcome;
}

Result<std::vector<QueryOutcome>> MinervaEngine::RunQueryBatch(
    const std::vector<BatchQuery>& batch, const Router& router,
    size_t max_peers, size_t num_threads) {
  IQN_RETURN_IF_ERROR(SetNumThreads(num_threads));
  const size_t n = batch.size();
  std::vector<QueryOutcome> outcomes(n);
  std::vector<NetworkStats> deltas(n);
  std::vector<Status> statuses(n);
  // One cache session per item (items sharing an initiator get separate
  // sessions): every session reads the same pre-batch committed state,
  // so hit patterns cannot depend on worker scheduling.
  std::vector<std::unique_ptr<DirectoryCache::Session>> sessions(n);
  if (!caches_.empty()) {
    for (size_t i = 0; i < n; ++i) {
      if (batch[i].initiator_index < caches_.size()) {
        sessions[i] = std::make_unique<DirectoryCache::Session>(
            caches_[batch[i].initiator_index].get());
      }
    }
  }

  // Slot i is owned by whichever chunk covers index i; chunks never fail
  // at the ParallelFor level (per-item errors are kept in statuses so
  // every item runs and error selection stays deterministic).
  auto run_range = [&](size_t lo, size_t hi) -> Status {
    for (size_t i = lo; i < hi; ++i) {
      Result<QueryOutcome> r =
          RunQueryMetered(batch[i].initiator_index, batch[i].query, router,
                          max_peers, &deltas[i], sessions[i].get());
      if (r.ok()) {
        outcomes[i] = std::move(r).value();
      } else {
        statuses[i] = r.status();
      }
    }
    return Status::OK();
  };
  if (pool_ != nullptr) {
    IQN_RETURN_IF_ERROR(pool_->ParallelFor(0, n, /*grain=*/1, run_range));
  } else {
    IQN_RETURN_IF_ERROR(run_range(0, n));
  }

  // Everything is joined; fail with the first (lowest-index) error so the
  // reported Status does not depend on scheduling.
  for (const Status& st : statuses) {
    IQN_RETURN_IF_ERROR(st);
  }
  // Fold per-query traffic into the global stats in batch order, keeping
  // totals identical to the serial execution of the same queries. Cache
  // sessions commit in the same deterministic order (and, like traffic,
  // only on batch success).
  for (const NetworkStats& delta : deltas) {
    network_->MergeStats(delta);
  }
  for (size_t i = 0; i < n; ++i) {
    if (sessions[i] != nullptr) {
      caches_[batch[i].initiator_index]->Commit(sessions[i].get());
    }
  }
  // Reputation observations land last, also in batch order: every query
  // of this batch routed against the pre-batch book, and the next batch
  // sees all of this one's evidence — independent of thread count.
  if (reputation_ != nullptr) {
    for (const QueryOutcome& outcome : outcomes) {
      for (const PeerCalibration& cal : outcome.calibrations) {
        reputation_->Observe(cal.peer_id, cal.claimed, cal.delivered);
      }
    }
  }
  // Health evidence commits in the same batch order, stamped with the
  // clock every query of this batch routed against; then the clock
  // advances by the batch's total simulated cost. Thread-invariant by
  // the same argument as the reputation book.
  double batch_latency_ms = 0.0;
  for (const NetworkStats& delta : deltas) batch_latency_ms += delta.latency_ms;
  if (health_ != nullptr) {
    const double now_ms = network_->now_ms();
    for (const QueryOutcome& outcome : outcomes) {
      for (const HealthObservation& obs : outcome.health_observations) {
        health_->Observe(obs.dst, obs.ok, obs.latency_ms, now_ms);
      }
    }
  }
  network_->AdvanceSimTime(batch_latency_ms);
  return outcomes;
}

}  // namespace iqn

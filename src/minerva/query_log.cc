#include "minerva/query_log.h"

#include "util/json.h"
#include "util/trace.h"

namespace iqn {

std::string QueryLogJsonLine(const Query& query, const QueryOutcome& outcome) {
  std::string out = "{\"terms\": [";
  for (size_t i = 0; i < query.terms.size(); ++i) {
    if (i > 0) out += ", ";
    out += "\"" + JsonEscape(query.terms[i]) + "\"";
  }
  out += "], \"mode\": \"";
  out += query.mode == QueryMode::kConjunctive ? "and" : "or";
  out += "\", \"k\": " + std::to_string(query.k);
  out += ", \"peers\": [";
  for (size_t i = 0; i < outcome.decision.peers.size(); ++i) {
    const SelectedPeer& peer = outcome.decision.peers[i];
    if (i > 0) out += ", ";
    out += "{\"peer\": " + std::to_string(peer.peer_id) +
           ", \"quality\": " + JsonDouble(peer.quality) +
           ", \"novelty\": " + JsonDouble(peer.novelty) +
           ", \"combined\": " + JsonDouble(peer.combined) + "}";
  }
  out += "], \"recall\": " + JsonDouble(outcome.recall);
  out += ", \"recall_remote_only\": " + JsonDouble(outcome.recall_remote_only);
  out += ", \"distinct_results\": " + std::to_string(outcome.distinct_results);
  out += ", \"duplicate_fraction\": " + JsonDouble(outcome.duplicate_fraction);
  out += ", \"routing_messages\": " + std::to_string(outcome.routing_messages);
  out += ", \"routing_bytes\": " + std::to_string(outcome.routing_bytes);
  out +=
      ", \"execution_messages\": " + std::to_string(outcome.execution_messages);
  out += ", \"execution_bytes\": " + std::to_string(outcome.execution_bytes);
  out += ", \"routing_latency_ms\": " + JsonDouble(outcome.routing_latency_ms);
  out += ", \"execution_latency_ms\": " +
         JsonDouble(outcome.execution_latency_ms);
  const DegradationReport& deg = outcome.degradation;
  out += ", \"degradation\": {\"partial\": ";
  out += deg.partial ? "true" : "false";
  out += ", \"peers_failed\": " + std::to_string(deg.peers_failed);
  out += ", \"peers_replaced\": " + std::to_string(deg.peers_replaced);
  out +=
      ", \"term_fetches_failed\": " + std::to_string(deg.term_fetches_failed);
  out +=
      ", \"candidates_degraded\": " + std::to_string(deg.candidates_degraded);
  out += ", \"rpc_retries\": " + std::to_string(deg.rpc_retries);
  out += ", \"faults_survived\": " + std::to_string(deg.faults_survived);
  out += "}}";
  return out;
}

Status WriteQueryLog(const std::string& path,
                     const std::vector<Query>& queries,
                     const std::vector<QueryOutcome>& outcomes) {
  if (queries.size() != outcomes.size()) {
    return Status::InvalidArgument("query log: size mismatch");
  }
  std::string contents;
  for (size_t i = 0; i < queries.size(); ++i) {
    contents += QueryLogJsonLine(queries[i], outcomes[i]);
    contents += "\n";
  }
  return WriteTextFile(path, contents);
}

}  // namespace iqn

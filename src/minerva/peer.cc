#include "minerva/peer.h"

#include <cmath>
#include <map>
#include <set>

#include "synopses/serialization.h"

namespace iqn {

Bytes EncodeQuery(const Query& query) {
  ByteWriter writer;
  writer.PutVarint(query.terms.size());
  for (const auto& term : query.terms) writer.PutString(term);
  writer.PutU8(query.mode == QueryMode::kConjunctive ? 1 : 0);
  writer.PutVarint(query.k);
  return writer.Take();
}

Result<Query> DecodeQuery(const Bytes& bytes) {
  ByteReader reader(bytes);
  Query query;
  uint64_t num_terms;
  IQN_RETURN_IF_ERROR(reader.GetVarint(&num_terms));
  if (num_terms > 256) return Status::Corruption("query with >256 terms");
  query.terms.resize(num_terms);
  for (auto& term : query.terms) IQN_RETURN_IF_ERROR(reader.GetString(&term));
  uint8_t mode;
  IQN_RETURN_IF_ERROR(reader.GetU8(&mode));
  query.mode = mode ? QueryMode::kConjunctive : QueryMode::kDisjunctive;
  uint64_t k;
  IQN_RETURN_IF_ERROR(reader.GetVarint(&k));
  query.k = k;
  return query;
}

Bytes EncodeResults(const std::vector<ScoredDoc>& results) {
  ByteWriter writer;
  writer.PutVarint(results.size());
  for (const ScoredDoc& sd : results) {
    writer.PutU64(sd.doc);
    writer.PutDouble(sd.score);
  }
  return writer.Take();
}

Result<std::vector<ScoredDoc>> DecodeResults(const Bytes& bytes) {
  ByteReader reader(bytes);
  uint64_t n;
  IQN_RETURN_IF_ERROR(reader.GetVarint(&n));
  std::vector<ScoredDoc> results(n);
  for (auto& sd : results) {
    IQN_RETURN_IF_ERROR(reader.GetU64(&sd.doc));
    IQN_RETURN_IF_ERROR(reader.GetDouble(&sd.score));
  }
  return results;
}

Peer::Peer(uint64_t peer_id, ChordNode* node, DhtStore* store,
           SynopsisConfig synopsis_config, ScoringModel scoring)
    : peer_id_(peer_id),
      node_(node),
      directory_(store),
      synopsis_config_(synopsis_config),
      scoring_(scoring),
      mem_postings_(MemStats::Default().GetTracker(kMemPostings)) {}

Peer::~Peer() { mem_postings_->Release(accounted_index_bytes_); }

void Peer::ReaccountIndex() {
  int64_t bytes = index_.ApproxMemoryBytes();
  mem_postings_->Charge(bytes - accounted_index_bytes_);
  accounted_index_bytes_ = bytes;
}

Result<std::unique_ptr<Peer>> Peer::Create(uint64_t peer_id, ChordNode* node,
                                           DhtStore* store,
                                           SynopsisConfig synopsis_config,
                                           ScoringModel scoring) {
  if (node == nullptr || store == nullptr) {
    return Status::InvalidArgument("peer needs a node and a store");
  }
  // Validate the synopsis configuration early.
  IQN_RETURN_IF_ERROR(synopsis_config.MakeEmpty().status());
  auto peer = std::unique_ptr<Peer>(
      new Peer(peer_id, node, store, synopsis_config, scoring));
  Peer* raw = peer.get();
  IQN_RETURN_IF_ERROR(node->RegisterVerb(
      "peer.query", [raw](const Message& m) { return raw->HandleQuery(m); }));
  return peer;
}

Status Peer::SetCollection(Corpus collection) {
  collection_ = std::move(collection);
  index_ = InvertedIndex::Build(collection_, scoring_);
  ReaccountIndex();
  return Status::OK();
}

void Peer::SetBehavior(PeerBehavior behavior, double factor, uint64_t seed) {
  behavior_ = behavior;
  behavior_factor_ = factor < 1.0 ? 1.0 : factor;
  behavior_seed_ = seed;
}

Status Peer::AddDocuments(const Corpus& delta, bool republish) {
  // Collect the terms whose lists will change before merging.
  std::set<std::string> touched;
  for (const auto& doc : delta.docs()) {
    if (collection_.ContainsDoc(doc.id)) continue;  // duplicate crawl
    for (const auto& term : doc.terms) touched.insert(term);
  }
  collection_.Merge(delta);
  index_ = InvertedIndex::Build(collection_, scoring_);
  ReaccountIndex();
  if (!republish || touched.empty()) return Status::OK();

  std::vector<Post> refreshed;
  refreshed.reserve(touched.size());
  for (const std::string& term : touched) {
    IQN_ASSIGN_OR_RETURN(Post post, BuildPost(term));
    refreshed.push_back(std::move(post));
  }
  return directory_.PublishBatch(refreshed);
}

Result<Post> Peer::BuildPost(const std::string& term,
                             size_t bits_override) const {
  const std::vector<Posting>* list = index_.postings(term);
  if (list == nullptr) {
    return Status::NotFound("term not in local index: " + term);
  }

  Post post;
  post.peer_id = peer_id_;
  post.address = node_->address();
  post.term = term;
  post.list_length = list->size();
  post.max_score = index_.MaxScore(term);
  post.avg_score = index_.AvgScore(term);
  post.term_space_size = index_.NumTerms();

  // Adversarial misreporting (minerva/behavior.h): the claimed list
  // length grows by behavior_factor_; kPoisonSynopses additionally backs
  // the inflated claim with fabricated doc ids below, so the post stays
  // self-consistent. The index and query answers remain truthful.
  size_t fabricated = 0;
  if (behavior_ != PeerBehavior::kHonest && behavior_factor_ > 1.0) {
    double inflated =
        std::ceil(static_cast<double>(list->size()) * behavior_factor_);
    size_t claimed = static_cast<size_t>(inflated);
    fabricated = claimed - list->size();
    post.list_length = claimed;
  }

  IQN_ASSIGN_OR_RETURN(std::unique_ptr<SetSynopsis> synopsis,
                       synopsis_config_.MakeEmpty(bits_override));
  for (const Posting& p : *list) synopsis->Add(p.doc);
  if (behavior_ == PeerBehavior::kPoisonSynopses) {
    for (size_t j = 0; j < fabricated; ++j) {
      synopsis->Add(FabricatedDocId(behavior_seed_, peer_id_, term, j));
    }
  }
  if (synopsis_config_.compress_bloom &&
      synopsis->type() == SynopsisType::kBloomFilter) {
    post.synopsis = SerializeBloomFilterCompressed(
        static_cast<const BloomFilter&>(*synopsis));
  } else {
    post.synopsis = SerializeSynopsisToBytes(*synopsis);
  }

  if (synopsis_config_.histogram_cells > 0) {
    IQN_ASSIGN_OR_RETURN(ScoreHistogramSynopsis histogram,
                         synopsis_config_.MakeEmptyHistogram());
    std::vector<double> normalized = index_.NormalizedScoresFor(term);
    for (size_t i = 0; i < list->size(); ++i) {
      histogram.Add((*list)[i].doc, normalized[i]);
    }
    ByteWriter writer;
    SerializeHistogram(histogram, &writer);
    post.histogram = writer.Take();
  }
  return post;
}

Status Peer::PublishPosts() {
  for (const auto& [term, list] : index_.lists()) {
    IQN_ASSIGN_OR_RETURN(Post post, BuildPost(term));
    IQN_RETURN_IF_ERROR(directory_.Publish(post));
  }
  return Status::OK();
}

Status Peer::PublishPostsBatched() {
  std::vector<Post> posts;
  posts.reserve(index_.lists().size());
  for (const auto& [term, list] : index_.lists()) {
    IQN_ASSIGN_OR_RETURN(Post post, BuildPost(term));
    posts.push_back(std::move(post));
  }
  return directory_.PublishBatch(posts);
}

Status Peer::PublishPostsAdaptive(uint64_t total_budget_bits,
                                  const AdaptiveAllocationOptions& options) {
  if (synopsis_config_.type != SynopsisType::kMinWise) {
    return Status::FailedPrecondition(
        "adaptive synopsis lengths require MIPs (the only synopsis type "
        "supporting heterogeneous lengths, paper Sec. 7.2)");
  }
  std::vector<std::string> terms;
  std::vector<TermSynopsisDemand> demands;
  for (const auto& [term, list] : index_.lists()) {
    terms.push_back(term);
    TermSynopsisDemand demand;
    demand.list_length = list.size();
    if (options.policy != BenefitPolicy::kListLength) {
      demand.scores = index_.NormalizedScoresFor(term);
    }
    demands.push_back(std::move(demand));
  }
  if (terms.empty()) return Status::OK();
  IQN_ASSIGN_OR_RETURN(
      std::vector<uint64_t> lengths,
      AllocateSynopsisBudget(demands, total_budget_bits, options));
  for (size_t i = 0; i < terms.size(); ++i) {
    if (lengths[i] == 0) continue;  // dropped term: not worth posting
    IQN_ASSIGN_OR_RETURN(Post post, BuildPost(terms[i], lengths[i]));
    IQN_RETURN_IF_ERROR(directory_.Publish(post));
  }
  return Status::OK();
}

std::vector<ScoredDoc> Peer::ExecuteLocal(const Query& query) const {
  return ExecuteQuery(index_, query);
}

Result<Peer::QueryReference> Peer::BuildQueryReference(
    const Query& query) const {
  QueryReference reference;
  IQN_ASSIGN_OR_RETURN(reference.synopsis, synopsis_config_.MakeEmpty());
  std::set<DocId> distinct;
  for (const std::string& term : query.terms) {
    for (DocId id : index_.DocIdsFor(term)) {
      reference.synopsis->Add(id);
      distinct.insert(id);
    }
  }
  reference.cardinality = static_cast<double>(distinct.size());
  return reference;
}

Result<std::vector<CandidatePeer>> Peer::FetchCandidates(
    const Query& query, size_t peerlist_limit, size_t* failed_terms,
    DirectoryCache::Session* cache) const {
  std::map<uint64_t, CandidatePeer> by_peer;
  for (const std::string& term : query.terms) {
    // The cache stores the RAW PeerList (own posts included) so the same
    // entry serves any initiator's session shape; the self-filter stays
    // at grouping time below.
    const std::vector<Post>* posts =
        cache == nullptr ? nullptr : cache->Lookup(term, peerlist_limit);
    std::vector<Post> fetched;
    if (posts == nullptr) {
      Result<std::vector<Post>> peer_list =
          peerlist_limit == 0
              ? directory_.FetchPeerList(term)
              : directory_.FetchTopPeerList(term, peerlist_limit);
      if (!peer_list.ok()) {
        if (failed_terms == nullptr) return peer_list.status();
        // Tolerant mode: assemble the candidate set from the terms that
        // answered; the caller accounts the loss in its degradation
        // report.
        ++*failed_terms;
        continue;
      }
      fetched = std::move(peer_list).value();
      // Buffer for commit; group from the buffered copy so the grouped
      // posts share its pre-materialized decode memos.
      if (cache != nullptr) posts = cache->Fill(term, peerlist_limit, fetched);
      if (posts == nullptr) posts = &fetched;
    }
    for (const Post& post : *posts) {
      if (post.peer_id == peer_id_) continue;  // own contribution is local
      CandidatePeer& cand = by_peer[post.peer_id];
      cand.peer_id = post.peer_id;
      cand.address = post.address;
      cand.posts.emplace(term, post);  // copies share the decode memo
    }
  }
  std::vector<CandidatePeer> candidates;
  candidates.reserve(by_peer.size());
  for (auto& [id, cand] : by_peer) candidates.push_back(std::move(cand));
  return candidates;
}

Result<std::vector<CandidatePeer>> Peer::FetchCandidatesTopK(
    const Query& query, size_t top_peers, size_t* failed_terms) const {
  // +1 slot because the initiator itself may rank among the winners and
  // is excluded from the candidate set.
  Result<std::vector<uint64_t>> winners_r =
      directory_.TopPeersAcrossTerms(query.terms, top_peers + 1);
  if (!winners_r.ok()) {
    if (failed_terms == nullptr) return winners_r.status();
    // The distributed top-k phase is an optimization; when it fails
    // under faults, fall back to plain full-PeerList fetching rather
    // than failing the query.
    return FetchCandidates(query, /*peerlist_limit=*/0, failed_terms);
  }
  std::vector<uint64_t> others;
  for (uint64_t id : winners_r.value()) {
    if (id != peer_id_ && others.size() < top_peers) others.push_back(id);
  }

  std::map<uint64_t, CandidatePeer> by_peer;
  for (const std::string& term : query.terms) {
    Result<std::vector<Post>> posts =
        directory_.FetchPostsForPeers(term, others);
    if (!posts.ok()) {
      if (failed_terms == nullptr) return posts.status();
      ++*failed_terms;
      continue;
    }
    for (Post& post : posts.value()) {
      CandidatePeer& cand = by_peer[post.peer_id];
      cand.peer_id = post.peer_id;
      cand.address = post.address;
      cand.posts.emplace(term, std::move(post));
    }
  }
  std::vector<CandidatePeer> candidates;
  candidates.reserve(by_peer.size());
  for (auto& [id, cand] : by_peer) candidates.push_back(std::move(cand));
  return candidates;
}

Result<Bytes> Peer::HandleQuery(const Message& msg) const {
  IQN_ASSIGN_OR_RETURN(Query query, DecodeQuery(msg.payload));
  return EncodeResults(ExecuteLocal(query));
}

}  // namespace iqn

// The facade wraps the legacy MinervaEngine surface.
#define IQN_ALLOW_LEGACY_ENGINE_API

#include "minerva/api.h"

#include <utility>

#include "minerva/explain.h"
#include "minerva/internal/iqn_router.h"
#include "minerva/internal/router.h"
#include "util/mem_stats.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace minerva {

namespace {

using iqn::Result;
using iqn::Status;

std::unique_ptr<iqn::Router> MakeRouter(const RoutingSpec& spec) {
  switch (spec.kind) {
    case RouterKind::kIqn:
      return std::make_unique<iqn::IqnRouter>(spec.iqn);
    case RouterKind::kCori:
      return std::make_unique<iqn::CoriRouter>(spec.iqn.cori);
    case RouterKind::kRandom:
      return std::make_unique<iqn::RandomRouter>(spec.random_seed);
    case RouterKind::kSimpleOverlap:
      return std::make_unique<iqn::SimpleOverlapRouter>(spec.iqn.cori);
  }
  return std::make_unique<iqn::IqnRouter>(spec.iqn);
}

}  // namespace

Result<RouterKind> ParseRouterKind(const std::string& name) {
  if (name == "iqn") return RouterKind::kIqn;
  if (name == "cori") return RouterKind::kCori;
  if (name == "random") return RouterKind::kRandom;
  if (name == "overlap") return RouterKind::kSimpleOverlap;
  return Status::InvalidArgument("unknown router '" + name +
                                 "' (iqn|cori|random|overlap)");
}

Result<iqn::SynopsisType> ParseSynopsisType(const std::string& name) {
  if (name == "minwise") return iqn::SynopsisType::kMinWise;
  if (name == "bloom") return iqn::SynopsisType::kBloomFilter;
  if (name == "hashsketch") return iqn::SynopsisType::kHashSketch;
  if (name == "loglog") return iqn::SynopsisType::kLogLog;
  return Status::InvalidArgument("unknown synopsis '" + name +
                                 "' (minwise|bloom|hashsketch|loglog)");
}

Result<iqn::AggregationStrategy> ParseAggregation(const std::string& name) {
  if (name == "per_peer") return iqn::AggregationStrategy::kPerPeer;
  if (name == "per_term") return iqn::AggregationStrategy::kPerTerm;
  return Status::InvalidArgument("unknown aggregation '" + name +
                                 "' (per_peer|per_term)");
}

Result<iqn::MergeStrategy> ParseMerge(const std::string& name) {
  if (name == "raw") return iqn::MergeStrategy::kRawScores;
  if (name == "cori") return iqn::MergeStrategy::kCoriNormalized;
  return Status::InvalidArgument("unknown merge '" + name + "' (raw|cori)");
}

const char* SynopsisSpelling(iqn::SynopsisType type) {
  switch (type) {
    case iqn::SynopsisType::kMinWise:
      return "minwise";
    case iqn::SynopsisType::kBloomFilter:
      return "bloom";
    case iqn::SynopsisType::kHashSketch:
      return "hashsketch";
    case iqn::SynopsisType::kLogLog:
      return "loglog";
  }
  return "unknown";
}

const char* AggregationSpelling(iqn::AggregationStrategy strategy) {
  switch (strategy) {
    case iqn::AggregationStrategy::kPerPeer:
      return "per_peer";
    case iqn::AggregationStrategy::kPerTerm:
      return "per_term";
  }
  return "unknown";
}

const char* MergeSpelling(iqn::MergeStrategy strategy) {
  switch (strategy) {
    case iqn::MergeStrategy::kRawScores:
      return "raw";
    case iqn::MergeStrategy::kCoriNormalized:
      return "cori";
  }
  return "unknown";
}

const char* RouterKindName(RouterKind kind) {
  switch (kind) {
    case RouterKind::kIqn:
      return "iqn";
    case RouterKind::kCori:
      return "cori";
    case RouterKind::kRandom:
      return "random";
    case RouterKind::kSimpleOverlap:
      return "overlap";
  }
  return "unknown";
}

void EngineOptions::RegisterFlags(iqn::Flags* flags) {
  flags->DefineInt("threads", 1, "worker threads (<=1 serial)");
  flags->DefineInt("max_peers", 5, "remote peers contacted per query");
  flags->DefineString("router", "iqn",
                      "routing method: iqn|cori|random|overlap");
  flags->DefineString("aggregation", "per_peer",
                      "IQN multi-term aggregation: per_peer|per_term");
  flags->DefineBool("histograms", false,
                    "IQN score-conscious novelty via histogram synopses");
  flags->DefineBool("novelty_only", false,
                    "rank by novelty alone (no CORI quality factor)");
  flags->DefineBool("correlation_aware", false,
                    "correlation-aware per-term aggregation");
  flags->DefineInt("router_seed", 1, "seed of the random router");
  flags->DefineString("synopsis", "minwise",
                      "synopsis type: minwise|bloom|hashsketch|loglog");
  flags->DefineInt("synopsis_bits", 2048, "per-term synopsis budget in bits");
  flags->DefineInt("histogram_cells", 0,
                   "score-histogram cells per post (0 = no histograms)");
  flags->DefineInt("replication", 1,
                   "copies of each directory entry (owner + replicas)");
  flags->DefineBool("batch_posting", false,
                    "batch directory posts by directory node");
  flags->DefineInt("peerlist_limit", 0,
                   "top-so-many posts fetched per term (0 = full PeerLists)");
  flags->DefineInt("topk_candidates", 0,
                   "distributed top-k candidate count (0 = off)");
  flags->DefineString("merge", "raw", "result merging: raw|cori");
  flags->DefineBool("seed_from_synopses", false,
                    "seed the IQN reference from the initiator's synopses");
  flags->DefineInt("retries", 1, "RPC attempts per call (1 = no retry)");
  flags->DefineDouble("deadline-ms", 0.0,
                      "per-query simulated deadline (0 = unlimited)");
  flags->DefineInt("fault-seed", 0, "FaultPlan seed (fault schedule)");
  flags->DefineDouble("fault-drop", 0.0,
                      "request+response drop rate per message");
  flags->DefineDouble("fault-corrupt", 0.0, "response corruption rate");
  flags->DefineDouble("fault-timeout", 0.0, "simulated timeout rate");
  flags->DefineDouble("adversary-fraction", 0.0,
                      "fraction of peers turned adversarial at Create");
  flags->DefineString("adversary-behavior", "inflate",
                      "adversarial behavior: honest|inflate|poison");
  flags->DefineDouble("adversary-factor", 10.0,
                      "claimed-list-length inflation factor");
  flags->DefineInt("adversary-seed", 0,
                   "adversary selection / fabrication seed");
  flags->DefineBool("reputation", false,
                    "claim-vs-observed reputation discounting in "
                    "Select-Best-Peer");
  flags->DefineDouble("reputation-prior", 8.0,
                      "pseudo-count prior of the reputation discount");
  flags->DefineDouble("reputation-floor", 0.05,
                      "minimum reputation discount factor");
  flags->DefineDouble("reputation-sharpness", 2.0,
                      "exponent on the claim-vs-delivered ratio");
  flags->DefineBool("health", false,
                    "per-peer failure detector + circuit breaker");
  flags->DefineDouble("health-error-threshold", 0.5,
                      "error-rate EWMA that opens a peer's circuit");
  flags->DefineDouble("health-latency-threshold-ms", 0.0,
                      "latency EWMA that opens a peer's circuit (0 = off)");
  flags->DefineDouble("health-cooldown-ms", 250.0,
                      "simulated-time cooldown before a half-open probe");
  flags->DefineDouble("brownout-threshold", 0.0,
                      "remaining-deadline fraction below which max_peers "
                      "browns out (0 = off)");
  flags->DefineBool("hedge", false,
                    "hedged backup requests on slow retriable failures");
  flags->DefineDouble("hedge-threshold-ms", 30.0,
                      "attempt cost that triggers a hedged backup");
  flags->DefineBool("cache", false, "versioned directory PeerList cache");
  flags->DefineInt("cache_max_terms", 0,
                   "cached terms per initiator (0 = unbounded)");
  flags->DefineDouble("cache_ttl_ms", 0.0,
                      "simulated-time cache TTL (0 = version stamps only)");
  flags->DefineString("trace_out", "",
                      "write a Chrome trace_event JSON of all queries to "
                      "this path (implies tracing)");
  flags->DefineString("metrics_out", "",
                      "write a metrics-registry snapshot JSON to this path");
  flags->DefineString("profile_out", "",
                      "write flamegraph folded stacks of all queries to "
                      "this path (implies tracing; enables the wall-clock "
                      "profiler leg)");
  flags->DefineString("transport", "simulated",
                      std::string("transport backend: ") +
                          iqn::TransportKindSpellings());
  flags->DefineString("cluster", "",
                      "comma-separated host:port listen endpoints, one per "
                      "rank in rank order (tcp transport only)");
  flags->DefineInt("rank", 0,
                   "this process's index into --cluster (tcp transport "
                   "only)");
  flags->DefineInt("io-timeout-ms", 30000,
                   "socket send/receive timeout per RPC exchange (tcp)");
  flags->DefineInt("connect-wait-ms", 30000,
                   "how long to retry connecting to a peer that has not "
                   "bound its listen socket yet (tcp)");
}

iqn::Result<EngineOptions> EngineOptions::FromFlags(const iqn::Flags& flags) {
  EngineOptions options;
  options.threads = static_cast<size_t>(flags.GetInt("threads"));
  options.max_peers = static_cast<size_t>(flags.GetInt("max_peers"));
  IQN_ASSIGN_OR_RETURN(options.routing.kind,
                       ParseRouterKind(flags.GetString("router")));
  IQN_ASSIGN_OR_RETURN(options.routing.iqn.aggregation,
                       ParseAggregation(flags.GetString("aggregation")));
  options.routing.iqn.use_histograms = flags.GetBool("histograms");
  options.routing.iqn.use_quality = !flags.GetBool("novelty_only");
  options.routing.iqn.correlation_aware = flags.GetBool("correlation_aware");
  options.routing.random_seed =
      static_cast<uint64_t>(flags.GetInt("router_seed"));
  IQN_ASSIGN_OR_RETURN(options.core.synopsis.type,
                       ParseSynopsisType(flags.GetString("synopsis")));
  options.core.synopsis.bits =
      static_cast<size_t>(flags.GetInt("synopsis_bits"));
  options.core.synopsis.histogram_cells =
      static_cast<size_t>(flags.GetInt("histogram_cells"));
  options.core.directory_replication =
      static_cast<size_t>(flags.GetInt("replication"));
  options.core.batch_posting = flags.GetBool("batch_posting");
  options.core.peerlist_limit =
      static_cast<size_t>(flags.GetInt("peerlist_limit"));
  options.core.distributed_topk_candidates =
      static_cast<size_t>(flags.GetInt("topk_candidates"));
  IQN_ASSIGN_OR_RETURN(options.core.merge,
                       ParseMerge(flags.GetString("merge")));
  options.core.seed_reference_from_synopses =
      flags.GetBool("seed_from_synopses");
  options.core.retry.max_attempts = static_cast<int>(flags.GetInt("retries"));
  options.core.query_deadline_ms = flags.GetDouble("deadline-ms");
  options.fault_plan.seed = static_cast<uint64_t>(flags.GetInt("fault-seed"));
  double drop = flags.GetDouble("fault-drop");
  options.fault_plan.drop_request.rate = drop;
  options.fault_plan.drop_response.rate = drop;
  options.fault_plan.corrupt_response.rate = flags.GetDouble("fault-corrupt");
  options.fault_plan.timeout.rate = flags.GetDouble("fault-timeout");
  options.core.adversary.fraction = flags.GetDouble("adversary-fraction");
  IQN_ASSIGN_OR_RETURN(
      options.core.adversary.behavior,
      iqn::ParsePeerBehavior(flags.GetString("adversary-behavior")));
  options.core.adversary.inflate_factor = flags.GetDouble("adversary-factor");
  options.core.adversary.seed =
      static_cast<uint64_t>(flags.GetInt("adversary-seed"));
  options.core.reputation.enabled = flags.GetBool("reputation");
  options.core.reputation.prior = flags.GetDouble("reputation-prior");
  options.core.reputation.floor = flags.GetDouble("reputation-floor");
  options.core.reputation.sharpness = flags.GetDouble("reputation-sharpness");
  options.core.health.enabled = flags.GetBool("health");
  options.core.health.error_threshold =
      flags.GetDouble("health-error-threshold");
  options.core.health.latency_threshold_ms =
      flags.GetDouble("health-latency-threshold-ms");
  options.core.health.cooldown_ms = flags.GetDouble("health-cooldown-ms");
  options.core.health.brownout_threshold =
      flags.GetDouble("brownout-threshold");
  options.core.hedge.enabled = flags.GetBool("hedge");
  options.core.hedge.threshold_ms = flags.GetDouble("hedge-threshold-ms");
  options.core.cache.enabled = flags.GetBool("cache");
  options.core.cache.max_terms =
      static_cast<size_t>(flags.GetInt("cache_max_terms"));
  options.core.cache.ttl_ms = flags.GetDouble("cache_ttl_ms");
  options.trace_out = flags.GetString("trace_out");
  options.metrics_out = flags.GetString("metrics_out");
  options.profile_out = flags.GetString("profile_out");
  if (!options.trace_out.empty() || !options.profile_out.empty()) {
    options.core.collect_traces = true;
  }
  IQN_ASSIGN_OR_RETURN(
      options.core.transport.kind,
      iqn::ParseTransportKind(flags.GetString("transport")));
  const std::string& cluster = flags.GetString("cluster");
  if (!cluster.empty()) {
    size_t start = 0;
    while (start <= cluster.size()) {
      const size_t comma = cluster.find(',', start);
      const size_t end = comma == std::string::npos ? cluster.size() : comma;
      if (end > start) {
        options.core.transport.endpoints.push_back(
            cluster.substr(start, end - start));
      }
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
  }
  const long long rank = flags.GetInt("rank");
  if (rank < 0) {
    return iqn::Status::InvalidArgument("--rank must be >= 0");
  }
  options.core.transport.rank = static_cast<uint32_t>(rank);
  options.core.transport.io_timeout_ms =
      static_cast<int>(flags.GetInt("io-timeout-ms"));
  options.core.transport.connect_wait_ms =
      static_cast<int>(flags.GetInt("connect-wait-ms"));
  return options;
}

iqn::Result<std::unique_ptr<Engine>> Engine::Create(
    EngineOptions options, std::vector<iqn::Corpus> collections) {
  if (!options.trace_out.empty() || !options.profile_out.empty()) {
    options.core.collect_traces = true;
  }
  // Wall-clock leg: process-wide and opt-in; the folded sink itself is
  // built from simulated time only, so enabling it costs determinism
  // nothing.
  if (!options.profile_out.empty()) iqn::CpuProfiler::Enable();
  auto engine = std::unique_ptr<Engine>(new Engine(std::move(options)));
  IQN_ASSIGN_OR_RETURN(
      engine->core_,
      iqn::MinervaEngine::Create(engine->options_.core,
                                 std::move(collections)));
  if (engine->options_.fault_plan.active()) {
    // Each process would install its own injector, but partition windows
    // read the per-rank simulated clock (which only advances for locally
    // initiated queries) and fault counters live per process — the
    // schedule would silently diverge from the simulator's.
    if (engine->options_.core.transport.kind == iqn::TransportKind::kTcp &&
        engine->options_.core.transport.endpoints.size() > 1) {
      return iqn::Status::InvalidArgument(
          "multi-rank tcp transport does not support fault plans");
    }
    engine->core_->network().InstallFaultPlan(engine->options_.fault_plan);
  }
  IQN_RETURN_IF_ERROR(engine->core_->SetNumThreads(engine->options_.threads));
  engine->router_ = MakeRouter(engine->options_.routing);
  return engine;
}

Engine::Engine(EngineOptions options) : options_(std::move(options)) {}

Engine::~Engine() = default;

iqn::Status Engine::Publish() { return core_->PublishAll(); }

iqn::Status Engine::RunQuery(size_t initiator, const iqn::Query& query,
                             iqn::QueryOutcome* outcome) {
  return RunQueryWith(options_.routing, initiator, query, options_.max_peers,
                      outcome);
}

iqn::Status Engine::RunQueryWith(const RoutingSpec& spec, size_t initiator,
                                 const iqn::Query& query, size_t max_peers,
                                 iqn::QueryOutcome* outcome) {
  // The configured router is prebuilt; per-call overrides get a fresh
  // one (routers are small immutable objects).
  std::unique_ptr<iqn::Router> override_router;
  const iqn::Router* router = router_.get();
  if (&spec != &options_.routing) {
    override_router = MakeRouter(spec);
    router = override_router.get();
  }
  IQN_ASSIGN_OR_RETURN(*outcome,
                       core_->RunQuery(initiator, query, *router, max_peers));
  if (outcome->trace != nullptr) traces_.push_back(outcome->trace);
  return Status::OK();
}

iqn::Status Engine::RunQueryBatch(const std::vector<BatchQuery>& batch,
                                  std::vector<iqn::QueryOutcome>* outcomes) {
  return RunQueryBatchWith(options_.routing, batch, options_.max_peers,
                           options_.threads, outcomes);
}

iqn::Status Engine::RunQueryBatchWith(const RoutingSpec& spec,
                                      const std::vector<BatchQuery>& batch,
                                      size_t max_peers, size_t num_threads,
                                      std::vector<iqn::QueryOutcome>* outcomes) {
  std::unique_ptr<iqn::Router> override_router;
  const iqn::Router* router = router_.get();
  if (&spec != &options_.routing) {
    override_router = MakeRouter(spec);
    router = override_router.get();
  }
  IQN_ASSIGN_OR_RETURN(
      *outcomes, core_->RunQueryBatch(batch, *router, max_peers, num_threads));
  for (const iqn::QueryOutcome& outcome : *outcomes) {
    if (outcome.trace != nullptr) traces_.push_back(outcome.trace);
  }
  return Status::OK();
}

iqn::Status Engine::Explain(const iqn::QueryOutcome& outcome,
                            std::string* text) const {
  IQN_ASSIGN_OR_RETURN(*text, iqn::ExplainQuery(outcome));
  return Status::OK();
}

iqn::Status Engine::WriteSinks() const {
  std::vector<const iqn::QueryTrace*> views;
  views.reserve(traces_.size());
  for (const auto& trace : traces_) views.push_back(trace.get());
  if (!options_.trace_out.empty()) {
    IQN_RETURN_IF_ERROR(iqn::WriteChromeTraceFile(options_.trace_out, views));
  }
  if (!options_.metrics_out.empty()) {
    // Mirror the component memory balances (and peak RSS) into the
    // registry so the exported snapshot carries the mem.* gauges.
    iqn::MemStats::Default().PublishGauges(&iqn::MetricsRegistry::Default());
    IQN_RETURN_IF_ERROR(iqn::WriteTextFile(
        options_.metrics_out,
        iqn::MetricsRegistry::Default().Snapshot().ToJson()));
  }
  if (!options_.profile_out.empty()) {
    IQN_RETURN_IF_ERROR(
        iqn::WriteFoldedFile(options_.profile_out, iqn::BuildProfile(views)));
  }
  return Status::OK();
}

iqn::ProfileReport Engine::Profile() const {
  std::vector<const iqn::QueryTrace*> views;
  views.reserve(traces_.size());
  for (const auto& trace : traces_) views.push_back(trace.get());
  iqn::ProfileReport report = iqn::BuildProfile(views);
  iqn::AttachWallTotals(&report);
  return report;
}

void Engine::ResetMetrics() { iqn::MetricsRegistry::Default().Reset(); }

}  // namespace minerva

#include "minerva/scenario.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <utility>

#include "minerva/behavior.h"
#include "util/hash.h"
#include "util/metrics.h"
#include "util/random.h"
#include "workload/fragments.h"
#include "workload/queries.h"
#include "workload/synthetic_corpus.h"

namespace minerva {

namespace {

using iqn::JsonValue;
using iqn::Result;
using iqn::Status;

// Salt separating overloaded-peer selection from the adversary stream
// (both rank peers by seeded hash, and the same seed value must not
// pick the same peers for both roles).
constexpr uint64_t kOverloadSelectSeed = 0x0BE710AD;

// ---------------------------------------------------------------------
// Strict extraction helpers. Every error names the spec path it refers
// to, so a bad spec is diagnosable from the Status alone.

Status WrongKind(const std::string& path, const char* want,
                 const JsonValue& v) {
  return Status::InvalidArgument("scenario: " + path + " must be " + want +
                                 ", got " + JsonValue::KindName(v.kind()));
}

Result<bool> GetBool(const JsonValue& v, const std::string& path) {
  if (!v.is_bool()) return WrongKind(path, "a boolean", v);
  return v.bool_value();
}

Result<double> GetDouble(const JsonValue& v, const std::string& path) {
  if (!v.is_number()) return WrongKind(path, "a number", v);
  return v.number_value();
}

Result<uint64_t> GetUint(const JsonValue& v, const std::string& path) {
  if (!v.is_number() || !v.IsExactInt() || v.number_value() < 0.0) {
    return WrongKind(path, "a nonnegative integer", v);
  }
  return static_cast<uint64_t>(v.number_value());
}

Result<size_t> GetSize(const JsonValue& v, const std::string& path) {
  IQN_ASSIGN_OR_RETURN(uint64_t u, GetUint(v, path));
  return static_cast<size_t>(u);
}

Result<std::string> GetString(const JsonValue& v, const std::string& path) {
  if (!v.is_string()) return WrongKind(path, "a string", v);
  return v.string_value();
}

/// Prefixes a section parser's enum-spelling error with its path.
Status AtPath(const std::string& path, const Status& status) {
  if (status.ok()) return status;
  return Status::InvalidArgument("scenario: " + path + ": " +
                                 status.message());
}

Status UnknownKey(const char* section, const std::string& key,
                  const char* accepted) {
  return Status::InvalidArgument(std::string("scenario: unknown key '") +
                                 key + "' in " + section + " (accepted: " +
                                 accepted + ")");
}

// ---------------------------------------------------------------------
// Section parsers. Each iterates the object's members, dispatches every
// key it knows, and rejects the rest; range validation follows once the
// whole section is read (so "max < min" errors see both values).

Status ParseCorpus(const JsonValue& v, ScenarioSpec::CorpusSection* out) {
  if (!v.is_object()) return WrongKind("corpus", "an object", v);
  for (const auto& [key, val] : v.members()) {
    if (key == "documents") {
      IQN_ASSIGN_OR_RETURN(out->documents, GetSize(val, "corpus.documents"));
    } else if (key == "vocabulary") {
      IQN_ASSIGN_OR_RETURN(out->vocabulary, GetSize(val, "corpus.vocabulary"));
    } else if (key == "min_doc_length") {
      IQN_ASSIGN_OR_RETURN(out->min_doc_length,
                           GetSize(val, "corpus.min_doc_length"));
    } else if (key == "max_doc_length") {
      IQN_ASSIGN_OR_RETURN(out->max_doc_length,
                           GetSize(val, "corpus.max_doc_length"));
    } else if (key == "zipf_theta") {
      IQN_ASSIGN_OR_RETURN(out->zipf_theta,
                           GetDouble(val, "corpus.zipf_theta"));
    } else {
      return UnknownKey("corpus", key,
                        "documents|vocabulary|min_doc_length|"
                        "max_doc_length|zipf_theta");
    }
  }
  if (out->documents == 0) {
    return Status::InvalidArgument(
        "scenario: corpus.documents must be >= 1");
  }
  if (out->min_doc_length == 0) {
    return Status::InvalidArgument(
        "scenario: corpus.min_doc_length must be >= 1");
  }
  if (out->max_doc_length < out->min_doc_length) {
    return Status::InvalidArgument(
        "scenario: corpus.max_doc_length must be >= corpus.min_doc_length");
  }
  if (out->zipf_theta < 0.0) {
    return Status::InvalidArgument(
        "scenario: corpus.zipf_theta must be >= 0");
  }
  return Status::OK();
}

Status ParseTopology(const JsonValue& v, ScenarioSpec::TopologySection* out) {
  if (!v.is_object()) return WrongKind("topology", "an object", v);
  for (const auto& [key, val] : v.members()) {
    if (key == "peers") {
      IQN_ASSIGN_OR_RETURN(out->peers, GetSize(val, "topology.peers"));
    } else if (key == "fragments") {
      IQN_ASSIGN_OR_RETURN(out->fragments,
                           GetSize(val, "topology.fragments"));
    } else if (key == "partition") {
      IQN_ASSIGN_OR_RETURN(std::string name,
                           GetString(val, "topology.partition"));
      Result<PartitionKind> kind = ParsePartitionKind(name);
      if (!kind.ok()) return AtPath("topology.partition", kind.status());
      out->partition = kind.value();
    } else if (key == "window") {
      IQN_ASSIGN_OR_RETURN(out->window, GetSize(val, "topology.window"));
    } else if (key == "offset") {
      IQN_ASSIGN_OR_RETURN(out->offset, GetSize(val, "topology.offset"));
    } else if (key == "subset") {
      IQN_ASSIGN_OR_RETURN(out->subset, GetSize(val, "topology.subset"));
    } else {
      return UnknownKey("topology", key,
                        "peers|fragments|partition|window|offset|subset");
    }
  }
  if (out->peers < 2) {
    return Status::InvalidArgument(
        "scenario: topology.peers must be >= 2 (one initiator plus at "
        "least one remote peer)");
  }
  if (out->window == 0 || out->offset == 0) {
    return Status::InvalidArgument(
        "scenario: topology.window and topology.offset must be >= 1");
  }
  if (out->subset == 0) {
    return Status::InvalidArgument(
        "scenario: topology.subset must be >= 1");
  }
  return Status::OK();
}

Status ParseEngine(const JsonValue& v, ScenarioSpec::EngineSection* out) {
  if (!v.is_object()) return WrongKind("engine", "an object", v);
  for (const auto& [key, val] : v.members()) {
    if (key == "router") {
      IQN_ASSIGN_OR_RETURN(std::string name, GetString(val, "engine.router"));
      Result<RouterKind> kind = ParseRouterKind(name);
      if (!kind.ok()) return AtPath("engine.router", kind.status());
      out->router = kind.value();
    } else if (key == "aggregation") {
      IQN_ASSIGN_OR_RETURN(std::string name,
                           GetString(val, "engine.aggregation"));
      Result<iqn::AggregationStrategy> agg = ParseAggregation(name);
      if (!agg.ok()) return AtPath("engine.aggregation", agg.status());
      out->aggregation = agg.value();
    } else if (key == "synopsis") {
      IQN_ASSIGN_OR_RETURN(std::string name,
                           GetString(val, "engine.synopsis"));
      Result<iqn::SynopsisType> type = ParseSynopsisType(name);
      if (!type.ok()) return AtPath("engine.synopsis", type.status());
      out->synopsis = type.value();
    } else if (key == "synopsis_bits") {
      IQN_ASSIGN_OR_RETURN(out->synopsis_bits,
                           GetSize(val, "engine.synopsis_bits"));
    } else if (key == "merge") {
      IQN_ASSIGN_OR_RETURN(std::string name, GetString(val, "engine.merge"));
      Result<iqn::MergeStrategy> merge = ParseMerge(name);
      if (!merge.ok()) return AtPath("engine.merge", merge.status());
      out->merge = merge.value();
    } else if (key == "max_peers") {
      IQN_ASSIGN_OR_RETURN(out->max_peers,
                           GetSize(val, "engine.max_peers"));
    } else if (key == "threads") {
      IQN_ASSIGN_OR_RETURN(out->threads, GetSize(val, "engine.threads"));
    } else if (key == "retries") {
      IQN_ASSIGN_OR_RETURN(size_t retries, GetSize(val, "engine.retries"));
      out->retries = static_cast<int>(retries);
    } else if (key == "deadline_ms") {
      IQN_ASSIGN_OR_RETURN(out->deadline_ms,
                           GetDouble(val, "engine.deadline_ms"));
    } else if (key == "cache") {
      IQN_ASSIGN_OR_RETURN(out->cache, GetBool(val, "engine.cache"));
    } else if (key == "collect_traces") {
      IQN_ASSIGN_OR_RETURN(out->collect_traces,
                           GetBool(val, "engine.collect_traces"));
    } else {
      return UnknownKey("engine", key,
                        "router|aggregation|synopsis|synopsis_bits|merge|"
                        "max_peers|threads|retries|deadline_ms|cache|"
                        "collect_traces");
    }
  }
  if (out->synopsis_bits == 0) {
    return Status::InvalidArgument(
        "scenario: engine.synopsis_bits must be >= 1");
  }
  if (out->max_peers == 0) {
    return Status::InvalidArgument(
        "scenario: engine.max_peers must be >= 1");
  }
  if (out->threads == 0) {
    return Status::InvalidArgument("scenario: engine.threads must be >= 1");
  }
  if (out->retries < 1) {
    return Status::InvalidArgument("scenario: engine.retries must be >= 1");
  }
  if (out->deadline_ms < 0.0) {
    return Status::InvalidArgument(
        "scenario: engine.deadline_ms must be >= 0");
  }
  return Status::OK();
}

Status ParseTransport(const JsonValue& v,
                      ScenarioSpec::TransportSection* out) {
  if (!v.is_object()) return WrongKind("transport", "an object", v);
  for (const auto& [key, val] : v.members()) {
    if (key == "kind") {
      IQN_ASSIGN_OR_RETURN(std::string name, GetString(val, "transport.kind"));
      Result<iqn::TransportKind> kind = iqn::ParseTransportKind(name);
      if (!kind.ok()) return AtPath("transport.kind", kind.status());
      out->kind = kind.value();
    } else if (key == "endpoints") {
      if (!val.is_array()) {
        return WrongKind("transport.endpoints", "an array", val);
      }
      for (size_t i = 0; i < val.items().size(); ++i) {
        IQN_ASSIGN_OR_RETURN(
            std::string endpoint,
            GetString(val.items()[i],
                      "transport.endpoints[" + std::to_string(i) + "]"));
        if (endpoint.empty()) {
          return Status::InvalidArgument(
              "scenario: transport.endpoints[" + std::to_string(i) +
              "] must be a nonempty \"host:port\"");
        }
        out->endpoints.push_back(std::move(endpoint));
      }
    } else {
      return UnknownKey("transport", key, "kind|endpoints");
    }
  }
  if (out->kind == iqn::TransportKind::kSimulated &&
      !out->endpoints.empty()) {
    return Status::InvalidArgument(
        "scenario: transport.endpoints requires transport.kind \"tcp\" "
        "(the simulated transport has no sockets)");
  }
  return Status::OK();
}

Status ParseOverload(const JsonValue& v,
                     ScenarioSpec::FaultSection::OverloadSubsection* out) {
  if (!v.is_object()) return WrongKind("faults.overload", "an object", v);
  for (const auto& [key, val] : v.members()) {
    if (key == "fraction") {
      IQN_ASSIGN_OR_RETURN(out->fraction,
                           GetDouble(val, "faults.overload.fraction"));
    } else if (key == "utilization") {
      IQN_ASSIGN_OR_RETURN(out->utilization,
                           GetDouble(val, "faults.overload.utilization"));
    } else if (key == "service_ms") {
      IQN_ASSIGN_OR_RETURN(out->service_ms,
                           GetDouble(val, "faults.overload.service_ms"));
    } else if (key == "shed_rate") {
      IQN_ASSIGN_OR_RETURN(out->shed_rate,
                           GetDouble(val, "faults.overload.shed_rate"));
    } else {
      return UnknownKey("faults.overload", key,
                        "fraction|utilization|service_ms|shed_rate");
    }
  }
  if (out->fraction < 0.0 || out->fraction > 1.0) {
    return Status::InvalidArgument(
        "scenario: faults.overload.fraction must be in [0, 1]");
  }
  if (out->utilization < 0.0 || out->utilization >= 1.0) {
    return Status::InvalidArgument(
        "scenario: faults.overload.utilization must be in [0, 1) (the "
        "M/M/1 wait diverges at 1)");
  }
  if (out->service_ms <= 0.0) {
    return Status::InvalidArgument(
        "scenario: faults.overload.service_ms must be > 0");
  }
  if (out->shed_rate < 0.0 || out->shed_rate > 1.0) {
    return Status::InvalidArgument(
        "scenario: faults.overload.shed_rate must be in [0, 1]");
  }
  return Status::OK();
}

Status ParsePartitionEntry(const JsonValue& v, const std::string& path,
                           ScenarioSpec::FaultSection::PartitionEntry* out) {
  if (!v.is_object()) return WrongKind(path, "an object", v);
  bool saw_groups = false;
  for (const auto& [key, val] : v.members()) {
    if (key == "name") {
      IQN_ASSIGN_OR_RETURN(out->name, GetString(val, path + ".name"));
    } else if (key == "groups") {
      saw_groups = true;
      if (!val.is_array()) return WrongKind(path + ".groups", "an array", val);
      for (size_t g = 0; g < val.items().size(); ++g) {
        const JsonValue& group = val.items()[g];
        const std::string group_path =
            path + ".groups[" + std::to_string(g) + "]";
        if (!group.is_array()) {
          return WrongKind(group_path, "an array of peer indices", group);
        }
        std::vector<size_t> indices;
        for (size_t m = 0; m < group.items().size(); ++m) {
          IQN_ASSIGN_OR_RETURN(
              size_t idx,
              GetSize(group.items()[m],
                      group_path + "[" + std::to_string(m) + "]"));
          indices.push_back(idx);
        }
        if (indices.empty()) {
          return Status::InvalidArgument("scenario: " + group_path +
                                         " must list at least one peer");
        }
        out->groups.push_back(std::move(indices));
      }
    } else if (key == "start_ms") {
      IQN_ASSIGN_OR_RETURN(out->start_ms, GetDouble(val, path + ".start_ms"));
    } else if (key == "end_ms") {
      IQN_ASSIGN_OR_RETURN(out->end_ms, GetDouble(val, path + ".end_ms"));
    } else {
      return UnknownKey(path.c_str(), key, "name|groups|start_ms|end_ms");
    }
  }
  if (out->name.empty()) {
    return Status::InvalidArgument("scenario: " + path +
                                   ".name must be nonempty");
  }
  if (!saw_groups || out->groups.size() < 2) {
    return Status::InvalidArgument(
        "scenario: " + path +
        ".groups must list at least two groups (one group partitions "
        "nothing)");
  }
  if (out->start_ms < 0.0 || out->end_ms <= out->start_ms) {
    return Status::InvalidArgument(
        "scenario: " + path +
        " window must satisfy 0 <= start_ms < end_ms");
  }
  return Status::OK();
}

Status ParseFaults(const JsonValue& v, ScenarioSpec::FaultSection* out) {
  if (!v.is_object()) return WrongKind("faults", "an object", v);
  for (const auto& [key, val] : v.members()) {
    if (key == "seed") {
      IQN_ASSIGN_OR_RETURN(out->seed, GetUint(val, "faults.seed"));
    } else if (key == "drop_rate") {
      IQN_ASSIGN_OR_RETURN(out->drop_rate,
                           GetDouble(val, "faults.drop_rate"));
    } else if (key == "overload") {
      IQN_RETURN_IF_ERROR(ParseOverload(val, &out->overload));
    } else if (key == "partitions") {
      if (!val.is_array()) {
        return WrongKind("faults.partitions", "an array", val);
      }
      for (size_t i = 0; i < val.items().size(); ++i) {
        ScenarioSpec::FaultSection::PartitionEntry entry;
        IQN_RETURN_IF_ERROR(ParsePartitionEntry(
            val.items()[i],
            "faults.partitions[" + std::to_string(i) + "]", &entry));
        out->partitions.push_back(std::move(entry));
      }
    } else {
      return UnknownKey("faults", key,
                        "seed|drop_rate|overload|partitions");
    }
  }
  if (out->drop_rate < 0.0 || out->drop_rate > 1.0) {
    return Status::InvalidArgument(
        "scenario: faults.drop_rate must be in [0, 1]");
  }
  return Status::OK();
}

Status ParseHealth(const JsonValue& v, iqn::HealthParams* out) {
  if (!v.is_object()) return WrongKind("health", "an object", v);
  for (const auto& [key, val] : v.members()) {
    if (key == "enabled") {
      IQN_ASSIGN_OR_RETURN(out->enabled, GetBool(val, "health.enabled"));
    } else if (key == "error_alpha") {
      IQN_ASSIGN_OR_RETURN(out->error_alpha,
                           GetDouble(val, "health.error_alpha"));
    } else if (key == "latency_alpha") {
      IQN_ASSIGN_OR_RETURN(out->latency_alpha,
                           GetDouble(val, "health.latency_alpha"));
    } else if (key == "error_threshold") {
      IQN_ASSIGN_OR_RETURN(out->error_threshold,
                           GetDouble(val, "health.error_threshold"));
    } else if (key == "latency_threshold_ms") {
      IQN_ASSIGN_OR_RETURN(out->latency_threshold_ms,
                           GetDouble(val, "health.latency_threshold_ms"));
    } else if (key == "cooldown_ms") {
      IQN_ASSIGN_OR_RETURN(out->cooldown_ms,
                           GetDouble(val, "health.cooldown_ms"));
    } else if (key == "brownout_threshold") {
      IQN_ASSIGN_OR_RETURN(out->brownout_threshold,
                           GetDouble(val, "health.brownout_threshold"));
    } else {
      return UnknownKey("health", key,
                        "enabled|error_alpha|latency_alpha|error_threshold|"
                        "latency_threshold_ms|cooldown_ms|"
                        "brownout_threshold");
    }
  }
  if (out->error_alpha <= 0.0 || out->error_alpha > 1.0 ||
      out->latency_alpha <= 0.0 || out->latency_alpha > 1.0) {
    return Status::InvalidArgument(
        "scenario: health EWMA alphas must be in (0, 1]");
  }
  if (out->error_threshold <= 0.0 || out->error_threshold > 1.0) {
    return Status::InvalidArgument(
        "scenario: health.error_threshold must be in (0, 1]");
  }
  if (out->latency_threshold_ms < 0.0) {
    return Status::InvalidArgument(
        "scenario: health.latency_threshold_ms must be >= 0");
  }
  if (out->cooldown_ms <= 0.0) {
    return Status::InvalidArgument(
        "scenario: health.cooldown_ms must be > 0");
  }
  if (out->brownout_threshold < 0.0 || out->brownout_threshold > 1.0) {
    return Status::InvalidArgument(
        "scenario: health.brownout_threshold must be in [0, 1]");
  }
  return Status::OK();
}

Status ParseHedging(const JsonValue& v, iqn::HedgePolicy* out) {
  if (!v.is_object()) return WrongKind("hedging", "an object", v);
  for (const auto& [key, val] : v.members()) {
    if (key == "enabled") {
      IQN_ASSIGN_OR_RETURN(out->enabled, GetBool(val, "hedging.enabled"));
    } else if (key == "threshold_ms") {
      IQN_ASSIGN_OR_RETURN(out->threshold_ms,
                           GetDouble(val, "hedging.threshold_ms"));
    } else {
      return UnknownKey("hedging", key, "enabled|threshold_ms");
    }
  }
  if (out->threshold_ms < 0.0) {
    return Status::InvalidArgument(
        "scenario: hedging.threshold_ms must be >= 0");
  }
  return Status::OK();
}

Status ParseChurn(const JsonValue& v, ScenarioSpec::ChurnSection* out) {
  if (!v.is_object()) return WrongKind("churn", "an object", v);
  for (const auto& [key, val] : v.members()) {
    if (key == "every") {
      IQN_ASSIGN_OR_RETURN(out->every, GetSize(val, "churn.every"));
    } else if (key == "documents") {
      IQN_ASSIGN_OR_RETURN(out->documents,
                           GetSize(val, "churn.documents"));
    } else {
      return UnknownKey("churn", key, "every|documents");
    }
  }
  return Status::OK();
}

Status ParseQueries(const JsonValue& v, ScenarioSpec::QuerySection* out) {
  if (!v.is_object()) return WrongKind("queries", "an object", v);
  for (const auto& [key, val] : v.members()) {
    if (key == "pool") {
      IQN_ASSIGN_OR_RETURN(out->pool, GetSize(val, "queries.pool"));
    } else if (key == "executions") {
      IQN_ASSIGN_OR_RETURN(out->executions,
                           GetSize(val, "queries.executions"));
    } else if (key == "rounds") {
      IQN_ASSIGN_OR_RETURN(out->rounds, GetSize(val, "queries.rounds"));
    } else if (key == "min_terms") {
      IQN_ASSIGN_OR_RETURN(out->min_terms,
                           GetSize(val, "queries.min_terms"));
    } else if (key == "max_terms") {
      IQN_ASSIGN_OR_RETURN(out->max_terms,
                           GetSize(val, "queries.max_terms"));
    } else if (key == "band_low") {
      IQN_ASSIGN_OR_RETURN(out->band_low,
                           GetDouble(val, "queries.band_low"));
    } else if (key == "band_high") {
      IQN_ASSIGN_OR_RETURN(out->band_high,
                           GetDouble(val, "queries.band_high"));
    } else if (key == "k") {
      IQN_ASSIGN_OR_RETURN(out->k, GetSize(val, "queries.k"));
    } else if (key == "zipf_s") {
      IQN_ASSIGN_OR_RETURN(out->zipf_s, GetDouble(val, "queries.zipf_s"));
    } else if (key == "batch_size") {
      IQN_ASSIGN_OR_RETURN(out->batch_size,
                           GetSize(val, "queries.batch_size"));
    } else if (key == "initiator") {
      if (val.is_string()) {
        if (val.string_value() != "round_robin") {
          return Status::InvalidArgument(
              "scenario: queries.initiator must be \"round_robin\" or a "
              "peer index, got \"" + val.string_value() + "\"");
        }
        out->initiator = -1;
      } else {
        IQN_ASSIGN_OR_RETURN(size_t fixed,
                             GetSize(val, "queries.initiator"));
        out->initiator = static_cast<int>(fixed);
      }
    } else {
      return UnknownKey("queries", key,
                        "pool|executions|rounds|min_terms|max_terms|"
                        "band_low|band_high|k|zipf_s|batch_size|initiator");
    }
  }
  if (out->pool == 0) {
    return Status::InvalidArgument("scenario: queries.pool must be >= 1");
  }
  if (out->rounds == 0) {
    return Status::InvalidArgument("scenario: queries.rounds must be >= 1");
  }
  if (out->min_terms == 0 || out->max_terms < out->min_terms) {
    return Status::InvalidArgument(
        "scenario: queries.min_terms must be >= 1 and <= queries.max_terms");
  }
  if (out->band_low < 0.0 || out->band_high <= out->band_low ||
      out->band_high > 1.0) {
    return Status::InvalidArgument(
        "scenario: query band must satisfy 0 <= band_low < band_high <= 1");
  }
  if (out->k == 0) {
    return Status::InvalidArgument("scenario: queries.k must be >= 1");
  }
  if (out->zipf_s < 0.0) {
    return Status::InvalidArgument("scenario: queries.zipf_s must be >= 0");
  }
  if (out->batch_size == 0) {
    return Status::InvalidArgument(
        "scenario: queries.batch_size must be >= 1");
  }
  return Status::OK();
}

Status ParseAdversary(const JsonValue& v, iqn::AdversaryConfig* out) {
  if (!v.is_object()) return WrongKind("adversary", "an object", v);
  for (const auto& [key, val] : v.members()) {
    if (key == "fraction") {
      IQN_ASSIGN_OR_RETURN(out->fraction,
                           GetDouble(val, "adversary.fraction"));
    } else if (key == "behavior") {
      IQN_ASSIGN_OR_RETURN(std::string name,
                           GetString(val, "adversary.behavior"));
      Result<iqn::PeerBehavior> behavior = iqn::ParsePeerBehavior(name);
      if (!behavior.ok()) return AtPath("adversary.behavior",
                                        behavior.status());
      out->behavior = behavior.value();
    } else if (key == "factor") {
      IQN_ASSIGN_OR_RETURN(out->inflate_factor,
                           GetDouble(val, "adversary.factor"));
    } else if (key == "seed") {
      IQN_ASSIGN_OR_RETURN(out->seed, GetUint(val, "adversary.seed"));
    } else {
      return UnknownKey("adversary", key, "fraction|behavior|factor|seed");
    }
  }
  if (out->fraction < 0.0 || out->fraction > 1.0) {
    return Status::InvalidArgument(
        "scenario: adversary.fraction must be in [0, 1]");
  }
  if (out->inflate_factor < 1.0) {
    return Status::InvalidArgument(
        "scenario: adversary.factor must be >= 1 (1 = no inflation)");
  }
  return Status::OK();
}

Status ParseReputation(const JsonValue& v, iqn::ReputationParams* out) {
  if (!v.is_object()) return WrongKind("reputation", "an object", v);
  for (const auto& [key, val] : v.members()) {
    if (key == "enabled") {
      IQN_ASSIGN_OR_RETURN(out->enabled,
                           GetBool(val, "reputation.enabled"));
    } else if (key == "prior") {
      IQN_ASSIGN_OR_RETURN(out->prior, GetDouble(val, "reputation.prior"));
    } else if (key == "floor") {
      IQN_ASSIGN_OR_RETURN(out->floor, GetDouble(val, "reputation.floor"));
    } else if (key == "sharpness") {
      IQN_ASSIGN_OR_RETURN(out->sharpness,
                           GetDouble(val, "reputation.sharpness"));
    } else {
      return UnknownKey("reputation", key, "enabled|prior|floor|sharpness");
    }
  }
  if (out->prior <= 0.0) {
    return Status::InvalidArgument(
        "scenario: reputation.prior must be > 0");
  }
  if (out->floor < 0.0 || out->floor > 1.0) {
    return Status::InvalidArgument(
        "scenario: reputation.floor must be in [0, 1]");
  }
  if (out->sharpness <= 0.0) {
    return Status::InvalidArgument(
        "scenario: reputation.sharpness must be > 0");
  }
  return Status::OK();
}

/// Cross-section validation that needs more than one section's values.
Status ValidateSpec(const ScenarioSpec& spec) {
  size_t fragments = spec.topology.fragments != 0
                         ? spec.topology.fragments
                         : spec.topology.peers * 2;
  if (fragments > spec.corpus.documents) {
    return Status::InvalidArgument(
        "scenario: topology.fragments exceeds corpus.documents (every "
        "fragment needs at least one document)");
  }
  if (spec.topology.partition == PartitionKind::kSlidingWindow &&
      spec.topology.window > fragments) {
    return Status::InvalidArgument(
        "scenario: topology.window exceeds the fragment count");
  }
  if (spec.topology.partition == PartitionKind::kChooseCombinations &&
      spec.topology.subset > fragments) {
    return Status::InvalidArgument(
        "scenario: topology.subset exceeds the fragment count");
  }
  if (spec.churn.every > 0 &&
      spec.churn.every % spec.queries.batch_size != 0) {
    return Status::InvalidArgument(
        "scenario: churn.every must be a multiple of queries.batch_size "
        "(churn fires only at batch boundaries)");
  }
  if (spec.queries.initiator >= 0 &&
      static_cast<size_t>(spec.queries.initiator) >= spec.topology.peers) {
    return Status::InvalidArgument(
        "scenario: queries.initiator is not a valid peer index");
  }
  size_t vocabulary = spec.corpus.vocabulary != 0
                          ? spec.corpus.vocabulary
                          : spec.corpus.documents / 8;
  if (vocabulary == 0) {
    return Status::InvalidArgument(
        "scenario: derived vocabulary is empty (corpus.documents < 8 and "
        "no explicit corpus.vocabulary)");
  }
  if (spec.transport.kind == iqn::TransportKind::kTcp &&
      spec.transport.endpoints.size() > 1) {
    // A multi-rank cluster splits the engine across processes; features
    // whose state or scheduling lives in one process cannot keep the
    // simulator's bit-identical semantics and are rejected up front.
    if (spec.churn.every > 0) {
      return Status::InvalidArgument(
          "scenario: churn requires the single-process transport (a "
          "republish would have to mutate every rank's collections in "
          "lockstep)");
    }
    if (spec.faults.drop_rate > 0.0 ||
        spec.faults.overload.fraction > 0.0 ||
        !spec.faults.partitions.empty()) {
      return Status::InvalidArgument(
          "scenario: fault injection requires the single-process "
          "transport (fault state and partition clocks are per-process "
          "and would diverge across ranks)");
    }
    if (spec.health.enabled) {
      return Status::InvalidArgument(
          "scenario: health tracking requires the single-process "
          "transport (per-peer circuit state would diverge across "
          "ranks)");
    }
    if (spec.reputation.enabled) {
      return Status::InvalidArgument(
          "scenario: reputation requires the single-process transport "
          "(the claim-vs-observed book would diverge across ranks)");
    }
    if (spec.queries.batch_size != 1) {
      return Status::InvalidArgument(
          "scenario: a multi-rank cluster requires queries.batch_size 1 "
          "(the driver streams queries serially rank by rank; larger "
          "batches would move the simulator's commit boundaries)");
    }
    if (spec.engine.collect_traces) {
      return Status::InvalidArgument(
          "scenario: collect_traces requires the single-process "
          "transport (traces live in the daemon that ran the query)");
    }
    if (spec.transport.endpoints.size() > spec.topology.peers) {
      return Status::InvalidArgument(
          "scenario: transport.endpoints declares more ranks than "
          "topology.peers (a rank must own at least one peer)");
    }
  }
  for (size_t p = 0; p < spec.faults.partitions.size(); ++p) {
    const auto& entry = spec.faults.partitions[p];
    const std::string path =
        "faults.partitions[" + std::to_string(p) + "]";
    std::vector<bool> seen(spec.topology.peers, false);
    for (const std::vector<size_t>& group : entry.groups) {
      for (size_t idx : group) {
        if (idx >= spec.topology.peers) {
          return Status::InvalidArgument(
              "scenario: " + path + " lists peer index " +
              std::to_string(idx) + ", but topology.peers is " +
              std::to_string(spec.topology.peers));
        }
        if (seen[idx]) {
          return Status::InvalidArgument(
              "scenario: " + path + " lists peer index " +
              std::to_string(idx) +
              " more than once (a peer sits on exactly one side of a "
              "partition)");
        }
        seen[idx] = true;
      }
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------
// Emission: the canonical full form, every field in declaration order.

JsonValue Num(double d) { return JsonValue::Number(d); }
JsonValue Num(size_t u) {
  return JsonValue::Number(static_cast<double>(u));
}
JsonValue Num(int i) { return JsonValue::Number(static_cast<double>(i)); }

JsonValue SpecToJson(const ScenarioSpec& spec) {
  std::vector<JsonValue::Member> corpus;
  corpus.emplace_back("documents", Num(spec.corpus.documents));
  corpus.emplace_back("vocabulary", Num(spec.corpus.vocabulary));
  corpus.emplace_back("min_doc_length", Num(spec.corpus.min_doc_length));
  corpus.emplace_back("max_doc_length", Num(spec.corpus.max_doc_length));
  corpus.emplace_back("zipf_theta", Num(spec.corpus.zipf_theta));

  std::vector<JsonValue::Member> topology;
  topology.emplace_back("peers", Num(spec.topology.peers));
  topology.emplace_back("fragments", Num(spec.topology.fragments));
  topology.emplace_back(
      "partition",
      JsonValue::String(PartitionKindName(spec.topology.partition)));
  topology.emplace_back("window", Num(spec.topology.window));
  topology.emplace_back("offset", Num(spec.topology.offset));
  topology.emplace_back("subset", Num(spec.topology.subset));

  std::vector<JsonValue::Member> engine;
  engine.emplace_back("router",
                      JsonValue::String(RouterKindName(spec.engine.router)));
  engine.emplace_back(
      "aggregation",
      JsonValue::String(AggregationSpelling(spec.engine.aggregation)));
  engine.emplace_back(
      "synopsis", JsonValue::String(SynopsisSpelling(spec.engine.synopsis)));
  engine.emplace_back("synopsis_bits", Num(spec.engine.synopsis_bits));
  engine.emplace_back("merge",
                      JsonValue::String(MergeSpelling(spec.engine.merge)));
  engine.emplace_back("max_peers", Num(spec.engine.max_peers));
  engine.emplace_back("threads", Num(spec.engine.threads));
  engine.emplace_back("retries", Num(spec.engine.retries));
  engine.emplace_back("deadline_ms", Num(spec.engine.deadline_ms));
  engine.emplace_back("cache", JsonValue::Bool(spec.engine.cache));
  engine.emplace_back("collect_traces",
                      JsonValue::Bool(spec.engine.collect_traces));

  std::vector<JsonValue::Member> transport;
  transport.emplace_back(
      "kind", JsonValue::String(iqn::TransportKindName(spec.transport.kind)));
  std::vector<JsonValue> endpoints;
  endpoints.reserve(spec.transport.endpoints.size());
  for (const std::string& endpoint : spec.transport.endpoints) {
    endpoints.push_back(JsonValue::String(endpoint));
  }
  transport.emplace_back("endpoints", JsonValue::Array(std::move(endpoints)));

  std::vector<JsonValue::Member> overload;
  overload.emplace_back("fraction", Num(spec.faults.overload.fraction));
  overload.emplace_back("utilization", Num(spec.faults.overload.utilization));
  overload.emplace_back("service_ms", Num(spec.faults.overload.service_ms));
  overload.emplace_back("shed_rate", Num(spec.faults.overload.shed_rate));

  std::vector<JsonValue> partitions;
  partitions.reserve(spec.faults.partitions.size());
  for (const auto& entry : spec.faults.partitions) {
    std::vector<JsonValue> groups;
    groups.reserve(entry.groups.size());
    for (const std::vector<size_t>& group : entry.groups) {
      std::vector<JsonValue> members;
      members.reserve(group.size());
      for (size_t idx : group) members.push_back(Num(idx));
      groups.push_back(JsonValue::Array(std::move(members)));
    }
    std::vector<JsonValue::Member> part;
    part.emplace_back("name", JsonValue::String(entry.name));
    part.emplace_back("groups", JsonValue::Array(std::move(groups)));
    part.emplace_back("start_ms", Num(entry.start_ms));
    part.emplace_back("end_ms", Num(entry.end_ms));
    partitions.push_back(JsonValue::Object(std::move(part)));
  }

  std::vector<JsonValue::Member> faults;
  faults.emplace_back("seed", Num(spec.faults.seed));
  faults.emplace_back("drop_rate", Num(spec.faults.drop_rate));
  faults.emplace_back("overload", JsonValue::Object(std::move(overload)));
  faults.emplace_back("partitions", JsonValue::Array(std::move(partitions)));

  std::vector<JsonValue::Member> health;
  health.emplace_back("enabled", JsonValue::Bool(spec.health.enabled));
  health.emplace_back("error_alpha", Num(spec.health.error_alpha));
  health.emplace_back("latency_alpha", Num(spec.health.latency_alpha));
  health.emplace_back("error_threshold", Num(spec.health.error_threshold));
  health.emplace_back("latency_threshold_ms",
                      Num(spec.health.latency_threshold_ms));
  health.emplace_back("cooldown_ms", Num(spec.health.cooldown_ms));
  health.emplace_back("brownout_threshold",
                      Num(spec.health.brownout_threshold));

  std::vector<JsonValue::Member> hedging;
  hedging.emplace_back("enabled", JsonValue::Bool(spec.hedging.enabled));
  hedging.emplace_back("threshold_ms", Num(spec.hedging.threshold_ms));

  std::vector<JsonValue::Member> churn;
  churn.emplace_back("every", Num(spec.churn.every));
  churn.emplace_back("documents", Num(spec.churn.documents));

  std::vector<JsonValue::Member> queries;
  queries.emplace_back("pool", Num(spec.queries.pool));
  queries.emplace_back("executions", Num(spec.queries.executions));
  queries.emplace_back("rounds", Num(spec.queries.rounds));
  queries.emplace_back("min_terms", Num(spec.queries.min_terms));
  queries.emplace_back("max_terms", Num(spec.queries.max_terms));
  queries.emplace_back("band_low", Num(spec.queries.band_low));
  queries.emplace_back("band_high", Num(spec.queries.band_high));
  queries.emplace_back("k", Num(spec.queries.k));
  queries.emplace_back("zipf_s", Num(spec.queries.zipf_s));
  queries.emplace_back("batch_size", Num(spec.queries.batch_size));
  queries.emplace_back("initiator",
                       spec.queries.initiator < 0
                           ? JsonValue::String("round_robin")
                           : Num(spec.queries.initiator));

  std::vector<JsonValue::Member> adversary;
  adversary.emplace_back("fraction", Num(spec.adversary.fraction));
  adversary.emplace_back(
      "behavior",
      JsonValue::String(iqn::PeerBehaviorName(spec.adversary.behavior)));
  adversary.emplace_back("factor", Num(spec.adversary.inflate_factor));
  adversary.emplace_back("seed", Num(spec.adversary.seed));

  std::vector<JsonValue::Member> reputation;
  reputation.emplace_back("enabled", JsonValue::Bool(spec.reputation.enabled));
  reputation.emplace_back("prior", Num(spec.reputation.prior));
  reputation.emplace_back("floor", Num(spec.reputation.floor));
  reputation.emplace_back("sharpness", Num(spec.reputation.sharpness));

  std::vector<JsonValue::Member> root;
  root.emplace_back("name", JsonValue::String(spec.name));
  root.emplace_back("seed", Num(spec.seed));
  root.emplace_back("corpus", JsonValue::Object(std::move(corpus)));
  root.emplace_back("topology", JsonValue::Object(std::move(topology)));
  root.emplace_back("engine", JsonValue::Object(std::move(engine)));
  root.emplace_back("transport", JsonValue::Object(std::move(transport)));
  root.emplace_back("faults", JsonValue::Object(std::move(faults)));
  root.emplace_back("health", JsonValue::Object(std::move(health)));
  root.emplace_back("hedging", JsonValue::Object(std::move(hedging)));
  root.emplace_back("churn", JsonValue::Object(std::move(churn)));
  root.emplace_back("queries", JsonValue::Object(std::move(queries)));
  root.emplace_back("adversary", JsonValue::Object(std::move(adversary)));
  root.emplace_back("reputation", JsonValue::Object(std::move(reputation)));
  return JsonValue::Object(std::move(root));
}

// ---------------------------------------------------------------------
// Execution helpers.

/// Zipf-popularity schedule over the pool, identical to the cache
/// bench's DrawSchedule: query i drawn proportional to 1/(i+1)^s.
std::vector<size_t> DrawSchedule(size_t pool, size_t executions, double s,
                                 uint64_t seed) {
  std::vector<double> cdf(pool);
  double norm = 0.0;
  for (size_t i = 0; i < pool; ++i) {
    norm += std::pow(1.0 / static_cast<double>(i + 1), s);
    cdf[i] = norm;
  }
  std::vector<size_t> schedule;
  schedule.reserve(executions);
  iqn::Rng rng(seed);
  for (size_t i = 0; i < executions; ++i) {
    double u = rng.NextDouble() * norm;
    schedule.push_back(static_cast<size_t>(
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin()));
  }
  return schedule;
}

uint64_t HashDouble(double d, uint64_t chain) {
  uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof(bits));
  return iqn::Hash64(bits, chain);
}

uint64_t CounterValue(const char* name) {
  return iqn::MetricsRegistry::Default().GetCounter(name)->Value();
}

std::string HexU64(uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(v));
  return std::string(buf);
}

}  // namespace

const char* PartitionKindName(PartitionKind kind) {
  switch (kind) {
    case PartitionKind::kSlidingWindow:
      return "sliding_window";
    case PartitionKind::kChooseCombinations:
      return "choose";
  }
  return "unknown";
}

Result<PartitionKind> ParsePartitionKind(const std::string& name) {
  if (name == "sliding_window") return PartitionKind::kSlidingWindow;
  if (name == "choose") return PartitionKind::kChooseCombinations;
  return Status::InvalidArgument("unknown partition '" + name +
                                 "' (sliding_window|choose)");
}

Result<ScenarioSpec> ParseScenarioSpec(const std::string& json_text) {
  IQN_ASSIGN_OR_RETURN(JsonValue root, iqn::ParseJson(json_text));
  if (!root.is_object()) {
    return WrongKind("the document", "an object", root);
  }
  ScenarioSpec spec;
  bool saw_name = false;
  for (const auto& [key, val] : root.members()) {
    if (key == "name") {
      IQN_ASSIGN_OR_RETURN(spec.name, GetString(val, "name"));
      saw_name = true;
    } else if (key == "seed") {
      IQN_ASSIGN_OR_RETURN(spec.seed, GetUint(val, "seed"));
    } else if (key == "corpus") {
      IQN_RETURN_IF_ERROR(ParseCorpus(val, &spec.corpus));
    } else if (key == "topology") {
      IQN_RETURN_IF_ERROR(ParseTopology(val, &spec.topology));
    } else if (key == "engine") {
      IQN_RETURN_IF_ERROR(ParseEngine(val, &spec.engine));
    } else if (key == "transport") {
      IQN_RETURN_IF_ERROR(ParseTransport(val, &spec.transport));
    } else if (key == "faults") {
      IQN_RETURN_IF_ERROR(ParseFaults(val, &spec.faults));
    } else if (key == "health") {
      IQN_RETURN_IF_ERROR(ParseHealth(val, &spec.health));
    } else if (key == "hedging") {
      IQN_RETURN_IF_ERROR(ParseHedging(val, &spec.hedging));
    } else if (key == "churn") {
      IQN_RETURN_IF_ERROR(ParseChurn(val, &spec.churn));
    } else if (key == "queries") {
      IQN_RETURN_IF_ERROR(ParseQueries(val, &spec.queries));
    } else if (key == "adversary") {
      IQN_RETURN_IF_ERROR(ParseAdversary(val, &spec.adversary));
    } else if (key == "reputation") {
      IQN_RETURN_IF_ERROR(ParseReputation(val, &spec.reputation));
    } else {
      return UnknownKey("the top-level object", key,
                        "name|seed|corpus|topology|engine|transport|faults|"
                        "health|hedging|churn|queries|adversary|reputation");
    }
  }
  if (!saw_name || spec.name.empty()) {
    return Status::InvalidArgument(
        "scenario: a nonempty \"name\" is required");
  }
  IQN_RETURN_IF_ERROR(ValidateSpec(spec));
  return spec;
}

std::string EmitScenarioSpec(const ScenarioSpec& spec) {
  return iqn::EmitJson(SpecToJson(spec));
}

Result<ScenarioWorkload> BuildScenarioWorkload(const ScenarioSpec& spec) {
  ScenarioWorkload workload;
  // Workload: corpus -> fragments -> overlapping collections, then the
  // query pool over the generator's vocabulary. Seed derivations match
  // the original benches (pool: seed + 1; Zipf schedule: seed + 77).
  workload.corpus_opts.num_documents = spec.corpus.documents;
  workload.corpus_opts.vocabulary_size = spec.corpus.vocabulary != 0
                                             ? spec.corpus.vocabulary
                                             : spec.corpus.documents / 8;
  workload.corpus_opts.zipf_theta = spec.corpus.zipf_theta;
  workload.corpus_opts.min_document_length = spec.corpus.min_doc_length;
  workload.corpus_opts.max_document_length = spec.corpus.max_doc_length;
  workload.corpus_opts.seed = spec.seed;
  IQN_ASSIGN_OR_RETURN(
      iqn::SyntheticCorpusGenerator gen,
      iqn::SyntheticCorpusGenerator::Create(workload.corpus_opts));
  iqn::Corpus corpus = gen.Generate();
  size_t num_fragments = spec.topology.fragments != 0
                             ? spec.topology.fragments
                             : spec.topology.peers * 2;
  IQN_ASSIGN_OR_RETURN(std::vector<iqn::Corpus> fragments,
                       iqn::SplitIntoFragments(corpus, num_fragments));
  if (spec.topology.partition == PartitionKind::kSlidingWindow) {
    IQN_ASSIGN_OR_RETURN(
        workload.collections,
        iqn::SlidingWindowCollections(fragments, spec.topology.window,
                                      spec.topology.offset,
                                      spec.topology.peers));
  } else {
    IQN_ASSIGN_OR_RETURN(workload.collections,
                         iqn::ChooseCombinationCollections(
                             fragments, spec.topology.subset));
    if (workload.collections.size() != spec.topology.peers) {
      return Status::InvalidArgument(
          "scenario: topology.peers (" +
          std::to_string(spec.topology.peers) +
          ") does not match C(fragments, subset) = " +
          std::to_string(workload.collections.size()));
    }
  }

  iqn::QueryWorkloadOptions q_opts;
  q_opts.num_queries = spec.queries.pool;
  q_opts.min_terms = spec.queries.min_terms;
  q_opts.max_terms = spec.queries.max_terms;
  q_opts.band_low = spec.queries.band_low;
  q_opts.band_high = spec.queries.band_high;
  q_opts.k = spec.queries.k;
  q_opts.seed = spec.seed + 1;
  IQN_ASSIGN_OR_RETURN(workload.pool,
                       iqn::GenerateQueries(gen.vocabulary(), q_opts));

  size_t stream_len = spec.queries.executions != 0
                          ? spec.queries.executions
                          : workload.pool.size();
  if (spec.queries.executions != 0) {
    workload.schedule =
        DrawSchedule(workload.pool.size(), stream_len, spec.queries.zipf_s,
                     spec.seed + 77);
  } else {
    workload.schedule.reserve(stream_len);
    for (size_t i = 0; i < stream_len; ++i) workload.schedule.push_back(i);
  }
  workload.churn_docs = spec.churn.documents != 0
                            ? spec.churn.documents
                            : spec.corpus.documents / 20;
  return workload;
}

EngineOptions EngineOptionsFromSpec(const ScenarioSpec& spec, uint32_t rank) {
  EngineOptions options;
  options.routing.kind = spec.engine.router;
  options.routing.iqn.aggregation = spec.engine.aggregation;
  options.core.synopsis.type = spec.engine.synopsis;
  options.core.synopsis.bits = spec.engine.synopsis_bits;
  options.core.merge = spec.engine.merge;
  options.max_peers = spec.engine.max_peers;
  options.threads = spec.engine.threads;
  options.core.retry.max_attempts = spec.engine.retries;
  options.core.retry.jitter_seed = spec.faults.seed;
  options.core.query_deadline_ms = spec.engine.deadline_ms;
  options.core.cache.enabled = spec.engine.cache;
  options.core.collect_traces = spec.engine.collect_traces;
  options.core.adversary = spec.adversary;
  options.core.reputation = spec.reputation;
  options.core.health = spec.health;
  options.core.hedge = spec.hedging;
  options.core.transport.kind = spec.transport.kind;
  options.core.transport.endpoints = spec.transport.endpoints;
  options.core.transport.rank = rank;
  return options;
}

ScenarioOutcomeWire ScenarioOutcomeWire::FromOutcome(
    const iqn::QueryOutcome& outcome) {
  ScenarioOutcomeWire wire;
  wire.recall = outcome.recall;
  wire.recall_remote_only = outcome.recall_remote_only;
  wire.routing_latency_ms = outcome.routing_latency_ms;
  wire.execution_latency_ms = outcome.execution_latency_ms;
  wire.routing_bytes = outcome.routing_bytes;
  wire.faults_survived = outcome.degradation.faults_survived;
  wire.rpc_retries = outcome.degradation.rpc_retries;
  wire.peers_failed = outcome.degradation.peers_failed;
  wire.peers_replaced = outcome.degradation.peers_replaced;
  wire.open_circuit_skips = outcome.degradation.open_circuit_skips;
  wire.partial = outcome.degradation.partial;
  wire.selected_peer_ids.reserve(outcome.decision.peers.size());
  for (const iqn::SelectedPeer& peer : outcome.decision.peers) {
    wire.selected_peer_ids.push_back(peer.peer_id);
  }
  wire.merged = outcome.execution.merged;
  return wire;
}

iqn::Bytes ScenarioOutcomeWire::Encode() const {
  iqn::ByteWriter writer;
  writer.PutDouble(recall);
  writer.PutDouble(recall_remote_only);
  writer.PutDouble(routing_latency_ms);
  writer.PutDouble(execution_latency_ms);
  writer.PutVarint(routing_bytes);
  writer.PutVarint(faults_survived);
  writer.PutVarint(rpc_retries);
  writer.PutVarint(peers_failed);
  writer.PutVarint(peers_replaced);
  writer.PutVarint(open_circuit_skips);
  writer.PutU8(partial ? 1 : 0);
  writer.PutVarint(selected_peer_ids.size());
  for (uint64_t id : selected_peer_ids) writer.PutU64(id);
  writer.PutVarint(merged.size());
  for (const iqn::ScoredDoc& sd : merged) {
    writer.PutU64(sd.doc);
    writer.PutDouble(sd.score);
  }
  return std::move(writer).Take();
}

Result<ScenarioOutcomeWire> ScenarioOutcomeWire::Decode(
    const iqn::Bytes& bytes) {
  iqn::ByteReader reader(bytes);
  ScenarioOutcomeWire wire;
  IQN_RETURN_IF_ERROR(reader.GetDouble(&wire.recall));
  IQN_RETURN_IF_ERROR(reader.GetDouble(&wire.recall_remote_only));
  IQN_RETURN_IF_ERROR(reader.GetDouble(&wire.routing_latency_ms));
  IQN_RETURN_IF_ERROR(reader.GetDouble(&wire.execution_latency_ms));
  IQN_RETURN_IF_ERROR(reader.GetVarint(&wire.routing_bytes));
  IQN_RETURN_IF_ERROR(reader.GetVarint(&wire.faults_survived));
  IQN_RETURN_IF_ERROR(reader.GetVarint(&wire.rpc_retries));
  IQN_RETURN_IF_ERROR(reader.GetVarint(&wire.peers_failed));
  IQN_RETURN_IF_ERROR(reader.GetVarint(&wire.peers_replaced));
  IQN_RETURN_IF_ERROR(reader.GetVarint(&wire.open_circuit_skips));
  uint8_t partial = 0;
  IQN_RETURN_IF_ERROR(reader.GetU8(&partial));
  wire.partial = partial != 0;
  uint64_t num_peers = 0;
  IQN_RETURN_IF_ERROR(reader.GetVarint(&num_peers));
  IQN_RETURN_IF_ERROR(reader.CheckCountFits(num_peers, sizeof(uint64_t), "selected peers"));
  wire.selected_peer_ids.reserve(num_peers);
  for (uint64_t i = 0; i < num_peers; ++i) {
    uint64_t id = 0;
    IQN_RETURN_IF_ERROR(reader.GetU64(&id));
    wire.selected_peer_ids.push_back(id);
  }
  uint64_t num_merged = 0;
  IQN_RETURN_IF_ERROR(reader.GetVarint(&num_merged));
  IQN_RETURN_IF_ERROR(
      reader.CheckCountFits(num_merged, sizeof(uint64_t) + sizeof(double),
                            "merged docs"));
  wire.merged.reserve(num_merged);
  for (uint64_t i = 0; i < num_merged; ++i) {
    iqn::ScoredDoc sd;
    IQN_RETURN_IF_ERROR(reader.GetU64(&sd.doc));
    IQN_RETURN_IF_ERROR(reader.GetDouble(&sd.score));
    wire.merged.push_back(sd);
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument(
        "scenario outcome: trailing bytes after decode");
  }
  return wire;
}

void ScenarioCursor::Apply(const ScenarioSpec& spec, size_t round,
                           const ScenarioOutcomeWire& o) {
  recall_sum += o.recall;
  remote_sum += o.recall_remote_only;
  // Goodput pays recall only for queries that met the deadline; with no
  // deadline every query is on time by definition.
  const double query_latency_ms =
      o.routing_latency_ms + o.execution_latency_ms;
  if (spec.engine.deadline_ms > 0.0 &&
      query_latency_ms > spec.engine.deadline_ms) {
    ++deadline_misses;
  } else {
    goodput_sum += o.recall;
  }
  round_recall[round] += o.recall;
  routing_bytes += o.routing_bytes;
  faults_injected += o.faults_survived;
  rpc_retries += o.rpc_retries;
  peers_failed += o.peers_failed;
  peers_replaced += o.peers_replaced;
  circuit_open_skips += o.open_circuit_skips;
  if (o.partial) ++partial_queries;
  for (uint64_t peer_id : o.selected_peer_ids) {
    result_fingerprint = iqn::Hash64(peer_id, result_fingerprint);
  }
  for (const iqn::ScoredDoc& sd : o.merged) {
    result_fingerprint = iqn::Hash64(sd.doc, result_fingerprint);
    result_fingerprint = HashDouble(sd.score, result_fingerprint);
  }
  result_fingerprint = HashDouble(o.recall, result_fingerprint);
  sim_time_ms += query_latency_ms;
  ++queries_run;
}

void ScenarioCursor::FinalizeInto(ScenarioResult* result,
                                  size_t stream_len) const {
  result->queries_run = queries_run;
  result->deadline_misses = deadline_misses;
  result->partial_queries = partial_queries;
  result->mean_recall =
      queries_run > 0 ? recall_sum / static_cast<double>(queries_run) : 0.0;
  result->mean_recall_remote =
      queries_run > 0 ? remote_sum / static_cast<double>(queries_run) : 0.0;
  result->mean_goodput =
      queries_run > 0 ? goodput_sum / static_cast<double>(queries_run) : 0.0;
  result->round_recall = round_recall;
  for (double& r : result->round_recall) {
    r /= static_cast<double>(stream_len);
  }
  result->routing_bytes = routing_bytes;
  result->faults_injected = faults_injected;
  result->rpc_retries = rpc_retries;
  result->peers_failed = peers_failed;
  result->peers_replaced = peers_replaced;
  result->circuit_open_skips = circuit_open_skips;
  result->sim_time_ms = sim_time_ms;
  result->result_fingerprint = result_fingerprint;
}

Result<ScenarioResult> RunScenario(const ScenarioSpec& spec) {
  IQN_RETURN_IF_ERROR(ValidateSpec(spec));
  if (spec.transport.endpoints.size() > 1) {
    return Status::InvalidArgument(
        "scenario: multi-rank tcp scenarios run under the minervad "
        "cluster driver (tools/run_cluster.py), not in-process "
        "RunScenario");
  }
  ScenarioResult result;
  result.spec = spec;

  IQN_ASSIGN_OR_RETURN(ScenarioWorkload workload,
                       BuildScenarioWorkload(spec));
  iqn::SyntheticCorpusOptions corpus_opts = workload.corpus_opts;
  std::vector<iqn::Query> pool = std::move(workload.pool);
  std::vector<size_t> schedule = std::move(workload.schedule);
  size_t stream_len = schedule.size();

  EngineOptions options = EngineOptionsFromSpec(spec, /*rank=*/0);
  IQN_ASSIGN_OR_RETURN(
      std::unique_ptr<Engine> engine,
      Engine::Create(options, std::move(workload.collections)));
  Engine& e = *engine;
  IQN_RETURN_IF_ERROR(e.Publish());
  // Meter only the query phase: publish runs fault-free (as in the chaos
  // bench), then the fault plan goes live and all counters restart.
  e.network().ResetStats();
  iqn::MetricsRegistry::Default().Reset();

  // Assemble the query-phase fault plan: message drops plus the
  // overload and partition models, with spec peer indices resolved to
  // network addresses. Installed only when it does anything, so
  // fault-free specs keep the fault-free fast path.
  iqn::FaultPlan plan;
  plan.seed = spec.faults.seed;
  if (spec.faults.drop_rate > 0.0) {
    plan = iqn::FaultPlan::MessageDrop(spec.faults.seed,
                                       spec.faults.drop_rate);
  }
  if (spec.faults.overload.fraction > 0.0 &&
      (spec.faults.overload.utilization > 0.0 ||
       spec.faults.overload.shed_rate > 0.0)) {
    result.overloaded_peers = iqn::SelectPeerFraction(
        kOverloadSelectSeed ^ spec.faults.seed,
        spec.faults.overload.fraction, e.num_peers());
    for (size_t idx : result.overloaded_peers) {
      plan.overload.nodes.push_back(e.peer(idx).address());
    }
    plan.overload.utilization = spec.faults.overload.utilization;
    plan.overload.service_ms = spec.faults.overload.service_ms;
    plan.overload.shed_rate = spec.faults.overload.shed_rate;
  }
  for (const auto& entry : spec.faults.partitions) {
    iqn::PartitionSpec part;
    part.name = entry.name;
    part.start_ms = entry.start_ms;
    part.end_ms = entry.end_ms;
    for (const std::vector<size_t>& group : entry.groups) {
      std::vector<iqn::NodeAddress> nodes;
      nodes.reserve(group.size());
      for (size_t idx : group) nodes.push_back(e.peer(idx).address());
      part.groups.push_back(std::move(nodes));
    }
    plan.partitions.push_back(std::move(part));
  }
  if (plan.active()) e.network().InstallFaultPlan(plan);
  result.adversaries = e.core().adversary_indices();

  size_t churn_docs = workload.churn_docs;
  iqn::DocId next_doc_id =
      10 * static_cast<iqn::DocId>(spec.corpus.documents);
  uint64_t trace_fp = 0;
  ScenarioCursor cursor(spec.queries.rounds);

  for (size_t round = 0; round < spec.queries.rounds; ++round) {
    for (size_t start = 0; start < stream_len;
         start += spec.queries.batch_size) {
      // Churn fires between batches only (churn.every is validated to be
      // a multiple of batch_size, so these are exactly the positions the
      // serial semantics would churn at).
      if (spec.churn.every > 0 && churn_docs > 0 && start > 0 &&
          start % spec.churn.every == 0) {
        size_t p = result.churn_events % e.num_peers();
        iqn::SyntheticCorpusOptions delta_opts = corpus_opts;
        delta_opts.num_documents = churn_docs;
        delta_opts.first_doc_id = next_doc_id;
        delta_opts.vocabulary_seed = corpus_opts.seed;
        delta_opts.seed = spec.seed + 1000 * (result.churn_events + 1);
        next_doc_id += static_cast<iqn::DocId>(churn_docs);
        ++result.churn_events;
        IQN_ASSIGN_OR_RETURN(
            iqn::SyntheticCorpusGenerator delta_gen,
            iqn::SyntheticCorpusGenerator::Create(delta_opts));
        // Republish fault-free, like the initial publish: the fault plan
        // models query-path chaos, and a dropped directory republish
        // would abort the scenario instead of degrading a query. Traffic
        // is still metered.
        if (plan.active()) {
          e.network().InstallFaultPlan(iqn::FaultPlan{});
        }
        IQN_RETURN_IF_ERROR(e.peer(p).AddDocuments(delta_gen.Generate(),
                                                   /*republish=*/true));
        e.RebuildReferenceIndex();
        if (plan.active()) {
          e.network().InstallFaultPlan(plan);
        }
      }

      size_t count = std::min(spec.queries.batch_size, stream_len - start);
      std::vector<Engine::BatchQuery> batch;
      batch.reserve(count);
      for (size_t j = 0; j < count; ++j) {
        size_t i = start + j;
        Engine::BatchQuery item;
        item.initiator_index =
            spec.queries.initiator >= 0
                ? static_cast<size_t>(spec.queries.initiator)
                : i % e.num_peers();
        item.query = pool[schedule[i]];
        batch.push_back(std::move(item));
      }
      std::vector<iqn::QueryOutcome> outcomes;
      IQN_RETURN_IF_ERROR(e.RunQueryBatch(batch, &outcomes));
      for (const iqn::QueryOutcome& o : outcomes) {
        cursor.Apply(spec, round, ScenarioOutcomeWire::FromOutcome(o));
        if (spec.engine.collect_traces) {
          std::string text;
          IQN_RETURN_IF_ERROR(e.Explain(o, &text));
          trace_fp = iqn::HashString(text, trace_fp);
          result.traces.push_back(o.trace);
        }
      }
    }
  }

  cursor.FinalizeInto(&result, stream_len);
  result.messages = e.network().stats().messages;
  result.bytes = e.network().stats().bytes;
  result.hedges = e.network().stats().hedges;
  result.hedges_won = e.network().stats().hedges_won;
  result.cache_hits = CounterValue("cache.hits");
  result.cache_misses = CounterValue("cache.misses");
  result.cache_invalidations = CounterValue("cache.invalidations");
  result.trace_fingerprint = trace_fp;
  return result;
}

std::string ScenarioResultToJson(const ScenarioResult& result,
                                 bool include_spec) {
  std::vector<JsonValue::Member> root;
  root.emplace_back("scenario", JsonValue::String(result.spec.name));
  if (include_spec) {
    root.emplace_back("spec", SpecToJson(result.spec));
  }
  root.emplace_back("queries_run", Num(result.queries_run));
  root.emplace_back("churn_events", Num(result.churn_events));
  std::vector<JsonValue> adversaries;
  adversaries.reserve(result.adversaries.size());
  for (size_t idx : result.adversaries) adversaries.push_back(Num(idx));
  root.emplace_back("adversaries", JsonValue::Array(std::move(adversaries)));
  std::vector<JsonValue> overloaded;
  overloaded.reserve(result.overloaded_peers.size());
  for (size_t idx : result.overloaded_peers) overloaded.push_back(Num(idx));
  root.emplace_back("overloaded_peers",
                    JsonValue::Array(std::move(overloaded)));
  root.emplace_back("mean_recall", Num(result.mean_recall));
  root.emplace_back("mean_recall_remote", Num(result.mean_recall_remote));
  root.emplace_back("mean_goodput", Num(result.mean_goodput));
  root.emplace_back("deadline_misses", Num(result.deadline_misses));
  std::vector<JsonValue> rounds;
  rounds.reserve(result.round_recall.size());
  for (double r : result.round_recall) rounds.push_back(Num(r));
  root.emplace_back("round_recall", JsonValue::Array(std::move(rounds)));
  root.emplace_back("messages", Num(result.messages));
  root.emplace_back("bytes", Num(result.bytes));
  root.emplace_back("routing_bytes", Num(result.routing_bytes));
  root.emplace_back("faults_injected", Num(result.faults_injected));
  root.emplace_back("rpc_retries", Num(result.rpc_retries));
  root.emplace_back("peers_failed", Num(result.peers_failed));
  root.emplace_back("peers_replaced", Num(result.peers_replaced));
  root.emplace_back("partial_queries", Num(result.partial_queries));
  root.emplace_back("cache_hits", Num(result.cache_hits));
  root.emplace_back("cache_misses", Num(result.cache_misses));
  root.emplace_back("cache_invalidations", Num(result.cache_invalidations));
  root.emplace_back("hedges", Num(result.hedges));
  root.emplace_back("hedges_won", Num(result.hedges_won));
  root.emplace_back("circuit_open_skips", Num(result.circuit_open_skips));
  root.emplace_back("sim_time_ms", Num(result.sim_time_ms));
  // Hex strings: fingerprints use all 64 bits and must survive the
  // number model's 2^53 exactness bound untouched.
  root.emplace_back("result_fingerprint",
                    JsonValue::String(HexU64(result.result_fingerprint)));
  root.emplace_back("trace_fingerprint",
                    JsonValue::String(HexU64(result.trace_fingerprint)));
  return iqn::EmitJson(JsonValue::Object(std::move(root)));
}

}  // namespace minerva

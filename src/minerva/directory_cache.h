// Versioned per-initiator cache of directory PeerLists (ISSUE 5).
//
// Directory contents change only when a peer publishes, re-posts, or
// churns (the paper's lazy-refresh directory, Sec. 4) — so instead of
// TTL guessing, every cached PeerList carries the publish-version stamp
// (dht/kv_version.h) of its term's DHT key at fill time. A lookup
// serves the copy only while the stamp still matches the live counter;
// any applied write to the key makes the copy invisible immediately.
// Cached Posts also carry pre-materialized decoded synopses
// (Post::SharedSynopsis memos), so a hit skips wire-decode entirely.
// A simulated-time TTL mode (CacheConfig::ttl_ms) exists on top for
// staleness experiments; the logical clock advances only through
// AdvanceTime between query rounds, never during a query.
//
// Determinism contract (the cache runs inside the batch engine, which
// promises bit-identical outcomes across 1/2/8 threads):
//  * Queries never write the committed state. Each query opens a
//    Session; fills are buffered in the session and applied by Commit,
//    which the engine calls at deterministic points only — after a
//    serial RunQuery, or in batch order after RunQueryBatch joins its
//    workers. Hit/miss patterns inside a batch therefore depend only on
//    pre-batch committed state, not on worker scheduling.
//  * A hit returns bytes bit-identical to what a fresh fetch would
//    return (same version = same stored value), so query RESULTS are
//    identical with the cache on or off; only traffic differs.
//  * Eviction (max_terms) is by deterministic fill order, and the
//    hit/miss counters are order-independent integer sums.

#ifndef IQN_MINERVA_DIRECTORY_CACHE_H_
#define IQN_MINERVA_DIRECTORY_CACHE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dht/kv_version.h"
#include "minerva/post.h"
#include "util/mem_stats.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace iqn {

struct CacheConfig {
  /// Master switch; a disabled cache never serves and never fills.
  bool enabled = false;
  /// Max cached terms per initiator; 0 = unbounded. Over-full commits
  /// evict the oldest-filled terms (deterministic order).
  size_t max_terms = 0;
  /// Simulated-time TTL for staleness experiments; 0 disables the mode
  /// (version stamps alone decide validity). The clock only moves via
  /// DirectoryCache::AdvanceTime.
  double ttl_ms = 0.0;
};

/// One peer's cache of fetched PeerLists, keyed by term.
class DirectoryCache {
 public:
  /// `versions` is the engine-wide publish-version map (shared by every
  /// DhtStore); must outlive the cache.
  DirectoryCache(const CacheConfig& config, const KvVersionMap* versions);

  DirectoryCache(const DirectoryCache&) = delete;
  DirectoryCache& operator=(const DirectoryCache&) = delete;
  ~DirectoryCache();

  /// A query's window onto the cache: reads committed entries, buffers
  /// its own fills. Many sessions may read one cache concurrently; the
  /// committed state is frozen while any session is open.
  class Session {
   public:
    explicit Session(DirectoryCache* cache) : cache_(cache) {}

    Session(const Session&) = delete;
    Session& operator=(const Session&) = delete;

    /// The cached PeerList for (term, limit), or nullptr on miss
    /// (absent, fetched under a different truncation limit, stale
    /// version, or expired TTL). Counts the hit/miss. Takes the cache's
    /// visibility capability shared: many batch workers may look up
    /// concurrently, none can write committed state.
    const std::vector<Post>* Lookup(const std::string& term, size_t limit)
        IQN_EXCLUDES(cache_->mu_);

    /// Buffers a freshly fetched PeerList for commit, stamped with the
    /// term key's current publish version. Pre-materializes the posts'
    /// synopsis decode memos so later hits share them. Returns the
    /// buffered (memoized) copy so the caller can group from it without
    /// decoding again — or nullptr when the cache is disabled (use the
    /// fetched list directly). The pointer stays valid until Commit.
    const std::vector<Post>* Fill(const std::string& term, size_t limit,
                                  const std::vector<Post>& posts);

    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }

   private:
    friend class DirectoryCache;

    struct PendingFill {
      uint64_t version = 0;
      size_t limit = 0;
      std::vector<Post> posts;
    };

    DirectoryCache* cache_;
    std::map<std::string, PendingFill> pending_;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
  };

  /// Applies a session's buffered fills to the committed state. Serial
  /// phases only (after a serial query, or in batch order after the
  /// batch joins). Counts an invalidation for every replaced entry that
  /// had gone stale, then refreshes the hit-ratio gauge. Takes the
  /// visibility capability exclusively: the analyzer proves no Session
  /// lookup can observe a half-applied commit.
  void Commit(Session* session) IQN_EXCLUDES(mu_);

  /// Advances the simulated TTL clock (no-op relevance when ttl_ms = 0).
  /// Serial phases only.
  void AdvanceTime(double delta_ms) IQN_EXCLUDES(mu_);
  double now_ms() const IQN_EXCLUDES(mu_) {
    ReaderMutexLock lock(&mu_);
    return now_ms_;
  }

  /// Drops every committed entry (counts no invalidations).
  void Clear() IQN_EXCLUDES(mu_);

  size_t size() const IQN_EXCLUDES(mu_) {
    ReaderMutexLock lock(&mu_);
    return entries_.size();
  }
  const CacheConfig& config() const { return config_; }

  /// Bytes of committed entries this cache has charged to the
  /// mem.minerva.directory_cache tracker (terms, post payloads).
  int64_t AccountedBytes() const IQN_EXCLUDES(mu_) {
    ReaderMutexLock lock(&mu_);
    return accounted_bytes_;
  }

 private:
  struct Entry {
    uint64_t version = 0;
    double filled_at_ms = 0.0;
    uint64_t fill_seq = 0;  // global fill order, drives eviction
    size_t limit = 0;
    std::vector<Post> posts;
  };

  /// Approximate held bytes for one committed entry: struct payloads
  /// plus every post's term/synopsis/histogram bytes (decoded synopsis
  /// memos are accounted separately, under synopses.decoded).
  static int64_t EntryBytes(const std::string& term, const Entry& entry);
  /// Adjusts both the local balance and the process-wide tracker; every
  /// committed-state mutation pairs with exactly one call.
  void AccountLocked(int64_t delta) IQN_REQUIRES(mu_) {
    accounted_bytes_ += delta;
    mem_->Charge(delta);
  }

  CacheConfig config_;
  const KvVersionMap* versions_;
  MemTracker* mem_;
  int64_t accounted_bytes_ IQN_GUARDED_BY(mu_) = 0;

  // The two-phase visibility rule as a capability: committed state is
  // readable under mu_ shared (Session::Lookup — any number of batch
  // workers) and writable only under mu_ exclusive (Commit/AdvanceTime/
  // Clear — the engine's serial phases). The engine's discipline makes
  // the writer lock uncontended in practice; the annotations make a
  // query-path write a compile error on Clang rather than a TSan race.
  mutable SharedMutex mu_;
  double now_ms_ IQN_GUARDED_BY(mu_) = 0.0;
  uint64_t next_fill_seq_ IQN_GUARDED_BY(mu_) = 0;
  std::map<std::string, Entry> entries_ IQN_GUARDED_BY(mu_);

  // Cached registry instruments (process-wide, shared across caches);
  // the ratio gauge is recomputed from the global counters at commit.
  class Counter* m_hits_;
  class Counter* m_misses_;
  class Counter* m_invalidations_;
  class Counter* m_evictions_;
  class Gauge* m_hit_ratio_;
};

}  // namespace iqn

#endif  // IQN_MINERVA_DIRECTORY_CACHE_H_

// CORI collection selection (Callan et al., SIGIR 1995) — the quality
// component of IQN and the paper's main baseline (Sec. 5.1, Sec. 8).
//
//   s_{i,t} = alpha + (1 - alpha) * T_{i,t} * I_{i,t}
//   T_{i,t} = cdf_{i,t} / (cdf_{i,t} + 50 + 150 * |V_i| / |V_avg|)
//   I_{i,t} = log((np + 0.5) / cf_t) / log(np + 1)
//   s_i    = sum_{t in Q} s_{i,t} / |Q|
//
// with cdf the term's document frequency in collection i, |V_i| the
// peer's term-space size, cf_t the number of peers holding t, np the
// number of peers, and alpha = 0.4. |V_avg| is approximated by the
// average over the collections found in the PeerLists (Sec. 5.1), since
// the true all-peers average is not obtainable in a P2P system.

#ifndef IQN_MINERVA_CORI_H_
#define IQN_MINERVA_CORI_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "minerva/post.h"

namespace iqn {

struct CoriParams {
  double alpha = 0.4;
  double df_constant = 50.0;
  double vocab_scale = 150.0;
};

/// Per-term statistics derived from a term's PeerList.
struct CoriTermStats {
  /// cf_t: number of peers whose PeerList entry exists for the term.
  uint64_t collection_frequency = 0;
  /// |V_avg| approximation: mean term-space size over the PeerList.
  double avg_term_space = 0.0;
};

CoriTermStats ComputeCoriTermStats(const std::vector<Post>& peer_list);

/// s_{i,t} for one peer-term pair. `post` may be nullptr when the peer
/// holds no documents for the term (cdf = 0 -> T = 0 -> score = alpha).
double CoriTermScore(const Post* post, const CoriTermStats& stats,
                     size_t num_peers, const CoriParams& params = {});

/// s_i for a multi-term query: the mean of the per-term scores over all
/// query terms. `posts_by_term` holds this peer's post for each query
/// term it covers; `stats_by_term` must cover every query term.
double CoriCollectionScore(const std::vector<std::string>& query_terms,
                           const std::map<std::string, Post>& posts_by_term,
                           const std::map<std::string, CoriTermStats>& stats_by_term,
                           size_t num_peers, const CoriParams& params = {});

}  // namespace iqn

#endif  // IQN_MINERVA_CORI_H_

#include "minerva/internal/query_processor.h"

#include <limits>

#include "net/rpc_policy.h"
#include "util/trace.h"

namespace iqn {

namespace {

// Callan's merge constant.
constexpr double kBeta = 0.4;

}  // namespace

double QueryProcessor::CoriMergeWeight(double collection_score,
                                       double mean_score) {
  if (mean_score <= 0.0) return 1.0;
  // Callan's heuristic up to a uniform 1/(1+beta) factor, which cannot
  // change any ranking; omitting it makes the mean collection neutral
  // (weight exactly 1).
  double weight = 1.0 + kBeta * (collection_score - mean_score) / mean_score;
  // A floor keeps a very low-quality (but novelty-selected) peer's
  // results mergeable instead of zeroing them out.
  return weight < 0.1 ? 0.1 : weight;
}

Result<QueryExecution> QueryProcessor::Execute(
    const Query& query, const RoutingDecision& decision) const {
  return ExecuteWithReplacement(query, decision, nullptr, nullptr);
}

Result<QueryExecution> QueryProcessor::ExecuteWithReplacement(
    const Query& query, const RoutingDecision& decision,
    const PeerReplacer& replacer, DegradationReport* report) const {
  QueryExecution execution;
  execution.local_results = initiator_->ExecuteLocal(query);

  // CORI merge weights against the mean collection score of the
  // ORIGINALLY selected peers. Replacements are weighted against the
  // same mean: the selection context the weights normalize within is
  // the routing decision, not the post-failure survivor set.
  const bool cori =
      merge_ == MergeStrategy::kCoriNormalized && !decision.peers.empty();
  double mean_quality = 0.0;
  if (cori) {
    for (const SelectedPeer& peer : decision.peers) {
      mean_quality += peer.quality;
    }
    mean_quality /= static_cast<double>(decision.peers.size());
  }

  Bytes encoded = EncodeQuery(query);
  Transport* network = initiator_->node()->network();

  // The worklist starts as the routing decision and grows by one entry
  // per repaired failure; `known` holds every peer id selected or
  // appended, so a replacement is always a fresh peer.
  std::vector<SelectedPeer> worklist = decision.peers;
  std::vector<uint64_t> known;
  known.reserve(worklist.size());
  for (const SelectedPeer& peer : worklist) known.push_back(peer.peer_id);

  size_t successes = 0;
  size_t replacements_succeeded = 0;
  for (size_t i = 0; i < worklist.size(); ++i) {
    // Copy: appending replacements may reallocate the worklist.
    const SelectedPeer peer = worklist[i];
    ScopedSpan span("execute.peer");
    if (span.active()) {
      span.AttrUint("peer", peer.peer_id);
      if (i >= decision.peers.size()) span.Attr("role", "replacement");
    }
    std::vector<ScoredDoc> scored;
    bool answered = false;
    Result<Bytes> response = CallRpc(network, initiator_->address(),
                                     peer.address, "peer.query", encoded);
    if (response.ok()) {
      Result<std::vector<ScoredDoc>> results = DecodeResults(response.value());
      if (results.ok()) {
        scored = std::move(results).value();
        answered = true;
      } else if (span.active()) {
        span.Attr("failure", "decode");
      }
    } else if (span.active()) {
      span.Attr("failure", StatusCodeName(response.status().code()));
    }
    if (answered) {
      span.AttrUint("results", scored.size());
      ++successes;
      if (i >= decision.peers.size()) ++replacements_succeeded;
      if (cori) {
        double weight = CoriMergeWeight(peer.quality, mean_quality);
        if (weight != 1.0) {
          for (ScoredDoc& sd : scored) sd.score *= weight;
        }
      }
      execution.per_peer_results.push_back(std::move(scored));
      continue;
    }
    ++execution.failed_peers;
    execution.per_peer_results.emplace_back();
    // Select-Best-Peer re-entry: ask for the next-best live candidate,
    // but only while the query's deadline budget has room for it.
    if (replacer != nullptr && !RpcScope::DeadlineExpired()) {
      std::optional<SelectedPeer> next = replacer(known);
      if (next.has_value()) {
        if (span.active()) span.AttrUint("replaced_by", next->peer_id);
        known.push_back(next->peer_id);
        worklist.push_back(*next);
      }
    }
  }

  if (report != nullptr) {
    report->peers_failed += execution.failed_peers;
    report->peers_replaced += replacements_succeeded;
    if (successes < decision.peers.size()) report->partial = true;
  }
  // The final worklist IS the attempted-peer record; per_peer_results
  // grew in lockstep with it above.
  execution.attempted = std::move(worklist);

  std::vector<std::vector<ScoredDoc>> all_lists = execution.per_peer_results;
  all_lists.push_back(execution.local_results);
  {
    ScopedSpan merge_span("merge");
    execution.merged = MergeResults(all_lists, query.k);
    // The untruncated distinct-result list, for recall measurement.
    execution.all_distinct =
        MergeResults(all_lists, std::numeric_limits<size_t>::max());
    merge_span.AttrUint("lists", all_lists.size());
    merge_span.AttrUint("distinct", execution.all_distinct.size());
  }
  return execution;
}

}  // namespace iqn

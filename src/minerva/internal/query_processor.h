// INTERNAL header — not part of the public include set. Outside code
// executes queries through minerva::Engine (minerva/api.h); the public
// result types (MergeStrategy, QueryExecution) live in
// minerva/execution.h.
//
// Query execution phase: after routing has chosen the peers, forward the
// query to each of them, collect their top-k lists, and merge.
//
// Merging has a classic distributed-IR subtlety: peers score with LOCAL
// statistics (their own idf), so raw scores from different peers are not
// directly comparable. The CORI-normalized strategy applies Callan's
// standard merge heuristic, weighting each peer's scores by how its
// collection score deviates from the mean of the selected collections:
//   weight_i = 1 + kBeta * (C_i - C_mean) / C_mean
// (Callan's formula up to a uniform scale factor that cannot affect any
// ranking; this normalization keeps the mean collection neutral).

#ifndef IQN_MINERVA_INTERNAL_QUERY_PROCESSOR_H_
#define IQN_MINERVA_INTERNAL_QUERY_PROCESSOR_H_

#include <functional>
#include <optional>
#include <vector>

#include "minerva/degradation.h"
#include "minerva/execution.h"
#include "minerva/peer.h"
#include "minerva/routing.h"
#include "util/status.h"

namespace iqn {

class QueryProcessor {
 public:
  /// Supplies the next-best replacement when a selected peer fails mid
  /// execution: called with every peer id already selected or attempted
  /// (a replacement must be a fresh peer), returns the peer to try
  /// instead, or nullopt when no candidate remains. The engine backs
  /// this with a Select-Best-Peer re-entry over the surviving
  /// candidates.
  using PeerReplacer = std::function<std::optional<SelectedPeer>(
      const std::vector<uint64_t>& attempted_peer_ids)>;

  /// `initiator` must outlive the processor.
  explicit QueryProcessor(Peer* initiator,
                          MergeStrategy merge = MergeStrategy::kRawScores)
      : initiator_(initiator), merge_(merge) {}

  /// Runs the query at the initiator and at every routed peer. Peer
  /// failures are tolerated (counted, not fatal).
  Result<QueryExecution> Execute(const Query& query,
                                 const RoutingDecision& decision) const;

  /// Execute with graceful degradation: each failed peer is replaced
  /// via `replacer` (when set) while the ambient RpcScope deadline has
  /// budget left, and repair accounting lands in `report` (when set:
  /// peers_failed, peers_replaced, partial). With a null replacer and
  /// no failures this is exactly Execute.
  Result<QueryExecution> ExecuteWithReplacement(
      const Query& query, const RoutingDecision& decision,
      const PeerReplacer& replacer, DegradationReport* report) const;

  /// Callan's merge weight for a collection score C_i given the mean
  /// collection score of the selected peers (exposed for tests).
  static double CoriMergeWeight(double collection_score, double mean_score);

 private:
  Peer* initiator_;
  MergeStrategy merge_;
};

}  // namespace iqn

#endif  // IQN_MINERVA_INTERNAL_QUERY_PROCESSOR_H_

// INTERNAL header — not part of the public include set. Outside code
// configures IQN via minerva::RoutingSpec (minerva/api.h); the IqnOptions
// knobs themselves are public and live in minerva/routing.h.
//
// The IQN (Integrated Quality Novelty) routing method — the paper's core
// contribution (Sec. 5, Sec. 6, Sec. 7.1).
//
// IQN builds the query execution plan iteratively. Starting from a
// reference synopsis seeded with the initiator's local query result, each
// iteration performs:
//   Select-Best-Peer:   rank the remaining candidates by
//                       quality(CORI) x novelty(synopsis vs reference)
//                       and pick the best;
//   Aggregate-Synopses: union the chosen peer's synopsis into the
//                       reference, so the next iteration measures novelty
//                       against everything already covered.
// The loop stops at max_peers, or earlier when the estimated size of the
// covered result space reaches min_estimated_results (Sec. 5.1's
// "estimated number of (good) documents" criterion).
//
// Multi-keyword queries use either per-peer or per-term aggregation
// (Sec. 6); with use_histograms the novelty estimate becomes the
// score-weighted histogram novelty of Sec. 7.1.

#ifndef IQN_MINERVA_INTERNAL_IQN_ROUTER_H_
#define IQN_MINERVA_INTERNAL_IQN_ROUTER_H_

#include <string>

#include "minerva/internal/router.h"

namespace iqn {

class IqnRouter final : public Router {
 public:
  explicit IqnRouter(IqnOptions options = {}) : options_(options) {}

  std::string name() const override;
  Result<RoutingDecision> Route(const RoutingInput& input) const override;

  const IqnOptions& options() const { return options_; }

 private:
  Result<RoutingDecision> RoutePerPeer(const RoutingInput& input) const;
  Result<RoutingDecision> RoutePerTerm(const RoutingInput& input) const;
  Result<RoutingDecision> RouteHistogram(const RoutingInput& input) const;

  IqnOptions options_;
};

}  // namespace iqn

#endif  // IQN_MINERVA_INTERNAL_IQN_ROUTER_H_

// INTERNAL header — not part of the public include set. Outside code
// (examples/, bench/, tools/) selects routers through minerva::RoutingSpec
// in the minerva/api.h facade; the public data model lives in
// minerva/routing.h.
//
// Query routing: choosing which peers to forward a query to.
//
// All routers consume the same RoutingInput — the PeerLists fetched from
// the directory plus the initiator's local context — and produce a ranked
// RoutingDecision. Implemented here:
//  * RandomRouter        — the sanity floor;
//  * CoriRouter          — quality-only CORI ranking, the paper's main
//                          baseline (Sec. 8);
//  * SimpleOverlapRouter — the authors' prior SIGIR'05 method: one-shot
//                          quality x novelty-against-the-initiator, no
//                          iterative synopsis aggregation;
// IqnRouter (internal/iqn_router.h) is the paper's contribution.

#ifndef IQN_MINERVA_INTERNAL_ROUTER_H_
#define IQN_MINERVA_INTERNAL_ROUTER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "minerva/cori.h"
#include "minerva/routing.h"
#include "util/status.h"

namespace iqn {

class Router {
 public:
  virtual ~Router() = default;
  virtual std::string name() const = 0;
  virtual Result<RoutingDecision> Route(const RoutingInput& input) const = 0;

 protected:
  static Status ValidateInput(const RoutingInput& input);
};

/// Uniformly random peer choice (deterministic per query content).
class RandomRouter final : public Router {
 public:
  explicit RandomRouter(uint64_t seed = 1) : seed_(seed) {}
  std::string name() const override { return "Random"; }
  Result<RoutingDecision> Route(const RoutingInput& input) const override;

 private:
  uint64_t seed_;
};

/// Quality-only CORI ranking.
class CoriRouter final : public Router {
 public:
  explicit CoriRouter(CoriParams params = {}) : params_(params) {}
  std::string name() const override { return "CORI"; }
  Result<RoutingDecision> Route(const RoutingInput& input) const override;

 private:
  CoriParams params_;
};

/// The prior overlap-aware method: rank once by quality x novelty where
/// novelty is measured against the initiator's own collection only — no
/// Aggregate-Synopses step, so two mutually redundant peers can both be
/// selected (the failure mode IQN fixes).
class SimpleOverlapRouter final : public Router {
 public:
  explicit SimpleOverlapRouter(CoriParams params = {}) : params_(params) {}
  std::string name() const override { return "SimpleOverlap"; }
  Result<RoutingDecision> Route(const RoutingInput& input) const override;

 private:
  CoriParams params_;
};

/// Shared helper: CORI quality per candidate, from the candidates' posts.
std::map<uint64_t, double> ComputeCandidateQualities(
    const RoutingInput& input, const CoriParams& params);

/// Shared helper: per-term CoriTermStats assembled from the candidates.
std::map<std::string, CoriTermStats> ComputeQueryTermStats(
    const RoutingInput& input);

}  // namespace iqn

#endif  // IQN_MINERVA_INTERNAL_ROUTER_H_

#include "minerva/internal/router.h"

#include <algorithm>

#include "minerva/aggregation.h"
#include "synopses/estimators.h"
#include "synopses/reference_synopsis.h"
#include "util/hash.h"
#include "util/random.h"

namespace iqn {

Status Router::ValidateInput(const RoutingInput& input) {
  if (input.query == nullptr || input.candidates == nullptr) {
    return Status::InvalidArgument("routing input missing query/candidates");
  }
  if (input.query->terms.empty()) {
    return Status::InvalidArgument("empty query");
  }
  if (input.max_peers == 0) {
    return Status::InvalidArgument("max_peers must be positive");
  }
  return Status::OK();
}

std::map<std::string, CoriTermStats> ComputeQueryTermStats(
    const RoutingInput& input) {
  // Reassemble each term's PeerList from the candidates' posts; the
  // directory delivered exactly these entries.
  std::map<std::string, std::vector<Post>> peer_lists;
  for (const CandidatePeer& cand : *input.candidates) {
    for (const auto& [term, post] : cand.posts) {
      peer_lists[term].push_back(post);
    }
  }
  std::map<std::string, CoriTermStats> stats;
  for (const std::string& term : input.query->terms) {
    auto it = peer_lists.find(term);
    stats[term] = it == peer_lists.end() ? CoriTermStats{}
                                         : ComputeCoriTermStats(it->second);
  }
  return stats;
}

std::map<uint64_t, double> ComputeCandidateQualities(
    const RoutingInput& input, const CoriParams& params) {
  std::map<std::string, CoriTermStats> stats = ComputeQueryTermStats(input);
  std::map<uint64_t, double> qualities;
  for (const CandidatePeer& cand : *input.candidates) {
    qualities[cand.peer_id] =
        CoriCollectionScore(input.query->terms, cand.posts, stats,
                            input.total_peers, params);
  }
  return qualities;
}

// ------------------------------------------------------------ RandomRouter

Result<RoutingDecision> RandomRouter::Route(const RoutingInput& input) const {
  IQN_RETURN_IF_ERROR(ValidateInput(input));
  // Deterministic per query: seed the shuffle with the query content.
  uint64_t h = seed_;
  for (const auto& term : input.query->terms) h = HashString(term, h);
  Rng rng(h);

  const auto& candidates = *input.candidates;
  size_t take = std::min(input.max_peers, candidates.size());
  std::vector<size_t> picks =
      rng.SampleWithoutReplacement(candidates.size(), take);

  RoutingDecision decision;
  for (size_t idx : picks) {
    const CandidatePeer& cand = candidates[idx];
    decision.peers.push_back(SelectedPeer{cand.peer_id, cand.address,
                                          /*quality=*/0.0, /*novelty=*/0.0,
                                          /*combined=*/0.0});
  }
  return decision;
}

// -------------------------------------------------------------- CoriRouter

Result<RoutingDecision> CoriRouter::Route(const RoutingInput& input) const {
  IQN_RETURN_IF_ERROR(ValidateInput(input));
  std::map<uint64_t, double> qualities =
      ComputeCandidateQualities(input, params_);

  std::vector<const CandidatePeer*> order;
  for (const CandidatePeer& cand : *input.candidates) order.push_back(&cand);
  std::stable_sort(order.begin(), order.end(),
                   [&](const CandidatePeer* a, const CandidatePeer* b) {
                     double qa = qualities[a->peer_id];
                     double qb = qualities[b->peer_id];
                     if (qa != qb) return qa > qb;
                     return a->peer_id < b->peer_id;
                   });

  RoutingDecision decision;
  for (const CandidatePeer* cand : order) {
    if (decision.peers.size() >= input.max_peers) break;
    double q = qualities[cand->peer_id];
    decision.peers.push_back(
        SelectedPeer{cand->peer_id, cand->address, q, 0.0, q});
  }
  return decision;
}

// ----------------------------------------------------- SimpleOverlapRouter

Result<RoutingDecision> SimpleOverlapRouter::Route(
    const RoutingInput& input) const {
  IQN_RETURN_IF_ERROR(ValidateInput(input));
  if (input.synopsis_config == nullptr) {
    return Status::InvalidArgument("SimpleOverlap needs a synopsis config");
  }
  std::map<uint64_t, double> qualities =
      ComputeCandidateQualities(input, params_);

  // Build the initiator-collection synopsis once; novelty of every
  // candidate is measured against it, never against other candidates.
  IQN_ASSIGN_OR_RETURN(std::unique_ptr<SetSynopsis> own,
                       input.synopsis_config->MakeEmpty());
  double own_cardinality = 0.0;
  if (input.local_result_docs != nullptr) {
    for (DocId id : *input.local_result_docs) own->Add(id);
    own_cardinality = static_cast<double>(input.local_result_docs->size());
  }

  struct Ranked {
    const CandidatePeer* cand;
    double quality;
    double novelty;
  };
  std::vector<Ranked> ranked;
  for (const CandidatePeer& cand : *input.candidates) {
    // Combine the candidate's per-term synopses for the query (memoized
    // decode: re-entry routing and cached posts skip the wire bytes).
    std::vector<const SetSynopsis*> views;
    std::vector<uint64_t> lens;
    for (const std::string& term : input.query->terms) {
      auto it = cand.posts.find(term);
      if (it == cand.posts.end()) continue;
      Result<std::shared_ptr<const SetSynopsis>> syn =
          it->second.SharedSynopsis();
      if (!syn.ok()) continue;
      views.push_back(syn.value().get());
      lens.push_back(it->second.list_length);
    }
    double novelty = 0.0;
    if (!views.empty()) {
      Result<std::unique_ptr<SetSynopsis>> combined =
          CombinePerTermSynopses(views, input.query->mode);
      if (combined.ok()) {
        double card =
            CombinedCardinality(*combined.value(), lens, input.query->mode);
        Result<double> nov =
            EstimateNovelty(*own, own_cardinality, *combined.value(), card);
        if (nov.ok()) novelty = nov.value();
      }
    }
    ranked.push_back(Ranked{&cand, qualities[cand.peer_id], novelty});
  }

  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const Ranked& a, const Ranked& b) {
                     double ca = a.quality * a.novelty;
                     double cb = b.quality * b.novelty;
                     if (ca != cb) return ca > cb;
                     return a.cand->peer_id < b.cand->peer_id;
                   });

  RoutingDecision decision;
  for (const Ranked& r : ranked) {
    if (decision.peers.size() >= input.max_peers) break;
    decision.peers.push_back(SelectedPeer{r.cand->peer_id, r.cand->address,
                                          r.quality, r.novelty,
                                          r.quality * r.novelty});
  }
  return decision;
}

}  // namespace iqn

#include "minerva/internal/iqn_router.h"

#include <algorithm>
#include <functional>
#include <optional>
#include <sstream>

#include "net/health.h"
#include "minerva/reputation.h"
#include "synopses/estimators.h"
#include "synopses/reference_synopsis.h"
#include "util/check.h"
#include "util/json.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace iqn {

namespace {

/// Greedy selection loop shared by all three IQN variants. `novelty_of`
/// estimates a candidate's novelty against the current reference state;
/// `absorb` folds the chosen candidate in; `covered` reports the current
/// estimated result cardinality.
///
/// Thread-safety contract: `novelty_of` must be safe to call concurrently
/// for distinct candidates (it is invoked from ParallelFor when the input
/// carries a pool) — in practice, read-only against the reference state.
/// `absorb` and `covered` are always called from the loop thread only.
struct LoopCallbacks {
  std::function<Result<double>(size_t candidate_index)> novelty_of;
  std::function<Status(size_t candidate_index)> absorb;
  std::function<double()> covered;
};

// Per-candidate work (synopsis decode, novelty estimation) parallelizes
// over candidates when the candidate set is large enough to amortize the
// dispatch. Small sets stay serial — same results either way, the
// thresholds only gate where the crossover pays off.
constexpr size_t kParallelMinCandidates = 16;
constexpr size_t kCandidateGrain = 8;

/// Runs body(lo, hi) over [0, count): through the input's pool when one
/// is set and the range is worth splitting, else inline as one chunk.
/// Chunk boundaries and per-index work are identical either way, so the
/// two paths are observably equivalent (the determinism tests pin this).
Status ForEachCandidate(const RoutingInput& input, size_t count,
                        const std::function<Status(size_t, size_t)>& body) {
  if (input.pool != nullptr && count >= kParallelMinCandidates) {
    return input.pool->ParallelFor(0, count, kCandidateGrain, body);
  }
  return body(0, count);
}

Result<RoutingDecision> RunIqnLoop(const RoutingInput& input,
                                   const IqnOptions& options,
                                   const std::map<uint64_t, double>& qualities,
                                   const LoopCallbacks& callbacks) {
  const auto& candidates = *input.candidates;
  std::vector<bool> taken(candidates.size(), false);
  RoutingDecision decision;

  // Load-shed-aware routing: candidates behind an open circuit breaker
  // are excluded up front instead of wasting the query's deadline
  // budget on fail-fast sends. Circuit state is frozen for the whole
  // batch (the engine commits health writes between batches), so this
  // serial precompute is thread-invariant; the skips land in the
  // per-query DegradationReport.
  std::vector<bool> circuit_open(candidates.size(), false);
  if (input.health != nullptr) {
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (!input.health->AllowRequest(candidates[i].address, input.now_ms)) {
        circuit_open[i] = true;
        ++decision.open_circuit_skips;
      }
    }
  }

  // Scratch for Select-Best-Peer phase 1; slot i is written only by the
  // chunk that owns index i.
  struct CandidateScore {
    double combined = -1.0;
    double quality = 0.0;
    double novelty = 0.0;
    bool eligible = false;
  };
  std::vector<CandidateScore> scores(candidates.size());

  while (decision.peers.size() < input.max_peers) {
    double covered_before = callbacks.covered();
    if (options.min_estimated_results > 0.0 &&
        covered_before >= options.min_estimated_results) {
      break;  // enough (estimated) results already covered
    }

    // One span per Select-Best-Peer round. Opened and annotated on the
    // loop thread only — phase 1 below may fan out over the pool, and
    // pool workers must not touch the trace (ordering nondeterminism).
    ScopedSpan iter_span("iqn.iteration");
    if (iter_span.active()) {
      iter_span.AttrUint("iter", decision.peers.size());
      iter_span.AttrDouble("covered_before", covered_before);
    }

    // Select-Best-Peer, phase 1: score every remaining candidate —
    // quality * novelty, with novelty re-estimated against the current
    // reference. Read-only against the reference, hence parallel over
    // candidates when a pool is available.
    IQN_RETURN_IF_ERROR(ForEachCandidate(
        input, candidates.size(), [&](size_t lo, size_t hi) -> Status {
          for (size_t i = lo; i < hi; ++i) {
            scores[i].eligible = false;
            if (taken[i] || circuit_open[i]) continue;
            IQN_ASSIGN_OR_RETURN(double novelty, callbacks.novelty_of(i));
            // Every novelty estimator clamps at zero; a negative value
            // here would make argmax prefer peers that shrink coverage.
            IQN_DCHECK_GE(novelty, 0.0);
            double effective = std::max(novelty, options.novelty_floor);
            double quality = 1.0;
            if (options.use_quality) {
              auto it = qualities.find(candidates[i].peer_id);
              quality = it == qualities.end() ? 0.0 : it->second;
              // CORI beliefs are probabilities (see CoriTermScore).
              IQN_DCHECK_GE(quality, 0.0);
              IQN_DCHECK_LE(quality, 1.0);
            }
            // Robustness extension: discount the candidate's quality by
            // its claim-vs-observed reputation (minerva/reputation.h).
            // A peer whose past claims were not backed by deliveries
            // loses standing against honest candidates; read-only, so
            // safe under the parallel phase-1 fan-out.
            if (input.reputation != nullptr) {
              quality *= input.reputation->DiscountFor(candidates[i].peer_id);
            }
            scores[i] =
                CandidateScore{quality * effective, quality, novelty, true};
          }
          return Status::OK();
        }));

    // Phase 2: argmax reduction. A single in-order scan with the
    // (score, peer_id) tie-break — the same comparison the serial loop
    // always used — so the winner is independent of how phase 1's chunks
    // were scheduled across threads.
    int best = -1;
    double best_combined = -1.0;
    double best_quality = 0.0;
    double best_novelty = 0.0;
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (!scores[i].eligible) continue;
      if (scores[i].combined > best_combined ||
          (scores[i].combined == best_combined && best >= 0 &&
           candidates[i].peer_id < candidates[static_cast<size_t>(best)].peer_id)) {
        best = static_cast<int>(i);
        best_combined = scores[i].combined;
        best_quality = scores[i].quality;
        best_novelty = scores[i].novelty;
      }
    }
    // Record the full candidate ranking from the serial argmax's input —
    // the `scores` slots phase 1 filled — in stable index order. This is
    // what ExplainQuery renders as the per-iteration table.
    if (iter_span.active()) {
      for (size_t i = 0; i < candidates.size(); ++i) {
        if (!scores[i].eligible) continue;
        std::string row = "peer=" + std::to_string(candidates[i].peer_id) +
                          " quality=" + JsonDouble(scores[i].quality) +
                          " novelty=" + JsonDouble(scores[i].novelty) +
                          " combined=" + JsonDouble(scores[i].combined);
        iter_span.Attr("cand", row);
      }
    }
    if (best < 0) break;  // candidates exhausted

    // Aggregate-Synopses: fold the chosen peer into the reference.
    size_t idx = static_cast<size_t>(best);
    IQN_DCHECK(!taken[idx]);
    IQN_RETURN_IF_ERROR(callbacks.absorb(idx));
    taken[idx] = true;
    decision.peers.push_back(SelectedPeer{candidates[idx].peer_id,
                                          candidates[idx].address,
                                          best_quality, best_novelty,
                                          best_combined});
    if (iter_span.active()) {
      iter_span.AttrUint("winner", candidates[idx].peer_id);
      iter_span.AttrDouble("winner_quality", best_quality);
      iter_span.AttrDouble("winner_novelty", best_novelty);
      iter_span.AttrDouble("winner_combined", best_combined);
      iter_span.AttrDouble("covered_after", callbacks.covered());
    }
  }
  // Candidate-set invariants: never select more peers than asked for or
  // than exist, and never the same peer twice (enforced via `taken`).
  IQN_CHECK_LE(decision.peers.size(), input.max_peers);
  IQN_CHECK_LE(decision.peers.size(), candidates.size());
  decision.estimated_result_cardinality = callbacks.covered();
  return decision;
}

}  // namespace

std::string IqnRouter::name() const {
  std::ostringstream os;
  os << "IQN(" << AggregationStrategyName(options_.aggregation);
  if (!options_.use_quality) os << ", novelty-only";
  if (options_.use_histograms) os << ", histograms";
  if (options_.correlation_aware) os << ", correlation-aware";
  os << ")";
  return os.str();
}

Result<RoutingDecision> IqnRouter::Route(const RoutingInput& input) const {
  IQN_RETURN_IF_ERROR(ValidateInput(input));
  if (input.synopsis_config == nullptr) {
    return Status::InvalidArgument("IQN needs a synopsis config");
  }
  ScopedSpan span("iqn.route");
  if (span.active()) {
    span.Attr("router", name());
    span.AttrUint("candidates", input.candidates->size());
    span.AttrUint("max_peers", input.max_peers);
  }
  Result<RoutingDecision> decision =
      options_.use_histograms ? RouteHistogram(input)
      : options_.aggregation == AggregationStrategy::kPerTerm
          ? RoutePerTerm(input)
          : RoutePerPeer(input);
  if (decision.ok() && span.active()) {
    span.AttrUint("selected", decision.value().peers.size());
    span.AttrUint("degraded", decision.value().candidates_degraded);
    span.AttrUint("circuit_skips", decision.value().open_circuit_skips);
  }
  return decision;
}

// ------------------------------------------------------ per-peer strategy

Result<RoutingDecision> IqnRouter::RoutePerPeer(
    const RoutingInput& input) const {
  const auto& candidates = *input.candidates;
  std::map<uint64_t, double> qualities =
      options_.use_quality ? ComputeCandidateQualities(input, options_.cori)
                           : std::map<uint64_t, double>{};

  // Decode and combine each candidate's per-term synopses once, up front
  // (Sec. 6.2: one query-specific synopsis per peer). Candidates are
  // independent, so the decode fans out over the pool. A synopsis that
  // fails to decode (corrupted in transit) must not fail the query: the
  // candidate is downgraded to CORI-only quality scoring with a
  // full-novelty fallback from its claimed list lengths. uint8_t, not
  // bool: distinct slots are written from different chunks, and
  // vector<bool> packs bits.
  std::vector<std::unique_ptr<SetSynopsis>> combined(candidates.size());
  std::vector<double> cardinality(candidates.size(), 0.0);
  std::vector<uint8_t> degraded(candidates.size(), 0);
  std::vector<double> fallback_novelty(candidates.size(), 0.0);
  ScopedSpan decode_span("iqn.decode");
  decode_span.Attr("synopsis", "per-peer");
  IQN_RETURN_IF_ERROR(ForEachCandidate(
      input, candidates.size(), [&](size_t lo, size_t hi) -> Status {
        for (size_t i = lo; i < hi; ++i) {
          std::vector<const SetSynopsis*> views;
          std::vector<uint64_t> lens;
          std::vector<uint64_t> claimed;
          bool missing_term = false;
          for (const std::string& term : input.query->terms) {
            auto it = candidates[i].posts.find(term);
            if (it == candidates[i].posts.end()) {
              missing_term = true;
              continue;
            }
            claimed.push_back(it->second.list_length);
            // Memoized on the Post: a term already decoded — by an
            // earlier replacement re-entry over copied candidates, or by
            // the directory cache at fill time — skips wire-decode here.
            Result<std::shared_ptr<const SetSynopsis>> syn =
                it->second.SharedSynopsis();
            if (!syn.ok()) {
              degraded[i] = 1;
              continue;
            }
            views.push_back(syn.value().get());
            lens.push_back(it->second.list_length);
          }
          if (degraded[i] != 0) {
            // No usable synopsis: score novelty from the claimed list
            // lengths alone (conjunctive matches are bounded by the
            // smallest list).
            if (claimed.empty() ||
                (input.query->mode == QueryMode::kConjunctive &&
                 missing_term)) {
              continue;
            }
            if (input.query->mode == QueryMode::kConjunctive) {
              fallback_novelty[i] = static_cast<double>(
                  *std::min_element(claimed.begin(), claimed.end()));
            } else {
              uint64_t sum = 0;
              for (uint64_t len : claimed) sum += len;
              fallback_novelty[i] = static_cast<double>(sum);
            }
            continue;
          }
          if (views.empty() ||
              (input.query->mode == QueryMode::kConjunctive && missing_term)) {
            // Cannot contribute (conjunctive queries need every term);
            // keep a null combined synopsis = zero novelty.
            continue;
          }
          IQN_ASSIGN_OR_RETURN(
              combined[i], CombinePerTermSynopses(views, input.query->mode));
          cardinality[i] =
              CombinedCardinality(*combined[i], lens, input.query->mode);
        }
        return Status::OK();
      }));
  if (decode_span.active()) {
    size_t degraded_count = 0;
    for (uint8_t d : degraded) degraded_count += d;
    decode_span.AttrUint("candidates", candidates.size());
    decode_span.AttrUint("degraded", degraded_count);
  }
  decode_span.End();

  // Seed the reference: either with the initiator's pre-built coverage
  // synopsis (Sec. 5.1's alternative) or with its local result docs.
  std::unique_ptr<SetSynopsis> seed;
  double seed_card = 0.0;
  if (input.seed_synopsis != nullptr) {
    seed = input.seed_synopsis->Clone();
    seed_card = input.seed_cardinality;
  } else {
    IQN_ASSIGN_OR_RETURN(seed, input.synopsis_config->MakeEmpty());
    if (input.local_result_docs != nullptr) {
      for (DocId id : *input.local_result_docs) seed->Add(id);
      seed_card = static_cast<double>(input.local_result_docs->size());
    }
  }
  IQN_ASSIGN_OR_RETURN(ReferenceSynopsis reference,
                       ReferenceSynopsis::Create(std::move(seed), seed_card));

  LoopCallbacks callbacks;
  callbacks.novelty_of = [&](size_t i) -> Result<double> {
    // Degraded candidates keep their static claimed-length novelty: with
    // no synopsis there is nothing to re-estimate against the reference.
    if (degraded[i] != 0) return fallback_novelty[i];
    if (combined[i] == nullptr) return 0.0;
    return reference.NoveltyOf(*combined[i], cardinality[i]);
  };
  callbacks.absorb = [&](size_t i) -> Status {
    if (combined[i] == nullptr) return Status::OK();
    Result<double> credited = reference.Absorb(*combined[i], cardinality[i]);
    return credited.ok() ? Status::OK() : credited.status();
  };
  callbacks.covered = [&]() { return reference.estimated_cardinality(); };
  IQN_ASSIGN_OR_RETURN(RoutingDecision decision,
                       RunIqnLoop(input, options_, qualities, callbacks));
  for (uint8_t d : degraded) decision.candidates_degraded += d;
  return decision;
}

// ------------------------------------------------------ per-term strategy

Result<RoutingDecision> IqnRouter::RoutePerTerm(
    const RoutingInput& input) const {
  const auto& candidates = *input.candidates;
  std::map<uint64_t, double> qualities =
      options_.use_quality ? ComputeCandidateQualities(input, options_.cori)
                           : std::map<uint64_t, double>{};

  const auto& terms = input.query->terms;

  // Decode per-candidate, per-term synopses (independent per candidate,
  // hence parallel over the pool). A term synopsis that fails to decode
  // (corrupted in transit) degrades to a null synopsis with its claimed
  // list length kept: novelty_of below then credits the claimed length
  // as-is (full-novelty fallback) instead of failing the query.
  std::vector<std::vector<std::shared_ptr<const SetSynopsis>>> syn(
      candidates.size());
  std::vector<std::vector<uint64_t>> lens(candidates.size());
  std::vector<uint8_t> degraded(candidates.size(), 0);
  ScopedSpan decode_span("iqn.decode");
  decode_span.Attr("synopsis", "per-term");
  IQN_RETURN_IF_ERROR(ForEachCandidate(
      input, candidates.size(), [&](size_t lo, size_t hi) -> Status {
        for (size_t i = lo; i < hi; ++i) {
          syn[i].resize(terms.size());
          lens[i].assign(terms.size(), 0);
          for (size_t t = 0; t < terms.size(); ++t) {
            auto it = candidates[i].posts.find(terms[t]);
            if (it == candidates[i].posts.end()) continue;
            Result<std::shared_ptr<const SetSynopsis>> decoded =
                it->second.SharedSynopsis();
            if (!decoded.ok()) {
              degraded[i] = 1;
              lens[i][t] = it->second.list_length;
              continue;
            }
            syn[i][t] = std::move(decoded).value();
            lens[i][t] = it->second.list_length;
          }
        }
        return Status::OK();
      }));
  if (decode_span.active()) {
    size_t degraded_count = 0;
    for (uint8_t d : degraded) degraded_count += d;
    decode_span.AttrUint("candidates", candidates.size());
    decode_span.AttrUint("degraded", degraded_count);
  }
  decode_span.End();

  // Correlation deflation factors (Sec. 6.3 extension): how many distinct
  // documents candidate i's query-term lists really cover, relative to
  // the sum of their lengths. 1.0 = uncorrelated (disjoint lists); 1/T =
  // all T lists identical. Estimated once per candidate from its own
  // posted synopses.
  std::vector<double> dedup_factor(candidates.size(), 1.0);
  if (options_.correlation_aware && terms.size() > 1) {
    ScopedSpan correlate_span("iqn.correlate");
    IQN_RETURN_IF_ERROR(ForEachCandidate(
        input, candidates.size(), [&](size_t lo, size_t hi) -> Status {
          for (size_t i = lo; i < hi; ++i) {
            std::vector<const SetSynopsis*> views;
            std::vector<uint64_t> present_lens;
            uint64_t len_sum = 0;
            for (size_t t = 0; t < terms.size(); ++t) {
              if (syn[i][t] == nullptr) continue;
              views.push_back(syn[i][t].get());
              present_lens.push_back(lens[i][t]);
              len_sum += lens[i][t];
            }
            if (views.size() < 2 || len_sum == 0) continue;
            Result<std::unique_ptr<SetSynopsis>> combined =
                CombinePerTermSynopses(views, QueryMode::kDisjunctive);
            if (!combined.ok()) continue;  // fall back to the plain sum
            double distinct = CombinedCardinality(
                *combined.value(), present_lens, QueryMode::kDisjunctive);
            dedup_factor[i] =
                std::clamp(distinct / static_cast<double>(len_sum),
                           1.0 / static_cast<double>(views.size()), 1.0);
          }
          return Status::OK();
        }));
  }

  // One reference synopsis per query term (Sec. 6.3), each seeded with
  // the initiator's local result.
  std::vector<ReferenceSynopsis> references;
  for (size_t t = 0; t < terms.size(); ++t) {
    IQN_ASSIGN_OR_RETURN(std::unique_ptr<SetSynopsis> seed,
                         input.synopsis_config->MakeEmpty());
    double seed_card = 0.0;
    if (input.local_result_docs != nullptr) {
      for (DocId id : *input.local_result_docs) seed->Add(id);
      seed_card = static_cast<double>(input.local_result_docs->size());
    }
    IQN_ASSIGN_OR_RETURN(ReferenceSynopsis ref,
                         ReferenceSynopsis::Create(std::move(seed), seed_card));
    references.push_back(std::move(ref));
  }

  LoopCallbacks callbacks;
  callbacks.novelty_of = [&](size_t i) -> Result<double> {
    // Sum of term-wise novelties — a crude but order-preserving estimate
    // of the peer's whole-query contribution (Sec. 6.3), optionally
    // deflated by the candidate's own term-list correlation.
    double total = 0.0;
    for (size_t t = 0; t < terms.size(); ++t) {
      if (syn[i][t] == nullptr) {
        // Missing term: lens is 0, contributes nothing. Degraded term:
        // lens holds the claimed list length, credited in full.
        total += static_cast<double>(lens[i][t]);
        continue;
      }
      IQN_ASSIGN_OR_RETURN(
          double nov,
          references[t].NoveltyOf(*syn[i][t],
                                  static_cast<double>(lens[i][t])));
      total += nov;
    }
    return total * dedup_factor[i];
  };
  callbacks.absorb = [&](size_t i) -> Status {
    for (size_t t = 0; t < terms.size(); ++t) {
      if (syn[i][t] == nullptr) continue;
      Result<double> r = references[t].Absorb(
          *syn[i][t], static_cast<double>(lens[i][t]));
      if (!r.ok()) return r.status();
    }
    return Status::OK();
  };
  callbacks.covered = [&]() {
    // Upper-bound style aggregate: the per-term covered spaces overlap,
    // so take the max as the conservative "documents covered" signal.
    double best = 0.0;
    for (const auto& ref : references) {
      best = std::max(best, ref.estimated_cardinality());
    }
    return best;
  };
  IQN_ASSIGN_OR_RETURN(RoutingDecision decision,
                       RunIqnLoop(input, options_, qualities, callbacks));
  for (uint8_t d : degraded) decision.candidates_degraded += d;
  return decision;
}

// ----------------------------------------------- histogram-based strategy

Result<RoutingDecision> IqnRouter::RouteHistogram(
    const RoutingInput& input) const {
  const auto& candidates = *input.candidates;
  std::map<uint64_t, double> qualities =
      options_.use_quality ? ComputeCandidateQualities(input, options_.cori)
                           : std::map<uint64_t, double>{};

  const auto& terms = input.query->terms;

  // Decode per-candidate, per-term histograms (parallel over candidates).
  // Corrupted histogram bytes degrade the term to a claimed-length
  // novelty fallback (lens below); a post with NO histogram stays a
  // configuration error — that is a local setup bug, not a transit
  // fault.
  std::vector<std::vector<std::shared_ptr<const ScoreHistogramSynopsis>>> hist(
      candidates.size());
  std::vector<std::vector<uint64_t>> lens(candidates.size());
  std::vector<uint8_t> degraded(candidates.size(), 0);
  ScopedSpan decode_span("iqn.decode");
  decode_span.Attr("synopsis", "histogram");
  IQN_RETURN_IF_ERROR(ForEachCandidate(
      input, candidates.size(), [&](size_t lo, size_t hi) -> Status {
        for (size_t i = lo; i < hi; ++i) {
          hist[i].resize(terms.size());
          lens[i].assign(terms.size(), 0);
          for (size_t t = 0; t < terms.size(); ++t) {
            auto it = candidates[i].posts.find(terms[t]);
            if (it == candidates[i].posts.end()) continue;
            Result<std::shared_ptr<const ScoreHistogramSynopsis>> h =
                it->second.SharedHistogram();
            if (!h.ok()) {
              if (h.status().code() == StatusCode::kCorruption) {
                degraded[i] = 1;
                lens[i][t] = it->second.list_length;
                continue;
              }
              return Status::FailedPrecondition(
                  "IQN histogram mode but post has no histogram (peer " +
                  std::to_string(candidates[i].peer_id) + "): " +
                  h.status().ToString());
            }
            hist[i][t] = std::move(h).value();
          }
        }
        return Status::OK();
      }));
  if (decode_span.active()) {
    size_t degraded_count = 0;
    for (uint8_t d : degraded) degraded_count += d;
    decode_span.AttrUint("candidates", candidates.size());
    decode_span.AttrUint("degraded", degraded_count);
  }
  decode_span.End();

  // Per-term histogram references. The initiator's local result enters
  // the top score cell: its documents are certainly covered, and crediting
  // them at full weight penalizes candidates that would re-deliver them.
  std::vector<ScoreHistogramSynopsis> references;
  for (size_t t = 0; t < terms.size(); ++t) {
    IQN_ASSIGN_OR_RETURN(ScoreHistogramSynopsis ref,
                         input.synopsis_config->MakeEmptyHistogram());
    if (input.local_result_docs != nullptr) {
      for (DocId id : *input.local_result_docs) ref.Add(id, 1.0);
    }
    references.push_back(std::move(ref));
  }

  LoopCallbacks callbacks;
  callbacks.novelty_of = [&](size_t i) -> Result<double> {
    double total = 0.0;
    for (size_t t = 0; t < terms.size(); ++t) {
      if (hist[i][t] == nullptr) {
        // Degraded term: claimed list length, credited in full (missing
        // terms carry lens 0).
        total += static_cast<double>(lens[i][t]);
        continue;
      }
      IQN_ASSIGN_OR_RETURN(
          double nov,
          references[t].WeightedNoveltyOf(*hist[i][t],
                                          options_.histogram_weight_exponent));
      total += nov;
    }
    return total;
  };
  callbacks.absorb = [&](size_t i) -> Status {
    for (size_t t = 0; t < terms.size(); ++t) {
      if (hist[i][t] == nullptr) continue;
      IQN_RETURN_IF_ERROR(references[t].Absorb(*hist[i][t]));
    }
    return Status::OK();
  };
  callbacks.covered = [&]() {
    size_t best = 0;
    for (const auto& ref : references) best = std::max(best, ref.TotalCount());
    return static_cast<double>(best);
  };
  IQN_ASSIGN_OR_RETURN(RoutingDecision decision,
                       RunIqnLoop(input, options_, qualities, callbacks));
  for (uint8_t d : degraded) decision.candidates_degraded += d;
  return decision;
}

}  // namespace iqn

#include "minerva/explain.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "util/profiler.h"

namespace iqn {

namespace {

bool ParseU64(const std::string& s, uint64_t* out) {
  return std::sscanf(s.c_str(), "%" SCNu64, out) == 1;
}

bool ParseDouble(const std::string& s, double* out) {
  return std::sscanf(s.c_str(), "%lf", out) == 1;
}

/// Parses one "cand" attribute ("peer=3 quality=0.5 novelty=96 ...").
/// %.17g values round-trip through %lf exactly.
bool ParseCandidateRow(const std::string& value, ExplainCandidateRow* row) {
  return std::sscanf(value.c_str(),
                     "peer=%" SCNu64 " quality=%lf novelty=%lf combined=%lf",
                     &row->peer_id, &row->quality, &row->novelty,
                     &row->combined) == 4;
}

Result<ExplainIteration> ParseIteration(const TraceSpan& span) {
  ExplainIteration iter;
  for (const TraceAttr& attr : span.attrs) {
    bool ok = true;
    if (attr.key == "iter") {
      ok = ParseU64(attr.value, &iter.index);
    } else if (attr.key == "cand") {
      ExplainCandidateRow row;
      ok = ParseCandidateRow(attr.value, &row);
      if (ok) iter.ranking.push_back(row);
    } else if (attr.key == "winner") {
      ok = ParseU64(attr.value, &iter.winner_peer);
      iter.has_winner = ok;
    } else if (attr.key == "winner_quality") {
      ok = ParseDouble(attr.value, &iter.winner_quality);
    } else if (attr.key == "winner_novelty") {
      ok = ParseDouble(attr.value, &iter.winner_novelty);
    } else if (attr.key == "winner_combined") {
      ok = ParseDouble(attr.value, &iter.winner_combined);
    } else if (attr.key == "covered_before") {
      ok = ParseDouble(attr.value, &iter.covered_before);
    } else if (attr.key == "covered_after") {
      ok = ParseDouble(attr.value, &iter.covered_after);
    }
    if (!ok) {
      return Status::Corruption("unparseable iteration attribute " +
                                attr.key + "=" + attr.value);
    }
  }
  // Present rows in the argmax order: combined desc, peer id asc — the
  // same comparison Select-Best-Peer's serial scan applies.
  std::stable_sort(iter.ranking.begin(), iter.ranking.end(),
                   [](const ExplainCandidateRow& a,
                      const ExplainCandidateRow& b) {
                     if (a.combined != b.combined) {
                       return a.combined > b.combined;
                     }
                     return a.peer_id < b.peer_id;
                   });
  if (iter.has_winner) {
    for (ExplainCandidateRow& row : iter.ranking) {
      row.selected = row.peer_id == iter.winner_peer;
    }
  }
  return iter;
}

}  // namespace

Result<QueryExplanation> ExplainFromTrace(const QueryTrace& trace) {
  // The routing-phase "iqn.route" span is the first one; later route
  // spans (if any) are Select-Best-Peer re-entries repairing failed
  // peers during execution.
  const TraceSpan* route = trace.Find("iqn.route");
  if (route == nullptr) {
    return Status::NotFound(
        "trace has no iqn.route span (query not routed by IQN, or traces "
        "not collected)");
  }
  QueryExplanation explanation;
  for (const TraceAttr& attr : route->attrs) {
    if (attr.key == "router") explanation.router = attr.value;
  }
  for (const TraceSpan& span : trace.spans()) {
    if (span.name != "iqn.iteration" || span.parent_id != route->id) continue;
    IQN_ASSIGN_OR_RETURN(ExplainIteration iter, ParseIteration(span));
    explanation.iterations.push_back(std::move(iter));
  }
  return explanation;
}

std::string RenderExplanation(const QueryExplanation& explanation) {
  std::string out = "routing explanation";
  if (!explanation.router.empty()) out += ": " + explanation.router;
  out += " (" + std::to_string(explanation.iterations.size()) +
         " iterations)\n";
  char line[160];
  for (const ExplainIteration& iter : explanation.iterations) {
    std::snprintf(line, sizeof(line),
                  "iteration %llu: covered %.4g -> %.4g\n",
                  static_cast<unsigned long long>(iter.index + 1),
                  iter.covered_before, iter.covered_after);
    out += line;
    std::snprintf(line, sizeof(line), "  %-3s %-8s %12s %12s %12s\n", "",
                  "peer", "quality", "novelty", "combined");
    out += line;
    for (const ExplainCandidateRow& row : iter.ranking) {
      std::snprintf(line, sizeof(line), "  %-3s %-8llu %12.6g %12.6g %12.6g\n",
                    row.selected ? "*" : "",
                    static_cast<unsigned long long>(row.peer_id), row.quality,
                    row.novelty, row.combined);
      out += line;
    }
    if (!iter.has_winner) out += "  (no eligible candidate; loop stopped)\n";
  }
  return out;
}

Result<std::string> ExplainQuery(const QueryOutcome& outcome) {
  if (outcome.trace == nullptr) {
    return Status::FailedPrecondition(
        "query carries no trace; run with EngineOptions::collect_traces");
  }
  IQN_ASSIGN_OR_RETURN(QueryExplanation explanation,
                       ExplainFromTrace(*outcome.trace));
  std::string out = RenderExplanation(explanation);
  // Per-phase timing from the same span tree the explanation parsed:
  // route / iqn.decode / iqn.correlate / merge and the rest, inclusive
  // and exclusive simulated time. Pure function of the trace, so the
  // golden tests pin it like everything else here.
  ProfileReport profile = BuildProfile({outcome.trace.get()});
  out += "phase profile (simulated time)\n";
  out += profile.ToTableString();
  return out;
}

}  // namespace iqn

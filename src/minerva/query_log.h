// JSON-lines query log exporter: one self-contained JSON object per
// query (terms, routing decision, traffic split, recall, degradation),
// the grep/jq-friendly companion to the Chrome trace exporter.
//
// Concurrency: pure functions over already-joined per-query outcomes,
// called from the engine's serial phases only — no shared state, so no
// iqn::Mutex and nothing for the thread-safety analysis to guard here
// (DESIGN.md §12). Writing the log during a live batch would be a bug
// in the caller, not a race in this file.

#ifndef IQN_MINERVA_QUERY_LOG_H_
#define IQN_MINERVA_QUERY_LOG_H_

#include <string>
#include <vector>

#include "ir/query.h"
#include "minerva/engine.h"
#include "util/status.h"

namespace iqn {

/// One query's log record as a single JSON line (no trailing newline).
std::string QueryLogJsonLine(const Query& query, const QueryOutcome& outcome);

/// Writes one line per (query, outcome) pair to `path`. The vectors
/// must be the same length.
Status WriteQueryLog(const std::string& path,
                     const std::vector<Query>& queries,
                     const std::vector<QueryOutcome>& outcomes);

}  // namespace iqn

#endif  // IQN_MINERVA_QUERY_LOG_H_

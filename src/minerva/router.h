// Query routing: choosing which peers to forward a query to.
//
// All routers consume the same RoutingInput — the PeerLists fetched from
// the directory plus the initiator's local context — and produce a ranked
// RoutingDecision. Implemented here:
//  * RandomRouter        — the sanity floor;
//  * CoriRouter          — quality-only CORI ranking, the paper's main
//                          baseline (Sec. 8);
//  * SimpleOverlapRouter — the authors' prior SIGIR'05 method: one-shot
//                          quality x novelty-against-the-initiator, no
//                          iterative synopsis aggregation;
// IqnRouter (iqn_router.h) is the paper's contribution.

#ifndef IQN_MINERVA_ROUTER_H_
#define IQN_MINERVA_ROUTER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ir/query.h"
#include "minerva/cori.h"
#include "minerva/post.h"
#include "synopses/synopsis.h"
#include "util/status.h"

namespace iqn {

class ThreadPool;

/// One prospective peer, assembled from the PeerLists of all query terms.
struct CandidatePeer {
  uint64_t peer_id = 0;
  NodeAddress address = kInvalidAddress;
  /// This peer's post per query term (terms it holds no documents for are
  /// absent).
  std::map<std::string, Post> posts;
};

struct RoutingInput {
  const Query* query = nullptr;
  const std::vector<CandidatePeer>* candidates = nullptr;
  /// Stop after selecting this many peers.
  size_t max_peers = 5;
  /// np for CORI's I component.
  size_t total_peers = 0;
  /// The query initiator's local result (seed of the reference synopsis).
  const std::vector<DocId>* local_result_docs = nullptr;
  /// Sec. 5.1's alternative seeding: a pre-built synopsis of the
  /// initiator's own coverage of the query (the union of its per-term
  /// synopses) plus its exact cardinality. When set, IQN seeds its
  /// reference from this instead of local_result_docs — the reference
  /// then represents everything the initiator holds for the query terms,
  /// not just its top-k result.
  const SetSynopsis* seed_synopsis = nullptr;
  double seed_cardinality = 0.0;
  /// System synopsis agreement (for building reference synopses).
  const SynopsisConfig* synopsis_config = nullptr;
  /// Optional worker pool. Routers with data-parallel inner loops (IQN's
  /// candidate decode and Select-Best-Peer scoring) use it when set; a
  /// null pool means strictly serial execution. Parallel and serial runs
  /// produce bit-identical decisions: scoring is read-only against the
  /// reference and the argmax reduction scans candidates in index order
  /// with the same (score, peer_id) tie-break either way.
  ThreadPool* pool = nullptr;
};

struct SelectedPeer {
  uint64_t peer_id = 0;
  NodeAddress address = kInvalidAddress;
  /// Diagnostics recorded at selection time.
  double quality = 0.0;
  double novelty = 0.0;
  double combined = 0.0;
};

struct RoutingDecision {
  std::vector<SelectedPeer> peers;  // in selection order
  /// Estimated size of the combined result space after all selected
  /// peers contribute (IQN only; 0 otherwise).
  double estimated_result_cardinality = 0.0;
  /// Candidates whose posted synopses failed to decode (corrupted in
  /// transit) and were downgraded to CORI-only quality scoring with a
  /// claimed-list-length novelty fallback, instead of failing the query
  /// (IQN only; 0 otherwise).
  size_t candidates_degraded = 0;
};

class Router {
 public:
  virtual ~Router() = default;
  virtual std::string name() const = 0;
  virtual Result<RoutingDecision> Route(const RoutingInput& input) const = 0;

 protected:
  static Status ValidateInput(const RoutingInput& input);
};

/// Uniformly random peer choice (deterministic per query content).
class RandomRouter final : public Router {
 public:
  explicit RandomRouter(uint64_t seed = 1) : seed_(seed) {}
  std::string name() const override { return "Random"; }
  Result<RoutingDecision> Route(const RoutingInput& input) const override;

 private:
  uint64_t seed_;
};

/// Quality-only CORI ranking.
class CoriRouter final : public Router {
 public:
  explicit CoriRouter(CoriParams params = {}) : params_(params) {}
  std::string name() const override { return "CORI"; }
  Result<RoutingDecision> Route(const RoutingInput& input) const override;

 private:
  CoriParams params_;
};

/// The prior overlap-aware method: rank once by quality x novelty where
/// novelty is measured against the initiator's own collection only — no
/// Aggregate-Synopses step, so two mutually redundant peers can both be
/// selected (the failure mode IQN fixes).
class SimpleOverlapRouter final : public Router {
 public:
  explicit SimpleOverlapRouter(CoriParams params = {}) : params_(params) {}
  std::string name() const override { return "SimpleOverlap"; }
  Result<RoutingDecision> Route(const RoutingInput& input) const override;

 private:
  CoriParams params_;
};

/// Shared helper: CORI quality per candidate, from the candidates' posts.
std::map<uint64_t, double> ComputeCandidateQualities(
    const RoutingInput& input, const CoriParams& params);

/// Shared helper: per-term CoriTermStats assembled from the candidates.
std::map<std::string, CoriTermStats> ComputeQueryTermStats(
    const RoutingInput& input);

}  // namespace iqn

#endif  // IQN_MINERVA_ROUTER_H_

// Declarative scenario harness: one JSON spec describes a whole
// experiment — corpus, overlapping peer collections, engine and router
// configuration, fault plan (drops, overloaded peers, scheduled
// partitions), churn schedule, query stream, adversarial peers, and the
// defenses (reputation, circuit breakers, hedging, brownout) — and
// RunScenario executes it into one metrics/recall result.
//
// The spec is the single source of truth the benches, the
// tools/run_scenario binary, the sweep driver (tools/sweep_scenarios.py),
// and CI smoke jobs all share, so a workload is defined once and every
// consumer runs the identical experiment. Parsing is STRICT: unknown
// keys, wrong types, and out-of-range values are descriptive
// InvalidArgument Statuses (never silently ignored — a typoed key would
// otherwise fall back to a default and quietly measure the wrong thing).
//
// Execution is deterministic by construction: everything derives from
// the spec's seeds, queries run through the engine's batch path with a
// fixed batch size (batch outcomes are bit-identical to serial execution
// at any thread count — the engine's contract), and churn fires only at
// batch boundaries. The same spec therefore produces byte-identical
// result JSON across reruns and across `engine.threads` values; the
// determinism regression tests pin this.

#ifndef IQN_MINERVA_SCENARIO_H_
#define IQN_MINERVA_SCENARIO_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "minerva/api.h"
#include "util/bytes.h"
#include "util/json_value.h"
#include "util/status.h"
#include "workload/synthetic_corpus.h"

namespace minerva {

/// How peer collections are carved out of the corpus (workload/fragments.h).
enum class PartitionKind {
  kSlidingWindow,        // "sliding_window": window/offset fragment runs
  kChooseCombinations,   // "choose": all (fragments choose subset) subsets
};

const char* PartitionKindName(PartitionKind kind);
iqn::Result<PartitionKind> ParsePartitionKind(const std::string& name);

/// Everything a scenario configures. Field defaults are the values a
/// minimal spec gets; EmitScenarioSpec always writes the FULL form, so
/// canonical spec files read back exactly (the golden-spec tests pin
/// parse -> emit as the identity on scenarios/*.json).
struct ScenarioSpec {
  std::string name = "scenario";
  /// Master workload seed: the corpus draws from it directly, the query
  /// pool from seed + 1 and the Zipf schedule from seed + 77 (the same
  /// derivations the original benches used, so thin specs reproduce
  /// their numbers exactly).
  uint64_t seed = 42;

  struct CorpusSection {
    size_t documents = 2000;
    /// 0 derives documents / 8 (the benches' ratio).
    size_t vocabulary = 0;
    size_t min_doc_length = 30;
    size_t max_doc_length = 100;
    double zipf_theta = 1.0;
  } corpus;

  struct TopologySection {
    size_t peers = 10;
    /// Disjoint fragments the corpus splits into; 0 derives peers * 2.
    size_t fragments = 0;
    PartitionKind partition = PartitionKind::kSlidingWindow;
    /// Sliding-window parameters (kSlidingWindow only).
    size_t window = 3;
    size_t offset = 2;
    /// Subset size s of the (f choose s) strategy (kChooseCombinations
    /// only); peers must equal C(fragments, subset).
    size_t subset = 3;
  } topology;

  struct EngineSection {
    RouterKind router = RouterKind::kIqn;
    iqn::AggregationStrategy aggregation =
        iqn::AggregationStrategy::kPerPeer;
    iqn::SynopsisType synopsis = iqn::SynopsisType::kMinWise;
    size_t synopsis_bits = 2048;
    iqn::MergeStrategy merge = iqn::MergeStrategy::kRawScores;
    size_t max_peers = 3;
    /// Worker threads for query batches; result-invariant (the
    /// determinism tests run the same spec at 1/2/8).
    size_t threads = 1;
    int retries = 1;
    double deadline_ms = 0.0;
    bool cache = false;
    bool collect_traces = false;
  } engine;

  /// Which Transport backend carries the spec's RPCs (net/transport.h).
  /// The default simulated transport supports every feature. kTcp with
  /// one endpoint (or none) runs single-process over loopback sockets;
  /// multiple endpoints declare a daemon cluster — peer i is owned by
  /// rank i % endpoints.size() — and restrict the spec (no churn, no
  /// faults, no health/reputation, batch_size 1, no traces; see
  /// ValidateSpec's messages for why). Multi-rank specs are executed by
  /// the minervad cluster driver, not RunScenario.
  struct TransportSection {
    iqn::TransportKind kind = iqn::TransportKind::kSimulated;
    /// One "host:port" listen endpoint per daemon rank (kTcp only).
    std::vector<std::string> endpoints;
  } transport;

  struct FaultSection {
    uint64_t seed = 7;
    /// FaultPlan::MessageDrop rate, installed AFTER the (fault-free)
    /// publish phase — matching the chaos bench's metering.
    double drop_rate = 0.0;

    /// Overloaded-peer model (FaultPlan::overload): a seeded exact
    /// fraction of peers answers with M/M/1 queueing delay at the given
    /// utilization and sheds a share of requests outright. Peer choice
    /// uses the same hash-ranked selection as adversary picking, keyed
    /// off faults.seed, and is reported in the result's
    /// overloaded_peers.
    struct OverloadSubsection {
      double fraction = 0.0;      // share of peers overloaded, [0, 1]
      double utilization = 0.0;   // rho, [0, 1)
      double service_ms = 5.0;    // mean service time, > 0
      double shed_rate = 0.0;     // load-shed probability, [0, 1]
    } overload;

    /// Scheduled network partitions (FaultPlan::partitions): each entry
    /// names >= 2 disjoint groups of peer indices that cannot reach
    /// each other while simulated time is inside [start_ms, end_ms) —
    /// the partition heals when the engine's commit-point clock passes
    /// end_ms. Peers listed in no group route normally throughout.
    struct PartitionEntry {
      std::string name = "partition";
      std::vector<std::vector<size_t>> groups;
      double start_ms = 0.0;
      double end_ms = 0.0;
    };
    std::vector<PartitionEntry> partitions;
  } faults;

  /// Per-peer failure detector / circuit breaker (EngineOptions::health)
  /// plus the deadline-pressure brownout threshold.
  iqn::HealthParams health;
  /// Hedged backup requests (EngineOptions::hedge).
  iqn::HedgePolicy hedging;

  struct ChurnSection {
    /// Queries between churn events (0 = no churn). Each event has one
    /// peer (round-robin) crawl a fresh document delta and incrementally
    /// republish; the reference index is rebuilt so recall tracks the
    /// evolved corpus. Must be a multiple of queries.batch_size so churn
    /// always lands on a batch boundary.
    size_t every = 0;
    /// Documents per delta; 0 derives corpus.documents / 20.
    size_t documents = 0;
  } churn;

  struct QuerySection {
    /// Distinct queries generated into the pool.
    size_t pool = 32;
    /// Stream length drawn from the pool with Zipf(zipf_s) popularity;
    /// 0 runs the pool once each, in order (the chaos bench's shape).
    size_t executions = 0;
    /// Whole-stream repetitions on the SAME engine (reputation and cache
    /// state persist across rounds — how the adversary bench lets the
    /// defense learn). Per-round mean recall is reported separately.
    size_t rounds = 1;
    size_t min_terms = 2;
    size_t max_terms = 3;
    double band_low = 0.005;
    double band_high = 0.10;
    size_t k = 10;
    /// Zipf skew of the executions>0 schedule (0 = uniform).
    double zipf_s = 0.0;
    /// Queries per engine batch. 1 is serial-equivalent semantics;
    /// larger batches still produce bit-identical outcomes but commit
    /// cache/reputation state only between batches.
    size_t batch_size = 1;
    /// Fixed initiator peer index, or -1 for round-robin over the stream
    /// position (spelled "round_robin" in the JSON).
    int initiator = -1;
  } queries;

  iqn::AdversaryConfig adversary;
  iqn::ReputationParams reputation;
};

/// Parses and validates a scenario spec from JSON text. Strict: every
/// section and key is checked, unknown keys anywhere are rejected, and
/// errors name the offending path ("scenario: queries.band_low ...").
iqn::Result<ScenarioSpec> ParseScenarioSpec(const std::string& json_text);

/// The canonical full-form JSON of a spec (every field, fixed order,
/// util/json_value.h formatting). ParseScenarioSpec(EmitScenarioSpec(s))
/// reproduces s, and canonical files round-trip byte-identically.
std::string EmitScenarioSpec(const ScenarioSpec& spec);

/// The deterministic inputs a spec expands into, shared by RunScenario
/// and the minervad cluster (every rank builds the identical workload
/// from the same spec, so peer collections and the query stream agree
/// across processes by construction).
struct ScenarioWorkload {
  /// The main corpus generator's options — churn deltas derive theirs
  /// from these (same vocabulary, fresh seeds).
  iqn::SyntheticCorpusOptions corpus_opts;
  /// One collection per peer, in peer-index order.
  std::vector<iqn::Corpus> collections;
  /// The distinct query pool.
  std::vector<iqn::Query> pool;
  /// Pool indices in stream order (executions + Zipf schedule applied;
  /// one round — the stream repeats queries.rounds times).
  std::vector<size_t> schedule;
  /// Documents per churn delta (derivation applied).
  size_t churn_docs = 0;
};

iqn::Result<ScenarioWorkload> BuildScenarioWorkload(const ScenarioSpec& spec);

/// The EngineOptions a spec configures, with the transport section
/// applied for daemon rank `rank` (0 for single-process runs).
EngineOptions EngineOptionsFromSpec(const ScenarioSpec& spec, uint32_t rank);

/// The per-query outcome fields scenario aggregation consumes, in a
/// form minervad can ship over a control frame. Doubles travel as raw
/// bits, so a decoded wire outcome aggregates bit-identically to the
/// in-process original.
struct ScenarioOutcomeWire {
  double recall = 0.0;
  double recall_remote_only = 0.0;
  double routing_latency_ms = 0.0;
  double execution_latency_ms = 0.0;
  uint64_t routing_bytes = 0;
  uint64_t faults_survived = 0;
  uint64_t rpc_retries = 0;
  uint64_t peers_failed = 0;
  uint64_t peers_replaced = 0;
  uint64_t open_circuit_skips = 0;
  bool partial = false;
  /// decision.peers in selection order (fingerprint input).
  std::vector<uint64_t> selected_peer_ids;
  /// execution.merged in rank order (fingerprint input).
  std::vector<iqn::ScoredDoc> merged;

  static ScenarioOutcomeWire FromOutcome(const iqn::QueryOutcome& outcome);
  iqn::Bytes Encode() const;
  static iqn::Result<ScenarioOutcomeWire> Decode(const iqn::Bytes& bytes);
};

struct ScenarioResult;

/// Accumulates per-query outcomes into the scenario-level measures.
/// RunScenario and the cluster driver run the SAME Apply arithmetic in
/// the same stream order, so a cluster run's result JSON is
/// byte-identical to the simulator's whenever the outcomes are.
struct ScenarioCursor {
  explicit ScenarioCursor(size_t rounds) : round_recall(rounds, 0.0) {}

  uint64_t queries_run = 0;
  double recall_sum = 0.0;
  double remote_sum = 0.0;
  double goodput_sum = 0.0;
  uint64_t deadline_misses = 0;
  std::vector<double> round_recall;
  uint64_t routing_bytes = 0;
  uint64_t faults_injected = 0;
  uint64_t rpc_retries = 0;
  uint64_t peers_failed = 0;
  uint64_t peers_replaced = 0;
  uint64_t circuit_open_skips = 0;
  uint64_t partial_queries = 0;
  /// Sum of per-query simulated latency in stream order — the commit
  /// clock both backends agree on (per-rank transport clocks only see
  /// locally initiated queries).
  double sim_time_ms = 0.0;
  uint64_t result_fingerprint = 0;

  void Apply(const ScenarioSpec& spec, size_t round,
             const ScenarioOutcomeWire& outcome);
  /// Copies the accumulated measures (means applied) into `result`.
  /// stream_len normalizes round_recall.
  void FinalizeInto(ScenarioResult* result, size_t stream_len) const;
};

/// Everything one scenario run measured.
struct ScenarioResult {
  ScenarioSpec spec;
  size_t queries_run = 0;
  size_t churn_events = 0;
  /// Peer indices turned adversarial (empty when inactive).
  std::vector<size_t> adversaries;
  /// Peer indices the faults.overload model slowed down (empty when
  /// inactive).
  std::vector<size_t> overloaded_peers;
  /// Over the whole stream (all rounds).
  double mean_recall = 0.0;
  double mean_recall_remote = 0.0;
  /// Recall-within-deadline: a query contributes its recall only when
  /// its simulated latency (routing + execution) met engine.deadline_ms;
  /// late queries contribute 0. Equals mean_recall when deadline_ms is 0
  /// (nothing can be late). The overload bench's recovery gate is
  /// defined over this.
  double mean_goodput = 0.0;
  /// Queries whose simulated latency exceeded engine.deadline_ms.
  uint64_t deadline_misses = 0;
  /// Per-round mean recall (size queries.rounds) — shows a learning
  /// defense converging.
  std::vector<double> round_recall;
  uint64_t messages = 0;
  uint64_t bytes = 0;
  uint64_t routing_bytes = 0;
  uint64_t faults_injected = 0;
  uint64_t rpc_retries = 0;
  uint64_t peers_failed = 0;
  uint64_t peers_replaced = 0;
  uint64_t partial_queries = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_invalidations = 0;
  /// Hedged backup RPCs issued / won (network stats).
  uint64_t hedges = 0;
  uint64_t hedges_won = 0;
  /// Candidates Select-Best-Peer skipped because their circuit was open.
  uint64_t circuit_open_skips = 0;
  /// The simulated commit-point clock when the stream finished — the
  /// time base partition windows are scheduled against.
  double sim_time_ms = 0.0;
  /// Order-sensitive hash over every query's selected peers and merged
  /// (doc, score-bits) list — two runs agree iff their result streams
  /// are bit-identical.
  uint64_t result_fingerprint = 0;
  /// Same, over the rendered ExplainQuery text of every query (0 unless
  /// engine.collect_traces).
  uint64_t trace_fingerprint = 0;
  /// Every query's trace, in stream order (empty unless
  /// engine.collect_traces). Outlives the scenario's engine so callers
  /// (tools/run_scenario sinks, profile aggregation) can export them.
  /// NOT part of ScenarioResultToJson — the result JSON stays
  /// byte-identical with and without tracing-dependent consumers.
  std::vector<std::shared_ptr<const iqn::QueryTrace>> traces;
};

/// Executes the spec end to end on a fresh engine: build workload ->
/// create (adversaries applied) -> publish fault-free -> reset meters ->
/// install fault plan -> stream query batches with churn at batch
/// boundaries -> aggregate.
iqn::Result<ScenarioResult> RunScenario(const ScenarioSpec& spec);

/// Result JSON. include_spec embeds the canonical spec for provenance;
/// the thread-invariance tests compare with include_spec=false (the spec
/// echo differs in engine.threads by design).
std::string ScenarioResultToJson(const ScenarioResult& result,
                                 bool include_spec);

}  // namespace minerva

#endif  // IQN_MINERVA_SCENARIO_H_

#include "minerva/directory_cache.h"

#include <utility>

#include "minerva/directory.h"
#include "util/check.h"
#include "util/metrics.h"

namespace iqn {

DirectoryCache::DirectoryCache(const CacheConfig& config,
                               const KvVersionMap* versions)
    : config_(config),
      versions_(versions),
      mem_(MemStats::Default().GetTracker(kMemDirectoryCache)) {
  IQN_CHECK(versions_ != nullptr);
  MetricsRegistry& registry = MetricsRegistry::Default();
  m_hits_ = registry.GetCounter("cache.hits");
  m_misses_ = registry.GetCounter("cache.misses");
  m_invalidations_ = registry.GetCounter("cache.invalidations");
  m_evictions_ = registry.GetCounter("cache.evictions");
  m_hit_ratio_ = registry.GetGauge("cache.hit_ratio");
}

DirectoryCache::~DirectoryCache() {
  WriterMutexLock lock(&mu_);
  AccountLocked(-accounted_bytes_);
}

int64_t DirectoryCache::EntryBytes(const std::string& term,
                                   const Entry& entry) {
  int64_t bytes = static_cast<int64_t>(sizeof(Entry) + term.size());
  for (const Post& post : entry.posts) {
    bytes += static_cast<int64_t>(sizeof(Post) + post.term.size() +
                                  post.synopsis.size() +
                                  post.histogram.size());
  }
  return bytes;
}

const std::vector<Post>* DirectoryCache::Session::Lookup(
    const std::string& term, size_t limit) {
  const DirectoryCache& cache = *cache_;
  if (!cache.config_.enabled) return nullptr;
  // Shared visibility capability: concurrent with other sessions'
  // lookups, mutually exclusive with Commit/AdvanceTime/Clear. The
  // returned pointer stays valid after release — committed entries are
  // only replaced/erased in serial phases, when no session is live.
  ReaderMutexLock lock(&cache.mu_);
  auto it = cache.entries_.find(term);
  bool hit = false;
  if (it != cache.entries_.end()) {
    const Entry& entry = it->second;
    bool version_ok =
        entry.version == cache.versions_->Get(Directory::KeyForTerm(term));
    bool ttl_ok = cache.config_.ttl_ms <= 0.0 ||
                  cache.now_ms_ - entry.filled_at_ms <= cache.config_.ttl_ms;
    hit = entry.limit == limit && version_ok && ttl_ok;
  }
  if (hit) {
    ++hits_;
    cache.m_hits_->Increment();
    return &it->second.posts;
  }
  ++misses_;
  cache.m_misses_->Increment();
  return nullptr;
}

const std::vector<Post>* DirectoryCache::Session::Fill(
    const std::string& term, size_t limit, const std::vector<Post>& posts) {
  if (!cache_->config_.enabled) return nullptr;
  PendingFill fill;
  fill.version = cache_->versions_->Get(Directory::KeyForTerm(term));
  fill.limit = limit;
  fill.posts = posts;
  // Materialize the decode memos now, on the query's own thread: every
  // later hit hands out copies that SHARE the memo and never write it,
  // so concurrent batch workers read cached posts without synchronizing.
  for (Post& post : fill.posts) {
    (void)post.SharedSynopsis();  // populate the memo; value unused here
    if (!post.histogram.empty()) (void)post.SharedHistogram();  // same
  }
  PendingFill& stored = pending_[term];
  stored = std::move(fill);
  return &stored.posts;
}

void DirectoryCache::Commit(Session* session) {
  IQN_CHECK(session != nullptr && session->cache_ == this);
  WriterMutexLock lock(&mu_);
  for (auto& [term, fill] : session->pending_) {
    auto it = entries_.find(term);
    if (it != entries_.end()) {
      const Entry& old = it->second;
      bool version_stale =
          old.version != versions_->Get(Directory::KeyForTerm(term));
      bool ttl_stale = config_.ttl_ms > 0.0 &&
                       now_ms_ - old.filled_at_ms > config_.ttl_ms;
      if (version_stale || ttl_stale) m_invalidations_->Increment();
    }
    Entry entry;
    entry.version = fill.version;
    entry.filled_at_ms = now_ms_;
    entry.fill_seq = next_fill_seq_++;
    entry.limit = fill.limit;
    entry.posts = std::move(fill.posts);
    if (it != entries_.end()) AccountLocked(-EntryBytes(term, it->second));
    AccountLocked(EntryBytes(term, entry));
    entries_[term] = std::move(entry);
  }
  session->pending_.clear();

  // Deterministic capacity eviction: drop the oldest fills first
  // (fill_seq is a strict total order).
  if (config_.max_terms > 0) {
    while (entries_.size() > config_.max_terms) {
      auto victim = entries_.begin();
      for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (it->second.fill_seq < victim->second.fill_seq) victim = it;
      }
      AccountLocked(-EntryBytes(victim->first, victim->second));
      entries_.erase(victim);
      m_evictions_->Increment();
    }
  }

  uint64_t hits = m_hits_->Value();
  uint64_t misses = m_misses_->Value();
  if (hits + misses > 0) {
    m_hit_ratio_->Set(static_cast<double>(hits) /
                      static_cast<double>(hits + misses));
  }
}

void DirectoryCache::AdvanceTime(double delta_ms) {
  IQN_CHECK_GE(delta_ms, 0.0);
  WriterMutexLock lock(&mu_);
  now_ms_ += delta_ms;
}

void DirectoryCache::Clear() {
  WriterMutexLock lock(&mu_);
  AccountLocked(-accounted_bytes_);
  entries_.clear();
}

}  // namespace iqn

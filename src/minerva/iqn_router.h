// The IQN (Integrated Quality Novelty) routing method — the paper's core
// contribution (Sec. 5, Sec. 6, Sec. 7.1).
//
// IQN builds the query execution plan iteratively. Starting from a
// reference synopsis seeded with the initiator's local query result, each
// iteration performs:
//   Select-Best-Peer:   rank the remaining candidates by
//                       quality(CORI) x novelty(synopsis vs reference)
//                       and pick the best;
//   Aggregate-Synopses: union the chosen peer's synopsis into the
//                       reference, so the next iteration measures novelty
//                       against everything already covered.
// The loop stops at max_peers, or earlier when the estimated size of the
// covered result space reaches min_estimated_results (Sec. 5.1's
// "estimated number of (good) documents" criterion).
//
// Multi-keyword queries use either per-peer or per-term aggregation
// (Sec. 6); with use_histograms the novelty estimate becomes the
// score-weighted histogram novelty of Sec. 7.1.

#ifndef IQN_MINERVA_IQN_ROUTER_H_
#define IQN_MINERVA_IQN_ROUTER_H_

#include "minerva/aggregation.h"
#include "minerva/router.h"

namespace iqn {

struct IqnOptions {
  AggregationStrategy aggregation = AggregationStrategy::kPerPeer;
  /// false = rank by novelty alone (the DB-style structured-query setting
  /// where all matches are equally "good").
  bool use_quality = true;
  /// Score-conscious novelty via histogram synopses (requires Posts that
  /// carry histograms, i.e. SynopsisConfig::histogram_cells > 0). Forces
  /// per-term aggregation.
  bool use_histograms = false;
  /// Weight exponent for histogram cells (Sec. 7.1): 0 = flat, 1 = linear
  /// in the cell's score midpoint.
  double histogram_weight_exponent = 1.0;
  /// Correlation-aware per-term aggregation (the extension Sec. 6.3
  /// suggests): the summed per-term novelty double-counts documents that
  /// appear in several of the candidate's query-term lists. When enabled,
  /// the sum is deflated by the candidate's own term-list correlation,
  /// estimated from its posted synopses as
  ///   |union of term lists| / sum of term list lengths.
  /// Only affects the per-term strategy on multi-term queries.
  bool correlation_aware = false;
  /// Optional early-stop: end the loop once the reference synopsis
  /// estimates at least this many covered documents (0 = disabled).
  double min_estimated_results = 0.0;
  /// A candidate whose estimated novelty is <= 0 still gets this floor,
  /// so peer selection degrades to quality ranking (instead of an
  /// arbitrary choice) once the result space looks exhausted.
  double novelty_floor = 1e-3;
  CoriParams cori;
};

class IqnRouter final : public Router {
 public:
  explicit IqnRouter(IqnOptions options = {}) : options_(options) {}

  std::string name() const override;
  Result<RoutingDecision> Route(const RoutingInput& input) const override;

  const IqnOptions& options() const { return options_; }

 private:
  Result<RoutingDecision> RoutePerPeer(const RoutingInput& input) const;
  Result<RoutingDecision> RoutePerTerm(const RoutingInput& input) const;
  Result<RoutingDecision> RouteHistogram(const RoutingInput& input) const;

  IqnOptions options_;
};

}  // namespace iqn

#endif  // IQN_MINERVA_IQN_ROUTER_H_

// Claim-vs-observed calibration: the robustness extension of
// Select-Best-Peer against adversarial peers (minerva/behavior.h).
//
// The insight: at selection time IQN records what a peer CLAIMED it
// would contribute (the novelty estimate, driven by its posted list
// lengths and synopses), and after execution the engine can see what it
// actually DELIVERED (result documents that were genuinely new). An
// honest peer's deliveries track its claims — the novelty estimator is
// built to predict exactly this. A claim-inflating or synopsis-
// poisoning peer systematically over-claims: its estimated novelty is a
// multiple of what its top-k answer can ever contain.
//
// The book accumulates, per peer, the claimed-vs-delivered evidence and
// turns it into a multiplicative quality discount in [floor, 1]:
//
//   discount(p) = clamp(((delivered_p + prior) / (claimed_p + prior))
//                       ^ sharpness)
//
// where both sums cap each query's claim at the query's k (a peer
// cannot deliver more than k results, so claims beyond k carry no
// evidence either way — this keeps honest peers with huge true coverage
// at discount ~1). `prior` is pseudo-evidence that keeps fresh peers
// near 1.0 until real observations accumulate.
//
// Determinism contract (the book lives inside the batch engine):
//  * Queries only READ the book (RoutingInput::reputation is const).
//  * Observations are applied by the engine at deterministic points:
//    after each serial RunQuery, or in batch order after RunQueryBatch
//    joins — the same two-phase discipline the directory cache uses.
//    Within a batch every query sees the pre-batch book, so outcomes
//    cannot depend on worker scheduling.
//
// Simplification vs a deployed network: the book is engine-global
// (shared knowledge), not per-initiator — same spirit as the engine-
// wide publish-version map. DESIGN.md section 13 discusses the gap.

#ifndef IQN_MINERVA_REPUTATION_H_
#define IQN_MINERVA_REPUTATION_H_

#include <cstdint>
#include <map>
#include <string>

namespace iqn {

struct ReputationParams {
  /// Master switch; a disabled book is never consulted or updated.
  bool enabled = false;
  /// Pseudo-evidence added to both sums (in "documents"): larger values
  /// mean slower, gentler convictions. Must be > 0.
  double prior = 8.0;
  /// Lower bound of the discount: even a fully convicted liar keeps
  /// this much quality, so it can redeem itself if it starts
  /// delivering (and ranking among liars stays defined). In [0, 1].
  double floor = 0.05;
  /// Exponent applied to the calibration ratio. Every peer's novelty
  /// estimate over-predicts a little (duplicates across answers), so
  /// raw ratios cluster well below 1 even for honest peers; an exponent
  /// > 1 spreads that cluster, turning a SYSTEMATIC over-claimer's
  /// modestly-worse ratio into a decisively smaller discount while
  /// honest peers keep their relative order. Must be > 0.
  double sharpness = 2.0;
};

/// One peer's claimed-vs-delivered evidence and the engine-wide map of
/// them. Not thread-safe by itself — see the determinism contract above
/// for when the engine reads and writes it.
class ReputationBook {
 public:
  explicit ReputationBook(const ReputationParams& params) : params_(params) {}

  /// Folds one query's evidence for `peer_id` in: `claimed` is the
  /// selection-time novelty estimate capped at the query's k, and
  /// `delivered` the count of genuinely new documents the peer's answer
  /// contributed (also <= k by construction).
  void Observe(uint64_t peer_id, double claimed, double delivered);

  /// The multiplicative quality discount for `peer_id`, in
  /// [params.floor, 1]. Peers never observed score 1.0.
  double DiscountFor(uint64_t peer_id) const;

  size_t peers_tracked() const { return evidence_.size(); }
  const ReputationParams& params() const { return params_; }

  /// One line per tracked peer ("peer 3: claimed=41.2 delivered=12.0
  /// discount=0.41"), for logs and benches.
  std::string DebugString() const;

 private:
  struct Evidence {
    double claimed = 0.0;
    double delivered = 0.0;
  };

  ReputationParams params_;
  /// Ordered map: iteration order (DebugString, determinism) is by peer
  /// id, never by insertion history.
  std::map<uint64_t, Evidence> evidence_;
};

/// One selected peer's claim-vs-observed record for a single query,
/// computed by the engine after execution (QueryOutcome::calibrations).
struct PeerCalibration {
  uint64_t peer_id = 0;
  /// Selection-time novelty estimate capped at the query's k.
  double claimed = 0.0;
  /// Documents in the peer's answer not already delivered by the
  /// initiator's local result or an earlier-selected peer.
  double delivered = 0.0;
};

}  // namespace iqn

#endif  // IQN_MINERVA_REPUTATION_H_

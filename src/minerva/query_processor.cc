#include "minerva/query_processor.h"

#include <limits>

namespace iqn {

namespace {

// Callan's merge constant.
constexpr double kBeta = 0.4;

}  // namespace

double QueryProcessor::CoriMergeWeight(double collection_score,
                                       double mean_score) {
  if (mean_score <= 0.0) return 1.0;
  // Callan's heuristic up to a uniform 1/(1+beta) factor, which cannot
  // change any ranking; omitting it makes the mean collection neutral
  // (weight exactly 1).
  double weight = 1.0 + kBeta * (collection_score - mean_score) / mean_score;
  // A floor keeps a very low-quality (but novelty-selected) peer's
  // results mergeable instead of zeroing them out.
  return weight < 0.1 ? 0.1 : weight;
}

Result<QueryExecution> QueryProcessor::Execute(
    const Query& query, const RoutingDecision& decision) const {
  QueryExecution execution;
  execution.local_results = initiator_->ExecuteLocal(query);

  // CORI merge weights from the collection scores the router recorded.
  std::vector<double> weights(decision.peers.size(), 1.0);
  if (merge_ == MergeStrategy::kCoriNormalized && !decision.peers.empty()) {
    double mean = 0.0;
    for (const SelectedPeer& peer : decision.peers) mean += peer.quality;
    mean /= static_cast<double>(decision.peers.size());
    for (size_t i = 0; i < decision.peers.size(); ++i) {
      weights[i] = CoriMergeWeight(decision.peers[i].quality, mean);
    }
  }

  Bytes encoded = EncodeQuery(query);
  SimulatedNetwork* network = initiator_->node()->network();
  for (size_t i = 0; i < decision.peers.size(); ++i) {
    const SelectedPeer& peer = decision.peers[i];
    Result<Bytes> response = network->Rpc(initiator_->address(), peer.address,
                                          "peer.query", encoded);
    if (!response.ok()) {
      ++execution.failed_peers;
      execution.per_peer_results.emplace_back();
      continue;
    }
    Result<std::vector<ScoredDoc>> results = DecodeResults(response.value());
    if (!results.ok()) {
      ++execution.failed_peers;
      execution.per_peer_results.emplace_back();
      continue;
    }
    std::vector<ScoredDoc> scored = std::move(results).value();
    if (weights[i] != 1.0) {
      for (ScoredDoc& sd : scored) sd.score *= weights[i];
    }
    execution.per_peer_results.push_back(std::move(scored));
  }

  std::vector<std::vector<ScoredDoc>> all_lists = execution.per_peer_results;
  all_lists.push_back(execution.local_results);
  execution.merged = MergeResults(all_lists, query.k);
  // The untruncated distinct-result list, for recall measurement.
  execution.all_distinct =
      MergeResults(all_lists, std::numeric_limits<size_t>::max());
  return execution;
}

}  // namespace iqn

// A MINERVA peer: local crawl + inverted index + synopsis builder +
// directory client + remote query execution endpoint (paper Sec. 4).

#ifndef IQN_MINERVA_PEER_H_
#define IQN_MINERVA_PEER_H_

#include <memory>
#include <string>
#include <vector>

#include "dht/kv_store.h"
#include "ir/corpus.h"
#include "ir/inverted_index.h"
#include "ir/query.h"
#include "ir/top_k.h"
#include "minerva/behavior.h"
#include "minerva/directory.h"
#include "minerva/directory_cache.h"
#include "minerva/post.h"
#include "minerva/routing.h"
#include "synopses/adaptive.h"
#include "util/status.h"

namespace iqn {

// Wire helpers for the "peer.query" verb.
Bytes EncodeQuery(const Query& query);
Result<Query> DecodeQuery(const Bytes& bytes);
Bytes EncodeResults(const std::vector<ScoredDoc>& results);
Result<std::vector<ScoredDoc>> DecodeResults(const Bytes& bytes);

class Peer {
 public:
  /// `node` and `store` must outlive the peer. Registers the
  /// "peer.query" execution verb on the node.
  static Result<std::unique_ptr<Peer>> Create(uint64_t peer_id,
                                              ChordNode* node, DhtStore* store,
                                              SynopsisConfig synopsis_config,
                                              ScoringModel scoring = {});

  Peer(const Peer&) = delete;
  Peer& operator=(const Peer&) = delete;
  ~Peer();

  uint64_t peer_id() const { return peer_id_; }
  NodeAddress address() const { return node_->address(); }
  ChordNode* node() const { return node_; }
  Directory& directory() { return directory_; }
  const InvertedIndex& index() const { return index_; }
  const Corpus& collection() const { return collection_; }
  const SynopsisConfig& synopsis_config() const { return synopsis_config_; }

  /// Installs the peer's crawled collection and (re)builds the local
  /// index. Call PublishPosts afterwards to refresh the directory.
  Status SetCollection(Corpus collection);

  /// Makes the peer misreport its directory posts (minerva/behavior.h).
  /// Applied inside BuildPost, so EVERY publish path — full, batched,
  /// adaptive, churn republish — lies consistently. `factor` is the
  /// claimed-size multiple (>= 1), `seed` derives fabricated doc ids for
  /// kPoisonSynopses. Query execution is unaffected: an adversarial
  /// peer still answers with its real documents; the damage is the
  /// routing capacity it steals from peers that would deliver more.
  void SetBehavior(PeerBehavior behavior, double factor, uint64_t seed);
  PeerBehavior behavior() const { return behavior_; }

  /// Continues the crawl: merges newly fetched documents into the
  /// collection, rebuilds the index, and (when `republish` is set)
  /// refreshes the directory posts of exactly the terms those documents
  /// touch. Posts of untouched terms keep slightly stale statistics
  /// (|V_i| drift) until their next periodic refresh — the freshness
  /// model the paper assumes for a dynamic P2P system.
  Status AddDocuments(const Corpus& delta, bool republish = true);

  /// Builds the Post for one term of the local index: list statistics +
  /// flat synopsis (+ histogram when configured). `bits_override`
  /// shortens the synopsis below the system default (MIPs only usefully).
  Result<Post> BuildPost(const std::string& term,
                         size_t bits_override = 0) const;

  /// Publishes a Post for every term in the local index, one directory
  /// write per term.
  Status PublishPosts();

  /// Same, but batched by directory node (Sec. 7.2): all posts owned by
  /// the same directory node travel in one message, cutting the
  /// per-message overhead that dominates posting cost.
  Status PublishPostsBatched();

  /// Sec. 7.2: distributes `total_budget_bits` across the local terms in
  /// proportion to their benefit, then publishes with per-term synopsis
  /// lengths. Requires MIPs (the only synopsis type that supports
  /// heterogeneous lengths); terms allocated 0 bits are not posted.
  Status PublishPostsAdaptive(uint64_t total_budget_bits,
                              const AdaptiveAllocationOptions& options);

  /// Local top-k execution over the peer's own collection.
  std::vector<ScoredDoc> ExecuteLocal(const Query& query) const;

  /// The initiator-side coverage synopsis of Sec. 5.1's alternative
  /// seeding: the union of this peer's per-term synopses for the query
  /// terms, plus the EXACT number of distinct local documents matching
  /// any query term (the peer can count its own documents precisely).
  struct QueryReference {
    std::unique_ptr<SetSynopsis> synopsis;
    double cardinality = 0.0;
  };
  Result<QueryReference> BuildQueryReference(const Query& query) const;

  /// Directory phase of query initiation: fetches the PeerList of every
  /// query term and groups the Posts by peer. The initiator itself is
  /// excluded (its contribution is the local result).
  /// `peerlist_limit` > 0 fetches only the top-so-many posts per term
  /// (server-side truncation, Sec. 4), trading candidate coverage for
  /// directory bandwidth.
  /// With `failed_terms` set, a term whose directory fetch fails is
  /// counted there and skipped — the candidate set is assembled from
  /// the terms that answered; with it null (default) any fetch error
  /// fails the call, as before.
  /// With `cache` set, each term's PeerList is looked up in the query's
  /// DirectoryCache session first: a hit serves the cached (version-
  /// fresh) copy with zero network traffic and pre-decoded synopses; a
  /// miss fetches as usual and buffers the result for commit.
  Result<std::vector<CandidatePeer>> FetchCandidates(
      const Query& query, size_t peerlist_limit = 0,
      size_t* failed_terms = nullptr,
      DirectoryCache::Session* cache = nullptr) const;

  /// Directory phase via the distributed top-k algorithm (Sec. 4):
  /// first determines the `top_peers` peers with the highest aggregate
  /// index-list mass across ALL query terms (TPUT over the directory
  /// nodes, exact), then fetches only those peers' Posts. Cheaper than
  /// full PeerLists when the query terms are popular.
  /// `failed_terms` enables the same per-term fault tolerance as
  /// FetchCandidates; additionally, when the top-k phase itself fails it
  /// degrades to a plain full-PeerList fetch (more traffic, but the
  /// query survives) instead of erroring out.
  /// Not served from the DirectoryCache: the fetched posts depend on the
  /// cross-term winner set, not on a single term key, so version stamps
  /// cannot vouch for them.
  Result<std::vector<CandidatePeer>> FetchCandidatesTopK(
      const Query& query, size_t top_peers,
      size_t* failed_terms = nullptr) const;

 private:
  Peer(uint64_t peer_id, ChordNode* node, DhtStore* store,
       SynopsisConfig synopsis_config, ScoringModel scoring);

  Result<Bytes> HandleQuery(const Message& msg) const;

  /// Re-charges the ir.postings tracker after an index rebuild (the
  /// index is replaced wholesale, so accounting is a delta against the
  /// previous rebuild's total).
  void ReaccountIndex();

  uint64_t peer_id_;
  ChordNode* node_;
  Directory directory_;
  SynopsisConfig synopsis_config_;
  ScoringModel scoring_;
  Corpus collection_;
  InvertedIndex index_;
  MemTracker* mem_postings_;
  int64_t accounted_index_bytes_ = 0;
  /// Adversarial misreporting (SetBehavior); honest by default.
  PeerBehavior behavior_ = PeerBehavior::kHonest;
  double behavior_factor_ = 1.0;
  uint64_t behavior_seed_ = 0;
};

}  // namespace iqn

#endif  // IQN_MINERVA_PEER_H_

// Per-query degradation accounting.
//
// Under fault injection a query can lose synopses, peers, and time, yet
// still answer: corrupted synopses downgrade candidates to CORI-only
// scoring, failed selected peers are replaced by re-entering
// Select-Best-Peer over the remaining candidates, retries absorb
// transient outages. The DegradationReport says how much of that repair
// machinery a query needed — the "how degraded was this answer" signal
// the chaos benches and tests assert on. All zeros (partial false) on a
// fault-free run.

#ifndef IQN_MINERVA_DEGRADATION_H_
#define IQN_MINERVA_DEGRADATION_H_

#include <cstddef>
#include <cstdint>

namespace iqn {

struct DegradationReport {
  /// Retry attempts the rpc_policy layer issued for this query.
  uint64_t rpc_retries = 0;
  /// Faults the injector fired against this query's traffic (injected
  /// and survived — the query still produced an answer).
  uint64_t faults_survived = 0;
  /// Selected peers whose query execution failed (down, dropped,
  /// timed out, or returned undecodable results), replacements included.
  size_t peers_failed = 0;
  /// Failed peers for which Select-Best-Peer re-entry found a live
  /// replacement that answered.
  size_t peers_replaced = 0;
  /// Candidates downgraded to CORI-only scoring because their posted
  /// synopses arrived corrupted.
  size_t candidates_degraded = 0;
  /// Query terms whose directory PeerList fetch failed outright (the
  /// candidate set was assembled from the remaining terms).
  size_t term_fetches_failed = 0;
  /// Candidates Select-Best-Peer refused to consider because their
  /// circuit breaker (net/health.h) was open.
  size_t open_circuit_skips = 0;
  /// RPCs the policy layer refused to send (fail-fast, no traffic)
  /// because the destination's circuit was open.
  uint64_t circuit_blocked_rpcs = 0;
  /// Peers shaved off max_peers by the deadline-pressure brownout
  /// (0 = the query ran at full fan-out).
  size_t brownout_peers_shed = 0;
  /// True when the answer is known to be missing contributions: fewer
  /// peers answered than routing selected (even after replacement), or
  /// some term's candidates never entered routing.
  bool partial = false;
};

}  // namespace iqn

#endif  // IQN_MINERVA_DEGRADATION_H_

// The conceptually global, physically distributed directory (paper
// Sec. 4): Chord partitions the term space, and the node a term hashes to
// maintains the PeerList of all Posts for that term.
//
// This class is each peer's *client view* of the directory — publish and
// fetch operations route through the peer's own DHT node, so every
// directory interaction is real (and metered) network traffic.

#ifndef IQN_MINERVA_DIRECTORY_H_
#define IQN_MINERVA_DIRECTORY_H_

#include <string>
#include <vector>

#include "dht/kv_store.h"
#include "minerva/post.h"
#include "util/status.h"

namespace iqn {

class Directory {
 public:
  /// `store` must outlive the directory. Installs the directory's
  /// PeerList ranking (by index list length) as the store's server-side
  /// value scorer, enabling truncated PeerList fetches.
  explicit Directory(DhtStore* store);

  /// Publishes (or refreshes) one Post; a re-post by the same peer for
  /// the same term replaces the previous one.
  Status Publish(const Post& post);

  /// Publishes many Posts with per-directory-node batching (Sec. 7.2:
  /// posts directed to the same recipient share one message).
  Status PublishBatch(const std::vector<Post>& posts);

  /// The full PeerList for a term (possibly empty). Malformed posts from
  /// misbehaving peers are skipped, not fatal.
  Result<std::vector<Post>> FetchPeerList(const std::string& term) const;

  /// PeerList truncated server-side to the `limit` posts with the
  /// longest index lists (Sec. 4: fetch "only a subset, say the top-k
  /// peers from each list"). limit == 0 fetches everything.
  Result<std::vector<Post>> FetchTopPeerList(const std::string& term,
                                             size_t limit) const;

  /// The `k` peers with the largest aggregate index-list mass summed
  /// over `terms`, computed by the TPUT distributed top-k algorithm
  /// (Sec. 4: "the top-k peers over all lists, calculated by a
  /// distributed top-k algorithm") — no full PeerList ever crosses the
  /// wire. Exact with respect to the ranking criterion.
  Result<std::vector<uint64_t>> TopPeersAcrossTerms(
      const std::vector<std::string>& terms, size_t k) const;

  /// The Posts of specific peers for one term (peers without a post for
  /// the term are skipped).
  Result<std::vector<Post>> FetchPostsForPeers(
      const std::string& term, const std::vector<uint64_t>& peer_ids) const;

  /// Removes this peer's post for a term (e.g. on graceful shutdown).
  Status Withdraw(const std::string& term, uint64_t peer_id);

  /// The DHT key a term's PeerList lives under.
  static std::string KeyForTerm(const std::string& term);

 private:
  DhtStore* store_;
};

}  // namespace iqn

#endif  // IQN_MINERVA_DIRECTORY_H_

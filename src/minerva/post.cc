#include "minerva/post.h"

#include "synopses/bloom_filter.h"
#include "synopses/hash_sketch.h"
#include "synopses/loglog.h"
#include "synopses/min_wise.h"
#include "synopses/serialization.h"
#include "util/bits.h"
#include "util/mem_stats.h"

namespace iqn {

Result<std::unique_ptr<SetSynopsis>> SynopsisConfig::MakeEmpty(
    size_t bits_override) const {
  size_t budget = bits_override == 0 ? bits : bits_override;
  if (budget < 32) {
    return Status::InvalidArgument("synopsis budget below 32 bits");
  }
  switch (type) {
    case SynopsisType::kMinWise: {
      // Paper accounting: 32 bits per stored permutation minimum.
      size_t n = budget / 32;
      IQN_ASSIGN_OR_RETURN(
          MinWiseSynopsis mw,
          MinWiseSynopsis::Create(n, UniversalHashFamily(seed)));
      return std::unique_ptr<SetSynopsis>(new MinWiseSynopsis(std::move(mw)));
    }
    case SynopsisType::kBloomFilter: {
      IQN_ASSIGN_OR_RETURN(BloomFilter bf,
                           BloomFilter::Create(budget, bloom_hashes, seed));
      return std::unique_ptr<SetSynopsis>(new BloomFilter(std::move(bf)));
    }
    case SynopsisType::kHashSketch: {
      size_t width = hash_sketch_bitmap_bits;
      size_t bitmaps = budget / width;
      if (bitmaps == 0) bitmaps = 1;
      IQN_ASSIGN_OR_RETURN(HashSketch hs,
                           HashSketch::Create(bitmaps, width, seed));
      return std::unique_ptr<SetSynopsis>(new HashSketch(std::move(hs)));
    }
    case SynopsisType::kLogLog: {
      size_t buckets = budget / LogLogCounter::kRegisterBits;
      if (buckets < 16) buckets = 16;
      if (!IsPowerOfTwo(buckets)) {
        buckets = NextPowerOfTwo(buckets) / 2;  // stay within the budget
      }
      IQN_ASSIGN_OR_RETURN(LogLogCounter ll, LogLogCounter::Create(buckets, seed));
      return std::unique_ptr<SetSynopsis>(new LogLogCounter(std::move(ll)));
    }
  }
  return Status::InvalidArgument("unknown synopsis type");
}

Result<ScoreHistogramSynopsis> SynopsisConfig::MakeEmptyHistogram() const {
  if (histogram_cells == 0) {
    return Status::FailedPrecondition("histograms disabled (0 cells)");
  }
  size_t per_cell = bits / histogram_cells;
  // The factory is called once per cell inside Create; capture by value.
  SynopsisConfig cell_config = *this;
  Status first_error = Status::OK();
  auto factory = [cell_config, per_cell,
                  &first_error]() -> std::unique_ptr<SetSynopsis> {
    Result<std::unique_ptr<SetSynopsis>> r = cell_config.MakeEmpty(per_cell);
    if (!r.ok()) {
      if (first_error.ok()) first_error = r.status();
      return nullptr;
    }
    return std::move(r).value();
  };
  Result<ScoreHistogramSynopsis> hist =
      ScoreHistogramSynopsis::Create(histogram_cells, factory);
  if (!hist.ok()) {
    return first_error.ok() ? hist.status() : first_error;
  }
  return hist;
}

void Post::Serialize(ByteWriter* writer) const {
  writer->PutVarint(peer_id);
  writer->PutU64(address);
  writer->PutString(term);
  writer->PutVarint(list_length);
  writer->PutDouble(max_score);
  writer->PutDouble(avg_score);
  writer->PutVarint(term_space_size);
  writer->PutBytes(synopsis);
  writer->PutBytes(histogram);
}

Result<Post> Post::Deserialize(ByteReader* reader) {
  Post post;
  IQN_RETURN_IF_ERROR(reader->GetVarint(&post.peer_id));
  IQN_RETURN_IF_ERROR(reader->GetU64(&post.address));
  IQN_RETURN_IF_ERROR(reader->GetString(&post.term));
  IQN_RETURN_IF_ERROR(reader->GetVarint(&post.list_length));
  IQN_RETURN_IF_ERROR(reader->GetDouble(&post.max_score));
  IQN_RETURN_IF_ERROR(reader->GetDouble(&post.avg_score));
  IQN_RETURN_IF_ERROR(reader->GetVarint(&post.term_space_size));
  IQN_RETURN_IF_ERROR(reader->GetBytes(&post.synopsis));
  IQN_RETURN_IF_ERROR(reader->GetBytes(&post.histogram));
  return post;
}

Result<std::unique_ptr<SetSynopsis>> Post::DecodeSynopsis() const {
  return DeserializeSynopsisFromBytes(synopsis);
}

Result<ScoreHistogramSynopsis> Post::DecodeHistogram() const {
  if (histogram.empty()) {
    return Status::NotFound("post carries no histogram synopsis");
  }
  ByteReader reader(histogram);
  return DeserializeHistogram(&reader);
}

namespace {

// Decoded-synopsis memos live exactly as long as their shared_ptr
// control blocks, across arbitrarily many Post copies — so the
// synopses.decoded balance is tied to the deleter: charged when the
// memo materializes, released when the LAST sharer drops it.
template <typename T>
std::shared_ptr<const T> ChargeDecoded(std::unique_ptr<T> decoded,
                                       size_t size_bits) {
  MemTracker* mem = MemStats::Default().GetTracker(kMemDecodedSynopses);
  const int64_t bytes = static_cast<int64_t>(size_bits / 8);
  mem->Charge(bytes);
  return std::shared_ptr<const T>(decoded.release(), [mem, bytes](const T* p) {
    mem->Release(bytes);
    delete p;
  });
}

}  // namespace

Result<std::shared_ptr<const SetSynopsis>> Post::SharedSynopsis() const {
  if (synopsis_memo_ == nullptr) {
    IQN_ASSIGN_OR_RETURN(std::unique_ptr<SetSynopsis> decoded,
                         DecodeSynopsis());
    const size_t bits = decoded->SizeBits();
    synopsis_memo_ = ChargeDecoded(std::move(decoded), bits);
  }
  return synopsis_memo_;
}

Result<std::shared_ptr<const ScoreHistogramSynopsis>> Post::SharedHistogram()
    const {
  if (histogram_memo_ == nullptr) {
    IQN_ASSIGN_OR_RETURN(ScoreHistogramSynopsis decoded, DecodeHistogram());
    auto owned =
        std::make_unique<ScoreHistogramSynopsis>(std::move(decoded));
    const size_t bits = owned->SizeBits();
    histogram_memo_ = ChargeDecoded(std::move(owned), bits);
  }
  return histogram_memo_;
}

}  // namespace iqn

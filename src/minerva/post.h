// Directory Posts (paper Sec. 4): the per-(peer, term) statistics record
// every peer publishes to the distributed directory, and the system-wide
// synopsis configuration all peers agree on.

#ifndef IQN_MINERVA_POST_H_
#define IQN_MINERVA_POST_H_

#include <cstdint>
#include <memory>
#include <string>

#include "net/message.h"
#include "synopses/histogram_synopsis.h"
#include "synopses/synopsis.h"
#include "util/bytes.h"
#include "util/status.h"

namespace iqn {

/// System-wide synopsis agreement. Everything here is a *global* system
/// parameter: Bloom filters and hash sketches only combine at identical
/// geometry (Sec. 3.4), and MIPs require the shared hash-family seed
/// (Sec. 5.3). Individual peers may still shorten their MIPs vectors
/// (heterogeneous lengths, Sec. 7.2) — `bits` is the default budget.
struct SynopsisConfig {
  SynopsisType type = SynopsisType::kMinWise;
  /// Per-term synopsis budget in bits (paper accounting: one MIPs
  /// permutation = 32 bits, so 2048 bits = 64 permutations).
  size_t bits = 2048;
  /// Bloom probe count (global parameter, like the filter size).
  size_t bloom_hashes = 4;
  /// Hash-sketch bitmap width; #bitmaps = bits / this.
  size_t hash_sketch_bitmap_bits = 64;
  /// Score-histogram cells per synopsis; 0 disables histograms (Sec. 7.1).
  /// When enabled, each cell gets bits/histogram_cells bits.
  size_t histogram_cells = 0;
  /// Ship Bloom filters Golomb-Rice compressed (paper ref. [26]); only
  /// affects the wire image, storage and semantics are unchanged.
  bool compress_bloom = false;
  /// The one out-of-band agreement among all peers.
  uint64_t seed = 0x4d494e4552564131ULL;

  /// Creates an empty synopsis of the configured type and budget.
  /// `bits_override` (0 = use `bits`) supports adaptive lengths.
  Result<std::unique_ptr<SetSynopsis>> MakeEmpty(size_t bits_override = 0) const;

  /// Creates an empty score histogram whose cells follow this config.
  Result<ScoreHistogramSynopsis> MakeEmptyHistogram() const;
};

/// One directory posting: "peer `peer_id` (reachable at `address`) holds
/// `list_length` documents for `term`, with these score statistics and
/// this docId-set synopsis."
struct Post {
  uint64_t peer_id = 0;
  NodeAddress address = kInvalidAddress;
  std::string term;
  /// Index list length = document frequency of the term at this peer
  /// (cdf_{i,t} in CORI).
  uint64_t list_length = 0;
  double max_score = 0.0;
  double avg_score = 0.0;
  /// Distinct terms at this peer (|V_i| in CORI's T component).
  uint64_t term_space_size = 0;
  /// Serialized flat docId-set synopsis (always present).
  Bytes synopsis;
  /// Serialized score-histogram synopsis (empty unless the system runs
  /// with histogram_cells > 0).
  Bytes histogram;

  void Serialize(ByteWriter* writer) const;
  static Result<Post> Deserialize(ByteReader* reader);

  /// Deserializes the flat synopsis payload.
  Result<std::unique_ptr<SetSynopsis>> DecodeSynopsis() const;
  /// Deserializes the histogram payload (error if absent).
  Result<ScoreHistogramSynopsis> DecodeHistogram() const;

  /// DecodeSynopsis with a memo: the first successful decode is cached
  /// and shared by every copy of this Post made AFTER it (routing copies
  /// candidates for replacement re-entry; the directory cache
  /// pre-materializes decodes at fill time), so the IQN loop never pays
  /// wire-decode twice for a term it already correlated. Failures are
  /// not memoized — each call re-reports the original error.
  ///
  /// Thread-safety: materializing the memo WRITES the Post; do it from
  /// the post's owning thread (candidate scoring partitions candidates
  /// per ParallelFor chunk, and the pool join publishes the memo before
  /// any other thread reads the copy).
  Result<std::shared_ptr<const SetSynopsis>> SharedSynopsis() const;
  /// DecodeHistogram with the same memo contract as SharedSynopsis.
  Result<std::shared_ptr<const ScoreHistogramSynopsis>> SharedHistogram()
      const;

 private:
  /// Success-only decode memos (see SharedSynopsis). Mutable: decoding
  /// is logically const — the memo holds exactly what DecodeSynopsis
  /// would return for the immutable wire bytes.
  mutable std::shared_ptr<const SetSynopsis> synopsis_memo_;
  mutable std::shared_ptr<const ScoreHistogramSynopsis> histogram_memo_;
};

}  // namespace iqn

#endif  // IQN_MINERVA_POST_H_

// minerva::Engine — the public facade of the IQN reproduction.
//
// One options struct, one engine, Status-returning entry points:
//
//   minerva::EngineOptions options;
//   options.routing.kind = minerva::RouterKind::kIqn;
//   options.max_peers = 3;
//   auto engine = minerva::Engine::Create(options, std::move(collections));
//   engine.value()->Publish();
//   iqn::QueryOutcome outcome;
//   engine.value()->RunQuery(0, query, &outcome);
//
// Everything examples, benches, and tools need lives here (or in the
// public data-model headers this pulls in: minerva/routing.h,
// minerva/execution.h, minerva/engine.h). The router implementations and
// the query processor are internal (minerva/internal/); select routers
// declaratively via RoutingSpec instead of constructing them.
//
// For flag-driven binaries, EngineOptions::RegisterFlags declares the
// standard engine flag set on a Flags instance and FromFlags builds the
// options from the parsed values — no per-binary plumbing.

#ifndef IQN_MINERVA_API_H_
#define IQN_MINERVA_API_H_

#include <memory>
#include <string>
#include <vector>

#include "minerva/engine.h"
#include "net/fault.h"
#include "util/flags.h"
#include "util/profiler.h"

namespace minerva {

/// Which routing method drives peer selection.
enum class RouterKind {
  kIqn,            // the paper's contribution (quality x novelty, iterative)
  kCori,           // quality-only CORI baseline
  kRandom,         // random-selection sanity floor
  kSimpleOverlap,  // the authors' prior one-shot overlap method
};

const char* RouterKindName(RouterKind kind);

/// Canonical enum spellings, shared by the flag surface (FromFlags) and
/// the declarative scenario specs (minerva/scenario.h). Parse* returns
/// InvalidArgument listing the accepted spellings; *Name inverts it.
iqn::Result<RouterKind> ParseRouterKind(const std::string& name);
iqn::Result<iqn::SynopsisType> ParseSynopsisType(const std::string& name);
iqn::Result<iqn::AggregationStrategy> ParseAggregation(const std::string& name);
iqn::Result<iqn::MergeStrategy> ParseMerge(const std::string& name);
const char* SynopsisSpelling(iqn::SynopsisType type);
const char* AggregationSpelling(iqn::AggregationStrategy strategy);
const char* MergeSpelling(iqn::MergeStrategy strategy);

/// Declarative router selection (replaces constructing Router objects).
struct RoutingSpec {
  RouterKind kind = RouterKind::kIqn;
  /// IQN knobs; its `cori` params also configure kCori / kSimpleOverlap.
  iqn::IqnOptions iqn;
  /// Seed of the kRandom router.
  uint64_t random_seed = 1;
};

/// Everything configurable about an Engine, in one struct.
struct EngineOptions {
  /// System assembly: synopses, scoring, directory replication and
  /// truncation, merge strategy, retry/deadline policy, tracing, the
  /// directory cache (core.cache), and the resilience layer
  /// (core.health, core.hedge).
  iqn::EngineOptions core;
  /// How queries are routed.
  RoutingSpec routing;
  /// Remote peers contacted per query.
  size_t max_peers = 5;
  /// Worker threads for query batches and candidate-parallel scoring
  /// (<= 1 is fully serial).
  size_t threads = 1;
  /// Installed into the simulated network at Create when active().
  iqn::FaultPlan fault_plan;
  /// Sink paths for WriteSinks(); a nonempty trace_out or profile_out
  /// implies core.collect_traces. profile_out gets the folded stacks
  /// (exclusive simulated microseconds) of every traced query, and
  /// additionally turns on the wall-clock CpuProfiler leg (wall numbers
  /// never reach the folded file — it stays deterministic).
  std::string trace_out;
  std::string metrics_out;
  std::string profile_out;

  /// Declares the standard engine flag set (router, synopsis, cache,
  /// retry/deadline, faults, health/hedging, sinks, threads,
  /// max_peers) on `flags`.
  static void RegisterFlags(iqn::Flags* flags);
  /// Builds options from parsed flag values (flags must have been set up
  /// by RegisterFlags). InvalidArgument on unknown enum spellings.
  static iqn::Result<EngineOptions> FromFlags(const iqn::Flags& flags);
};

class Engine {
 public:
  using BatchQuery = iqn::MinervaEngine::BatchQuery;

  /// Builds a network of `collections.size()` peers, installs the fault
  /// plan (when active), and sizes the worker pool. Call Publish()
  /// before running queries.
  [[nodiscard]] static iqn::Result<std::unique_ptr<Engine>> Create(
      EngineOptions options, std::vector<iqn::Corpus> collections);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Every locally-owned peer posts synopses + statistics for every term
  /// it holds (every peer on the simulated transport; only this rank's
  /// peers on a multi-rank tcp transport — see MinervaEngine::PublishAll).
  [[nodiscard]] iqn::Status Publish();

  /// Publishes one peer's posts — the granule minervad's control
  /// protocol drives rank by rank.
  [[nodiscard]] iqn::Status PublishPeer(size_t peer_index) {
    return core_->PublishPeer(peer_index);
  }

  /// Full pipeline for one query under the configured routing and peer
  /// budget. The outcome's trace (when tracing) is retained for
  /// WriteSinks.
  [[nodiscard]] iqn::Status RunQuery(size_t initiator, const iqn::Query& query,
                       iqn::QueryOutcome* outcome);

  /// Same, overriding routing method and peer budget per call (for
  /// method-comparison sweeps).
  [[nodiscard]] iqn::Status RunQueryWith(const RoutingSpec& spec, size_t initiator,
                           const iqn::Query& query, size_t max_peers,
                           iqn::QueryOutcome* outcome);

  /// Concurrent batch under the configured routing, peer budget, and
  /// thread count; outcomes are bit-identical to serial execution.
  [[nodiscard]] iqn::Status RunQueryBatch(const std::vector<BatchQuery>& batch,
                            std::vector<iqn::QueryOutcome>* outcomes);

  /// Same, overriding routing, budget, and threads per call.
  [[nodiscard]] iqn::Status RunQueryBatchWith(const RoutingSpec& spec,
                                const std::vector<BatchQuery>& batch,
                                size_t max_peers, size_t num_threads,
                                std::vector<iqn::QueryOutcome>* outcomes);

  /// Renders the per-iteration routing explanation of an outcome
  /// (requires core.collect_traces).
  [[nodiscard]] iqn::Status Explain(const iqn::QueryOutcome& outcome,
                      std::string* text) const;

  /// Writes the configured sinks: trace_out gets a Chrome trace_event
  /// JSON of every traced query so far, metrics_out a metrics-registry
  /// snapshot, profile_out the folded stacks of those same traces.
  /// Empty paths are skipped.
  [[nodiscard]] iqn::Status WriteSinks() const;

  /// The aggregated per-phase profile of every traced query so far
  /// (simulated time, plus wall totals when the CpuProfiler ran).
  iqn::ProfileReport Profile() const;

  /// Zeroes the process-wide metrics registry (e.g. after Publish, to
  /// snapshot only the query phase).
  void ResetMetrics();

  // System access (all public types).
  size_t num_peers() const { return core_->num_peers(); }
  iqn::Peer& peer(size_t i) { return core_->peer(i); }
  iqn::Transport& network() { return core_->network(); }
  const EngineOptions& options() const { return options_; }
  uint64_t TotalBytesSent() const { return core_->TotalBytesSent(); }
  std::vector<iqn::ScoredDoc> ReferenceResults(const iqn::Query& query) const {
    return core_->ReferenceResults(query);
  }
  void RebuildReferenceIndex() { core_->RebuildReferenceIndex(); }
  void AdvanceCacheTime(double delta_ms) { core_->AdvanceCacheTime(delta_ms); }
  iqn::DirectoryCache* directory_cache(size_t i) {
    return core_->directory_cache(i);
  }

  /// The wrapped engine, for call sites the facade does not cover
  /// (tests, advanced benches). Prefer the facade methods.
  iqn::MinervaEngine& core() { return *core_; }

  ~Engine();

 private:
  explicit Engine(EngineOptions options);

  EngineOptions options_;
  std::unique_ptr<iqn::MinervaEngine> core_;
  /// The router options_.routing selects, built once at Create.
  std::unique_ptr<iqn::Router> router_;
  /// Traces of every traced query, in completion order (WriteSinks).
  std::vector<std::shared_ptr<const iqn::QueryTrace>> traces_;
};

}  // namespace minerva

#endif  // IQN_MINERVA_API_H_

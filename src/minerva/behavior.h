// Adversarial peer behaviors (the scenario harness's robustness
// workload).
//
// The paper's evaluation assumes every peer reports its CORI statistics
// and synopses honestly. A deployed P2P search network cannot: a peer
// that inflates its claimed list lengths looks both high-quality (the
// cdf component of CORI grows with claimed size) and high-novelty (the
// claimed cardinality feeds the novelty estimate), so Select-Best-Peer
// keeps routing queries to it — displacing peers that would actually
// deliver. A peer that poisons its synopses with fabricated document
// ids fakes novelty directly: its synopsis resembles nothing, so it
// always looks like fresh coverage.
//
// This header defines WHAT a peer lies about; Peer::BuildPost applies
// the lie at post-construction time, so every publish path (full,
// batched, adaptive, churn republish) misreports consistently. The
// countermeasure — claim-vs-observed calibration with a per-peer
// reputation discount — lives in minerva/reputation.h.
//
// Everything is deterministic: which peers turn adversarial is a pure
// function of (seed, fraction, peer population), and the fabricated doc
// ids are hashes of (seed, peer, term, index).

#ifndef IQN_MINERVA_BEHAVIOR_H_
#define IQN_MINERVA_BEHAVIOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace iqn {

enum class PeerBehavior {
  kHonest,
  /// Multiplies the claimed list_length of every post by
  /// AdversaryConfig::inflate_factor. The synopsis stays truthful, so
  /// the lie is only in the statistics — the subtler attack.
  kInflateClaims,
  /// Adds (inflate_factor - 1) x list_length fabricated document ids to
  /// every posted synopsis AND inflates list_length to match, so the
  /// claim is self-consistent (synopsis cardinality agrees with the
  /// claimed length) and cannot be caught by cross-checking the post
  /// against itself.
  kPoisonSynopses,
};

const char* PeerBehaviorName(PeerBehavior behavior);
Result<PeerBehavior> ParsePeerBehavior(const std::string& name);

/// Engine-level adversary model: a seeded fraction of peers misbehave.
struct AdversaryConfig {
  /// Fraction of peers that are adversarial, in [0, 1]. The exact count
  /// is round(fraction * num_peers), chosen by seeded ranking — never a
  /// binomial draw, so small networks get exactly the configured share.
  double fraction = 0.0;
  PeerBehavior behavior = PeerBehavior::kInflateClaims;
  /// How big the lie is (claimed size as a multiple of the true size).
  /// Must be >= 1; 1 makes adversaries behave honestly.
  double inflate_factor = 10.0;
  /// Seed of the adversary selection and of fabricated doc ids.
  uint64_t seed = 0;

  bool active() const { return fraction > 0.0 && inflate_factor > 1.0; }
};

/// The round(fraction * num_peers) peer indices ranked highest by
/// Hash64(index, seed), in ascending index order — the seeded
/// exact-share selection SelectAdversaries uses, reusable for any
/// other "mark this fraction of the population" need (the scenario
/// harness picks overloaded peers with it). Empty when fraction <= 0
/// or the rounded count is 0.
std::vector<size_t> SelectPeerFraction(uint64_t seed, double fraction,
                                       size_t num_peers);

/// The round(fraction * num_peers) peer indices that misbehave under
/// `config`, in ascending order. Deterministic: peers are ranked by
/// Mix64(seed ^ peer index) and the top share is taken.
std::vector<size_t> SelectAdversaries(const AdversaryConfig& config,
                                      size_t num_peers);

/// A fabricated document id for poisoned synopses: far outside any real
/// id range and unique per (seed, peer, term, index).
uint64_t FabricatedDocId(uint64_t seed, uint64_t peer_id,
                         const std::string& term, uint64_t index);

}  // namespace iqn

#endif  // IQN_MINERVA_BEHAVIOR_H_

// MinervaEngine: assembles the whole system — simulated network, Chord
// ring, replicated directory, peers with their collections — and runs the
// full query pipeline (local execution -> directory lookups -> routing ->
// forwarding -> merging -> evaluation). Examples, benches, and tools go
// through the minerva::Engine facade (minerva/api.h), which wraps this
// class; the Router-taking entry points here are deprecated outside it.

#ifndef IQN_MINERVA_ENGINE_H_
#define IQN_MINERVA_ENGINE_H_

#include <memory>
#include <vector>

#include "dht/chord.h"
#include "dht/kv_store.h"
#include "dht/kv_version.h"
#include "ir/recall.h"
#include "minerva/behavior.h"
#include "minerva/degradation.h"
#include "minerva/directory_cache.h"
#include "minerva/execution.h"
#include "minerva/peer.h"
#include "minerva/reputation.h"
#include "minerva/routing.h"
#include "net/rpc_policy.h"
#include "net/transport.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "util/trace.h"

// The MinervaEngine entry points below are the LEGACY surface: they take
// a Router instance, which now lives in an internal header. New code
// should use the minerva::Engine facade (minerva/api.h), which selects
// routers declaratively. Wrappers (api.cc) and tests opt out of the
// deprecation warning by defining IQN_ALLOW_LEGACY_ENGINE_API.
#if defined(IQN_ALLOW_LEGACY_ENGINE_API)
#define IQN_LEGACY_ENGINE_DEPRECATED
#else
#define IQN_LEGACY_ENGINE_DEPRECATED \
  [[deprecated("use minerva::Engine (minerva/api.h)")]]
#endif

namespace iqn {

struct EngineOptions {
  SynopsisConfig synopsis;
  ScoringModel scoring;
  /// Copies of each directory entry (owner + replicas).
  size_t directory_replication = 1;
  /// Batch posts by directory node when publishing (Sec. 7.2).
  bool batch_posting = false;
  /// Fetch only the top-so-many posts per term during routing (Sec. 4);
  /// 0 fetches complete PeerLists.
  size_t peerlist_limit = 0;
  /// When > 0, determine the candidate set with the distributed top-k
  /// algorithm over ALL query terms (Sec. 4) instead of fetching
  /// PeerLists; the value is the number of candidate peers to surface.
  /// Takes precedence over peerlist_limit.
  size_t distributed_topk_candidates = 0;
  /// How per-peer result lists are merged into the global ranking.
  MergeStrategy merge = MergeStrategy::kRawScores;
  /// Seed the IQN reference from the initiator's per-term synopses
  /// (Sec. 5.1's alternative: the reference then covers everything the
  /// initiator holds for the query, not just its top-k result).
  bool seed_reference_from_synopses = false;
  LatencyModel latency;
  /// Which Transport backend carries the RPCs (net/transport.h). The
  /// default simulated transport supports every feature; a multi-rank
  /// tcp transport restricts the configuration (directory_replication
  /// must be 1, reputation/health must be off — those subsystems keep
  /// global state that would silently diverge per process) and Create
  /// rejects violations with InvalidArgument.
  TransportOptions transport;
  /// Retry policy every remote interaction of a query runs under
  /// (directory lookups, distributed top-k, query forwarding). The
  /// default — one attempt, no backoff — is behaviorally identical to
  /// issuing raw RPCs.
  RetryPolicy retry;
  /// Per-query simulated-time deadline budget in milliseconds; <= 0 is
  /// unlimited. When the budget runs out mid-query, remaining RPCs fail
  /// fast with DeadlineExceeded and the query returns what it has
  /// (partial), rather than erroring.
  double query_deadline_ms = 0.0;
  /// Attach a hierarchical trace (util/trace.h) to every QueryOutcome:
  /// IQN iterations with their candidate rankings, synopsis decode,
  /// every RPC leg with retries and faults, degradation events — all on
  /// simulated time, so traces are bit-identical across runs and thread
  /// counts. Off by default (a trace costs allocations per span).
  bool collect_traces = false;
  /// Per-initiator versioned caching of directory PeerLists
  /// (minerva/directory_cache.h): hits skip the directory RPCs AND the
  /// synopsis wire-decode, at zero network cost; publish-version stamps
  /// invalidate precisely on republish/churn. Results stay bit-identical
  /// to uncached runs; only traffic drops.
  CacheConfig cache;
  /// Adversarial peers (minerva/behavior.h): a seeded exact fraction of
  /// peers inflate their claimed statistics and/or poison their posted
  /// synopses. Applied to the peer set at Create, before any publish.
  AdversaryConfig adversary;
  /// Claim-vs-observed reputation calibration (minerva/reputation.h):
  /// when enabled, the engine keeps a book of what each peer claimed vs
  /// delivered and Select-Best-Peer discounts quality accordingly — the
  /// robustness extension the adversary bench measures. Updates happen
  /// at the same deterministic commit points as the directory cache.
  ReputationParams reputation;
  /// Per-peer failure detection + circuit breaking (net/health.h): when
  /// enabled, every query's RPC outcomes feed per-peer EWMAs at the
  /// engine's commit points; open circuits make CallRpc fail fast and
  /// Select-Best-Peer skip the peer. health.brownout_threshold > 0
  /// additionally enables the deadline-pressure brownout (reduced
  /// max_peers) even when the tracker itself is off.
  HealthParams health;
  /// Hedged backup requests (net/rpc_policy.h): a slow failed attempt
  /// deterministically charges one backup send and takes the first
  /// success, with the overlapped waiting credited back.
  HedgePolicy hedge;
};

/// Everything measured about one routed query.
struct QueryOutcome {
  RoutingDecision decision;
  QueryExecution execution;
  /// Relative recall of the distinct retrieved documents against the
  /// centralized reference engine's top-k (paper Sec. 8.1), counting the
  /// initiator's local results.
  double recall = 0.0;
  /// Same measure counting only the documents delivered by the *queried*
  /// peers — the paper's Fig. 3 view, where the x-axis is the number of
  /// remote peers a query is forwarded to.
  double recall_remote_only = 0.0;
  /// Redundancy across the contacted peers' raw lists.
  double duplicate_fraction = 0.0;
  size_t distinct_results = 0;
  /// Network cost split by phase.
  uint64_t routing_messages = 0;
  uint64_t routing_bytes = 0;
  uint64_t execution_messages = 0;
  uint64_t execution_bytes = 0;
  /// Simulated transfer latency per phase (the network's LatencyModel
  /// applied to every message of the phase).
  double routing_latency_ms = 0.0;
  double execution_latency_ms = 0.0;
  /// How much repair machinery this query needed (all zeros on a
  /// fault-free run).
  DegradationReport degradation;
  /// Claim-vs-observed record per attempted peer, in attempt order
  /// (what the reputation book is fed with; filled whether or not
  /// EngineOptions::reputation is enabled — it is pure diagnostics
  /// until the book consumes it).
  std::vector<PeerCalibration> calibrations;
  /// Observed per-destination RPC outcomes (net/health.h), in issue
  /// order — collected during the query, committed into the engine's
  /// HealthTracker at the same deterministic points as the reputation
  /// book. Empty unless EngineOptions::health.enabled.
  std::vector<HealthObservation> health_observations;
  /// The query's span tree when EngineOptions::collect_traces is set
  /// (shared_ptr keeps outcomes copyable); nullptr otherwise. Feed to
  /// ExplainQuery (minerva/explain.h) or the Chrome trace exporter.
  std::shared_ptr<const QueryTrace> trace;
};

class MinervaEngine {
 public:
  /// Builds a network of `collections.size()` peers, one collection each.
  /// Call PublishAll() before routing queries.
  IQN_LEGACY_ENGINE_DEPRECATED
  static Result<std::unique_ptr<MinervaEngine>> Create(
      EngineOptions options, std::vector<Corpus> collections);

  size_t num_peers() const { return peers_.size(); }
  Peer& peer(size_t i) { return *peers_[i]; }
  const Peer& peer(size_t i) const { return *peers_[i]; }
  Transport& network() { return *network_; }
  ChordRing& ring() { return *ring_; }
  const EngineOptions& options() const { return options_; }

  /// Every locally-owned peer posts synopses + statistics for every term
  /// it holds. On the simulated transport that is every peer; on a
  /// multi-rank tcp transport each rank publishes only the peers it owns
  /// (posts to remotely-owned directory nodes travel over the wire), and
  /// the cluster driver publishes rank by rank. Directory content is
  /// insert-order independent (sorted maps), so the union is identical
  /// to the single-process publish.
  Status PublishAll();

  /// Publishes one peer's posts (honoring batch_posting) — the
  /// per-peer granule the daemon control protocol exposes.
  Status PublishPeer(size_t peer_index);

  /// Total directory traffic incurred so far (the synopsis posting cost
  /// the paper's Sec. 7.2 worries about).
  uint64_t TotalBytesSent() const { return network_->stats().bytes; }

  /// Full pipeline for one query from peer `initiator_index`, routed by
  /// `router`, contacting at most `max_peers` remote peers.
  IQN_LEGACY_ENGINE_DEPRECATED
  Result<QueryOutcome> RunQuery(size_t initiator_index, const Query& query,
                                const Router& router, size_t max_peers);

  /// One item of a query batch.
  struct BatchQuery {
    size_t initiator_index = 0;
    Query query;
  };

  /// Executes independent queries concurrently with `num_threads` workers
  /// over a shared immutable snapshot of the system: queries never mutate
  /// directory, peers, or topology, so the only synchronization needed is
  /// per-query traffic metering (each query runs under a StatsCapture and
  /// the deltas fold into the global stats in batch order afterwards).
  ///
  /// Outcomes are bit-identical to running the same queries serially
  /// through RunQuery, for any thread count — the determinism regression
  /// tests enforce this. num_threads <= 1 runs inline without a pool.
  ///
  /// All items run even when some fail; on failure the returned Status is
  /// the lowest-indexed failing item's error and no traffic is folded
  /// into the global stats. The worker pool is reused across batches and
  /// joined by the destructor, batch success or not.
  ///
  /// Do not call concurrently with itself or with any other engine
  /// mutation (PublishAll, AddDocuments, SetNodeUp, ...).
  IQN_LEGACY_ENGINE_DEPRECATED
  Result<std::vector<QueryOutcome>> RunQueryBatch(
      const std::vector<BatchQuery>& batch, const Router& router,
      size_t max_peers, size_t num_threads);

  /// Pre-creates (or resizes) the worker pool that RunQueryBatch uses and
  /// that RoutingInput hands to routers for candidate-parallel scoring.
  /// num_threads <= 1 drops the pool (fully serial operation).
  Status SetNumThreads(size_t num_threads);

  /// The centralized reference engine's top-k for a query (over the union
  /// of all collections, same scoring model).
  std::vector<ScoredDoc> ReferenceResults(const Query& query) const;

  const InvertedIndex& reference_index() const { return reference_index_; }

  /// Rebuilds the centralized reference from the peers' CURRENT
  /// collections. Call after peers crawl new documents (AddDocuments) so
  /// recall is measured against the evolved corpus.
  void RebuildReferenceIndex();

  /// Advances every directory cache's simulated TTL clock (staleness
  /// experiments; meaningless unless EngineOptions::cache.ttl_ms > 0).
  /// Call between query rounds only, never during a batch.
  void AdvanceCacheTime(double delta_ms);

  /// Peer i's directory cache, or nullptr when caching is disabled
  /// (exposed for tests and benches).
  DirectoryCache* directory_cache(size_t i) {
    return caches_.empty() ? nullptr : caches_[i].get();
  }
  /// The claim-vs-observed reputation book, or nullptr when
  /// EngineOptions::reputation is disabled (exposed for tests/benches).
  const ReputationBook* reputation_book() const { return reputation_.get(); }
  /// The per-peer circuit-breaker tracker, or nullptr when
  /// EngineOptions::health is disabled (exposed for tests/benches).
  const HealthTracker* health_tracker() const { return health_.get(); }
  /// Peer indices turned adversarial at Create (empty when the
  /// adversary config is inactive).
  const std::vector<size_t>& adversary_indices() const {
    return adversary_indices_;
  }
  /// The engine-wide publish-version map every DhtStore bumps.
  const KvVersionMap& version_map() const { return *versions_; }

  /// Joins the worker pool before any subsystem the in-flight tasks could
  /// reference is torn down. Runs even after a batch aborted with a
  /// non-OK Status — no task ever outlives the engine.
  ~MinervaEngine();

 private:
  MinervaEngine(EngineOptions options) : options_(std::move(options)) {}

  /// The full pipeline of RunQuery with all traffic charged to `delta`
  /// (starts from zero) instead of the global stats. Thread-safe for
  /// distinct queries over the published snapshot. `cache_session` (may
  /// be null) is the query's window onto its initiator's directory
  /// cache; the caller commits it at a deterministic point afterwards.
  Result<QueryOutcome> RunQueryMetered(size_t initiator_index,
                                       const Query& query,
                                       const Router& router, size_t max_peers,
                                       NetworkStats* delta,
                                       DirectoryCache::Session* cache_session);

  EngineOptions options_;
  std::unique_ptr<Transport> network_;
  std::unique_ptr<ChordRing> ring_;
  /// Publish-version counters shared by every store (must outlive them).
  std::unique_ptr<KvVersionMap> versions_;
  std::vector<std::unique_ptr<DhtStore>> stores_;
  std::vector<std::unique_ptr<Peer>> peers_;
  /// One directory cache per peer when EngineOptions::cache.enabled;
  /// empty otherwise.
  std::vector<std::unique_ptr<DirectoryCache>> caches_;
  /// Claim-vs-observed book when EngineOptions::reputation.enabled.
  /// Queries read it (RoutingInput::reputation); only the serial commit
  /// points after RunQuery / RunQueryBatch write it.
  std::unique_ptr<ReputationBook> reputation_;
  /// Per-peer failure detector / circuit breakers when
  /// EngineOptions::health.enabled. Same read/commit discipline as the
  /// reputation book; transitions are stamped with the network's
  /// simulated clock, which advances at the same commit points.
  std::unique_ptr<HealthTracker> health_;
  /// Peers SelectAdversaries turned adversarial at Create.
  std::vector<size_t> adversary_indices_;
  InvertedIndex reference_index_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace iqn

#endif  // IQN_MINERVA_ENGINE_H_

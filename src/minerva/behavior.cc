#include "minerva/behavior.h"

#include <algorithm>
#include <cmath>

#include "util/hash.h"

namespace iqn {

namespace {

// Salts separating the adversary hash streams from other Hash64 uses.
constexpr uint64_t kAdversarySelectSeed = 0xAD5E1EC7;
constexpr uint64_t kFabricatedDocSeed = 0xADD0C1D5;

}  // namespace

const char* PeerBehaviorName(PeerBehavior behavior) {
  switch (behavior) {
    case PeerBehavior::kHonest:
      return "honest";
    case PeerBehavior::kInflateClaims:
      return "inflate";
    case PeerBehavior::kPoisonSynopses:
      return "poison";
  }
  return "unknown";
}

Result<PeerBehavior> ParsePeerBehavior(const std::string& name) {
  if (name == "honest") return PeerBehavior::kHonest;
  if (name == "inflate") return PeerBehavior::kInflateClaims;
  if (name == "poison") return PeerBehavior::kPoisonSynopses;
  return Status::InvalidArgument("unknown peer behavior '" + name +
                                 "' (honest|inflate|poison)");
}

std::vector<size_t> SelectPeerFraction(uint64_t seed, double fraction,
                                       size_t num_peers) {
  std::vector<size_t> chosen;
  if (fraction <= 0.0 || num_peers == 0) return chosen;
  size_t count = static_cast<size_t>(
      std::llround(fraction * static_cast<double>(num_peers)));
  count = std::min(count, num_peers);
  if (count == 0) return chosen;

  // Rank every peer by a seeded hash and take the top `count`: the
  // selection is an exact share of the population, stable under the
  // seed, and independent of everything else in the run.
  std::vector<std::pair<uint64_t, size_t>> ranked;
  ranked.reserve(num_peers);
  for (size_t i = 0; i < num_peers; ++i) {
    ranked.emplace_back(Hash64(i, seed), i);
  }
  std::sort(ranked.begin(), ranked.end());
  chosen.reserve(count);
  for (size_t i = 0; i < count; ++i) chosen.push_back(ranked[i].second);
  std::sort(chosen.begin(), chosen.end());
  return chosen;
}

std::vector<size_t> SelectAdversaries(const AdversaryConfig& config,
                                      size_t num_peers) {
  if (!config.active()) return {};
  return SelectPeerFraction(kAdversarySelectSeed ^ config.seed,
                            config.fraction, num_peers);
}

uint64_t FabricatedDocId(uint64_t seed, uint64_t peer_id,
                         const std::string& term, uint64_t index) {
  uint64_t h = Mix64(kFabricatedDocSeed ^ seed);
  h = Mix64(h ^ peer_id);
  h = Mix64(h ^ HashString(term));
  h = Mix64(h ^ index);
  // Keep fabricated ids in the top half of the id space, far above any
  // DocId a workload generator hands out — they must never collide with
  // a real document (that would make the poison accidentally truthful).
  return h | (uint64_t{1} << 63);
}

}  // namespace iqn

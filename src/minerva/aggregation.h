// Multi-dimensional synopsis aggregation (paper Sec. 6).
//
// Posts are per term; a multi-keyword query needs a per-peer view. Two
// strategies:
//  * per-peer (Sec. 6.2): combine a peer's term synopses into ONE
//    query-specific synopsis first (union for disjunctive queries,
//    intersection for conjunctive ones), then estimate novelty against a
//    single reference synopsis;
//  * per-term (Sec. 6.3): keep one reference synopsis per query term,
//    estimate term-wise novelty, and sum — cruder, but never needs a
//    synopsis intersection, which hash sketches cannot do at all.

#ifndef IQN_MINERVA_AGGREGATION_H_
#define IQN_MINERVA_AGGREGATION_H_

#include <memory>
#include <vector>

#include "ir/query.h"
#include "synopses/synopsis.h"
#include "util/status.h"

namespace iqn {

enum class AggregationStrategy {
  kPerPeer,
  kPerTerm,
};

const char* AggregationStrategyName(AggregationStrategy strategy);

/// Combines one peer's per-term synopses into a single query-specific
/// synopsis: union of the term sets for disjunctive queries, (possibly
/// heuristic) intersection for conjunctive ones. At least one synopsis is
/// required; all must be mutually combinable.
Result<std::unique_ptr<SetSynopsis>> CombinePerTermSynopses(
    const std::vector<const SetSynopsis*>& per_term, QueryMode mode);

/// Cardinality to attribute to the combined synopsis, given the posted
/// per-term index list lengths. The synopsis's own estimate is clamped to
/// the bounds the list lengths imply: a union has at least max(len) and
/// at most sum(len) elements; an intersection at most min(len).
double CombinedCardinality(const SetSynopsis& combined,
                           const std::vector<uint64_t>& list_lengths,
                           QueryMode mode);

}  // namespace iqn

#endif  // IQN_MINERVA_AGGREGATION_H_

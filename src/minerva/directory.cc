#include "minerva/directory.h"

#include <cstdlib>

#include "dht/distributed_topk.h"

namespace iqn {

namespace {

/// Server-side PeerList ranking: posts with longer index lists first
/// (the simplest of the "IR relevance measures" Sec. 4 suggests for
/// truncated PeerList retrieval). Malformed posts rank last.
double ScorePostBytes(const Bytes& bytes) {
  ByteReader reader(bytes);
  Result<Post> post = Post::Deserialize(&reader);
  if (!post.ok()) return -1.0;
  return static_cast<double>(post.value().list_length);
}

std::vector<Post> DecodePeerList(const std::vector<Bytes>& raw) {
  std::vector<Post> posts;
  posts.reserve(raw.size());
  for (const Bytes& bytes : raw) {
    ByteReader reader(bytes);
    Result<Post> post = Post::Deserialize(&reader);
    if (post.ok()) {
      posts.push_back(std::move(post).value());
    }
    // else: a malformed post from a buggy peer — drop it, the rest of
    // the PeerList is still usable.
  }
  return posts;
}

}  // namespace

Directory::Directory(DhtStore* store) : store_(store) {
  store_->set_value_scorer(ScorePostBytes);
}

std::string Directory::KeyForTerm(const std::string& term) {
  return "term:" + term;
}

Status Directory::Publish(const Post& post) {
  if (post.term.empty()) {
    return Status::InvalidArgument("post without a term");
  }
  ByteWriter writer;
  post.Serialize(&writer);
  return store_->Upsert(KeyForTerm(post.term), std::to_string(post.peer_id),
                        writer.Take());
}

Status Directory::PublishBatch(const std::vector<Post>& posts) {
  std::vector<DhtStore::Entry> entries;
  entries.reserve(posts.size());
  for (const Post& post : posts) {
    if (post.term.empty()) {
      return Status::InvalidArgument("post without a term");
    }
    ByteWriter writer;
    post.Serialize(&writer);
    entries.push_back(DhtStore::Entry{KeyForTerm(post.term),
                                      std::to_string(post.peer_id),
                                      writer.Take()});
  }
  return store_->UpsertBatch(entries);
}

Result<std::vector<Post>> Directory::FetchPeerList(
    const std::string& term) const {
  IQN_ASSIGN_OR_RETURN(std::vector<Bytes> raw,
                       store_->GetAll(KeyForTerm(term)));
  return DecodePeerList(raw);
}

Result<std::vector<Post>> Directory::FetchTopPeerList(const std::string& term,
                                                      size_t limit) const {
  IQN_ASSIGN_OR_RETURN(std::vector<Bytes> raw,
                       store_->GetTop(KeyForTerm(term), limit));
  return DecodePeerList(raw);
}

Result<std::vector<uint64_t>> Directory::TopPeersAcrossTerms(
    const std::vector<std::string>& terms, size_t k) const {
  std::vector<std::string> keys;
  keys.reserve(terms.size());
  for (const auto& term : terms) keys.push_back(KeyForTerm(term));
  IQN_ASSIGN_OR_RETURN(TopKResult result, DistributedTopK(store_, keys, k));
  std::vector<uint64_t> peer_ids;
  peer_ids.reserve(result.best.size());
  for (const auto& entry : result.best) {
    char* end = nullptr;
    uint64_t id = std::strtoull(entry.subkey.c_str(), &end, 10);
    if (end != entry.subkey.c_str() && *end == '\0') peer_ids.push_back(id);
  }
  return peer_ids;
}

Result<std::vector<Post>> Directory::FetchPostsForPeers(
    const std::string& term, const std::vector<uint64_t>& peer_ids) const {
  std::vector<std::string> subkeys;
  subkeys.reserve(peer_ids.size());
  for (uint64_t id : peer_ids) subkeys.push_back(std::to_string(id));
  IQN_ASSIGN_OR_RETURN(std::vector<Bytes> raw,
                       store_->FetchEntries(KeyForTerm(term), subkeys));
  return DecodePeerList(raw);
}

Status Directory::Withdraw(const std::string& term, uint64_t peer_id) {
  return store_->Remove(KeyForTerm(term), std::to_string(peer_id));
}

}  // namespace iqn

#include "minerva/aggregation.h"

#include <algorithm>
#include <numeric>

namespace iqn {

const char* AggregationStrategyName(AggregationStrategy strategy) {
  switch (strategy) {
    case AggregationStrategy::kPerPeer:
      return "per-peer";
    case AggregationStrategy::kPerTerm:
      return "per-term";
  }
  return "?";
}

Result<std::unique_ptr<SetSynopsis>> CombinePerTermSynopses(
    const std::vector<const SetSynopsis*>& per_term, QueryMode mode) {
  if (per_term.empty()) {
    return Status::InvalidArgument("no synopses to combine");
  }
  for (const SetSynopsis* s : per_term) {
    if (s == nullptr) return Status::InvalidArgument("null synopsis");
  }
  std::unique_ptr<SetSynopsis> combined = per_term.front()->Clone();
  for (size_t i = 1; i < per_term.size(); ++i) {
    if (mode == QueryMode::kDisjunctive) {
      IQN_RETURN_IF_ERROR(combined->MergeUnion(*per_term[i]));
    } else {
      IQN_RETURN_IF_ERROR(combined->MergeIntersect(*per_term[i]));
    }
  }
  return combined;
}

double CombinedCardinality(const SetSynopsis& combined,
                           const std::vector<uint64_t>& list_lengths,
                           QueryMode mode) {
  double est = combined.EstimateCardinality();
  if (list_lengths.empty()) return est;
  uint64_t max_len = *std::max_element(list_lengths.begin(), list_lengths.end());
  uint64_t min_len = *std::min_element(list_lengths.begin(), list_lengths.end());
  uint64_t sum_len =
      std::accumulate(list_lengths.begin(), list_lengths.end(), uint64_t{0});
  if (mode == QueryMode::kDisjunctive) {
    double lo = static_cast<double>(max_len);
    double hi = static_cast<double>(sum_len);
    return std::clamp(est, lo, hi);
  }
  // Conjunctive: the intersection can hold at most the smallest list.
  return std::clamp(est, 0.0, static_cast<double>(min_len));
}

}  // namespace iqn

#include "minerva/reputation.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/json.h"

namespace iqn {

void ReputationBook::Observe(uint64_t peer_id, double claimed,
                             double delivered) {
  if (claimed < 0.0) claimed = 0.0;
  if (delivered < 0.0) delivered = 0.0;
  Evidence& e = evidence_[peer_id];
  e.claimed += claimed;
  e.delivered += delivered;
}

double ReputationBook::DiscountFor(uint64_t peer_id) const {
  auto it = evidence_.find(peer_id);
  if (it == evidence_.end()) return 1.0;
  const Evidence& e = it->second;
  double ratio =
      (e.delivered + params_.prior) / (e.claimed + params_.prior);
  return std::clamp(std::pow(ratio, params_.sharpness), params_.floor, 1.0);
}

std::string ReputationBook::DebugString() const {
  std::ostringstream os;
  for (const auto& [peer_id, e] : evidence_) {
    os << "peer " << peer_id << ": claimed=" << JsonDouble(e.claimed)
       << " delivered=" << JsonDouble(e.delivered)
       << " discount=" << JsonDouble(DiscountFor(peer_id)) << "\n";
  }
  return os.str();
}

}  // namespace iqn

#include "minerva/cori.h"

#include <cmath>

#include "util/check.h"

namespace iqn {

CoriTermStats ComputeCoriTermStats(const std::vector<Post>& peer_list) {
  CoriTermStats stats;
  stats.collection_frequency = peer_list.size();
  if (!peer_list.empty()) {
    double sum = 0.0;
    for (const Post& p : peer_list) {
      sum += static_cast<double>(p.term_space_size);
    }
    stats.avg_term_space = sum / static_cast<double>(peer_list.size());
  }
  return stats;
}

double CoriTermScore(const Post* post, const CoriTermStats& stats,
                     size_t num_peers, const CoriParams& params) {
  if (post == nullptr || post->list_length == 0 ||
      stats.collection_frequency == 0) {
    // cdf = 0 gives T = 0, so the belief degenerates to the baseline.
    return params.alpha;
  }
  double np = static_cast<double>(num_peers);
  double cdf = static_cast<double>(post->list_length);
  double vocab_ratio =
      stats.avg_term_space > 0.0
          ? static_cast<double>(post->term_space_size) / stats.avg_term_space
          : 1.0;
  double t = cdf / (cdf + params.df_constant + params.vocab_scale * vocab_ratio);
  double i =
      std::log((np + 0.5) / static_cast<double>(stats.collection_frequency)) /
      std::log(np + 1.0);
  if (i < 0.0) i = 0.0;  // cf_t can exceed np transiently under churn
  double score = params.alpha + (1.0 - params.alpha) * t * i;
  // With alpha in [0, 1], T in [0, 1) and I in [0, 1], the belief stays a
  // probability; the IQN loop multiplies it with novelty counts, so an
  // out-of-range belief skews peer selection silently.
  IQN_DCHECK_GE(params.alpha, 0.0);
  IQN_DCHECK_LE(params.alpha, 1.0);
  IQN_DCHECK_GE(score, 0.0);
  IQN_DCHECK_LE(score, 1.0);
  return score;
}

double CoriCollectionScore(
    const std::vector<std::string>& query_terms,
    const std::map<std::string, Post>& posts_by_term,
    const std::map<std::string, CoriTermStats>& stats_by_term,
    size_t num_peers, const CoriParams& params) {
  if (query_terms.empty()) return 0.0;
  double sum = 0.0;
  for (const std::string& term : query_terms) {
    const Post* post = nullptr;
    auto post_it = posts_by_term.find(term);
    if (post_it != posts_by_term.end()) post = &post_it->second;
    CoriTermStats stats;
    auto stats_it = stats_by_term.find(term);
    if (stats_it != stats_by_term.end()) stats = stats_it->second;
    sum += CoriTermScore(post, stats, num_peers, params);
  }
  return sum / static_cast<double>(query_terms.size());
}

}  // namespace iqn

// Public routing data model: the inputs a router consumes, the decision
// it produces, and the IQN tuning knobs.
//
// The router IMPLEMENTATIONS (the abstract Router, RandomRouter,
// CoriRouter, SimpleOverlapRouter, IqnRouter) are internal — see
// minerva/internal/router.h and minerva/internal/iqn_router.h; outside
// code selects a router declaratively through minerva::RoutingSpec in
// the minerva/api.h facade. This header carries only the types those
// selections and the resulting QueryOutcome are expressed in.

#ifndef IQN_MINERVA_ROUTING_H_
#define IQN_MINERVA_ROUTING_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ir/query.h"
#include "minerva/aggregation.h"
#include "minerva/cori.h"
#include "minerva/post.h"
#include "synopses/synopsis.h"

namespace iqn {

class ThreadPool;
class Router;          // internal; see minerva/internal/router.h
class ReputationBook;  // minerva/reputation.h
class HealthTracker;   // net/health.h

/// One prospective peer, assembled from the PeerLists of all query terms.
struct CandidatePeer {
  uint64_t peer_id = 0;
  NodeAddress address = kInvalidAddress;
  /// This peer's post per query term (terms it holds no documents for are
  /// absent).
  std::map<std::string, Post> posts;
};

struct RoutingInput {
  const Query* query = nullptr;
  const std::vector<CandidatePeer>* candidates = nullptr;
  /// Stop after selecting this many peers.
  size_t max_peers = 5;
  /// np for CORI's I component.
  size_t total_peers = 0;
  /// The query initiator's local result (seed of the reference synopsis).
  const std::vector<DocId>* local_result_docs = nullptr;
  /// Sec. 5.1's alternative seeding: a pre-built synopsis of the
  /// initiator's own coverage of the query (the union of its per-term
  /// synopses) plus its exact cardinality. When set, IQN seeds its
  /// reference from this instead of local_result_docs — the reference
  /// then represents everything the initiator holds for the query terms,
  /// not just its top-k result.
  const SetSynopsis* seed_synopsis = nullptr;
  double seed_cardinality = 0.0;
  /// System synopsis agreement (for building reference synopses).
  const SynopsisConfig* synopsis_config = nullptr;
  /// Optional worker pool. Routers with data-parallel inner loops (IQN's
  /// candidate decode and Select-Best-Peer scoring) use it when set; a
  /// null pool means strictly serial execution. Parallel and serial runs
  /// produce bit-identical decisions: scoring is read-only against the
  /// reference and the argmax reduction scans candidates in index order
  /// with the same (score, peer_id) tie-break either way.
  ThreadPool* pool = nullptr;
  /// Claim-vs-observed reputation state (minerva/reputation.h). When
  /// set, Select-Best-Peer multiplies each candidate's CORI quality by
  /// the book's per-peer discount — the robustness extension against
  /// claim-inflating / synopsis-poisoning peers. Read-only during
  /// routing; the engine updates the book at deterministic commit
  /// points only.
  const ReputationBook* reputation = nullptr;
  /// Per-peer circuit breakers (net/health.h). When set, Select-Best-
  /// Peer skips candidates whose circuit is open at simulated time
  /// `now_ms` (counted in RoutingDecision::open_circuit_skips). Same
  /// read-only contract as `reputation`: the engine owns all writes,
  /// at its commit points.
  const HealthTracker* health = nullptr;
  /// The network's simulated clock at query start; constant for the
  /// whole batch, so circuit lookups are thread-invariant.
  double now_ms = 0.0;
};

struct SelectedPeer {
  uint64_t peer_id = 0;
  NodeAddress address = kInvalidAddress;
  /// Diagnostics recorded at selection time.
  double quality = 0.0;
  double novelty = 0.0;
  double combined = 0.0;
};

struct RoutingDecision {
  std::vector<SelectedPeer> peers;  // in selection order
  /// Estimated size of the combined result space after all selected
  /// peers contribute (IQN only; 0 otherwise).
  double estimated_result_cardinality = 0.0;
  /// Candidates whose posted synopses failed to decode (corrupted in
  /// transit) and were downgraded to CORI-only quality scoring with a
  /// claimed-list-length novelty fallback, instead of failing the query
  /// (IQN only; 0 otherwise).
  size_t candidates_degraded = 0;
  /// Candidates excluded up front because their circuit breaker was
  /// open (load-shed-aware routing; IQN only, 0 otherwise).
  size_t open_circuit_skips = 0;
};

/// Tuning knobs of the IQN method (paper Sec. 5-7).
struct IqnOptions {
  AggregationStrategy aggregation = AggregationStrategy::kPerPeer;
  /// false = rank by novelty alone (the DB-style structured-query setting
  /// where all matches are equally "good").
  bool use_quality = true;
  /// Score-conscious novelty via histogram synopses (requires Posts that
  /// carry histograms, i.e. SynopsisConfig::histogram_cells > 0). Forces
  /// per-term aggregation.
  bool use_histograms = false;
  /// Weight exponent for histogram cells (Sec. 7.1): 0 = flat, 1 = linear
  /// in the cell's score midpoint.
  double histogram_weight_exponent = 1.0;
  /// Correlation-aware per-term aggregation (the extension Sec. 6.3
  /// suggests): the summed per-term novelty double-counts documents that
  /// appear in several of the candidate's query-term lists. When enabled,
  /// the sum is deflated by the candidate's own term-list correlation,
  /// estimated from its posted synopses as
  ///   |union of term lists| / sum of term list lengths.
  /// Only affects the per-term strategy on multi-term queries.
  bool correlation_aware = false;
  /// Optional early-stop: end the loop once the reference synopsis
  /// estimates at least this many covered documents (0 = disabled).
  double min_estimated_results = 0.0;
  /// A candidate whose estimated novelty is <= 0 still gets this floor,
  /// so peer selection degrades to quality ranking (instead of an
  /// arbitrary choice) once the result space looks exhausted.
  double novelty_floor = 1e-3;
  CoriParams cori;
};

}  // namespace iqn

#endif  // IQN_MINERVA_ROUTING_H_

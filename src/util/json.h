// Tiny JSON emission helpers shared by the exporters (metrics snapshot,
// Chrome trace writer, query log). Emission only — the repo never parses
// JSON in C++; tools/validate_trace.py does schema checks offline.

#ifndef IQN_UTIL_JSON_H_
#define IQN_UTIL_JSON_H_

#include <cstdint>
#include <cstdio>
#include <string>

namespace iqn {

/// Escapes a string for inclusion inside JSON double quotes.
inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Round-trippable double formatting: %.17g re-parses to the exact same
/// bits, so deterministic values survive export/import unchanged.
inline std::string JsonDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace iqn

#endif  // IQN_UTIL_JSON_H_

#include "util/json_value.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "util/check.h"
#include "util/json.h"

namespace iqn {

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Number(double d) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::String(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::Array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.items_ = std::move(items);
  return v;
}

JsonValue JsonValue::Object(std::vector<Member> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.members_ = std::move(members);
  return v;
}

bool JsonValue::bool_value() const {
  IQN_CHECK(kind_ == Kind::kBool);
  return bool_;
}

double JsonValue::number_value() const {
  IQN_CHECK(kind_ == Kind::kNumber);
  return number_;
}

const std::string& JsonValue::string_value() const {
  IQN_CHECK(kind_ == Kind::kString);
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  IQN_CHECK(kind_ == Kind::kArray);
  return items_;
}

const std::vector<JsonValue::Member>& JsonValue::members() const {
  IQN_CHECK(kind_ == Kind::kObject);
  return members_;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  IQN_CHECK(kind_ == Kind::kObject);
  for (const Member& m : members_) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

bool JsonValue::IsExactInt() const {
  if (kind_ != Kind::kNumber) return false;
  if (!std::isfinite(number_)) return false;
  if (number_ != std::floor(number_)) return false;
  return std::abs(number_) <= 9007199254740992.0;  // 2^53
}

const char* JsonValue::KindName(Kind kind) {
  switch (kind) {
    case Kind::kNull:
      return "null";
    case Kind::kBool:
      return "bool";
    case Kind::kNumber:
      return "number";
    case Kind::kString:
      return "string";
    case Kind::kArray:
      return "array";
    case Kind::kObject:
      return "object";
  }
  return "unknown";
}

namespace {

/// Recursive-descent parser over a borrowed buffer. All errors funnel
/// through Fail() so every message carries the byte offset.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    SkipWhitespace();
    IQN_ASSIGN_OR_RETURN(JsonValue v, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after the document");
    }
    return v;
  }

 private:
  Status Fail(const std::string& what) const {
    return Status::InvalidArgument("json: offset " + std::to_string(pos_) +
                                   ": " + what);
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  void SkipWhitespace() {
    while (!AtEnd()) {
      char c = Peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  Result<JsonValue> ParseValue(size_t depth) {
    if (depth > kJsonMaxDepth) {
      return Fail("nesting deeper than " + std::to_string(kJsonMaxDepth));
    }
    if (AtEnd()) return Fail("expected a value, got end of input");
    switch (Peek()) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"': {
        IQN_ASSIGN_OR_RETURN(std::string s, ParseString());
        return JsonValue::String(std::move(s));
      }
      case 't':
        IQN_RETURN_IF_ERROR(ExpectLiteral("true"));
        return JsonValue::Bool(true);
      case 'f':
        IQN_RETURN_IF_ERROR(ExpectLiteral("false"));
        return JsonValue::Bool(false);
      case 'n':
        IQN_RETURN_IF_ERROR(ExpectLiteral("null"));
        return JsonValue::Null();
      default:
        return ParseNumber();
    }
  }

  Status ExpectLiteral(const char* word) {
    size_t n = std::string(word).size();
    if (text_.compare(pos_, n, word) != 0) {
      return Fail(std::string("expected '") + word + "'");
    }
    pos_ += n;
    return Status::OK();
  }

  Result<JsonValue> ParseObject(size_t depth) {
    ++pos_;  // '{'
    std::vector<JsonValue::Member> members;
    SkipWhitespace();
    if (!AtEnd() && Peek() == '}') {
      ++pos_;
      return JsonValue::Object(std::move(members));
    }
    while (true) {
      SkipWhitespace();
      if (AtEnd() || Peek() != '"') {
        return Fail("expected a quoted object key");
      }
      IQN_ASSIGN_OR_RETURN(std::string key, ParseString());
      for (const auto& m : members) {
        if (m.first == key) return Fail("duplicate object key '" + key + "'");
      }
      SkipWhitespace();
      if (AtEnd() || Peek() != ':') {
        return Fail("expected ':' after object key '" + key + "'");
      }
      ++pos_;
      SkipWhitespace();
      IQN_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      members.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (AtEnd()) return Fail("unterminated object");
      char c = Peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return JsonValue::Object(std::move(members));
      }
      return Fail("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> ParseArray(size_t depth) {
    ++pos_;  // '['
    std::vector<JsonValue> items;
    SkipWhitespace();
    if (!AtEnd() && Peek() == ']') {
      ++pos_;
      return JsonValue::Array(std::move(items));
    }
    while (true) {
      SkipWhitespace();
      IQN_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      items.push_back(std::move(value));
      SkipWhitespace();
      if (AtEnd()) return Fail("unterminated array");
      char c = Peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return JsonValue::Array(std::move(items));
      }
      return Fail("expected ',' or ']' in array");
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // opening '"'
    std::string out;
    while (true) {
      if (AtEnd()) return Fail("unterminated string");
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        ++pos_;
        continue;
      }
      ++pos_;  // backslash
      if (AtEnd()) return Fail("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          IQN_ASSIGN_OR_RETURN(uint32_t cp, ParseHex4());
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: the low half must follow immediately.
            if (text_.compare(pos_, 2, "\\u") != 0) {
              return Fail("unpaired surrogate escape");
            }
            pos_ += 2;
            IQN_ASSIGN_OR_RETURN(uint32_t lo, ParseHex4());
            if (lo < 0xDC00 || lo > 0xDFFF) {
              return Fail("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Fail("unpaired surrogate escape");
          }
          AppendUtf8(cp, &out);
          break;
        }
        default:
          return Fail(std::string("invalid escape '\\") + e + "'");
      }
    }
  }

  Result<uint32_t> ParseHex4() {
    if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Fail("non-hex digit in \\u escape");
      }
    }
    return v;
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Result<JsonValue> ParseNumber() {
    size_t start = pos_;
    if (!AtEnd() && Peek() == '-') ++pos_;
    // Integer part: a lone 0, or [1-9][0-9]*.
    if (AtEnd() || Peek() < '0' || Peek() > '9') {
      pos_ = start;
      return Fail("expected a value");
    }
    if (Peek() == '0') {
      ++pos_;
    } else {
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    if (!AtEnd() && Peek() == '.') {
      ++pos_;
      if (AtEnd() || Peek() < '0' || Peek() > '9') {
        return Fail("digits required after decimal point");
      }
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      ++pos_;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) ++pos_;
      if (AtEnd() || Peek() < '0' || Peek() > '9') {
        return Fail("digits required in exponent");
      }
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    std::string token = text_.substr(start, pos_ - start);
    double v = std::strtod(token.c_str(), nullptr);
    if (!std::isfinite(v)) {
      return Fail("number out of double range: " + token);
    }
    return JsonValue::Number(v);
  }

  const std::string& text_;
  size_t pos_ = 0;
};

void EmitValue(const JsonValue& v, size_t indent, std::string* out) {
  const std::string pad(indent * 2, ' ');
  const std::string pad_in((indent + 1) * 2, ' ');
  switch (v.kind()) {
    case JsonValue::Kind::kNull:
      *out += "null";
      return;
    case JsonValue::Kind::kBool:
      *out += v.bool_value() ? "true" : "false";
      return;
    case JsonValue::Kind::kNumber:
      if (v.IsExactInt()) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f", v.number_value());
        *out += buf;
      } else {
        // Shortest precision that still re-parses to the exact same
        // double: hand-written 0.1 stays "0.1" instead of ballooning to
        // its 17-digit expansion, while bit round-tripping is preserved.
        char buf[32];
        for (int precision = 15; precision <= 17; ++precision) {
          std::snprintf(buf, sizeof(buf), "%.*g", precision,
                        v.number_value());
          if (std::strtod(buf, nullptr) == v.number_value()) break;
        }
        *out += buf;
      }
      return;
    case JsonValue::Kind::kString:
      *out += '"' + JsonEscape(v.string_value()) + '"';
      return;
    case JsonValue::Kind::kArray: {
      const auto& items = v.items();
      if (items.empty()) {
        *out += "[]";
        return;
      }
      *out += "[\n";
      for (size_t i = 0; i < items.size(); ++i) {
        *out += pad_in;
        EmitValue(items[i], indent + 1, out);
        if (i + 1 < items.size()) *out += ',';
        *out += '\n';
      }
      *out += pad + "]";
      return;
    }
    case JsonValue::Kind::kObject: {
      const auto& members = v.members();
      if (members.empty()) {
        *out += "{}";
        return;
      }
      *out += "{\n";
      for (size_t i = 0; i < members.size(); ++i) {
        *out += pad_in + '"' + JsonEscape(members[i].first) + "\": ";
        EmitValue(members[i].second, indent + 1, out);
        if (i + 1 < members.size()) *out += ',';
        *out += '\n';
      }
      *out += pad + "}";
      return;
    }
  }
}

}  // namespace

Result<JsonValue> ParseJson(const std::string& text) {
  return Parser(text).Parse();
}

std::string EmitJson(const JsonValue& value) {
  std::string out;
  EmitValue(value, 0, &out);
  out += '\n';
  return out;
}

}  // namespace iqn

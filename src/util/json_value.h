// A strict, Status-returning JSON parser and its document model.
//
// The repo's exporters emit JSON through util/json.h; this header adds
// the INGESTION side, built for the declarative scenario specs
// (minerva/scenario.h). Design goals, in order:
//  * Strict: RFC 8259 subset, no comments, no trailing commas, no
//    unquoted keys, full-input consumption. Anything else is a
//    descriptive InvalidArgument (syntax) or Corruption (impossible
//    encodings such as unpaired surrogates).
//  * Hostile-input safe: recursion depth is capped (kMaxDepth), string
//    and number handling never read past the buffer, and the parser is
//    the subject of fuzz/scenario_spec_fuzz.cc plus a mutation ctest.
//  * Deterministic: object members keep their source order (a sorted
//    re-emit would still be deterministic, but preserving order keeps
//    round-tripped specs diffable against their source files).
//
// Numbers are held as double plus an integer-exactness flag; the
// scenario layer needs "is this really a nonnegative integer" checks
// with good error messages.

#ifndef IQN_UTIL_JSON_VALUE_H_
#define IQN_UTIL_JSON_VALUE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace iqn {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Members in source order; keys are unique (duplicates are a parse
  /// error — silently keeping either copy would mask spec typos).
  using Member = std::pair<std::string, JsonValue>;

  JsonValue() = default;
  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b);
  static JsonValue Number(double d);
  static JsonValue String(std::string s);
  static JsonValue Array(std::vector<JsonValue> items);
  static JsonValue Object(std::vector<Member> members);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; calling the wrong one is a programming error
  /// (IQN_CHECK), not a Status — callers test kind() first.
  bool bool_value() const;
  double number_value() const;
  const std::string& string_value() const;
  const std::vector<JsonValue>& items() const;
  const std::vector<Member>& members() const;

  /// The member with `key`, or nullptr.
  const JsonValue* Find(const std::string& key) const;

  /// True when the number is integral and representable losslessly
  /// (|v| <= 2^53, no fractional part).
  bool IsExactInt() const;

  /// Human-readable kind name for error messages ("object", "number"...).
  static const char* KindName(Kind kind);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<Member> members_;
};

/// Nesting depth beyond which ParseJson refuses (stack safety under
/// adversarial input; generous for hand-written specs).
inline constexpr size_t kJsonMaxDepth = 64;

/// Parses exactly one JSON document covering the whole input (leading /
/// trailing whitespace allowed). Errors carry a byte offset and what was
/// expected, e.g. `json: offset 17: expected ':' after object key`.
Result<JsonValue> ParseJson(const std::string& text);

/// Canonical re-emission: 2-space indent, members in stored order,
/// doubles at the shortest precision that re-parses to the same bits,
/// integers without a trailing ".0". Parse(Emit(v)) == v for every
/// parsed v, and
/// Emit(Parse(Emit(v))) == Emit(v) (idempotent — the golden-spec tests
/// pin this).
std::string EmitJson(const JsonValue& value);

}  // namespace iqn

#endif  // IQN_UTIL_JSON_VALUE_H_

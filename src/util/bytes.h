// Byte-buffer encoding primitives used for everything that travels over
// the simulated network: synopses, directory Posts, DHT messages.
//
// Encoding is little-endian fixed-width plus LEB128 varints; readers
// validate bounds and return Corruption on malformed input so a bad peer
// cannot crash the engine.

#ifndef IQN_UTIL_BYTES_H_
#define IQN_UTIL_BYTES_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace iqn {

using Bytes = std::vector<uint8_t>;

/// Append-only encoder.
class ByteWriter {
 public:
  void PutU8(uint8_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutVarint(uint64_t v);
  void PutDouble(double v);
  /// Length-prefixed (varint) byte string.
  void PutBytes(const Bytes& b);
  void PutString(const std::string& s);
  /// Raw append with no length prefix.
  void PutRaw(const void* data, size_t len);

  const Bytes& data() const { return buf_; }
  Bytes Take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  Bytes buf_;
};

/// Bounds-checked decoder over a borrowed buffer.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t len) : data_(data), len_(len) {}
  explicit ByteReader(const Bytes& b) : data_(b.data()), len_(b.size()) {}

  Status GetU8(uint8_t* out);
  Status GetU32(uint32_t* out);
  Status GetU64(uint64_t* out);
  Status GetVarint(uint64_t* out);
  Status GetDouble(double* out);
  Status GetBytes(Bytes* out);
  Status GetString(std::string* out);

  /// Fail-fast guard for decoders that allocate `count` elements before
  /// reading them: returns Corruption unless the remaining buffer could
  /// possibly hold `count` items of at least `min_bytes_each` wire bytes.
  /// Call this before sizing any container from an untrusted count, so a
  /// tiny message claiming 2^31 elements is rejected without attempting
  /// the allocation. Overflow-safe for any count.
  Status CheckCountFits(uint64_t count, size_t min_bytes_each,
                        const char* what) const;

  size_t remaining() const { return len_ - pos_; }
  bool AtEnd() const { return pos_ == len_; }

 private:
  const uint8_t* data_;
  size_t len_;
  size_t pos_ = 0;
};

/// Bit-granular appender (MSB-first within each byte), used by the
/// Golomb-Rice coder for compressed Bloom filters.
class BitWriter {
 public:
  void PutBit(bool bit);
  /// Lowest `count` bits of `value`, most significant first. count <= 64.
  void PutBits(uint64_t value, size_t count);
  /// `count` one-bits followed by a zero (unary coding).
  void PutUnary(uint64_t count);

  /// Pads the final partial byte with zeros and returns the buffer.
  Bytes Finish();

  size_t bit_count() const { return bit_count_; }

 private:
  Bytes buf_;
  size_t bit_count_ = 0;
};

/// Bounds-checked bit reader matching BitWriter's layout.
class BitReader {
 public:
  explicit BitReader(const Bytes& bytes) : data_(&bytes) {}

  Status GetBit(bool* out);
  Status GetBits(size_t count, uint64_t* out);
  /// Reads ones until the terminating zero; fails after `limit` ones
  /// (corruption guard).
  Status GetUnary(uint64_t limit, uint64_t* out);

 private:
  const Bytes* data_;
  size_t pos_ = 0;  // in bits
};

}  // namespace iqn

#endif  // IQN_UTIL_BYTES_H_

// Process-wide metrics: named counters, gauges, and fixed-bucket
// histograms with a lock-free hot path.
//
// Two usage modes, one instrument vocabulary:
//  * standalone members (e.g. FaultCounters in net/fault.h) where a
//    subsystem wants exact per-instance totals;
//  * the process-wide MetricsRegistry, where instruments are looked up
//    by name once (mutex-guarded registration, stable addresses) and
//    then incremented lock-free from any thread.
//
// Determinism: counters and histograms accumulate in integers (sums are
// fixed-point, 1/1024 ms quantization), so totals are independent of the
// order concurrent threads interleave their increments — snapshots are
// bit-identical across runs and thread counts whenever the set of
// recorded events is. Gauge::Add is the one order-dependent operation
// (floating-point CAS accumulate); use it for level-style values only.
//
// This is the ONLY place in net/ + minerva/-reachable code allowed to
// own raw std::atomic counters (tools/lint.sh enforces it): ad-hoc
// atomics are invisible to snapshots and exporters.

#ifndef IQN_UTIL_METRICS_H_
#define IQN_UTIL_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace iqn {

/// Monotone event count. Increments are relaxed atomics: totals are
/// deterministic because the event set is, regardless of order.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-writer-wins level value (thread count, corpus size, ...).
/// Add() exists for convenience but is order-dependent on doubles;
/// prefer Counter for anything that must stay bit-deterministic.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. Bucket i counts observations v <= bounds[i]
/// (first matching bound); the extra last bucket is the overflow. The
/// running sum is kept in fixed point (1/1024 units) so concurrent
/// observers produce a bit-identical sum in any interleaving.
class Histogram {
 public:
  /// `upper_bounds` must be non-empty and strictly increasing (checked).
  explicit Histogram(std::vector<double> upper_bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  std::vector<uint64_t> BucketCounts() const;
  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  /// Sum of observed values, quantized to 1/1024 per observation.
  double Sum() const;
  void Reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> counts_;
  std::atomic<uint64_t> count_{0};
  std::atomic<int64_t> sum_fixed_{0};  // value * 1024, rounded
};

/// Point-in-time copy of every registered instrument, safe to read and
/// export while the hot paths keep incrementing.
struct MetricsSnapshot {
  struct HistogramData {
    std::vector<double> bounds;
    std::vector<uint64_t> counts;  // bounds.size() + 1, last = overflow
    uint64_t count = 0;
    double sum = 0.0;
  };

  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramData> histograms;

  /// The snapshot as a util/json_value document: {"counters", "gauges",
  /// "histograms"} sections, keys sorted (std::map order). Non-finite
  /// gauge values (a 0/0 ratio before first update) become null —
  /// NaN/Inf have no JSON encoding and would poison every consumer.
  class JsonValue ToJsonValue() const;

  /// ToJsonValue() through the canonical emitter: 2-space indent,
  /// shortest-round-trip doubles (0.1 stays "0.1"), diff-stable.
  std::string ToJson() const;
};

/// Name -> instrument registry. Get* registers on first use (mutex) and
/// returns a pointer that stays valid for the process lifetime; callers
/// cache it or re-look it up per event off the hot path.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every subsystem reports into.
  static MetricsRegistry& Default();

  Counter* GetCounter(const std::string& name) IQN_EXCLUDES(mu_);
  Gauge* GetGauge(const std::string& name) IQN_EXCLUDES(mu_);
  /// `bounds` is used on first registration only; later lookups of the
  /// same name return the existing histogram unchanged.
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> bounds) IQN_EXCLUDES(mu_);

  MetricsSnapshot Snapshot() const IQN_EXCLUDES(mu_);
  /// Zeroes every registered instrument (names and bounds persist).
  /// Benches call this after setup so snapshots cover the query phase.
  void Reset() IQN_EXCLUDES(mu_);

 private:
  // The maps (name -> stable instrument address) are mu_-guarded; the
  // instruments themselves are lock-free and incremented outside it.
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      IQN_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ IQN_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      IQN_GUARDED_BY(mu_);
};

}  // namespace iqn

#endif  // IQN_UTIL_METRICS_H_

#include "util/trace.h"

#include <cstdio>
#include <map>
#include <utility>

#include "util/check.h"
#include "util/json.h"
#include "util/logging.h"
#include "util/profiler.h"

namespace iqn {

namespace {

// Ambient trace of the current thread (same thread-local idiom as the
// stats sink in net/network.cc and the scope stack in net/rpc_policy.cc).
thread_local QueryTrace* tls_trace = nullptr;

}  // namespace

QueryTrace::QueryTrace(Clock simulated_clock)
    : clock_(std::move(simulated_clock)) {
  IQN_CHECK(clock_ != nullptr);
}

uint64_t QueryTrace::BeginSpan(std::string name) {
  TraceSpan span;
  span.id = static_cast<uint64_t>(spans_.size()) + 1;
  span.parent_id = open_.empty() ? 0 : open_.back();
  span.name = std::move(name);
  span.start_ms = clock_();
  span.end_ms = span.start_ms;
  spans_.push_back(std::move(span));
  open_.push_back(spans_.back().id);
  return spans_.back().id;
}

void QueryTrace::EndSpan(uint64_t id) {
  // Strict nesting: spans close innermost-first, always on the thread
  // that opened them.
  IQN_CHECK(!open_.empty());
  IQN_CHECK_EQ(open_.back(), id);
  open_.pop_back();
  TraceSpan& span = spans_[id - 1];
  span.end_ms = clock_();
  IQN_VLOG(2) << "span " << span.name << " [" << span.start_ms << ", "
              << span.end_ms << "] ms";
}

void QueryTrace::AddAttr(uint64_t id, std::string key, std::string value) {
  IQN_CHECK_GE(id, 1u);
  IQN_CHECK_LE(id, spans_.size());
  spans_[id - 1].attrs.push_back(TraceAttr{std::move(key), std::move(value)});
}

const TraceSpan* QueryTrace::Find(const std::string& name) const {
  for (const TraceSpan& span : spans_) {
    if (span.name == name) return &span;
  }
  return nullptr;
}

std::string QueryTrace::ToDebugString() const {
  std::string out;
  for (const TraceSpan& span : spans_) {
    char head[128];
    std::snprintf(head, sizeof(head), "%llu<%llu [%.17g,%.17g] ",
                  static_cast<unsigned long long>(span.id),
                  static_cast<unsigned long long>(span.parent_id),
                  span.start_ms, span.end_ms);
    out += head;
    out += span.name;
    for (const TraceAttr& attr : span.attrs) {
      out += " ";
      out += attr.key;
      out += "=";
      out += attr.value;
    }
    out += "\n";
  }
  return out;
}

TraceScope::TraceScope(QueryTrace* trace) : previous_(tls_trace) {
  tls_trace = trace;
}

TraceScope::~TraceScope() { tls_trace = previous_; }

QueryTrace* TraceScope::Current() { return tls_trace; }

ScopedSpan::ScopedSpan(const char* name) : trace_(tls_trace), name_(name) {
  if (trace_ != nullptr) id_ = trace_->BeginSpan(name);
  if (CpuProfiler::enabled()) wall_start_ns_ = CpuProfiler::NowNs();
}

void ScopedSpan::Attr(const std::string& key, std::string value) {
  if (trace_ != nullptr) trace_->AddAttr(id_, key, std::move(value));
}

void ScopedSpan::AttrDouble(const std::string& key, double v) {
  if (trace_ != nullptr) trace_->AddAttr(id_, key, JsonDouble(v));
}

void ScopedSpan::AttrUint(const std::string& key, uint64_t v) {
  if (trace_ != nullptr) trace_->AddAttr(id_, key, std::to_string(v));
}

void ScopedSpan::End() {
  if (trace_ != nullptr) {
    trace_->EndSpan(id_);
    trace_ = nullptr;
  }
  if (wall_start_ns_ != 0) {
    CpuProfiler::RecordWall(name_, CpuProfiler::NowNs() - wall_start_ns_);
    wall_start_ns_ = 0;
  }
}

std::string ChromeTraceJson(const std::vector<const QueryTrace*>& traces) {
  std::string out = "{\"traceEvents\": [";
  bool first_event = true;
  for (size_t t = 0; t < traces.size(); ++t) {
    if (traces[t] == nullptr) continue;
    for (const TraceSpan& span : traces[t]->spans()) {
      out += first_event ? "\n" : ",\n";
      first_event = false;
      out += "  {\"name\": \"" + JsonEscape(span.name) + "\", \"ph\": \"X\"";
      out += ", \"ts\": " + JsonDouble(span.start_ms * 1000.0);
      out += ", \"dur\": " + JsonDouble((span.end_ms - span.start_ms) * 1000.0);
      out += ", \"pid\": 1, \"tid\": " + std::to_string(t + 1);
      // Span/parent ids (extension keys): timestamp containment alone
      // cannot reconstruct the tree — simulated time makes many spans
      // zero-duration — and the folded-stack validator needs the exact
      // parent edges the profiler used.
      out += ", \"sid\": " + std::to_string(span.id);
      out += ", \"spid\": " + std::to_string(span.parent_id);
      out += ", \"args\": {";
      // Chrome's viewer wants unique arg keys; repeated trace keys
      // (e.g. one "cand" per ranking row) get a #<n> suffix.
      std::map<std::string, size_t> seen;
      bool first_arg = true;
      for (const TraceAttr& attr : span.attrs) {
        std::string key = attr.key;
        size_t n = seen[key]++;
        if (n > 0) key += "#" + std::to_string(n);
        if (!first_arg) out += ", ";
        first_arg = false;
        out += "\"" + JsonEscape(key) + "\": \"" + JsonEscape(attr.value) +
               "\"";
      }
      out += "}}";
    }
  }
  out += first_event ? "]}\n" : "\n]}\n";
  return out;
}

Status WriteTextFile(const std::string& path, const std::string& contents) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open " + path + " for writing");
  }
  size_t written = std::fwrite(contents.data(), 1, contents.size(), f);
  int close_rc = std::fclose(f);
  if (written != contents.size() || close_rc != 0) {
    return Status::Internal("short write to " + path);
  }
  return Status::OK();
}

Status WriteChromeTraceFile(const std::string& path,
                            const std::vector<const QueryTrace*>& traces) {
  return WriteTextFile(path, ChromeTraceJson(traces));
}

}  // namespace iqn

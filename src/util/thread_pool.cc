#include "util/thread_pool.h"

#include <atomic>
#include <exception>
#include <string>

#include "util/check.h"

namespace iqn {

namespace {

// Which pool (if any) owns the current thread. Used to detect nested
// ParallelFor calls that would deadlock waiting on their own pool.
thread_local const ThreadPool* tls_owner_pool = nullptr;

}  // namespace

void Latch::CountDown(size_t n) {
  MutexLock lock(&mu_);
  IQN_CHECK_GE(count_, n);
  count_ -= n;
  if (count_ == 0) cv_.NotifyAll();
}

void Latch::Wait() {
  MutexLock lock(&mu_);
  while (count_ != 0) cv_.Wait(&mu_);
}

ThreadPool::ThreadPool(size_t num_threads) {
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

Result<std::unique_ptr<ThreadPool>> ThreadPool::Create(size_t num_threads) {
  if (num_threads < 1 || num_threads > 512) {
    return Status::InvalidArgument("thread pool size must be in [1, 512]");
  }
  return std::unique_ptr<ThreadPool>(new ThreadPool(num_threads));
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  {
    MutexLock lock(&mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

Status ThreadPool::Schedule(std::function<void()> task) {
  IQN_CHECK(task != nullptr);
  {
    MutexLock lock(&mu_);
    if (stopping_) {
      return Status::Unavailable("thread pool is shut down");
    }
    queue_.push_back(std::move(task));
  }
  cv_.NotifyOne();
  return Status::OK();
}

void ThreadPool::WorkerLoop() {
  tls_owner_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      while (!stopping_ && queue_.empty()) cv_.Wait(&mu_);
      // Drain the queue even when stopping: Shutdown() promises queued
      // tasks run (a ParallelFor in flight counts on its helpers).
      if (queue_.empty()) break;  // only reachable when stopping_
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
  tls_owner_pool = nullptr;
}

bool ThreadPool::InWorkerThread() const { return tls_owner_pool == this; }

size_t ThreadPool::DefaultConcurrency() {
  size_t n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

namespace {

Status RunChunkGuarded(const std::function<Status(size_t, size_t)>& body,
                       size_t chunk_begin, size_t chunk_end) {
  try {
    return body(chunk_begin, chunk_end);
  } catch (const std::exception& e) {
    return Status::Internal(std::string("ParallelFor body threw: ") +
                            e.what());
  } catch (...) {
    return Status::Internal("ParallelFor body threw a non-std exception");
  }
}

}  // namespace

Status ThreadPool::ParallelFor(
    size_t begin, size_t end, size_t grain,
    const std::function<Status(size_t, size_t)>& body) {
  if (end <= begin) return Status::OK();
  if (grain == 0) grain = 1;
  const size_t n = end - begin;
  const size_t num_chunks = (n + grain - 1) / grain;

  // Serial path: a single chunk, or a nested call from one of our own
  // workers (parallelizing would deadlock the worker against itself).
  if (num_chunks == 1 || InWorkerThread()) {
    for (size_t c = 0; c < num_chunks; ++c) {
      size_t lo = begin + c * grain;
      size_t hi = lo + grain < end ? lo + grain : end;
      IQN_RETURN_IF_ERROR(RunChunkGuarded(body, lo, hi));
    }
    return Status::OK();
  }

  // Shared chunk dispenser. Each chunk writes only chunk_status[c], so
  // the post-join scan below is race-free and deterministic.
  std::atomic<size_t> next_chunk{0};
  std::vector<Status> chunk_status(num_chunks);
  auto run_chunks = [&] {
    for (;;) {
      size_t c = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) return;
      size_t lo = begin + c * grain;
      size_t hi = lo + grain < end ? lo + grain : end;
      chunk_status[c] = RunChunkGuarded(body, lo, hi);
    }
  };

  // Caller always participates, so at most num_chunks - 1 helpers are
  // useful. A failed Schedule (pool concurrently shut down) just means
  // the caller does that helper's share itself.
  size_t helpers = threads_.size() < num_chunks - 1 ? threads_.size()
                                                    : num_chunks - 1;
  Latch done(helpers);
  for (size_t i = 0; i < helpers; ++i) {
    Status scheduled = Schedule([&run_chunks, &done] {
      run_chunks();
      done.CountDown();
    });
    if (!scheduled.ok()) done.CountDown();
  }
  run_chunks();
  done.Wait();

  for (size_t c = 0; c < num_chunks; ++c) {
    IQN_RETURN_IF_ERROR(chunk_status[c]);
  }
  return Status::OK();
}

}  // namespace iqn

// Deterministic random number generation.
//
// Every randomized component in the library takes an explicit seed and owns
// its own Rng; there is no global RNG state, so experiments are reproducible
// bit-for-bit across runs and platforms.

#ifndef IQN_UTIL_RANDOM_H_
#define IQN_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace iqn {

/// xoshiro256** generator (Blackman & Vigna), seeded via splitmix64.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform in [0, 2^64).
  uint64_t Next();

  /// Uniform in [0, bound). bound must be > 0. Uses rejection sampling
  /// (Lemire) to avoid modulo bias.
  uint64_t Uniform(uint64_t bound);

  /// Uniform in [lo, hi] inclusive. lo <= hi required.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Standard normal via Marsaglia polar method.
  double NextGaussian();

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(Uniform(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Sample k distinct indices from [0, n) (k <= n), in random order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Derive an independent child generator (for per-component seeding).
  Rng Fork();

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace iqn

#endif  // IQN_UTIL_RANDOM_H_

#include "util/bench_report.h"

#include <cstdlib>

#include "util/check.h"
#include "util/mem_stats.h"
#include "util/metrics.h"
#include "util/trace.h"

// Provenance stamps injected by src/CMakeLists.txt onto this one TU.
#ifndef IQN_GIT_SHA
#define IQN_GIT_SHA "unknown"
#endif
#ifndef IQN_BUILD_FLAGS
#define IQN_BUILD_FLAGS "unknown"
#endif

namespace iqn {

BenchReport::BenchReport(std::string bench, JsonValue workload)
    : bench_(std::move(bench)), workload_(std::move(workload)) {
  IQN_CHECK(!bench_.empty());
}

void BenchReport::AddSection(std::string key, JsonValue value) {
  IQN_CHECK(key != "schema" && key != "bench" && key != "git_sha" &&
            key != "build_flags" && key != "workload" && key != "resources");
  sections_.emplace_back(std::move(key), std::move(value));
}

JsonValue BenchReport::Build() const {
  std::vector<JsonValue::Member> members;
  members.emplace_back("schema", JsonValue::String(kSchema));
  members.emplace_back("bench", JsonValue::String(bench_));
  members.emplace_back("git_sha", JsonValue::String(GitSha()));
  members.emplace_back("build_flags", JsonValue::String(BuildFlags()));
  members.emplace_back("workload", workload_);

  bool has_metrics = false;
  for (const JsonValue::Member& section : sections_) {
    if (section.first == "metrics") has_metrics = true;
    members.push_back(section);
  }
  if (!has_metrics) {
    members.emplace_back("metrics",
                         MetricsRegistry::Default().Snapshot().ToJsonValue());
  }

  std::vector<JsonValue::Member> mem_members;
  for (const auto& [name, bytes] : MemStats::Default().Snapshot()) {
    mem_members.emplace_back(name,
                             JsonValue::Number(static_cast<double>(bytes)));
  }
  members.emplace_back(
      "resources",
      JsonValue::Object(
          {{"peak_rss_bytes",
            JsonValue::Number(static_cast<double>(ReadPeakRssBytes()))},
           {"mem", JsonValue::Object(std::move(mem_members))}}));
  return JsonValue::Object(std::move(members));
}

std::string BenchReport::ToJsonString() const { return EmitJson(Build()); }

Status BenchReport::WriteFile(const std::string& path) const {
  return WriteTextFile(path, ToJsonString());
}

Result<BenchReport> BenchReport::FromLegacyJson(
    const std::string& legacy_text) {
  Result<JsonValue> parsed = ParseJson(legacy_text);
  if (!parsed.ok()) return parsed.status();
  const JsonValue& doc = parsed.value();
  if (!doc.is_object()) {
    return Status::InvalidArgument("legacy bench JSON is not an object");
  }
  if (doc.Find("schema") != nullptr) {
    return Status::InvalidArgument(
        "document is already a BenchReport (has \"schema\")");
  }
  const JsonValue* bench = doc.Find("bench");
  if (bench == nullptr || !bench->is_string()) {
    return Status::InvalidArgument(
        "legacy bench JSON has no string \"bench\" member");
  }
  const JsonValue* workload = doc.Find("workload");
  BenchReport report(bench->string_value(), workload != nullptr
                                                ? *workload
                                                : JsonValue::Object({}));
  for (const JsonValue::Member& member : doc.members()) {
    if (member.first == "bench" || member.first == "workload") continue;
    report.AddSection(member.first, member.second);
  }
  return report;
}

std::string BenchReport::GitSha() { return IQN_GIT_SHA; }

std::string BenchReport::BuildFlags() { return IQN_BUILD_FLAGS; }

LegacyReportWriter::LegacyReportWriter() {
  stream_ = open_memstream(&buf_, &size_);
}

LegacyReportWriter::~LegacyReportWriter() {
  if (stream_ != nullptr) std::fclose(stream_);
  std::free(buf_);
}

Status LegacyReportWriter::Finish(const std::string& path) {
  if (stream_ == nullptr) {
    return Status::Internal("open_memstream failed");
  }
  if (std::fclose(stream_) != 0) {
    stream_ = nullptr;
    return Status::Internal("error flushing in-memory bench JSON");
  }
  stream_ = nullptr;
  std::string text(buf_, size_);
  IQN_ASSIGN_OR_RETURN(BenchReport report, BenchReport::FromLegacyJson(text));
  return report.WriteFile(path);
}

}  // namespace iqn

#include "util/bytes.h"

#include <cstring>

namespace iqn {

void ByteWriter::PutU8(uint8_t v) { buf_.push_back(v); }

void ByteWriter::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back((v >> (8 * i)) & 0xff);
}

void ByteWriter::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back((v >> (8 * i)) & 0xff);
}

void ByteWriter::PutVarint(uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<uint8_t>(v));
}

void ByteWriter::PutDouble(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void ByteWriter::PutBytes(const Bytes& b) {
  PutVarint(b.size());
  buf_.insert(buf_.end(), b.begin(), b.end());
}

void ByteWriter::PutString(const std::string& s) {
  PutVarint(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void ByteWriter::PutRaw(const void* data, size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  buf_.insert(buf_.end(), p, p + len);
}

Status ByteReader::GetU8(uint8_t* out) {
  if (remaining() < 1) return Status::Corruption("truncated u8");
  *out = data_[pos_++];
  return Status::OK();
}

Status ByteReader::GetU32(uint32_t* out) {
  if (remaining() < 4) return Status::Corruption("truncated u32");
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(data_[pos_++]) << (8 * i);
  *out = v;
  return Status::OK();
}

Status ByteReader::GetU64(uint64_t* out) {
  if (remaining() < 8) return Status::Corruption("truncated u64");
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(data_[pos_++]) << (8 * i);
  *out = v;
  return Status::OK();
}

Status ByteReader::GetVarint(uint64_t* out) {
  uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (pos_ >= len_) return Status::Corruption("truncated varint");
    if (shift >= 64) return Status::Corruption("varint too long");
    uint8_t b = data_[pos_++];
    v |= static_cast<uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) break;
    shift += 7;
  }
  *out = v;
  return Status::OK();
}

Status ByteReader::GetDouble(double* out) {
  uint64_t bits;
  IQN_RETURN_IF_ERROR(GetU64(&bits));
  std::memcpy(out, &bits, sizeof(*out));
  return Status::OK();
}

Status ByteReader::GetBytes(Bytes* out) {
  uint64_t n;
  IQN_RETURN_IF_ERROR(GetVarint(&n));
  if (remaining() < n) return Status::Corruption("truncated byte string");
  out->assign(data_ + pos_, data_ + pos_ + n);
  pos_ += n;
  return Status::OK();
}

Status ByteReader::CheckCountFits(uint64_t count, size_t min_bytes_each,
                                  const char* what) const {
  // Divide instead of multiplying so count * min_bytes_each cannot wrap.
  uint64_t max_count = min_bytes_each == 0
                           ? remaining()
                           : remaining() / min_bytes_each;
  if (count > max_count) {
    return Status::Corruption(std::string(what) +
                              " count exceeds remaining buffer");
  }
  return Status::OK();
}

Status ByteReader::GetString(std::string* out) {
  uint64_t n;
  IQN_RETURN_IF_ERROR(GetVarint(&n));
  if (remaining() < n) return Status::Corruption("truncated string");
  out->assign(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return Status::OK();
}

void BitWriter::PutBit(bool bit) {
  if (bit_count_ % 8 == 0) buf_.push_back(0);
  if (bit) {
    buf_.back() |= static_cast<uint8_t>(1u << (7 - bit_count_ % 8));
  }
  ++bit_count_;
}

void BitWriter::PutBits(uint64_t value, size_t count) {
  for (size_t i = count; i-- > 0;) {
    PutBit((value >> i) & 1);
  }
}

void BitWriter::PutUnary(uint64_t count) {
  for (uint64_t i = 0; i < count; ++i) PutBit(true);
  PutBit(false);
}

Bytes BitWriter::Finish() { return std::move(buf_); }

Status BitReader::GetBit(bool* out) {
  if (pos_ >= data_->size() * 8) return Status::Corruption("bitstream end");
  uint8_t byte = (*data_)[pos_ / 8];
  *out = (byte >> (7 - pos_ % 8)) & 1;
  ++pos_;
  return Status::OK();
}

Status BitReader::GetBits(size_t count, uint64_t* out) {
  uint64_t value = 0;
  for (size_t i = 0; i < count; ++i) {
    bool bit;
    IQN_RETURN_IF_ERROR(GetBit(&bit));
    value = (value << 1) | (bit ? 1 : 0);
  }
  *out = value;
  return Status::OK();
}

Status BitReader::GetUnary(uint64_t limit, uint64_t* out) {
  uint64_t count = 0;
  while (true) {
    bool bit;
    IQN_RETURN_IF_ERROR(GetBit(&bit));
    if (!bit) break;
    if (++count > limit) return Status::Corruption("unary run too long");
  }
  *out = count;
  return Status::OK();
}

}  // namespace iqn

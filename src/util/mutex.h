// Annotated locking primitives: thin wrappers around std::mutex /
// std::shared_mutex / std::condition_variable that carry the Clang
// thread-safety capability attributes (util/thread_annotations.h).
//
// All locks in src/ use these types — never raw std:: primitives
// (tools/iqn_lint.py rule no-raw-mutex) — because the analysis can only
// prove lock disciplines over types declared as capabilities. Guarded
// data declares its lock with IQN_GUARDED_BY(mu_); the Clang dev/CI
// builds then reject any access outside a critical section at compile
// time. On GCC the wrappers compile to the identical std:: calls with
// zero overhead and the annotations vanish.
//
// Idiom (Abseil-style):
//
//   class Thing {
//     Mutex mu_;
//     std::deque<Item> queue_ IQN_GUARDED_BY(mu_);
//    public:
//     void Push(Item item) {
//       MutexLock lock(&mu_);
//       queue_.push_back(std::move(item));   // proven: mu_ held
//     }
//   };
//
// Condition variables pair with Mutex via CondVar::Wait(&mu), which is
// annotated IQN_REQUIRES(mu) — waiting without the lock is a compile
// error, not a lost wakeup at 3am.

#ifndef IQN_UTIL_MUTEX_H_
#define IQN_UTIL_MUTEX_H_

#include <condition_variable>  // iqn-lint: allow=no-raw-mutex wrapper home
#include <mutex>               // iqn-lint: allow=no-raw-mutex wrapper home
#include <shared_mutex>        // iqn-lint: allow=no-raw-mutex wrapper home

#include "util/thread_annotations.h"

namespace iqn {

/// Exclusive lock (wraps std::mutex) declared as a TSA capability.
class IQN_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() IQN_ACQUIRE() { mu_.lock(); }
  void Unlock() IQN_RELEASE() { mu_.unlock(); }
  bool TryLock() IQN_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// Reader/writer lock (wraps std::shared_mutex): many concurrent shared
/// holders or one exclusive holder. Declared as a TSA capability so
/// shared holders are proven read-only over guarded data.
class IQN_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() IQN_ACQUIRE() { mu_.lock(); }
  void Unlock() IQN_RELEASE() { mu_.unlock(); }
  void LockShared() IQN_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() IQN_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive critical section over a Mutex.
class IQN_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) IQN_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() IQN_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// RAII exclusive (writer) critical section over a SharedMutex.
class IQN_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) IQN_ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterMutexLock() IQN_RELEASE() { mu_->Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* mu_;
};

/// RAII shared (reader) critical section over a SharedMutex. Guarded
/// data is readable but not writable while held — writes through a
/// reader lock are a compile error under the analysis.
class IQN_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu) IQN_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->LockShared();
  }
  ~ReaderMutexLock() IQN_RELEASE() { mu_->UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* mu_;
};

/// Condition variable paired with iqn::Mutex. Wait() atomically
/// releases the mutex, blocks, and reacquires before returning — and is
/// annotated IQN_REQUIRES(mu), so calling it without the lock held is
/// rejected at compile time. Spurious wakeups happen; always wait in a
/// predicate loop (or use the predicate overload).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex* mu) IQN_REQUIRES(mu);

  /// Waits until pred() holds; pred runs with the lock held. NOTE: the
  /// analysis does not see through lambda bodies — a pred that reads
  /// IQN_GUARDED_BY data will be flagged. Guarded predicates belong in
  /// an explicit `while (!cond) cv.Wait(&mu);` loop in the locked scope.
  template <typename Predicate>
  void Wait(Mutex* mu, Predicate pred) IQN_REQUIRES(mu) {
    while (!pred()) Wait(mu);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace iqn

#endif  // IQN_UTIL_MUTEX_H_

// Hash functions used throughout the library.
//
// Three distinct needs, three tools:
//  * HashBytes / Hash64 (splitmix64-based): fast general-purpose hashing of
//    keys, strings, and docIds for Bloom filters, DHT ids, etc.
//  * UniversalHashFamily: the linear hash family h_i(x) = (a_i*x + b_i) mod U
//    over a Mersenne prime, used by min-wise permutations (paper Sec. 3.2);
//    all peers derive the same family from one shared seed.
//  * DoubleHasher: Kirsch-Mitzenmacher double hashing to derive k Bloom
//    probe positions from two base hashes.

#ifndef IQN_UTIL_HASH_H_
#define IQN_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace iqn {

/// Mersenne prime 2^61 - 1, the modulus of the universal hash family.
inline constexpr uint64_t kMersenne61 = (uint64_t{1} << 61) - 1;

/// splitmix64 finalizer: a strong 64-bit mixer (Steele et al.).
uint64_t Mix64(uint64_t x);

/// Hash an integer key with a seed.
uint64_t Hash64(uint64_t key, uint64_t seed = 0);

/// FNV-1a-then-mix hash of arbitrary bytes.
uint64_t HashBytes(const void* data, size_t len, uint64_t seed = 0);

/// Convenience overload for strings (term names, peer addresses).
uint64_t HashString(std::string_view s, uint64_t seed = 0);

/// Multiply-add modulo 2^61-1 without overflow, using 128-bit arithmetic.
/// Returns (a * x + b) mod (2^61 - 1).
uint64_t MulAddMod61(uint64_t a, uint64_t x, uint64_t b);

/// The shared family of linear permutations h_i(x) = (a_i*x + b_i) mod U.
///
/// Min-wise synopses from different peers are only comparable when built
/// from the same family; peers agree on `seed` out of band (a global system
/// parameter, paper Sec. 5.3). Parameters for permutation i are derived
/// lazily and deterministically from the seed, so two families with equal
/// seeds agree on every prefix regardless of the lengths requested.
class UniversalHashFamily {
 public:
  explicit UniversalHashFamily(uint64_t seed) : seed_(seed) {}

  uint64_t seed() const { return seed_; }

  /// h_i(x); any i >= 0 is valid.
  uint64_t Apply(size_t i, uint64_t x) const;

  /// Multiplier a_i (in [1, U-1]) and offset b_i (in [0, U-1]).
  uint64_t MultiplierFor(size_t i) const;
  uint64_t OffsetFor(size_t i) const;

  bool operator==(const UniversalHashFamily& other) const {
    return seed_ == other.seed_;
  }

 private:
  uint64_t seed_;
};

/// Derives k probe positions in [0, m) from one key (Kirsch-Mitzenmacher:
/// g_i(x) = h1(x) + i*h2(x) mod m behaves like k independent hashes).
class DoubleHasher {
 public:
  DoubleHasher(uint64_t key, uint64_t seed);

  /// Probe position i in [0, m). m must be > 0.
  uint64_t Probe(size_t i, uint64_t m) const;

 private:
  uint64_t h1_;
  uint64_t h2_;
};

}  // namespace iqn

#endif  // IQN_UTIL_HASH_H_

// The unified bench report: one JSON schema every bench (and the
// scenario runner) emits, so tools/bench_diff.py can compare any two
// runs — same bench across PRs, same PR across seeds — key by key.
//
// Shape (sections in this order):
//   {
//     "schema":      "iqn.bench_report.v1",
//     "bench":       "<name>",
//     "git_sha":     "<configure-time HEAD, or 'unknown'>",
//     "build_flags": "<build type + compiler flags>",
//     "workload":    { ...bench parameters... },
//     ...bench-specific sections in insertion order ("results",
//        "sinks", "pass", "metrics", ...)...,
//     "resources":   {"peak_rss_bytes": N, "mem": {component: bytes}}
//   }
// If the bench did not supply a "metrics" section, Build() appends a
// fresh MetricsRegistry::Default() snapshot under that key.
//
// Determinism contract: everything except "git_sha", "build_flags",
// "resources.peak_rss_bytes", and any sink PATHS is a pure function of
// the bench's seeds — two same-seed runs must produce byte-identical
// values there, and the CI perf-telemetry job diffs exactly that.
// Provenance stamps come from compile definitions on bench_report.cc
// (configure-time git sha: stale until re-configure, by design — it
// identifies the build, not the working tree).
//
// Emission goes through util/json_value's canonical writer, so report
// files are stable under parse/re-emit and diff cleanly.

#ifndef IQN_UTIL_BENCH_REPORT_H_
#define IQN_UTIL_BENCH_REPORT_H_

#include <cstddef>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "util/json_value.h"
#include "util/status.h"

namespace iqn {

class BenchReport {
 public:
  /// `workload` should be an object describing the bench parameters
  /// (corpus size, seeds, sweep axes); pass an empty Object otherwise.
  BenchReport(std::string bench, JsonValue workload);

  /// Appends a bench-specific section; insertion order is preserved in
  /// the output. Keys must not collide with the schema's fixed keys.
  void AddSection(std::string key, JsonValue value);

  /// Assembles the full report, sampling resources (and metrics, if no
  /// "metrics" section was added) at call time.
  JsonValue Build() const;
  /// EmitJson(Build()).
  std::string ToJsonString() const;
  Status WriteFile(const std::string& path) const;

  /// Adopts a legacy bench JSON document (an object with a "bench"
  /// string member, as the pre-schema benches wrote): "bench" becomes
  /// the report name, a "workload" member (if any) the workload, and
  /// every other member a section in source order. Errors on anything
  /// that is not an object with a string "bench".
  static Result<BenchReport> FromLegacyJson(const std::string& legacy_text);

  static std::string GitSha();
  static std::string BuildFlags();

  static constexpr char kSchema[] = "iqn.bench_report.v1";

 private:
  std::string bench_;
  JsonValue workload_;
  std::vector<JsonValue::Member> sections_;
};

/// Migration shim for benches that emit their JSON with fprintf: the
/// same FILE* emission goes to an in-memory stream instead of the
/// output file, and Finish() parses it, wraps it via FromLegacyJson,
/// and writes the unified report. The bench keeps its exact section
/// content and order; the shim adds schema/provenance/resources.
class LegacyReportWriter {
 public:
  LegacyReportWriter();
  ~LegacyReportWriter();
  LegacyReportWriter(const LegacyReportWriter&) = delete;
  LegacyReportWriter& operator=(const LegacyReportWriter&) = delete;

  /// The stream to fprintf the legacy JSON document into; nullptr if
  /// the memstream could not be created (Finish reports the error).
  FILE* stream() { return stream_; }

  /// Closes the stream, wraps the captured document, writes `path`.
  /// Call exactly once.
  Status Finish(const std::string& path);

 private:
  FILE* stream_ = nullptr;
  char* buf_ = nullptr;
  size_t size_ = 0;
};

}  // namespace iqn

#endif  // IQN_UTIL_BENCH_REPORT_H_

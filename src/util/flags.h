// Tiny command-line flag parser for the bench and example binaries.
//
// Supports --name=value and --name value forms plus boolean --name.
// Unrecognized flags are an error so bench sweeps fail loudly on typos.

#ifndef IQN_UTIL_FLAGS_H_
#define IQN_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace iqn {

class Flags {
 public:
  /// Declare flags before Parse(). `help` is shown by Usage().
  void DefineString(const std::string& name, const std::string& default_value,
                    const std::string& help);
  void DefineInt(const std::string& name, int64_t default_value,
                 const std::string& help);
  void DefineDouble(const std::string& name, double default_value,
                    const std::string& help);
  void DefineBool(const std::string& name, bool default_value,
                  const std::string& help);

  /// Parses argv; returns InvalidArgument on unknown flags or bad values.
  Status Parse(int argc, char** argv);

  std::string GetString(const std::string& name) const;
  int64_t GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;

  /// Positional (non-flag) arguments in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Human-readable flag summary.
  std::string Usage(const std::string& program) const;

 private:
  enum class Type { kString, kInt, kDouble, kBool };
  struct FlagDef {
    Type type;
    std::string value;  // current textual value
    std::string help;
  };

  Status Set(const std::string& name, const std::string& value);

  std::map<std::string, FlagDef> defs_;
  std::vector<std::string> positional_;
};

}  // namespace iqn

#endif  // IQN_UTIL_FLAGS_H_

// Fixed-size task pool — the single concurrency primitive of the repo.
//
// All parallelism goes through this pool (tools/lint.sh forbids raw
// std::thread / std::async elsewhere), so every thread in the process is
// owned, named, and joined: no detached threads, ever. The pool is
// exception-free at its boundary — user callables that throw have the
// exception converted to Status::Internal instead of terminating.
//
// The workhorse is ParallelFor(begin, end, grain, body): the index range
// is split into fixed chunks of `grain` indices, workers (plus the
// calling thread, which always participates) grab chunks off an atomic
// counter, and the call returns the Status of the lowest-numbered failing
// chunk. Because the chunk boundaries are a pure function of
// (begin, end, grain) and every chunk writes only its own slots, a
// ParallelFor whose body is deterministic per index produces results that
// are bit-identical regardless of thread count or scheduling order —
// the property the batch query engine's determinism tests pin down.
//
// Nested use is safe: a ParallelFor issued from inside one of this pool's
// own workers runs serially inline (a worker blocking on its own pool
// would deadlock). ParallelFor issued from a *different* pool's worker
// parallelizes normally.

#ifndef IQN_UTIL_THREAD_POOL_H_
#define IQN_UTIL_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <thread>  // NOLINT(no-raw-thread) the pool IS the thread owner
#include <vector>

#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace iqn {

/// Single-use countdown synchronizer (std::latch with a fallible-free,
/// minimal surface). Wait() returns once the count reaches zero.
class Latch {
 public:
  explicit Latch(size_t count) : count_(count) {}

  Latch(const Latch&) = delete;
  Latch& operator=(const Latch&) = delete;

  void CountDown(size_t n = 1) IQN_EXCLUDES(mu_);
  void Wait() IQN_EXCLUDES(mu_);

 private:
  Mutex mu_;
  CondVar cv_;
  size_t count_ IQN_GUARDED_BY(mu_);
};

class ThreadPool {
 public:
  /// num_threads in [1, 512] worker threads (the creating thread
  /// additionally lends a hand inside ParallelFor).
  static Result<std::unique_ptr<ThreadPool>> Create(size_t num_threads);

  /// Joins all workers (equivalent to Shutdown()).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Stops accepting work, drains the queue, and joins every worker.
  /// Idempotent; safe to call with tasks still queued (they run first).
  void Shutdown() IQN_EXCLUDES(mu_);

  size_t num_threads() const { return threads_.size(); }

  /// Enqueues a task. Unavailable after Shutdown(). The task must not
  /// throw out of its top frame uncaught — use ParallelFor for fallible
  /// work; Schedule is the low-level escape hatch for tests and plumbing.
  Status Schedule(std::function<void()> task) IQN_EXCLUDES(mu_);

  /// Runs body(chunk_begin, chunk_end) over [begin, end) split into
  /// chunks of `grain` indices (last chunk may be short; grain 0 = 1).
  /// Blocks until every chunk has finished — even when some failed, so
  /// callers can rely on no task touching their buffers afterwards.
  /// Returns the Status of the lowest-numbered non-OK chunk; whether
  /// chunks after a failing one run is unspecified (they usually do).
  /// Exceptions escaping `body` become Status::Internal.
  Status ParallelFor(size_t begin, size_t end, size_t grain,
                     const std::function<Status(size_t, size_t)>& body);

  /// True when the calling thread is one of *this* pool's workers.
  bool InWorkerThread() const;

  /// Worker count to use when the caller just wants "all the hardware":
  /// std::thread::hardware_concurrency() clamped to >= 1. Lives here so
  /// bench/example code needs no raw <thread> access (lint rule).
  static size_t DefaultConcurrency();

 private:
  explicit ThreadPool(size_t num_threads);

  void WorkerLoop() IQN_EXCLUDES(mu_);

  Mutex mu_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ IQN_GUARDED_BY(mu_);
  bool stopping_ IQN_GUARDED_BY(mu_) = false;
  /// Written only by the constructor, then immutable: joined/read without
  /// mu_ (workers never touch it).
  std::vector<std::thread> threads_;
};

}  // namespace iqn

#endif  // IQN_UTIL_THREAD_POOL_H_

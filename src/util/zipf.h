// Zipfian and related skewed samplers for the synthetic workload.
//
// Web text term frequencies are approximately Zipf-distributed; the
// synthetic GOV-like corpus (DESIGN.md substitution table) draws terms from
// ZipfSampler so popular terms are crawled/indexed by many peers, which is
// the overlap structure the paper's evaluation depends on.

#ifndef IQN_UTIL_ZIPF_H_
#define IQN_UTIL_ZIPF_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/random.h"

namespace iqn {

/// Samples ranks in [0, n) with P(rank = k) proportional to 1/(k+1)^theta.
/// Precomputes the CDF once (O(n) memory) and samples by binary search
/// (O(log n) per draw); exact, not an approximation.
class ZipfSampler {
 public:
  /// n > 0; theta >= 0 (theta = 0 degenerates to uniform).
  ZipfSampler(size_t n, double theta);

  size_t Sample(Rng* rng) const;

  size_t n() const { return cdf_.size(); }
  double theta() const { return theta_; }

  /// Probability mass of a given rank.
  double Pmf(size_t rank) const;

 private:
  double theta_;
  std::vector<double> cdf_;  // cdf_[k] = P(rank <= k)
};

/// Samples from an arbitrary discrete distribution given unnormalized
/// weights, using Walker's alias method: O(n) build, O(1) per draw.
class AliasSampler {
 public:
  explicit AliasSampler(const std::vector<double>& weights);

  size_t Sample(Rng* rng) const;

  size_t n() const { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<size_t> alias_;
};

}  // namespace iqn

#endif  // IQN_UTIL_ZIPF_H_

#include "util/flags.h"

#include <cstdlib>
#include <sstream>

#include "util/check.h"

namespace iqn {

void Flags::DefineString(const std::string& name,
                         const std::string& default_value,
                         const std::string& help) {
  defs_[name] = FlagDef{Type::kString, default_value, help};
}

void Flags::DefineInt(const std::string& name, int64_t default_value,
                      const std::string& help) {
  defs_[name] = FlagDef{Type::kInt, std::to_string(default_value), help};
}

void Flags::DefineDouble(const std::string& name, double default_value,
                         const std::string& help) {
  std::ostringstream os;
  os << default_value;
  defs_[name] = FlagDef{Type::kDouble, os.str(), help};
}

void Flags::DefineBool(const std::string& name, bool default_value,
                       const std::string& help) {
  defs_[name] = FlagDef{Type::kBool, default_value ? "true" : "false", help};
}

Status Flags::Set(const std::string& name, const std::string& value) {
  auto it = defs_.find(name);
  if (it == defs_.end()) {
    return Status::InvalidArgument("unknown flag --" + name);
  }
  FlagDef& def = it->second;
  switch (def.type) {
    case Type::kInt: {
      char* end = nullptr;
      errno = 0;
      (void)std::strtoll(value.c_str(), &end, 10);  // validate only
      if (errno != 0 || end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("flag --" + name +
                                       " expects an integer, got '" + value +
                                       "'");
      }
      break;
    }
    case Type::kDouble: {
      char* end = nullptr;
      errno = 0;
      (void)std::strtod(value.c_str(), &end);  // validate only
      if (errno != 0 || end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("flag --" + name +
                                       " expects a number, got '" + value +
                                       "'");
      }
      break;
    }
    case Type::kBool:
      if (value != "true" && value != "false" && value != "1" &&
          value != "0") {
        return Status::InvalidArgument("flag --" + name +
                                       " expects true/false, got '" + value +
                                       "'");
      }
      break;
    case Type::kString:
      break;
  }
  def.value = value;
  return Status::OK();
}

Status Flags::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    std::string name, value;
    auto eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      auto it = defs_.find(name);
      if (it != defs_.end() && it->second.type == Type::kBool) {
        value = "true";  // bare --flag form for booleans
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        return Status::InvalidArgument("flag --" + name + " missing value");
      }
    }
    IQN_RETURN_IF_ERROR(Set(name, value));
  }
  return Status::OK();
}

std::string Flags::GetString(const std::string& name) const {
  auto it = defs_.find(name);
  IQN_CHECK(it != defs_.end());  // GetString on undefined flag
  return it->second.value;
}

int64_t Flags::GetInt(const std::string& name) const {
  auto it = defs_.find(name);
  IQN_CHECK(it != defs_.end());  // GetInt on undefined flag
  return std::strtoll(it->second.value.c_str(), nullptr, 10);
}

double Flags::GetDouble(const std::string& name) const {
  auto it = defs_.find(name);
  IQN_CHECK(it != defs_.end());  // GetDouble on undefined flag
  return std::strtod(it->second.value.c_str(), nullptr);
}

bool Flags::GetBool(const std::string& name) const {
  auto it = defs_.find(name);
  IQN_CHECK(it != defs_.end());  // GetBool on undefined flag
  return it->second.value == "true" || it->second.value == "1";
}

std::string Flags::Usage(const std::string& program) const {
  std::ostringstream os;
  os << "Usage: " << program << " [flags]\n";
  for (const auto& [name, def] : defs_) {
    os << "  --" << name << " (default: " << def.value << ")  " << def.help
       << "\n";
  }
  return os.str();
}

}  // namespace iqn

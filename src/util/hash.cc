#include "util/hash.h"

#include <cstring>

namespace iqn {

uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t Hash64(uint64_t key, uint64_t seed) {
  return Mix64(key ^ Mix64(seed));
}

uint64_t HashBytes(const void* data, size_t len, uint64_t seed) {
  // FNV-1a over the bytes, then a strong final mix. Good enough for
  // directory keys and ids; not meant to be cryptographic.
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = 1469598103934665603ULL ^ Mix64(seed);
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return Mix64(h);
}

uint64_t HashString(std::string_view s, uint64_t seed) {
  return HashBytes(s.data(), s.size(), seed);
}

uint64_t MulAddMod61(uint64_t a, uint64_t x, uint64_t b) {
  // 128-bit product, then fold hi/lo parts modulo the Mersenne prime:
  // 2^61 ≡ 1 (mod 2^61-1), so value = lo61 + (bits above 61).
  unsigned __int128 prod = static_cast<unsigned __int128>(a) * x + b;
  uint64_t lo = static_cast<uint64_t>(prod & kMersenne61);
  uint64_t hi = static_cast<uint64_t>(prod >> 61);
  uint64_t r = lo + hi;
  if (r >= kMersenne61) r -= kMersenne61;
  return r;
}

uint64_t UniversalHashFamily::MultiplierFor(size_t i) const {
  // a_i must be non-zero mod U for h_i to be a permutation of Z_U.
  uint64_t a = Mix64(seed_ ^ (0xa5a5a5a5a5a5a5a5ULL + 2 * i)) % kMersenne61;
  if (a == 0) a = 1;
  return a;
}

uint64_t UniversalHashFamily::OffsetFor(size_t i) const {
  return Mix64(seed_ ^ (0x5a5a5a5a5a5a5a5aULL + 2 * i + 1)) % kMersenne61;
}

uint64_t UniversalHashFamily::Apply(size_t i, uint64_t x) const {
  // Pre-mix the key: linear maps are min-wise biased on structured inputs
  // (consecutive docIds form a lattice under a*x+b), and real systems
  // cannot rely on ids being random. Mix64 is a fixed bijection of the
  // key universe shared by all peers, so cross-peer comparability is
  // unaffected.
  return MulAddMod61(MultiplierFor(i), Mix64(x) % kMersenne61, OffsetFor(i));
}

DoubleHasher::DoubleHasher(uint64_t key, uint64_t seed) {
  h1_ = Hash64(key, seed);
  h2_ = Hash64(key, seed ^ 0xdeadbeefcafef00dULL);
  // h2 must be odd so successive probes cycle through all residues for
  // power-of-two m; harmless otherwise.
  h2_ |= 1;
}

uint64_t DoubleHasher::Probe(size_t i, uint64_t m) const {
  return (h1_ + i * h2_) % m;
}

}  // namespace iqn

// Per-query hierarchical trace spans on SIMULATED time.
//
// A QueryTrace records a tree of named spans with attributes. Spans are
// stamped with the query's own simulated-latency clock (the metered
// NetworkStats delta), not wall time, so a trace is a pure function of
// the query and the seed: bit-identical across runs and across any
// thread count — the determinism tests diff whole trees as strings.
//
// Ambient install follows the repo's RAII idiom (StatsCapture,
// RpcScope): a TraceScope installs a trace into thread-local state and
// every ScopedSpan opened on that thread — in the engine, the router,
// the RPC policy layer — lands in it. With no trace installed,
// ScopedSpan is a no-op; instrumented code never checks a flag.
//
// Contract for instrumented code: spans must be opened and closed on
// the query's own thread, strictly nested (enforced by IQN_CHECK), and
// NEVER inside a ParallelFor body — pool workers carry no trace, and
// emission order there would depend on scheduling. The IQN router
// records per-candidate data from its serial argmax phase for exactly
// this reason.

#ifndef IQN_UTIL_TRACE_H_
#define IQN_UTIL_TRACE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/status.h"

namespace iqn {

struct TraceAttr {
  std::string key;
  std::string value;  // repeated keys allowed (e.g. one "cand" per row)
};

struct TraceSpan {
  uint64_t id = 0;         // 1-based, in span-open order
  uint64_t parent_id = 0;  // 0 = root
  std::string name;
  double start_ms = 0.0;  // simulated time
  double end_ms = 0.0;
  std::vector<TraceAttr> attrs;
};

/// One query's span tree. Not thread-safe — safety comes from
/// thread-confinement, not locking: a trace belongs to the one thread
/// its TraceScope is installed on (thread_local install, DESIGN.md
/// §12), so it carries no iqn::Mutex and the analyzer has nothing to
/// prove here — TSan and the batch determinism tests guard the
/// confinement instead.
class QueryTrace {
 public:
  /// Reads the current simulated time (typically the query's metered
  /// NetworkStats::latency_ms).
  using Clock = std::function<double()>;

  explicit QueryTrace(Clock simulated_clock);

  uint64_t BeginSpan(std::string name);
  /// Must close the innermost open span (checked).
  void EndSpan(uint64_t id);
  void AddAttr(uint64_t id, std::string key, std::string value);

  const std::vector<TraceSpan>& spans() const { return spans_; }
  /// First span with this name, or nullptr.
  const TraceSpan* Find(const std::string& name) const;

  /// Canonical one-line-per-span rendering (ids, nesting, %.17g
  /// timestamps, attributes in order). Two traces are equal iff their
  /// debug strings are — the determinism tests compare these.
  std::string ToDebugString() const;

 private:
  Clock clock_;
  std::vector<TraceSpan> spans_;
  std::vector<uint64_t> open_;  // stack of open span ids
};

/// RAII install of a trace as the current thread's ambient trace.
/// Scopes nest; the innermost wins.
class TraceScope {
 public:
  explicit TraceScope(QueryTrace* trace);
  ~TraceScope();

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  /// The installed trace of the current thread, or nullptr.
  static QueryTrace* Current();

 private:
  QueryTrace* previous_;
};

/// RAII span against the ambient trace; a no-op (active() == false)
/// when no TraceScope is installed. Attrs on an inactive span are
/// discarded, so instrumentation sites need no conditionals — but
/// should guard loops that FORMAT many attrs with active().
///
/// When CpuProfiler::Enable() has been called (util/profiler.h), every
/// span additionally records its wall-clock duration under its label —
/// with or without an ambient trace. Wall time never feeds anything
/// deterministic; disabled, the hook costs one relaxed load.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ~ScopedSpan() { End(); }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  bool active() const { return trace_ != nullptr; }
  void Attr(const std::string& key, std::string value);
  /// %.17g: the value re-parses to the exact same double.
  void AttrDouble(const std::string& key, double v);
  void AttrUint(const std::string& key, uint64_t v);
  /// Idempotent; the destructor calls it.
  void End();

 private:
  QueryTrace* trace_ = nullptr;
  uint64_t id_ = 0;
  const char* name_ = nullptr;
  int64_t wall_start_ns_ = 0;  // 0 = wall profiling off at span open
};

/// Chrome trace_event JSON ("traceEvents" array of complete "X" events,
/// loadable in about:tracing / Perfetto). Each trace becomes one tid;
/// timestamps are simulated milliseconds exported as microseconds.
std::string ChromeTraceJson(const std::vector<const QueryTrace*>& traces);

/// Writes ChromeTraceJson(traces) to `path`.
Status WriteChromeTraceFile(const std::string& path,
                            const std::vector<const QueryTrace*>& traces);

/// Writes a pre-rendered exporter payload (metrics JSON, query log) to
/// `path`.
Status WriteTextFile(const std::string& path, const std::string& contents);

}  // namespace iqn

#endif  // IQN_UTIL_TRACE_H_

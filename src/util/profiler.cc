#include "util/profiler.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>

#include "util/check.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace iqn {

namespace {

// Rounds a nonnegative-by-construction microsecond total to an integer
// the same way tools/validate_trace.py does (floor(x + 0.5) after
// clamping float noise at zero) — the two sides must agree bit-exactly.
uint64_t RoundFoldedUs(double us) {
  if (us < 0.0) us = 0.0;
  return static_cast<uint64_t>(std::floor(us + 0.5));
}

struct WallState {
  Mutex mu;
  std::map<std::string, CpuProfiler::WallTotal> totals IQN_GUARDED_BY(mu);
};

WallState& GlobalWallState() {
  static WallState state;
  return state;
}

}  // namespace

std::atomic<bool> CpuProfiler::enabled_{false};

int64_t CpuProfiler::NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void CpuProfiler::RecordWall(const char* label, int64_t wall_ns) {
  WallState& state = GlobalWallState();
  MutexLock lock(&state.mu);
  WallTotal& total = state.totals[label];
  total.count += 1;
  total.total_ns += wall_ns;
}

std::map<std::string, CpuProfiler::WallTotal> CpuProfiler::WallSnapshot() {
  WallState& state = GlobalWallState();
  MutexLock lock(&state.mu);
  return state.totals;
}

void CpuProfiler::ResetWall() {
  WallState& state = GlobalWallState();
  MutexLock lock(&state.mu);
  state.totals.clear();
}

ProfileReport BuildProfile(const std::vector<const QueryTrace*>& traces) {
  // Per-label accumulators, in first-encounter order so float sums have
  // a fixed order; sorted into the report at the end.
  std::map<std::string, ProfileEntry> by_label;
  // Folded paths accumulate exclusive microseconds in encounter order.
  std::map<std::string, double> folded_us;
  std::vector<std::string> folded_order;

  for (const QueryTrace* trace : traces) {
    if (trace == nullptr) continue;
    const std::vector<TraceSpan>& spans = trace->spans();
    // Exclusive time starts as the span's own duration; every child
    // subtracts its duration from its parent, in span-id order. All
    // arithmetic happens on the microsecond values the Chrome exporter
    // emits, so offline validators can replay it exactly.
    std::vector<double> exclusive_us(spans.size(), 0.0);
    std::vector<std::string> path(spans.size());
    for (size_t i = 0; i < spans.size(); ++i) {
      const TraceSpan& span = spans[i];
      const double dur_us = (span.end_ms - span.start_ms) * 1000.0;
      exclusive_us[i] = dur_us;
      if (span.parent_id != 0) {
        exclusive_us[span.parent_id - 1] -= dur_us;
        path[i] = path[span.parent_id - 1] + ";" + span.name;
      } else {
        path[i] = span.name;
      }
      ProfileEntry& entry = by_label[span.name];
      entry.count += 1;
      entry.inclusive_us += dur_us;
    }
    for (size_t i = 0; i < spans.size(); ++i) {
      by_label[spans[i].name].exclusive_us += exclusive_us[i];
      auto [it, inserted] = folded_us.emplace(path[i], 0.0);
      if (inserted) folded_order.push_back(path[i]);
      it->second += exclusive_us[i];
    }
  }

  ProfileReport report;
  for (auto& [label, entry] : by_label) {
    entry.label = label;
    report.entries.push_back(entry);
  }
  // folded_us is a std::map, so this emits sorted by path; the
  // accumulation order above (encounter order) is what determinism
  // depends on, not the output order.
  for (const auto& [folded_path, us] : folded_us) {
    report.folded.emplace_back(folded_path, RoundFoldedUs(us));
  }
  return report;
}

void AttachWallTotals(ProfileReport* report) {
  IQN_CHECK(report != nullptr);
  std::map<std::string, CpuProfiler::WallTotal> wall =
      CpuProfiler::WallSnapshot();
  for (ProfileEntry& entry : report->entries) {
    auto it = wall.find(entry.label);
    if (it == wall.end()) continue;
    entry.wall_ns = static_cast<double>(it->second.total_ns);
    wall.erase(it);
  }
  // Wall-only labels (spans that ran with no trace installed) still
  // belong in the table; they carry zero simulated time.
  for (const auto& [label, total] : wall) {
    ProfileEntry entry;
    entry.label = label;
    entry.count = total.count;
    entry.wall_ns = static_cast<double>(total.total_ns);
    report->entries.push_back(entry);
  }
  std::sort(report->entries.begin(), report->entries.end(),
            [](const ProfileEntry& a, const ProfileEntry& b) {
              return a.label < b.label;
            });
}

std::string ProfileReport::ToFoldedString() const {
  std::string out;
  for (const auto& [path, count] : folded) {
    out += path;
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

std::string ProfileReport::ToTableString() const {
  bool any_wall = false;
  for (const ProfileEntry& entry : entries) {
    if (entry.wall_ns > 0.0) any_wall = true;
  }
  std::string out = any_wall
                        ? "span                     count   incl_ms   excl_ms"
                          "   wall_ms\n"
                        : "span                     count   incl_ms   excl_ms\n";
  for (const ProfileEntry& entry : entries) {
    char line[160];
    if (any_wall) {
      std::snprintf(line, sizeof(line), "%-22s %7llu %9.3f %9.3f %9.3f\n",
                    entry.label.c_str(),
                    static_cast<unsigned long long>(entry.count),
                    entry.inclusive_us / 1000.0, entry.exclusive_us / 1000.0,
                    entry.wall_ns / 1e6);
    } else {
      std::snprintf(line, sizeof(line), "%-22s %7llu %9.3f %9.3f\n",
                    entry.label.c_str(),
                    static_cast<unsigned long long>(entry.count),
                    entry.inclusive_us / 1000.0, entry.exclusive_us / 1000.0);
    }
    out += line;
  }
  return out;
}

JsonValue ProfileReport::ToJsonValue() const {
  std::vector<JsonValue::Member> spans;
  for (const ProfileEntry& entry : entries) {
    std::vector<JsonValue::Member> fields;
    fields.emplace_back("count",
                        JsonValue::Number(static_cast<double>(entry.count)));
    fields.emplace_back("inclusive_us", JsonValue::Number(entry.inclusive_us));
    fields.emplace_back("exclusive_us", JsonValue::Number(entry.exclusive_us));
    if (entry.wall_ns > 0.0) {
      fields.emplace_back("wall_ns", JsonValue::Number(entry.wall_ns));
    }
    spans.emplace_back(entry.label, JsonValue::Object(std::move(fields)));
  }
  std::vector<JsonValue::Member> folded_members;
  for (const auto& [path, count] : folded) {
    folded_members.emplace_back(path,
                                JsonValue::Number(static_cast<double>(count)));
  }
  return JsonValue::Object(
      {{"spans", JsonValue::Object(std::move(spans))},
       {"folded", JsonValue::Object(std::move(folded_members))}});
}

Status WriteFoldedFile(const std::string& path, const ProfileReport& report) {
  return WriteTextFile(path, report.ToFoldedString());
}

}  // namespace iqn

// Clang thread-safety-analysis (TSA) annotation macros.
//
// These attach lock-discipline facts to declarations — "this field is
// guarded by that mutex", "this method must be called with the lock
// held", "this RAII type acquires on construction" — which Clang's
// -Wthread-safety analysis then proves at compile time. The dev/CI
// Clang builds promote violations to errors
// (-Werror=thread-safety-analysis), so an unguarded access or a
// lock-order mistake fails the build instead of becoming a TSan report
// (or, once the real-transport daemon lands, a distributed heisenbug).
//
// On non-Clang compilers every macro expands to nothing: GCC builds are
// unaffected and the annotations are pure documentation there. The
// analysis only understands types that declare the `capability`
// attribute — use iqn::Mutex / iqn::SharedMutex (util/mutex.h), never
// raw std::mutex (tools/iqn_lint.py rule no-raw-mutex).
//
// Naming follows the Clang documentation's reference macro set
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html) with an IQN_
// prefix.

#ifndef IQN_UTIL_THREAD_ANNOTATIONS_H_
#define IQN_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define IQN_THREAD_ANNOTATION_ATTRIBUTE_(x) __attribute__((x))
#else
#define IQN_THREAD_ANNOTATION_ATTRIBUTE_(x)  // no-op outside Clang
#endif

// On a class: instances are capabilities (lockable things) the analysis
// tracks. The string names the capability kind in diagnostics.
#define IQN_CAPABILITY(x) IQN_THREAD_ANNOTATION_ATTRIBUTE_(capability(x))

// On a class: RAII object that acquires a capability in its constructor
// and releases it in its destructor (MutexLock and friends).
#define IQN_SCOPED_CAPABILITY \
  IQN_THREAD_ANNOTATION_ATTRIBUTE_(scoped_lockable)

// On a data member: reads require the capability held (shared suffices),
// writes require it held exclusively.
#define IQN_GUARDED_BY(x) IQN_THREAD_ANNOTATION_ATTRIBUTE_(guarded_by(x))

// On a pointer member: the pointed-to data (not the pointer itself) is
// guarded.
#define IQN_PT_GUARDED_BY(x) \
  IQN_THREAD_ANNOTATION_ATTRIBUTE_(pt_guarded_by(x))

// On a function: caller must hold the capability exclusively / shared.
#define IQN_REQUIRES(...) \
  IQN_THREAD_ANNOTATION_ATTRIBUTE_(requires_capability(__VA_ARGS__))
#define IQN_REQUIRES_SHARED(...) \
  IQN_THREAD_ANNOTATION_ATTRIBUTE_(requires_shared_capability(__VA_ARGS__))

// On a function: acquires the capability (caller must not already hold
// it); the shared variants acquire reader access.
#define IQN_ACQUIRE(...) \
  IQN_THREAD_ANNOTATION_ATTRIBUTE_(acquire_capability(__VA_ARGS__))
#define IQN_ACQUIRE_SHARED(...) \
  IQN_THREAD_ANNOTATION_ATTRIBUTE_(acquire_shared_capability(__VA_ARGS__))

// On a function: releases the capability (caller must hold it).
#define IQN_RELEASE(...) \
  IQN_THREAD_ANNOTATION_ATTRIBUTE_(release_capability(__VA_ARGS__))
#define IQN_RELEASE_SHARED(...) \
  IQN_THREAD_ANNOTATION_ATTRIBUTE_(release_shared_capability(__VA_ARGS__))

// On a function returning bool: acquires the capability iff the return
// value equals the first argument.
#define IQN_TRY_ACQUIRE(...) \
  IQN_THREAD_ANNOTATION_ATTRIBUTE_(try_acquire_capability(__VA_ARGS__))

// On a function: must be called WITHOUT the capability held (deadlock
// prevention for functions that acquire it themselves).
#define IQN_EXCLUDES(...) \
  IQN_THREAD_ANNOTATION_ATTRIBUTE_(locks_excluded(__VA_ARGS__))

// On a function: tells the analysis the capability IS held here even
// though it cannot prove it (e.g. held by an enclosing object whose
// lifetime guarantees it). Backed by a runtime check where possible.
#define IQN_ASSERT_CAPABILITY(x) \
  IQN_THREAD_ANNOTATION_ATTRIBUTE_(assert_capability(x))
#define IQN_ASSERT_SHARED_CAPABILITY(x) \
  IQN_THREAD_ANNOTATION_ATTRIBUTE_(assert_shared_capability(x))

// On a function returning a reference to a capability.
#define IQN_RETURN_CAPABILITY(x) \
  IQN_THREAD_ANNOTATION_ATTRIBUTE_(lock_returned(x))

// Lock-ordering declarations (deadlock detection across capabilities).
#define IQN_ACQUIRED_BEFORE(...) \
  IQN_THREAD_ANNOTATION_ATTRIBUTE_(acquired_before(__VA_ARGS__))
#define IQN_ACQUIRED_AFTER(...) \
  IQN_THREAD_ANNOTATION_ATTRIBUTE_(acquired_after(__VA_ARGS__))

// Escape hatch: disables the analysis for one function. Every use needs
// a comment explaining which invariant makes the unchecked code safe.
#define IQN_NO_THREAD_SAFETY_ANALYSIS \
  IQN_THREAD_ANNOTATION_ATTRIBUTE_(no_thread_safety_analysis)

#endif  // IQN_UTIL_THREAD_ANNOTATIONS_H_

// Minimal leveled logger for examples and benches.
//
// Library code itself never logs on hot paths; logging exists so the
// runnable binaries can narrate what the engine is doing.
//
// Thread safety: the minimum level is an atomic, each LogLine buffers its
// own message, and LogMessage emits one pre-formatted write per line, so
// concurrent loggers cannot interleave characters and TSan sees no races.

#ifndef IQN_UTIL_LOGGING_H_
#define IQN_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace iqn {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global minimum level; messages below it are dropped. Default kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Sink for one formatted message (implementation writes to stderr).
void LogMessage(LogLevel level, const std::string& msg);

namespace internal {

/// Stream-style collector that emits on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() {
    if (level_ >= GetLogLevel()) LogMessage(level_, stream_.str());
  }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define IQN_LOG_DEBUG ::iqn::internal::LogLine(::iqn::LogLevel::kDebug)
#define IQN_LOG_INFO ::iqn::internal::LogLine(::iqn::LogLevel::kInfo)
#define IQN_LOG_WARN ::iqn::internal::LogLine(::iqn::LogLevel::kWarn)
#define IQN_LOG_ERROR ::iqn::internal::LogLine(::iqn::LogLevel::kError)

}  // namespace iqn

#endif  // IQN_UTIL_LOGGING_H_

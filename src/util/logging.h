// Minimal leveled logger for examples and benches.
//
// Library code itself never logs on hot paths; logging exists so the
// runnable binaries can narrate what the engine is doing. The trace
// layer (util/trace.h) additionally narrates span closes through
// IQN_VLOG when verbosity is raised.
//
// Thread safety: the minimum level and verbosity are atomics, each
// LogLine buffers its own message, and LogMessage emits one
// pre-formatted write per line, so concurrent loggers cannot interleave
// characters and TSan sees no races. There is no guarded compound state
// here, hence no iqn::Mutex — the logger is one of the repo's
// lock-free-by-design components (DESIGN.md §12); the config atomics
// live in util/, outside the metrics-registry rule's scope.
//
// Cost below threshold: LogLine captures the level check ONCE at
// construction and short-circuits every operator<<, so a suppressed
// line never formats its message; IQN_VLOG goes further and skips
// evaluating the streamed expressions entirely.

#ifndef IQN_UTIL_LOGGING_H_
#define IQN_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace iqn {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global minimum level; messages below it are dropped. Default kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Debug-narration verbosity for IQN_VLOG(n): messages emit when
/// verbosity >= n. Default 0 (all IQN_VLOG suppressed).
void SetVerbosity(int verbosity);
int GetVerbosity();

/// Sink for one formatted message (implementation writes to stderr).
void LogMessage(LogLevel level, const std::string& msg);

namespace internal {

/// Stream-style collector that emits on destruction. The enabled
/// decision is taken at construction; a disabled line skips all
/// formatting work.
class LogLine {
 public:
  explicit LogLine(LogLevel level)
      : LogLine(level, level >= GetLogLevel()) {}
  LogLine(LogLevel level, bool enabled) : level_(level), enabled_(enabled) {}
  ~LogLine() {
    if (enabled_) LogMessage(level_, stream_.str());
  }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal

#define IQN_LOG_DEBUG ::iqn::internal::LogLine(::iqn::LogLevel::kDebug)
#define IQN_LOG_INFO ::iqn::internal::LogLine(::iqn::LogLevel::kInfo)
#define IQN_LOG_WARN ::iqn::internal::LogLine(::iqn::LogLevel::kWarn)
#define IQN_LOG_ERROR ::iqn::internal::LogLine(::iqn::LogLevel::kError)

// Verbose debug narration, gated on SetVerbosity alone (it bypasses the
// level threshold: raising verbosity is an explicit opt-in). Streamed
// expressions are NOT evaluated when suppressed — safe on hot paths.
#define IQN_VLOG(n)                    \
  if (::iqn::GetVerbosity() < (n)) {   \
  } else                               \
    ::iqn::internal::LogLine(::iqn::LogLevel::kDebug, true)

}  // namespace iqn

#endif  // IQN_UTIL_LOGGING_H_

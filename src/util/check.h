// Invariant-check macros for conditions that indicate a bug in this
// process, as opposed to bad input from the outside world.
//
// Policy (see DESIGN.md "Correctness tooling"):
//  * Untrusted bytes (wire decoding, peer messages) -> return Status,
//    never CHECK. A remote peer must not be able to crash this node.
//  * Internal invariants whose violation means the program logic is
//    broken -> IQN_CHECK. These stay on in release builds because a
//    corrupted synopsis silently poisons every routing decision
//    downstream, which is far worse than a crash.
//  * Hot-loop invariants too expensive for release -> IQN_DCHECK
//    (compiled out unless NDEBUG is undefined, i.e. in Debug builds).
//
// All forms print the failed condition, the operand values (for the
// binary comparisons), and the source location, then abort(). They are
// deliberately independent of Status/logging so every layer, including
// util itself, can use them.

#ifndef IQN_UTIL_CHECK_H_
#define IQN_UTIL_CHECK_H_

#include <sstream>
#include <string>

namespace iqn {
namespace internal {

/// Prints "CHECK failed: <msg> at <file>:<line>" to stderr and aborts.
/// Out of line so the macro expansion stays small at every call site.
[[noreturn]] void CheckFailed(const char* file, int line, const char* condition,
                              const std::string& detail);

/// Stringifies a checked operand. Falls back to "<unprintable>" for types
/// without operator<<; specialized so CHECK_EQ works on anything.
template <typename T>
std::string CheckOperandToString(const T& v) {
  if constexpr (requires(std::ostringstream& os, const T& x) { os << x; }) {
    std::ostringstream os;
    os << v;
    return os.str();
  } else {
    return "<unprintable>";
  }
}

/// Builds the "lhs vs rhs" detail string for a failed binary comparison.
template <typename A, typename B>
std::string CheckOpDetail(const char* op, const A& a, const B& b) {
  std::string out = CheckOperandToString(a);
  out += " ";
  out += op;
  out += " ";
  out += CheckOperandToString(b);
  return out;
}

}  // namespace internal
}  // namespace iqn

#define IQN_CHECK(condition)                                              \
  do {                                                                    \
    if (!(condition)) {                                                   \
      ::iqn::internal::CheckFailed(__FILE__, __LINE__, #condition, "");   \
    }                                                                     \
  } while (0)

// The operands of binary checks are evaluated exactly once.
#define IQN_CHECK_OP_(name, op, a, b)                                     \
  do {                                                                    \
    auto&& iqn_check_a_ = (a);                                            \
    auto&& iqn_check_b_ = (b);                                            \
    if (!(iqn_check_a_ op iqn_check_b_)) {                                \
      ::iqn::internal::CheckFailed(                                       \
          __FILE__, __LINE__, #a " " #op " " #b,                          \
          ::iqn::internal::CheckOpDetail(#op, iqn_check_a_,               \
                                         iqn_check_b_));                  \
    }                                                                     \
  } while (0)

#define IQN_CHECK_EQ(a, b) IQN_CHECK_OP_(EQ, ==, a, b)
#define IQN_CHECK_NE(a, b) IQN_CHECK_OP_(NE, !=, a, b)
#define IQN_CHECK_LT(a, b) IQN_CHECK_OP_(LT, <, a, b)
#define IQN_CHECK_LE(a, b) IQN_CHECK_OP_(LE, <=, a, b)
#define IQN_CHECK_GT(a, b) IQN_CHECK_OP_(GT, >, a, b)
#define IQN_CHECK_GE(a, b) IQN_CHECK_OP_(GE, >=, a, b)

// Debug-only variants: full checks in Debug builds, no code and no operand
// evaluation in release builds (operands must be side-effect free).
#ifdef NDEBUG
#define IQN_DCHECK_ACTIVE_ 0
#define IQN_DCHECK(condition) \
  do {                        \
  } while (0)
#define IQN_DCHECK_OP_(op, a, b) \
  do {                           \
  } while (0)
#else
#define IQN_DCHECK_ACTIVE_ 1
#define IQN_DCHECK(condition) IQN_CHECK(condition)
#define IQN_DCHECK_OP_(op, a, b) IQN_CHECK_OP_(D, op, a, b)
#endif

#define IQN_DCHECK_EQ(a, b) IQN_DCHECK_OP_(==, a, b)
#define IQN_DCHECK_NE(a, b) IQN_DCHECK_OP_(!=, a, b)
#define IQN_DCHECK_LT(a, b) IQN_DCHECK_OP_(<, a, b)
#define IQN_DCHECK_LE(a, b) IQN_DCHECK_OP_(<=, a, b)
#define IQN_DCHECK_GT(a, b) IQN_DCHECK_OP_(>, a, b)
#define IQN_DCHECK_GE(a, b) IQN_DCHECK_OP_(>=, a, b)

#endif  // IQN_UTIL_CHECK_H_

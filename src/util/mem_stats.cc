#include "util/mem_stats.h"

#include <cstdio>
#include <cstring>

#include "util/check.h"
#include "util/metrics.h"

namespace iqn {

void MemTracker::Charge(int64_t delta) {
  int64_t prev = bytes_.fetch_add(delta, std::memory_order_relaxed);
  // A negative balance means some owner released bytes it never charged
  // (or double-released): the accounting is lying, which poisons every
  // report downstream — fail fast.
  IQN_CHECK_GE(prev + delta, 0);
}

MemStats& MemStats::Default() {
  static MemStats stats;
  return stats;
}

MemTracker* MemStats::GetTracker(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = trackers_[name];
  if (slot == nullptr) slot = std::make_unique<MemTracker>(name);
  return slot.get();
}

std::map<std::string, int64_t> MemStats::Snapshot() const {
  MutexLock lock(&mu_);
  std::map<std::string, int64_t> out;
  for (const auto& [name, tracker] : trackers_) {
    out[name] = tracker->bytes();
  }
  return out;
}

void MemStats::PublishGauges(MetricsRegistry* registry) const {
  IQN_CHECK(registry != nullptr);
  for (const auto& [name, bytes] : Snapshot()) {
    registry->GetGauge("mem." + name + ".bytes")
        ->Set(static_cast<double>(bytes));
  }
  registry->GetGauge("mem.peak_rss_bytes")
      ->Set(static_cast<double>(ReadPeakRssBytes()));
}

int64_t ReadPeakRssBytes() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  int64_t kib = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    // "VmHWM:    123456 kB" — peak resident set since process start.
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      long long value = 0;
      if (std::sscanf(line + 6, "%lld", &value) == 1) kib = value;
      break;
    }
  }
  std::fclose(f);
  return kib * 1024;
}

}  // namespace iqn

// Status / Result error handling for the iqn library.
//
// Library code does not throw exceptions (RocksDB idiom): fallible
// operations return Status, and fallible constructors are replaced by
// static Create() factories returning Result<T>.

#ifndef IQN_UTIL_STATUS_H_
#define IQN_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "util/check.h"

namespace iqn {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kCorruption,       // malformed serialized bytes
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  kUnavailable,      // peer/node down or unreachable
  kDeadlineExceeded, // simulated-time deadline expired (RPC timeout)
};

/// Stable short name of a code ("OK", "Unavailable", ...), for trace
/// attributes and log lines.
const char* StatusCodeName(StatusCode code);

/// Lightweight status object carrying a code and, on error, a message.
/// [[nodiscard]]: silently dropping a Status return hides failures, so
/// the compiler flags every discarded call. Deliberate fire-and-forget
/// sites cast to (void) WITH a reason comment (tools/iqn_lint.py rule
/// status-discard keeps both the attribute and the comments honest).
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Value-or-Status. Accessing value() on an error Result aborts in debug
/// builds; callers must check ok() first. [[nodiscard]] for the same
/// reason as Status: a dropped Result is a dropped error.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}        // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    IQN_DCHECK(!status_.ok());  // OK status requires a value
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    IQN_DCHECK(ok());
    return *value_;
  }
  T& value() & {
    IQN_DCHECK(ok());
    return *value_;
  }
  T&& value() && {
    IQN_DCHECK(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

// Propagates a non-OK status to the caller.
#define IQN_RETURN_IF_ERROR(expr)            \
  do {                                       \
    ::iqn::Status _st = (expr);              \
    if (!_st.ok()) return _st;               \
  } while (0)

// Evaluates a Result expression, propagating an error status, otherwise
// binding the value to `lhs`.
#define IQN_ASSIGN_OR_RETURN(lhs, expr)      \
  auto IQN_CONCAT_(_res_, __LINE__) = (expr);            \
  if (!IQN_CONCAT_(_res_, __LINE__).ok())                \
    return IQN_CONCAT_(_res_, __LINE__).status();        \
  lhs = std::move(IQN_CONCAT_(_res_, __LINE__)).value()

#define IQN_CONCAT_INNER_(a, b) a##b
#define IQN_CONCAT_(a, b) IQN_CONCAT_INNER_(a, b)

}  // namespace iqn

#endif  // IQN_UTIL_STATUS_H_

#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace iqn {

void RunningStats::Add(double x) {
  ++count_;
  if (count_ == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  if (keep_samples_) samples_.push_back(x);
}

double RunningStats::Mean() const { return count_ ? mean_ : 0.0; }

double RunningStats::Variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::StdDev() const { return std::sqrt(Variance()); }

double RunningStats::Percentile(double p) const {
  if (!keep_samples_ || samples_.empty()) return 0.0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  std::vector<double> sorted(samples_);
  std::sort(sorted.begin(), sorted.end());
  double rank = p * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace iqn

#include "util/check.h"

#include <cstdio>
#include <cstdlib>

namespace iqn {
namespace internal {

[[noreturn]] void CheckFailed(const char* file, int line,
                              const char* condition,
                              const std::string& detail) {
  // One formatted write so the message stays intact even if several
  // threads fail checks at once.
  std::string msg = "CHECK failed: ";
  msg += condition;
  if (!detail.empty()) {
    msg += " (";
    msg += detail;
    msg += ")";
  }
  msg += " at ";
  msg += file;
  msg += ":";
  msg += std::to_string(line);
  msg += "\n";
  std::fwrite(msg.data(), 1, msg.size(), stderr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace iqn

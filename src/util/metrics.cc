#include "util/metrics.h"

#include <cmath>

#include "util/check.h"
#include "util/json_value.h"

namespace iqn {

namespace {

// Fixed-point scale for histogram sums: integer accumulation keeps the
// sum independent of the order concurrent observers interleave.
constexpr double kSumScale = 1024.0;

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  IQN_CHECK(!bounds_.empty());
  for (size_t i = 1; i < bounds_.size(); ++i) {
    IQN_CHECK_LT(bounds_[i - 1], bounds_[i]);
  }
  counts_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
}

void Histogram::Observe(double v) {
  size_t bucket = bounds_.size();  // overflow unless a bound matches
  for (size_t i = 0; i < bounds_.size(); ++i) {
    if (v <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_fixed_.fetch_add(static_cast<int64_t>(std::llround(v * kSumScale)),
                       std::memory_order_relaxed);
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> out(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    out[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::Sum() const {
  return static_cast<double>(sum_fixed_.load(std::memory_order_relaxed)) /
         kSumScale;
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_fixed_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry registry;
  return registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  MutexLock lock(&mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(std::move(bounds));
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MutexLock lock(&mu_);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = gauge->Value();
  }
  for (const auto& [name, hist] : histograms_) {
    MetricsSnapshot::HistogramData data;
    data.bounds = hist->bounds();
    data.counts = hist->BucketCounts();
    data.count = hist->Count();
    data.sum = hist->Sum();
    snap.histograms[name] = std::move(data);
  }
  return snap;
}

void MetricsRegistry::Reset() {
  MutexLock lock(&mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
}

namespace {

// Gauges are the one instrument that can hold a non-finite double
// (e.g. a ratio before its denominator ever updated): JSON has no
// encoding for those, so they export as null rather than as the
// unparsable "nan" the old %.17g path produced.
JsonValue FiniteNumberOrNull(double v) {
  if (!std::isfinite(v)) return JsonValue::Null();
  return JsonValue::Number(v);
}

}  // namespace

JsonValue MetricsSnapshot::ToJsonValue() const {
  std::vector<JsonValue::Member> counter_members;
  for (const auto& [name, value] : counters) {
    counter_members.emplace_back(
        name, JsonValue::Number(static_cast<double>(value)));
  }
  std::vector<JsonValue::Member> gauge_members;
  for (const auto& [name, value] : gauges) {
    gauge_members.emplace_back(name, FiniteNumberOrNull(value));
  }
  std::vector<JsonValue::Member> histogram_members;
  for (const auto& [name, data] : histograms) {
    std::vector<JsonValue> bounds;
    for (double b : data.bounds) bounds.push_back(JsonValue::Number(b));
    std::vector<JsonValue> bucket_counts;
    for (uint64_t c : data.counts) {
      bucket_counts.push_back(JsonValue::Number(static_cast<double>(c)));
    }
    histogram_members.emplace_back(
        name,
        JsonValue::Object(
            {{"bounds", JsonValue::Array(std::move(bounds))},
             {"counts", JsonValue::Array(std::move(bucket_counts))},
             {"count", JsonValue::Number(static_cast<double>(data.count))},
             {"sum", FiniteNumberOrNull(data.sum)}}));
  }
  return JsonValue::Object(
      {{"counters", JsonValue::Object(std::move(counter_members))},
       {"gauges", JsonValue::Object(std::move(gauge_members))},
       {"histograms", JsonValue::Object(std::move(histogram_members))}});
}

std::string MetricsSnapshot::ToJson() const { return EmitJson(ToJsonValue()); }

}  // namespace iqn

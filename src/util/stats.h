// Streaming summary statistics for the bench harnesses.
//
// Welford's online algorithm: numerically stable single-pass mean and
// variance, plus optional sample retention for percentiles. The paper's
// Figure 2 claims are about both the mean relative error AND its
// variance ("MIPs offer accurate estimates with little variance"), so
// the benches report both.

#ifndef IQN_UTIL_STATS_H_
#define IQN_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace iqn {

class RunningStats {
 public:
  /// keep_samples enables Percentile() at O(n) memory.
  explicit RunningStats(bool keep_samples = false)
      : keep_samples_(keep_samples) {}

  void Add(double x);

  size_t count() const { return count_; }
  /// 0 when empty.
  double Mean() const;
  /// Sample variance (n-1 denominator); 0 with fewer than 2 samples.
  double Variance() const;
  double StdDev() const;
  double Min() const { return count_ ? min_ : 0.0; }
  double Max() const { return count_ ? max_ : 0.0; }

  /// p in [0, 1]; linear interpolation between order statistics.
  /// Requires keep_samples; returns 0 when empty.
  double Percentile(double p) const;

 private:
  bool keep_samples_;
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::vector<double> samples_;
};

}  // namespace iqn

#endif  // IQN_UTIL_STATS_H_

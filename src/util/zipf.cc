#include "util/zipf.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace iqn {

ZipfSampler::ZipfSampler(size_t n, double theta) : theta_(theta) {
  IQN_CHECK_GT(n, size_t{0});
  cdf_.resize(n);
  double acc = 0.0;
  for (size_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), theta);
    cdf_[k] = acc;
  }
  for (auto& c : cdf_) c /= acc;
  cdf_.back() = 1.0;  // guard against rounding
}

size_t ZipfSampler::Sample(Rng* rng) const {
  double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<size_t>(it - cdf_.begin());
}

double ZipfSampler::Pmf(size_t rank) const {
  IQN_DCHECK_LT(rank, cdf_.size());
  if (rank == 0) return cdf_[0];
  return cdf_[rank] - cdf_[rank - 1];
}

AliasSampler::AliasSampler(const std::vector<double>& weights) {
  IQN_CHECK(!weights.empty());
  const size_t n = weights.size();
  prob_.resize(n);
  alias_.resize(n);

  double total = 0.0;
  for (double w : weights) {
    IQN_CHECK_GE(w, 0.0);
    total += w;
  }
  IQN_CHECK_GT(total, 0.0);

  // Scaled probabilities; split into under- and over-full buckets.
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
  }

  std::vector<size_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }

  while (!small.empty() && !large.empty()) {
    size_t s = small.back();
    small.pop_back();
    size_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (size_t i : large) {
    prob_[i] = 1.0;
    alias_[i] = i;
  }
  for (size_t i : small) {
    prob_[i] = 1.0;  // numerical leftovers
    alias_[i] = i;
  }
}

size_t AliasSampler::Sample(Rng* rng) const {
  size_t i = static_cast<size_t>(rng->Uniform(prob_.size()));
  return rng->NextDouble() < prob_[i] ? i : alias_[i];
}

}  // namespace iqn

// Scoped CPU profiler layered on the trace spans: simulated-time
// aggregation from QueryTrace trees, plus an opt-in wall-clock leg.
//
// Two time domains, two determinism contracts:
//  * SIMULATED time (BuildProfile): a pure function of the recorded
//    span trees. Inclusive/exclusive totals per label and the folded
//    stacks are computed in the same microsecond domain as the Chrome
//    trace exporter — literally the expressions `start_ms * 1000.0`
//    and `(end_ms - start_ms) * 1000.0`, accumulated in span order —
//    so tools/validate_trace.py can recompute them bit-identically
//    from the exported trace, and outputs are identical across reruns
//    and thread counts.
//  * WALL time (CpuProfiler): real nanoseconds per span label,
//    aggregated process-wide when enabled. Inherently nondeterministic;
//    reports keep wall numbers in sections tools/bench_diff.py ignores
//    by default, and nothing deterministic may ever read them.
//
// The wall leg hooks ScopedSpan directly (see trace.cc): when
// CpuProfiler::Enable() has been called, every span — traced or not —
// records its wall duration under its label. Disabled (the default),
// the hook is one relaxed atomic load.
//
// Folded stacks ("a;b;c 123" lines, root-to-leaf path and EXCLUSIVE
// integer microseconds) load directly into flamegraph.pl / speedscope.

#ifndef IQN_UTIL_PROFILER_H_
#define IQN_UTIL_PROFILER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "util/json_value.h"
#include "util/status.h"
#include "util/trace.h"

namespace iqn {

/// Aggregated times for one span label across every profiled span.
struct ProfileEntry {
  std::string label;
  uint64_t count = 0;
  double inclusive_us = 0.0;  // simulated; sum of span durations
  double exclusive_us = 0.0;  // simulated; minus time in child spans
  double wall_ns = 0.0;       // wall clock; 0 unless CpuProfiler ran
};

struct ProfileReport {
  /// Sorted by label.
  std::vector<ProfileEntry> entries;
  /// Folded stacks: "root;child;leaf" -> rounded exclusive simulated
  /// microseconds, sorted by path. Zero-count paths are kept — a path
  /// that exists with no exclusive time is still shape information.
  std::vector<std::pair<std::string, uint64_t>> folded;

  /// One "path count\n" line per folded entry (flamegraph input).
  std::string ToFoldedString() const;
  /// Aligned text table (label, count, inclusive/exclusive ms, wall ms
  /// when any wall time was recorded).
  std::string ToTableString() const;
  /// {"spans": {label: {...}}, "folded": {path: count}}; wall_ns is
  /// included per span only when nonzero (nondeterministic — see top).
  JsonValue ToJsonValue() const;
};

/// Aggregates the span trees into per-label totals and folded stacks.
/// Traces are visited in vector order, spans in id order, so float
/// accumulation order — and thus every bit of the result — is fixed.
ProfileReport BuildProfile(const std::vector<const QueryTrace*>& traces);

/// Copies CpuProfiler's wall totals into matching labels of `report`
/// (labels with no simulated spans are appended with zero sim time).
void AttachWallTotals(ProfileReport* report);

/// Writes ToFoldedString() to `path`.
Status WriteFoldedFile(const std::string& path, const ProfileReport& report);

/// Process-wide wall-clock span aggregation. All static: the hook in
/// ScopedSpan must be reachable without any plumbing, exactly like the
/// ambient trace itself.
class CpuProfiler {
 public:
  struct WallTotal {
    uint64_t count = 0;
    int64_t total_ns = 0;
  };

  static void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  static void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  static bool enabled() { return enabled_.load(std::memory_order_relaxed); }

  /// Monotonic wall clock in nanoseconds.
  static int64_t NowNs();
  /// Adds one span's wall duration under `label` (mutex-guarded map;
  /// the cost is accepted — the wall leg is opt-in).
  static void RecordWall(const char* label, int64_t wall_ns);
  static std::map<std::string, WallTotal> WallSnapshot();
  static void ResetWall();

 private:
  static std::atomic<bool> enabled_;
};

}  // namespace iqn

#endif  // IQN_UTIL_PROFILER_H_

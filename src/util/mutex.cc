#include "util/mutex.h"

namespace iqn {

void CondVar::Wait(Mutex* mu) {
  // Adopt the already-held native mutex so std::condition_variable can
  // release/reacquire it, then release the unique_lock's ownership claim
  // before it destructs — the caller's MutexLock still owns the lock.
  std::unique_lock<std::mutex> native(mu->mu_, std::adopt_lock);
  cv_.wait(native);
  native.release();
}

}  // namespace iqn

// Per-component memory accounting WITHOUT allocator interposition.
//
// The ROADMAP's scale-up item (1k-10k peers, 1M+ docs) needs to know
// where the bytes live before arenas/SIMD land. A global allocator hook
// would see everything but attribute nothing; instead, each container
// OWNER (the DHT kv-store, the directory cache, a peer's inverted
// index, the decoded-synopsis memos) charges a registered MemTracker
// with the bytes it holds and releases them when it lets go. Accounting
// is therefore approximate (payload bytes, not malloc overhead) but
// attributable, cheap, and exact enough to rank components.
//
// Determinism: balances are sums of charges whose SET is deterministic,
// so snapshots are bit-identical across runs and thread counts — they
// are safe to embed in BenchReports and diff with tools/bench_diff.py.
// Peak RSS (ReadPeakRssBytes) is the one OS-dependent number; reports
// keep it under a key bench_diff ignores by default.
//
// Trackers live in a process-wide registry (MemStats::Default()) with
// the same stable-address contract as MetricsRegistry: owners look one
// up once and charge lock-free from then on. PublishGauges mirrors the
// balances into `mem.*` gauges so metrics snapshots carry them.

#ifndef IQN_UTIL_MEM_STATS_H_
#define IQN_UTIL_MEM_STATS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace iqn {

class MetricsRegistry;

/// Signed byte balance for one component. Charge/Release are relaxed
/// atomics (the total is order-independent); a balance going negative
/// means an owner released bytes it never charged — a bug, checked.
class MemTracker {
 public:
  explicit MemTracker(std::string name) : name_(std::move(name)) {}
  MemTracker(const MemTracker&) = delete;
  MemTracker& operator=(const MemTracker&) = delete;

  /// Adds `delta` bytes (negative to shrink). The post-charge balance
  /// must stay >= 0 (IQN_CHECK).
  void Charge(int64_t delta);
  /// Convenience for the common "drop what I charged" direction.
  void Release(int64_t bytes) { Charge(-bytes); }

  int64_t bytes() const { return bytes_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::atomic<int64_t> bytes_{0};
};

/// Name -> tracker registry, mirroring MetricsRegistry: registration is
/// mutex-guarded, addresses are stable for the process lifetime, and
/// the hot path (Charge/Release on a cached pointer) takes no lock.
class MemStats {
 public:
  MemStats() = default;
  MemStats(const MemStats&) = delete;
  MemStats& operator=(const MemStats&) = delete;

  /// The process-wide registry every owner reports into.
  static MemStats& Default();

  /// Registers on first use; later calls return the same tracker.
  MemTracker* GetTracker(const std::string& name) IQN_EXCLUDES(mu_);

  /// Point-in-time copy of every balance, keys sorted (std::map order).
  std::map<std::string, int64_t> Snapshot() const IQN_EXCLUDES(mu_);

  /// Mirrors every balance into `registry` as a `mem.<name>.bytes`
  /// gauge, plus `mem.peak_rss_bytes` from /proc/self/status.
  void PublishGauges(MetricsRegistry* registry) const IQN_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<MemTracker>> trackers_
      IQN_GUARDED_BY(mu_);
};

/// Peak resident set size (VmHWM) in bytes from /proc/self/status, or 0
/// where the proc interface is unavailable. OS-dependent — never feed
/// this into anything that must be deterministic.
int64_t ReadPeakRssBytes();

// Canonical tracker names, so owners and reports agree on spelling.
inline constexpr char kMemDhtKvStore[] = "dht.kv_store";
inline constexpr char kMemDirectoryCache[] = "minerva.directory_cache";
inline constexpr char kMemPostings[] = "ir.postings";
inline constexpr char kMemDecodedSynopses[] = "synopses.decoded";

}  // namespace iqn

#endif  // IQN_UTIL_MEM_STATS_H_

#include "util/random.h"

#include <cmath>

#include "util/check.h"

#include "util/hash.h"

namespace iqn {

namespace {

inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(uint64_t seed) {
  // splitmix64 stream to fill the state; guarantees a non-zero state.
  uint64_t x = seed;
  for (auto& s : s_) {
    x += 0x9e3779b97f4a7c15ULL;
    s = Mix64(x);
  }
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  IQN_DCHECK_GT(bound, uint64_t{0});
  // Lemire's nearly-divisionless method.
  unsigned __int128 m = static_cast<unsigned __int128>(Next()) * bound;
  uint64_t lo = static_cast<uint64_t>(m);
  if (lo < bound) {
    uint64_t threshold = (-bound) % bound;
    while (lo < threshold) {
      m = static_cast<unsigned __int128>(Next()) * bound;
      lo = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  IQN_DCHECK_LE(lo, hi);
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u, v, s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * factor;
  has_cached_gaussian_ = true;
  return u * factor;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  IQN_DCHECK_LE(k, n);
  // Partial Fisher-Yates over an index vector; O(n) space, O(n + k) time.
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  std::vector<size_t> out;
  out.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + static_cast<size_t>(Uniform(n - i));
    std::swap(idx[i], idx[j]);
    out.push_back(idx[i]);
  }
  return out;
}

Rng Rng::Fork() {
  return Rng(Next() ^ 0x632be59bd9b4e019ULL);
}

}  // namespace iqn

// Bit-level utilities shared by the synopsis implementations.

#ifndef IQN_UTIL_BITS_H_
#define IQN_UTIL_BITS_H_

#include <bit>
#include <cstdint>

namespace iqn {

/// Position of the least significant set bit, or 64 if x == 0.
/// This is the rho() function of Flajolet-Martin hash sketches.
inline int LeastSignificantSetBit(uint64_t x) {
  return x == 0 ? 64 : std::countr_zero(x);
}

/// Number of set bits.
inline int PopCount(uint64_t x) { return std::popcount(x); }

/// Smallest power of two >= x (x >= 1).
inline uint64_t NextPowerOfTwo(uint64_t x) { return std::bit_ceil(x); }

inline bool IsPowerOfTwo(uint64_t x) { return std::has_single_bit(x); }

/// floor(log2(x)) for x >= 1.
inline int FloorLog2(uint64_t x) { return 63 - std::countl_zero(x); }

}  // namespace iqn

#endif  // IQN_UTIL_BITS_H_

#include "util/logging.h"

#include <atomic>
#include <cstdio>

namespace iqn {

namespace {

// Relaxed ordering everywhere: the level is an independent knob with no
// data published under it, so threads only need atomicity, not ordering.
// This keeps the logger TSan-clean once parallel engines land.
std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::atomic<int> g_verbosity{0};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

void SetVerbosity(int verbosity) {
  g_verbosity.store(verbosity, std::memory_order_relaxed);
}

int GetVerbosity() { return g_verbosity.load(std::memory_order_relaxed); }

void LogMessage(LogLevel level, const std::string& msg) {
  // Format the whole line first and emit it with a single write: stderr is
  // unbuffered, so a multi-part fprintf could interleave with another
  // thread's message mid-line.
  std::string line;
  line.reserve(msg.size() + 16);
  line += "[";
  line += LevelName(level);
  line += "] ";
  line += msg;
  line += "\n";
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace iqn

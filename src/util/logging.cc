#include "util/logging.h"

#include <atomic>
#include <cstdio>

namespace iqn {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }

LogLevel GetLogLevel() { return g_level.load(); }

void LogMessage(LogLevel level, const std::string& msg) {
  std::fprintf(stderr, "[%s] %s\n", LevelName(level), msg.c_str());
}

}  // namespace iqn

// Bloom filter synopsis (paper Sec. 3.2).
//
// An m-bit vector with k hash probes per element. Supports membership
// tests, bitwise union (OR), intersection (AND), and set difference
// (ANDNOT, used for novelty estimation in Sec. 5.2), plus cardinality
// estimation from the fill ratio:
//
//   E[set bits] = m * (1 - (1 - 1/m)^(k*n))   =>   n ≈ -m/k * ln(1 - X/m)
//
// The paper's headline observation (Fig. 2) is that at a fixed small bit
// budget Bloom filters overload: once X/m approaches 1 the estimator's
// error explodes. This implementation reproduces that behaviour faithfully
// rather than hiding it.

#ifndef IQN_SYNOPSES_BLOOM_FILTER_H_
#define IQN_SYNOPSES_BLOOM_FILTER_H_

#include <cstdint>
#include <vector>

#include "synopses/synopsis.h"
#include "util/status.h"

namespace iqn {

class BloomFilter final : public SetSynopsis {
 public:
  /// num_bits >= 8, num_hashes in [1, 32]. `seed` must agree across peers
  /// whose filters are to be combined (a global system parameter, like the
  /// filter size itself — the paper calls this Bloom filters' main
  /// drawback).
  static Result<BloomFilter> Create(size_t num_bits, size_t num_hashes,
                                    uint64_t seed = 0);

  // SetSynopsis interface.
  SynopsisType type() const override { return SynopsisType::kBloomFilter; }
  size_t SizeBits() const override { return num_bits_; }
  void Add(DocId id) override;
  double EstimateCardinality() const override;
  std::unique_ptr<SetSynopsis> Clone() const override;
  Status MergeUnion(const SetSynopsis& other) override;
  Status MergeIntersect(const SetSynopsis& other) override;
  Result<double> EstimateResemblance(const SetSynopsis& other) const override;
  std::string ToString() const override;

  /// Membership test; false positives possible, false negatives not.
  bool MayContain(DocId id) const;

  /// In-place A \ B approximation: clears every bit set in `other`
  /// (Sec. 5.2 "bit-wise difference"). Same compatibility rules as union.
  Status MergeDifference(const SetSynopsis& other);

  /// Expected false-positive probability after n insertions:
  /// (1 - e^{-kn/m})^k.
  double FalsePositiveRate(size_t n) const;

  /// Number of set bits.
  size_t CountSetBits() const;

  size_t num_bits() const { return num_bits_; }
  size_t num_hashes() const { return num_hashes_; }
  uint64_t seed() const { return seed_; }
  const std::vector<uint64_t>& words() const { return words_; }

  /// Reconstructs a filter from its parameters and raw words (used by
  /// deserialization). Word vector length must match num_bits.
  static Result<BloomFilter> FromWords(size_t num_bits, size_t num_hashes,
                                       uint64_t seed,
                                       std::vector<uint64_t> words);

  /// Optimal k for a target capacity: round(m/n * ln 2), clamped to >= 1.
  static size_t OptimalNumHashes(size_t num_bits, size_t expected_items);

 private:
  BloomFilter(size_t num_bits, size_t num_hashes, uint64_t seed);

  /// nullptr + error message when `other` cannot combine with this filter.
  Result<const BloomFilter*> CheckCompatible(const SetSynopsis& other) const;

  /// Cardinality implied by a given set-bit count under this geometry.
  double CardinalityFromSetBits(size_t set_bits) const;

  size_t num_bits_;
  size_t num_hashes_;
  uint64_t seed_;
  std::vector<uint64_t> words_;
};

}  // namespace iqn

#endif  // IQN_SYNOPSES_BLOOM_FILTER_H_

#include "synopses/loglog.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/bits.h"
#include "util/hash.h"

namespace iqn {

namespace {

// Asymptotic LogLog constant alpha_infinity (Durand-Flajolet Thm. 1).
constexpr double kAlpha = 0.39701;
// Constant for the super-LogLog 70 % truncation rule. Durand-Flajolet
// derive their constant for a slightly different register/estimate
// normalization; for this implementation (estimate = alpha * keep *
// 2^mean over the kept registers) the constant was calibrated empirically
// across m in [64, 1024] and n in [1e4, 1e6] (see tests).
constexpr double kAlphaTruncated = 1.18;
constexpr double kTruncationRatio = 0.7;

}  // namespace

LogLogCounter::LogLogCounter(size_t num_buckets, uint64_t seed,
                             bool use_truncation)
    : seed_(seed), use_truncation_(use_truncation), registers_(num_buckets, 0) {}

Result<LogLogCounter> LogLogCounter::Create(size_t num_buckets, uint64_t seed,
                                            bool use_truncation) {
  if (!IsPowerOfTwo(num_buckets) || num_buckets < 16 || num_buckets > 65536) {
    return Status::InvalidArgument(
        "LogLog num_buckets must be a power of two in [16, 65536]");
  }
  return LogLogCounter(num_buckets, seed, use_truncation);
}

Result<LogLogCounter> LogLogCounter::FromRegisters(
    uint64_t seed, bool use_truncation, std::vector<uint8_t> registers) {
  IQN_ASSIGN_OR_RETURN(
      LogLogCounter ll,
      Create(registers.empty() ? 16 : registers.size(), seed, use_truncation));
  ll.registers_ = std::move(registers);
  return ll;
}

void LogLogCounter::Add(DocId id) {
  uint64_t h = Hash64(id, seed_);
  int bucket_bits = FloorLog2(registers_.size());
  size_t j = h & (registers_.size() - 1);
  uint64_t rest = h >> bucket_bits;
  // rho over the remaining bits; +1 so the register counts "position of
  // first 1-bit, 1-based" as in the original algorithm.
  int rho = LeastSignificantSetBit(rest) + 1;
  if (rho > 31) rho = 31;  // fits a 5-bit register
  if (registers_[j] < rho) registers_[j] = static_cast<uint8_t>(rho);
}

double LogLogCounter::EstimateCardinality() const {
  const size_t m = registers_.size();
  bool any = false;
  for (uint8_t r : registers_) any |= (r != 0);
  if (!any) return 0.0;

  if (!use_truncation_) {
    double sum = 0.0;
    for (uint8_t r : registers_) sum += r;
    return kAlpha * static_cast<double>(m) *
           std::pow(2.0, sum / static_cast<double>(m));
  }

  // Super-LogLog: average only the smallest theta_0 * m registers.
  std::vector<uint8_t> sorted(registers_);
  std::sort(sorted.begin(), sorted.end());
  size_t keep = static_cast<size_t>(kTruncationRatio * static_cast<double>(m));
  if (keep == 0) keep = 1;
  double sum = 0.0;
  for (size_t j = 0; j < keep; ++j) sum += sorted[j];
  return kAlphaTruncated * static_cast<double>(keep) *
         std::pow(2.0, sum / static_cast<double>(keep));
}

std::unique_ptr<SetSynopsis> LogLogCounter::Clone() const {
  return std::unique_ptr<SetSynopsis>(new LogLogCounter(*this));
}

Result<const LogLogCounter*> LogLogCounter::CheckCompatible(
    const SetSynopsis& other) const {
  if (other.type() != SynopsisType::kLogLog) {
    return Status::InvalidArgument("expected a LogLog counter, got " +
                                   std::string(SynopsisTypeName(other.type())));
  }
  const auto* ll = static_cast<const LogLogCounter*>(&other);
  if (ll->registers_.size() != registers_.size() || ll->seed_ != seed_) {
    return Status::InvalidArgument(
        "incompatible LogLog counters (buckets/seed differ)");
  }
  return ll;
}

Status LogLogCounter::MergeUnion(const SetSynopsis& other) {
  IQN_ASSIGN_OR_RETURN(const LogLogCounter* ll, CheckCompatible(other));
  for (size_t j = 0; j < registers_.size(); ++j) {
    registers_[j] = std::max(registers_[j], ll->registers_[j]);
  }
  return Status::OK();
}

Status LogLogCounter::MergeIntersect(const SetSynopsis& other) {
  (void)other;
  return Status::Unimplemented("LogLog counters do not support intersection");
}

Result<double> LogLogCounter::EstimateResemblance(
    const SetSynopsis& other) const {
  IQN_ASSIGN_OR_RETURN(const LogLogCounter* ll, CheckCompatible(other));
  double a = EstimateCardinality();
  double b = ll->EstimateCardinality();
  if (a == 0.0 && b == 0.0) return 0.0;
  LogLogCounter merged = *this;
  IQN_RETURN_IF_ERROR(merged.MergeUnion(*ll));
  double u = merged.EstimateCardinality();
  if (u <= 0.0) return 0.0;
  double inter = a + b - u;
  if (inter < 0.0) inter = 0.0;
  double r = inter / u;
  return r > 1.0 ? 1.0 : r;
}

std::string LogLogCounter::ToString() const {
  std::ostringstream os;
  os << "LogLog{m=" << registers_.size()
     << ", truncated=" << (use_truncation_ ? "yes" : "no")
     << ", est=" << EstimateCardinality() << "}";
  return os.str();
}

}  // namespace iqn

// Flajolet-Martin hash sketches (PCSA) — paper Sec. 3.2.
//
// The sketch keeps `num_bitmaps` bitmaps of `bits_per_bitmap` bits each.
// An element d is hashed; the low bits select a bitmap, the remaining bits
// feed rho() (position of the least significant 1-bit), and that bit of
// the selected bitmap is set. Since P(rho = k) = 2^-(k-+1), the highest
// contiguous run of set bits R_j in bitmap j estimates log2 of the
// per-bitmap cardinality; averaging over bitmaps and dividing by the
// Flajolet-Martin correction factor phi = 0.77351 gives
//
//   n_hat = num_bitmaps / phi * 2^{mean_j R_j}.
//
// Unions are exact under OR (Sec. 5.3); there is no known intersection
// (Sec. 3.4) — MergeIntersect returns Unimplemented, and overlap must go
// through the inclusion-exclusion path |A∩B| = |A|+|B|-|A∪B| (Sec. 5.2).
//
// The paper notes hash sketches "produce some unreliable estimates for
// very small collections"; that is the well-known PCSA small-range bias
// and this implementation intentionally keeps it (no linear-counting
// patch) so Fig. 2 reproduces.

#ifndef IQN_SYNOPSES_HASH_SKETCH_H_
#define IQN_SYNOPSES_HASH_SKETCH_H_

#include <cstdint>
#include <vector>

#include "synopses/synopsis.h"
#include "util/status.h"

namespace iqn {

class HashSketch final : public SetSynopsis {
 public:
  /// num_bitmaps >= 1, bits_per_bitmap in [4, 64]. The seed plays the role
  /// of the globally agreed hash function h().
  static Result<HashSketch> Create(size_t num_bitmaps, size_t bits_per_bitmap,
                                   uint64_t seed = 0);

  // SetSynopsis interface.
  SynopsisType type() const override { return SynopsisType::kHashSketch; }
  size_t SizeBits() const override { return bitmaps_.size() * bits_per_bitmap_; }
  void Add(DocId id) override;
  double EstimateCardinality() const override;
  std::unique_ptr<SetSynopsis> Clone() const override;
  Status MergeUnion(const SetSynopsis& other) override;
  /// Always Unimplemented (Sec. 3.4: no known HS intersection).
  Status MergeIntersect(const SetSynopsis& other) override;
  /// Via inclusion-exclusion on |A|, |B|, |A∪B| estimates.
  Result<double> EstimateResemblance(const SetSynopsis& other) const override;
  std::string ToString() const override;

  size_t num_bitmaps() const { return bitmaps_.size(); }
  size_t bits_per_bitmap() const { return bits_per_bitmap_; }
  uint64_t seed() const { return seed_; }
  const std::vector<uint64_t>& bitmaps() const { return bitmaps_; }

  /// Length of the initial run of set bits in bitmap j (the R statistic).
  int RunLength(size_t j) const;

  static Result<HashSketch> FromBitmaps(size_t bits_per_bitmap, uint64_t seed,
                                        std::vector<uint64_t> bitmaps);

 private:
  HashSketch(size_t num_bitmaps, size_t bits_per_bitmap, uint64_t seed);

  Result<const HashSketch*> CheckCompatible(const SetSynopsis& other) const;

  size_t bits_per_bitmap_;
  uint64_t seed_;
  std::vector<uint64_t> bitmaps_;  // one word per bitmap; bits above
                                   // bits_per_bitmap_ stay zero
};

}  // namespace iqn

#endif  // IQN_SYNOPSES_HASH_SKETCH_H_

#include "synopses/serialization.h"

#include "synopses/bloom_filter.h"
#include "synopses/hash_sketch.h"
#include "synopses/loglog.h"
#include "synopses/min_wise.h"
#include "util/bits.h"

namespace iqn {

namespace {

// Sanity caps so corrupt or hostile input cannot trigger huge allocations.
constexpr uint64_t kMaxBloomBits = uint64_t{1} << 26;   // 8 MiB filter
constexpr uint64_t kMaxBitmaps = 1 << 16;
constexpr uint64_t kMaxPermutations = 4096;
constexpr uint64_t kMaxRegisters = 65536;

// Wire-only tag for Golomb-Rice compressed Bloom filters (distinct from
// the SynopsisType values, which top out at 4).
constexpr uint8_t kCompressedBloomTag = 5;

/// Rice parameter fitted to the mean gap between set bits.
int RiceParameter(uint64_t num_bits, uint64_t set_bits) {
  if (set_bits == 0) return 0;
  uint64_t mean_gap = num_bits / set_bits;
  return mean_gap <= 1 ? 0 : FloorLog2(mean_gap);
}

Result<std::unique_ptr<SetSynopsis>> DecodeCompressedBloom(
    ByteReader* reader) {
  uint64_t num_bits, num_hashes, seed64, set_bits;
  uint8_t rice_b;
  Bytes stream;
  IQN_RETURN_IF_ERROR(reader->GetVarint(&num_bits));
  IQN_RETURN_IF_ERROR(reader->GetVarint(&num_hashes));
  IQN_RETURN_IF_ERROR(reader->GetU64(&seed64));
  IQN_RETURN_IF_ERROR(reader->GetVarint(&set_bits));
  IQN_RETURN_IF_ERROR(reader->GetU8(&rice_b));
  IQN_RETURN_IF_ERROR(reader->GetBytes(&stream));
  if (num_bits > kMaxBloomBits) {
    return Status::Corruption("compressed Bloom filter too large");
  }
  if (set_bits > num_bits || rice_b > 63) {
    return Status::Corruption("compressed Bloom filter header inconsistent");
  }
  // Each set bit costs at least rice_b + 1 stream bits (unary terminator
  // plus remainder), so a short stream cannot legitimately claim many
  // set bits. Rejecting here keeps the decode loop proportional to the
  // input size.
  if (set_bits > 0 &&
      set_bits > (uint64_t{8} * stream.size()) / (uint64_t{rice_b} + 1)) {
    return Status::Corruption(
        "compressed Bloom filter set-bit count exceeds stream length");
  }
  std::vector<uint64_t> words((num_bits + 63) / 64, 0);
  BitReader bits(stream);
  uint64_t position = 0;
  bool first = true;
  for (uint64_t i = 0; i < set_bits; ++i) {
    uint64_t quotient, remainder = 0;
    IQN_RETURN_IF_ERROR(bits.GetUnary(num_bits, &quotient));
    if (rice_b > 0) IQN_RETURN_IF_ERROR(bits.GetBits(rice_b, &remainder));
    uint64_t gap = ((quotient << rice_b) | remainder) + 1;
    position = first ? gap - 1 : position + gap;
    first = false;
    if (position >= num_bits) {
      return Status::Corruption("compressed Bloom bit position out of range");
    }
    words[position / 64] |= uint64_t{1} << (position % 64);
  }
  IQN_ASSIGN_OR_RETURN(BloomFilter bf,
                       BloomFilter::FromWords(num_bits, num_hashes, seed64,
                                              std::move(words)));
  return std::unique_ptr<SetSynopsis>(new BloomFilter(std::move(bf)));
}

}  // namespace

Bytes SerializeBloomFilterCompressed(const BloomFilter& filter) {
  // Gather set-bit positions.
  std::vector<uint64_t> positions;
  const std::vector<uint64_t>& words = filter.words();
  for (size_t w = 0; w < words.size(); ++w) {
    uint64_t word = words[w];
    while (word != 0) {
      int bit = LeastSignificantSetBit(word);
      positions.push_back(w * 64 + static_cast<uint64_t>(bit));
      word &= word - 1;
    }
  }

  int b = RiceParameter(filter.num_bits(), positions.size());
  BitWriter bits;
  uint64_t previous = 0;
  bool first = true;
  for (uint64_t position : positions) {
    uint64_t gap = first ? position + 1 : position - previous;
    first = false;
    previous = position;
    uint64_t encoded = gap - 1;
    bits.PutUnary(encoded >> b);
    if (b > 0) bits.PutBits(encoded & ((uint64_t{1} << b) - 1), b);
  }

  ByteWriter writer;
  writer.PutU8(kCompressedBloomTag);
  writer.PutVarint(filter.num_bits());
  writer.PutVarint(filter.num_hashes());
  writer.PutU64(filter.seed());
  writer.PutVarint(positions.size());
  writer.PutU8(static_cast<uint8_t>(b));
  writer.PutBytes(bits.Finish());
  Bytes compressed = writer.Take();

  // Dense filters compress badly; ship whichever image is smaller.
  Bytes raw = SerializeSynopsisToBytes(filter);
  return compressed.size() < raw.size() ? compressed : raw;
}

void SerializeSynopsis(const SetSynopsis& synopsis, ByteWriter* writer) {
  writer->PutU8(static_cast<uint8_t>(synopsis.type()));
  switch (synopsis.type()) {
    case SynopsisType::kBloomFilter: {
      const auto& bf = static_cast<const BloomFilter&>(synopsis);
      writer->PutVarint(bf.num_bits());
      writer->PutVarint(bf.num_hashes());
      writer->PutU64(bf.seed());
      for (uint64_t w : bf.words()) writer->PutU64(w);
      return;
    }
    case SynopsisType::kHashSketch: {
      const auto& hs = static_cast<const HashSketch&>(synopsis);
      writer->PutVarint(hs.num_bitmaps());
      writer->PutVarint(hs.bits_per_bitmap());
      writer->PutU64(hs.seed());
      for (uint64_t b : hs.bitmaps()) writer->PutU64(b);
      return;
    }
    case SynopsisType::kMinWise: {
      const auto& mw = static_cast<const MinWiseSynopsis&>(synopsis);
      writer->PutVarint(mw.num_permutations());
      writer->PutU64(mw.family_seed());
      for (uint64_t m : mw.mins()) writer->PutU64(m);
      return;
    }
    case SynopsisType::kLogLog: {
      const auto& ll = static_cast<const LogLogCounter&>(synopsis);
      writer->PutVarint(ll.num_buckets());
      writer->PutU64(ll.seed());
      writer->PutU8(ll.use_truncation() ? 1 : 0);
      for (uint8_t r : ll.registers()) writer->PutU8(r);
      return;
    }
  }
}

Bytes SerializeSynopsisToBytes(const SetSynopsis& synopsis) {
  ByteWriter writer;
  SerializeSynopsis(synopsis, &writer);
  return writer.Take();
}

Result<std::unique_ptr<SetSynopsis>> DeserializeSynopsis(ByteReader* reader) {
  uint8_t type_tag;
  IQN_RETURN_IF_ERROR(reader->GetU8(&type_tag));
  if (type_tag == kCompressedBloomTag) return DecodeCompressedBloom(reader);
  switch (static_cast<SynopsisType>(type_tag)) {
    case SynopsisType::kBloomFilter: {
      uint64_t num_bits, num_hashes, seed;
      IQN_RETURN_IF_ERROR(reader->GetVarint(&num_bits));
      IQN_RETURN_IF_ERROR(reader->GetVarint(&num_hashes));
      IQN_RETURN_IF_ERROR(reader->GetU64(&seed));
      if (num_bits > kMaxBloomBits) {
        return Status::Corruption("Bloom filter too large");
      }
      IQN_RETURN_IF_ERROR(
          reader->CheckCountFits((num_bits + 63) / 64, 8, "Bloom filter word"));
      std::vector<uint64_t> words((num_bits + 63) / 64);
      for (auto& w : words) IQN_RETURN_IF_ERROR(reader->GetU64(&w));
      IQN_ASSIGN_OR_RETURN(
          BloomFilter bf,
          BloomFilter::FromWords(num_bits, num_hashes, seed, std::move(words)));
      return std::unique_ptr<SetSynopsis>(new BloomFilter(std::move(bf)));
    }
    case SynopsisType::kHashSketch: {
      uint64_t num_bitmaps, width, seed;
      IQN_RETURN_IF_ERROR(reader->GetVarint(&num_bitmaps));
      IQN_RETURN_IF_ERROR(reader->GetVarint(&width));
      IQN_RETURN_IF_ERROR(reader->GetU64(&seed));
      if (num_bitmaps == 0 || num_bitmaps > kMaxBitmaps) {
        return Status::Corruption("hash sketch bitmap count out of range");
      }
      IQN_RETURN_IF_ERROR(
          reader->CheckCountFits(num_bitmaps, 8, "hash sketch bitmap"));
      std::vector<uint64_t> bitmaps(num_bitmaps);
      for (auto& b : bitmaps) IQN_RETURN_IF_ERROR(reader->GetU64(&b));
      IQN_ASSIGN_OR_RETURN(
          HashSketch hs, HashSketch::FromBitmaps(width, seed, std::move(bitmaps)));
      return std::unique_ptr<SetSynopsis>(new HashSketch(std::move(hs)));
    }
    case SynopsisType::kMinWise: {
      uint64_t n, family_seed;
      IQN_RETURN_IF_ERROR(reader->GetVarint(&n));
      IQN_RETURN_IF_ERROR(reader->GetU64(&family_seed));
      if (n == 0 || n > kMaxPermutations) {
        return Status::Corruption("MIPs permutation count out of range");
      }
      IQN_RETURN_IF_ERROR(reader->CheckCountFits(n, 8, "MIPs minimum"));
      std::vector<uint64_t> mins(n);
      for (auto& m : mins) IQN_RETURN_IF_ERROR(reader->GetU64(&m));
      IQN_ASSIGN_OR_RETURN(MinWiseSynopsis mw,
                           MinWiseSynopsis::FromMins(
                               UniversalHashFamily(family_seed), std::move(mins)));
      return std::unique_ptr<SetSynopsis>(new MinWiseSynopsis(std::move(mw)));
    }
    case SynopsisType::kLogLog: {
      uint64_t num_buckets, seed64;
      uint8_t truncation;
      IQN_RETURN_IF_ERROR(reader->GetVarint(&num_buckets));
      IQN_RETURN_IF_ERROR(reader->GetU64(&seed64));
      IQN_RETURN_IF_ERROR(reader->GetU8(&truncation));
      if (num_buckets == 0 || num_buckets > kMaxRegisters) {
        return Status::Corruption("LogLog bucket count out of range");
      }
      IQN_RETURN_IF_ERROR(
          reader->CheckCountFits(num_buckets, 1, "LogLog register"));
      std::vector<uint8_t> registers(num_buckets);
      for (auto& r : registers) IQN_RETURN_IF_ERROR(reader->GetU8(&r));
      IQN_ASSIGN_OR_RETURN(
          LogLogCounter ll,
          LogLogCounter::FromRegisters(seed64, truncation != 0,
                                       std::move(registers)));
      return std::unique_ptr<SetSynopsis>(new LogLogCounter(std::move(ll)));
    }
  }
  return Status::Corruption("unknown synopsis type tag");
}

Result<std::unique_ptr<SetSynopsis>> DeserializeSynopsisFromBytes(
    const Bytes& bytes) {
  ByteReader reader(bytes);
  IQN_ASSIGN_OR_RETURN(std::unique_ptr<SetSynopsis> syn,
                       DeserializeSynopsis(&reader));
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes after synopsis");
  }
  return syn;
}

void SerializeHistogram(const ScoreHistogramSynopsis& histogram,
                        ByteWriter* writer) {
  writer->PutVarint(histogram.num_cells());
  for (size_t i = 0; i < histogram.num_cells(); ++i) {
    writer->PutVarint(histogram.cell_count(i));
    SerializeSynopsis(histogram.cell(i), writer);
  }
}

Result<ScoreHistogramSynopsis> DeserializeHistogram(ByteReader* reader) {
  uint64_t num_cells;
  IQN_RETURN_IF_ERROR(reader->GetVarint(&num_cells));
  if (num_cells == 0 || num_cells > 64) {
    return Status::Corruption("histogram cell count out of range");
  }
  // Every cell carries at least a count varint and a synopsis type tag.
  IQN_RETURN_IF_ERROR(reader->CheckCountFits(num_cells, 2, "histogram cell"));
  std::vector<ScoreHistogramSynopsis::Cell> cells(num_cells);
  for (auto& cell : cells) {
    uint64_t count;
    IQN_RETURN_IF_ERROR(reader->GetVarint(&count));
    IQN_ASSIGN_OR_RETURN(cell.synopsis, DeserializeSynopsis(reader));
    cell.count = count;
  }
  return ScoreHistogramSynopsis::FromCells(std::move(cells));
}

}  // namespace iqn

// Min-wise independent permutations (MIPs) — paper Sec. 3.2, Fig. 1.
//
// N random linear permutations h_i(x) = (a_i*x + b_i) mod U over the
// Mersenne prime U = 2^61 - 1 are applied to every docId; the synopsis
// stores the minimum image under each permutation. Because every element
// of a set is equally likely to be the minimum under a random permutation,
//
//   P(min_i(A) == min_i(B)) = |A∩B| / |A∪B|  (the resemblance),
//
// so the fraction of matching vector positions is an unbiased resemblance
// estimator (Broder et al.).
//
// Properties the paper builds IQN on:
//  * union  = position-wise min (exact in distribution, Sec. 5.3);
//  * intersection ≈ position-wise max (conservative heuristic, Sec. 6.1);
//  * heterogeneous lengths: two MIPs vectors with N1 != N2 permutations
//    still compare/combine over the common prefix min(N1, N2) — the
//    decisive advantage over Bloom filters and hash sketches (Sec. 3.4) —
//    provided they were built from the same globally agreed hash family.
//
// All peers must share the UniversalHashFamily seed; serialized MIPs carry
// the seed as a family fingerprint and deserialization re-binds to it.

#ifndef IQN_SYNOPSES_MIN_WISE_H_
#define IQN_SYNOPSES_MIN_WISE_H_

#include <cstdint>
#include <vector>

#include "synopses/synopsis.h"
#include "util/hash.h"
#include "util/status.h"

namespace iqn {

class MinWiseSynopsis final : public SetSynopsis {
 public:
  /// Sentinel stored at a position before any element was added ("min of
  /// the empty set"); strictly larger than any permutation image.
  static constexpr uint64_t kEmptyMin = kMersenne61;

  /// num_permutations in [1, 4096].
  static Result<MinWiseSynopsis> Create(size_t num_permutations,
                                        const UniversalHashFamily& family);

  // SetSynopsis interface.
  SynopsisType type() const override { return SynopsisType::kMinWise; }
  /// Each stored minimum is charged at 32 bits, the paper's accounting
  /// (64 permutations == 2048 bits in Fig. 2/3).
  size_t SizeBits() const override { return mins_.size() * 32; }
  void Add(DocId id) override;
  double EstimateCardinality() const override;
  std::unique_ptr<SetSynopsis> Clone() const override;
  /// Position-wise min over the common prefix; this synopsis is truncated
  /// to min(N1, N2) permutations (Sec. 5.3 heterogeneous-length rule).
  Status MergeUnion(const SetSynopsis& other) override;
  /// Position-wise max over the common prefix (conservative, Sec. 6.1).
  Status MergeIntersect(const SetSynopsis& other) override;
  /// Matching positions / common prefix length.
  Result<double> EstimateResemblance(const SetSynopsis& other) const override;
  std::string ToString() const override;

  size_t num_permutations() const { return mins_.size(); }
  uint64_t family_seed() const { return family_.seed(); }
  const UniversalHashFamily& family() const { return family_; }
  const std::vector<uint64_t>& mins() const { return mins_; }

  /// True iff no element has been added.
  bool Empty() const;

  /// Number of distinct values in the vector; the paper mentions
  /// distinct-count over an aggregated vector as a (biased) heuristic
  /// cardinality signal for union/intersection results.
  size_t CountDistinctValues() const;

  static Result<MinWiseSynopsis> FromMins(const UniversalHashFamily& family,
                                          std::vector<uint64_t> mins);

 private:
  MinWiseSynopsis(size_t num_permutations, const UniversalHashFamily& family);

  /// Checks type and family; heterogeneous lengths are allowed.
  Result<const MinWiseSynopsis*> CheckComparable(
      const SetSynopsis& other) const;

  UniversalHashFamily family_;
  std::vector<uint64_t> mins_;
};

}  // namespace iqn

#endif  // IQN_SYNOPSES_MIN_WISE_H_

// The running "result space already covered" synopsis of the IQN loop
// (paper Sec. 5.1).
//
// IQN seeds the reference with the query initiator's local result (whose
// cardinality is exactly known), then alternates:
//   novelty  = NoveltyOf(candidate)          (Select-Best-Peer input)
//   Absorb(candidate)                        (Aggregate-Synopses step)
// Absorb unions the candidate synopsis into the reference and advances the
// tracked cardinality by the estimated novelty, so the loop only ever
// needs pair-wise estimation — exactly the property the paper designs for.

#ifndef IQN_SYNOPSES_REFERENCE_SYNOPSIS_H_
#define IQN_SYNOPSES_REFERENCE_SYNOPSIS_H_

#include <memory>

#include "synopses/estimators.h"
#include "synopses/synopsis.h"
#include "util/status.h"

namespace iqn {

class ReferenceSynopsis {
 public:
  /// Takes ownership of the seed synopsis. `cardinality` is the exact size
  /// of the seed set (the initiator's local result).
  static Result<ReferenceSynopsis> Create(std::unique_ptr<SetSynopsis> seed,
                                          double cardinality);

  ReferenceSynopsis(ReferenceSynopsis&&) = default;
  ReferenceSynopsis& operator=(ReferenceSynopsis&&) = default;

  /// Deep copy (clones the underlying synopsis).
  ReferenceSynopsis CloneRef() const;

  /// Estimated Novelty(candidate | covered-so-far).
  Result<double> NoveltyOf(const SetSynopsis& candidate,
                           double candidate_cardinality) const;

  /// Folds the candidate into the covered result space; returns the
  /// novelty that was credited.
  Result<double> Absorb(const SetSynopsis& candidate,
                        double candidate_cardinality);

  /// Current estimate of |covered result space| — usable as an IQN
  /// stopping criterion ("estimated result has at least k documents").
  double estimated_cardinality() const { return cardinality_; }

  const SetSynopsis& synopsis() const { return *synopsis_; }
  SynopsisType type() const { return synopsis_->type(); }

 private:
  ReferenceSynopsis(std::unique_ptr<SetSynopsis> seed, double cardinality)
      : synopsis_(std::move(seed)), cardinality_(cardinality) {}

  std::unique_ptr<SetSynopsis> synopsis_;
  double cardinality_;
};

}  // namespace iqn

#endif  // IQN_SYNOPSES_REFERENCE_SYNOPSIS_H_

// Set-correlation measures (paper Sec. 3.1) and synopsis-based novelty
// estimation (paper Sec. 5.2).
//
// Exact* functions compute ground truth on explicit docId sets (used by
// tests, Fig. 2 error measurement, and the paper's definitions);
// Estimate* functions work purely on synopses plus the posted
// cardinalities, which is all the query initiator ever sees.

#ifndef IQN_SYNOPSES_ESTIMATORS_H_
#define IQN_SYNOPSES_ESTIMATORS_H_

#include <cstdint>
#include <vector>

#include "synopses/synopsis.h"
#include "util/status.h"

namespace iqn {

// -------- Exact measures on explicit sets (ground truth) ---------------

/// |A ∩ B|. Inputs need not be sorted; duplicates are ignored.
size_t ExactOverlap(const std::vector<DocId>& a, const std::vector<DocId>& b);

/// Resemblance(A, B) = |A∩B| / |A∪B|; 0 when both sets are empty.
double ExactResemblance(const std::vector<DocId>& a,
                        const std::vector<DocId>& b);

/// Containment(A, B) = |A∩B| / |B| — the fraction of B already known to A;
/// 0 when B is empty. Note the asymmetry (Sec. 3.1).
double ExactContainment(const std::vector<DocId>& a,
                        const std::vector<DocId>& b);

/// Novelty(B | A) = |B - (A∩B)| — the number of elements B adds beyond A.
size_t ExactNovelty(const std::vector<DocId>& b, const std::vector<DocId>& a);

// -------- Conversions between measures (Sec. 3.1 / 5.2 algebra) --------

/// |A∩B| = R * (|A| + |B|) / (R + 1), from resemblance and cardinalities.
double OverlapFromResemblance(double resemblance, double card_a,
                              double card_b);

/// Containment(A,B) from resemblance and cardinalities (Sec. 3.1: either
/// measure derives the other given the set sizes).
double ContainmentFromResemblance(double resemblance, double card_a,
                                  double card_b);

/// Resemblance from containment and cardinalities (the inverse mapping).
double ResemblanceFromContainment(double containment, double card_a,
                                  double card_b);

// -------- Synopsis-based estimation (Sec. 5.2) --------------------------

/// Estimated Novelty(cand | ref): how many documents the candidate
/// collection adds beyond the reference set. `card_ref` / `card_cand` are
/// the true cardinalities known from the directory Posts (index list
/// lengths) and the IQN bookkeeping.
///
/// Dispatch (each path is the one the paper describes for that synopsis):
///  * MIPs:         resemblance -> overlap -> |B| - overlap;
///  * hash sketch / LogLog: |A∪B| from the OR/max-merged sketch, novelty
///                  = |A∪B| - |A| (inclusion-exclusion);
///  * Bloom filter: bitwise difference cand AND NOT ref, novelty = its
///                  cardinality estimate.
/// The result is clamped to [0, card_cand].
Result<double> EstimateNovelty(const SetSynopsis& ref, double card_ref,
                               const SetSynopsis& cand, double card_cand);

/// Estimated |A∩B| using the same per-type machinery as EstimateNovelty.
Result<double> EstimateOverlap(const SetSynopsis& a, double card_a,
                               const SetSynopsis& b, double card_b);

}  // namespace iqn

#endif  // IQN_SYNOPSES_ESTIMATORS_H_

#include "synopses/bloom_filter.h"

#include <cmath>
#include <sstream>

#include "synopses/kernels.h"
#include "util/check.h"
#include "util/hash.h"

namespace iqn {

BloomFilter::BloomFilter(size_t num_bits, size_t num_hashes, uint64_t seed)
    : num_bits_(num_bits),
      num_hashes_(num_hashes),
      seed_(seed),
      words_((num_bits + 63) / 64, 0) {}

Result<BloomFilter> BloomFilter::Create(size_t num_bits, size_t num_hashes,
                                        uint64_t seed) {
  if (num_bits < 8) {
    return Status::InvalidArgument("Bloom filter needs at least 8 bits");
  }
  if (num_hashes < 1 || num_hashes > 32) {
    return Status::InvalidArgument("Bloom filter num_hashes must be in [1,32]");
  }
  return BloomFilter(num_bits, num_hashes, seed);
}

Result<BloomFilter> BloomFilter::FromWords(size_t num_bits, size_t num_hashes,
                                           uint64_t seed,
                                           std::vector<uint64_t> words) {
  IQN_ASSIGN_OR_RETURN(BloomFilter bf, Create(num_bits, num_hashes, seed));
  if (words.size() != (num_bits + 63) / 64) {
    return Status::Corruption("Bloom filter word count mismatch");
  }
  // Bits beyond num_bits must be zero or set-bit counting is skewed.
  size_t tail = num_bits % 64;
  if (tail != 0 && (words.back() >> tail) != 0) {
    return Status::Corruption("Bloom filter has bits beyond num_bits");
  }
  bf.words_ = std::move(words);
  return bf;
}

size_t BloomFilter::OptimalNumHashes(size_t num_bits, size_t expected_items) {
  if (expected_items == 0) return 1;
  double k = std::round(static_cast<double>(num_bits) /
                        static_cast<double>(expected_items) * std::log(2.0));
  if (k < 1.0) return 1;
  if (k > 32.0) return 32;
  return static_cast<size_t>(k);
}

void BloomFilter::Add(DocId id) {
  DoubleHasher hasher(id, seed_);
  for (size_t i = 0; i < num_hashes_; ++i) {
    uint64_t pos = hasher.Probe(i, num_bits_);
    IQN_DCHECK_LT(pos, num_bits_);
    words_[pos / 64] |= uint64_t{1} << (pos % 64);
  }
}

bool BloomFilter::MayContain(DocId id) const {
  DoubleHasher hasher(id, seed_);
  for (size_t i = 0; i < num_hashes_; ++i) {
    uint64_t pos = hasher.Probe(i, num_bits_);
    if ((words_[pos / 64] & (uint64_t{1} << (pos % 64))) == 0) return false;
  }
  return true;
}

size_t BloomFilter::CountSetBits() const {
  // Counting only the num_bits_ prefix keeps the estimate right even if a
  // caller ever violates the bits-beyond-num_bits-are-zero invariant.
  return kernels::PopCountPrefix(words_.data(), num_bits_);
}

double BloomFilter::CardinalityFromSetBits(size_t set_bits) const {
  IQN_DCHECK_LE(set_bits, num_bits_);
  if (set_bits == 0) return 0.0;
  double m = static_cast<double>(num_bits_);
  double k = static_cast<double>(num_hashes_);
  if (set_bits >= num_bits_) {
    // Saturated filter: the estimator diverges. Return the capacity at
    // which saturation is expected (m-1 set bits); this is the honest
    // "at least this many" answer and is what makes overloaded BFs err
    // wildly in Fig. 2.
    set_bits = num_bits_ - 1;
  }
  double fill = static_cast<double>(set_bits) / m;
  return -(m / k) * std::log(1.0 - fill);
}

double BloomFilter::EstimateCardinality() const {
  return CardinalityFromSetBits(CountSetBits());
}

std::unique_ptr<SetSynopsis> BloomFilter::Clone() const {
  return std::unique_ptr<SetSynopsis>(new BloomFilter(*this));
}

Result<const BloomFilter*> BloomFilter::CheckCompatible(
    const SetSynopsis& other) const {
  if (other.type() != SynopsisType::kBloomFilter) {
    return Status::InvalidArgument("expected a Bloom filter, got " +
                                   std::string(SynopsisTypeName(other.type())));
  }
  const auto* bf = static_cast<const BloomFilter*>(&other);
  if (bf->num_bits_ != num_bits_ || bf->num_hashes_ != num_hashes_ ||
      bf->seed_ != seed_) {
    // The paper's Sec. 3.4 drawback: BF size is a global system parameter;
    // filters of different geometry simply cannot be combined.
    return Status::InvalidArgument(
        "incompatible Bloom filters (size/hashes/seed differ)");
  }
  return bf;
}

Status BloomFilter::MergeUnion(const SetSynopsis& other) {
  IQN_ASSIGN_OR_RETURN(const BloomFilter* bf, CheckCompatible(other));
  // CheckCompatible guarantees identical geometry, hence equal word counts.
  IQN_DCHECK_EQ(bf->words_.size(), words_.size());
  kernels::OrWords(words_.data(), bf->words_.data(), words_.size());
  return Status::OK();
}

Status BloomFilter::MergeIntersect(const SetSynopsis& other) {
  IQN_ASSIGN_OR_RETURN(const BloomFilter* bf, CheckCompatible(other));
  kernels::AndWords(words_.data(), bf->words_.data(), words_.size());
  return Status::OK();
}

Status BloomFilter::MergeDifference(const SetSynopsis& other) {
  IQN_ASSIGN_OR_RETURN(const BloomFilter* bf, CheckCompatible(other));
  kernels::AndNotWords(words_.data(), bf->words_.data(), words_.size());
  return Status::OK();
}

Result<double> BloomFilter::EstimateResemblance(
    const SetSynopsis& other) const {
  IQN_ASSIGN_OR_RETURN(const BloomFilter* bf, CheckCompatible(other));
  // Estimate |A∩B| and |A∪B| from the AND and OR of the bit vectors,
  // then R = |A∩B| / |A∪B|. The fused kernel walks the vectors once.
  kernels::AndOrCounts counts =
      kernels::PopCountAndOr(words_.data(), bf->words_.data(), words_.size());
  if (counts.or_bits == 0) return 0.0;  // both empty: resemblance is 0
  double union_card = CardinalityFromSetBits(counts.or_bits);
  double inter_card = CardinalityFromSetBits(counts.and_bits);
  if (union_card <= 0.0) return 0.0;
  double r = inter_card / union_card;
  return r < 0.0 ? 0.0 : (r > 1.0 ? 1.0 : r);
}

double BloomFilter::FalsePositiveRate(size_t n) const {
  double m = static_cast<double>(num_bits_);
  double k = static_cast<double>(num_hashes_);
  return std::pow(1.0 - std::exp(-k * static_cast<double>(n) / m), k);
}

std::string BloomFilter::ToString() const {
  std::ostringstream os;
  os << "BloomFilter{m=" << num_bits_ << ", k=" << num_hashes_
     << ", set=" << CountSetBits() << "}";
  return os.str();
}

}  // namespace iqn

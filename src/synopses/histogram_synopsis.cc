#include "synopses/histogram_synopsis.h"

#include <cmath>

#include "synopses/estimators.h"
#include "util/check.h"

namespace iqn {

Result<ScoreHistogramSynopsis> ScoreHistogramSynopsis::Create(
    size_t num_cells, const SynopsisFactory& factory) {
  if (num_cells < 1 || num_cells > 64) {
    return Status::InvalidArgument("histogram num_cells must be in [1, 64]");
  }
  if (!factory) {
    return Status::InvalidArgument("histogram needs a synopsis factory");
  }
  std::vector<Cell> cells(num_cells);
  for (auto& c : cells) {
    c.synopsis = factory();
    if (c.synopsis == nullptr) {
      return Status::InvalidArgument("synopsis factory returned null");
    }
  }
  return ScoreHistogramSynopsis(std::move(cells));
}

Result<ScoreHistogramSynopsis> ScoreHistogramSynopsis::FromCells(
    std::vector<Cell> cells) {
  if (cells.empty() || cells.size() > 64) {
    return Status::Corruption("histogram cell count out of range");
  }
  for (const auto& c : cells) {
    if (c.synopsis == nullptr) return Status::Corruption("null histogram cell");
  }
  return ScoreHistogramSynopsis(std::move(cells));
}

ScoreHistogramSynopsis ScoreHistogramSynopsis::CloneHist() const {
  std::vector<Cell> cells(cells_.size());
  for (size_t i = 0; i < cells_.size(); ++i) {
    cells[i].synopsis = cells_[i].synopsis->Clone();
    cells[i].count = cells_[i].count;
  }
  return ScoreHistogramSynopsis(std::move(cells));
}

size_t ScoreHistogramSynopsis::CellFor(double score) const {
  if (score < 0.0) score = 0.0;
  if (score >= 1.0) return cells_.size() - 1;
  size_t cell = static_cast<size_t>(score * static_cast<double>(cells_.size()));
  IQN_DCHECK_LT(cell, cells_.size());
  return cell;
}

void ScoreHistogramSynopsis::Add(DocId id, double score) {
  Cell& c = cells_[CellFor(score)];
  // Construction guarantees every cell carries a synopsis; a null here
  // means a moved-from histogram is still being mutated.
  IQN_CHECK(c.synopsis != nullptr);
  c.synopsis->Add(id);
  ++c.count;
}

double ScoreHistogramSynopsis::CellLowerBound(size_t i) const {
  return static_cast<double>(i) / static_cast<double>(cells_.size());
}

double ScoreHistogramSynopsis::CellUpperBound(size_t i) const {
  return static_cast<double>(i + 1) / static_cast<double>(cells_.size());
}

size_t ScoreHistogramSynopsis::TotalCount() const {
  size_t total = 0;
  for (const auto& c : cells_) total += c.count;
  return total;
}

size_t ScoreHistogramSynopsis::SizeBits() const {
  size_t bits = 0;
  for (const auto& c : cells_) bits += c.synopsis->SizeBits();
  return bits;
}

Result<double> ScoreHistogramSynopsis::WeightedNoveltyOf(
    const ScoreHistogramSynopsis& candidate, double weight_exponent) const {
  if (candidate.cells_.size() != cells_.size()) {
    return Status::InvalidArgument(
        "histogram synopses have different cell counts");
  }
  double weighted = 0.0;
  for (size_t j = 0; j < cells_.size(); ++j) {
    const Cell& cand = candidate.cells_[j];
    if (cand.count == 0) continue;
    // A document held by two peers may fall into different score cells
    // (scores are peer-local), so overlap must be summed over all
    // reference cells, not just the matching one.
    double overlap_sum = 0.0;
    for (size_t i = 0; i < cells_.size(); ++i) {
      const Cell& ref = cells_[i];
      if (ref.count == 0) continue;
      IQN_ASSIGN_OR_RETURN(
          double ov,
          EstimateOverlap(*ref.synopsis, static_cast<double>(ref.count),
                          *cand.synopsis, static_cast<double>(cand.count)));
      overlap_sum += ov;
    }
    double novelty = static_cast<double>(cand.count) - overlap_sum;
    if (novelty < 0.0) novelty = 0.0;
    double midpoint = (CellLowerBound(j) + CellUpperBound(j)) / 2.0;
    double w = weight_exponent == 0.0 ? 1.0 : std::pow(midpoint, weight_exponent);
    weighted += w * novelty;
  }
  return weighted;
}

Status ScoreHistogramSynopsis::Absorb(const ScoreHistogramSynopsis& candidate) {
  if (candidate.cells_.size() != cells_.size()) {
    return Status::InvalidArgument(
        "histogram synopses have different cell counts");
  }
  for (size_t i = 0; i < cells_.size(); ++i) {
    Cell& ref = cells_[i];
    const Cell& cand = candidate.cells_[i];
    if (cand.count == 0) continue;
    IQN_ASSIGN_OR_RETURN(
        double novelty,
        EstimateNovelty(*ref.synopsis, static_cast<double>(ref.count),
                        *cand.synopsis, static_cast<double>(cand.count)));
    // EstimateNovelty clamps to [0, candidate count]; absorbing must never
    // shrink a cell.
    IQN_DCHECK_GE(novelty, 0.0);
    IQN_DCHECK_LE(novelty, static_cast<double>(cand.count));
    IQN_RETURN_IF_ERROR(ref.synopsis->MergeUnion(*cand.synopsis));
    ref.count += static_cast<size_t>(novelty + 0.5);
  }
  return Status::OK();
}

}  // namespace iqn

// (super-)LogLog counting — Durand & Flajolet, ESA 2003 (paper ref. [16]).
//
// Cited by the paper as the space-reduced successor of Flajolet-Martin
// hash sketches: instead of a full bitmap per bucket, each of the m
// buckets keeps only the maximum rho value observed (a ~5-bit register).
// Cardinality is estimated as
//
//   n_hat = alpha_m * m * 2^{(1/m) * sum_j M_j}
//
// and the "super" variant additionally discards the largest registers
// (truncation rule, theta_0 = 70%) to cut the variance caused by outliers.
//
// Like hash sketches, registers combine under position-wise max for
// unions; there is no intersection.

#ifndef IQN_SYNOPSES_LOGLOG_H_
#define IQN_SYNOPSES_LOGLOG_H_

#include <cstdint>
#include <vector>

#include "synopses/synopsis.h"
#include "util/status.h"

namespace iqn {

class LogLogCounter final : public SetSynopsis {
 public:
  /// num_buckets must be a power of two in [16, 65536].
  /// `use_truncation` enables the super-LogLog rule: estimate from the
  /// smallest 70 % of registers with the adjusted constant.
  static Result<LogLogCounter> Create(size_t num_buckets, uint64_t seed = 0,
                                      bool use_truncation = true);

  // SetSynopsis interface.
  SynopsisType type() const override { return SynopsisType::kLogLog; }
  size_t SizeBits() const override { return registers_.size() * kRegisterBits; }
  void Add(DocId id) override;
  double EstimateCardinality() const override;
  std::unique_ptr<SetSynopsis> Clone() const override;
  Status MergeUnion(const SetSynopsis& other) override;
  Status MergeIntersect(const SetSynopsis& other) override;
  Result<double> EstimateResemblance(const SetSynopsis& other) const override;
  std::string ToString() const override;

  size_t num_buckets() const { return registers_.size(); }
  uint64_t seed() const { return seed_; }
  bool use_truncation() const { return use_truncation_; }
  const std::vector<uint8_t>& registers() const { return registers_; }

  static Result<LogLogCounter> FromRegisters(uint64_t seed,
                                             bool use_truncation,
                                             std::vector<uint8_t> registers);

  /// Bits charged per register when accounting space.
  static constexpr size_t kRegisterBits = 5;

 private:
  LogLogCounter(size_t num_buckets, uint64_t seed, bool use_truncation);

  Result<const LogLogCounter*> CheckCompatible(const SetSynopsis& other) const;

  uint64_t seed_;
  bool use_truncation_;
  std::vector<uint8_t> registers_;
};

}  // namespace iqn

#endif  // IQN_SYNOPSES_LOGLOG_H_

#include "synopses/reference_synopsis.h"

#include "util/check.h"

namespace iqn {

Result<ReferenceSynopsis> ReferenceSynopsis::Create(
    std::unique_ptr<SetSynopsis> seed, double cardinality) {
  if (seed == nullptr) {
    return Status::InvalidArgument("reference synopsis needs a seed");
  }
  if (cardinality < 0.0) {
    return Status::InvalidArgument("negative seed cardinality");
  }
  return ReferenceSynopsis(std::move(seed), cardinality);
}

ReferenceSynopsis ReferenceSynopsis::CloneRef() const {
  return ReferenceSynopsis(synopsis_->Clone(), cardinality_);
}

Result<double> ReferenceSynopsis::NoveltyOf(
    const SetSynopsis& candidate, double candidate_cardinality) const {
  return EstimateNovelty(*synopsis_, cardinality_, candidate,
                         candidate_cardinality);
}

Result<double> ReferenceSynopsis::Absorb(const SetSynopsis& candidate,
                                         double candidate_cardinality) {
  IQN_ASSIGN_OR_RETURN(double novelty,
                       NoveltyOf(candidate, candidate_cardinality));
  // The novelty estimators clamp to [0, candidate cardinality], so the
  // reference cardinality is non-decreasing across Aggregate-Synopses
  // iterations (paper Sec. 5.1); a violation would let the routing loop
  // double-count already-covered documents.
  IQN_DCHECK_GE(novelty, 0.0);
  IQN_DCHECK_LE(novelty, candidate_cardinality);
  IQN_RETURN_IF_ERROR(synopsis_->MergeUnion(candidate));
  cardinality_ += novelty;
  IQN_DCHECK_GE(cardinality_, 0.0);
  return novelty;
}

}  // namespace iqn

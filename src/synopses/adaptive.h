// Adaptive per-term synopsis lengths under a peer-wide space budget
// (paper Sec. 7.2).
//
// A peer posting synopses for M terms under a total budget of B bits
// chooses a per-term length len_j with sum(len_j) = B. The paper frames
// this as a knapsack-like problem and proposes a heuristic: allocate in
// proportion to a per-term *benefit*, for which it names three natural
// candidates — all three are implemented here.

#ifndef IQN_SYNOPSES_ADAPTIVE_H_
#define IQN_SYNOPSES_ADAPTIVE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/status.h"

namespace iqn {

/// Which per-term benefit drives the proportional allocation.
enum class BenefitPolicy {
  /// Benefit = index list length (more documents -> longer synopsis).
  kListLength,
  /// Benefit = number of entries with score above a threshold.
  kEntriesAboveThreshold,
  /// Benefit = number of top entries whose accumulated score mass reaches
  /// the given quantile (default 90 %) of the list's total score mass.
  kScoreMassQuantile,
};

/// Per-term inputs to the allocator. `scores` may be empty for
/// kListLength; it need not be sorted.
struct TermSynopsisDemand {
  uint64_t list_length = 0;
  std::vector<double> scores;
};

struct AdaptiveAllocationOptions {
  BenefitPolicy policy = BenefitPolicy::kListLength;
  /// Score threshold for kEntriesAboveThreshold.
  double score_threshold = 0.5;
  /// Mass quantile for kScoreMassQuantile.
  double mass_quantile = 0.9;
  /// Hard bounds on each len_j (bits). A synopsis below min_bits is not
  /// worth posting; max_bits caps diminishing returns.
  uint64_t min_bits = 64;
  uint64_t max_bits = 1 << 16;
  /// Round each length down to a multiple of this granularity (e.g. 32 for
  /// MIPs where one permutation costs 32 bits). Must divide min_bits.
  uint64_t granularity_bits = 32;
};

/// Computes the benefit of one term under a policy.
double TermBenefit(const TermSynopsisDemand& demand,
                   const AdaptiveAllocationOptions& options);

/// Proportional-benefit allocation of `budget_bits` over the terms:
/// len_j ~ benefit_j / sum(benefit), subject to [min_bits, max_bits] and
/// granularity. Surplus freed by the max cap is redistributed to uncapped
/// terms; if even min_bits for every term exceeds the budget, the terms
/// with the *lowest* benefit get length 0 (not posted) until the rest fit.
/// Returns one length per input term; sum(len_j) <= budget_bits.
Result<std::vector<uint64_t>> AllocateSynopsisBudget(
    const std::vector<TermSynopsisDemand>& demands, uint64_t budget_bits,
    const AdaptiveAllocationOptions& options = {});

}  // namespace iqn

#endif  // IQN_SYNOPSES_ADAPTIVE_H_

#include "synopses/min_wise.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "synopses/kernels.h"
#include "util/check.h"

namespace iqn {

MinWiseSynopsis::MinWiseSynopsis(size_t num_permutations,
                                 const UniversalHashFamily& family)
    : family_(family), mins_(num_permutations, kEmptyMin) {}

Result<MinWiseSynopsis> MinWiseSynopsis::Create(
    size_t num_permutations, const UniversalHashFamily& family) {
  if (num_permutations < 1 || num_permutations > 4096) {
    return Status::InvalidArgument(
        "MIPs num_permutations must be in [1, 4096]");
  }
  return MinWiseSynopsis(num_permutations, family);
}

Result<MinWiseSynopsis> MinWiseSynopsis::FromMins(
    const UniversalHashFamily& family, std::vector<uint64_t> mins) {
  IQN_ASSIGN_OR_RETURN(MinWiseSynopsis mw,
                       Create(mins.empty() ? 1 : mins.size(), family));
  if (mins.empty()) return Status::Corruption("MIPs vector is empty");
  for (uint64_t m : mins) {
    if (m > kEmptyMin) return Status::Corruption("MIPs value exceeds modulus");
  }
  mw.mins_ = std::move(mins);
  return mw;
}

void MinWiseSynopsis::Add(DocId id) {
  for (size_t i = 0; i < mins_.size(); ++i) {
    uint64_t v = family_.Apply(i, id);
    // The family maps into Z_{2^61-1}, so every hash stays strictly below
    // the empty-position sentinel; a violation means the hash family and
    // the sentinel disagree and every resemblance estimate is suspect.
    IQN_DCHECK_LT(v, kEmptyMin);
    if (v < mins_[i]) mins_[i] = v;
  }
}

bool MinWiseSynopsis::Empty() const {
  IQN_DCHECK(!mins_.empty());
  // Adding any element lowers every position below the sentinel.
  return mins_[0] == kEmptyMin;
}

double MinWiseSynopsis::EstimateCardinality() const {
  if (Empty()) return 0.0;
  // The minimum of n uniform draws from [0, U) scaled to [0, 1) is
  // approximately Exp(n)-distributed, so the sum over N independent
  // permutations is Gamma(N, rate n) and (N-1)/sum is an (almost)
  // unbiased estimator of n for N >= 2.
  const size_t n_perm = mins_.size();
  double sum = 0.0;
  for (uint64_t m : mins_) {
    sum += static_cast<double>(m) / static_cast<double>(kMersenne61);
  }
  if (sum <= 0.0) return static_cast<double>(kMersenne61);  // degenerate
  if (n_perm == 1) return 1.0 / sum - 1.0 < 0.0 ? 0.0 : 1.0 / sum - 1.0;
  double est = static_cast<double>(n_perm - 1) / sum;
  return est < 0.0 ? 0.0 : est;
}

std::unique_ptr<SetSynopsis> MinWiseSynopsis::Clone() const {
  return std::unique_ptr<SetSynopsis>(new MinWiseSynopsis(*this));
}

Result<const MinWiseSynopsis*> MinWiseSynopsis::CheckComparable(
    const SetSynopsis& other) const {
  if (other.type() != SynopsisType::kMinWise) {
    return Status::InvalidArgument("expected a MIPs synopsis, got " +
                                   std::string(SynopsisTypeName(other.type())));
  }
  const auto* mw = static_cast<const MinWiseSynopsis*>(&other);
  if (!(mw->family_ == family_)) {
    // Different permutation families produce incomparable minima; the
    // family seed is the one global agreement MIPs require (Sec. 5.3).
    return Status::InvalidArgument("MIPs built from different hash families");
  }
  return mw;
}

Status MinWiseSynopsis::MergeUnion(const SetSynopsis& other) {
  IQN_ASSIGN_OR_RETURN(const MinWiseSynopsis* mw, CheckComparable(other));
  size_t common = std::min(mins_.size(), mw->mins_.size());
  kernels::MinWords(mins_.data(), mw->mins_.data(), common);
  mins_.resize(common);
  return Status::OK();
}

Status MinWiseSynopsis::MergeIntersect(const SetSynopsis& other) {
  IQN_ASSIGN_OR_RETURN(const MinWiseSynopsis* mw, CheckComparable(other));
  size_t common = std::min(mins_.size(), mw->mins_.size());
  // The true minimum over A∩B can be no lower than max of the two
  // per-set minima, hence max is the conservative approximation.
  kernels::MaxWords(mins_.data(), mw->mins_.data(), common);
  mins_.resize(common);
  return Status::OK();
}

Result<double> MinWiseSynopsis::EstimateResemblance(
    const SetSynopsis& other) const {
  IQN_ASSIGN_OR_RETURN(const MinWiseSynopsis* mw, CheckComparable(other));
  size_t common = std::min(mins_.size(), mw->mins_.size());
  // Both synopses carry >= 1 permutation (enforced at construction), so
  // the match ratio below never divides by zero.
  IQN_DCHECK_GT(common, size_t{0});
  if (Empty() && mw->Empty()) return 0.0;
  size_t matches = kernels::CountEqualNotSentinel(
      mins_.data(), mw->mins_.data(), common, kEmptyMin);
  return static_cast<double>(matches) / static_cast<double>(common);
}

size_t MinWiseSynopsis::CountDistinctValues() const {
  std::unordered_set<uint64_t> distinct(mins_.begin(), mins_.end());
  distinct.erase(kEmptyMin);
  return distinct.size();
}

std::string MinWiseSynopsis::ToString() const {
  std::ostringstream os;
  os << "MIPs{N=" << mins_.size() << ", family=" << family_.seed()
     << (Empty() ? ", empty" : "") << "}";
  return os.str();
}

}  // namespace iqn

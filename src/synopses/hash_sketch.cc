#include "synopses/hash_sketch.h"

#include <cmath>
#include <sstream>

#include "synopses/kernels.h"
#include "util/bits.h"
#include "util/check.h"
#include "util/hash.h"

namespace iqn {

namespace {

// Flajolet-Martin bias correction factor.
constexpr double kPhi = 0.77351;

}  // namespace

HashSketch::HashSketch(size_t num_bitmaps, size_t bits_per_bitmap,
                       uint64_t seed)
    : bits_per_bitmap_(bits_per_bitmap),
      seed_(seed),
      bitmaps_(num_bitmaps, 0) {}

Result<HashSketch> HashSketch::Create(size_t num_bitmaps,
                                      size_t bits_per_bitmap, uint64_t seed) {
  if (num_bitmaps < 1) {
    return Status::InvalidArgument("hash sketch needs at least one bitmap");
  }
  if (bits_per_bitmap < 4 || bits_per_bitmap > 64) {
    return Status::InvalidArgument(
        "hash sketch bits_per_bitmap must be in [4,64]");
  }
  return HashSketch(num_bitmaps, bits_per_bitmap, seed);
}

Result<HashSketch> HashSketch::FromBitmaps(size_t bits_per_bitmap,
                                           uint64_t seed,
                                           std::vector<uint64_t> bitmaps) {
  IQN_ASSIGN_OR_RETURN(HashSketch hs,
                       Create(bitmaps.empty() ? 1 : bitmaps.size(),
                              bits_per_bitmap, seed));
  if (bitmaps.empty()) return Status::Corruption("hash sketch with no bitmaps");
  if (bits_per_bitmap < 64) {
    for (uint64_t b : bitmaps) {
      if ((b >> bits_per_bitmap) != 0) {
        return Status::Corruption("hash sketch bitmap exceeds declared width");
      }
    }
  }
  hs.bitmaps_ = std::move(bitmaps);
  return hs;
}

void HashSketch::Add(DocId id) {
  IQN_DCHECK(!bitmaps_.empty());
  uint64_t h = Hash64(id, seed_);
  size_t j = h % bitmaps_.size();
  // Use independent bits for rho so bitmap choice and bit position are
  // uncorrelated.
  uint64_t r = Hash64(id, seed_ ^ 0x9e3779b97f4a7c15ULL);
  int rho = LeastSignificantSetBit(r);
  if (rho >= static_cast<int>(bits_per_bitmap_)) {
    rho = static_cast<int>(bits_per_bitmap_) - 1;
  }
  // bits_per_bitmap_ is in [4, 64] (enforced at construction), so the
  // shift below is always defined.
  IQN_DCHECK_GE(rho, 0);
  IQN_DCHECK_LT(rho, 64);
  bitmaps_[j] |= uint64_t{1} << rho;
}

int HashSketch::RunLength(size_t j) const {
  // Position of the lowest *unset* bit = length of the initial 1-run.
  uint64_t inverted = ~bitmaps_[j];
  int r = LeastSignificantSetBit(inverted);
  if (r > static_cast<int>(bits_per_bitmap_)) {
    r = static_cast<int>(bits_per_bitmap_);
  }
  return r;
}

double HashSketch::EstimateCardinality() const {
  double sum_r = 0.0;
  for (size_t j = 0; j < bitmaps_.size(); ++j) {
    sum_r += RunLength(j);
  }
  double mean_r = sum_r / static_cast<double>(bitmaps_.size());
  double est = static_cast<double>(bitmaps_.size()) / kPhi *
               std::pow(2.0, mean_r);
  // An entirely empty sketch must report zero, not m/phi.
  bool any = false;
  for (uint64_t b : bitmaps_) any |= (b != 0);
  return any ? est : 0.0;
}

std::unique_ptr<SetSynopsis> HashSketch::Clone() const {
  return std::unique_ptr<SetSynopsis>(new HashSketch(*this));
}

Result<const HashSketch*> HashSketch::CheckCompatible(
    const SetSynopsis& other) const {
  if (other.type() != SynopsisType::kHashSketch) {
    return Status::InvalidArgument("expected a hash sketch, got " +
                                   std::string(SynopsisTypeName(other.type())));
  }
  const auto* hs = static_cast<const HashSketch*>(&other);
  if (hs->bitmaps_.size() != bitmaps_.size() ||
      hs->bits_per_bitmap_ != bits_per_bitmap_ || hs->seed_ != seed_) {
    // Like Bloom filters, hash sketches only combine at identical geometry
    // (Sec. 3.4: "they share with Bloom filters the disadvantage that all
    // hash sketches need to have the same bit lengths").
    return Status::InvalidArgument(
        "incompatible hash sketches (bitmaps/width/seed differ)");
  }
  return hs;
}

Status HashSketch::MergeUnion(const SetSynopsis& other) {
  IQN_ASSIGN_OR_RETURN(const HashSketch* hs, CheckCompatible(other));
  IQN_DCHECK_EQ(hs->bitmaps_.size(), bitmaps_.size());
  kernels::OrWords(bitmaps_.data(), hs->bitmaps_.data(), bitmaps_.size());
  return Status::OK();
}

Status HashSketch::MergeIntersect(const SetSynopsis& other) {
  // ANDing bitmaps does NOT approximate the sketch of the intersection
  // (an element in A∩B sets the same bit in both sketches, but so do
  // colliding elements unique to each side); the paper treats HS
  // intersection as an open problem. Refuse instead of being subtly wrong.
  (void)other;
  return Status::Unimplemented(
      "hash sketches do not support intersection (paper Sec. 3.4)");
}

Result<double> HashSketch::EstimateResemblance(
    const SetSynopsis& other) const {
  IQN_ASSIGN_OR_RETURN(const HashSketch* hs, CheckCompatible(other));
  double a = EstimateCardinality();
  double b = hs->EstimateCardinality();
  if (a == 0.0 && b == 0.0) return 0.0;

  HashSketch merged = *this;
  IQN_RETURN_IF_ERROR(merged.MergeUnion(*hs));
  double u = merged.EstimateCardinality();
  if (u <= 0.0) return 0.0;
  double inter = a + b - u;  // inclusion-exclusion on the estimates
  if (inter < 0.0) inter = 0.0;
  double r = inter / u;
  return r > 1.0 ? 1.0 : r;
}

std::string HashSketch::ToString() const {
  std::ostringstream os;
  os << "HashSketch{bitmaps=" << bitmaps_.size()
     << ", width=" << bits_per_bitmap_ << ", est=" << EstimateCardinality()
     << "}";
  return os.str();
}

}  // namespace iqn

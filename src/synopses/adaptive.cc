#include "synopses/adaptive.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace iqn {

double TermBenefit(const TermSynopsisDemand& demand,
                   const AdaptiveAllocationOptions& options) {
  switch (options.policy) {
    case BenefitPolicy::kListLength:
      return static_cast<double>(demand.list_length);
    case BenefitPolicy::kEntriesAboveThreshold: {
      size_t n = 0;
      for (double s : demand.scores) {
        if (s >= options.score_threshold) ++n;
      }
      return static_cast<double>(n);
    }
    case BenefitPolicy::kScoreMassQuantile: {
      if (demand.scores.empty()) return 0.0;
      std::vector<double> sorted(demand.scores);
      std::sort(sorted.begin(), sorted.end(), std::greater<double>());
      double total = std::accumulate(sorted.begin(), sorted.end(), 0.0);
      if (total <= 0.0) return 0.0;
      double target = options.mass_quantile * total;
      double acc = 0.0;
      size_t n = 0;
      for (double s : sorted) {
        acc += s;
        ++n;
        if (acc >= target) break;
      }
      return static_cast<double>(n);
    }
  }
  return 0.0;
}

namespace {

uint64_t RoundDown(uint64_t bits, uint64_t granularity) {
  return (bits / granularity) * granularity;
}

}  // namespace

Result<std::vector<uint64_t>> AllocateSynopsisBudget(
    const std::vector<TermSynopsisDemand>& demands, uint64_t budget_bits,
    const AdaptiveAllocationOptions& options) {
  if (demands.empty()) {
    return Status::InvalidArgument("no terms to allocate for");
  }
  if (options.granularity_bits == 0 ||
      options.min_bits % options.granularity_bits != 0) {
    return Status::InvalidArgument(
        "granularity_bits must be > 0 and divide min_bits");
  }
  if (options.min_bits == 0 || options.min_bits > options.max_bits) {
    return Status::InvalidArgument("need 0 < min_bits <= max_bits");
  }

  const size_t m = demands.size();
  std::vector<double> benefit(m);
  for (size_t j = 0; j < m; ++j) benefit[j] = TermBenefit(demands[j], options);

  // Terms ranked by benefit; when the budget cannot give everyone
  // min_bits, the lowest-benefit terms are dropped (length 0).
  std::vector<size_t> order(m);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return benefit[a] > benefit[b];
  });

  size_t posted = std::min(m, static_cast<size_t>(budget_bits / options.min_bits));
  std::vector<uint64_t> lengths(m, 0);
  if (posted == 0) return lengths;  // budget too small for anything

  // Iterative proportional fill with caps: terms that hit max_bits are
  // frozen and the remaining budget re-distributed over the others.
  std::vector<size_t> active(order.begin(), order.begin() + posted);
  for (size_t j : active) lengths[j] = options.min_bits;
  uint64_t budget_left = budget_bits - posted * options.min_bits;

  for (int round = 0; round < 64 && budget_left >= options.granularity_bits;
       ++round) {
    double active_benefit = 0.0;
    for (size_t j : active) {
      if (lengths[j] < options.max_bits) active_benefit += benefit[j];
    }
    if (active_benefit <= 0.0) {
      // All-zero benefits: spread the remainder evenly across active terms.
      uint64_t share =
          RoundDown(budget_left / active.size(), options.granularity_bits);
      if (share == 0) break;
      for (size_t j : active) {
        uint64_t add = std::min(share, options.max_bits - lengths[j]);
        add = RoundDown(add, options.granularity_bits);
        lengths[j] += add;
        budget_left -= add;
      }
      break;
    }
    bool progressed = false;
    uint64_t budget_this_round = budget_left;
    for (size_t j : active) {
      if (lengths[j] >= options.max_bits) continue;
      double share = benefit[j] / active_benefit *
                     static_cast<double>(budget_this_round);
      uint64_t add = RoundDown(static_cast<uint64_t>(share),
                               options.granularity_bits);
      add = std::min(add, options.max_bits - lengths[j]);
      add = std::min(add, budget_left);
      add = RoundDown(add, options.granularity_bits);
      if (add > 0) {
        lengths[j] += add;
        budget_left -= add;
        progressed = true;
      }
    }
    if (!progressed) break;
  }

  // Final sweep: hand out leftover granules to the highest-benefit
  // uncapped terms so rounding does not strand budget.
  for (size_t j : active) {
    while (budget_left >= options.granularity_bits &&
           lengths[j] + options.granularity_bits <= options.max_bits) {
      lengths[j] += options.granularity_bits;
      budget_left -= options.granularity_bits;
    }
  }
  return lengths;
}

}  // namespace iqn

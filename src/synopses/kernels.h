// Word-level kernels behind the synopsis hot loops.
//
// Aggregate-Synopses dominates IQN's routing cost: every Select-Best-Peer
// iteration re-estimates novelty against the reference synopsis, and each
// estimate walks whole bit vectors (Bloom filters, hash sketches) or
// minima vectors (MIPs). These kernels express those walks over uint64_t
// words with std::popcount and 4-way unrolled accumulators, which is what
// lets the compiler keep the counts in registers and vectorize.
//
// Every kernel has a deliberately naive bit-at-a-time / element-at-a-time
// reference implementation in the nested `scalar` namespace. The scalar
// versions are the semantic oracles: the randomized kernel-equivalence
// tests assert word kernel == scalar kernel on arbitrary inputs,
// including bit counts that are not multiples of 64. Do not "optimize"
// the scalar versions — their value is being obviously correct.
//
// All kernels are pure functions of their operands (no global state), so
// they are safe to call concurrently on disjoint or read-shared data.

#ifndef IQN_SYNOPSES_KERNELS_H_
#define IQN_SYNOPSES_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace iqn {
namespace kernels {

/// Mask selecting the valid bits of the LAST word of an n-bit vector:
/// all-ones when num_bits is word-aligned, else the low num_bits % 64 bits.
uint64_t TailMask(size_t num_bits);

/// dst[i] |= src[i] — Bloom/hash-sketch union.
void OrWords(uint64_t* dst, const uint64_t* src, size_t num_words);

/// dst[i] &= src[i] — Bloom intersection.
void AndWords(uint64_t* dst, const uint64_t* src, size_t num_words);

/// dst[i] &= ~src[i] — Bloom set difference (Sec. 5.2 novelty).
void AndNotWords(uint64_t* dst, const uint64_t* src, size_t num_words);

/// Total set bits across the words.
size_t PopCountWords(const uint64_t* words, size_t num_words);

/// Set bits among the first num_bits bits only (tail bits ignored, so the
/// count is right even if stray bits sit beyond a non-aligned num_bits).
size_t PopCountPrefix(const uint64_t* words, size_t num_bits);

/// Fused popcounts of a & b and a | b in one pass — the Bloom resemblance
/// kernel (one walk instead of two plus a temporary).
struct AndOrCounts {
  size_t and_bits = 0;
  size_t or_bits = 0;
};
AndOrCounts PopCountAndOr(const uint64_t* a, const uint64_t* b,
                          size_t num_words);

/// dst[i] = min(dst[i], src[i]) — MIPs union (position-wise minima).
void MinWords(uint64_t* dst, const uint64_t* src, size_t num_words);

/// dst[i] = max(dst[i], src[i]) — MIPs conservative intersection.
void MaxWords(uint64_t* dst, const uint64_t* src, size_t num_words);

/// Positions where a[i] == b[i] != sentinel — the MIPs resemblance
/// match count (sentinel marks still-empty permutation slots).
size_t CountEqualNotSentinel(const uint64_t* a, const uint64_t* b,
                             size_t num_words, uint64_t sentinel);

namespace scalar {

// Reference oracles. Same contracts as above, written one bit / one
// element at a time.

void OrWords(uint64_t* dst, const uint64_t* src, size_t num_words);
void AndWords(uint64_t* dst, const uint64_t* src, size_t num_words);
void AndNotWords(uint64_t* dst, const uint64_t* src, size_t num_words);
size_t PopCountWords(const uint64_t* words, size_t num_words);
size_t PopCountPrefix(const uint64_t* words, size_t num_bits);
AndOrCounts PopCountAndOr(const uint64_t* a, const uint64_t* b,
                          size_t num_words);
void MinWords(uint64_t* dst, const uint64_t* src, size_t num_words);
void MaxWords(uint64_t* dst, const uint64_t* src, size_t num_words);
size_t CountEqualNotSentinel(const uint64_t* a, const uint64_t* b,
                             size_t num_words, uint64_t sentinel);

}  // namespace scalar
}  // namespace kernels
}  // namespace iqn

#endif  // IQN_SYNOPSES_KERNELS_H_

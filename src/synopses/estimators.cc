#include "synopses/estimators.h"

#include <algorithm>
#include <unordered_set>

#include "synopses/bloom_filter.h"

namespace iqn {

const char* SynopsisTypeName(SynopsisType type) {
  switch (type) {
    case SynopsisType::kBloomFilter:
      return "BF";
    case SynopsisType::kHashSketch:
      return "HS";
    case SynopsisType::kMinWise:
      return "MIPs";
    case SynopsisType::kLogLog:
      return "LL";
  }
  return "?";
}

size_t ExactOverlap(const std::vector<DocId>& a, const std::vector<DocId>& b) {
  const std::vector<DocId>& small = a.size() <= b.size() ? a : b;
  const std::vector<DocId>& large = a.size() <= b.size() ? b : a;
  std::unordered_set<DocId> set(small.begin(), small.end());
  std::unordered_set<DocId> seen;
  size_t overlap = 0;
  for (DocId id : large) {
    if (set.count(id) && seen.insert(id).second) ++overlap;
  }
  return overlap;
}

namespace {

size_t DistinctCount(const std::vector<DocId>& v) {
  return std::unordered_set<DocId>(v.begin(), v.end()).size();
}

double Clamp(double x, double lo, double hi) {
  return x < lo ? lo : (x > hi ? hi : x);
}

}  // namespace

double ExactResemblance(const std::vector<DocId>& a,
                        const std::vector<DocId>& b) {
  size_t inter = ExactOverlap(a, b);
  size_t uni = DistinctCount(a) + DistinctCount(b) - inter;
  if (uni == 0) return 0.0;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

double ExactContainment(const std::vector<DocId>& a,
                        const std::vector<DocId>& b) {
  size_t nb = DistinctCount(b);
  if (nb == 0) return 0.0;
  return static_cast<double>(ExactOverlap(a, b)) / static_cast<double>(nb);
}

size_t ExactNovelty(const std::vector<DocId>& b, const std::vector<DocId>& a) {
  return DistinctCount(b) - ExactOverlap(a, b);
}

double OverlapFromResemblance(double resemblance, double card_a,
                              double card_b) {
  // R = I / (|A| + |B| - I)  =>  I = R * (|A| + |B|) / (R + 1).
  if (resemblance <= 0.0) return 0.0;
  double inter = resemblance * (card_a + card_b) / (resemblance + 1.0);
  return Clamp(inter, 0.0, std::min(card_a, card_b));
}

double ContainmentFromResemblance(double resemblance, double card_a,
                                  double card_b) {
  if (card_b <= 0.0) return 0.0;
  return Clamp(OverlapFromResemblance(resemblance, card_a, card_b) / card_b,
               0.0, 1.0);
}

double ResemblanceFromContainment(double containment, double card_a,
                                  double card_b) {
  // I = C * |B|; R = I / (|A| + |B| - I).
  double inter = containment * card_b;
  double denom = card_a + card_b - inter;
  if (denom <= 0.0) return inter > 0.0 ? 1.0 : 0.0;
  return Clamp(inter / denom, 0.0, 1.0);
}

Result<double> EstimateOverlap(const SetSynopsis& a, double card_a,
                               const SetSynopsis& b, double card_b) {
  if (a.type() != b.type()) {
    return Status::InvalidArgument("overlap estimation across synopsis types");
  }
  switch (a.type()) {
    case SynopsisType::kMinWise: {
      IQN_ASSIGN_OR_RETURN(double r, a.EstimateResemblance(b));
      return OverlapFromResemblance(r, card_a, card_b);
    }
    case SynopsisType::kHashSketch:
    case SynopsisType::kLogLog: {
      // |A∩B| = |A| + |B| - |A∪B| with the union estimated from the
      // merged sketch.
      std::unique_ptr<SetSynopsis> merged = a.Clone();
      IQN_RETURN_IF_ERROR(merged->MergeUnion(b));
      double u = merged->EstimateCardinality();
      return Clamp(card_a + card_b - u, 0.0, std::min(card_a, card_b));
    }
    case SynopsisType::kBloomFilter: {
      // Intersection filter = AND of the bit vectors.
      std::unique_ptr<SetSynopsis> inter = a.Clone();
      IQN_RETURN_IF_ERROR(inter->MergeIntersect(b));
      return Clamp(inter->EstimateCardinality(), 0.0,
                   std::min(card_a, card_b));
    }
  }
  return Status::Internal("unknown synopsis type");
}

Result<double> EstimateNovelty(const SetSynopsis& ref, double card_ref,
                               const SetSynopsis& cand, double card_cand) {
  if (ref.type() != cand.type()) {
    return Status::InvalidArgument("novelty estimation across synopsis types");
  }
  switch (ref.type()) {
    case SynopsisType::kMinWise: {
      // Novelty(B|A) = |B| - overlap, overlap from the resemblance
      // estimator (Sec. 5.2 "Exploiting MIPs").
      IQN_ASSIGN_OR_RETURN(double r, ref.EstimateResemblance(cand));
      double inter = OverlapFromResemblance(r, card_ref, card_cand);
      return Clamp(card_cand - inter, 0.0, card_cand);
    }
    case SynopsisType::kHashSketch:
    case SynopsisType::kLogLog: {
      // Novelty = |A∪B| - |A| (Sec. 5.2 "Exploiting Hash Sketches").
      std::unique_ptr<SetSynopsis> merged = ref.Clone();
      IQN_RETURN_IF_ERROR(merged->MergeUnion(cand));
      double u = merged->EstimateCardinality();
      return Clamp(u - card_ref, 0.0, card_cand);
    }
    case SynopsisType::kBloomFilter: {
      // bf = bf_cand AND NOT bf_ref; novelty = cardinality of bf
      // (Sec. 5.2 "Exploiting Bloom Filters"). The bitwise difference can
      // introduce extra false negatives/positives; the clamp keeps the
      // value in range but the noise is inherent (and intended for Fig 3).
      std::unique_ptr<SetSynopsis> diff_base = cand.Clone();
      auto* diff = static_cast<BloomFilter*>(diff_base.get());
      IQN_RETURN_IF_ERROR(diff->MergeDifference(ref));
      return Clamp(diff->EstimateCardinality(), 0.0, card_cand);
    }
  }
  return Status::Internal("unknown synopsis type");
}

}  // namespace iqn

// Score-conscious novelty estimation via histograms (paper Sec. 7.1).
//
// In ranked retrieval, overlap among the *high-scoring* portions of index
// lists matters more than overlap in the tail. A ScoreHistogramSynopsis
// partitions a peer's index list into `num_cells` equal-width score cells
// over [0, 1] and keeps one set synopsis (plus the exact element count)
// per cell. Novelty between two histogram synopses is a weighted sum of
// pairwise per-cell novelty estimates, with weights growing with the score
// range of the candidate cell, so redundancy among top-scoring documents
// is penalized harder than redundancy in the tail.

#ifndef IQN_SYNOPSES_HISTOGRAM_SYNOPSIS_H_
#define IQN_SYNOPSES_HISTOGRAM_SYNOPSIS_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "synopses/synopsis.h"
#include "util/status.h"

namespace iqn {

class ScoreHistogramSynopsis {
 public:
  /// Creates one empty per-cell synopsis; must return equal-geometry
  /// synopses on every call so cells from different peers combine.
  using SynopsisFactory = std::function<std::unique_ptr<SetSynopsis>()>;

  /// num_cells in [1, 64].
  static Result<ScoreHistogramSynopsis> Create(size_t num_cells,
                                               const SynopsisFactory& factory);

  ScoreHistogramSynopsis(ScoreHistogramSynopsis&&) = default;
  ScoreHistogramSynopsis& operator=(ScoreHistogramSynopsis&&) = default;

  ScoreHistogramSynopsis CloneHist() const;

  /// Inserts a document with its (peer-local, normalized) relevance score.
  /// Scores outside [0, 1] are clamped into range.
  void Add(DocId id, double score);

  size_t num_cells() const { return cells_.size(); }
  const SetSynopsis& cell(size_t i) const { return *cells_[i].synopsis; }
  /// Exact number of documents inserted into cell i (peers know and post
  /// their own per-cell counts, like they post index list lengths).
  size_t cell_count(size_t i) const { return cells_[i].count; }
  /// Score interval [lo, hi) covered by cell i.
  double CellLowerBound(size_t i) const;
  double CellUpperBound(size_t i) const;

  size_t TotalCount() const;
  size_t SizeBits() const;

  /// Weighted novelty of `candidate` with respect to this reference:
  ///   sum_j w_j * max(0, count_j - sum_i overlap(ref_i, cand_j))
  /// where w_j = (midpoint of cell j)^weight_exponent. Exponent 0 gives
  /// flat (score-oblivious) novelty — the ablation baseline; 1 is linear
  /// score weighting (default); larger exponents emphasize the top cells.
  Result<double> WeightedNoveltyOf(const ScoreHistogramSynopsis& candidate,
                                   double weight_exponent = 1.0) const;

  /// Aggregate-Synopses step for histograms: cell-wise union with
  /// cell-wise novelty-credited count tracking.
  Status Absorb(const ScoreHistogramSynopsis& candidate);

  /// Mutable access for deserialization.
  struct Cell {
    std::unique_ptr<SetSynopsis> synopsis;
    size_t count = 0;
  };
  static Result<ScoreHistogramSynopsis> FromCells(std::vector<Cell> cells);

 private:
  explicit ScoreHistogramSynopsis(std::vector<Cell> cells)
      : cells_(std::move(cells)) {}

  /// Cell index for a score (clamped).
  size_t CellFor(double score) const;

  std::vector<Cell> cells_;
};

}  // namespace iqn

#endif  // IQN_SYNOPSES_HISTOGRAM_SYNOPSIS_H_

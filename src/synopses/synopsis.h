// Common interface of the compact set synopses studied in the paper
// (Section 3): Bloom filters, hash sketches, and min-wise permutations,
// plus the super-LogLog variant cited from Durand-Flajolet.
//
// A synopsis represents the set of docIds a peer holds for one term.
// Peers post serialized synopses to the distributed directory; the query
// initiator fetches them and runs novelty estimation (Section 5.2) and
// union/intersection aggregation (Sections 5.3, 6) purely on the synopses,
// never on the underlying sets.

#ifndef IQN_SYNOPSES_SYNOPSIS_H_
#define IQN_SYNOPSES_SYNOPSIS_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "util/status.h"

namespace iqn {

/// Global document identifier (e.g., a hash of the URL or file name).
using DocId = uint64_t;

enum class SynopsisType : uint8_t {
  kBloomFilter = 1,
  kHashSketch = 2,
  kMinWise = 3,
  kLogLog = 4,
};

/// Name for logs and bench output ("BF", "HS", "MIPs", "LL").
const char* SynopsisTypeName(SynopsisType type);

/// Abstract compact representation of a docId set.
///
/// Implementations are value-like (copyable via Clone) and cheap to merge.
/// Operations that a particular synopsis type cannot support (e.g.,
/// intersection of hash sketches, paper Sec. 3.4) return Unimplemented
/// rather than silently degrading.
class SetSynopsis {
 public:
  virtual ~SetSynopsis() = default;

  virtual SynopsisType type() const = 0;

  /// Space the serialized synopsis occupies, in bits. This is the budget
  /// axis of Figure 2 (all techniques compared at equal bit budgets).
  virtual size_t SizeBits() const = 0;

  /// Inserts one element.
  virtual void Add(DocId id) = 0;

  /// Estimated number of distinct elements inserted.
  virtual double EstimateCardinality() const = 0;

  virtual std::unique_ptr<SetSynopsis> Clone() const = 0;

  /// In-place union with `other` (both synopses afterwards represent
  /// A ∪ B). Fails with InvalidArgument when the synopses are structurally
  /// incompatible (different type, incompatible parameters).
  virtual Status MergeUnion(const SetSynopsis& other) = 0;

  /// In-place (possibly heuristic) intersection. Bloom filters AND their
  /// bit vectors; MIPs take the position-wise max (a conservative
  /// approximation, Sec. 6.1); hash sketches return Unimplemented.
  virtual Status MergeIntersect(const SetSynopsis& other) = 0;

  /// Estimated resemblance |A∩B| / |A∪B| between this synopsis and
  /// `other`. InvalidArgument on incompatible synopses.
  virtual Result<double> EstimateResemblance(const SetSynopsis& other) const = 0;

  /// Debug string: type, parameters, fill state.
  virtual std::string ToString() const = 0;
};

}  // namespace iqn

#endif  // IQN_SYNOPSES_SYNOPSIS_H_

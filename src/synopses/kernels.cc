#include "synopses/kernels.h"

#include <algorithm>
#include <bit>

namespace iqn {
namespace kernels {

uint64_t TailMask(size_t num_bits) {
  size_t tail = num_bits % 64;
  return tail == 0 ? ~uint64_t{0} : (uint64_t{1} << tail) - 1;
}

void OrWords(uint64_t* dst, const uint64_t* src, size_t num_words) {
  for (size_t i = 0; i < num_words; ++i) dst[i] |= src[i];
}

void AndWords(uint64_t* dst, const uint64_t* src, size_t num_words) {
  for (size_t i = 0; i < num_words; ++i) dst[i] &= src[i];
}

void AndNotWords(uint64_t* dst, const uint64_t* src, size_t num_words) {
  for (size_t i = 0; i < num_words; ++i) dst[i] &= ~src[i];
}

size_t PopCountWords(const uint64_t* words, size_t num_words) {
  // Four independent accumulators break the loop-carried dependency so
  // the popcounts pipeline; the compiler reduces them at the end.
  size_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
  size_t i = 0;
  for (; i + 4 <= num_words; i += 4) {
    c0 += static_cast<size_t>(std::popcount(words[i]));
    c1 += static_cast<size_t>(std::popcount(words[i + 1]));
    c2 += static_cast<size_t>(std::popcount(words[i + 2]));
    c3 += static_cast<size_t>(std::popcount(words[i + 3]));
  }
  for (; i < num_words; ++i) {
    c0 += static_cast<size_t>(std::popcount(words[i]));
  }
  return c0 + c1 + c2 + c3;
}

size_t PopCountPrefix(const uint64_t* words, size_t num_bits) {
  size_t full_words = num_bits / 64;
  size_t count = PopCountWords(words, full_words);
  if (num_bits % 64 != 0) {
    count += static_cast<size_t>(
        std::popcount(words[full_words] & TailMask(num_bits)));
  }
  return count;
}

AndOrCounts PopCountAndOr(const uint64_t* a, const uint64_t* b,
                          size_t num_words) {
  size_t and0 = 0, and1 = 0, or0 = 0, or1 = 0;
  size_t i = 0;
  for (; i + 2 <= num_words; i += 2) {
    and0 += static_cast<size_t>(std::popcount(a[i] & b[i]));
    or0 += static_cast<size_t>(std::popcount(a[i] | b[i]));
    and1 += static_cast<size_t>(std::popcount(a[i + 1] & b[i + 1]));
    or1 += static_cast<size_t>(std::popcount(a[i + 1] | b[i + 1]));
  }
  for (; i < num_words; ++i) {
    and0 += static_cast<size_t>(std::popcount(a[i] & b[i]));
    or0 += static_cast<size_t>(std::popcount(a[i] | b[i]));
  }
  return AndOrCounts{and0 + and1, or0 + or1};
}

void MinWords(uint64_t* dst, const uint64_t* src, size_t num_words) {
  for (size_t i = 0; i < num_words; ++i) {
    dst[i] = std::min(dst[i], src[i]);
  }
}

void MaxWords(uint64_t* dst, const uint64_t* src, size_t num_words) {
  for (size_t i = 0; i < num_words; ++i) {
    dst[i] = std::max(dst[i], src[i]);
  }
}

size_t CountEqualNotSentinel(const uint64_t* a, const uint64_t* b,
                             size_t num_words, uint64_t sentinel) {
  size_t c0 = 0, c1 = 0;
  size_t i = 0;
  for (; i + 2 <= num_words; i += 2) {
    c0 += static_cast<size_t>(a[i] == b[i] && a[i] != sentinel);
    c1 += static_cast<size_t>(a[i + 1] == b[i + 1] && a[i + 1] != sentinel);
  }
  for (; i < num_words; ++i) {
    c0 += static_cast<size_t>(a[i] == b[i] && a[i] != sentinel);
  }
  return c0 + c1;
}

namespace scalar {

namespace {

inline bool GetBit(const uint64_t* words, size_t bit) {
  return ((words[bit / 64] >> (bit % 64)) & 1) != 0;
}

inline void AssignBit(uint64_t* words, size_t bit, bool value) {
  uint64_t mask = uint64_t{1} << (bit % 64);
  if (value) {
    words[bit / 64] |= mask;
  } else {
    words[bit / 64] &= ~mask;
  }
}

}  // namespace

void OrWords(uint64_t* dst, const uint64_t* src, size_t num_words) {
  for (size_t bit = 0; bit < num_words * 64; ++bit) {
    AssignBit(dst, bit, GetBit(dst, bit) || GetBit(src, bit));
  }
}

void AndWords(uint64_t* dst, const uint64_t* src, size_t num_words) {
  for (size_t bit = 0; bit < num_words * 64; ++bit) {
    AssignBit(dst, bit, GetBit(dst, bit) && GetBit(src, bit));
  }
}

void AndNotWords(uint64_t* dst, const uint64_t* src, size_t num_words) {
  for (size_t bit = 0; bit < num_words * 64; ++bit) {
    AssignBit(dst, bit, GetBit(dst, bit) && !GetBit(src, bit));
  }
}

size_t PopCountWords(const uint64_t* words, size_t num_words) {
  size_t count = 0;
  for (size_t bit = 0; bit < num_words * 64; ++bit) {
    if (GetBit(words, bit)) ++count;
  }
  return count;
}

size_t PopCountPrefix(const uint64_t* words, size_t num_bits) {
  size_t count = 0;
  for (size_t bit = 0; bit < num_bits; ++bit) {
    if (GetBit(words, bit)) ++count;
  }
  return count;
}

AndOrCounts PopCountAndOr(const uint64_t* a, const uint64_t* b,
                          size_t num_words) {
  AndOrCounts counts;
  for (size_t bit = 0; bit < num_words * 64; ++bit) {
    bool in_a = GetBit(a, bit);
    bool in_b = GetBit(b, bit);
    if (in_a && in_b) ++counts.and_bits;
    if (in_a || in_b) ++counts.or_bits;
  }
  return counts;
}

void MinWords(uint64_t* dst, const uint64_t* src, size_t num_words) {
  for (size_t i = 0; i < num_words; ++i) {
    if (src[i] < dst[i]) dst[i] = src[i];
  }
}

void MaxWords(uint64_t* dst, const uint64_t* src, size_t num_words) {
  for (size_t i = 0; i < num_words; ++i) {
    if (src[i] > dst[i]) dst[i] = src[i];
  }
}

size_t CountEqualNotSentinel(const uint64_t* a, const uint64_t* b,
                             size_t num_words, uint64_t sentinel) {
  size_t count = 0;
  for (size_t i = 0; i < num_words; ++i) {
    if (a[i] == b[i] && a[i] != sentinel) ++count;
  }
  return count;
}

}  // namespace scalar
}  // namespace kernels
}  // namespace iqn

// Wire format of synopses — what peers actually post to the DHT directory
// and what the query initiator fetches back.
//
// Every serialized synopsis is self-describing: a type tag followed by the
// parameters (including the hash-family seed / filter seed, which acts as
// the compatibility fingerprint) and the payload. Deserialization
// validates everything and returns Corruption on malformed input.
//
// Note on MIPs sizes: minima are 61-bit values and are stored as 8 wire
// bytes each; the bit-budget *accounting* (SizeBits) follows the paper's
// convention of 32 bits per permutation (64 permutations == 2048 bits in
// Figs. 2/3). EXPERIMENTS.md discusses this bookkeeping difference.

#ifndef IQN_SYNOPSES_SERIALIZATION_H_
#define IQN_SYNOPSES_SERIALIZATION_H_

#include <memory>

#include "synopses/bloom_filter.h"
#include "synopses/histogram_synopsis.h"
#include "synopses/synopsis.h"
#include "util/bytes.h"
#include "util/status.h"

namespace iqn {

/// Appends the synopsis to `writer`.
void SerializeSynopsis(const SetSynopsis& synopsis, ByteWriter* writer);

/// Convenience: one synopsis as a standalone byte string.
Bytes SerializeSynopsisToBytes(const SetSynopsis& synopsis);

/// Compressed Bloom-filter wire image (the paper's ref. [26],
/// Mitzenmacher: ship the filter compressed, store it uncompressed):
/// set-bit positions are gap-encoded with a Golomb-Rice code whose
/// parameter is fitted to the fill ratio. Falls back to the raw image
/// when the filter is too dense for compression to help. Both forms
/// decode through DeserializeSynopsis.
Bytes SerializeBloomFilterCompressed(const BloomFilter& filter);

/// Reads one synopsis from `reader`.
Result<std::unique_ptr<SetSynopsis>> DeserializeSynopsis(ByteReader* reader);

/// Convenience for a standalone byte string; fails if trailing bytes
/// remain.
Result<std::unique_ptr<SetSynopsis>> DeserializeSynopsisFromBytes(
    const Bytes& bytes);

/// Histogram synopses: cell count, then per cell the exact element count
/// and the nested cell synopsis.
void SerializeHistogram(const ScoreHistogramSynopsis& histogram,
                        ByteWriter* writer);
Result<ScoreHistogramSynopsis> DeserializeHistogram(ByteReader* reader);

}  // namespace iqn

#endif  // IQN_SYNOPSES_SERIALIZATION_H_

#include "workload/fragments.h"

namespace iqn {

Result<std::vector<Corpus>> SplitIntoFragments(const Corpus& corpus,
                                               size_t f) {
  if (f == 0 || f > corpus.size()) {
    return Status::InvalidArgument(
        "fragment count must be in [1, corpus size]");
  }
  std::vector<Corpus> fragments(f);
  const size_t n = corpus.size();
  // Contiguous blocks; the first n % f fragments get one extra document.
  size_t base = n / f;
  size_t extra = n % f;
  size_t pos = 0;
  for (size_t i = 0; i < f; ++i) {
    size_t count = base + (i < extra ? 1 : 0);
    for (size_t j = 0; j < count; ++j) {
      const DocTerms& d = corpus.doc(pos++);
      (void)fragments[i].AddDocumentTerms(d.id, d.terms);
    }
  }
  return fragments;
}

std::vector<std::vector<size_t>> Combinations(size_t f, size_t s) {
  std::vector<std::vector<size_t>> result;
  if (s > f) return result;
  std::vector<size_t> current(s);
  for (size_t i = 0; i < s; ++i) current[i] = i;
  while (true) {
    result.push_back(current);
    // Advance: find the rightmost index that can still move right.
    size_t i = s;
    while (i > 0) {
      --i;
      if (current[i] != i + f - s) break;
      if (i == 0) return result;
    }
    if (current[i] == i + f - s) return result;
    ++current[i];
    for (size_t j = i + 1; j < s; ++j) current[j] = current[j - 1] + 1;
  }
}

Result<std::vector<Corpus>> ChooseCombinationCollections(
    const std::vector<Corpus>& fragments, size_t s) {
  if (s == 0 || s > fragments.size()) {
    return Status::InvalidArgument("subset size must be in [1, #fragments]");
  }
  std::vector<Corpus> collections;
  for (const auto& subset : Combinations(fragments.size(), s)) {
    Corpus c;
    for (size_t idx : subset) c.Merge(fragments[idx]);
    collections.push_back(std::move(c));
  }
  return collections;
}

Result<std::vector<Corpus>> SlidingWindowCollections(
    const std::vector<Corpus>& fragments, size_t window, size_t offset,
    size_t num_peers) {
  if (window == 0 || window > fragments.size()) {
    return Status::InvalidArgument("window must be in [1, #fragments]");
  }
  if (offset == 0) {
    return Status::InvalidArgument("offset must be positive");
  }
  if (num_peers == 0) {
    return Status::InvalidArgument("need at least one peer");
  }
  std::vector<Corpus> collections;
  collections.reserve(num_peers);
  for (size_t p = 0; p < num_peers; ++p) {
    Corpus c;
    for (size_t w = 0; w < window; ++w) {
      c.Merge(fragments[(p * offset + w) % fragments.size()]);
    }
    collections.push_back(std::move(c));
  }
  return collections;
}

size_t CollectionOverlap(const Corpus& a, const Corpus& b) {
  size_t overlap = 0;
  for (const auto& d : a.docs()) {
    if (b.ContainsDoc(d.id)) ++overlap;
  }
  return overlap;
}

}  // namespace iqn

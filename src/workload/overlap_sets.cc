#include "workload/overlap_sets.h"

#include <cmath>
#include <unordered_set>

namespace iqn {

namespace {

/// Draws `count` ids not yet in `used`, inserting them into both.
void DrawDistinct(size_t count, Rng* rng, std::unordered_set<DocId>* used,
                  std::vector<DocId>* out) {
  while (count > 0) {
    DocId id = rng->Next();
    if (used->insert(id).second) {
      out->push_back(id);
      --count;
    }
  }
}

}  // namespace

Result<OverlapPair> MakeSetsWithOverlap(size_t size_a, size_t size_b,
                                        size_t shared, Rng* rng) {
  if (rng == nullptr) return Status::InvalidArgument("null rng");
  if (shared > size_a || shared > size_b) {
    return Status::InvalidArgument("shared exceeds a set size");
  }
  OverlapPair pair;
  pair.shared = shared;
  std::unordered_set<DocId> used;
  std::vector<DocId> common;
  DrawDistinct(shared, rng, &used, &common);
  pair.a = common;
  pair.b = common;
  DrawDistinct(size_a - shared, rng, &used, &pair.a);
  DrawDistinct(size_b - shared, rng, &used, &pair.b);
  return pair;
}

size_t SharedCountForResemblance(size_t size, double resemblance) {
  if (resemblance <= 0.0) return 0;
  if (resemblance >= 1.0) return size;
  // r = m / (2n - m)  =>  m = 2 n r / (1 + r).
  double m = 2.0 * static_cast<double>(size) * resemblance / (1.0 + resemblance);
  size_t shared = static_cast<size_t>(std::llround(m));
  return shared > size ? size : shared;
}

Result<OverlapPair> MakeSetsWithResemblance(size_t size, double resemblance,
                                            Rng* rng) {
  if (resemblance < 0.0 || resemblance > 1.0) {
    return Status::InvalidArgument("resemblance must be in [0, 1]");
  }
  return MakeSetsWithOverlap(size, size,
                             SharedCountForResemblance(size, resemblance), rng);
}

}  // namespace iqn

// Query workload generator.
//
// Substitution for the TREC 2003 topic-distillation queries (DESIGN.md):
// short multi-keyword queries ("forest fire", "pest safety control")
// whose terms come from the mid-frequency band of the vocabulary — rare
// enough to be discriminative, frequent enough to be held by many peers.

#ifndef IQN_WORKLOAD_QUERIES_H_
#define IQN_WORKLOAD_QUERIES_H_

#include <cstddef>
#include <string>
#include <vector>

#include "ir/query.h"
#include "util/random.h"
#include "util/status.h"

namespace iqn {

struct QueryWorkloadOptions {
  size_t num_queries = 10;
  size_t min_terms = 2;
  size_t max_terms = 3;
  /// Vocabulary rank band the query terms are drawn from, as fractions of
  /// the vocabulary size (e.g. [0.002, 0.10] skips the few ubiquitous
  /// quasi-stopword ranks and the long tail).
  double band_low = 0.002;
  double band_high = 0.10;
  QueryMode mode = QueryMode::kDisjunctive;
  /// Top-k requested by each query.
  size_t k = 50;
  uint64_t seed = 7;
};

/// Draws `num_queries` distinct-term queries from `vocabulary` (ordered
/// by popularity rank, as produced by SyntheticCorpusGenerator).
Result<std::vector<Query>> GenerateQueries(
    const std::vector<std::string>& vocabulary,
    const QueryWorkloadOptions& options = {});

}  // namespace iqn

#endif  // IQN_WORKLOAD_QUERIES_H_

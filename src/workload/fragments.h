// Corpus partitioning strategies from the paper's experimental setup
// (Sec. 8.1): the corpus is split into disjoint fragments, and peer
// collections are formed as overlapping fragment combinations —
// "systematically controlling the overlap of peers".

#ifndef IQN_WORKLOAD_FRAGMENTS_H_
#define IQN_WORKLOAD_FRAGMENTS_H_

#include <cstddef>
#include <vector>

#include "ir/corpus.h"
#include "util/status.h"

namespace iqn {

/// Splits the corpus into `f` disjoint contiguous fragments of (near-)
/// equal document count. f must be in [1, corpus.size()].
Result<std::vector<Corpus>> SplitIntoFragments(const Corpus& corpus, size_t f);

/// All (f choose s) subsets of {0..f-1} of size s, in lexicographic order.
std::vector<std::vector<size_t>> Combinations(size_t f, size_t s);

/// Strategy 1 — (f choose s): one peer collection per s-subset of the
/// fragments (f=6, s=3 gives the paper's 20 peers).
Result<std::vector<Corpus>> ChooseCombinationCollections(
    const std::vector<Corpus>& fragments, size_t s);

/// Strategy 2 — sliding window: peer p receives fragments
/// f_{p*offset} .. f_{p*offset + window - 1} (indices modulo the fragment
/// count), giving adjacent peers exactly (window - offset) shared
/// fragments. The paper's setup: 100 fragments, window 10, offset 2,
/// 50 peers.
Result<std::vector<Corpus>> SlidingWindowCollections(
    const std::vector<Corpus>& fragments, size_t window, size_t offset,
    size_t num_peers);

/// Exact document overlap |collection_a ∩ collection_b| (ground truth for
/// tests).
size_t CollectionOverlap(const Corpus& a, const Corpus& b);

}  // namespace iqn

#endif  // IQN_WORKLOAD_FRAGMENTS_H_

#include "workload/synthetic_corpus.h"

#include "util/hash.h"

namespace iqn {

std::string SyntheticWord(size_t rank, uint64_t seed) {
  static const char* kConsonants = "bcdfghklmnprstvz";  // 16
  static const char* kVowels = "aeiou";                 // 5
  // 2-4 consonant-vowel syllables derived from a per-rank hash, plus a
  // base-26 suffix of the rank itself to guarantee uniqueness.
  uint64_t h = Hash64(rank, seed ^ 0x776f7264U);  // "word"
  std::string word;
  size_t syllables = 2 + (h & 1);
  for (size_t s = 0; s < syllables; ++s) {
    word.push_back(kConsonants[(h >> (4 + 8 * s)) & 15]);
    word.push_back(kVowels[(h >> (8 + 8 * s)) % 5]);
  }
  size_t r = rank;
  do {
    word.push_back(static_cast<char>('a' + r % 26));
    r /= 26;
  } while (r > 0);
  return word;
}

SyntheticCorpusGenerator::SyntheticCorpusGenerator(
    SyntheticCorpusOptions options)
    : options_(options),
      term_sampler_(options.vocabulary_size, options.zipf_theta) {
  uint64_t vocab_seed =
      options_.vocabulary_seed != 0 ? options_.vocabulary_seed : options_.seed;
  vocabulary_.reserve(options_.vocabulary_size);
  for (size_t rank = 0; rank < options_.vocabulary_size; ++rank) {
    vocabulary_.push_back(SyntheticWord(rank, vocab_seed));
  }
}

Result<SyntheticCorpusGenerator> SyntheticCorpusGenerator::Create(
    SyntheticCorpusOptions options) {
  if (options.num_documents == 0) {
    return Status::InvalidArgument("corpus needs at least one document");
  }
  if (options.vocabulary_size == 0) {
    return Status::InvalidArgument("vocabulary must be non-empty");
  }
  if (options.min_document_length == 0 ||
      options.min_document_length > options.max_document_length) {
    return Status::InvalidArgument(
        "need 0 < min_document_length <= max_document_length");
  }
  return SyntheticCorpusGenerator(options);
}

Corpus SyntheticCorpusGenerator::Generate() const {
  Corpus corpus;
  Rng rng(options_.seed);
  for (size_t d = 0; d < options_.num_documents; ++d) {
    size_t length = static_cast<size_t>(
        rng.UniformRange(static_cast<int64_t>(options_.min_document_length),
                         static_cast<int64_t>(options_.max_document_length)));
    std::vector<std::string> terms;
    terms.reserve(length);
    for (size_t i = 0; i < length; ++i) {
      terms.push_back(vocabulary_[term_sampler_.Sample(&rng)]);
    }
    // AddDocumentTerms only fails on duplicate ids, which consecutive
    // assignment rules out.
    (void)corpus.AddDocumentTerms(options_.first_doc_id + d, std::move(terms));
  }
  return corpus;
}

}  // namespace iqn

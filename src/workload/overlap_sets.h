// Synthetic docId-set pairs with controlled overlap, the workload of the
// paper's stand-alone synopsis evaluation (Sec. 3.3, Fig. 2).

#ifndef IQN_WORKLOAD_OVERLAP_SETS_H_
#define IQN_WORKLOAD_OVERLAP_SETS_H_

#include <cstddef>
#include <vector>

#include "synopses/synopsis.h"
#include "util/random.h"
#include "util/status.h"

namespace iqn {

struct OverlapPair {
  std::vector<DocId> a;
  std::vector<DocId> b;
  /// The exact overlap the pair was constructed with.
  size_t shared = 0;
};

/// Two random sets of sizes `size_a` / `size_b` sharing exactly `shared`
/// elements (shared <= min(size_a, size_b)); all elements are distinct
/// random 64-bit ids.
Result<OverlapPair> MakeSetsWithOverlap(size_t size_a, size_t size_b,
                                        size_t shared, Rng* rng);

/// Two equal-size sets whose *resemblance* |A∩B|/|A∪B| is as close as an
/// integer overlap allows to `resemblance` — the Fig. 2 right-hand sweep
/// (50 %, 33 %, 25 %, ... mutual overlap).
Result<OverlapPair> MakeSetsWithResemblance(size_t size, double resemblance,
                                            Rng* rng);

/// Exact shared-element count needed for two size-n sets to resemble r:
/// m = round(2 n r / (1 + r)).
size_t SharedCountForResemblance(size_t size, double resemblance);

}  // namespace iqn

#endif  // IQN_WORKLOAD_OVERLAP_SETS_H_

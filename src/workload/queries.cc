#include "workload/queries.h"

#include <algorithm>
#include <unordered_set>

namespace iqn {

Result<std::vector<Query>> GenerateQueries(
    const std::vector<std::string>& vocabulary,
    const QueryWorkloadOptions& options) {
  if (vocabulary.empty()) {
    return Status::InvalidArgument("empty vocabulary");
  }
  if (options.min_terms == 0 || options.min_terms > options.max_terms) {
    return Status::InvalidArgument("need 0 < min_terms <= max_terms");
  }
  if (!(options.band_low >= 0.0 && options.band_low < options.band_high &&
        options.band_high <= 1.0)) {
    return Status::InvalidArgument("need 0 <= band_low < band_high <= 1");
  }

  size_t lo = static_cast<size_t>(options.band_low *
                                  static_cast<double>(vocabulary.size()));
  size_t hi = static_cast<size_t>(options.band_high *
                                  static_cast<double>(vocabulary.size()));
  if (hi <= lo) hi = lo + 1;
  if (hi > vocabulary.size()) hi = vocabulary.size();
  size_t band = hi - lo;
  if (band < options.max_terms) {
    return Status::InvalidArgument("frequency band narrower than a query");
  }

  Rng rng(options.seed);
  std::vector<Query> queries;
  queries.reserve(options.num_queries);
  for (size_t q = 0; q < options.num_queries; ++q) {
    size_t num_terms = static_cast<size_t>(
        rng.UniformRange(static_cast<int64_t>(options.min_terms),
                         static_cast<int64_t>(options.max_terms)));
    Query query;
    query.mode = options.mode;
    query.k = options.k;
    std::unordered_set<size_t> used;
    while (query.terms.size() < num_terms) {
      size_t rank = lo + static_cast<size_t>(rng.Uniform(band));
      if (used.insert(rank).second) {
        query.terms.push_back(vocabulary[rank]);
      }
    }
    queries.push_back(std::move(query));
  }
  return queries;
}

}  // namespace iqn

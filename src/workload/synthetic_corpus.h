// Synthetic GOV-like corpus generator.
//
// Substitution for the TREC .GOV crawl (DESIGN.md): documents draw their
// terms from a Zipf-distributed vocabulary, mirroring the term-frequency
// skew of web text. What the paper's evaluation actually depends on is
// (a) that term popularity is heavily skewed, so some terms appear at
// every peer while others are rare, and (b) that the corpus can be
// partitioned into overlapping peer collections — both of which this
// generator provides with exact, reproducible control.

#ifndef IQN_WORKLOAD_SYNTHETIC_CORPUS_H_
#define IQN_WORKLOAD_SYNTHETIC_CORPUS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ir/corpus.h"
#include "util/random.h"
#include "util/status.h"
#include "util/zipf.h"

namespace iqn {

struct SyntheticCorpusOptions {
  size_t num_documents = 5000;
  size_t vocabulary_size = 8000;
  /// Zipf skew of term popularity (1.0 ~ natural text).
  double zipf_theta = 1.0;
  size_t min_document_length = 40;
  size_t max_document_length = 200;
  /// First docId assigned (ids are consecutive).
  DocId first_doc_id = 1;
  uint64_t seed = 42;
  /// Seed for the vocabulary words themselves (0 = use `seed`). Set this
  /// when generating ADDITIONAL documents over the same vocabulary with
  /// different sampling (e.g. incremental crawls): keep vocabulary_seed
  /// fixed and vary `seed`.
  uint64_t vocabulary_seed = 0;
};

class SyntheticCorpusGenerator {
 public:
  static Result<SyntheticCorpusGenerator> Create(SyntheticCorpusOptions options);

  /// Generates the full corpus (deterministic for fixed options).
  Corpus Generate() const;

  /// The vocabulary, ordered by popularity rank (word 0 is the most
  /// frequent). Words are pronounceable lowercase strings so they survive
  /// the normal analysis chain unchanged in spirit.
  const std::vector<std::string>& vocabulary() const { return vocabulary_; }

  const SyntheticCorpusOptions& options() const { return options_; }

 private:
  explicit SyntheticCorpusGenerator(SyntheticCorpusOptions options);

  SyntheticCorpusOptions options_;
  std::vector<std::string> vocabulary_;
  ZipfSampler term_sampler_;
};

/// Deterministic pronounceable word for a vocabulary rank ("gata", "miro",
/// ...); distinct ranks produce distinct words.
std::string SyntheticWord(size_t rank, uint64_t seed);

}  // namespace iqn

#endif  // IQN_WORKLOAD_SYNTHETIC_CORPUS_H_

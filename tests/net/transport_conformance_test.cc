// Conformance suite for the net::Transport contract, run against every
// backend (simulated and tcp). The contract under test:
//
//   * Rpc round-trips payloads through the destination handler, local
//     or remote alike;
//   * error mapping is identical across backends: unknown address ->
//     NotFound, down node -> Unavailable (caller-side view);
//   * modeled accounting (messages / bytes / latency) is bit-identical
//     across backends for identical traffic — the invariant the
//     multi-process gate builds on;
//   * concurrent in-flight RPCs each see their own response;
//   * a transport shuts down cleanly with calls still pending.
//
// The tcp worlds run real loopback sockets: two TcpTransport ranks in
// this process, ephemeral ports exchanged via SetPeerEndpoint, every
// address registered on both ranks in the same order (the address-space
// agreement engines rely on). Frame-codec hardening tests live at the
// bottom — they are backend code, but this is where the wire format's
// contract is pinned.

#include "net/transport.h"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "net/frame.h"
#include "net/network.h"
#include "net/tcp_transport.h"
#include "util/thread_pool.h"

namespace iqn {
namespace {

Bytes Payload(std::initializer_list<uint8_t> bytes) { return Bytes(bytes); }

// One backend under test: a set of transports forming a cluster (one
// element for simulated, one per rank for tcp) whose address spaces
// agree because every handler registers on every transport.
struct World {
  std::vector<std::unique_ptr<Transport>> transports;

  NodeAddress RegisterAll(const Transport::Handler& handler) {
    NodeAddress addr = kInvalidAddress;
    for (auto& transport : transports) {
      addr = transport->Register(handler);
    }
    return addr;
  }
  /// The transport RPCs are issued from (rank 0).
  Transport& front() { return *transports.front(); }
};

World MakeSimulatedWorld() {
  World world;
  TransportOptions options;
  auto transport = CreateTransport(options);
  EXPECT_TRUE(transport.ok()) << transport.status().ToString();
  world.transports.push_back(std::move(transport).value());
  return world;
}

World MakeTcpWorld(size_t ranks, size_t max_frame_bytes = 1 << 20) {
  World world;
  std::vector<TcpTransport*> raw;
  for (size_t r = 0; r < ranks; ++r) {
    TransportOptions options;
    options.kind = TransportKind::kTcp;
    options.endpoints.assign(ranks, "127.0.0.1:0");
    options.rank = static_cast<uint32_t>(r);
    options.max_frame_bytes = max_frame_bytes;
    options.io_timeout_ms = 5000;
    options.connect_wait_ms = 5000;
    auto transport = CreateTransport(options);
    EXPECT_TRUE(transport.ok()) << transport.status().ToString();
    raw.push_back(static_cast<TcpTransport*>(transport.value().get()));
    world.transports.push_back(std::move(transport).value());
  }
  for (size_t a = 0; a < ranks; ++a) {
    for (size_t b = 0; b < ranks; ++b) {
      if (a == b) continue;
      EXPECT_TRUE(raw[a]
                      ->SetPeerEndpoint(static_cast<uint32_t>(b),
                                        raw[b]->listen_endpoint())
                      .ok());
    }
  }
  return world;
}

World MakeWorld(const std::string& backend) {
  return backend == "tcp" ? MakeTcpWorld(2) : MakeSimulatedWorld();
}

class TransportConformanceTest : public ::testing::TestWithParam<std::string> {
};

INSTANTIATE_TEST_SUITE_P(Backends, TransportConformanceTest,
                         ::testing::Values("simulated", "tcp"),
                         [](const auto& info) { return info.param; });

Transport::Handler Echo(uint8_t suffix) {
  return [suffix](const Message& msg) -> Result<Bytes> {
    Bytes reply = msg.payload;
    reply.push_back(suffix);
    return reply;
  };
}

TEST_P(TransportConformanceTest, RoundTripsLocalAndRemote) {
  World world = MakeWorld(GetParam());
  // Address 0 is local to rank 0; address 1 is owned by rank 1 on the
  // tcp world (addr % nranks), so it crosses the wire there.
  NodeAddress local = world.RegisterAll(Echo(0xaa));
  NodeAddress remote = world.RegisterAll(Echo(0xbb));
  ASSERT_EQ(local, 0u);
  ASSERT_EQ(remote, 1u);

  auto r_local = world.front().Rpc(remote, local, "echo", Payload({1, 2}));
  ASSERT_TRUE(r_local.ok()) << r_local.status().ToString();
  EXPECT_EQ(r_local.value(), Payload({1, 2, 0xaa}));

  auto r_remote = world.front().Rpc(local, remote, "echo", Payload({3}));
  ASSERT_TRUE(r_remote.ok()) << r_remote.status().ToString();
  EXPECT_EQ(r_remote.value(), Payload({3, 0xbb}));
}

TEST_P(TransportConformanceTest, HandlerSeesAddressesTypeAndPayload) {
  World world = MakeWorld(GetParam());
  (void)world.RegisterAll(Echo(0));
  NodeAddress probe =
      world.RegisterAll([](const Message& msg) -> Result<Bytes> {
        EXPECT_EQ(msg.type, "probe");
        EXPECT_EQ(msg.src, 0u);
        EXPECT_EQ(msg.dst, 1u);
        EXPECT_EQ(msg.payload, Payload({9, 8, 7}));
        return Payload({1});
      });
  auto r = world.front().Rpc(0, probe, "probe", Payload({9, 8, 7}));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
}

TEST_P(TransportConformanceTest, UnknownAddressIsNotFound) {
  World world = MakeWorld(GetParam());
  (void)world.RegisterAll(Echo(0));
  EXPECT_EQ(world.front().Rpc(0, 99, "x", {}).status().code(),
            StatusCode::kNotFound);
}

TEST_P(TransportConformanceTest, DownNodeIsUnavailable) {
  World world = MakeWorld(GetParam());
  (void)world.RegisterAll(Echo(0));
  NodeAddress node = world.RegisterAll(Echo(1));
  ASSERT_TRUE(world.front().SetNodeUp(node, false).ok());
  EXPECT_EQ(world.front().Rpc(0, node, "x", {}).status().code(),
            StatusCode::kUnavailable);
  ASSERT_TRUE(world.front().SetNodeUp(node, true).ok());
  EXPECT_TRUE(world.front().Rpc(0, node, "x", {}).ok());
}

TEST_P(TransportConformanceTest, HandlerErrorsPropagateToCaller) {
  World world = MakeWorld(GetParam());
  (void)world.RegisterAll(Echo(0));
  NodeAddress failing =
      world.RegisterAll([](const Message&) -> Result<Bytes> {
        return Status::FailedPrecondition("handler says no");
      });
  Status st = world.front().Rpc(0, failing, "x", {}).status();
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(st.ToString().find("handler says no"), std::string::npos);
}

TEST_P(TransportConformanceTest, ConcurrentInFlightRpcsEachGetTheirReply) {
  World world = MakeWorld(GetParam());
  (void)world.RegisterAll(Echo(0));
  NodeAddress target =
      world.RegisterAll([](const Message& msg) -> Result<Bytes> {
        // Stagger responses so calls genuinely overlap in flight.
        std::this_thread::sleep_for(
            std::chrono::milliseconds(msg.payload[0] % 3));
        Bytes reply = msg.payload;
        reply.push_back(0xcc);
        return reply;
      });

  constexpr size_t kCalls = 24;
  auto pool = ThreadPool::Create(8);
  ASSERT_TRUE(pool.ok());
  ASSERT_TRUE(pool.value()
                  ->ParallelFor(0, kCalls, 1,
                                [&](size_t begin, size_t end) -> Status {
                                  for (size_t i = begin; i < end; ++i) {
                                    uint8_t tag = static_cast<uint8_t>(i);
                                    // Each worker meters into its own sink
                                    // (the transport-wide stats object is
                                    // not a concurrent structure).
                                    NetworkStats sink;
                                    Transport::StatsCapture capture(
                                        &world.front(), &sink);
                                    auto r = world.front().Rpc(
                                        0, target, "echo", Payload({tag}));
                                    if (!r.ok()) return r.status();
                                    if (r.value() != Payload({tag, 0xcc})) {
                                      return Status::Internal(
                                          "cross-wired response");
                                    }
                                  }
                                  return Status::OK();
                                })
                  .ok());
}

TEST_P(TransportConformanceTest, ChargesRequestLegToUnreachablePeers) {
  World world = MakeWorld(GetParam());
  (void)world.RegisterAll(Echo(0));
  NodeAddress node = world.RegisterAll(Echo(1));
  ASSERT_TRUE(world.front().SetNodeUp(node, false).ok());
  world.front().ResetStats();
  (void)world.front().Rpc(0, node, "x", Payload({1, 2, 3})).status();
  // The request leg consumed uplink bandwidth even though delivery
  // failed; no response leg was charged.
  EXPECT_EQ(world.front().stats().messages, 1u);
  EXPECT_GT(world.front().stats().bytes, 0u);
}

// The load-bearing cross-backend invariant: identical traffic charges
// identical modeled cost on every backend — byte counts come from
// Message::WireSize under the LatencyModel, never from the socket.
TEST(TransportConformance, ModeledAccountingIsBitIdenticalAcrossBackends) {
  NetworkStats per_backend[2];
  const std::string backends[2] = {"simulated", "tcp"};
  for (int i = 0; i < 2; ++i) {
    World world = MakeWorld(backends[i]);
    NodeAddress a = world.RegisterAll(Echo(1));
    NodeAddress b = world.RegisterAll(Echo(2));
    world.front().ResetStats();
    ASSERT_TRUE(world.front().Rpc(a, b, "small", Payload({1})).ok());
    ASSERT_TRUE(
        world.front().Rpc(b, a, "large", Bytes(1000, 0x5a)).ok());
    per_backend[i] = world.front().stats();
  }
  EXPECT_EQ(per_backend[0].messages, per_backend[1].messages);
  EXPECT_EQ(per_backend[0].bytes, per_backend[1].bytes);
  EXPECT_EQ(per_backend[0].latency_ms, per_backend[1].latency_ms);
  EXPECT_EQ(per_backend[0].bytes_by_type, per_backend[1].bytes_by_type);
}

TEST(TcpTransportTest, OversizedPayloadIsRejectedWithoutTraffic) {
  // 4 KiB frame cap; the encoded frame for a 16 KiB payload exceeds it.
  World world = MakeTcpWorld(2, /*max_frame_bytes=*/4096);
  (void)world.RegisterAll(Echo(0));
  NodeAddress remote = world.RegisterAll(Echo(1));
  auto r = world.front().Rpc(0, remote, "big", Bytes(16 * 1024, 0xee));
  EXPECT_FALSE(r.ok());
  // A small frame still fits: the cap poisons nothing.
  EXPECT_TRUE(world.front().Rpc(0, remote, "small", Payload({1})).ok());
}

TEST(TcpTransportTest, RemoteRankDownMapsToUnavailable) {
  World world = MakeTcpWorld(2);
  (void)world.RegisterAll(Echo(0));
  NodeAddress remote = world.RegisterAll(Echo(1));
  ASSERT_TRUE(world.front().Rpc(0, remote, "x", {}).ok());
  // Kill rank 1's process stand-in; its listen socket closes and pooled
  // connections die. The caller must see Unavailable, not a hang.
  static_cast<TcpTransport*>(world.transports[1].get())->Shutdown();
  EXPECT_EQ(world.front().Rpc(0, remote, "x", {}).status().code(),
            StatusCode::kUnavailable);
}

TEST(TcpTransportTest, CleanShutdownWithPendingCalls) {
  World world = MakeTcpWorld(2);
  (void)world.RegisterAll(Echo(0));
  NodeAddress slow =
      world.RegisterAll([](const Message& msg) -> Result<Bytes> {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        return msg.payload;
      });

  std::vector<Status> pending(4, Status::OK());
  auto pool = ThreadPool::Create(pending.size());
  ASSERT_TRUE(pool.ok());
  for (size_t i = 0; i < pending.size(); ++i) {
    ASSERT_TRUE(pool.value()
                    ->Schedule([&world, &pending, slow, i] {
                      NetworkStats sink;
                      Transport::StatsCapture capture(&world.front(), &sink);
                      pending[i] = world.front()
                                       .Rpc(0, slow, "slow",
                                            Payload({uint8_t(i)}))
                                       .status();
                    })
                    .ok());
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  // Tear both ends down with calls still in flight: every caller must
  // return (completed or Unavailable) — no hang, no crash.
  static_cast<TcpTransport*>(world.transports[1].get())->Shutdown();
  static_cast<TcpTransport*>(world.transports[0].get())->Shutdown();
  pool.value()->Shutdown();
  for (const Status& st : pending) {
    EXPECT_TRUE(st.ok() || st.code() == StatusCode::kUnavailable ||
                st.code() == StatusCode::kDeadlineExceeded)
        << st.ToString();
  }
}

TEST(TcpTransportTest, ControlChannelRoundTripsThroughFrameClient) {
  World world = MakeTcpWorld(2);
  auto* rank1 = static_cast<TcpTransport*>(world.transports[1].get());
  rank1->SetControlHandler(
      [](const std::string& verb, const Bytes& payload) -> Result<Bytes> {
        if (verb == "ctl.echo") {
          Bytes reply = payload;
          reply.push_back(0x42);
          return reply;
        }
        return Status::InvalidArgument("unknown verb '" + verb + "'");
      });
  auto client = FrameClient::Connect(rank1->listen_endpoint(),
                                     /*io_timeout_ms=*/5000,
                                     /*connect_wait_ms=*/5000);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto r = client.value()->Call("ctl.echo", Payload({7}));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value(), Payload({7, 0x42}));
  Status unknown = client.value()->Call("ctl.nope", {}).status();
  EXPECT_EQ(unknown.code(), StatusCode::kInvalidArgument);
}

// ---- Frame codec hardening -------------------------------------------

Frame SampleRequest() {
  Frame frame;
  frame.type = FrameType::kRequest;
  frame.request_id = 77;
  frame.src = 3;
  frame.dst = 9;
  frame.attempt = 2;
  frame.verb = "peer.query";
  frame.payload = Payload({1, 2, 3, 4});
  return frame;
}

TEST(FrameCodecTest, RequestRoundTrips) {
  Bytes wire = EncodeFrame(SampleRequest());
  auto decoded = DecodeFrameBody(wire.data() + kFrameLengthPrefixBytes,
                                 wire.size() - kFrameLengthPrefixBytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().type, FrameType::kRequest);
  EXPECT_EQ(decoded.value().request_id, 77u);
  EXPECT_EQ(decoded.value().src, 3u);
  EXPECT_EQ(decoded.value().dst, 9u);
  EXPECT_EQ(decoded.value().attempt, 2u);
  EXPECT_EQ(decoded.value().verb, "peer.query");
  EXPECT_EQ(decoded.value().payload, Payload({1, 2, 3, 4}));
}

TEST(FrameCodecTest, ErrorResponseRoundTripsStatus) {
  Frame response = MakeResponseFrame(
      123, Status::Unavailable("peer melted"), Payload({}));
  Bytes wire = EncodeFrame(response);
  auto decoded = DecodeFrameBody(wire.data() + kFrameLengthPrefixBytes,
                                 wire.size() - kFrameLengthPrefixBytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().request_id, 123u);
  Status st = FrameStatus(decoded.value());
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  EXPECT_NE(st.ToString().find("peer melted"), std::string::npos);
}

TEST(FrameCodecTest, UnknownVersionIsRejected) {
  Frame frame = SampleRequest();
  frame.version = 9;
  Bytes wire = EncodeFrame(frame);
  auto decoded = DecodeFrameBody(wire.data() + kFrameLengthPrefixBytes,
                                 wire.size() - kFrameLengthPrefixBytes);
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
}

TEST(FrameCodecTest, EveryTruncationFailsCleanly) {
  Bytes wire = EncodeFrame(SampleRequest());
  for (size_t len = 0; len + 1 < wire.size() - kFrameLengthPrefixBytes;
       ++len) {
    auto decoded =
        DecodeFrameBody(wire.data() + kFrameLengthPrefixBytes, len);
    EXPECT_FALSE(decoded.ok()) << "decoded a " << len << "-byte prefix";
  }
}

TEST(FrameAssemblerTest, ReassemblesByteByByte) {
  Bytes wire = EncodeFrame(SampleRequest());
  FrameAssembler assembler(1 << 20);
  Frame out;
  for (size_t i = 0; i + 1 < wire.size(); ++i) {
    ASSERT_TRUE(assembler.Feed(&wire[i], 1).ok());
    auto produced = assembler.Next(&out);
    ASSERT_TRUE(produced.ok());
    EXPECT_FALSE(produced.value()) << "frame produced at byte " << i;
  }
  ASSERT_TRUE(assembler.Feed(&wire[wire.size() - 1], 1).ok());
  auto produced = assembler.Next(&out);
  ASSERT_TRUE(produced.ok());
  ASSERT_TRUE(produced.value());
  EXPECT_EQ(out.verb, "peer.query");
  EXPECT_EQ(assembler.buffered(), 0u);
}

TEST(FrameAssemblerTest, ExtractsBackToBackFramesFromOneFeed) {
  Frame a = SampleRequest();
  Frame b = MakeResponseFrame(a.request_id, Status::OK(), Payload({9}));
  Bytes wire = EncodeFrame(a);
  Bytes wire_b = EncodeFrame(b);
  wire.insert(wire.end(), wire_b.begin(), wire_b.end());
  FrameAssembler assembler(1 << 20);
  ASSERT_TRUE(assembler.Feed(wire.data(), wire.size()).ok());
  Frame out;
  auto first = assembler.Next(&out);
  ASSERT_TRUE(first.ok() && first.value());
  EXPECT_EQ(out.type, FrameType::kRequest);
  auto second = assembler.Next(&out);
  ASSERT_TRUE(second.ok() && second.value());
  EXPECT_EQ(out.type, FrameType::kResponse);
  EXPECT_EQ(out.payload, Payload({9}));
}

TEST(FrameAssemblerTest, HostileLengthPrefixPoisonsTheStream) {
  FrameAssembler assembler(/*max_frame_bytes=*/1024);
  // A 4 GiB body claim must be rejected from the prefix alone, without
  // ever buffering toward it.
  const uint8_t hostile[4] = {0xff, 0xff, 0xff, 0xff};
  EXPECT_FALSE(assembler.Feed(hostile, sizeof(hostile)).ok());
  // ...and the stream stays dead: framing can't be resynchronized.
  const uint8_t more = 0;
  EXPECT_FALSE(assembler.Feed(&more, 1).ok());
}

}  // namespace
}  // namespace iqn

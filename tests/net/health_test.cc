// HealthTracker: EWMA failure detection, the circuit-breaker state
// machine (closed -> open -> half-open -> closed / re-open), the
// in-cooldown observation-folding rule, and determinism across
// identically-fed instances.

#include <gtest/gtest.h>

#include "net/health.h"

namespace iqn {
namespace {

using CircuitState = HealthTracker::CircuitState;

HealthParams Params() {
  HealthParams params;
  params.enabled = true;
  params.error_alpha = 0.5;
  params.latency_alpha = 0.5;
  params.error_threshold = 0.5;
  params.cooldown_ms = 250.0;
  return params;
}

TEST(HealthTrackerTest, UnknownPeersAreClosed) {
  HealthTracker tracker(Params());
  EXPECT_EQ(tracker.StateOf(7, 0.0), CircuitState::kClosed);
  EXPECT_TRUE(tracker.AllowRequest(7, 0.0));
  EXPECT_EQ(tracker.peers_tracked(), 0u);
}

TEST(HealthTrackerTest, ErrorEwmaConvergesGraduallyToTheTrip) {
  HealthParams params = Params();
  params.error_alpha = 0.25;
  HealthTracker tracker(params);
  // EWMA after k straight failures: 1 - 0.75^k -> 0.25, 0.4375, 0.578.
  tracker.Observe(3, false, 10.0, 0.0);
  EXPECT_EQ(tracker.StateOf(3, 0.0), CircuitState::kClosed);
  tracker.Observe(3, false, 10.0, 0.0);
  EXPECT_EQ(tracker.StateOf(3, 0.0), CircuitState::kClosed);
  tracker.Observe(3, false, 10.0, 0.0);
  EXPECT_EQ(tracker.StateOf(3, 0.0), CircuitState::kOpen);
  EXPECT_FALSE(tracker.AllowRequest(3, 0.0));
  EXPECT_EQ(tracker.peers_tracked(), 1u);
}

TEST(HealthTrackerTest, SuccessesKeepTheCircuitClosed) {
  HealthTracker tracker(Params());
  for (int i = 0; i < 20; ++i) tracker.Observe(3, true, 5.0, 0.0);
  EXPECT_EQ(tracker.StateOf(3, 0.0), CircuitState::kClosed);
  // A single failure after a healthy history is not enough at alpha 0.5.
  tracker.Observe(3, false, 5.0, 0.0);
  EXPECT_EQ(tracker.StateOf(3, 0.0), CircuitState::kOpen);  // 0.5 >= 0.5
}

TEST(HealthTrackerTest, LatencyTripWireOpensOnSlowSuccesses) {
  HealthParams params = Params();
  params.latency_threshold_ms = 40.0;
  HealthTracker tracker(params);
  // Error-free but slow: 0.5-alpha EWMA over 80 ms -> 40, 60, ...
  tracker.Observe(3, true, 80.0, 0.0);
  EXPECT_EQ(tracker.StateOf(3, 0.0), CircuitState::kOpen);
}

TEST(HealthTrackerTest, ZeroLatencyThresholdDisablesTheTripWire) {
  HealthTracker tracker(Params());  // latency_threshold_ms = 0
  for (int i = 0; i < 10; ++i) tracker.Observe(3, true, 1e6, 0.0);
  EXPECT_EQ(tracker.StateOf(3, 0.0), CircuitState::kClosed);
}

TEST(HealthTrackerTest, CooldownThenHalfOpenThenProbeCloses) {
  HealthParams params = Params();
  params.error_alpha = 1.0;
  HealthTracker tracker(params);
  tracker.Observe(3, false, 10.0, 100.0);  // opens at t=100
  EXPECT_EQ(tracker.StateOf(3, 100.0), CircuitState::kOpen);
  EXPECT_EQ(tracker.StateOf(3, 349.9), CircuitState::kOpen);
  EXPECT_EQ(tracker.StateOf(3, 350.0), CircuitState::kHalfOpen);
  EXPECT_TRUE(tracker.AllowRequest(3, 350.0));  // the probe goes through
  tracker.Observe(3, true, 10.0, 350.0);        // probe succeeded
  EXPECT_EQ(tracker.StateOf(3, 350.0), CircuitState::kClosed);
}

TEST(HealthTrackerTest, FailedProbeReopensForAFreshCooldown) {
  HealthParams params = Params();
  params.error_alpha = 1.0;
  HealthTracker tracker(params);
  tracker.Observe(3, false, 10.0, 0.0);    // opens at t=0
  tracker.Observe(3, false, 10.0, 250.0);  // half-open probe fails
  EXPECT_EQ(tracker.StateOf(3, 250.0), CircuitState::kOpen);
  EXPECT_EQ(tracker.StateOf(3, 499.9), CircuitState::kOpen);
  EXPECT_EQ(tracker.StateOf(3, 500.0), CircuitState::kHalfOpen);
}

TEST(HealthTrackerTest, InCooldownObservationsFoldEwmasButHoldTheState) {
  // A batch commits all its outcomes at one clock value; successes that
  // were in flight when the circuit opened must not close it early.
  HealthParams params = Params();
  params.error_alpha = 1.0;
  HealthTracker tracker(params);
  tracker.Observe(3, false, 10.0, 100.0);  // opens at t=100
  for (int i = 0; i < 5; ++i) tracker.Observe(3, true, 5.0, 100.0);
  // The error EWMA decayed to 0 but the circuit still cools down.
  EXPECT_EQ(tracker.StateOf(3, 100.0), CircuitState::kOpen);
  EXPECT_EQ(tracker.StateOf(3, 349.9), CircuitState::kOpen);
  EXPECT_EQ(tracker.StateOf(3, 350.0), CircuitState::kHalfOpen);
}

TEST(HealthTrackerTest, PeersAreTrackedIndependently) {
  HealthParams params = Params();
  params.error_alpha = 1.0;
  HealthTracker tracker(params);
  tracker.Observe(1, false, 10.0, 0.0);
  tracker.Observe(2, true, 10.0, 0.0);
  EXPECT_EQ(tracker.StateOf(1, 0.0), CircuitState::kOpen);
  EXPECT_EQ(tracker.StateOf(2, 0.0), CircuitState::kClosed);
  EXPECT_EQ(tracker.peers_tracked(), 2u);
}

TEST(HealthTrackerTest, IdenticalObservationSequencesYieldIdenticalState) {
  // The determinism contract: state is a pure function of the
  // observation sequence in commit order plus the simulated clock.
  HealthTracker a(Params());
  HealthTracker b(Params());
  double now = 0.0;
  for (int i = 0; i < 200; ++i) {
    NodeAddress dst = static_cast<NodeAddress>(i % 5);
    bool ok = (i % 3) != 0;
    double latency = 5.0 + static_cast<double>(i % 7) * 11.0;
    a.Observe(dst, ok, latency, now);
    b.Observe(dst, ok, latency, now);
    now += 40.0;
  }
  EXPECT_EQ(a.DebugString(), b.DebugString());
  for (NodeAddress dst = 0; dst < 5; ++dst) {
    EXPECT_EQ(a.StateOf(dst, now), b.StateOf(dst, now));
  }
}

}  // namespace
}  // namespace iqn

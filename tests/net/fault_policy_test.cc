// Fault injection and RPC policy layer: determinism of the injected
// fault schedule, per-class fault semantics and their traffic
// accounting (failed RPCs still cost bandwidth), retry/backoff/deadline
// behavior of CallRpc, and the StatsCapture topology-mutation
// precondition.

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "net/fault.h"
#include "net/health.h"
#include "net/network.h"
#include "net/rpc_policy.h"

namespace iqn {
namespace {

FaultPlan PlanWith(FaultSpec FaultPlan::* field, double rate,
                   uint64_t seed = 7) {
  FaultPlan plan;
  plan.seed = seed;
  (plan.*field).rate = rate;
  return plan;
}

// ------------------------------------------------------- FaultInjector

TEST(FaultInjectorTest, ZeroRateNeverFires) {
  FaultInjector injector{FaultPlan{}};
  for (uint64_t m = 0; m < 50; ++m) {
    FaultDecision d = injector.Decide(m % 5, "kv.get", m, m * 31, 0);
    EXPECT_FALSE(d.drop_request || d.drop_response || d.unavailable ||
                 d.slow_link || d.corrupt_response || d.timeout);
  }
}

TEST(FaultInjectorTest, FullRateAlwaysFires) {
  FaultInjector injector{PlanWith(&FaultPlan::drop_request, 1.0)};
  for (uint64_t m = 0; m < 50; ++m) {
    EXPECT_TRUE(injector.Decide(m % 5, "kv.get", m, m * 31, 0).drop_request);
  }
}

TEST(FaultInjectorTest, DecisionsArePureFunctionsOfTheirCoordinates) {
  FaultPlan plan;
  plan.seed = 1234;
  plan.drop_request.rate = 0.3;
  plan.drop_response.rate = 0.3;
  plan.unavailable.rate = 0.2;
  plan.timeout.rate = 0.1;
  FaultInjector a{plan};
  FaultInjector b{plan};
  for (uint64_t m = 0; m < 200; ++m) {
    FaultDecision da = a.Decide(m % 7, "chord.ping", m * 131, m * 17, m % 3);
    FaultDecision db = b.Decide(m % 7, "chord.ping", m * 131, m * 17, m % 3);
    EXPECT_EQ(da.drop_request, db.drop_request);
    EXPECT_EQ(da.drop_response, db.drop_response);
    EXPECT_EQ(da.unavailable, db.unavailable);
    EXPECT_EQ(da.timeout, db.timeout);
  }
}

TEST(FaultInjectorTest, SeedChangesTheSchedule) {
  FaultInjector a{PlanWith(&FaultPlan::drop_request, 0.5, 1)};
  FaultInjector b{PlanWith(&FaultPlan::drop_request, 0.5, 2)};
  size_t differing = 0;
  for (uint64_t m = 0; m < 100; ++m) {
    if (a.Decide(0, "t", m, 0, 0).drop_request !=
        b.Decide(0, "t", m, 0, 0).drop_request) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 0u);
}

TEST(FaultInjectorTest, AttemptNonceRollsFreshDice) {
  // A retry must be able to see a different fate than the original
  // attempt, else retrying a deterministically dropped message would be
  // pointless.
  FaultInjector injector{PlanWith(&FaultPlan::drop_request, 0.5)};
  size_t rescued = 0;
  for (uint64_t ctx = 0; ctx < 100; ++ctx) {
    bool first = injector.Decide(1, "t", 42, ctx, 0).drop_request;
    bool second = injector.Decide(1, "t", 42, ctx, 1).drop_request;
    if (first && !second) ++rescued;
  }
  EXPECT_GT(rescued, 0u);
}

TEST(FaultInjectorTest, SpecScopingByTypePrefixAndNode) {
  FaultPlan plan;
  plan.seed = 3;
  plan.drop_request.rate = 1.0;
  plan.drop_request.type_prefix = "kv.";
  plan.drop_request.nodes = {4};
  FaultInjector injector{plan};
  EXPECT_TRUE(injector.Decide(4, "kv.get", 0, 0, 0).drop_request);
  EXPECT_FALSE(injector.Decide(4, "chord.ping", 0, 0, 0).drop_request);
  EXPECT_FALSE(injector.Decide(5, "kv.get", 0, 0, 0).drop_request);
}

TEST(FaultInjectorTest, OverloadDelayIsDeterministicAndScoped) {
  FaultPlan plan;
  plan.seed = 7;
  plan.overload.nodes = {2};
  plan.overload.utilization = 0.9;
  plan.overload.service_ms = 5.0;
  FaultInjector a{plan};
  FaultInjector b{plan};
  double sum = 0.0;
  for (uint64_t m = 0; m < 200; ++m) {
    double d = a.OverloadDelayMs(2, "op", m, m * 3, 0);
    EXPECT_GT(d, 0.0);
    EXPECT_DOUBLE_EQ(d, b.OverloadDelayMs(2, "op", m, m * 3, 0));
    // A node outside the overloaded set is never delayed.
    EXPECT_DOUBLE_EQ(a.OverloadDelayMs(3, "op", m, m * 3, 0), 0.0);
    sum += d;
  }
  // Exponential with mean service * rho / (1 - rho) = 45 ms; the sample
  // mean of 200 seeded draws must sit near it.
  EXPECT_GT(sum / 200.0, 30.0);
  EXPECT_LT(sum / 200.0, 60.0);
}

TEST(FaultInjectorTest, ZeroUtilizationMeansNoQueueingDelay) {
  FaultPlan plan;
  plan.seed = 7;
  plan.overload.nodes = {2};
  plan.overload.shed_rate = 0.5;  // shedding only, no queueing
  FaultInjector injector{plan};
  for (uint64_t m = 0; m < 50; ++m) {
    EXPECT_DOUBLE_EQ(injector.OverloadDelayMs(2, "op", m, m, 0), 0.0);
  }
}

TEST(FaultInjectorTest, LoadShedIsPureAndAttemptNonceRollsFreshDice) {
  FaultPlan plan;
  plan.seed = 11;
  plan.overload.nodes = {1};
  plan.overload.shed_rate = 0.5;
  FaultInjector a{plan};
  FaultInjector b{plan};
  size_t shed = 0;
  size_t rescued = 0;
  for (uint64_t ctx = 0; ctx < 100; ++ctx) {
    bool first = a.ShedsLoad(1, "op", 42, ctx, 0);
    EXPECT_EQ(first, b.ShedsLoad(1, "op", 42, ctx, 0));
    EXPECT_FALSE(a.ShedsLoad(2, "op", 42, ctx, 0));  // not overloaded
    if (first) {
      ++shed;
      if (!a.ShedsLoad(1, "op", 42, ctx, 1)) ++rescued;
    }
  }
  EXPECT_GT(shed, 20u);
  EXPECT_LT(shed, 80u);
  // A retry must be able to get through, like every other fault class.
  EXPECT_GT(rescued, 0u);
}

TEST(FaultInjectorTest, PartitionIsAPureWindowLookup) {
  FaultPlan plan;
  plan.seed = 5;
  PartitionSpec partition;
  partition.name = "east_west";
  partition.groups = {{0, 1}, {2, 3}};
  partition.start_ms = 100.0;
  partition.end_ms = 200.0;
  plan.partitions.push_back(partition);
  FaultInjector injector{plan};
  const std::string* name = nullptr;
  // Outside the window nothing is blocked.
  EXPECT_FALSE(injector.Partitioned(0, 2, 50.0, nullptr));
  EXPECT_FALSE(injector.Partitioned(0, 2, 200.0, nullptr));  // healed
  // Inside it, every cross-group pair fails, both directions.
  EXPECT_TRUE(injector.Partitioned(0, 2, 100.0, &name));
  ASSERT_NE(name, nullptr);
  EXPECT_EQ(*name, "east_west");
  EXPECT_TRUE(injector.Partitioned(3, 1, 199.9, nullptr));
  // Same-group and unlisted nodes are unaffected.
  EXPECT_FALSE(injector.Partitioned(0, 1, 150.0, nullptr));
  EXPECT_FALSE(injector.Partitioned(0, 7, 150.0, nullptr));
}

TEST(FaultInjectorTest, CorruptPayloadIsDeterministicAndChangesBytes) {
  FaultInjector injector{PlanWith(&FaultPlan::corrupt_response, 1.0)};
  for (uint64_t m = 0; m < 20; ++m) {
    Bytes original(64, static_cast<uint8_t>(m + 1));
    Bytes one = original;
    Bytes two = original;
    injector.CorruptPayload(&one, 2, "peer.query", m, m * 3, 0);
    injector.CorruptPayload(&two, 2, "peer.query", m, m * 3, 0);
    EXPECT_EQ(one, two);
    EXPECT_NE(one, original);
  }
}

// ------------------------------- fault semantics and traffic accounting

SimulatedNetwork::Handler Echo() {
  return [](const Message& msg) -> Result<Bytes> { return msg.payload; };
}

TEST(FaultNetworkTest, DownNodeStillChargesTheRequestLeg) {
  SimulatedNetwork net;
  NodeAddress node = net.Register(Echo());
  ASSERT_TRUE(net.SetNodeUp(node, false).ok());
  net.ResetStats();
  EXPECT_EQ(net.Rpc(0, node, "op", Bytes(100, 0)).status().code(),
            StatusCode::kUnavailable);
  // The request was sent before the caller could learn the node is down.
  EXPECT_EQ(net.stats().messages, 1u);
  EXPECT_EQ(net.stats().bytes, 20u + 2u + 100u);
}

TEST(FaultNetworkTest, DropRequestChargesRequestAndTimeoutPenalty) {
  SimulatedNetwork net;
  NodeAddress node = net.Register(Echo());
  net.InstallFaultPlan(PlanWith(&FaultPlan::drop_request, 1.0));
  net.ResetStats();
  auto r = net.Rpc(0, node, "op", Bytes(10, 0));
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(net.stats().messages, 1u);  // request only; handler never ran
  EXPECT_EQ(net.stats().faults_injected, 1u);
  // Latency = request leg + the caller waiting out its timeout.
  double request_ms = 1.0 + 0.001 * (20 + 2 + 10);
  EXPECT_NEAR(net.stats().latency_ms, request_ms + 50.0, 1e-9);
  EXPECT_EQ(net.fault_injector()->counters().requests_dropped.Value(), 1u);
}

TEST(FaultNetworkTest, DropResponseChargesBothLegsAndRunsHandler) {
  SimulatedNetwork net;
  bool handler_ran = false;
  NodeAddress node =
      net.Register([&handler_ran](const Message& msg) -> Result<Bytes> {
        handler_ran = true;
        return msg.payload;
      });
  net.InstallFaultPlan(PlanWith(&FaultPlan::drop_response, 1.0));
  net.ResetStats();
  auto r = net.Rpc(0, node, "op", Bytes(10, 0));
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(handler_ran);  // side effects happened; only the reply vanished
  EXPECT_EQ(net.stats().messages, 2u);
  EXPECT_EQ(net.stats().faults_injected, 1u);
  EXPECT_EQ(net.fault_injector()->counters().responses_dropped.Value(), 1u);
}

TEST(FaultNetworkTest, TimeoutChargesFullRoundTrip) {
  SimulatedNetwork net;
  NodeAddress node = net.Register(Echo());
  net.InstallFaultPlan(PlanWith(&FaultPlan::timeout, 1.0));
  net.ResetStats();
  EXPECT_EQ(net.Rpc(0, node, "op", Bytes(10, 0)).status().code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(net.stats().messages, 2u);
  EXPECT_EQ(net.fault_injector()->counters().timeouts_injected.Value(), 1u);
}

TEST(FaultNetworkTest, InjectedUnavailableFailsFastAfterRequestCharge) {
  SimulatedNetwork net;
  NodeAddress node = net.Register(Echo());
  net.InstallFaultPlan(PlanWith(&FaultPlan::unavailable, 1.0));
  net.ResetStats();
  EXPECT_EQ(net.Rpc(0, node, "op", Bytes(10, 0)).status().code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(net.stats().messages, 1u);
  // Fail-fast: no timeout penalty, just the request leg's latency.
  EXPECT_NEAR(net.stats().latency_ms, 1.0 + 0.001 * (20 + 2 + 10), 1e-9);
}

TEST(FaultNetworkTest, SlowLinkDeliversIntactWithExtraLatency) {
  SimulatedNetwork net;
  NodeAddress node = net.Register(Echo());
  net.ResetStats();
  ASSERT_TRUE(net.Rpc(0, node, "op", Bytes(10, 0)).ok());
  double clean_ms = net.stats().latency_ms;

  net.InstallFaultPlan(PlanWith(&FaultPlan::slow_link, 1.0));
  net.ResetStats();
  auto r = net.Rpc(0, node, "op", Bytes(10, 0));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), Bytes(10, 0));
  EXPECT_NEAR(net.stats().latency_ms, clean_ms + 25.0, 1e-9);
}

TEST(FaultNetworkTest, CorruptResponseDeliversChangedBytes) {
  SimulatedNetwork net;
  NodeAddress node = net.Register(Echo());
  net.InstallFaultPlan(PlanWith(&FaultPlan::corrupt_response, 1.0));
  net.ResetStats();
  auto r = net.Rpc(0, node, "op", Bytes(64, 0xAB));
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r.value(), Bytes(64, 0xAB));
  // The response leg is charged at the size actually delivered.
  EXPECT_EQ(net.stats().bytes, (20u + 2u + 64u) + (20u + r.value().size()));
  EXPECT_EQ(net.fault_injector()->counters().responses_corrupted.Value(), 1u);
}

TEST(FaultNetworkTest, ZeroRatePlanIsCompletelyInert) {
  SimulatedNetwork a;
  SimulatedNetwork b;
  NodeAddress na = a.Register(Echo());
  NodeAddress nb = b.Register(Echo());
  FaultPlan zero;
  zero.seed = 999;  // a seed alone must change nothing
  b.InstallFaultPlan(zero);
  for (int i = 0; i < 10; ++i) {
    auto ra = a.Rpc(0, na, "op", Bytes(static_cast<size_t>(i), 1));
    auto rb = b.Rpc(0, nb, "op", Bytes(static_cast<size_t>(i), 1));
    ASSERT_TRUE(ra.ok() && rb.ok());
    EXPECT_EQ(ra.value(), rb.value());
  }
  EXPECT_EQ(a.stats().messages, b.stats().messages);
  EXPECT_EQ(a.stats().bytes, b.stats().bytes);
  EXPECT_DOUBLE_EQ(a.stats().latency_ms, b.stats().latency_ms);
  EXPECT_EQ(b.stats().faults_injected, 0u);
}

TEST(FaultNetworkTest, StatsCaptureSeesFailedRpcTraffic) {
  SimulatedNetwork net;
  NodeAddress down = net.Register(Echo());
  NodeAddress flaky = net.Register(Echo());
  ASSERT_TRUE(net.SetNodeUp(down, false).ok());
  FaultPlan plan = PlanWith(&FaultPlan::drop_response, 1.0);
  plan.drop_response.nodes = {flaky};
  net.InstallFaultPlan(plan);

  NetworkStats delta;
  {
    SimulatedNetwork::StatsCapture capture(&net, &delta);
    EXPECT_FALSE(net.Rpc(0, down, "op", Bytes(5, 0)).ok());
    EXPECT_FALSE(net.Rpc(0, flaky, "op", Bytes(5, 0)).ok());
  }
  // Down-node request + dropped-response round trip, all in the delta.
  EXPECT_EQ(delta.messages, 3u);
  EXPECT_EQ(delta.faults_injected, 1u);
  EXPECT_EQ(net.stats().messages, 0u);  // nothing leaked to global stats
}

// ------------------------------------- StatsCapture precondition checks

using StatsCaptureDeathTest = ::testing::Test;

TEST(StatsCaptureDeathTest, RegisterWhileCaptureLiveDies) {
  SimulatedNetwork net;
  net.Register(Echo());
  NetworkStats delta;
  SimulatedNetwork::StatsCapture capture(&net, &delta);
  EXPECT_DEATH(net.Register(Echo()), "live_captures_");
}

TEST(StatsCaptureDeathTest, SetNodeUpWhileCaptureLiveDies) {
  SimulatedNetwork net;
  NodeAddress node = net.Register(Echo());
  NetworkStats delta;
  SimulatedNetwork::StatsCapture capture(&net, &delta);
  EXPECT_DEATH((void)net.SetNodeUp(node, false), "live_captures_");
}

TEST(StatsCaptureDeathTest, TopologyMutationFineOnceCaptureEnds) {
  SimulatedNetwork net;
  NodeAddress node = net.Register(Echo());
  {
    NetworkStats delta;
    SimulatedNetwork::StatsCapture capture(&net, &delta);
    ASSERT_TRUE(net.Rpc(0, node, "op", {}).ok());
  }
  EXPECT_TRUE(net.SetNodeUp(node, false).ok());
  net.Register(Echo());
  EXPECT_EQ(net.num_nodes(), 2u);
}

TEST(FaultNetworkTest, LoadShedFailsFastButChargesTheRequestLeg) {
  SimulatedNetwork net;
  NodeAddress node = net.Register(Echo());
  FaultPlan plan;
  plan.seed = 3;
  plan.overload.nodes = {node};
  plan.overload.shed_rate = 1.0;
  net.InstallFaultPlan(plan);
  net.ResetStats();
  EXPECT_EQ(net.Rpc(0, node, "op", Bytes(10, 1)).status().code(),
            StatusCode::kUnavailable);
  // The request was sent; the node refused before doing any work.
  EXPECT_EQ(net.stats().messages, 1u);
  EXPECT_EQ(net.stats().bytes, 20u + 2u + 10u);
  EXPECT_EQ(net.fault_injector()->counters().loads_shed.Value(), 1u);
}

TEST(FaultNetworkTest, OverloadDelayIsChargedOnTopOfASuccessfulCall) {
  auto run = [](double utilization) {
    SimulatedNetwork net;
    NodeAddress node = net.Register(Echo());
    FaultPlan plan;
    plan.seed = 3;
    plan.overload.nodes = {node};
    plan.overload.utilization = utilization;
    if (plan.active()) net.InstallFaultPlan(plan);
    net.ResetStats();
    EXPECT_TRUE(net.Rpc(0, node, "op", Bytes(10, 1)).ok());
    return net.stats().latency_ms;
  };
  // The queue wait lands in simulated latency; the answer still arrives.
  EXPECT_GT(run(0.9), run(0.0));
}

TEST(FaultNetworkTest, PartitionBlocksCrossGroupTrafficUntilTheClockHeals) {
  SimulatedNetwork net;
  NodeAddress a = net.Register(Echo());
  NodeAddress b = net.Register(Echo());
  NodeAddress c = net.Register(Echo());  // bystander, in no group
  FaultPlan plan;
  plan.seed = 3;
  PartitionSpec partition;
  partition.groups = {{a}, {b}};
  partition.start_ms = 0.0;
  partition.end_ms = 100.0;
  plan.partitions.push_back(partition);
  net.InstallFaultPlan(plan);
  net.ResetStats();
  EXPECT_EQ(net.Rpc(a, b, "op", {}).status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(net.Rpc(a, c, "op", {}).ok());  // unlisted node reachable
  EXPECT_EQ(net.fault_injector()->counters().partition_blocked.Value(), 1u);
  // Advance the simulated clock past the window: the partition heals.
  net.AdvanceSimTime(150.0);
  EXPECT_TRUE(net.Rpc(a, b, "op", {}).ok());
  EXPECT_EQ(net.fault_injector()->counters().partition_blocked.Value(), 1u);
}

// --------------------------------------- RetryPolicy / Deadline / CallRpc

TEST(RetryPolicyTest, BackoffGrowsExponentiallyAndCaps) {
  RetryPolicy policy;
  policy.initial_backoff_ms = 5.0;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_ms = 18.0;
  policy.jitter = 0.0;
  EXPECT_DOUBLE_EQ(policy.BackoffMs(1, 0, "t", 0), 5.0);
  EXPECT_DOUBLE_EQ(policy.BackoffMs(2, 0, "t", 0), 10.0);
  EXPECT_DOUBLE_EQ(policy.BackoffMs(3, 0, "t", 0), 18.0);  // capped
}

TEST(RetryPolicyTest, JitterIsBoundedAndDeterministic) {
  RetryPolicy policy;
  policy.initial_backoff_ms = 10.0;
  policy.jitter = 0.5;
  policy.jitter_seed = 11;
  bool saw_off_nominal = false;
  for (uint64_t ctx = 0; ctx < 50; ++ctx) {
    double b = policy.BackoffMs(1, 3, "kv.get", ctx);
    EXPECT_GE(b, 5.0);
    EXPECT_LE(b, 15.0);
    EXPECT_DOUBLE_EQ(b, policy.BackoffMs(1, 3, "kv.get", ctx));
    if (b != 10.0) saw_off_nominal = true;
  }
  EXPECT_TRUE(saw_off_nominal);
}

TEST(RetryPolicyTest, JitteredBackoffNeverExceedsTheCap) {
  // Regression: the cap bounds the CHARGED wait, so it must be applied
  // after the jitter multiply — a nominal value already at the cap with
  // an upward jitter draw used to escape it.
  RetryPolicy policy;
  policy.initial_backoff_ms = 100.0;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_ms = 100.0;
  policy.jitter = 0.5;
  policy.jitter_seed = 9;
  bool saw_below = false;
  bool saw_clamped = false;
  for (int attempt = 1; attempt <= 4; ++attempt) {
    for (uint64_t ctx = 0; ctx < 50; ++ctx) {
      double b = policy.BackoffMs(attempt, 6, "peer.query", ctx);
      EXPECT_LE(b, 100.0);
      EXPECT_GE(b, 50.0);
      if (b < 100.0) saw_below = true;
      if (b == 100.0) saw_clamped = true;
    }
  }
  EXPECT_TRUE(saw_below);    // downward jitter still applies
  EXPECT_TRUE(saw_clamped);  // upward draws land exactly on the cap
}

TEST(CallRpcTest, ZeroDeadlineBudgetMeansUnlimited) {
  Deadline zero(0.0);
  EXPECT_TRUE(zero.unlimited());
  EXPECT_FALSE(zero.Expired());
  zero.Consume(1e9);
  EXPECT_FALSE(zero.Expired());
  Deadline negative(-5.0);
  EXPECT_TRUE(negative.unlimited());

  SimulatedNetwork net;
  NodeAddress node = net.Register(Echo());
  RetryPolicy policy;
  RpcScope scope(policy, /*deadline_budget_ms=*/0.0);
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(CallRpc(&net, 0, node, "op", Bytes(100, 7)).ok());
  }
  EXPECT_FALSE(RpcScope::DeadlineExpired());
}

TEST(CallRpcTest, BackoffExpiringMidWaitIsClampedToTheRemainingBudget) {
  SimulatedNetwork net;
  NodeAddress node = net.Register(Echo());
  ASSERT_TRUE(net.SetNodeUp(node, false).ok());
  RetryPolicy policy;
  policy.max_attempts = 10;
  policy.initial_backoff_ms = 60.0;
  policy.backoff_multiplier = 2.0;
  policy.jitter = 0.0;
  RpcScope scope(policy, /*deadline_budget_ms=*/100.0);
  auto r = CallRpc(&net, 0, node, "op", {});
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  // The second backoff (nominal 120 ms) expires mid-wait: the charged
  // wait is clamped to what was left of the 100 ms budget, so total
  // backoff stays under the budget and the third send never happens.
  EXPECT_EQ(net.stats().messages, 2u);
  EXPECT_GT(net.stats().retry_backoff_ms, 60.0);
  EXPECT_LT(net.stats().retry_backoff_ms, 100.0);
  // Attempts + clamped waits consume the budget exactly, no more.
  EXPECT_NEAR(net.stats().latency_ms, 100.0, 1e-9);
}

// ------------------------------------------------ hedged backup requests

TEST(CallRpcTest, SlowSuccessHedgeChargesOnlyTheOverlapWindow) {
  // Every message crosses a slow link, so the primary succeeds past the
  // hedge threshold; the hedge fires, loses the race (the backup can't
  // beat a same-cost primary with a head start), and the caller pays
  // max(primary, threshold + hedge) instead of the serial sum.
  auto run = [](bool hedging) {
    SimulatedNetwork net;
    NodeAddress node = net.Register(Echo());
    net.InstallFaultPlan(PlanWith(&FaultPlan::slow_link, 1.0));
    RetryPolicy policy;
    RpcScope scope(policy);
    HedgePolicy hedge;
    hedge.enabled = hedging;
    hedge.threshold_ms = 5.0;
    scope.set_hedge(hedge);
    EXPECT_TRUE(CallRpc(&net, 0, node, "op", {}).ok());
    return net.stats();
  };
  NetworkStats plain = run(false);
  NetworkStats hedged = run(true);
  EXPECT_EQ(plain.hedges, 0u);
  EXPECT_EQ(hedged.hedges, 1u);
  EXPECT_EQ(hedged.hedges_won, 0u);
  EXPECT_EQ(hedged.messages, 2u * plain.messages);  // backup traffic is real
  // Both attempts cost the same, so the hedged wait collapses to the
  // primary's latency plus the threshold head start.
  EXPECT_NEAR(hedged.latency_ms, plain.latency_ms + 5.0, 1e-9);
}

TEST(CallRpcTest, HedgesRescueSlowFailuresDeterministically) {
  // Injected timeouts are slow failures (the caller waits out the
  // penalty); a hedge on a fresh nonce can win where a no-retry call
  // would have failed.
  auto run = [](bool hedging) {
    SimulatedNetwork net;
    NodeAddress node = net.Register(Echo());
    net.InstallFaultPlan(PlanWith(&FaultPlan::timeout, 0.5, /*seed=*/42));
    RetryPolicy policy;
    policy.max_attempts = 1;
    size_t ok_count = 0;
    for (uint64_t ctx = 1; ctx <= 100; ++ctx) {
      RpcScope scope(policy, 0.0, ctx);
      HedgePolicy hedge;
      hedge.enabled = hedging;
      hedge.threshold_ms = 5.0;
      scope.set_hedge(hedge);
      if (CallRpc(&net, 0, node, "op", {}).ok()) ++ok_count;
    }
    return std::make_pair(ok_count, net.stats());
  };
  auto [plain_ok, plain] = run(false);
  auto [hedged_ok, hedged] = run(true);
  EXPECT_GT(hedged_ok, plain_ok);
  EXPECT_GT(hedged.hedges, 0u);
  EXPECT_GT(hedged.hedges_won, 0u);
  EXPECT_LE(hedged.hedges_won, hedged.hedges);
  // Deterministic: the same sweep yields the same counts.
  auto [again_ok, again] = run(true);
  EXPECT_EQ(again_ok, hedged_ok);
  EXPECT_EQ(again.hedges, hedged.hedges);
  EXPECT_EQ(again.hedges_won, hedged.hedges_won);
}

TEST(CallRpcTest, AtMostOneHedgePerLogicalCall) {
  // Every attempt times out slowly, so every attempt is hedge-eligible;
  // the policy still charges exactly one backup per logical RPC.
  SimulatedNetwork net;
  NodeAddress node = net.Register(Echo());
  net.InstallFaultPlan(PlanWith(&FaultPlan::timeout, 1.0));
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.jitter = 0.0;
  RpcScope scope(policy);
  HedgePolicy hedge;
  hedge.enabled = true;
  hedge.threshold_ms = 5.0;
  scope.set_hedge(hedge);
  EXPECT_FALSE(CallRpc(&net, 0, node, "op", {}).ok());
  EXPECT_EQ(net.stats().hedges, 1u);
  EXPECT_EQ(net.stats().hedges_won, 0u);
}

// ------------------------------------- circuit breaker / health consult

TEST(CallRpcTest, OpenCircuitFailsFastWithNoTrafficAndNoEvidence) {
  SimulatedNetwork net;
  NodeAddress node = net.Register(Echo());
  HealthParams params;
  params.enabled = true;
  params.error_alpha = 1.0;
  params.error_threshold = 0.5;
  params.cooldown_ms = 250.0;
  HealthTracker tracker(params);
  tracker.Observe(node, /*ok=*/false, 10.0, /*now_ms=*/0.0);
  ASSERT_EQ(tracker.StateOf(node, 10.0), HealthTracker::CircuitState::kOpen);

  RetryPolicy policy;
  policy.max_attempts = 3;
  std::vector<HealthObservation> observations;
  RpcScope scope(policy);
  scope.set_health(&tracker, /*now_ms=*/10.0);
  scope.set_observations(&observations);
  EXPECT_EQ(CallRpc(&net, 0, node, "op", {}).status().code(),
            StatusCode::kUnavailable);
  // Refused locally: nothing on the wire, no retries burned, and no
  // health observation — a refused send says nothing about the peer.
  EXPECT_EQ(net.stats().messages, 0u);
  EXPECT_EQ(net.stats().circuit_blocked, 1u);
  EXPECT_TRUE(observations.empty());
}

TEST(CallRpcTest, HalfOpenCircuitLetsTheProbeThrough) {
  SimulatedNetwork net;
  NodeAddress node = net.Register(Echo());
  HealthParams params;
  params.enabled = true;
  params.error_alpha = 1.0;
  params.error_threshold = 0.5;
  params.cooldown_ms = 250.0;
  HealthTracker tracker(params);
  tracker.Observe(node, /*ok=*/false, 10.0, /*now_ms=*/0.0);

  RetryPolicy policy;
  std::vector<HealthObservation> observations;
  RpcScope scope(policy);
  scope.set_health(&tracker, /*now_ms=*/300.0);  // past the cooldown
  scope.set_observations(&observations);
  EXPECT_TRUE(CallRpc(&net, 0, node, "op", {}).ok());
  EXPECT_EQ(net.stats().messages, 2u);  // request + response
  EXPECT_EQ(net.stats().circuit_blocked, 0u);
  ASSERT_EQ(observations.size(), 1u);
  EXPECT_EQ(observations[0].dst, node);
  EXPECT_TRUE(observations[0].ok);
  EXPECT_GT(observations[0].latency_ms, 0.0);
}

TEST(CallRpcTest, ObservationsRecordTheFinalOutcomePerLogicalCall) {
  SimulatedNetwork net;
  NodeAddress good = net.Register(Echo());
  NodeAddress bad = net.Register(Echo());
  ASSERT_TRUE(net.SetNodeUp(bad, false).ok());
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.jitter = 0.0;
  policy.initial_backoff_ms = 5.0;
  std::vector<HealthObservation> observations;
  RpcScope scope(policy);
  scope.set_observations(&observations);
  EXPECT_TRUE(CallRpc(&net, 0, good, "op", {}).ok());
  EXPECT_FALSE(CallRpc(&net, 0, bad, "op", {}).ok());
  // One observation per LOGICAL call: the bad node's three attempts and
  // their backoff collapse into a single failed observation whose
  // latency includes the waiting.
  ASSERT_EQ(observations.size(), 2u);
  EXPECT_EQ(observations[0].dst, good);
  EXPECT_TRUE(observations[0].ok);
  EXPECT_EQ(observations[1].dst, bad);
  EXPECT_FALSE(observations[1].ok);
  EXPECT_GT(observations[1].latency_ms, net.stats().retry_backoff_ms);
}

TEST(CallRpcTest, NoScopeMeansOneRawAttempt) {
  SimulatedNetwork net;
  NodeAddress node = net.Register(Echo());
  ASSERT_TRUE(net.SetNodeUp(node, false).ok());
  EXPECT_EQ(CallRpc(&net, 0, node, "op", {}).status().code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(net.stats().messages, 1u);
  EXPECT_EQ(net.stats().rpc_retries, 0u);
}

TEST(CallRpcTest, RetriesTransientUnavailabilityUntilSuccess) {
  SimulatedNetwork net;
  int calls = 0;
  NodeAddress node = net.Register([&calls](const Message& msg) -> Result<Bytes> {
    if (++calls < 3) return Status::Unavailable("warming up");
    return msg.payload;
  });
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_ms = 5.0;
  policy.backoff_multiplier = 2.0;
  policy.jitter = 0.0;
  RpcScope scope(policy);
  auto r = CallRpc(&net, 0, node, "op", Bytes(4, 9));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), Bytes(4, 9));
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(net.stats().rpc_retries, 2u);
  // Backoff (5 + 10 ms) is charged to simulated latency.
  EXPECT_DOUBLE_EQ(net.stats().retry_backoff_ms, 15.0);
}

TEST(CallRpcTest, GivesUpAfterMaxAttempts) {
  SimulatedNetwork net;
  NodeAddress node = net.Register(Echo());
  ASSERT_TRUE(net.SetNodeUp(node, false).ok());
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.jitter = 0.0;
  RpcScope scope(policy);
  EXPECT_EQ(CallRpc(&net, 0, node, "op", {}).status().code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(net.stats().messages, 4u);
  EXPECT_EQ(net.stats().rpc_retries, 3u);
}

TEST(CallRpcTest, PermanentErrorsAreNotRetried) {
  SimulatedNetwork net;
  int calls = 0;
  NodeAddress node = net.Register([&calls](const Message&) -> Result<Bytes> {
    ++calls;
    return Status::NotFound("no such key");
  });
  RetryPolicy policy;
  policy.max_attempts = 5;
  RpcScope scope(policy);
  EXPECT_EQ(CallRpc(&net, 0, node, "op", {}).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(calls, 1);
}

TEST(CallRpcTest, ExpiredDeadlineFailsFastWithoutSending) {
  SimulatedNetwork net;
  NodeAddress node = net.Register(Echo());
  RetryPolicy policy;
  policy.max_attempts = 3;
  // Budget below the cost of a single message: the first call's latency
  // exhausts it.
  RpcScope scope(policy, /*deadline_budget_ms=*/0.5);
  ASSERT_TRUE(CallRpc(&net, 0, node, "op", {}).ok());
  EXPECT_TRUE(RpcScope::DeadlineExpired());
  uint64_t sent = net.stats().messages;
  EXPECT_EQ(CallRpc(&net, 0, node, "op", {}).status().code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(net.stats().messages, sent);  // nothing left the caller
}

TEST(CallRpcTest, BackoffDrawsDownTheDeadlineBudget) {
  SimulatedNetwork net;
  NodeAddress node = net.Register(Echo());
  ASSERT_TRUE(net.SetNodeUp(node, false).ok());
  RetryPolicy policy;
  policy.max_attempts = 10;
  policy.initial_backoff_ms = 60.0;
  policy.backoff_multiplier = 2.0;
  policy.jitter = 0.0;
  RpcScope scope(policy, /*deadline_budget_ms=*/100.0);
  auto r = CallRpc(&net, 0, node, "op", {});
  EXPECT_FALSE(r.ok());
  // The 60 + 120 ms backoffs blow the 100 ms budget long before the
  // attempt budget runs out.
  EXPECT_LT(net.stats().messages, 10u);
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(CallRpcTest, RetriesDefeatInjectedTransientOutages) {
  RetryPolicy single;
  single.max_attempts = 1;
  RetryPolicy retrying;
  retrying.max_attempts = 4;
  retrying.jitter = 0.0;

  auto successes = [](const RetryPolicy& policy) {
    SimulatedNetwork net;
    NodeAddress node = net.Register(Echo());
    net.InstallFaultPlan(PlanWith(&FaultPlan::unavailable, 0.6, /*seed=*/42));
    size_t ok_count = 0;
    for (uint64_t ctx = 1; ctx <= 100; ++ctx) {
      RpcScope scope(policy, 0.0, ctx);
      if (CallRpc(&net, 0, node, "op", {}).ok()) ++ok_count;
    }
    return ok_count;
  };
  size_t without = successes(single);
  size_t with = successes(retrying);
  EXPECT_GT(with, without);
  // Deterministic: the same sweep yields the same counts.
  EXPECT_EQ(successes(retrying), with);
}

}  // namespace
}  // namespace iqn

#include "net/network.h"

#include <gtest/gtest.h>

namespace iqn {
namespace {

Bytes Payload(std::initializer_list<uint8_t> bytes) { return Bytes(bytes); }

TEST(NetworkTest, RpcReachesHandlerAndReturnsResponse) {
  SimulatedNetwork net;
  NodeAddress echo = net.Register([](const Message& msg) -> Result<Bytes> {
    Bytes reply = msg.payload;
    reply.push_back(0xff);
    return reply;
  });
  auto r = net.Rpc(kInvalidAddress, echo, "echo", Payload({1, 2}));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), Payload({1, 2, 0xff}));
}

TEST(NetworkTest, HandlerSeesAddressesAndType) {
  SimulatedNetwork net;
  NodeAddress target = net.Register([](const Message& msg) -> Result<Bytes> {
    EXPECT_EQ(msg.type, "probe");
    EXPECT_EQ(msg.src, 42u);
    Bytes reply;
    reply.push_back(static_cast<uint8_t>(msg.dst));
    return reply;
  });
  auto r = net.Rpc(42, target, "probe", {});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()[0], static_cast<uint8_t>(target));
}

TEST(NetworkTest, UnregisteredDestinationFails) {
  SimulatedNetwork net;
  auto r = net.Rpc(0, 99, "x", {});
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(NetworkTest, DownNodeIsUnavailable) {
  SimulatedNetwork net;
  NodeAddress node = net.Register([](const Message&) -> Result<Bytes> {
    return Bytes{};
  });
  ASSERT_TRUE(net.SetNodeUp(node, false).ok());
  EXPECT_FALSE(net.IsNodeUp(node));
  EXPECT_EQ(net.Rpc(0, node, "x", {}).status().code(),
            StatusCode::kUnavailable);
  ASSERT_TRUE(net.SetNodeUp(node, true).ok());
  EXPECT_TRUE(net.Rpc(0, node, "x", {}).ok());
}

TEST(NetworkTest, SetNodeUpOnUnknownNodeFails) {
  SimulatedNetwork net;
  EXPECT_FALSE(net.SetNodeUp(7, false).ok());
}

TEST(NetworkTest, StatsCountMessagesAndBytes) {
  SimulatedNetwork net;
  NodeAddress node = net.Register([](const Message&) -> Result<Bytes> {
    return Bytes(10, 0);
  });
  net.ResetStats();
  ASSERT_TRUE(net.Rpc(0, node, "op", Bytes(100, 0)).ok());
  const NetworkStats& stats = net.stats();
  EXPECT_EQ(stats.messages, 2u);  // request + response
  // Request: 20 + 2 + 100; response: 20 + 10.
  EXPECT_EQ(stats.bytes, 122u + 30u);
  EXPECT_EQ(stats.messages_by_type.at("op"), 2u);
}

TEST(NetworkTest, FailedRpcChargesOnlyRequest) {
  SimulatedNetwork net;
  NodeAddress node = net.Register([](const Message&) -> Result<Bytes> {
    return Status::Internal("boom");
  });
  net.ResetStats();
  EXPECT_FALSE(net.Rpc(0, node, "op", {}).ok());
  EXPECT_EQ(net.stats().messages, 1u);
}

TEST(NetworkTest, LatencyModelAccumulates) {
  LatencyModel latency;
  latency.per_message_ms = 2.0;
  latency.per_byte_ms = 0.01;
  SimulatedNetwork net(latency);
  NodeAddress node = net.Register([](const Message&) -> Result<Bytes> {
    return Bytes{};
  });
  ASSERT_TRUE(net.Rpc(0, node, "ab", {}).ok());
  // Request wire = 20 + 2 type bytes; response wire = 20 + 0 payload.
  EXPECT_NEAR(net.stats().latency_ms, 2 * 2.0 + 0.01 * (22 + 20), 1e-9);
}

TEST(NetworkTest, NestedRpcFromHandler) {
  SimulatedNetwork net;
  NodeAddress leaf = net.Register([](const Message&) -> Result<Bytes> {
    return Payload({7});
  });
  NodeAddress relay =
      net.Register([&net, leaf](const Message& msg) -> Result<Bytes> {
        return net.Rpc(msg.dst, leaf, "leaf", {});
      });
  auto r = net.Rpc(0, relay, "relay", {});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), Payload({7}));
  EXPECT_EQ(net.stats().messages, 4u);  // two request/response pairs
}

TEST(NetworkTest, HandlerMayRegisterNewNodes) {
  SimulatedNetwork net;
  NodeAddress spawner = net.Register([&net](const Message&) -> Result<Bytes> {
    net.Register([](const Message&) -> Result<Bytes> { return Bytes{}; });
    return Bytes{};
  });
  EXPECT_TRUE(net.Rpc(0, spawner, "spawn", {}).ok());
  EXPECT_EQ(net.num_nodes(), 2u);
}

TEST(MessageTest, WireSizeAccountsHeaderTypePayload) {
  Message msg;
  msg.type = "abcd";
  msg.payload = Bytes(16, 0);
  EXPECT_EQ(msg.WireSize(), 20u + 4 + 16);
}

}  // namespace
}  // namespace iqn

#include "synopses/estimators.h"

#include <gtest/gtest.h>

#include "synopses/bloom_filter.h"
#include "synopses/hash_sketch.h"
#include "synopses/min_wise.h"

namespace iqn {
namespace {

std::vector<DocId> Range(DocId lo, DocId hi) {
  std::vector<DocId> ids;
  for (DocId id = lo; id < hi; ++id) ids.push_back(id);
  return ids;
}

TEST(ExactMeasuresTest, Overlap) {
  EXPECT_EQ(ExactOverlap(Range(0, 10), Range(5, 15)), 5u);
  EXPECT_EQ(ExactOverlap(Range(0, 10), Range(10, 20)), 0u);
  EXPECT_EQ(ExactOverlap({}, Range(0, 5)), 0u);
  // Duplicates counted once.
  EXPECT_EQ(ExactOverlap({1, 1, 2}, {1, 2, 2}), 2u);
}

TEST(ExactMeasuresTest, Resemblance) {
  // |∩| = 5, |∪| = 15.
  EXPECT_DOUBLE_EQ(ExactResemblance(Range(0, 10), Range(5, 15)), 5.0 / 15.0);
  EXPECT_DOUBLE_EQ(ExactResemblance(Range(0, 10), Range(0, 10)), 1.0);
  EXPECT_DOUBLE_EQ(ExactResemblance({}, {}), 0.0);
}

TEST(ExactMeasuresTest, ContainmentIsAsymmetric) {
  // Containment(A, B) = |A∩B| / |B|.
  std::vector<DocId> a = Range(0, 100), b = Range(90, 110);
  EXPECT_DOUBLE_EQ(ExactContainment(a, b), 10.0 / 20.0);
  EXPECT_DOUBLE_EQ(ExactContainment(b, a), 10.0 / 100.0);
  EXPECT_DOUBLE_EQ(ExactContainment(a, {}), 0.0);
}

TEST(ExactMeasuresTest, NoveltyDefinition) {
  // Novelty(B|A) = |B - (A∩B)|.
  EXPECT_EQ(ExactNovelty(Range(5, 15), Range(0, 10)), 5u);
  EXPECT_EQ(ExactNovelty(Range(0, 10), Range(0, 10)), 0u);
  EXPECT_EQ(ExactNovelty(Range(0, 10), {}), 10u);
}

TEST(ExactMeasuresTest, SubsetProblemFromSection31) {
  // The paper's motivating example: S_A ⊂ S_C with |S_A| << |S_C| has LOW
  // containment/resemblance yet adds NOTHING — novelty captures this.
  std::vector<DocId> small = Range(0, 10);    // S_A
  std::vector<DocId> big = Range(0, 1000);    // S_C (superset)
  EXPECT_LT(ExactResemblance(big, small), 0.02);
  EXPECT_EQ(ExactNovelty(small, big), 0u);  // nothing new despite low R
}

TEST(ConversionTest, OverlapFromResemblanceInvertsDefinition) {
  // |A| = 100, |B| = 50, I = 25 -> R = 25/125.
  double r = 25.0 / 125.0;
  EXPECT_NEAR(OverlapFromResemblance(r, 100, 50), 25.0, 1e-9);
  EXPECT_DOUBLE_EQ(OverlapFromResemblance(0.0, 100, 50), 0.0);
  // R = 1 with equal sizes -> full overlap.
  EXPECT_NEAR(OverlapFromResemblance(1.0, 80, 80), 80.0, 1e-9);
}

TEST(ConversionTest, OverlapClampedToSmallerSet) {
  EXPECT_LE(OverlapFromResemblance(0.9, 1000, 10), 10.0);
}

TEST(ConversionTest, ContainmentResemblanceRoundTrip) {
  double card_a = 200, card_b = 50;
  for (double c : {0.0, 0.2, 0.5, 1.0}) {
    double r = ResemblanceFromContainment(c, card_a, card_b);
    EXPECT_NEAR(ContainmentFromResemblance(r, card_a, card_b), c, 1e-9);
  }
}

template <typename Synopsis>
void FillSynopsis(Synopsis* syn, const std::vector<DocId>& ids) {
  for (DocId id : ids) syn->Add(id);
}

TEST(EstimateNoveltyTest, MipsPath) {
  UniversalHashFamily family(7);
  auto ref = MinWiseSynopsis::Create(256, family);
  auto cand = MinWiseSynopsis::Create(256, family);
  ASSERT_TRUE(ref.ok() && cand.ok());
  FillSynopsis(&ref.value(), Range(0, 2000));
  FillSynopsis(&cand.value(), Range(1000, 3000));  // true novelty = 1000
  auto novelty = EstimateNovelty(ref.value(), 2000, cand.value(), 2000);
  ASSERT_TRUE(novelty.ok());
  EXPECT_NEAR(novelty.value(), 1000.0, 350.0);
}

TEST(EstimateNoveltyTest, HashSketchPath) {
  auto ref = HashSketch::Create(64, 64);
  auto cand = HashSketch::Create(64, 64);
  ASSERT_TRUE(ref.ok() && cand.ok());
  FillSynopsis(&ref.value(), Range(0, 10000));
  FillSynopsis(&cand.value(), Range(5000, 15000));  // true novelty = 5000
  auto novelty = EstimateNovelty(ref.value(), 10000, cand.value(), 10000);
  ASSERT_TRUE(novelty.ok());
  // Hash sketches are coarse; demand the right order of magnitude and
  // the hard clamp to [0, |B|].
  EXPECT_GE(novelty.value(), 0.0);
  EXPECT_LE(novelty.value(), 10000.0);
}

TEST(EstimateNoveltyTest, BloomFilterPath) {
  auto ref = BloomFilter::Create(1 << 15, 4);
  auto cand = BloomFilter::Create(1 << 15, 4);
  ASSERT_TRUE(ref.ok() && cand.ok());
  FillSynopsis(&ref.value(), Range(0, 1000));
  FillSynopsis(&cand.value(), Range(500, 1500));  // true novelty = 500
  auto novelty = EstimateNovelty(ref.value(), 1000, cand.value(), 1000);
  ASSERT_TRUE(novelty.ok());
  EXPECT_NEAR(novelty.value(), 500.0, 200.0);
}

TEST(EstimateNoveltyTest, SubsetCandidateHasNearZeroNovelty) {
  UniversalHashFamily family(7);
  auto ref = MinWiseSynopsis::Create(256, family);
  auto cand = MinWiseSynopsis::Create(256, family);
  ASSERT_TRUE(ref.ok() && cand.ok());
  FillSynopsis(&ref.value(), Range(0, 5000));
  FillSynopsis(&cand.value(), Range(0, 500));  // strict subset
  auto novelty = EstimateNovelty(ref.value(), 5000, cand.value(), 500);
  ASSERT_TRUE(novelty.ok());
  EXPECT_LT(novelty.value(), 120.0);
}

TEST(EstimateNoveltyTest, MixedTypesRefuse) {
  UniversalHashFamily family(7);
  auto mips = MinWiseSynopsis::Create(64, family);
  auto bf = BloomFilter::Create(2048, 4);
  ASSERT_TRUE(mips.ok() && bf.ok());
  EXPECT_EQ(
      EstimateNovelty(mips.value(), 10, bf.value(), 10).status().code(),
      StatusCode::kInvalidArgument);
}

TEST(EstimateOverlapTest, MipsMatchesGroundTruth) {
  UniversalHashFamily family(11);
  auto a = MinWiseSynopsis::Create(256, family);
  auto b = MinWiseSynopsis::Create(256, family);
  ASSERT_TRUE(a.ok() && b.ok());
  FillSynopsis(&a.value(), Range(0, 3000));
  FillSynopsis(&b.value(), Range(2000, 5000));  // true overlap = 1000
  auto overlap = EstimateOverlap(a.value(), 3000, b.value(), 3000);
  ASSERT_TRUE(overlap.ok());
  EXPECT_NEAR(overlap.value(), 1000.0, 400.0);
}

TEST(SynopsisTypeNameTest, AllNamesDistinct) {
  EXPECT_STREQ(SynopsisTypeName(SynopsisType::kBloomFilter), "BF");
  EXPECT_STREQ(SynopsisTypeName(SynopsisType::kHashSketch), "HS");
  EXPECT_STREQ(SynopsisTypeName(SynopsisType::kMinWise), "MIPs");
  EXPECT_STREQ(SynopsisTypeName(SynopsisType::kLogLog), "LL");
}

}  // namespace
}  // namespace iqn

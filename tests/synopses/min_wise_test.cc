#include "synopses/min_wise.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "util/random.h"

namespace iqn {
namespace {

const UniversalHashFamily& Family() {
  static const UniversalHashFamily family(12345);
  return family;
}

MinWiseSynopsis Make(size_t n = 64) {
  auto r = MinWiseSynopsis::Create(n, Family());
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

MinWiseSynopsis FromSet(const std::vector<DocId>& ids, size_t n = 64) {
  MinWiseSynopsis mw = Make(n);
  for (DocId id : ids) mw.Add(id);
  return mw;
}

std::vector<DocId> Range(DocId lo, DocId hi) {
  std::vector<DocId> ids;
  for (DocId id = lo; id < hi; ++id) ids.push_back(id);
  return ids;
}

TEST(MinWiseTest, CreateValidatesParameters) {
  EXPECT_FALSE(MinWiseSynopsis::Create(0, Family()).ok());
  EXPECT_FALSE(MinWiseSynopsis::Create(4097, Family()).ok());
  EXPECT_TRUE(MinWiseSynopsis::Create(1, Family()).ok());
}

TEST(MinWiseTest, EmptyState) {
  MinWiseSynopsis mw = Make();
  EXPECT_TRUE(mw.Empty());
  EXPECT_DOUBLE_EQ(mw.EstimateCardinality(), 0.0);
  for (uint64_t m : mw.mins()) EXPECT_EQ(m, MinWiseSynopsis::kEmptyMin);
}

TEST(MinWiseTest, AddLowersMinima) {
  MinWiseSynopsis mw = Make();
  mw.Add(42);
  EXPECT_FALSE(mw.Empty());
  for (uint64_t m : mw.mins()) EXPECT_LT(m, MinWiseSynopsis::kEmptyMin);
}

TEST(MinWiseTest, OrderInsensitiveAndDuplicateInsensitive) {
  MinWiseSynopsis a = FromSet({1, 2, 3, 4, 5});
  MinWiseSynopsis b = FromSet({5, 4, 3, 2, 1, 1, 3, 5});
  EXPECT_EQ(a.mins(), b.mins());
}

TEST(MinWiseTest, IdenticalSetsResembleFully) {
  MinWiseSynopsis a = FromSet(Range(0, 1000));
  MinWiseSynopsis b = FromSet(Range(0, 1000));
  auto r = a.EstimateResemblance(b);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value(), 1.0);
}

TEST(MinWiseTest, DisjointSetsResembleZero) {
  MinWiseSynopsis a = FromSet(Range(0, 1000));
  MinWiseSynopsis b = FromSet(Range(10000, 11000));
  auto r = a.EstimateResemblance(b);
  ASSERT_TRUE(r.ok());
  EXPECT_LT(r.value(), 0.05);
}

TEST(MinWiseTest, HalfOverlapResemblesOneThird) {
  // |A∩B| = 1000, |A∪B| = 3000 -> R = 1/3.
  MinWiseSynopsis a = FromSet(Range(0, 2000), 256);
  MinWiseSynopsis b = FromSet(Range(1000, 3000), 256);
  auto r = a.EstimateResemblance(b);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.value(), 1.0 / 3.0, 0.1);
}

TEST(MinWiseTest, BothEmptyResembleZero) {
  MinWiseSynopsis a = Make(), b = Make();
  auto r = a.EstimateResemblance(b);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value(), 0.0);
}

TEST(MinWiseTest, UnionEqualsSynopsisOfUnion) {
  // Position-wise min is exact: merging synopses of A and B gives the
  // synopsis of A ∪ B, not an approximation of it.
  MinWiseSynopsis a = FromSet(Range(0, 500));
  MinWiseSynopsis b = FromSet(Range(300, 900));
  MinWiseSynopsis u = FromSet(Range(0, 900));
  ASSERT_TRUE(a.MergeUnion(b).ok());
  EXPECT_EQ(a.mins(), u.mins());
}

TEST(MinWiseTest, HeterogeneousLengthsTruncateToCommonPrefix) {
  MinWiseSynopsis long_syn = FromSet(Range(0, 100), 128);
  MinWiseSynopsis short_syn = FromSet(Range(50, 150), 32);
  // Resemblance works across lengths (Sec. 5.3).
  auto r = long_syn.EstimateResemblance(short_syn);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r.value(), 0.05);
  // Union truncates to min(N1, N2).
  ASSERT_TRUE(long_syn.MergeUnion(short_syn).ok());
  EXPECT_EQ(long_syn.num_permutations(), 32u);
  // And matches the direct 32-permutation synopsis of the union.
  MinWiseSynopsis direct = FromSet(Range(0, 150), 32);
  EXPECT_EQ(long_syn.mins(), direct.mins());
}

TEST(MinWiseTest, IntersectionIsConservative) {
  MinWiseSynopsis a = FromSet(Range(0, 1000));
  MinWiseSynopsis b = FromSet(Range(500, 1500));
  MinWiseSynopsis true_inter = FromSet(Range(500, 1000));
  ASSERT_TRUE(a.MergeIntersect(b).ok());
  // Conservative (paper Sec. 6.1): the TRUE minimum over A∩B can be no
  // lower than the max of the per-set minima, so the heuristic value is a
  // lower bound on the true intersection's minimum — it approximates a
  // superset of the intersection.
  for (size_t i = 0; i < a.num_permutations(); ++i) {
    EXPECT_LE(a.mins()[i], true_inter.mins()[i]);
  }
}

TEST(MinWiseTest, DifferentFamiliesRefuse) {
  UniversalHashFamily other(999);
  auto b = MinWiseSynopsis::Create(64, other);
  ASSERT_TRUE(b.ok());
  MinWiseSynopsis a = Make();
  EXPECT_EQ(a.EstimateResemblance(b.value()).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(a.MergeUnion(b.value()).code(), StatusCode::kInvalidArgument);
}

TEST(MinWiseTest, CardinalityEstimateAccuracy) {
  for (size_t n : {100u, 1000u, 10000u}) {
    MinWiseSynopsis mw = Make(256);
    Rng rng(n);
    std::unordered_set<DocId> seen;
    while (seen.size() < n) {
      DocId id = rng.Next();
      if (seen.insert(id).second) mw.Add(id);
    }
    double est = mw.EstimateCardinality();
    EXPECT_NEAR(est, n, n * 0.25) << "n=" << n;
  }
}

TEST(MinWiseTest, SizeBitsIs32PerPermutation) {
  EXPECT_EQ(Make(64).SizeBits(), 2048u);
  EXPECT_EQ(Make(32).SizeBits(), 1024u);
}

TEST(MinWiseTest, CountDistinctValues) {
  MinWiseSynopsis mw = Make(16);
  EXPECT_EQ(mw.CountDistinctValues(), 0u);  // sentinel not counted
  mw.Add(7);
  EXPECT_GT(mw.CountDistinctValues(), 0u);
}

TEST(MinWiseTest, FromMinsValidates) {
  std::vector<uint64_t> ok_mins(8, 123);
  EXPECT_TRUE(MinWiseSynopsis::FromMins(Family(), ok_mins).ok());
  std::vector<uint64_t> bad_mins(8, MinWiseSynopsis::kEmptyMin + 1);
  EXPECT_FALSE(MinWiseSynopsis::FromMins(Family(), bad_mins).ok());
  EXPECT_FALSE(MinWiseSynopsis::FromMins(Family(), {}).ok());
}

TEST(MinWiseTest, CloneIsIndependent) {
  MinWiseSynopsis mw = FromSet({1, 2, 3});
  auto clone = mw.Clone();
  clone->Add(4);
  EXPECT_NE(static_cast<MinWiseSynopsis*>(clone.get())->mins(), mw.mins());
}

}  // namespace
}  // namespace iqn

#include "synopses/reference_synopsis.h"

#include <gtest/gtest.h>

#include "synopses/min_wise.h"

namespace iqn {
namespace {

const UniversalHashFamily& Family() {
  static const UniversalHashFamily family(321);
  return family;
}

std::unique_ptr<SetSynopsis> MipsOf(DocId lo, DocId hi, size_t n = 256) {
  auto r = MinWiseSynopsis::Create(n, Family());
  EXPECT_TRUE(r.ok());
  auto syn = std::make_unique<MinWiseSynopsis>(std::move(r).value());
  for (DocId id = lo; id < hi; ++id) syn->Add(id);
  return syn;
}

TEST(ReferenceSynopsisTest, CreateValidates) {
  EXPECT_FALSE(ReferenceSynopsis::Create(nullptr, 0).ok());
  EXPECT_FALSE(ReferenceSynopsis::Create(MipsOf(0, 0), -1.0).ok());
  EXPECT_TRUE(ReferenceSynopsis::Create(MipsOf(0, 0), 0.0).ok());
}

TEST(ReferenceSynopsisTest, SeedCardinalityIsTracked) {
  auto ref = ReferenceSynopsis::Create(MipsOf(0, 100), 100);
  ASSERT_TRUE(ref.ok());
  EXPECT_DOUBLE_EQ(ref.value().estimated_cardinality(), 100.0);
}

TEST(ReferenceSynopsisTest, AbsorbCreditsNovelty) {
  auto ref = ReferenceSynopsis::Create(MipsOf(0, 1000), 1000);
  ASSERT_TRUE(ref.ok());
  auto cand = MipsOf(500, 1500);  // true novelty = 500
  auto credited = ref.value().Absorb(*cand, 1000);
  ASSERT_TRUE(credited.ok());
  EXPECT_NEAR(credited.value(), 500.0, 200.0);
  EXPECT_NEAR(ref.value().estimated_cardinality(), 1500.0, 200.0);
}

TEST(ReferenceSynopsisTest, SecondAbsorbOfSamePeerAddsNothing) {
  // The IQN property: once a collection is absorbed, re-offering the same
  // collection has (near-)zero novelty.
  auto ref = ReferenceSynopsis::Create(MipsOf(0, 1000), 1000);
  ASSERT_TRUE(ref.ok());
  auto cand = MipsOf(500, 1500);
  ASSERT_TRUE(ref.value().Absorb(*cand, 1000).ok());
  auto again = ref.value().NoveltyOf(*cand, 1000);
  ASSERT_TRUE(again.ok());
  EXPECT_LT(again.value(), 150.0);
}

TEST(ReferenceSynopsisTest, IterativeAbsorptionPrefersComplement) {
  // Reference covers 0..1000. A redundant candidate (0..1000) must score
  // far below a complementary one (1000..2000).
  auto ref = ReferenceSynopsis::Create(MipsOf(0, 1000), 1000);
  ASSERT_TRUE(ref.ok());
  auto redundant = MipsOf(0, 1000);
  auto complement = MipsOf(1000, 2000);
  auto nov_red = ref.value().NoveltyOf(*redundant, 1000);
  auto nov_com = ref.value().NoveltyOf(*complement, 1000);
  ASSERT_TRUE(nov_red.ok() && nov_com.ok());
  EXPECT_GT(nov_com.value(), nov_red.value() * 3);
}

TEST(ReferenceSynopsisTest, CloneRefIsIndependent) {
  auto ref = ReferenceSynopsis::Create(MipsOf(0, 100), 100);
  ASSERT_TRUE(ref.ok());
  ReferenceSynopsis copy = ref.value().CloneRef();
  auto cand = MipsOf(100, 300);
  ASSERT_TRUE(copy.Absorb(*cand, 200).ok());
  EXPECT_DOUBLE_EQ(ref.value().estimated_cardinality(), 100.0);
  EXPECT_GT(copy.estimated_cardinality(), 100.0);
}

TEST(ReferenceSynopsisTest, EmptySeedWorks) {
  auto ref = ReferenceSynopsis::Create(MipsOf(0, 0), 0.0);
  ASSERT_TRUE(ref.ok());
  auto cand = MipsOf(0, 800);
  auto credited = ref.value().Absorb(*cand, 800);
  ASSERT_TRUE(credited.ok());
  EXPECT_NEAR(credited.value(), 800.0, 1.0);  // everything is novel
}

}  // namespace
}  // namespace iqn

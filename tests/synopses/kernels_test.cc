// Kernel-equivalence property tests: the word-level kernels behind the
// Bloom/MIPs/hash-sketch hot loops must produce exactly the same bits and
// counts as the naive scalar oracles in kernels::scalar, on arbitrary
// random inputs — including bit counts that are not multiples of 64 and
// inputs with stray bits beyond num_bits. On top of the raw kernels, the
// synopsis classes themselves are cross-checked against set-level
// reference computations.

#include "synopses/kernels.h"

#include <gtest/gtest.h>

#include <vector>

#include "synopses/bloom_filter.h"
#include "synopses/hash_sketch.h"
#include "synopses/min_wise.h"
#include "util/hash.h"
#include "util/random.h"

namespace iqn {
namespace {

using kernels::AndOrCounts;

std::vector<uint64_t> RandomWords(Rng* rng, size_t n) {
  std::vector<uint64_t> words(n);
  for (auto& w : words) w = rng->Next();
  return words;
}

// Word counts chosen to hit the unroll boundaries: 0, below the unroll
// width, exactly at it, one past it, and a large odd count.
const size_t kWordCounts[] = {0, 1, 2, 3, 4, 5, 8, 17, 33, 128};

TEST(KernelsTest, TailMask) {
  EXPECT_EQ(kernels::TailMask(64), ~uint64_t{0});
  EXPECT_EQ(kernels::TailMask(128), ~uint64_t{0});
  EXPECT_EQ(kernels::TailMask(1), uint64_t{1});
  EXPECT_EQ(kernels::TailMask(65), uint64_t{1});
  EXPECT_EQ(kernels::TailMask(8), uint64_t{0xff});
  EXPECT_EQ(kernels::TailMask(100), (uint64_t{1} << 36) - 1);
}

TEST(KernelsTest, BitwiseMergesMatchScalarOracle) {
  Rng rng(7);
  for (size_t n : kWordCounts) {
    for (int round = 0; round < 50; ++round) {
      std::vector<uint64_t> a = RandomWords(&rng, n);
      std::vector<uint64_t> b = RandomWords(&rng, n);

      std::vector<uint64_t> got = a, want = a;
      kernels::OrWords(got.data(), b.data(), n);
      kernels::scalar::OrWords(want.data(), b.data(), n);
      EXPECT_EQ(got, want);

      got = a;
      want = a;
      kernels::AndWords(got.data(), b.data(), n);
      kernels::scalar::AndWords(want.data(), b.data(), n);
      EXPECT_EQ(got, want);

      got = a;
      want = a;
      kernels::AndNotWords(got.data(), b.data(), n);
      kernels::scalar::AndNotWords(want.data(), b.data(), n);
      EXPECT_EQ(got, want);
    }
  }
}

TEST(KernelsTest, PopCountsMatchScalarOracle) {
  Rng rng(11);
  for (size_t n : kWordCounts) {
    for (int round = 0; round < 50; ++round) {
      std::vector<uint64_t> a = RandomWords(&rng, n);
      std::vector<uint64_t> b = RandomWords(&rng, n);
      EXPECT_EQ(kernels::PopCountWords(a.data(), n),
                kernels::scalar::PopCountWords(a.data(), n));
      AndOrCounts got = kernels::PopCountAndOr(a.data(), b.data(), n);
      AndOrCounts want = kernels::scalar::PopCountAndOr(a.data(), b.data(), n);
      EXPECT_EQ(got.and_bits, want.and_bits);
      EXPECT_EQ(got.or_bits, want.or_bits);
    }
  }
}

TEST(KernelsTest, PopCountPrefixHandlesNonAlignedBitCounts) {
  Rng rng(13);
  // Deliberately includes num_bits whose final word carries stray bits
  // beyond the prefix — PopCountPrefix must ignore them.
  const size_t bit_counts[] = {1, 7, 8, 63, 64, 65, 100, 127, 128,
                               129, 1000, 1024, 4099};
  for (size_t num_bits : bit_counts) {
    size_t words = (num_bits + 63) / 64;
    for (int round = 0; round < 50; ++round) {
      std::vector<uint64_t> a = RandomWords(&rng, words);
      EXPECT_EQ(kernels::PopCountPrefix(a.data(), num_bits),
                kernels::scalar::PopCountPrefix(a.data(), num_bits))
          << "num_bits=" << num_bits;
    }
  }
}

TEST(KernelsTest, MinMaxAndMatchCountMatchScalarOracle) {
  Rng rng(17);
  const uint64_t sentinel = kMersenne61;
  for (size_t n : kWordCounts) {
    for (int round = 0; round < 50; ++round) {
      std::vector<uint64_t> a(n), b(n);
      for (size_t i = 0; i < n; ++i) {
        // Mix of agreeing values, sentinels, and arbitrary minima so the
        // match count sees every combination.
        a[i] = rng.Bernoulli(0.2) ? sentinel : rng.Uniform(1000);
        b[i] = rng.Bernoulli(0.2) ? sentinel
                                  : (rng.Bernoulli(0.3) ? a[i]
                                                        : rng.Uniform(1000));
      }
      std::vector<uint64_t> got = a, want = a;
      kernels::MinWords(got.data(), b.data(), n);
      kernels::scalar::MinWords(want.data(), b.data(), n);
      EXPECT_EQ(got, want);

      got = a;
      want = a;
      kernels::MaxWords(got.data(), b.data(), n);
      kernels::scalar::MaxWords(want.data(), b.data(), n);
      EXPECT_EQ(got, want);

      EXPECT_EQ(
          kernels::CountEqualNotSentinel(a.data(), b.data(), n, sentinel),
          kernels::scalar::CountEqualNotSentinel(a.data(), b.data(), n,
                                                 sentinel));
    }
  }
}

// ---------------------------------------------------------------------
// Synopsis-level equivalence: the refactored classes must behave exactly
// like per-bit / per-element reference computations on random sets,
// including non-word-aligned Bloom geometries.

std::vector<DocId> RandomDocs(Rng* rng, size_t count) {
  std::vector<DocId> docs(count);
  for (auto& d : docs) d = rng->Next();
  return docs;
}

TEST(KernelsTest, BloomFilterOpsMatchBitwiseReference) {
  Rng rng(23);
  // 100 and 4099 are deliberately not multiples of 64.
  for (size_t num_bits : {64u, 100u, 1024u, 4099u}) {
    for (int round = 0; round < 10; ++round) {
      auto a = BloomFilter::Create(num_bits, 4, 99);
      auto b = BloomFilter::Create(num_bits, 4, 99);
      ASSERT_TRUE(a.ok() && b.ok());
      for (DocId d : RandomDocs(&rng, 50)) a.value().Add(d);
      for (DocId d : RandomDocs(&rng, 50)) b.value().Add(d);

      // Union / intersect / difference / counts via the scalar oracle.
      size_t words = (num_bits + 63) / 64;
      std::vector<uint64_t> union_ref = a.value().words();
      kernels::scalar::OrWords(union_ref.data(), b.value().words().data(),
                               words);
      std::vector<uint64_t> inter_ref = a.value().words();
      kernels::scalar::AndWords(inter_ref.data(), b.value().words().data(),
                                words);
      std::vector<uint64_t> diff_ref = a.value().words();
      kernels::scalar::AndNotWords(diff_ref.data(), b.value().words().data(),
                                   words);

      BloomFilter u = a.value();
      ASSERT_TRUE(u.MergeUnion(b.value()).ok());
      EXPECT_EQ(u.words(), union_ref);
      EXPECT_EQ(u.CountSetBits(),
                kernels::scalar::PopCountPrefix(union_ref.data(), num_bits));

      BloomFilter inter = a.value();
      ASSERT_TRUE(inter.MergeIntersect(b.value()).ok());
      EXPECT_EQ(inter.words(), inter_ref);

      BloomFilter diff = a.value();
      ASSERT_TRUE(diff.MergeDifference(b.value()).ok());
      EXPECT_EQ(diff.words(), diff_ref);
    }
  }
}

TEST(KernelsTest, MinWiseOpsMatchElementwiseReference) {
  Rng rng(29);
  UniversalHashFamily family(123);
  for (int round = 0; round < 10; ++round) {
    auto a = MinWiseSynopsis::Create(64, family);
    auto b = MinWiseSynopsis::Create(64, family);
    ASSERT_TRUE(a.ok() && b.ok());
    for (DocId d : RandomDocs(&rng, 40)) a.value().Add(d);
    for (DocId d : RandomDocs(&rng, 40)) b.value().Add(d);

    std::vector<uint64_t> min_ref = a.value().mins();
    kernels::scalar::MinWords(min_ref.data(), b.value().mins().data(),
                              min_ref.size());
    MinWiseSynopsis u = a.value();
    ASSERT_TRUE(u.MergeUnion(b.value()).ok());
    EXPECT_EQ(u.mins(), min_ref);

    std::vector<uint64_t> max_ref = a.value().mins();
    kernels::scalar::MaxWords(max_ref.data(), b.value().mins().data(),
                              max_ref.size());
    MinWiseSynopsis inter = a.value();
    ASSERT_TRUE(inter.MergeIntersect(b.value()).ok());
    EXPECT_EQ(inter.mins(), max_ref);

    size_t matches = kernels::scalar::CountEqualNotSentinel(
        a.value().mins().data(), b.value().mins().data(), 64,
        MinWiseSynopsis::kEmptyMin);
    auto resemblance = a.value().EstimateResemblance(b.value());
    ASSERT_TRUE(resemblance.ok());
    EXPECT_DOUBLE_EQ(resemblance.value(),
                     static_cast<double>(matches) / 64.0);
  }
}

TEST(KernelsTest, HashSketchUnionMatchesBitwiseReference) {
  Rng rng(31);
  for (int round = 0; round < 10; ++round) {
    auto a = HashSketch::Create(16, 64, 7);
    auto b = HashSketch::Create(16, 64, 7);
    ASSERT_TRUE(a.ok() && b.ok());
    for (DocId d : RandomDocs(&rng, 60)) a.value().Add(d);
    for (DocId d : RandomDocs(&rng, 60)) b.value().Add(d);

    std::vector<uint64_t> union_ref = a.value().bitmaps();
    kernels::scalar::OrWords(union_ref.data(), b.value().bitmaps().data(),
                             union_ref.size());
    HashSketch u = a.value();
    ASSERT_TRUE(u.MergeUnion(b.value()).ok());
    EXPECT_EQ(u.bitmaps(), union_ref);
  }
}

}  // namespace
}  // namespace iqn

#include "synopses/serialization.h"

#include <gtest/gtest.h>

#include "synopses/bloom_filter.h"
#include "synopses/hash_sketch.h"
#include "synopses/loglog.h"
#include "synopses/min_wise.h"
#include "util/random.h"

namespace iqn {
namespace {

const UniversalHashFamily& Family() {
  static const UniversalHashFamily family(777);
  return family;
}

TEST(SerializationTest, BloomFilterRoundTrip) {
  auto bf = BloomFilter::Create(512, 3, 42);
  ASSERT_TRUE(bf.ok());
  for (DocId id = 0; id < 40; ++id) bf.value().Add(id);
  Bytes bytes = SerializeSynopsisToBytes(bf.value());
  auto rt = DeserializeSynopsisFromBytes(bytes);
  ASSERT_TRUE(rt.ok()) << rt.status().ToString();
  EXPECT_EQ(rt.value()->type(), SynopsisType::kBloomFilter);
  auto* rt_bf = static_cast<BloomFilter*>(rt.value().get());
  EXPECT_EQ(rt_bf->words(), bf.value().words());
  EXPECT_EQ(rt_bf->num_hashes(), 3u);
  EXPECT_EQ(rt_bf->seed(), 42u);
  for (DocId id = 0; id < 40; ++id) EXPECT_TRUE(rt_bf->MayContain(id));
}

TEST(SerializationTest, HashSketchRoundTrip) {
  auto hs = HashSketch::Create(16, 32, 9);
  ASSERT_TRUE(hs.ok());
  for (DocId id = 0; id < 500; ++id) hs.value().Add(id);
  Bytes bytes = SerializeSynopsisToBytes(hs.value());
  auto rt = DeserializeSynopsisFromBytes(bytes);
  ASSERT_TRUE(rt.ok());
  auto* rt_hs = static_cast<HashSketch*>(rt.value().get());
  EXPECT_EQ(rt_hs->bitmaps(), hs.value().bitmaps());
  EXPECT_DOUBLE_EQ(rt_hs->EstimateCardinality(),
                   hs.value().EstimateCardinality());
}

TEST(SerializationTest, MinWiseRoundTripPreservesFamily) {
  auto mw = MinWiseSynopsis::Create(48, Family());
  ASSERT_TRUE(mw.ok());
  for (DocId id = 0; id < 200; ++id) mw.value().Add(id);
  Bytes bytes = SerializeSynopsisToBytes(mw.value());
  auto rt = DeserializeSynopsisFromBytes(bytes);
  ASSERT_TRUE(rt.ok());
  auto* rt_mw = static_cast<MinWiseSynopsis*>(rt.value().get());
  EXPECT_EQ(rt_mw->family_seed(), Family().seed());
  EXPECT_EQ(rt_mw->mins(), mw.value().mins());
  // A deserialized synopsis must interoperate with a locally built one.
  auto r = rt_mw->EstimateResemblance(mw.value());
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value(), 1.0);
}

TEST(SerializationTest, LogLogRoundTrip) {
  auto ll = LogLogCounter::Create(64, 3, true);
  ASSERT_TRUE(ll.ok());
  for (DocId id = 0; id < 10000; ++id) ll.value().Add(id);
  Bytes bytes = SerializeSynopsisToBytes(ll.value());
  auto rt = DeserializeSynopsisFromBytes(bytes);
  ASSERT_TRUE(rt.ok());
  auto* rt_ll = static_cast<LogLogCounter*>(rt.value().get());
  EXPECT_EQ(rt_ll->registers(), ll.value().registers());
  EXPECT_TRUE(rt_ll->use_truncation());
}

TEST(SerializationTest, UnknownTypeTagFails) {
  Bytes bytes = {99};
  EXPECT_EQ(DeserializeSynopsisFromBytes(bytes).status().code(),
            StatusCode::kCorruption);
}

TEST(SerializationTest, TruncatedPayloadFails) {
  auto mw = MinWiseSynopsis::Create(16, Family());
  ASSERT_TRUE(mw.ok());
  Bytes bytes = SerializeSynopsisToBytes(mw.value());
  bytes.resize(bytes.size() / 2);
  EXPECT_FALSE(DeserializeSynopsisFromBytes(bytes).ok());
}

TEST(SerializationTest, TrailingBytesFail) {
  auto mw = MinWiseSynopsis::Create(8, Family());
  ASSERT_TRUE(mw.ok());
  Bytes bytes = SerializeSynopsisToBytes(mw.value());
  bytes.push_back(0);
  EXPECT_EQ(DeserializeSynopsisFromBytes(bytes).status().code(),
            StatusCode::kCorruption);
}

TEST(SerializationTest, HugeDeclaredSizesRejected) {
  // A hostile MIPs post declaring 2^40 permutations must not allocate.
  ByteWriter writer;
  writer.PutU8(static_cast<uint8_t>(SynopsisType::kMinWise));
  writer.PutVarint(uint64_t{1} << 40);
  writer.PutU64(0);
  EXPECT_EQ(DeserializeSynopsisFromBytes(writer.Take()).status().code(),
            StatusCode::kCorruption);
}

TEST(SerializationTest, HistogramRoundTrip) {
  auto factory = []() -> std::unique_ptr<SetSynopsis> {
    auto r = MinWiseSynopsis::Create(16, Family());
    if (!r.ok()) return nullptr;
    return std::make_unique<MinWiseSynopsis>(std::move(r).value());
  };
  auto hist = ScoreHistogramSynopsis::Create(4, factory);
  ASSERT_TRUE(hist.ok());
  for (DocId id = 0; id < 100; ++id) {
    hist.value().Add(id, static_cast<double>(id % 10) / 10.0);
  }
  ByteWriter writer;
  SerializeHistogram(hist.value(), &writer);
  Bytes bytes = writer.Take();
  ByteReader reader(bytes);
  auto rt = DeserializeHistogram(&reader);
  ASSERT_TRUE(rt.ok()) << rt.status().ToString();
  ASSERT_EQ(rt.value().num_cells(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(rt.value().cell_count(i), hist.value().cell_count(i));
  }
  // Cross-estimation between original and round-tripped must see full
  // redundancy.
  auto novelty = hist.value().WeightedNoveltyOf(rt.value(), 1.0);
  ASSERT_TRUE(novelty.ok());
  EXPECT_LT(novelty.value(), 2.0);
}

TEST(SerializationTest, HistogramCellCountOutOfRangeFails) {
  ByteWriter writer;
  writer.PutVarint(1000);
  Bytes bytes = writer.Take();
  ByteReader reader(bytes);
  EXPECT_EQ(DeserializeHistogram(&reader).status().code(),
            StatusCode::kCorruption);
}

// Fuzz-style robustness: random truncations and byte corruptions of valid
// wire images must never crash or allocate absurdly — they either decode
// to a structurally valid synopsis or fail with a clean Status.
TEST(SerializationTest, RandomCorruptionNeverCrashes) {
  Rng rng(31337);
  std::vector<Bytes> images;
  {
    auto mw = MinWiseSynopsis::Create(32, Family());
    auto bf = BloomFilter::Create(512, 4, 1);
    auto hs = HashSketch::Create(16, 32, 1);
    auto ll = LogLogCounter::Create(64, 1);
    ASSERT_TRUE(mw.ok() && bf.ok() && hs.ok() && ll.ok());
    for (DocId id = 0; id < 100; ++id) {
      mw.value().Add(id);
      bf.value().Add(id);
      hs.value().Add(id);
      ll.value().Add(id);
    }
    images.push_back(SerializeSynopsisToBytes(mw.value()));
    images.push_back(SerializeSynopsisToBytes(bf.value()));
    images.push_back(SerializeSynopsisToBytes(hs.value()));
    images.push_back(SerializeSynopsisToBytes(ll.value()));
  }
  for (const Bytes& image : images) {
    for (int trial = 0; trial < 200; ++trial) {
      Bytes mutated = image;
      switch (rng.Uniform(3)) {
        case 0:  // truncate
          mutated.resize(rng.Uniform(mutated.size() + 1));
          break;
        case 1: {  // flip random bytes
          for (int flips = 0; flips < 3; ++flips) {
            size_t pos = static_cast<size_t>(rng.Uniform(mutated.size()));
            mutated[pos] = static_cast<uint8_t>(rng.Next());
          }
          break;
        }
        case 2:  // append garbage
          for (int extra = 0; extra < 5; ++extra) {
            mutated.push_back(static_cast<uint8_t>(rng.Next()));
          }
          break;
      }
      auto decoded = DeserializeSynopsisFromBytes(mutated);
      if (decoded.ok()) {
        // Whatever decoded must be usable without UB.
        (void)decoded.value()->EstimateCardinality();
        (void)decoded.value()->SizeBits();
      }
    }
  }
}

TEST(CompressedBloomTest, SparseFilterRoundTripsSmaller) {
  auto bf = BloomFilter::Create(1 << 14, 4, 5);  // 16384 bits
  ASSERT_TRUE(bf.ok());
  for (DocId id = 0; id < 50; ++id) bf.value().Add(id);  // ~200 set bits

  Bytes raw = SerializeSynopsisToBytes(bf.value());
  Bytes compressed = SerializeBloomFilterCompressed(bf.value());
  EXPECT_LT(compressed.size(), raw.size() / 2);

  auto rt = DeserializeSynopsisFromBytes(compressed);
  ASSERT_TRUE(rt.ok()) << rt.status().ToString();
  auto* rt_bf = static_cast<BloomFilter*>(rt.value().get());
  EXPECT_EQ(rt_bf->words(), bf.value().words());  // bit-exact
  EXPECT_EQ(rt_bf->num_hashes(), 4u);
  EXPECT_EQ(rt_bf->seed(), 5u);
}

TEST(CompressedBloomTest, EmptyFilterCompresses) {
  auto bf = BloomFilter::Create(2048, 4, 0);
  ASSERT_TRUE(bf.ok());
  Bytes compressed = SerializeBloomFilterCompressed(bf.value());
  EXPECT_LT(compressed.size(), 32u);
  auto rt = DeserializeSynopsisFromBytes(compressed);
  ASSERT_TRUE(rt.ok());
  EXPECT_EQ(rt.value()->EstimateCardinality(), 0.0);
}

TEST(CompressedBloomTest, DenseFilterFallsBackToRaw) {
  auto bf = BloomFilter::Create(1024, 4, 0);
  ASSERT_TRUE(bf.ok());
  for (DocId id = 0; id < 5000; ++id) bf.value().Add(id);  // saturated
  Bytes raw = SerializeSynopsisToBytes(bf.value());
  Bytes adaptive = SerializeBloomFilterCompressed(bf.value());
  EXPECT_LE(adaptive.size(), raw.size());
  auto rt = DeserializeSynopsisFromBytes(adaptive);
  ASSERT_TRUE(rt.ok());
  EXPECT_EQ(static_cast<BloomFilter*>(rt.value().get())->words(),
            bf.value().words());
}

TEST(CompressedBloomTest, RoundTripAcrossFillLevels) {
  for (size_t items : {1u, 10u, 100u, 400u, 1500u}) {
    auto bf = BloomFilter::Create(4096, 4, 9);
    ASSERT_TRUE(bf.ok());
    for (DocId id = 0; id < items; ++id) bf.value().Add(id * 17);
    Bytes wire = SerializeBloomFilterCompressed(bf.value());
    auto rt = DeserializeSynopsisFromBytes(wire);
    ASSERT_TRUE(rt.ok()) << "items=" << items;
    EXPECT_EQ(static_cast<BloomFilter*>(rt.value().get())->words(),
              bf.value().words())
        << "items=" << items;
  }
}

TEST(CompressedBloomTest, CorruptedHeaderRejected) {
  auto bf = BloomFilter::Create(4096, 4, 9);
  ASSERT_TRUE(bf.ok());
  bf.value().Add(1);
  Bytes wire = SerializeBloomFilterCompressed(bf.value());
  ASSERT_EQ(wire[0], 5);  // compressed tag
  Bytes truncated(wire.begin(), wire.begin() + wire.size() / 2);
  EXPECT_FALSE(DeserializeSynopsisFromBytes(truncated).ok());
}

TEST(BitIoTest, RoundTripBitsAndUnary) {
  BitWriter writer;
  writer.PutBits(0b10110, 5);
  writer.PutUnary(7);
  writer.PutBit(true);
  writer.PutBits(0xabcdef, 24);
  Bytes bytes = writer.Finish();

  BitReader reader(bytes);
  uint64_t v;
  ASSERT_TRUE(reader.GetBits(5, &v).ok());
  EXPECT_EQ(v, 0b10110u);
  ASSERT_TRUE(reader.GetUnary(100, &v).ok());
  EXPECT_EQ(v, 7u);
  bool bit;
  ASSERT_TRUE(reader.GetBit(&bit).ok());
  EXPECT_TRUE(bit);
  ASSERT_TRUE(reader.GetBits(24, &v).ok());
  EXPECT_EQ(v, 0xabcdefu);
}

TEST(BitIoTest, ReadPastEndFails) {
  BitWriter writer;
  writer.PutBits(0x3, 2);
  Bytes bytes = writer.Finish();
  BitReader reader(bytes);
  uint64_t v;
  // The byte was padded to 8 bits; reading 9 must fail.
  EXPECT_FALSE(reader.GetBits(9, &v).ok());
}

TEST(BitIoTest, UnaryRunLimitGuardsCorruption) {
  BitWriter writer;
  writer.PutUnary(50);
  Bytes bytes = writer.Finish();
  BitReader reader(bytes);
  uint64_t v;
  EXPECT_FALSE(reader.GetUnary(10, &v).ok());
}

TEST(SerializationTest, WireSizeTracksConfiguredBits) {
  // A 2048-bit Bloom filter serializes to ~2048/8 bytes + header.
  auto bf = BloomFilter::Create(2048, 4, 0);
  ASSERT_TRUE(bf.ok());
  Bytes bytes = SerializeSynopsisToBytes(bf.value());
  EXPECT_GE(bytes.size(), 2048u / 8);
  EXPECT_LE(bytes.size(), 2048u / 8 + 32);
}

}  // namespace
}  // namespace iqn

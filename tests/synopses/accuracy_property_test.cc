// Property-style sweeps over the synopsis estimators (parameterized over
// set size and overlap), asserting the invariants the IQN method relies
// on rather than point values:
//  * estimates are within a type-specific error envelope,
//  * MIPs resemblance is unbiased enough to order candidates correctly,
//  * novelty estimation never leaves [0, |B|],
//  * unions never *reduce* estimated coverage.

#include <gtest/gtest.h>

#include <memory>

#include "synopses/bloom_filter.h"
#include "synopses/estimators.h"
#include "synopses/hash_sketch.h"
#include "synopses/min_wise.h"
#include "util/random.h"
#include "workload/overlap_sets.h"

namespace iqn {
namespace {

const UniversalHashFamily& Family() {
  static const UniversalHashFamily family(2024);
  return family;
}

std::unique_ptr<SetSynopsis> MakeSynopsis(SynopsisType type) {
  switch (type) {
    case SynopsisType::kMinWise: {
      auto r = MinWiseSynopsis::Create(64, Family());
      return std::make_unique<MinWiseSynopsis>(std::move(r).value());
    }
    case SynopsisType::kBloomFilter: {
      auto r = BloomFilter::Create(2048, 4, 1);
      return std::make_unique<BloomFilter>(std::move(r).value());
    }
    case SynopsisType::kHashSketch: {
      auto r = HashSketch::Create(32, 64, 1);
      return std::make_unique<HashSketch>(std::move(r).value());
    }
    default:
      return nullptr;
  }
}

struct SweepParam {
  SynopsisType type;
  size_t set_size;
  double resemblance;
};

std::string ParamName(const testing::TestParamInfo<SweepParam>& info) {
  std::string name = SynopsisTypeName(info.param.type);
  name += "_n" + std::to_string(info.param.set_size);
  name += "_r" + std::to_string(static_cast<int>(100 * info.param.resemblance));
  return name;
}

class ResemblanceSweep : public testing::TestWithParam<SweepParam> {};

TEST_P(ResemblanceSweep, EstimateWithinEnvelope) {
  const SweepParam& p = GetParam();
  Rng rng(p.set_size * 131 + static_cast<uint64_t>(p.resemblance * 100));

  // Average over a few trials (the paper averages over 50 runs; a handful
  // keeps the suite fast while still smoothing the estimator noise).
  constexpr int kTrials = 5;
  double total_estimate = 0.0, total_truth = 0.0;
  for (int trial = 0; trial < kTrials; ++trial) {
    auto pair = MakeSetsWithResemblance(p.set_size, p.resemblance, &rng);
    ASSERT_TRUE(pair.ok());
    auto syn_a = MakeSynopsis(p.type);
    auto syn_b = MakeSynopsis(p.type);
    for (DocId id : pair.value().a) syn_a->Add(id);
    for (DocId id : pair.value().b) syn_b->Add(id);
    auto est = syn_a->EstimateResemblance(*syn_b);
    ASSERT_TRUE(est.ok());
    EXPECT_GE(est.value(), 0.0);
    EXPECT_LE(est.value(), 1.0);
    total_estimate += est.value();
    total_truth += ExactResemblance(pair.value().a, pair.value().b);
  }
  double mean_estimate = total_estimate / kTrials;
  double mean_truth = total_truth / kTrials;

  // Type-specific envelopes: MIPs are tight; hash sketches noisier; a
  // 2048-bit Bloom filter is overloaded beyond ~2000 elements (exactly
  // the paper's Fig. 2 observation), so only small sets are constrained.
  double tolerance;
  switch (p.type) {
    case SynopsisType::kMinWise:
      tolerance = 0.15;
      break;
    case SynopsisType::kHashSketch:
      tolerance = 0.35;
      break;
    case SynopsisType::kBloomFilter:
      tolerance = p.set_size <= 1000 ? 0.3 : 1.0;
      break;
    default:
      tolerance = 1.0;
  }
  EXPECT_NEAR(mean_estimate, mean_truth, tolerance)
      << "type=" << SynopsisTypeName(p.type) << " n=" << p.set_size
      << " r=" << p.resemblance;
}

INSTANTIATE_TEST_SUITE_P(
    AllTypesSizesOverlaps, ResemblanceSweep,
    testing::ValuesIn([] {
      std::vector<SweepParam> params;
      for (SynopsisType type :
           {SynopsisType::kMinWise, SynopsisType::kBloomFilter,
            SynopsisType::kHashSketch}) {
        for (size_t n : {500u, 2000u, 10000u}) {
          for (double r : {0.5, 1.0 / 3.0, 0.2, 0.125}) {
            params.push_back(SweepParam{type, n, r});
          }
        }
      }
      return params;
    }()),
    ParamName);

class NoveltySweep : public testing::TestWithParam<SweepParam> {};

TEST_P(NoveltySweep, NoveltyStaysInRangeAndTracksTruth) {
  const SweepParam& p = GetParam();
  Rng rng(p.set_size * 733 + static_cast<uint64_t>(p.resemblance * 1000));
  auto pair = MakeSetsWithResemblance(p.set_size, p.resemblance, &rng);
  ASSERT_TRUE(pair.ok());

  auto ref = MakeSynopsis(p.type);
  auto cand = MakeSynopsis(p.type);
  for (DocId id : pair.value().a) ref->Add(id);
  for (DocId id : pair.value().b) cand->Add(id);

  auto novelty = EstimateNovelty(*ref, static_cast<double>(p.set_size), *cand,
                                 static_cast<double>(p.set_size));
  ASSERT_TRUE(novelty.ok());
  double truth =
      static_cast<double>(ExactNovelty(pair.value().b, pair.value().a));
  EXPECT_GE(novelty.value(), 0.0);
  EXPECT_LE(novelty.value(), static_cast<double>(p.set_size));
  if (p.type == SynopsisType::kMinWise) {
    EXPECT_NEAR(novelty.value(), truth, 0.35 * p.set_size);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTypes, NoveltySweep,
    testing::ValuesIn([] {
      std::vector<SweepParam> params;
      for (SynopsisType type :
           {SynopsisType::kMinWise, SynopsisType::kBloomFilter,
            SynopsisType::kHashSketch}) {
        for (double r : {0.5, 0.2}) {
          params.push_back(SweepParam{type, 3000, r});
        }
      }
      return params;
    }()),
    ParamName);

class UnionMonotonicity : public testing::TestWithParam<SynopsisType> {};

TEST_P(UnionMonotonicity, UnionNeverShrinksEstimatedCoverage) {
  SynopsisType type = GetParam();
  Rng rng(99);
  auto acc = MakeSynopsis(type);
  double last = 0.0;
  DocId next = 0;
  for (int step = 0; step < 6; ++step) {
    auto part = MakeSynopsis(type);
    for (int i = 0; i < 800; ++i) part->Add(next++);
    ASSERT_TRUE(acc->MergeUnion(*part).ok());
    double est = acc->EstimateCardinality();
    EXPECT_GE(est, last * 0.9)  // allow estimator noise, forbid collapse
        << "step=" << step;
    last = est;
  }
}

INSTANTIATE_TEST_SUITE_P(AllTypes, UnionMonotonicity,
                         testing::Values(SynopsisType::kMinWise,
                                         SynopsisType::kBloomFilter,
                                         SynopsisType::kHashSketch),
                         [](const testing::TestParamInfo<SynopsisType>& info) {
                           return std::string(SynopsisTypeName(info.param));
                         });

// The ranking property IQN actually depends on: when candidate X has more
// true novelty than candidate Y (vs the same reference), the estimated
// novelty should rank X above Y — for every synopsis type.
class RankingProperty : public testing::TestWithParam<SynopsisType> {};

TEST_P(RankingProperty, MoreNovelCandidateRanksHigher) {
  SynopsisType type = GetParam();
  auto ref = MakeSynopsis(type);
  for (DocId id = 0; id < 2000; ++id) ref->Add(id);

  // X: 75 % novel; Y: 10 % novel. Both size 1000.
  auto x = MakeSynopsis(type);
  for (DocId id = 1750; id < 2750; ++id) x->Add(id);
  auto y = MakeSynopsis(type);
  for (DocId id = 900; id < 1900; ++id) y->Add(id);

  auto nov_x = EstimateNovelty(*ref, 2000, *x, 1000);
  auto nov_y = EstimateNovelty(*ref, 2000, *y, 1000);
  ASSERT_TRUE(nov_x.ok() && nov_y.ok());
  EXPECT_GT(nov_x.value(), nov_y.value());
}

INSTANTIATE_TEST_SUITE_P(AllTypes, RankingProperty,
                         testing::Values(SynopsisType::kMinWise,
                                         SynopsisType::kBloomFilter,
                                         SynopsisType::kHashSketch),
                         [](const testing::TestParamInfo<SynopsisType>& info) {
                           return std::string(SynopsisTypeName(info.param));
                         });

}  // namespace
}  // namespace iqn

#include "synopses/adaptive.h"

#include <gtest/gtest.h>

#include <numeric>

namespace iqn {
namespace {

TermSynopsisDemand Demand(uint64_t len, std::vector<double> scores = {}) {
  TermSynopsisDemand d;
  d.list_length = len;
  d.scores = std::move(scores);
  return d;
}

uint64_t Sum(const std::vector<uint64_t>& v) {
  return std::accumulate(v.begin(), v.end(), uint64_t{0});
}

TEST(TermBenefitTest, ListLengthPolicy) {
  AdaptiveAllocationOptions opts;
  opts.policy = BenefitPolicy::kListLength;
  EXPECT_DOUBLE_EQ(TermBenefit(Demand(42), opts), 42.0);
  EXPECT_DOUBLE_EQ(TermBenefit(Demand(0), opts), 0.0);
}

TEST(TermBenefitTest, ThresholdPolicy) {
  AdaptiveAllocationOptions opts;
  opts.policy = BenefitPolicy::kEntriesAboveThreshold;
  opts.score_threshold = 0.5;
  EXPECT_DOUBLE_EQ(TermBenefit(Demand(4, {0.9, 0.5, 0.4, 0.1}), opts), 2.0);
  EXPECT_DOUBLE_EQ(TermBenefit(Demand(4, {}), opts), 0.0);
}

TEST(TermBenefitTest, MassQuantilePolicy) {
  AdaptiveAllocationOptions opts;
  opts.policy = BenefitPolicy::kScoreMassQuantile;
  opts.mass_quantile = 0.9;
  // Scores 4,3,2,1 (total 10): top entries reaching 9.0 of mass = 4+3+2 = 9
  // -> 3 entries.
  EXPECT_DOUBLE_EQ(TermBenefit(Demand(4, {1, 2, 3, 4}), opts), 3.0);
  // Uniform scores: 90 % of mass needs 90 % of entries.
  EXPECT_DOUBLE_EQ(TermBenefit(Demand(10, std::vector<double>(10, 1.0)), opts),
                   9.0);
}

TEST(AllocateTest, ProportionalToListLength) {
  AdaptiveAllocationOptions opts;
  opts.min_bits = 64;
  opts.max_bits = 1 << 20;
  opts.granularity_bits = 32;
  std::vector<TermSynopsisDemand> demands = {Demand(100), Demand(300)};
  auto r = AllocateSynopsisBudget(demands, 4096, opts);
  ASSERT_TRUE(r.ok());
  const auto& lengths = r.value();
  EXPECT_LE(Sum(lengths), 4096u);
  EXPECT_GT(Sum(lengths), 4096u - 128u);  // little stranded budget
  // Roughly 1:3 split.
  EXPECT_NEAR(static_cast<double>(lengths[1]) / lengths[0], 3.0, 0.8);
}

TEST(AllocateTest, RespectsGranularityAndMin) {
  AdaptiveAllocationOptions opts;
  opts.min_bits = 64;
  opts.granularity_bits = 32;
  std::vector<TermSynopsisDemand> demands = {Demand(10), Demand(20),
                                             Demand(30)};
  auto r = AllocateSynopsisBudget(demands, 2048, opts);
  ASSERT_TRUE(r.ok());
  for (uint64_t len : r.value()) {
    if (len == 0) continue;
    EXPECT_GE(len, 64u);
    EXPECT_EQ(len % 32, 0u);
  }
}

TEST(AllocateTest, MaxCapRedistributes) {
  AdaptiveAllocationOptions opts;
  opts.min_bits = 64;
  opts.max_bits = 256;
  opts.granularity_bits = 32;
  // One dominant term would take everything without the cap.
  std::vector<TermSynopsisDemand> demands = {Demand(1000000), Demand(10),
                                             Demand(10)};
  auto r = AllocateSynopsisBudget(demands, 1024, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_LE(r.value()[0], 256u);
  // The freed budget flows to the small terms.
  EXPECT_GT(r.value()[1] + r.value()[2], 128u);
}

TEST(AllocateTest, TightBudgetDropsLowBenefitTerms) {
  AdaptiveAllocationOptions opts;
  opts.min_bits = 64;
  opts.granularity_bits = 32;
  std::vector<TermSynopsisDemand> demands = {Demand(100), Demand(1),
                                             Demand(50)};
  // Budget for exactly two min-size synopses.
  auto r = AllocateSynopsisBudget(demands, 128, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()[1], 0u);  // lowest benefit dropped
  EXPECT_GT(r.value()[0], 0u);
  EXPECT_GT(r.value()[2], 0u);
}

TEST(AllocateTest, BudgetTooSmallForAnything) {
  AdaptiveAllocationOptions opts;
  opts.min_bits = 64;
  opts.granularity_bits = 32;
  auto r = AllocateSynopsisBudget({Demand(5)}, 32, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()[0], 0u);
}

TEST(AllocateTest, ZeroBenefitsSplitEvenly) {
  AdaptiveAllocationOptions opts;
  opts.min_bits = 64;
  opts.granularity_bits = 32;
  std::vector<TermSynopsisDemand> demands = {Demand(0), Demand(0)};
  auto r = AllocateSynopsisBudget(demands, 1024, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()[0], r.value()[1]);
  EXPECT_GT(r.value()[0], 64u);
}

TEST(AllocateTest, ValidatesArguments) {
  AdaptiveAllocationOptions opts;
  EXPECT_FALSE(AllocateSynopsisBudget({}, 1024, opts).ok());
  opts.granularity_bits = 0;
  EXPECT_FALSE(AllocateSynopsisBudget({Demand(1)}, 1024, opts).ok());
  opts.granularity_bits = 48;  // does not divide min_bits = 64
  EXPECT_FALSE(AllocateSynopsisBudget({Demand(1)}, 1024, opts).ok());
  opts = {};
  opts.min_bits = 128;
  opts.max_bits = 64;
  EXPECT_FALSE(AllocateSynopsisBudget({Demand(1)}, 1024, opts).ok());
}

TEST(AllocateTest, NeverExceedsBudget) {
  AdaptiveAllocationOptions opts;
  opts.min_bits = 64;
  opts.granularity_bits = 32;
  for (uint64_t budget : {100u, 1000u, 10000u, 100000u}) {
    std::vector<TermSynopsisDemand> demands;
    for (uint64_t i = 1; i <= 20; ++i) demands.push_back(Demand(i * i));
    auto r = AllocateSynopsisBudget(demands, budget, opts);
    ASSERT_TRUE(r.ok());
    EXPECT_LE(Sum(r.value()), budget) << "budget=" << budget;
  }
}

}  // namespace
}  // namespace iqn

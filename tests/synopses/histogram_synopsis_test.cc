#include "synopses/histogram_synopsis.h"

#include <gtest/gtest.h>

#include "synopses/bloom_filter.h"
#include "synopses/min_wise.h"

namespace iqn {
namespace {

const UniversalHashFamily& Family() {
  static const UniversalHashFamily family(555);
  return family;
}

ScoreHistogramSynopsis::SynopsisFactory MipsFactory(size_t n = 64) {
  return [n]() -> std::unique_ptr<SetSynopsis> {
    auto r = MinWiseSynopsis::Create(n, Family());
    if (!r.ok()) return nullptr;
    return std::make_unique<MinWiseSynopsis>(std::move(r).value());
  };
}

ScoreHistogramSynopsis Make(size_t cells = 4) {
  auto r = ScoreHistogramSynopsis::Create(cells, MipsFactory());
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

TEST(HistogramSynopsisTest, CreateValidates) {
  EXPECT_FALSE(ScoreHistogramSynopsis::Create(0, MipsFactory()).ok());
  EXPECT_FALSE(ScoreHistogramSynopsis::Create(65, MipsFactory()).ok());
  EXPECT_FALSE(ScoreHistogramSynopsis::Create(4, nullptr).ok());
}

TEST(HistogramSynopsisTest, CellBoundsPartitionUnitInterval) {
  ScoreHistogramSynopsis hist = Make(4);
  EXPECT_DOUBLE_EQ(hist.CellLowerBound(0), 0.0);
  EXPECT_DOUBLE_EQ(hist.CellUpperBound(3), 1.0);
  for (size_t i = 0; i + 1 < hist.num_cells(); ++i) {
    EXPECT_DOUBLE_EQ(hist.CellUpperBound(i), hist.CellLowerBound(i + 1));
  }
}

TEST(HistogramSynopsisTest, AddRoutesToCorrectCell) {
  ScoreHistogramSynopsis hist = Make(4);
  hist.Add(1, 0.1);   // cell 0
  hist.Add(2, 0.3);   // cell 1
  hist.Add(3, 0.55);  // cell 2
  hist.Add(4, 0.9);   // cell 3
  hist.Add(5, 1.0);   // clamped into the top cell
  hist.Add(6, -0.5);  // clamped into the bottom cell
  EXPECT_EQ(hist.cell_count(0), 2u);
  EXPECT_EQ(hist.cell_count(1), 1u);
  EXPECT_EQ(hist.cell_count(2), 1u);
  EXPECT_EQ(hist.cell_count(3), 2u);
  EXPECT_EQ(hist.TotalCount(), 6u);
}

TEST(HistogramSynopsisTest, WeightedNoveltyPrefersHighScoreNovelty) {
  // Reference holds docs 0..99 in the TOP cell. Candidate X offers new
  // docs in the top cell; candidate Y offers the same number of new docs
  // in the bottom cell. Weighted novelty must rank X above Y.
  ScoreHistogramSynopsis ref = Make(4);
  for (DocId id = 0; id < 100; ++id) ref.Add(id, 0.95);

  ScoreHistogramSynopsis top_novel = Make(4);
  for (DocId id = 1000; id < 1100; ++id) top_novel.Add(id, 0.95);
  ScoreHistogramSynopsis tail_novel = Make(4);
  for (DocId id = 2000; id < 2100; ++id) tail_novel.Add(id, 0.05);

  auto nov_top = ref.WeightedNoveltyOf(top_novel, 1.0);
  auto nov_tail = ref.WeightedNoveltyOf(tail_novel, 1.0);
  ASSERT_TRUE(nov_top.ok() && nov_tail.ok());
  EXPECT_GT(nov_top.value(), nov_tail.value() * 3);
}

TEST(HistogramSynopsisTest, ExponentZeroIsScoreOblivious) {
  ScoreHistogramSynopsis ref = Make(4);
  ScoreHistogramSynopsis top = Make(4), tail = Make(4);
  for (DocId id = 0; id < 50; ++id) top.Add(id, 0.9);
  for (DocId id = 100; id < 150; ++id) tail.Add(id, 0.1);
  auto nov_top = ref.WeightedNoveltyOf(top, 0.0);
  auto nov_tail = ref.WeightedNoveltyOf(tail, 0.0);
  ASSERT_TRUE(nov_top.ok() && nov_tail.ok());
  EXPECT_NEAR(nov_top.value(), nov_tail.value(), 1.0);
}

TEST(HistogramSynopsisTest, OverlapInDifferentCellsIsDetected) {
  // The same docs live in the ref's top cell and the candidate's bottom
  // cell (peer-local scores differ) — cross-cell pairwise estimation must
  // still see the overlap.
  ScoreHistogramSynopsis ref = Make(4);
  for (DocId id = 0; id < 200; ++id) ref.Add(id, 0.9);
  ScoreHistogramSynopsis cand = Make(4);
  for (DocId id = 0; id < 200; ++id) cand.Add(id, 0.1);
  auto novelty = ref.WeightedNoveltyOf(cand, 1.0);
  ASSERT_TRUE(novelty.ok());
  // Fully redundant: weighted novelty should be near zero (well under
  // the ~25 the candidate would get if treated as fully novel: 200*0.125).
  EXPECT_LT(novelty.value(), 8.0);
}

TEST(HistogramSynopsisTest, AbsorbReducesSubsequentNovelty) {
  ScoreHistogramSynopsis ref = Make(4);
  ScoreHistogramSynopsis cand = Make(4);
  for (DocId id = 0; id < 300; ++id) cand.Add(id, 0.7);
  auto before = ref.WeightedNoveltyOf(cand, 1.0);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(ref.Absorb(cand).ok());
  auto after = ref.WeightedNoveltyOf(cand, 1.0);
  ASSERT_TRUE(after.ok());
  EXPECT_LT(after.value(), before.value() * 0.3);
}

TEST(HistogramSynopsisTest, MismatchedCellCountsRefuse) {
  ScoreHistogramSynopsis a = Make(4), b = Make(8);
  EXPECT_FALSE(a.WeightedNoveltyOf(b).ok());
  EXPECT_FALSE(a.Absorb(b).ok());
}

TEST(HistogramSynopsisTest, CloneIsIndependent) {
  ScoreHistogramSynopsis hist = Make(4);
  hist.Add(1, 0.5);
  ScoreHistogramSynopsis copy = hist.CloneHist();
  copy.Add(2, 0.5);
  EXPECT_EQ(hist.TotalCount(), 1u);
  EXPECT_EQ(copy.TotalCount(), 2u);
}

TEST(HistogramSynopsisTest, WorksWithBloomFilterCells) {
  auto bf_factory = []() -> std::unique_ptr<SetSynopsis> {
    auto r = BloomFilter::Create(1024, 4, 3);
    if (!r.ok()) return nullptr;
    return std::make_unique<BloomFilter>(std::move(r).value());
  };
  auto ref = ScoreHistogramSynopsis::Create(4, bf_factory);
  auto cand = ScoreHistogramSynopsis::Create(4, bf_factory);
  ASSERT_TRUE(ref.ok() && cand.ok());
  for (DocId id = 0; id < 100; ++id) ref.value().Add(id, 0.9);
  for (DocId id = 0; id < 100; ++id) cand.value().Add(id, 0.9);  // redundant
  auto redundant = ref.value().WeightedNoveltyOf(cand.value(), 1.0);
  ASSERT_TRUE(redundant.ok());
  EXPECT_LT(redundant.value(), 15.0);

  auto fresh = ScoreHistogramSynopsis::Create(4, bf_factory);
  ASSERT_TRUE(fresh.ok());
  for (DocId id = 5000; id < 5100; ++id) fresh.value().Add(id, 0.9);
  auto novel = ref.value().WeightedNoveltyOf(fresh.value(), 1.0);
  ASSERT_TRUE(novel.ok());
  EXPECT_GT(novel.value(), redundant.value() * 3);
}

TEST(HistogramSynopsisTest, SizeBitsSumsCells) {
  ScoreHistogramSynopsis hist = Make(4);
  // 4 cells x 64 permutations x 32 bits.
  EXPECT_EQ(hist.SizeBits(), 4u * 64 * 32);
}

}  // namespace
}  // namespace iqn

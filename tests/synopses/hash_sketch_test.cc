#include "synopses/hash_sketch.h"

#include <gtest/gtest.h>

namespace iqn {
namespace {

HashSketch Make(size_t bitmaps = 32, size_t width = 64, uint64_t seed = 0) {
  auto r = HashSketch::Create(bitmaps, width, seed);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

TEST(HashSketchTest, CreateValidatesParameters) {
  EXPECT_FALSE(HashSketch::Create(0, 32).ok());
  EXPECT_FALSE(HashSketch::Create(8, 3).ok());
  EXPECT_FALSE(HashSketch::Create(8, 65).ok());
  EXPECT_TRUE(HashSketch::Create(1, 4).ok());
}

TEST(HashSketchTest, EmptySketchEstimatesZero) {
  HashSketch hs = Make();
  EXPECT_DOUBLE_EQ(hs.EstimateCardinality(), 0.0);
}

TEST(HashSketchTest, EstimateGrowsWithCardinality) {
  HashSketch hs = Make();
  double last = 0.0;
  DocId next = 0;
  for (size_t target : {1000u, 10000u, 100000u}) {
    while (next < target) hs.Add(next++);
    double est = hs.EstimateCardinality();
    EXPECT_GT(est, last);
    last = est;
  }
}

TEST(HashSketchTest, EstimateWithinFactorTwoAtScale) {
  HashSketch hs = Make(64, 64);
  constexpr size_t kN = 50000;
  for (DocId id = 0; id < kN; ++id) hs.Add(id * 31 + 7);
  double est = hs.EstimateCardinality();
  EXPECT_GT(est, kN / 2.0);
  EXPECT_LT(est, kN * 2.0);
}

TEST(HashSketchTest, DuplicatesDoNotInflate) {
  HashSketch a = Make(), b = Make();
  for (DocId id = 0; id < 1000; ++id) a.Add(id);
  for (int rep = 0; rep < 5; ++rep) {
    for (DocId id = 0; id < 1000; ++id) b.Add(id);
  }
  EXPECT_EQ(a.bitmaps(), b.bitmaps());  // multiset-insensitive
}

TEST(HashSketchTest, UnionIsExactUnderOr) {
  HashSketch a = Make(), b = Make(), both = Make();
  for (DocId id = 0; id < 500; ++id) {
    a.Add(id);
    both.Add(id);
  }
  for (DocId id = 500; id < 1000; ++id) {
    b.Add(id);
    both.Add(id);
  }
  ASSERT_TRUE(a.MergeUnion(b).ok());
  EXPECT_EQ(a.bitmaps(), both.bitmaps());
}

TEST(HashSketchTest, IntersectionIsUnimplemented) {
  HashSketch a = Make(), b = Make();
  EXPECT_EQ(a.MergeIntersect(b).code(), StatusCode::kUnimplemented);
}

TEST(HashSketchTest, IncompatibleGeometriesRefuse) {
  HashSketch a = Make(32, 64), b = Make(16, 64), c = Make(32, 32),
             d = Make(32, 64, /*seed=*/1);
  EXPECT_FALSE(a.MergeUnion(b).ok());
  EXPECT_FALSE(a.MergeUnion(c).ok());
  EXPECT_FALSE(a.MergeUnion(d).ok());
}

TEST(HashSketchTest, ResemblanceViaInclusionExclusion) {
  HashSketch a = Make(64, 64), b = Make(64, 64);
  // 50 % overlap: ids 0..9999 and 5000..14999.
  for (DocId id = 0; id < 10000; ++id) a.Add(id);
  for (DocId id = 5000; id < 15000; ++id) b.Add(id);
  auto r = a.EstimateResemblance(b);
  ASSERT_TRUE(r.ok());
  // True resemblance = 5000/15000 = 1/3; sketches are noisy.
  EXPECT_GT(r.value(), 0.05);
  EXPECT_LT(r.value(), 0.7);
}

TEST(HashSketchTest, ResemblanceBothEmptyIsZero) {
  HashSketch a = Make(), b = Make();
  auto r = a.EstimateResemblance(b);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value(), 0.0);
}

TEST(HashSketchTest, RunLengthMatchesBitmapPrefix) {
  auto r = HashSketch::FromBitmaps(8, 0, {0b0111, 0b0000, 0b1011});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().RunLength(0), 3);
  EXPECT_EQ(r.value().RunLength(1), 0);
  EXPECT_EQ(r.value().RunLength(2), 2);
}

TEST(HashSketchTest, FromBitmapsValidatesWidth) {
  // Bit above the declared 8-bit width.
  EXPECT_FALSE(HashSketch::FromBitmaps(8, 0, {uint64_t{1} << 9}).ok());
  EXPECT_FALSE(HashSketch::FromBitmaps(8, 0, {}).ok());
}

TEST(HashSketchTest, SizeBitsCountsBitmaps) {
  EXPECT_EQ(Make(32, 64).SizeBits(), 2048u);
  EXPECT_EQ(Make(4, 16).SizeBits(), 64u);
}

TEST(HashSketchTest, CloneIsIndependent) {
  HashSketch hs = Make();
  hs.Add(1);
  auto clone = hs.Clone();
  clone->Add(123456);
  EXPECT_NE(static_cast<HashSketch*>(clone.get())->bitmaps(), hs.bitmaps());
}

}  // namespace
}  // namespace iqn

#include "synopses/bloom_filter.h"

#include <gtest/gtest.h>

#include <cmath>

namespace iqn {
namespace {

BloomFilter Make(size_t bits = 2048, size_t hashes = 4, uint64_t seed = 0) {
  auto r = BloomFilter::Create(bits, hashes, seed);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

TEST(BloomFilterTest, CreateValidatesParameters) {
  EXPECT_FALSE(BloomFilter::Create(4, 2).ok());
  EXPECT_FALSE(BloomFilter::Create(64, 0).ok());
  EXPECT_FALSE(BloomFilter::Create(64, 33).ok());
  EXPECT_TRUE(BloomFilter::Create(8, 1).ok());
}

TEST(BloomFilterTest, NoFalseNegatives) {
  BloomFilter bf = Make();
  for (DocId id = 100; id < 200; ++id) bf.Add(id);
  for (DocId id = 100; id < 200; ++id) EXPECT_TRUE(bf.MayContain(id));
}

TEST(BloomFilterTest, MostlyRejectsAbsentElements) {
  BloomFilter bf = Make(4096, 4);
  for (DocId id = 0; id < 100; ++id) bf.Add(id);
  size_t false_positives = 0;
  for (DocId id = 10000; id < 11000; ++id) {
    if (bf.MayContain(id)) ++false_positives;
  }
  // Theoretical fp rate here is well under 1 %.
  EXPECT_LT(false_positives, 20u);
}

TEST(BloomFilterTest, EmptyFilterEstimatesZero) {
  BloomFilter bf = Make();
  EXPECT_EQ(bf.CountSetBits(), 0u);
  EXPECT_DOUBLE_EQ(bf.EstimateCardinality(), 0.0);
}

TEST(BloomFilterTest, CardinalityEstimateReasonable) {
  BloomFilter bf = Make(8192, 4);
  constexpr size_t kN = 500;
  for (DocId id = 0; id < kN; ++id) bf.Add(id * 977 + 13);
  double est = bf.EstimateCardinality();
  EXPECT_NEAR(est, kN, kN * 0.15);
}

TEST(BloomFilterTest, OverloadedFilterStaysFinite) {
  // The Fig. 2 failure mode: far more elements than bits.
  BloomFilter bf = Make(256, 4);
  for (DocId id = 0; id < 10000; ++id) bf.Add(id);
  EXPECT_GE(bf.CountSetBits(), 255u);  // saturated
  EXPECT_TRUE(std::isfinite(bf.EstimateCardinality()));
}

TEST(BloomFilterTest, UnionMatchesElementwiseInsertion) {
  BloomFilter a = Make(), b = Make(), both = Make();
  for (DocId id = 0; id < 50; ++id) {
    a.Add(id);
    both.Add(id);
  }
  for (DocId id = 50; id < 100; ++id) {
    b.Add(id);
    both.Add(id);
  }
  ASSERT_TRUE(a.MergeUnion(b).ok());
  EXPECT_EQ(a.words(), both.words());
}

TEST(BloomFilterTest, IntersectKeepsSharedElements) {
  BloomFilter a = Make(4096, 4), b = Make(4096, 4);
  for (DocId id = 0; id < 100; ++id) a.Add(id);
  for (DocId id = 50; id < 150; ++id) b.Add(id);
  ASSERT_TRUE(a.MergeIntersect(b).ok());
  for (DocId id = 50; id < 100; ++id) EXPECT_TRUE(a.MayContain(id));
  EXPECT_NEAR(a.EstimateCardinality(), 50.0, 20.0);
}

TEST(BloomFilterTest, DifferenceForNovelty) {
  BloomFilter ref = Make(8192, 4), cand = Make(8192, 4);
  for (DocId id = 0; id < 200; ++id) ref.Add(id);
  for (DocId id = 100; id < 400; ++id) cand.Add(id);
  ASSERT_TRUE(cand.MergeDifference(ref).ok());
  // True novelty is 200 (ids 200..399); bit-difference is approximate.
  EXPECT_NEAR(cand.EstimateCardinality(), 200.0, 60.0);
}

TEST(BloomFilterTest, IncompatibleGeometriesRefuse) {
  BloomFilter a = Make(2048, 4), b = Make(1024, 4), c = Make(2048, 5),
              d = Make(2048, 4, /*seed=*/9);
  EXPECT_EQ(a.MergeUnion(b).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(a.MergeUnion(c).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(a.MergeUnion(d).code(), StatusCode::kInvalidArgument);
}

TEST(BloomFilterTest, ResemblanceOfIdenticalSetsIsHigh) {
  BloomFilter a = Make(8192, 4), b = Make(8192, 4);
  for (DocId id = 0; id < 300; ++id) {
    a.Add(id);
    b.Add(id);
  }
  auto r = a.EstimateResemblance(b);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r.value(), 0.95);
}

TEST(BloomFilterTest, ResemblanceOfDisjointSetsIsLow) {
  BloomFilter a = Make(8192, 4), b = Make(8192, 4);
  for (DocId id = 0; id < 300; ++id) a.Add(id);
  for (DocId id = 1000; id < 1300; ++id) b.Add(id);
  auto r = a.EstimateResemblance(b);
  ASSERT_TRUE(r.ok());
  EXPECT_LT(r.value(), 0.1);
}

TEST(BloomFilterTest, ResemblanceBothEmptyIsZero) {
  BloomFilter a = Make(), b = Make();
  auto r = a.EstimateResemblance(b);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value(), 0.0);
}

TEST(BloomFilterTest, FalsePositiveRateFormula) {
  BloomFilter bf = Make(1000, 3);
  double fp = bf.FalsePositiveRate(100);
  double expected = std::pow(1.0 - std::exp(-3.0 * 100.0 / 1000.0), 3.0);
  EXPECT_DOUBLE_EQ(fp, expected);
  EXPECT_GT(bf.FalsePositiveRate(10000), bf.FalsePositiveRate(10));
}

TEST(BloomFilterTest, OptimalNumHashes) {
  // m/n * ln2 with m=9585, n=1000 -> ~6.64 -> 7.
  EXPECT_EQ(BloomFilter::OptimalNumHashes(9585, 1000), 7u);
  EXPECT_EQ(BloomFilter::OptimalNumHashes(100, 1000000), 1u);  // clamped low
  EXPECT_EQ(BloomFilter::OptimalNumHashes(1 << 20, 1), 32u);   // clamped high
  EXPECT_EQ(BloomFilter::OptimalNumHashes(1024, 0), 1u);
}

TEST(BloomFilterTest, FromWordsValidates) {
  BloomFilter bf = Make(128, 2);
  bf.Add(1);
  auto rt = BloomFilter::FromWords(128, 2, 0, bf.words());
  ASSERT_TRUE(rt.ok());
  EXPECT_TRUE(rt.value().MayContain(1));
  // Wrong word count.
  EXPECT_FALSE(BloomFilter::FromWords(128, 2, 0, {1, 2, 3}).ok());
  // Bits beyond num_bits.
  std::vector<uint64_t> bad = {0, ~uint64_t{0}};
  EXPECT_FALSE(BloomFilter::FromWords(100, 2, 0, bad).ok());
}

TEST(BloomFilterTest, CloneIsIndependent) {
  BloomFilter bf = Make();
  bf.Add(5);
  auto clone = bf.Clone();
  clone->Add(99999);
  EXPECT_TRUE(static_cast<BloomFilter*>(clone.get())->MayContain(5));
  EXPECT_FALSE(bf.MayContain(99999));
}

TEST(BloomFilterTest, SizeBitsReportsGeometry) {
  EXPECT_EQ(Make(2048, 4).SizeBits(), 2048u);
  EXPECT_EQ(Make(100, 2).SizeBits(), 100u);
}

}  // namespace
}  // namespace iqn

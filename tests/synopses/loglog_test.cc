#include "synopses/loglog.h"

#include <gtest/gtest.h>

namespace iqn {
namespace {

LogLogCounter Make(size_t buckets = 256, uint64_t seed = 0,
                   bool truncation = true) {
  auto r = LogLogCounter::Create(buckets, seed, truncation);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

TEST(LogLogTest, CreateValidatesParameters) {
  EXPECT_FALSE(LogLogCounter::Create(15).ok());   // not a power of two
  EXPECT_FALSE(LogLogCounter::Create(8).ok());    // too small
  EXPECT_FALSE(LogLogCounter::Create(1 << 17).ok());
  EXPECT_TRUE(LogLogCounter::Create(16).ok());
  EXPECT_TRUE(LogLogCounter::Create(65536).ok());
}

TEST(LogLogTest, EmptyEstimatesZero) {
  EXPECT_DOUBLE_EQ(Make().EstimateCardinality(), 0.0);
}

TEST(LogLogTest, EstimateWithinThirtyPercentAtScale) {
  for (bool truncation : {false, true}) {
    LogLogCounter ll = Make(1024, 0, truncation);
    constexpr size_t kN = 200000;
    for (DocId id = 0; id < kN; ++id) ll.Add(id * 13 + 5);
    double est = ll.EstimateCardinality();
    EXPECT_NEAR(est, kN, kN * 0.3) << "truncation=" << truncation;
  }
}

TEST(LogLogTest, EstimateMonotonicInScale) {
  LogLogCounter ll = Make(512);
  DocId next = 0;
  double last = 0.0;
  for (size_t target : {5000u, 50000u, 500000u}) {
    while (next < target) ll.Add(next++);
    double est = ll.EstimateCardinality();
    EXPECT_GT(est, last);
    last = est;
  }
}

TEST(LogLogTest, UnionIsPositionwiseMax) {
  LogLogCounter a = Make(), b = Make(), both = Make();
  for (DocId id = 0; id < 3000; ++id) {
    a.Add(id);
    both.Add(id);
  }
  for (DocId id = 3000; id < 6000; ++id) {
    b.Add(id);
    both.Add(id);
  }
  ASSERT_TRUE(a.MergeUnion(b).ok());
  EXPECT_EQ(a.registers(), both.registers());
}

TEST(LogLogTest, IntersectionUnimplemented) {
  LogLogCounter a = Make(), b = Make();
  EXPECT_EQ(a.MergeIntersect(b).code(), StatusCode::kUnimplemented);
}

TEST(LogLogTest, IncompatibleRefuse) {
  LogLogCounter a = Make(256), b = Make(128), c = Make(256, /*seed=*/1);
  EXPECT_FALSE(a.MergeUnion(b).ok());
  EXPECT_FALSE(a.MergeUnion(c).ok());
}

TEST(LogLogTest, SizeBitsChargesFiveBitsPerRegister) {
  EXPECT_EQ(Make(256).SizeBits(), 256u * 5);
}

TEST(LogLogTest, TruncationReducesOutlierSensitivity) {
  // Plant one absurdly high register and compare each estimator against
  // its own outlier-free baseline: the truncated estimate must be
  // (nearly) unaffected, the plain one visibly inflated.
  std::vector<uint8_t> clean(64, 4);
  std::vector<uint8_t> outlier = clean;
  outlier[0] = 30;
  auto plain_clean = LogLogCounter::FromRegisters(0, false, clean);
  auto plain_outlier = LogLogCounter::FromRegisters(0, false, outlier);
  auto trunc_clean = LogLogCounter::FromRegisters(0, true, clean);
  auto trunc_outlier = LogLogCounter::FromRegisters(0, true, outlier);
  ASSERT_TRUE(plain_clean.ok() && plain_outlier.ok() && trunc_clean.ok() &&
              trunc_outlier.ok());
  double plain_inflation = plain_outlier.value().EstimateCardinality() /
                           plain_clean.value().EstimateCardinality();
  double trunc_inflation = trunc_outlier.value().EstimateCardinality() /
                           trunc_clean.value().EstimateCardinality();
  EXPECT_GT(plain_inflation, 1.2);
  EXPECT_NEAR(trunc_inflation, 1.0, 0.05);
}

TEST(LogLogTest, ResemblanceOfIdenticalSetsNearOne) {
  LogLogCounter a = Make(1024), b = Make(1024);
  for (DocId id = 0; id < 20000; ++id) {
    a.Add(id);
    b.Add(id);
  }
  auto r = a.EstimateResemblance(b);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r.value(), 0.9);
}

}  // namespace
}  // namespace iqn

// Wire-robustness harness for the synopsis deserializers.
//
// The DHT directory hands DeserializeSynopsisFromBytes whatever bytes a
// remote peer posted, so the decoder must treat its input as hostile:
// every outcome on mutated, truncated, or bit-flipped input has to be a
// clean Ok/Corruption/InvalidArgument status — never an abort, OOB read,
// or unbounded allocation. This file replays >1000 deterministic
// mutations of valid encodings of every synopsis type (plus histograms
// and the compressed Bloom image) and also pins down the two satellite
// guarantees: huge declared counts fail before allocating, and the
// compressed Bloom path round-trips at extreme fill ratios.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "synopses/bloom_filter.h"
#include "synopses/hash_sketch.h"
#include "synopses/histogram_synopsis.h"
#include "synopses/loglog.h"
#include "synopses/min_wise.h"
#include "synopses/serialization.h"
#include "util/bytes.h"
#include "util/random.h"

namespace iqn {
namespace {

const UniversalHashFamily& Family() {
  static const UniversalHashFamily family(4242);
  return family;
}

std::string Hex(const Bytes& bytes) {
  static const char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (uint8_t b : bytes) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xF]);
  }
  return out;
}

bool IsCleanFailure(const Status& status) {
  return status.code() == StatusCode::kCorruption ||
         status.code() == StatusCode::kInvalidArgument;
}

/// The contract under mutation: either the decoder rejects the bytes with
/// a clean status, or it accepts them — in which case the accepted value
/// must itself survive a serialize/deserialize round trip (a mutation can
/// legitimately land on another valid encoding).
void ExpectCleanSynopsisOutcome(const Bytes& bytes) {
  auto result = DeserializeSynopsisFromBytes(bytes);
  if (result.ok()) {
    Bytes again = SerializeSynopsisToBytes(*result.value());
    auto second = DeserializeSynopsisFromBytes(again);
    EXPECT_TRUE(second.ok()) << "accepted input failed to round-trip: "
                             << second.status().ToString()
                             << " input=" << Hex(bytes);
  } else {
    EXPECT_TRUE(IsCleanFailure(result.status()))
        << result.status().ToString() << " input=" << Hex(bytes);
  }
}

void ExpectCleanHistogramOutcome(const Bytes& bytes) {
  ByteReader reader(bytes);
  auto result = DeserializeHistogram(&reader);
  if (!result.ok()) {
    EXPECT_TRUE(IsCleanFailure(result.status()))
        << result.status().ToString() << " input=" << Hex(bytes);
  }
}

/// Valid encodings of every synopsis shape the directory ships.
std::vector<Bytes> SynopsisSeedCorpus() {
  std::vector<Bytes> corpus;

  auto bloom = BloomFilter::Create(512, 3, 42);
  EXPECT_TRUE(bloom.ok());
  for (DocId id = 0; id < 64; ++id) bloom.value().Add(id);
  corpus.push_back(SerializeSynopsisToBytes(bloom.value()));
  corpus.push_back(SerializeBloomFilterCompressed(bloom.value()));

  auto sparse = BloomFilter::Create(2048, 2, 7);
  EXPECT_TRUE(sparse.ok());
  sparse.value().Add(1);
  sparse.value().Add(99);
  corpus.push_back(SerializeBloomFilterCompressed(sparse.value()));

  auto sketch = HashSketch::Create(16, 32, 9);
  EXPECT_TRUE(sketch.ok());
  for (DocId id = 0; id < 300; ++id) sketch.value().Add(id);
  corpus.push_back(SerializeSynopsisToBytes(sketch.value()));

  auto mips = MinWiseSynopsis::Create(48, Family());
  EXPECT_TRUE(mips.ok());
  for (DocId id = 0; id < 200; ++id) mips.value().Add(id);
  corpus.push_back(SerializeSynopsisToBytes(mips.value()));

  auto loglog = LogLogCounter::Create(64, 3, true);
  EXPECT_TRUE(loglog.ok());
  for (DocId id = 0; id < 5000; ++id) loglog.value().Add(id);
  corpus.push_back(SerializeSynopsisToBytes(loglog.value()));

  return corpus;
}

Bytes HistogramSeed() {
  auto factory = [] {
    auto bf = BloomFilter::Create(256, 2, 11);
    EXPECT_TRUE(bf.ok());
    return std::unique_ptr<SetSynopsis>(
        new BloomFilter(std::move(bf.value())));
  };
  auto hist = ScoreHistogramSynopsis::Create(8, factory);
  EXPECT_TRUE(hist.ok());
  Rng rng(31337);
  for (DocId id = 0; id < 120; ++id) hist.value().Add(id, rng.NextDouble());
  ByteWriter writer;
  SerializeHistogram(hist.value(), &writer);
  return writer.Take();
}

/// One deterministic mutation of `seed`: truncate, flip bits, splice
/// random bytes, extend with garbage, or a truncate+flip combination.
Bytes Mutate(const Bytes& seed, Rng* rng) {
  Bytes bytes = seed;
  switch (rng->Uniform(5)) {
    case 0:  // truncate to a random prefix
      bytes.resize(static_cast<size_t>(rng->Uniform(bytes.size() + 1)));
      break;
    case 1: {  // flip 1..8 random bits
      uint64_t flips = 1 + rng->Uniform(8);
      for (uint64_t i = 0; i < flips && !bytes.empty(); ++i) {
        uint64_t bit = rng->Uniform(bytes.size() * 8);
        bytes[static_cast<size_t>(bit / 8)] ^=
            static_cast<uint8_t>(uint64_t{1} << (bit % 8));
      }
      break;
    }
    case 2: {  // overwrite 1..4 random bytes
      uint64_t edits = 1 + rng->Uniform(4);
      for (uint64_t i = 0; i < edits && !bytes.empty(); ++i) {
        bytes[static_cast<size_t>(rng->Uniform(bytes.size()))] =
            static_cast<uint8_t>(rng->Uniform(256));
      }
      break;
    }
    case 3: {  // append 1..16 garbage bytes
      uint64_t extra = 1 + rng->Uniform(16);
      for (uint64_t i = 0; i < extra; ++i) {
        bytes.push_back(static_cast<uint8_t>(rng->Uniform(256)));
      }
      break;
    }
    default: {  // truncate, then flip a bit in what remains
      bytes.resize(static_cast<size_t>(rng->Uniform(bytes.size() + 1)));
      if (!bytes.empty()) {
        uint64_t bit = rng->Uniform(bytes.size() * 8);
        bytes[static_cast<size_t>(bit / 8)] ^=
            static_cast<uint8_t>(uint64_t{1} << (bit % 8));
      }
      break;
    }
  }
  return bytes;
}

TEST(SerializationRobustnessTest, MutatedSynopsisEncodingsNeverCrash) {
  std::vector<Bytes> corpus = SynopsisSeedCorpus();
  ASSERT_EQ(corpus.size(), 6u);
  Rng rng(0xC0FFEE);
  constexpr int kMutationsPerSeed = 200;  // 6 * 200 = 1200 hostile inputs
  for (const Bytes& seed : corpus) {
    ExpectCleanSynopsisOutcome(seed);  // the seed itself must decode
    for (int i = 0; i < kMutationsPerSeed; ++i) {
      ExpectCleanSynopsisOutcome(Mutate(seed, &rng));
    }
  }
}

TEST(SerializationRobustnessTest, MutatedHistogramEncodingsNeverCrash) {
  Bytes seed = HistogramSeed();
  {
    ByteReader reader(seed);
    auto hist = DeserializeHistogram(&reader);
    ASSERT_TRUE(hist.ok()) << hist.status().ToString();
    EXPECT_TRUE(reader.AtEnd());
  }
  Rng rng(0xFACADE);
  for (int i = 0; i < 300; ++i) {
    ExpectCleanHistogramOutcome(Mutate(seed, &rng));
  }
}

// A strict prefix of a valid encoding can never be a complete message:
// every field's length is determined by bytes that truncation does not
// alter, so the decoder must run out of input and say so cleanly.
TEST(SerializationRobustnessTest, EveryTruncationPointFailsCleanly) {
  for (const Bytes& seed : SynopsisSeedCorpus()) {
    for (size_t len = 0; len < seed.size(); ++len) {
      Bytes prefix(seed.begin(), seed.begin() + static_cast<long>(len));
      auto result = DeserializeSynopsisFromBytes(prefix);
      ASSERT_FALSE(result.ok()) << "truncated to " << len << " of "
                                << seed.size() << " bytes";
      EXPECT_TRUE(IsCleanFailure(result.status()))
          << result.status().ToString();
    }
  }
  Bytes hist_seed = HistogramSeed();
  for (size_t len = 0; len < hist_seed.size(); ++len) {
    Bytes prefix(hist_seed.begin(),
                 hist_seed.begin() + static_cast<long>(len));
    ByteReader reader(prefix);
    auto result = DeserializeHistogram(&reader);
    ASSERT_FALSE(result.ok()) << "truncated to " << len << " bytes";
    EXPECT_TRUE(IsCleanFailure(result.status())) << result.status().ToString();
  }
}

// ---------------------------------------------------------------------------
// Resource-exhaustion regressions: a tiny message whose header claims a
// huge element count must be rejected by the count-vs-remaining check
// before any allocation proportional to the claim happens.

TEST(SerializationRobustnessTest, BloomHeaderClaimingMaxBitsFailsFast) {
  ByteWriter writer;
  writer.PutU8(static_cast<uint8_t>(SynopsisType::kBloomFilter));
  writer.PutVarint(uint64_t{1} << 26);  // kMaxBloomBits: an 8 MiB claim
  writer.PutVarint(3);
  writer.PutU64(42);
  // No payload words at all.
  auto result = DeserializeSynopsisFromBytes(writer.Take());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST(SerializationRobustnessTest, BloomHeaderOverMaxBitsIsRejected) {
  ByteWriter writer;
  writer.PutU8(static_cast<uint8_t>(SynopsisType::kBloomFilter));
  writer.PutVarint(uint64_t{1} << 40);
  writer.PutVarint(3);
  writer.PutU64(42);
  auto result = DeserializeSynopsisFromBytes(writer.Take());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST(SerializationRobustnessTest, SketchHeaderClaimingManyBitmapsFailsFast) {
  ByteWriter writer;
  writer.PutU8(static_cast<uint8_t>(SynopsisType::kHashSketch));
  writer.PutVarint(60000);  // bitmaps (within kMaxBitmaps, 480 KB claim)
  writer.PutVarint(32);
  writer.PutU64(9);
  writer.PutU64(0);  // one lonely bitmap instead of 60000
  auto result = DeserializeSynopsisFromBytes(writer.Take());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST(SerializationRobustnessTest, MinWiseHeaderClaimingManyMinsFailsFast) {
  ByteWriter writer;
  writer.PutU8(static_cast<uint8_t>(SynopsisType::kMinWise));
  writer.PutVarint(4096);  // kMaxPermutations
  writer.PutU64(Family().seed());
  auto result = DeserializeSynopsisFromBytes(writer.Take());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST(SerializationRobustnessTest, LogLogHeaderClaimingManyRegistersFailsFast) {
  ByteWriter writer;
  writer.PutU8(static_cast<uint8_t>(SynopsisType::kLogLog));
  writer.PutVarint(65536);  // kMaxRegisters
  writer.PutU64(3);
  writer.PutU8(1);
  auto result = DeserializeSynopsisFromBytes(writer.Take());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST(SerializationRobustnessTest, HistogramHeaderClaimingManyCellsFailsFast) {
  ByteWriter writer;
  writer.PutVarint(64);  // max cells, but only one byte of payload follows
  writer.PutU8(0);
  Bytes bytes = writer.Take();
  ByteReader reader(bytes);
  auto result = DeserializeHistogram(&reader);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST(SerializationRobustnessTest, HistogramHeaderOverMaxCellsIsRejected) {
  ByteWriter writer;
  writer.PutVarint(uint64_t{1} << 31);
  Bytes bytes = writer.Take();
  ByteReader reader(bytes);
  auto result = DeserializeHistogram(&reader);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST(SerializationRobustnessTest,
     CompressedBloomSetBitsBeyondStreamIsRejected) {
  ByteWriter writer;
  writer.PutU8(5);  // kCompressedBloomTag
  writer.PutVarint(1 << 20);
  writer.PutVarint(4);
  writer.PutU64(42);
  writer.PutVarint(100000);  // set bits: impossible for a 2-byte stream
  writer.PutU8(4);           // rice parameter
  writer.PutBytes({0xFF, 0xFF});
  auto result = DeserializeSynopsisFromBytes(writer.Take());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

// ---------------------------------------------------------------------------
// Compressed Bloom round trips at extreme fill ratios. FromWords gives
// exact control over the bit pattern, so each case pins a precise fill.

/// Builds a 1024-bit filter whose bits follow `pattern(bit_index)`.
BloomFilter PatternedFilter(bool (*pattern)(uint64_t)) {
  constexpr uint64_t kBits = 1024;
  std::vector<uint64_t> words(kBits / 64, 0);
  for (uint64_t bit = 0; bit < kBits; ++bit) {
    if (pattern(bit)) words[bit / 64] |= uint64_t{1} << (bit % 64);
  }
  auto bf = BloomFilter::FromWords(kBits, 3, 42, std::move(words));
  EXPECT_TRUE(bf.ok()) << bf.status().ToString();
  return std::move(bf.value());
}

void ExpectCompressedRoundTrip(const BloomFilter& filter) {
  Bytes wire = SerializeBloomFilterCompressed(filter);
  // The shipped image never exceeds the raw one: dense filters fall back.
  EXPECT_LE(wire.size(), SerializeSynopsisToBytes(filter).size());
  auto rt = DeserializeSynopsisFromBytes(wire);
  ASSERT_TRUE(rt.ok()) << rt.status().ToString();
  ASSERT_EQ(rt.value()->type(), SynopsisType::kBloomFilter);
  auto* decoded = static_cast<BloomFilter*>(rt.value().get());
  EXPECT_EQ(decoded->words(), filter.words());
  EXPECT_EQ(decoded->num_bits(), filter.num_bits());
  EXPECT_EQ(decoded->num_hashes(), filter.num_hashes());
  EXPECT_EQ(decoded->seed(), filter.seed());
}

TEST(CompressedBloomExtremesTest, EmptyFilterRoundTripsAndShrinks) {
  BloomFilter empty = PatternedFilter([](uint64_t) { return false; });
  Bytes wire = SerializeBloomFilterCompressed(empty);
  EXPECT_LT(wire.size(), SerializeSynopsisToBytes(empty).size());
  ExpectCompressedRoundTrip(empty);
}

TEST(CompressedBloomExtremesTest, SingleBitExtremePositionsRoundTrip) {
  ExpectCompressedRoundTrip(
      PatternedFilter([](uint64_t bit) { return bit == 0; }));
  ExpectCompressedRoundTrip(
      PatternedFilter([](uint64_t bit) { return bit == 1023; }));
}

TEST(CompressedBloomExtremesTest, FullFilterFallsBackToRawImage) {
  BloomFilter full = PatternedFilter([](uint64_t) { return true; });
  Bytes wire = SerializeBloomFilterCompressed(full);
  // A saturated filter cannot compress; the fallback ships the raw image,
  // which starts with the plain kBloomFilter tag.
  EXPECT_EQ(wire, SerializeSynopsisToBytes(full));
  ExpectCompressedRoundTrip(full);
}

TEST(CompressedBloomExtremesTest, DenseFallbackBoundarySweepRoundTrips) {
  // Sweep fill ratios across the sparse-to-dense range so the sweep
  // crosses the point where SerializeBloomFilterCompressed switches from
  // the Golomb-Rice image to the raw fallback. Every step must decode to
  // the identical filter regardless of which form was shipped.
  constexpr uint64_t kBits = 1024;
  bool saw_compressed = false;
  bool saw_fallback = false;
  for (uint64_t stride = 1; stride <= 64; stride *= 2) {
    std::vector<uint64_t> words(kBits / 64, 0);
    for (uint64_t bit = 0; bit < kBits; bit += stride) {
      words[bit / 64] |= uint64_t{1} << (bit % 64);
    }
    auto bf = BloomFilter::FromWords(kBits, 3, 42, std::move(words));
    ASSERT_TRUE(bf.ok());
    Bytes wire = SerializeBloomFilterCompressed(bf.value());
    if (wire.size() < SerializeSynopsisToBytes(bf.value()).size()) {
      saw_compressed = true;
    } else {
      saw_fallback = true;
    }
    ExpectCompressedRoundTrip(bf.value());
  }
  // The sweep must actually exercise both sides of the boundary.
  EXPECT_TRUE(saw_compressed);
  EXPECT_TRUE(saw_fallback);
}

}  // namespace
}  // namespace iqn

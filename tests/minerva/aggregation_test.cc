#include "minerva/aggregation.h"

#include <gtest/gtest.h>

#include "minerva/post.h"
#include "synopses/hash_sketch.h"
#include "synopses/min_wise.h"

namespace iqn {
namespace {

SynopsisConfig MipsConfig() { return SynopsisConfig{}; }

std::unique_ptr<SetSynopsis> MipsOf(DocId lo, DocId hi) {
  auto syn = MipsConfig().MakeEmpty();
  EXPECT_TRUE(syn.ok());
  for (DocId id = lo; id < hi; ++id) syn.value()->Add(id);
  return std::move(syn).value();
}

TEST(CombineTest, DisjunctiveUnionCoversBothTerms) {
  auto term1 = MipsOf(0, 500);
  auto term2 = MipsOf(400, 900);
  auto combined =
      CombinePerTermSynopses({term1.get(), term2.get()}, QueryMode::kDisjunctive);
  ASSERT_TRUE(combined.ok());
  // Union of 0..899 = 900 docs. A 64-permutation MIPs cardinality
  // estimate has std ~ n/sqrt(N) ~ 112, so only order-of-magnitude is
  // checked here; exactness of the union itself is checked below.
  EXPECT_GT(combined.value()->EstimateCardinality(), 450.0);
  EXPECT_LT(combined.value()->EstimateCardinality(), 1500.0);
  // And it matches a directly built union synopsis exactly (MIPs property).
  auto direct = MipsOf(0, 900);
  auto r = combined.value()->EstimateResemblance(*direct);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value(), 1.0);
}

TEST(CombineTest, ConjunctiveIntersectionIsConservative) {
  auto term1 = MipsOf(0, 600);
  auto term2 = MipsOf(400, 1000);
  auto combined = CombinePerTermSynopses({term1.get(), term2.get()},
                                         QueryMode::kConjunctive);
  ASSERT_TRUE(combined.ok());
  // True intersection = 200; the max-heuristic approximates a superset.
  EXPECT_GT(combined.value()->EstimateCardinality(), 0.0);
}

TEST(CombineTest, SingleSynopsisPassesThrough) {
  auto term1 = MipsOf(0, 100);
  auto combined = CombinePerTermSynopses({term1.get()}, QueryMode::kDisjunctive);
  ASSERT_TRUE(combined.ok());
  auto r = combined.value()->EstimateResemblance(*term1);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value(), 1.0);
}

TEST(CombineTest, Validates) {
  EXPECT_FALSE(CombinePerTermSynopses({}, QueryMode::kDisjunctive).ok());
  EXPECT_FALSE(
      CombinePerTermSynopses({nullptr}, QueryMode::kDisjunctive).ok());
}

TEST(CombineTest, HashSketchConjunctiveRefuses) {
  auto a = HashSketch::Create(16, 64);
  auto b = HashSketch::Create(16, 64);
  ASSERT_TRUE(a.ok() && b.ok());
  auto combined = CombinePerTermSynopses({&a.value(), &b.value()},
                                         QueryMode::kConjunctive);
  EXPECT_EQ(combined.status().code(), StatusCode::kUnimplemented);
  // ... but disjunctive union works.
  EXPECT_TRUE(CombinePerTermSynopses({&a.value(), &b.value()},
                                     QueryMode::kDisjunctive)
                  .ok());
}

TEST(CombinedCardinalityTest, DisjunctiveClampsToUnionBounds) {
  auto syn = MipsOf(0, 100);
  // Bounds from list lengths {400, 300}: union in [400, 700]; the raw
  // estimate (~100) is below the lower bound and must be lifted.
  double card = CombinedCardinality(*syn, {400, 300}, QueryMode::kDisjunctive);
  EXPECT_GE(card, 400.0);
  EXPECT_LE(card, 700.0);
}

TEST(CombinedCardinalityTest, ConjunctiveClampsToSmallestList) {
  auto syn = MipsOf(0, 5000);
  double card = CombinedCardinality(*syn, {400, 300}, QueryMode::kConjunctive);
  EXPECT_LE(card, 300.0);
}

TEST(CombinedCardinalityTest, NoListsPassesEstimateThrough) {
  auto syn = MipsOf(0, 1000);
  double card = CombinedCardinality(*syn, {}, QueryMode::kDisjunctive);
  EXPECT_NEAR(card, syn->EstimateCardinality(), 1e-9);
}

TEST(StrategyNameTest, Names) {
  EXPECT_STREQ(AggregationStrategyName(AggregationStrategy::kPerPeer),
               "per-peer");
  EXPECT_STREQ(AggregationStrategyName(AggregationStrategy::kPerTerm),
               "per-term");
}

}  // namespace
}  // namespace iqn

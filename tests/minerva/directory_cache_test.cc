#include "minerva/directory_cache.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dht/kv_version.h"
#include "minerva/api.h"
#include "minerva/directory.h"
#include "minerva/post.h"
#include "synopses/serialization.h"
#include "util/metrics.h"
#include "workload/fragments.h"
#include "workload/synthetic_corpus.h"

namespace iqn {
namespace {

std::vector<Post> MakePosts(const std::string& term, size_t num_posts,
                            DocId first_doc = 1) {
  SynopsisConfig config;
  std::vector<Post> posts;
  for (size_t p = 0; p < num_posts; ++p) {
    auto syn = config.MakeEmpty();
    EXPECT_TRUE(syn.ok());
    Post post;
    post.peer_id = 100 + p;
    post.address = 100 + p;
    post.term = term;
    post.list_length = 10;
    post.term_space_size = 1000;
    for (DocId id = first_doc; id < first_doc + 10; ++id) {
      syn.value()->Add(id + static_cast<DocId>(p) * 50);
    }
    post.synopsis = SerializeSynopsisToBytes(*syn.value());
    posts.push_back(std::move(post));
  }
  return posts;
}

CacheConfig EnabledConfig() {
  CacheConfig config;
  config.enabled = true;
  return config;
}

TEST(DirectoryCacheTest, DisabledCacheNeverServesNorFills) {
  KvVersionMap versions;
  DirectoryCache cache(CacheConfig{}, &versions);
  DirectoryCache::Session session(&cache);
  EXPECT_EQ(session.Lookup("t", 0), nullptr);
  EXPECT_EQ(session.Fill("t", 0, MakePosts("t", 2)), nullptr);
  cache.Commit(&session);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(session.hits(), 0u);
  EXPECT_EQ(session.misses(), 0u);
}

TEST(DirectoryCacheTest, FillReturnsMemoizedCopyAndCommitServesHits) {
  KvVersionMap versions;
  versions.Bump(Directory::KeyForTerm("t"));
  DirectoryCache cache(EnabledConfig(), &versions);

  DirectoryCache::Session fill_session(&cache);
  std::vector<Post> fetched = MakePosts("t", 3);
  const std::vector<Post>* buffered = fill_session.Fill("t", 0, fetched);
  ASSERT_NE(buffered, nullptr);
  ASSERT_EQ(buffered->size(), 3u);
  // The buffered copy carries pre-materialized decode memos: copies of
  // these posts share one decoded synopsis object.
  auto first = (*buffered)[0].SharedSynopsis();
  ASSERT_TRUE(first.ok());
  Post copy = (*buffered)[0];
  auto second = copy.SharedSynopsis();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value().get(), second.value().get());
  cache.Commit(&fill_session);
  EXPECT_EQ(cache.size(), 1u);

  DirectoryCache::Session session(&cache);
  const std::vector<Post>* hit = session.Lookup("t", 0);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->size(), 3u);
  EXPECT_EQ((*hit)[2].peer_id, 102u);
  EXPECT_EQ(session.hits(), 1u);
  EXPECT_EQ(session.misses(), 0u);
}

TEST(DirectoryCacheTest, PendingFillsInvisibleUntilCommit) {
  KvVersionMap versions;
  DirectoryCache cache(EnabledConfig(), &versions);

  DirectoryCache::Session writer(&cache);
  writer.Fill("t", 0, MakePosts("t", 1));
  // Another session (and even the writer itself) reads committed state
  // only — the fill is still buffered.
  DirectoryCache::Session reader(&cache);
  EXPECT_EQ(reader.Lookup("t", 0), nullptr);
  EXPECT_EQ(cache.size(), 0u);
  cache.Commit(&writer);
  DirectoryCache::Session after(&cache);
  EXPECT_NE(after.Lookup("t", 0), nullptr);
}

TEST(DirectoryCacheTest, VersionBumpInvalidatesExactlyThatTerm) {
  KvVersionMap versions;
  DirectoryCache cache(EnabledConfig(), &versions);

  DirectoryCache::Session fill_session(&cache);
  fill_session.Fill("a", 0, MakePosts("a", 2));
  fill_session.Fill("b", 0, MakePosts("b", 2));
  cache.Commit(&fill_session);
  EXPECT_EQ(cache.size(), 2u);

  // A republish of term "a" bumps its key; "b" is untouched.
  versions.Bump(Directory::KeyForTerm("a"));
  DirectoryCache::Session session(&cache);
  EXPECT_EQ(session.Lookup("a", 0), nullptr);
  EXPECT_NE(session.Lookup("b", 0), nullptr);
  EXPECT_EQ(session.hits(), 1u);
  EXPECT_EQ(session.misses(), 1u);

  // Refilling the stale term counts an invalidation and serves again.
  uint64_t invalidations_before =
      MetricsRegistry::Default().GetCounter("cache.invalidations")->Value();
  session.Fill("a", 0, MakePosts("a", 2, /*first_doc=*/500));
  cache.Commit(&session);
  EXPECT_EQ(
      MetricsRegistry::Default().GetCounter("cache.invalidations")->Value(),
      invalidations_before + 1);
  DirectoryCache::Session after(&cache);
  EXPECT_NE(after.Lookup("a", 0), nullptr);
}

TEST(DirectoryCacheTest, TruncationLimitIsPartOfTheKey) {
  KvVersionMap versions;
  DirectoryCache cache(EnabledConfig(), &versions);
  DirectoryCache::Session fill_session(&cache);
  fill_session.Fill("t", /*limit=*/5, MakePosts("t", 5));
  cache.Commit(&fill_session);

  DirectoryCache::Session session(&cache);
  EXPECT_NE(session.Lookup("t", 5), nullptr);
  // A full-list (or differently truncated) fetch must not be served from
  // the truncated copy.
  EXPECT_EQ(session.Lookup("t", 0), nullptr);
  EXPECT_EQ(session.Lookup("t", 10), nullptr);
}

TEST(DirectoryCacheTest, SimulatedTimeTtlExpiresEntries) {
  KvVersionMap versions;
  CacheConfig config = EnabledConfig();
  config.ttl_ms = 10.0;
  DirectoryCache cache(config, &versions);

  DirectoryCache::Session fill_session(&cache);
  fill_session.Fill("t", 0, MakePosts("t", 1));
  cache.Commit(&fill_session);

  DirectoryCache::Session fresh(&cache);
  EXPECT_NE(fresh.Lookup("t", 0), nullptr);
  cache.AdvanceTime(9.0);
  DirectoryCache::Session still_fresh(&cache);
  EXPECT_NE(still_fresh.Lookup("t", 0), nullptr);
  cache.AdvanceTime(2.0);
  DirectoryCache::Session expired(&cache);
  EXPECT_EQ(expired.Lookup("t", 0), nullptr);
}

TEST(DirectoryCacheTest, EvictsOldestFilledBeyondMaxTerms) {
  KvVersionMap versions;
  CacheConfig config = EnabledConfig();
  config.max_terms = 2;
  DirectoryCache cache(config, &versions);

  DirectoryCache::Session s1(&cache);
  s1.Fill("a", 0, MakePosts("a", 1));
  cache.Commit(&s1);
  DirectoryCache::Session s2(&cache);
  s2.Fill("b", 0, MakePosts("b", 1));
  cache.Commit(&s2);
  DirectoryCache::Session s3(&cache);
  s3.Fill("c", 0, MakePosts("c", 1));
  cache.Commit(&s3);

  EXPECT_EQ(cache.size(), 2u);
  DirectoryCache::Session session(&cache);
  EXPECT_EQ(session.Lookup("a", 0), nullptr);  // oldest fill evicted
  EXPECT_NE(session.Lookup("b", 0), nullptr);
  EXPECT_NE(session.Lookup("c", 0), nullptr);
}

TEST(DirectoryCacheTest, ClearDropsEverything) {
  KvVersionMap versions;
  DirectoryCache cache(EnabledConfig(), &versions);
  DirectoryCache::Session fill_session(&cache);
  fill_session.Fill("t", 0, MakePosts("t", 1));
  cache.Commit(&fill_session);
  EXPECT_EQ(cache.size(), 1u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  DirectoryCache::Session session(&cache);
  EXPECT_EQ(session.Lookup("t", 0), nullptr);
}

// ---------------------------------------------------------------------
// Engine-level: version bumps come from real publish/churn traffic, and
// republishing must invalidate cached PeerLists (no stale serving).

std::vector<Corpus> SmallCollections(size_t peers = 4, uint64_t seed = 5) {
  SyntheticCorpusOptions opts;
  opts.num_documents = 240;
  opts.vocabulary_size = 400;
  opts.min_document_length = 15;
  opts.max_document_length = 40;
  opts.seed = seed;
  auto gen = SyntheticCorpusGenerator::Create(opts);
  EXPECT_TRUE(gen.ok());
  Corpus corpus = gen.value().Generate();
  auto frags = SplitIntoFragments(corpus, peers * 2);
  EXPECT_TRUE(frags.ok());
  auto collections = SlidingWindowCollections(frags.value(), /*window=*/3,
                                              /*offset=*/2, peers);
  EXPECT_TRUE(collections.ok());
  return std::move(collections).value();
}

Query FrequentTermQuery(minerva::Engine& engine) {
  Query q;
  size_t best_df = 0;
  for (const auto& [term, list] :
       engine.core().reference_index().lists()) {
    if (list.size() > best_df) {
      best_df = list.size();
      q.terms = {term};
    }
  }
  q.k = 20;
  return q;
}

TEST(DirectoryCacheEngineTest, PublishBumpsVersions) {
  minerva::EngineOptions options;
  auto engine = minerva::Engine::Create(options, SmallCollections());
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ(engine.value()->core().version_map().size(), 0u);
  ASSERT_TRUE(engine.value()->Publish().ok());
  EXPECT_GT(engine.value()->core().version_map().size(), 0u);
}

TEST(DirectoryCacheEngineTest, RepeatedQueriesHitAndRepublishInvalidates) {
  minerva::EngineOptions cached_options;
  cached_options.core.cache.enabled = true;
  auto cached = minerva::Engine::Create(cached_options, SmallCollections());
  ASSERT_TRUE(cached.ok());
  auto uncached =
      minerva::Engine::Create(minerva::EngineOptions{}, SmallCollections());
  ASSERT_TRUE(uncached.ok());
  ASSERT_TRUE(cached.value()->Publish().ok());
  ASSERT_TRUE(uncached.value()->Publish().ok());

  Query query = FrequentTermQuery(*cached.value());
  auto same_outcomes = [&](const char* what) {
    QueryOutcome with_cache;
    QueryOutcome without_cache;
    ASSERT_TRUE(cached.value()->RunQuery(0, query, &with_cache).ok()) << what;
    ASSERT_TRUE(uncached.value()->RunQuery(0, query, &without_cache).ok())
        << what;
    EXPECT_EQ(with_cache.recall, without_cache.recall) << what;
    ASSERT_EQ(with_cache.decision.peers.size(),
              without_cache.decision.peers.size())
        << what;
    for (size_t i = 0; i < with_cache.decision.peers.size(); ++i) {
      EXPECT_EQ(with_cache.decision.peers[i].peer_id,
                without_cache.decision.peers[i].peer_id)
          << what;
    }
    ASSERT_EQ(with_cache.execution.merged.size(),
              without_cache.execution.merged.size())
        << what;
    for (size_t i = 0; i < with_cache.execution.merged.size(); ++i) {
      EXPECT_EQ(with_cache.execution.merged[i].doc,
                without_cache.execution.merged[i].doc)
          << what;
      EXPECT_EQ(with_cache.execution.merged[i].score,
                without_cache.execution.merged[i].score)
          << what;
    }
  };

  uint64_t hits_before =
      MetricsRegistry::Default().GetCounter("cache.hits")->Value();
  same_outcomes("cold");
  same_outcomes("warm");  // second run is served from cache
  EXPECT_GT(MetricsRegistry::Default().GetCounter("cache.hits")->Value(),
            hits_before);
  // A hit is charged zero network cost: the warm run's routing bytes
  // shrink vs the uncached engine.
  QueryOutcome warm_cached;
  QueryOutcome warm_uncached;
  ASSERT_TRUE(cached.value()->RunQuery(0, query, &warm_cached).ok());
  ASSERT_TRUE(uncached.value()->RunQuery(0, query, &warm_uncached).ok());
  EXPECT_LT(warm_cached.routing_bytes, warm_uncached.routing_bytes);

  // Evolve ONE peer identically in both engines, republishing the
  // touched terms. The version bump must invalidate the cached copy: the
  // cached engine may not serve the pre-churn PeerList.
  SyntheticCorpusOptions delta_opts;
  delta_opts.num_documents = 60;
  delta_opts.vocabulary_size = 400;
  delta_opts.min_document_length = 15;
  delta_opts.max_document_length = 40;
  delta_opts.first_doc_id = 10000;
  delta_opts.vocabulary_seed = 5;
  delta_opts.seed = 99;
  auto delta_gen = SyntheticCorpusGenerator::Create(delta_opts);
  ASSERT_TRUE(delta_gen.ok());
  ASSERT_TRUE(cached.value()
                  ->peer(1)
                  .AddDocuments(delta_gen.value().Generate(),
                                /*republish=*/true)
                  .ok());
  ASSERT_TRUE(uncached.value()
                  ->peer(1)
                  .AddDocuments(delta_gen.value().Generate(),
                                /*republish=*/true)
                  .ok());
  cached.value()->RebuildReferenceIndex();
  uncached.value()->RebuildReferenceIndex();
  same_outcomes("after republish");
}

}  // namespace
}  // namespace iqn

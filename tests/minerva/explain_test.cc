#include "minerva/explain.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "minerva/engine.h"
#include "minerva/internal/iqn_router.h"
#include "synopses/estimators.h"
#include "synopses/min_wise.h"
#include "tests/minerva/test_helpers.h"
#include "util/trace.h"
#include "workload/fragments.h"
#include "workload/synthetic_corpus.h"

namespace iqn {
namespace {

// Paper Sec. 5 acceptance fixture: three candidate peers over MIPs
// synopses. Peers 1 and 2 hold the SAME 100 documents; peer 3 holds a
// disjoint 100. After IQN absorbs peer 1, peer 2's novelty must collapse
// to exactly zero (resemblance 1 against the reference) while peer 3
// keeps near-full novelty — and the iteration table ExplainQuery renders
// must reproduce the hand-computed resemblance arithmetic.
struct ThreePeerFixture : test::RoutingFixture {
  ThreePeerFixture() {
    candidates.push_back(
        test::MakeCandidate(1, config, {{"term", test::Range(1, 101)}}));
    candidates.push_back(
        test::MakeCandidate(2, config, {{"term", test::Range(1, 101)}}));
    candidates.push_back(
        test::MakeCandidate(3, config, {{"term", test::Range(101, 201)}}));
  }

  /// The candidate's decoded MIPs synopsis, for hand computation.
  MinWiseSynopsis Mips(size_t candidate_index) const {
    auto syn = candidates[candidate_index].posts.at("term").DecodeSynopsis();
    EXPECT_TRUE(syn.ok());
    return *static_cast<const MinWiseSynopsis*>(syn.value().get());
  }
};

Result<QueryExplanation> RouteAndExplain(const ThreePeerFixture& fixture,
                                         size_t max_peers) {
  IqnOptions options;
  options.use_quality = false;  // novelty-only: isolates the MIPs math
  IqnRouter router(options);
  double clock = 0.0;
  QueryTrace trace([&clock] { return clock; });
  TraceScope scope(&trace);
  Result<RoutingDecision> decision = router.Route(fixture.Input(max_peers));
  if (!decision.ok()) return decision.status();
  return ExplainFromTrace(trace);
}

const ExplainCandidateRow* FindRow(const ExplainIteration& iter,
                                   uint64_t peer_id) {
  for (const ExplainCandidateRow& row : iter.ranking) {
    if (row.peer_id == peer_id) return &row;
  }
  return nullptr;
}

TEST(ExplainTest, FirstIterationGivesEveryPeerFullNovelty) {
  ThreePeerFixture fixture;
  auto explanation = RouteAndExplain(fixture, 3);
  ASSERT_TRUE(explanation.ok()) << explanation.status().ToString();
  ASSERT_EQ(explanation.value().iterations.size(), 3u);

  // Empty reference: resemblance 0 against anything, so novelty is the
  // full claimed cardinality 100 for all three candidates.
  const ExplainIteration& first = explanation.value().iterations[0];
  ASSERT_EQ(first.ranking.size(), 3u);
  for (const ExplainCandidateRow& row : first.ranking) {
    EXPECT_DOUBLE_EQ(row.novelty, 100.0) << "peer " << row.peer_id;
  }
  // Three-way tie; Select-Best-Peer's (score, peer id) tie-break picks
  // the smallest id.
  ASSERT_TRUE(first.has_winner);
  EXPECT_EQ(first.winner_peer, 1u);
  EXPECT_DOUBLE_EQ(first.winner_novelty, 100.0);
  EXPECT_DOUBLE_EQ(first.covered_before, 0.0);
  EXPECT_DOUBLE_EQ(first.covered_after, 100.0);
}

TEST(ExplainTest, CoveredPeerNoveltyCollapsesToZeroHandComputed) {
  ThreePeerFixture fixture;
  auto explanation = RouteAndExplain(fixture, 3);
  ASSERT_TRUE(explanation.ok()) << explanation.status().ToString();
  const ExplainIteration& second = explanation.value().iterations[1];

  // Peer 2 posted the identical document set the reference now covers:
  // resemblance exactly 1, so overlap = 1 * (100 + 100) / (1 + 1) = 100
  // and novelty = clamp(100 - 100) = 0. This is the paper's Sec. 5
  // headline behavior.
  const ExplainCandidateRow* duplicate = FindRow(second, 2);
  ASSERT_NE(duplicate, nullptr);
  EXPECT_DOUBLE_EQ(duplicate->novelty, 0.0);

  // Peer 3's novelty from first principles: count matching min positions
  // between the reference MIPs (== peer 1's synopsis after absorbing it
  // into the empty seed) and peer 3's MIPs, then run the paper's
  // resemblance -> overlap -> novelty arithmetic by hand.
  MinWiseSynopsis reference = fixture.Mips(0);
  MinWiseSynopsis disjoint = fixture.Mips(2);
  ASSERT_EQ(reference.mins().size(), disjoint.mins().size());
  size_t matches = 0;
  for (size_t i = 0; i < reference.mins().size(); ++i) {
    if (reference.mins()[i] == disjoint.mins()[i]) ++matches;
  }
  double r = static_cast<double>(matches) /
             static_cast<double>(reference.mins().size());
  double overlap = r <= 0.0
                       ? 0.0
                       : std::min(r * (100.0 + 100.0) / (r + 1.0), 100.0);
  double expected = std::clamp(100.0 - overlap, 0.0, 100.0);

  const ExplainCandidateRow* fresh = FindRow(second, 3);
  ASSERT_NE(fresh, nullptr);
  EXPECT_DOUBLE_EQ(fresh->novelty, expected);
  // Disjoint sets: the permutations should (almost) never collide, so
  // novelty stays near-full and peer 3 must win this iteration.
  EXPECT_GT(fresh->novelty, 90.0);
  ASSERT_TRUE(second.has_winner);
  EXPECT_EQ(second.winner_peer, 3u);

  // The rendered row order follows combined score: peer 3 above peer 2.
  ASSERT_EQ(second.ranking.size(), 2u);
  EXPECT_EQ(second.ranking[0].peer_id, 3u);
  EXPECT_TRUE(second.ranking[0].selected);
  EXPECT_FALSE(second.ranking[1].selected);
}

TEST(ExplainTest, ThirdIterationMatchesHandComputedUnionReference) {
  ThreePeerFixture fixture;
  auto explanation = RouteAndExplain(fixture, 3);
  ASSERT_TRUE(explanation.ok()) << explanation.status().ToString();
  // Third iteration: only duplicate peer 2 remains, scored against the
  // reference that now covers peers 1 and 3. Replay the whole estimate
  // by hand: union = position-wise min, resemblance = match fraction,
  // overlap and novelty per the paper's formulas — the rendered number
  // must be bit-identical.
  const ExplainIteration& third = explanation.value().iterations[2];
  ASSERT_TRUE(third.has_winner);
  EXPECT_EQ(third.winner_peer, 2u);

  MinWiseSynopsis a = fixture.Mips(0);
  MinWiseSynopsis c = fixture.Mips(2);
  size_t n = a.mins().size();
  // Iteration 2's credited novelty for peer 3 sets the reference
  // cardinality the third iteration estimates against.
  size_t matches_ac = 0;
  for (size_t i = 0; i < n; ++i) {
    if (a.mins()[i] == c.mins()[i]) ++matches_ac;
  }
  double r_ac = static_cast<double>(matches_ac) / static_cast<double>(n);
  double overlap_ac =
      r_ac <= 0.0
          ? 0.0
          : std::min(r_ac * (100.0 + 100.0) / (r_ac + 1.0), 100.0);
  double ref_card = 100.0 + std::clamp(100.0 - overlap_ac, 0.0, 100.0);

  // Reference synopsis after absorbing both: position-wise min of the
  // two MIPs vectors; peer 2's synopsis is identical to peer 1's.
  size_t matches_ref_b = 0;
  for (size_t i = 0; i < n; ++i) {
    if (std::min(a.mins()[i], c.mins()[i]) == a.mins()[i]) ++matches_ref_b;
  }
  double r = static_cast<double>(matches_ref_b) / static_cast<double>(n);
  double overlap =
      r <= 0.0 ? 0.0
               : std::min(r * (ref_card + 100.0) / (r + 1.0),
                          std::min(ref_card, 100.0));
  double expected = std::clamp(100.0 - overlap, 0.0, 100.0);

  EXPECT_DOUBLE_EQ(third.winner_novelty, expected);
  // The covered-space estimate advances by exactly the credited novelty.
  EXPECT_DOUBLE_EQ(third.covered_after, third.covered_before + expected);
  // An (almost) fully covered peer scores a small fraction of its list.
  EXPECT_LT(third.winner_novelty, 25.0);
}

TEST(ExplainTest, RenderProducesTableWithWinnerMarkers) {
  ThreePeerFixture fixture;
  auto explanation = RouteAndExplain(fixture, 2);
  ASSERT_TRUE(explanation.ok());
  std::string text = RenderExplanation(explanation.value());
  EXPECT_NE(text.find("IQN("), std::string::npos);
  EXPECT_NE(text.find("2 iterations"), std::string::npos);
  EXPECT_NE(text.find("iteration 1: covered 0 -> 100"), std::string::npos);
  EXPECT_NE(text.find("*"), std::string::npos);
  EXPECT_NE(text.find("novelty"), std::string::npos);
}

TEST(ExplainTest, ExplainFromTraceWithoutRouteSpanIsNotFound) {
  QueryTrace trace([] { return 0.0; });
  uint64_t id = trace.BeginSpan("something_else");
  trace.EndSpan(id);
  EXPECT_EQ(ExplainFromTrace(trace).status().code(), StatusCode::kNotFound);
}

TEST(ExplainTest, ExplainQueryRequiresACollectedTrace) {
  QueryOutcome outcome;
  EXPECT_EQ(ExplainQuery(outcome).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(ExplainTest, EndToEndThroughEngineCollectedTrace) {
  SyntheticCorpusOptions copts;
  copts.num_documents = 240;
  copts.vocabulary_size = 400;
  copts.min_document_length = 15;
  copts.max_document_length = 40;
  copts.seed = 5;
  auto gen = SyntheticCorpusGenerator::Create(copts);
  ASSERT_TRUE(gen.ok());
  Corpus corpus = gen.value().Generate();
  auto frags = SplitIntoFragments(corpus, 8);
  ASSERT_TRUE(frags.ok());
  auto collections = SlidingWindowCollections(frags.value(), 3, 2, 4);
  ASSERT_TRUE(collections.ok());

  EngineOptions options;
  options.collect_traces = true;
  auto engine =
      MinervaEngine::Create(options, std::move(collections).value());
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine.value()->PublishAll().ok());

  Query query;
  size_t best_df = 0;
  for (const auto& [term, list] : engine.value()->reference_index().lists()) {
    if (list.size() > best_df) {
      best_df = list.size();
      query.terms = {term};
    }
  }
  query.k = 20;

  IqnRouter router;
  auto outcome = engine.value()->RunQuery(0, query, router, 2);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  ASSERT_NE(outcome.value().trace, nullptr);

  auto text = ExplainQuery(outcome.value());
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text.value().find("routing explanation"), std::string::npos);
  EXPECT_NE(text.value().find("iteration 1"), std::string::npos);
  // The per-phase profile table rides along, built from the same trace.
  EXPECT_NE(text.value().find("phase profile (simulated time)"),
            std::string::npos);
  EXPECT_NE(text.value().find("route"), std::string::npos);
  EXPECT_NE(text.value().find("merge"), std::string::npos);
  // The trace also carries the engine's phase structure.
  EXPECT_NE(outcome.value().trace->Find("query"), nullptr);
  EXPECT_NE(outcome.value().trace->Find("route"), nullptr);
  EXPECT_NE(outcome.value().trace->Find("rpc"), nullptr);
  // Traces off => no trace attached.
  options.collect_traces = false;
}

}  // namespace
}  // namespace iqn

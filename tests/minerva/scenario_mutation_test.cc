// 500-mutation robustness sweep over the scenario-spec parser: take the
// canonical chaos spec, mangle it with seeded random edits (byte flips,
// splices, truncations, duplications), and require ParseScenarioSpec to
// either fail with a Status or succeed AND round-trip — never crash,
// hang, or accept something it cannot re-emit. This is the in-tree
// ctest companion of fuzz/scenario_spec_fuzz.cc (same invariant, fixed
// seed, runs on every plain test pass without a fuzzing toolchain).

#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "minerva/scenario.h"
#include "util/random.h"

#ifndef IQN_SOURCE_DIR
#error "tests/CMakeLists.txt must define IQN_SOURCE_DIR for this test"
#endif

namespace minerva {
namespace {

constexpr int kMutations = 500;

std::string LoadSeedSpec() {
  std::ifstream in(
      std::string(IQN_SOURCE_DIR) + "/scenarios/chaos_baseline.json",
      std::ios::binary);
  EXPECT_TRUE(in.good());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Bytes likely to build interesting almost-JSON when spliced in.
const char kAlphabet[] = "{}[]\",:0123456789eE.-+ truefalsenl\\x7f\x01\xff";

std::string Mutate(const std::string& seed, iqn::Rng* rng) {
  std::string text = seed;
  size_t edits = 1 + rng->Next() % 4;
  for (size_t e = 0; e < edits && !text.empty(); ++e) {
    switch (rng->Next() % 5) {
      case 0: {  // flip one byte
        size_t pos = rng->Next() % text.size();
        text[pos] = kAlphabet[rng->Next() % (sizeof(kAlphabet) - 1)];
        break;
      }
      case 1: {  // delete a short span
        size_t pos = rng->Next() % text.size();
        size_t len = 1 + rng->Next() % 8;
        text.erase(pos, len);
        break;
      }
      case 2: {  // insert noise
        size_t pos = rng->Next() % (text.size() + 1);
        size_t len = 1 + rng->Next() % 8;
        std::string noise;
        for (size_t i = 0; i < len; ++i) {
          noise.push_back(
              kAlphabet[rng->Next() % (sizeof(kAlphabet) - 1)]);
        }
        text.insert(pos, noise);
        break;
      }
      case 3: {  // duplicate a span elsewhere
        size_t pos = rng->Next() % text.size();
        size_t len = 1 + rng->Next() % 16;
        std::string span = text.substr(pos, len);
        text.insert(rng->Next() % (text.size() + 1), span);
        break;
      }
      case 4: {  // truncate
        text.resize(rng->Next() % (text.size() + 1));
        break;
      }
    }
  }
  return text;
}

TEST(ScenarioMutationTest, FiveHundredMutationsNeverBreakTheParser) {
  const std::string seed = LoadSeedSpec();
  ASSERT_FALSE(seed.empty());
  iqn::Rng rng(2026);
  int accepted = 0;
  int rejected = 0;
  for (int i = 0; i < kMutations; ++i) {
    std::string mutated = Mutate(seed, &rng);
    auto spec = ParseScenarioSpec(mutated);
    if (!spec.ok()) {
      // Every rejection must carry a message — a blank Status means an
      // error path forgot its diagnosis.
      EXPECT_FALSE(spec.status().message().empty()) << "mutation " << i;
      ++rejected;
      continue;
    }
    ++accepted;
    // Anything accepted must round-trip: emit -> parse -> emit fixed
    // point, or the canonical form is lossy for this input.
    std::string emitted = EmitScenarioSpec(spec.value());
    auto again = ParseScenarioSpec(emitted);
    ASSERT_TRUE(again.ok())
        << "mutation " << i << " parsed but its emission did not: "
        << again.status().ToString();
    EXPECT_EQ(EmitScenarioSpec(again.value()), emitted) << "mutation " << i;
  }
  // The mix should contain both outcomes: all-rejected would mean the
  // mutator only produces garbage (weak coverage), all-accepted that it
  // never actually mutates.
  EXPECT_GT(rejected, 0);
  EXPECT_EQ(accepted + rejected, kMutations);
}

}  // namespace
}  // namespace minerva

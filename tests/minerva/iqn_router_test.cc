#include "minerva/internal/iqn_router.h"

#include <gtest/gtest.h>

#include <set>

#include "tests/minerva/test_helpers.h"

namespace iqn {
namespace {

using test::MakeCandidate;
using test::Range;
using test::RoutingFixture;

std::vector<uint64_t> SelectedIds(const RoutingDecision& decision) {
  std::vector<uint64_t> ids;
  for (const auto& p : decision.peers) ids.push_back(p.peer_id);
  return ids;
}

TEST(IqnRouterTest, RequiresSynopsisConfig) {
  RoutingFixture fx;
  fx.candidates.push_back(MakeCandidate(0, fx.config, {{"term", Range(0, 5)}}));
  RoutingInput input = fx.Input(1);
  input.synopsis_config = nullptr;
  IqnRouter router;
  EXPECT_FALSE(router.Route(input).ok());
}

TEST(IqnRouterTest, PrefersComplementOverMutualRedundancy) {
  // THE defining scenario (paper Sec. 1.1): two big redundant peers and
  // one smaller complementary peer. Quality-only and one-shot-overlap
  // methods pick the two redundant peers; IQN must pick one redundant
  // peer and then the complement.
  RoutingFixture fx;
  fx.candidates.push_back(
      MakeCandidate(0, fx.config, {{"term", Range(0, 400)}}));
  fx.candidates.push_back(
      MakeCandidate(1, fx.config, {{"term", Range(0, 400)}}));  // same docs
  fx.candidates.push_back(
      MakeCandidate(2, fx.config, {{"term", Range(5000, 5300)}}));
  IqnRouter router;
  auto decision = router.Route(fx.Input(2));
  ASSERT_TRUE(decision.ok());
  auto ids = SelectedIds(decision.value());
  ASSERT_EQ(ids.size(), 2u);
  // First pick: one of the big twins. Second pick: the complement, NOT
  // the other twin.
  EXPECT_TRUE(ids[0] == 0 || ids[0] == 1);
  EXPECT_EQ(ids[1], 2u);
}

TEST(IqnRouterTest, AccountsForInitiatorLocalResults) {
  RoutingFixture fx;
  fx.local_docs = Range(0, 400);
  fx.candidates.push_back(
      MakeCandidate(0, fx.config, {{"term", Range(0, 400)}}));  // = local
  fx.candidates.push_back(
      MakeCandidate(1, fx.config, {{"term", Range(1000, 1200)}}));
  IqnRouter router;
  auto decision = router.Route(fx.Input(1));
  ASSERT_TRUE(decision.ok());
  EXPECT_EQ(decision.value().peers[0].peer_id, 1u);
}

TEST(IqnRouterTest, SynopsisSeedTakesPrecedenceOverLocalDocs) {
  // local_result_docs say the initiator covers nothing, but the seed
  // synopsis covers candidate 0's entire range — IQN must trust the
  // synopsis seed (Sec. 5.1's alternative) and pick candidate 1.
  RoutingFixture fx;
  fx.candidates.push_back(
      MakeCandidate(0, fx.config, {{"term", Range(0, 400)}}));
  fx.candidates.push_back(
      MakeCandidate(1, fx.config, {{"term", Range(5000, 5300)}}));

  auto seed = fx.config.MakeEmpty();
  ASSERT_TRUE(seed.ok());
  for (DocId id = 0; id < 400; ++id) seed.value()->Add(id);

  RoutingInput input = fx.Input(1);
  input.seed_synopsis = seed.value().get();
  input.seed_cardinality = 400;
  IqnRouter router;
  auto decision = router.Route(input);
  ASSERT_TRUE(decision.ok());
  EXPECT_EQ(decision.value().peers[0].peer_id, 1u);

  // Without the seed the bigger candidate 0 wins.
  input.seed_synopsis = nullptr;
  auto unseeded = router.Route(input);
  ASSERT_TRUE(unseeded.ok());
  EXPECT_EQ(unseeded.value().peers[0].peer_id, 0u);
}

TEST(IqnRouterTest, NoveltyDiagnosticsDecreaseAsSpaceFills) {
  RoutingFixture fx;
  // Heavily overlapping chain of peers.
  for (uint64_t p = 0; p < 5; ++p) {
    fx.candidates.push_back(MakeCandidate(
        p, fx.config, {{"term", Range(p * 50, p * 50 + 400)}}));
  }
  IqnRouter router;
  auto decision = router.Route(fx.Input(5));
  ASSERT_TRUE(decision.ok());
  ASSERT_EQ(decision.value().peers.size(), 5u);
  // First selection sees full novelty; later ones see less.
  EXPECT_GT(decision.value().peers.front().novelty,
            decision.value().peers.back().novelty);
}

TEST(IqnRouterTest, EstimatedResultCardinalityTracksUnion) {
  RoutingFixture fx;
  fx.candidates.push_back(
      MakeCandidate(0, fx.config, {{"term", Range(0, 300)}}));
  fx.candidates.push_back(
      MakeCandidate(1, fx.config, {{"term", Range(300, 600)}}));
  IqnRouter router;
  auto decision = router.Route(fx.Input(2));
  ASSERT_TRUE(decision.ok());
  EXPECT_NEAR(decision.value().estimated_result_cardinality, 600.0, 200.0);
}

TEST(IqnRouterTest, MinEstimatedResultsStopsEarly) {
  RoutingFixture fx;
  for (uint64_t p = 0; p < 6; ++p) {
    fx.candidates.push_back(MakeCandidate(
        p, fx.config, {{"term", Range(p * 1000, p * 1000 + 500)}}));
  }
  IqnOptions options;
  options.min_estimated_results = 900.0;  // two disjoint 500-doc peers
  IqnRouter router(options);
  auto decision = router.Route(fx.Input(6));
  ASSERT_TRUE(decision.ok());
  EXPECT_EQ(decision.value().peers.size(), 2u);
}

TEST(IqnRouterTest, NoveltyOnlyModeIgnoresQuality) {
  // A peer with tiny quality but huge novelty must win when
  // use_quality = false.
  RoutingFixture fx;
  fx.query.terms = {"term"};
  // Peer 0: large list fully redundant with local; peer 1: small novel.
  fx.local_docs = Range(0, 800);
  fx.candidates.push_back(
      MakeCandidate(0, fx.config, {{"term", Range(0, 800)}}));
  fx.candidates.push_back(
      MakeCandidate(1, fx.config, {{"term", Range(5000, 5100)}}));
  IqnOptions options;
  options.use_quality = false;
  IqnRouter router(options);
  auto decision = router.Route(fx.Input(1));
  ASSERT_TRUE(decision.ok());
  EXPECT_EQ(decision.value().peers[0].peer_id, 1u);
}

TEST(IqnRouterTest, MultiTermPerPeerAggregation) {
  RoutingFixture fx;
  fx.query.terms = {"a", "b"};
  // Peer 0 covers both terms with disjoint docs; peer 1 only one term.
  fx.candidates.push_back(MakeCandidate(
      0, fx.config, {{"a", Range(0, 200)}, {"b", Range(200, 400)}}));
  fx.candidates.push_back(MakeCandidate(1, fx.config, {{"a", Range(0, 200)}}));
  IqnRouter router;
  auto decision = router.Route(fx.Input(2));
  ASSERT_TRUE(decision.ok());
  EXPECT_EQ(decision.value().peers[0].peer_id, 0u);
  // Peer 0's novelty covers both terms' docs.
  EXPECT_GT(decision.value().peers[0].novelty, 250.0);
}

TEST(IqnRouterTest, ConjunctiveQuerySkipsPeersMissingATerm) {
  RoutingFixture fx;
  fx.query.terms = {"a", "b"};
  fx.query.mode = QueryMode::kConjunctive;
  fx.candidates.push_back(MakeCandidate(
      0, fx.config, {{"a", Range(0, 200)}, {"b", Range(100, 300)}}));
  fx.candidates.push_back(
      MakeCandidate(1, fx.config, {{"a", Range(0, 500)}}));  // lacks "b"
  IqnRouter router;
  auto decision = router.Route(fx.Input(2));
  ASSERT_TRUE(decision.ok());
  // Peer 1 cannot serve the conjunction; peer 0 must rank first.
  EXPECT_EQ(decision.value().peers[0].peer_id, 0u);
  EXPECT_GT(decision.value().peers[0].novelty,
            decision.value().peers.size() > 1
                ? decision.value().peers[1].novelty
                : 0.0);
}

TEST(IqnRouterTest, PerTermAggregationAlsoFindsComplement) {
  RoutingFixture fx;
  fx.candidates.push_back(
      MakeCandidate(0, fx.config, {{"term", Range(0, 400)}}));
  fx.candidates.push_back(
      MakeCandidate(1, fx.config, {{"term", Range(0, 400)}}));
  fx.candidates.push_back(
      MakeCandidate(2, fx.config, {{"term", Range(5000, 5300)}}));
  IqnOptions options;
  options.aggregation = AggregationStrategy::kPerTerm;
  IqnRouter router(options);
  auto decision = router.Route(fx.Input(2));
  ASSERT_TRUE(decision.ok());
  auto ids = SelectedIds(decision.value());
  EXPECT_TRUE(ids[0] == 0 || ids[0] == 1);
  EXPECT_EQ(ids[1], 2u);
}

TEST(IqnRouterTest, PerTermHandlesConjunctiveWithoutIntersection) {
  // Sec. 6.3's selling point: per-term aggregation serves conjunctive
  // queries even for synopsis types lacking intersection. Use hash
  // sketches (no intersection at all).
  RoutingFixture fx;
  fx.config.type = SynopsisType::kHashSketch;
  fx.query.terms = {"a", "b"};
  fx.query.mode = QueryMode::kConjunctive;
  fx.candidates.push_back(MakeCandidate(
      0, fx.config, {{"a", Range(0, 200)}, {"b", Range(300, 500)}}));
  fx.candidates.push_back(MakeCandidate(
      1, fx.config, {{"a", Range(0, 200)}, {"b", Range(300, 500)}}));
  IqnOptions options;
  options.aggregation = AggregationStrategy::kPerTerm;
  IqnRouter router(options);
  auto decision = router.Route(fx.Input(2));
  ASSERT_TRUE(decision.ok()) << decision.status().ToString();
  EXPECT_EQ(decision.value().peers.size(), 2u);
}

TEST(IqnRouterTest, HistogramModeRequiresHistogramPosts) {
  RoutingFixture fx;  // config without histogram cells
  fx.candidates.push_back(MakeCandidate(0, fx.config, {{"term", Range(0, 50)}}));
  IqnOptions options;
  options.use_histograms = true;
  IqnRouter router(options);
  EXPECT_EQ(router.Route(fx.Input(1)).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(IqnRouterTest, HistogramModeRoutesWithScoreWeights) {
  RoutingFixture fx;
  fx.config.histogram_cells = 4;
  fx.candidates.push_back(
      MakeCandidate(0, fx.config, {{"term", Range(0, 400)}}));
  fx.candidates.push_back(
      MakeCandidate(1, fx.config, {{"term", Range(0, 400)}}));
  fx.candidates.push_back(
      MakeCandidate(2, fx.config, {{"term", Range(5000, 5300)}}));
  IqnOptions options;
  options.use_histograms = true;
  IqnRouter router(options);
  auto decision = router.Route(fx.Input(2));
  ASSERT_TRUE(decision.ok()) << decision.status().ToString();
  auto ids = SelectedIds(decision.value());
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_TRUE(ids[0] == 0 || ids[0] == 1);
  EXPECT_EQ(ids[1], 2u);  // histogram novelty also detects redundancy
}

TEST(IqnRouterTest, CorrelationAwarePerTermDiscountsSelfOverlap) {
  // Two candidates with the SAME per-term lists sizes and the same
  // per-term novelty, but candidate 0's two term lists are identical
  // (fully correlated) while candidate 1's are disjoint. The plain
  // per-term sum ties them; the correlation-aware variant must prefer
  // candidate 1, which really contributes twice the distinct documents.
  RoutingFixture fx;
  fx.query.terms = {"a", "b"};
  fx.candidates.push_back(MakeCandidate(
      0, fx.config, {{"a", Range(0, 300)}, {"b", Range(0, 300)}}));
  fx.candidates.push_back(MakeCandidate(
      1, fx.config, {{"a", Range(1000, 1300)}, {"b", Range(2000, 2300)}}));

  IqnOptions plain;
  plain.aggregation = AggregationStrategy::kPerTerm;
  plain.use_quality = false;
  auto plain_decision = IqnRouter(plain).Route(fx.Input(1));
  ASSERT_TRUE(plain_decision.ok());

  IqnOptions aware = plain;
  aware.correlation_aware = true;
  auto aware_decision = IqnRouter(aware).Route(fx.Input(1));
  ASSERT_TRUE(aware_decision.ok());
  EXPECT_EQ(aware_decision.value().peers[0].peer_id, 1u);
  // And the deflated novelty of the correlated candidate is about half
  // the plain sum.
  IqnOptions probe = aware;
  (void)probe;
}

TEST(IqnRouterTest, CorrelationAwareNoopOnSingleTermQueries) {
  RoutingFixture fx;
  fx.candidates.push_back(
      MakeCandidate(0, fx.config, {{"term", Range(0, 200)}}));
  IqnOptions options;
  options.aggregation = AggregationStrategy::kPerTerm;
  options.correlation_aware = true;
  auto decision = IqnRouter(options).Route(fx.Input(1));
  ASSERT_TRUE(decision.ok());
  EXPECT_EQ(decision.value().peers.size(), 1u);
  EXPECT_NEAR(decision.value().peers[0].novelty, 200.0, 40.0);
}

TEST(IqnRouterTest, NameReflectsOptions) {
  EXPECT_EQ(IqnRouter().name(), "IQN(per-peer)");
  IqnOptions options;
  options.aggregation = AggregationStrategy::kPerTerm;
  options.use_quality = false;
  EXPECT_EQ(IqnRouter(options).name(), "IQN(per-term, novelty-only)");
  options = {};
  options.use_histograms = true;
  EXPECT_EQ(IqnRouter(options).name(), "IQN(per-peer, histograms)");
}

TEST(IqnRouterTest, WorksForAllSynopsisTypes) {
  for (SynopsisType type :
       {SynopsisType::kMinWise, SynopsisType::kBloomFilter,
        SynopsisType::kHashSketch}) {
    RoutingFixture fx;
    fx.config.type = type;
    fx.candidates.push_back(
        MakeCandidate(0, fx.config, {{"term", Range(0, 400)}}));
    fx.candidates.push_back(
        MakeCandidate(1, fx.config, {{"term", Range(0, 400)}}));
    fx.candidates.push_back(
        MakeCandidate(2, fx.config, {{"term", Range(5000, 5300)}}));
    IqnRouter router;
    auto decision = router.Route(fx.Input(2));
    ASSERT_TRUE(decision.ok()) << SynopsisTypeName(type);
    auto ids = SelectedIds(decision.value());
    ASSERT_EQ(ids.size(), 2u) << SynopsisTypeName(type);
    EXPECT_EQ(ids[1], 2u) << SynopsisTypeName(type);
  }
}

TEST(IqnRouterTest, UndecodableSynopsisDegradesToCoriOnly) {
  // A candidate whose synopsis no longer decodes (corrupted in transit)
  // must be kept as a quality-only candidate with its CLAIMED list
  // length standing in for novelty — not silently discarded and not an
  // error. With the larger (degraded) peer against a smaller healthy
  // one, the degraded peer still wins the budget-1 pick.
  RoutingFixture fx;
  fx.candidates.push_back(
      MakeCandidate(0, fx.config, {{"term", Range(0, 100)}}));
  fx.candidates.push_back(
      MakeCandidate(1, fx.config, {{"term", Range(1000, 1400)}}));
  fx.candidates[1].posts.at("term").synopsis = Bytes{0xFF, 0x00, 0x13};
  IqnRouter router;
  auto decision = router.Route(fx.Input(1));
  ASSERT_TRUE(decision.ok()) << decision.status().ToString();
  EXPECT_EQ(decision.value().candidates_degraded, 1u);
  EXPECT_EQ(decision.value().peers[0].peer_id, 1u);

  // Healthy candidates leave the counter at zero.
  fx.candidates[1] = MakeCandidate(1, fx.config, {{"term", Range(1000, 1400)}});
  auto healthy = router.Route(fx.Input(1));
  ASSERT_TRUE(healthy.ok());
  EXPECT_EQ(healthy.value().candidates_degraded, 0u);
}

TEST(IqnRouterTest, PerTermAggregationDegradesCorruptSynopsisToo) {
  RoutingFixture fx;
  fx.query.terms = {"a", "b"};
  fx.candidates.push_back(MakeCandidate(
      0, fx.config, {{"a", Range(0, 100)}, {"b", Range(200, 300)}}));
  fx.candidates.push_back(MakeCandidate(
      1, fx.config, {{"a", Range(1000, 1300)}, {"b", Range(2000, 2300)}}));
  fx.candidates[1].posts.at("b").synopsis = Bytes{0xFF, 0x00, 0x13};
  IqnOptions options;
  options.aggregation = AggregationStrategy::kPerTerm;
  IqnRouter router(options);
  auto decision = router.Route(fx.Input(2));
  ASSERT_TRUE(decision.ok()) << decision.status().ToString();
  EXPECT_EQ(decision.value().candidates_degraded, 1u);
  // The degraded candidate's intact term still contributes real synopsis
  // novelty; the corrupt term contributes its claimed length. Both peers
  // stay selectable.
  EXPECT_EQ(decision.value().peers.size(), 2u);
}

}  // namespace
}  // namespace iqn

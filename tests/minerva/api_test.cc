#include "minerva/api.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/flags.h"
#include "workload/fragments.h"
#include "workload/queries.h"
#include "workload/synthetic_corpus.h"

namespace iqn {
namespace {

Result<minerva::EngineOptions> OptionsFromArgs(
    std::vector<std::string> args) {
  Flags flags;
  minerva::EngineOptions::RegisterFlags(&flags);
  args.insert(args.begin(), "api_test");
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (std::string& arg : args) argv.push_back(arg.data());
  IQN_RETURN_IF_ERROR(
      flags.Parse(static_cast<int>(argv.size()), argv.data()));
  return minerva::EngineOptions::FromFlags(flags);
}

TEST(EngineOptionsTest, FromFlagsDefaultsMatchStructDefaults) {
  auto parsed = OptionsFromArgs({});
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const minerva::EngineOptions& options = parsed.value();
  minerva::EngineOptions defaults;
  EXPECT_EQ(options.threads, defaults.threads);
  EXPECT_EQ(options.max_peers, defaults.max_peers);
  EXPECT_EQ(options.routing.kind, defaults.routing.kind);
  EXPECT_EQ(options.routing.iqn.use_quality, defaults.routing.iqn.use_quality);
  EXPECT_EQ(options.core.synopsis.type, defaults.core.synopsis.type);
  EXPECT_EQ(options.core.synopsis.bits, defaults.core.synopsis.bits);
  EXPECT_EQ(options.core.retry.max_attempts,
            defaults.core.retry.max_attempts);
  EXPECT_EQ(options.core.cache.enabled, defaults.core.cache.enabled);
  EXPECT_FALSE(options.fault_plan.active());
  EXPECT_FALSE(options.core.collect_traces);
  EXPECT_TRUE(options.trace_out.empty());
  EXPECT_TRUE(options.metrics_out.empty());
}

// Every EngineOptions field FromFlags sets must round-trip from its flag.
TEST(EngineOptionsTest, FromFlagsRoundTripsEveryField) {
  auto parsed = OptionsFromArgs({
      "--threads=4",
      "--max_peers=2",
      "--router=cori",
      "--aggregation=per_term",
      "--histograms",
      "--novelty_only",
      "--correlation_aware",
      "--router_seed=9",
      "--synopsis=bloom",
      "--synopsis_bits=1024",
      "--histogram_cells=8",
      "--replication=2",
      "--batch_posting",
      "--peerlist_limit=7",
      "--topk_candidates=4",
      "--merge=cori",
      "--seed_from_synopses",
      "--retries=3",
      "--deadline-ms=125.5",
      "--fault-seed=11",
      "--fault-drop=0.1",
      "--fault-corrupt=0.05",
      "--fault-timeout=0.02",
      "--cache",
      "--cache_max_terms=32",
      "--cache_ttl_ms=50.0",
      "--trace_out=/tmp/api_test_trace.json",
      "--metrics_out=/tmp/api_test_metrics.json",
  });
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const minerva::EngineOptions& options = parsed.value();
  EXPECT_EQ(options.threads, 4u);
  EXPECT_EQ(options.max_peers, 2u);
  EXPECT_EQ(options.routing.kind, minerva::RouterKind::kCori);
  EXPECT_EQ(options.routing.iqn.aggregation, AggregationStrategy::kPerTerm);
  EXPECT_TRUE(options.routing.iqn.use_histograms);
  EXPECT_FALSE(options.routing.iqn.use_quality);  // --novelty_only
  EXPECT_TRUE(options.routing.iqn.correlation_aware);
  EXPECT_EQ(options.routing.random_seed, 9u);
  EXPECT_EQ(options.core.synopsis.type, SynopsisType::kBloomFilter);
  EXPECT_EQ(options.core.synopsis.bits, 1024u);
  EXPECT_EQ(options.core.synopsis.histogram_cells, 8u);
  EXPECT_EQ(options.core.directory_replication, 2u);
  EXPECT_TRUE(options.core.batch_posting);
  EXPECT_EQ(options.core.peerlist_limit, 7u);
  EXPECT_EQ(options.core.distributed_topk_candidates, 4u);
  EXPECT_EQ(options.core.merge, MergeStrategy::kCoriNormalized);
  EXPECT_TRUE(options.core.seed_reference_from_synopses);
  EXPECT_EQ(options.core.retry.max_attempts, 3);
  EXPECT_EQ(options.core.query_deadline_ms, 125.5);
  EXPECT_EQ(options.fault_plan.seed, 11u);
  EXPECT_EQ(options.fault_plan.drop_request.rate, 0.1);
  EXPECT_EQ(options.fault_plan.drop_response.rate, 0.1);
  EXPECT_EQ(options.fault_plan.corrupt_response.rate, 0.05);
  EXPECT_EQ(options.fault_plan.timeout.rate, 0.02);
  EXPECT_TRUE(options.fault_plan.active());
  EXPECT_TRUE(options.core.cache.enabled);
  EXPECT_EQ(options.core.cache.max_terms, 32u);
  EXPECT_EQ(options.core.cache.ttl_ms, 50.0);
  EXPECT_EQ(options.trace_out, "/tmp/api_test_trace.json");
  EXPECT_EQ(options.metrics_out, "/tmp/api_test_metrics.json");
  // A nonempty trace sink implies tracing.
  EXPECT_TRUE(options.core.collect_traces);
}

TEST(EngineOptionsTest, FromFlagsRejectsUnknownEnumSpellings) {
  EXPECT_FALSE(OptionsFromArgs({"--router=bogus"}).ok());
  EXPECT_FALSE(OptionsFromArgs({"--synopsis=bogus"}).ok());
  EXPECT_FALSE(OptionsFromArgs({"--aggregation=bogus"}).ok());
  EXPECT_FALSE(OptionsFromArgs({"--merge=bogus"}).ok());
}

TEST(ApiTest, RouterKindNamesRoundTrip) {
  EXPECT_STREQ(minerva::RouterKindName(minerva::RouterKind::kIqn), "iqn");
  EXPECT_STREQ(minerva::RouterKindName(minerva::RouterKind::kCori), "cori");
  EXPECT_STREQ(minerva::RouterKindName(minerva::RouterKind::kRandom),
               "random");
  EXPECT_STREQ(minerva::RouterKindName(minerva::RouterKind::kSimpleOverlap),
               "overlap");
}

struct Fixture {
  std::unique_ptr<minerva::Engine> engine;
  std::vector<Query> queries;
};

Fixture MakeFixture(minerva::EngineOptions options, size_t peers = 4) {
  SyntheticCorpusOptions corpus_opts;
  corpus_opts.num_documents = 240;
  corpus_opts.vocabulary_size = 400;
  corpus_opts.min_document_length = 15;
  corpus_opts.max_document_length = 40;
  corpus_opts.seed = 5;
  auto gen = SyntheticCorpusGenerator::Create(corpus_opts);
  EXPECT_TRUE(gen.ok());
  Corpus corpus = gen.value().Generate();
  auto frags = SplitIntoFragments(corpus, peers * 2);
  EXPECT_TRUE(frags.ok());
  auto collections = SlidingWindowCollections(frags.value(), /*window=*/3,
                                              /*offset=*/2, peers);
  EXPECT_TRUE(collections.ok());

  Fixture fixture;
  auto engine =
      minerva::Engine::Create(std::move(options),
                              std::move(collections).value());
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  fixture.engine = std::move(engine).value();
  EXPECT_TRUE(fixture.engine->Publish().ok());

  QueryWorkloadOptions q_opts;
  q_opts.num_queries = 4;
  q_opts.min_terms = 1;
  q_opts.max_terms = 2;
  q_opts.band_low = 0.01;
  q_opts.band_high = 0.3;
  q_opts.k = 10;
  q_opts.seed = 6;
  auto queries = GenerateQueries(gen.value().vocabulary(), q_opts);
  EXPECT_TRUE(queries.ok());
  fixture.queries = std::move(queries).value();
  return fixture;
}

TEST(ApiTest, EveryRouterKindRunsEndToEnd) {
  minerva::EngineOptions options;
  options.max_peers = 2;
  Fixture fixture = MakeFixture(options);
  for (minerva::RouterKind kind :
       {minerva::RouterKind::kIqn, minerva::RouterKind::kCori,
        minerva::RouterKind::kRandom, minerva::RouterKind::kSimpleOverlap}) {
    minerva::RoutingSpec spec;
    spec.kind = kind;
    QueryOutcome outcome;
    Status run = fixture.engine->RunQueryWith(spec, 0, fixture.queries[0],
                                              /*max_peers=*/2, &outcome);
    ASSERT_TRUE(run.ok()) << minerva::RouterKindName(kind) << ": "
                          << run.ToString();
    EXPECT_LE(outcome.decision.peers.size(), 2u)
        << minerva::RouterKindName(kind);
  }
}

TEST(ApiTest, ConfiguredRoutingDrivesRunQuery) {
  minerva::EngineOptions options;
  options.routing.kind = minerva::RouterKind::kCori;
  options.max_peers = 2;
  Fixture fixture = MakeFixture(options);
  // RunQuery (configured spec) must match an explicit RunQueryWith of an
  // identical spec.
  QueryOutcome configured;
  ASSERT_TRUE(
      fixture.engine->RunQuery(0, fixture.queries[0], &configured).ok());
  minerva::RoutingSpec cori;
  cori.kind = minerva::RouterKind::kCori;
  QueryOutcome explicit_spec;
  ASSERT_TRUE(fixture.engine
                  ->RunQueryWith(cori, 0, fixture.queries[0], 2,
                                 &explicit_spec)
                  .ok());
  ASSERT_EQ(configured.decision.peers.size(),
            explicit_spec.decision.peers.size());
  for (size_t i = 0; i < configured.decision.peers.size(); ++i) {
    EXPECT_EQ(configured.decision.peers[i].peer_id,
              explicit_spec.decision.peers[i].peer_id);
  }
}

TEST(ApiTest, BatchMatchesSerialOnTheFacade) {
  minerva::EngineOptions options;
  options.max_peers = 2;
  Fixture fixture = MakeFixture(options);
  std::vector<minerva::Engine::BatchQuery> batch(fixture.queries.size());
  for (size_t i = 0; i < fixture.queries.size(); ++i) {
    batch[i].initiator_index = i % fixture.engine->num_peers();
    batch[i].query = fixture.queries[i];
  }
  std::vector<QueryOutcome> outcomes;
  ASSERT_TRUE(fixture.engine->RunQueryBatch(batch, &outcomes).ok());
  ASSERT_EQ(outcomes.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    QueryOutcome serial;
    ASSERT_TRUE(fixture.engine
                    ->RunQuery(batch[i].initiator_index, batch[i].query,
                               &serial)
                    .ok());
    EXPECT_EQ(outcomes[i].recall, serial.recall) << i;
    ASSERT_EQ(outcomes[i].decision.peers.size(),
              serial.decision.peers.size())
        << i;
    for (size_t p = 0; p < serial.decision.peers.size(); ++p) {
      EXPECT_EQ(outcomes[i].decision.peers[p].peer_id,
                serial.decision.peers[p].peer_id)
          << i;
    }
  }
}

TEST(ApiTest, ExplainRendersTracedQueries) {
  minerva::EngineOptions options;
  options.core.collect_traces = true;
  options.max_peers = 2;
  Fixture fixture = MakeFixture(options);
  QueryOutcome outcome;
  ASSERT_TRUE(fixture.engine->RunQuery(0, fixture.queries[0], &outcome).ok());
  std::string text;
  ASSERT_TRUE(fixture.engine->Explain(outcome, &text).ok());
  EXPECT_FALSE(text.empty());
}

TEST(ApiTest, ExplainWithoutTracesFails) {
  minerva::EngineOptions options;
  options.max_peers = 2;
  Fixture fixture = MakeFixture(options);
  QueryOutcome outcome;
  ASSERT_TRUE(fixture.engine->RunQuery(0, fixture.queries[0], &outcome).ok());
  std::string text;
  EXPECT_FALSE(fixture.engine->Explain(outcome, &text).ok());
}

}  // namespace
}  // namespace iqn

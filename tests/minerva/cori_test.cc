#include "minerva/cori.h"

#include <gtest/gtest.h>

#include <cmath>

namespace iqn {
namespace {

Post MakePost(uint64_t peer_id, const std::string& term, uint64_t cdf,
              uint64_t vocab) {
  Post post;
  post.peer_id = peer_id;
  post.term = term;
  post.list_length = cdf;
  post.term_space_size = vocab;
  return post;
}

TEST(CoriTermStatsTest, ComputedFromPeerList) {
  std::vector<Post> peer_list = {MakePost(1, "t", 10, 1000),
                                 MakePost(2, "t", 20, 3000)};
  CoriTermStats stats = ComputeCoriTermStats(peer_list);
  EXPECT_EQ(stats.collection_frequency, 2u);
  EXPECT_DOUBLE_EQ(stats.avg_term_space, 2000.0);
}

TEST(CoriTermStatsTest, EmptyPeerList) {
  CoriTermStats stats = ComputeCoriTermStats({});
  EXPECT_EQ(stats.collection_frequency, 0u);
  EXPECT_DOUBLE_EQ(stats.avg_term_space, 0.0);
}

TEST(CoriTermScoreTest, MissingTermScoresAlpha) {
  CoriTermStats stats{5, 1000.0};
  CoriParams params;
  EXPECT_DOUBLE_EQ(CoriTermScore(nullptr, stats, 100, params), params.alpha);
  Post empty = MakePost(1, "t", 0, 1000);
  EXPECT_DOUBLE_EQ(CoriTermScore(&empty, stats, 100, params), params.alpha);
}

TEST(CoriTermScoreTest, MatchesPaperFormula) {
  Post post = MakePost(1, "t", 40, 1000);
  CoriTermStats stats{5, 2000.0};
  size_t np = 100;
  CoriParams params;
  double t = 40.0 / (40.0 + 50.0 + 150.0 * (1000.0 / 2000.0));
  double i = std::log((100.0 + 0.5) / 5.0) / std::log(100.0 + 1.0);
  double expected = 0.4 + 0.6 * t * i;
  EXPECT_NEAR(CoriTermScore(&post, stats, np, params), expected, 1e-12);
}

TEST(CoriTermScoreTest, MoreDocumentsScoreHigher) {
  CoriTermStats stats{5, 1000.0};
  Post small = MakePost(1, "t", 5, 1000);
  Post large = MakePost(2, "t", 500, 1000);
  EXPECT_GT(CoriTermScore(&large, stats, 100), CoriTermScore(&small, stats, 100));
}

TEST(CoriTermScoreTest, RarerTermsWeighMore) {
  // Same peer statistics; the term held by fewer peers has higher I.
  Post post = MakePost(1, "t", 50, 1000);
  CoriTermStats rare{2, 1000.0};
  CoriTermStats common{80, 1000.0};
  EXPECT_GT(CoriTermScore(&post, rare, 100), CoriTermScore(&post, common, 100));
}

TEST(CoriTermScoreTest, LargeVocabularyDampensScore) {
  // A peer with a huge term space relative to average gets a smaller T
  // (its cdf is less significant).
  CoriTermStats stats{5, 1000.0};
  Post focused = MakePost(1, "t", 50, 500);
  Post sprawling = MakePost(2, "t", 50, 20000);
  EXPECT_GT(CoriTermScore(&focused, stats, 100),
            CoriTermScore(&sprawling, stats, 100));
}

TEST(CoriCollectionScoreTest, AveragesOverQueryTerms) {
  std::vector<std::string> terms = {"a", "b"};
  std::map<std::string, Post> posts;
  posts["a"] = MakePost(1, "a", 40, 1000);
  // term "b" missing at this peer.
  std::map<std::string, CoriTermStats> stats;
  stats["a"] = CoriTermStats{5, 1000.0};
  stats["b"] = CoriTermStats{9, 1000.0};
  CoriParams params;
  double s_a = CoriTermScore(&posts["a"], stats["a"], 100, params);
  double expected = (s_a + params.alpha) / 2.0;
  EXPECT_NEAR(CoriCollectionScore(terms, posts, stats, 100, params), expected,
              1e-12);
}

TEST(CoriCollectionScoreTest, EmptyQueryScoresZero) {
  EXPECT_DOUBLE_EQ(CoriCollectionScore({}, {}, {}, 100), 0.0);
}

TEST(CoriCollectionScoreTest, BetterCoverageWins) {
  std::vector<std::string> terms = {"a", "b"};
  std::map<std::string, CoriTermStats> stats;
  stats["a"] = CoriTermStats{5, 1000.0};
  stats["b"] = CoriTermStats{5, 1000.0};

  std::map<std::string, Post> both;
  both["a"] = MakePost(1, "a", 50, 1000);
  both["b"] = MakePost(1, "b", 50, 1000);
  std::map<std::string, Post> one;
  one["a"] = MakePost(2, "a", 50, 1000);

  EXPECT_GT(CoriCollectionScore(terms, both, stats, 100),
            CoriCollectionScore(terms, one, stats, 100));
}

}  // namespace
}  // namespace iqn

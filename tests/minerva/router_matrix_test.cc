// Parameterized invariants across the full configuration matrix the
// routing layer supports: every synopsis type x aggregation strategy
// combination must (a) prefer complementary peers over mutually
// redundant ones, and (b) respect the initiator's local coverage — the
// behavioural core of IQN, independent of representation choices.

#include <gtest/gtest.h>

#include "minerva/internal/iqn_router.h"
#include "tests/minerva/test_helpers.h"

namespace iqn {
namespace {

using test::MakeCandidate;
using test::Range;
using test::RoutingFixture;

struct MatrixParam {
  SynopsisType type;
  AggregationStrategy aggregation;
  bool correlation_aware;
};

std::string ParamName(const testing::TestParamInfo<MatrixParam>& info) {
  std::string name = SynopsisTypeName(info.param.type);
  name += info.param.aggregation == AggregationStrategy::kPerPeer
              ? "_PerPeer"
              : "_PerTerm";
  if (info.param.correlation_aware) name += "_Corr";
  return name;
}

std::vector<MatrixParam> AllConfigurations() {
  std::vector<MatrixParam> params;
  for (SynopsisType type :
       {SynopsisType::kMinWise, SynopsisType::kBloomFilter,
        SynopsisType::kHashSketch, SynopsisType::kLogLog}) {
    params.push_back({type, AggregationStrategy::kPerPeer, false});
    params.push_back({type, AggregationStrategy::kPerTerm, false});
    params.push_back({type, AggregationStrategy::kPerTerm, true});
  }
  return params;
}

class RouterMatrix : public testing::TestWithParam<MatrixParam> {
 protected:
  IqnRouter MakeRouter() const {
    IqnOptions options;
    options.aggregation = GetParam().aggregation;
    options.correlation_aware = GetParam().correlation_aware;
    return IqnRouter(options);
  }
};

TEST_P(RouterMatrix, PrefersComplementOverMutualRedundancy) {
  RoutingFixture fx;
  fx.config.type = GetParam().type;
  fx.candidates.push_back(
      MakeCandidate(0, fx.config, {{"term", Range(0, 400)}}));
  fx.candidates.push_back(
      MakeCandidate(1, fx.config, {{"term", Range(0, 400)}}));  // twin of 0
  fx.candidates.push_back(
      MakeCandidate(2, fx.config, {{"term", Range(5000, 5300)}}));
  IqnRouter router = MakeRouter();
  auto decision = router.Route(fx.Input(2));
  ASSERT_TRUE(decision.ok()) << decision.status().ToString();
  ASSERT_EQ(decision.value().peers.size(), 2u);
  EXPECT_TRUE(decision.value().peers[0].peer_id == 0 ||
              decision.value().peers[0].peer_id == 1);
  EXPECT_EQ(decision.value().peers[1].peer_id, 2u);
}

TEST_P(RouterMatrix, RespectsInitiatorLocalCoverage) {
  RoutingFixture fx;
  fx.config.type = GetParam().type;
  fx.local_docs = Range(0, 400);
  fx.candidates.push_back(
      MakeCandidate(0, fx.config, {{"term", Range(0, 400)}}));  // = local
  fx.candidates.push_back(
      MakeCandidate(1, fx.config, {{"term", Range(1000, 1300)}}));
  IqnRouter router = MakeRouter();
  auto decision = router.Route(fx.Input(1));
  ASSERT_TRUE(decision.ok()) << decision.status().ToString();
  ASSERT_EQ(decision.value().peers.size(), 1u);
  EXPECT_EQ(decision.value().peers[0].peer_id, 1u);
}

TEST_P(RouterMatrix, MultiTermDisjunctiveCoversBothTerms) {
  RoutingFixture fx;
  fx.config.type = GetParam().type;
  fx.query.terms = {"a", "b"};
  // Peer 0 covers both terms with distinct docs; peer 1 duplicates
  // peer 0's "a" list only.
  fx.candidates.push_back(MakeCandidate(
      0, fx.config, {{"a", Range(0, 200)}, {"b", Range(300, 500)}}));
  fx.candidates.push_back(MakeCandidate(1, fx.config, {{"a", Range(0, 200)}}));
  IqnRouter router = MakeRouter();
  auto decision = router.Route(fx.Input(2));
  ASSERT_TRUE(decision.ok()) << decision.status().ToString();
  ASSERT_GE(decision.value().peers.size(), 1u);
  EXPECT_EQ(decision.value().peers[0].peer_id, 0u);
}

TEST_P(RouterMatrix, DeterministicAcrossCalls) {
  RoutingFixture fx;
  fx.config.type = GetParam().type;
  for (uint64_t p = 0; p < 6; ++p) {
    fx.candidates.push_back(MakeCandidate(
        p, fx.config, {{"term", Range(p * 120, p * 120 + 250)}}));
  }
  IqnRouter router = MakeRouter();
  auto d1 = router.Route(fx.Input(4));
  auto d2 = router.Route(fx.Input(4));
  ASSERT_TRUE(d1.ok() && d2.ok());
  ASSERT_EQ(d1.value().peers.size(), d2.value().peers.size());
  for (size_t i = 0; i < d1.value().peers.size(); ++i) {
    EXPECT_EQ(d1.value().peers[i].peer_id, d2.value().peers[i].peer_id);
    EXPECT_DOUBLE_EQ(d1.value().peers[i].novelty,
                     d2.value().peers[i].novelty);
  }
}

INSTANTIATE_TEST_SUITE_P(AllSynopsesAllStrategies, RouterMatrix,
                         testing::ValuesIn(AllConfigurations()), ParamName);

}  // namespace
}  // namespace iqn

// Golden-file pin of the rendered ExplainQuery iteration tables on the
// canonical 3-peer fixture (peers 1 and 2 identical, peer 3 disjoint —
// the Paper Sec. 5 acceptance workload of explain_test.cc). The
// structured assertions live there; THIS test freezes the rendered text
// itself, so an accidental change to the explain format (column order,
// number formatting, absorption lines) fails visibly instead of
// silently drifting under every downstream consumer of --explain
// output.
//
// Regenerate after an INTENTIONAL format change:
//   IQN_REGEN_GOLDEN=1 ./iqn_scenario_test \
//       --gtest_filter=ExplainGoldenTest.* && git diff tests/minerva/testdata

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "minerva/explain.h"
#include "minerva/internal/iqn_router.h"
#include "tests/minerva/test_helpers.h"
#include "util/trace.h"

#ifndef IQN_SOURCE_DIR
#error "tests/CMakeLists.txt must define IQN_SOURCE_DIR for this test"
#endif

namespace iqn {
namespace {

const char kGoldenPath[] =
    IQN_SOURCE_DIR "/tests/minerva/testdata/explain_three_peer.golden";

struct ThreePeerFixture : test::RoutingFixture {
  ThreePeerFixture() {
    candidates.push_back(
        test::MakeCandidate(1, config, {{"term", test::Range(1, 101)}}));
    candidates.push_back(
        test::MakeCandidate(2, config, {{"term", test::Range(1, 101)}}));
    candidates.push_back(
        test::MakeCandidate(3, config, {{"term", test::Range(101, 201)}}));
  }
};

TEST(ExplainGoldenTest, ThreePeerIterationTablesMatchGolden) {
  ThreePeerFixture fixture;
  IqnOptions options;
  options.use_quality = false;  // novelty-only, as in explain_test.cc
  IqnRouter router(options);
  double clock = 0.0;
  QueryTrace trace([&clock] { return clock; });
  {
    TraceScope scope(&trace);
    auto decision = router.Route(fixture.Input(3));
    ASSERT_TRUE(decision.ok()) << decision.status().ToString();
  }
  auto explanation = ExplainFromTrace(trace);
  ASSERT_TRUE(explanation.ok()) << explanation.status().ToString();
  std::string rendered = RenderExplanation(explanation.value());
  ASSERT_FALSE(rendered.empty());

  if (std::getenv("IQN_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(kGoldenPath, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << kGoldenPath;
    out << rendered;
    GTEST_SKIP() << "regenerated " << kGoldenPath;
  }

  std::ifstream in(kGoldenPath, std::ios::binary);
  ASSERT_TRUE(in.good())
      << "missing golden " << kGoldenPath
      << " — regenerate with IQN_REGEN_GOLDEN=1";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(rendered, buffer.str())
      << "rendered explanation drifted from the golden; if the format "
         "change is intentional, regenerate with IQN_REGEN_GOLDEN=1";
}

}  // namespace
}  // namespace iqn

#include "minerva/internal/query_processor.h"

#include <gtest/gtest.h>

#include "minerva/engine.h"
#include "minerva/internal/iqn_router.h"
#include "workload/fragments.h"
#include "workload/synthetic_corpus.h"

namespace iqn {
namespace {

TEST(CoriMergeWeightTest, AverageCollectionIsNeutral) {
  // C_i == C_mean -> weight exactly 1.
  EXPECT_DOUBLE_EQ(QueryProcessor::CoriMergeWeight(0.5, 0.5), 1.0);
}

TEST(CoriMergeWeightTest, BetterCollectionsBoosted) {
  double above = QueryProcessor::CoriMergeWeight(0.6, 0.5);
  double below = QueryProcessor::CoriMergeWeight(0.4, 0.5);
  EXPECT_GT(above, 1.0);
  EXPECT_LT(below, 1.0);
  // Symmetric around the mean at Callan's beta = 0.4:
  // 1 +- 0.4 * 0.1/0.5.
  EXPECT_NEAR(above, 1.08, 1e-12);
  EXPECT_NEAR(below, 0.92, 1e-12);
}

TEST(CoriMergeWeightTest, FloorAndDegenerateMean) {
  // C = 0 gives 1 - 0.4 = 0.6 (above the floor)...
  EXPECT_DOUBLE_EQ(QueryProcessor::CoriMergeWeight(0.0, 0.5), 0.6);
  // ...while a hugely negative score hits the 0.1 floor.
  EXPECT_GE(QueryProcessor::CoriMergeWeight(-5.0, 0.5), 0.1);
  EXPECT_DOUBLE_EQ(QueryProcessor::CoriMergeWeight(0.7, 0.0), 1.0);
}

std::vector<Corpus> Collections() {
  SyntheticCorpusOptions opts;
  opts.num_documents = 240;
  opts.vocabulary_size = 300;
  opts.seed = 17;
  auto gen = SyntheticCorpusGenerator::Create(opts);
  EXPECT_TRUE(gen.ok());
  auto frags = SplitIntoFragments(gen.value().Generate(), 8);
  EXPECT_TRUE(frags.ok());
  auto collections = SlidingWindowCollections(frags.value(), 3, 2, 4);
  EXPECT_TRUE(collections.ok());
  // Asymmetric peers: peer 0 holds twice the data, so CORI collection
  // scores (and hence merge weights) genuinely differ.
  collections.value()[0].Merge(frags.value()[6]);
  collections.value()[0].Merge(frags.value()[7]);
  return std::move(collections).value();
}

Query AnyQuery(const MinervaEngine& engine) {
  Query q;
  size_t best = 0;
  for (const auto& [term, list] : engine.reference_index().lists()) {
    if (list.size() > best) {
      best = list.size();
      q.terms = {term};
    }
  }
  q.k = 15;
  return q;
}

TEST(QueryProcessorTest, CoriNormalizedMergeReordersButKeepsDocSet) {
  EngineOptions raw_options;
  auto raw_engine = MinervaEngine::Create(raw_options, Collections());
  ASSERT_TRUE(raw_engine.ok());
  ASSERT_TRUE(raw_engine.value()->PublishAll().ok());

  EngineOptions cori_options;
  cori_options.merge = MergeStrategy::kCoriNormalized;
  auto cori_engine = MinervaEngine::Create(cori_options, Collections());
  ASSERT_TRUE(cori_engine.ok());
  ASSERT_TRUE(cori_engine.value()->PublishAll().ok());

  Query q = AnyQuery(*raw_engine.value());
  CoriRouter router;  // records collection qualities per selected peer
  auto raw = raw_engine.value()->RunQuery(1, q, router, 3);
  auto cori = cori_engine.value()->RunQuery(1, q, router, 3);
  ASSERT_TRUE(raw.ok() && cori.ok());

  // Same document SET retrieved (merging only rescales scores)...
  EXPECT_EQ(raw.value().execution.all_distinct.size(),
            cori.value().execution.all_distinct.size());
  // ...and the remote peers' scores were actually rescaled.
  bool any_difference = false;
  for (size_t p = 0; p < raw.value().execution.per_peer_results.size(); ++p) {
    const auto& raw_list = raw.value().execution.per_peer_results[p];
    const auto& cori_list = cori.value().execution.per_peer_results[p];
    if (raw_list.size() != cori_list.size()) continue;
    for (size_t i = 0; i < raw_list.size(); ++i) {
      if (raw_list[i].score != cori_list[i].score) any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(QueryProcessorTest, RawMergeLeavesScoresUntouched) {
  auto engine = MinervaEngine::Create(EngineOptions{}, Collections());
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine.value()->PublishAll().ok());
  Query q = AnyQuery(*engine.value());
  CoriRouter router;
  auto outcome = engine.value()->RunQuery(0, q, router, 2);
  ASSERT_TRUE(outcome.ok());
  // Every merged score equals some peer's (or the initiator's) raw score.
  for (const ScoredDoc& merged : outcome.value().execution.merged) {
    bool found = merged.score == 0.0;
    for (const auto& list : outcome.value().execution.per_peer_results) {
      for (const ScoredDoc& sd : list) {
        if (sd.doc == merged.doc && sd.score == merged.score) found = true;
      }
    }
    for (const ScoredDoc& sd : outcome.value().execution.local_results) {
      if (sd.doc == merged.doc && sd.score == merged.score) found = true;
    }
    EXPECT_TRUE(found) << "doc " << merged.doc;
  }
}

}  // namespace
}  // namespace iqn

#include "minerva/internal/router.h"

#include <gtest/gtest.h>

#include <set>

#include "tests/minerva/test_helpers.h"

namespace iqn {
namespace {

using test::MakeCandidate;
using test::Range;
using test::RoutingFixture;

TEST(RouterValidationTest, AllRoutersRejectBadInput) {
  RandomRouter random_router;
  CoriRouter cori_router;
  SimpleOverlapRouter overlap_router;
  RoutingInput empty;
  EXPECT_FALSE(random_router.Route(empty).ok());
  EXPECT_FALSE(cori_router.Route(empty).ok());
  EXPECT_FALSE(overlap_router.Route(empty).ok());

  RoutingFixture fx;
  RoutingInput no_peers = fx.Input(0);
  EXPECT_FALSE(cori_router.Route(no_peers).ok());

  Query empty_query;
  RoutingInput input = fx.Input(3);
  input.query = &empty_query;
  EXPECT_FALSE(cori_router.Route(input).ok());
}

TEST(RandomRouterTest, SelectsRequestedCountWithoutDuplicates) {
  RoutingFixture fx;
  for (uint64_t p = 0; p < 10; ++p) {
    fx.candidates.push_back(
        MakeCandidate(p, fx.config, {{"term", Range(p * 10, p * 10 + 10)}}));
  }
  RandomRouter router(7);
  auto decision = router.Route(fx.Input(4));
  ASSERT_TRUE(decision.ok());
  ASSERT_EQ(decision.value().peers.size(), 4u);
  std::set<uint64_t> distinct;
  for (const auto& p : decision.value().peers) distinct.insert(p.peer_id);
  EXPECT_EQ(distinct.size(), 4u);
}

TEST(RandomRouterTest, DeterministicPerQueryContent) {
  RoutingFixture fx;
  for (uint64_t p = 0; p < 10; ++p) {
    fx.candidates.push_back(
        MakeCandidate(p, fx.config, {{"term", Range(p * 10, p * 10 + 10)}}));
  }
  RandomRouter router(7);
  auto d1 = router.Route(fx.Input(4));
  auto d2 = router.Route(fx.Input(4));
  ASSERT_TRUE(d1.ok() && d2.ok());
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(d1.value().peers[i].peer_id, d2.value().peers[i].peer_id);
  }
}

TEST(RandomRouterTest, TakesAllWhenFewerCandidatesThanBudget) {
  RoutingFixture fx;
  fx.candidates.push_back(MakeCandidate(0, fx.config, {{"term", Range(0, 5)}}));
  RandomRouter router;
  auto decision = router.Route(fx.Input(10));
  ASSERT_TRUE(decision.ok());
  EXPECT_EQ(decision.value().peers.size(), 1u);
}

TEST(CoriRouterTest, RanksLargerCollectionsFirst) {
  RoutingFixture fx;
  // Peer 0: 10 docs; peer 1: 500 docs; peer 2: 100 docs. Same vocab size.
  fx.candidates.push_back(MakeCandidate(0, fx.config, {{"term", Range(0, 10)}}));
  fx.candidates.push_back(
      MakeCandidate(1, fx.config, {{"term", Range(1000, 1500)}}));
  fx.candidates.push_back(
      MakeCandidate(2, fx.config, {{"term", Range(2000, 2100)}}));
  CoriRouter router;
  auto decision = router.Route(fx.Input(3));
  ASSERT_TRUE(decision.ok());
  ASSERT_EQ(decision.value().peers.size(), 3u);
  EXPECT_EQ(decision.value().peers[0].peer_id, 1u);
  EXPECT_EQ(decision.value().peers[1].peer_id, 2u);
  EXPECT_EQ(decision.value().peers[2].peer_id, 0u);
  // Qualities are recorded and ordered.
  EXPECT_GE(decision.value().peers[0].quality,
            decision.value().peers[1].quality);
}

TEST(CoriRouterTest, IsBlindToOverlap) {
  // Two identical large collections and one smaller complementary one:
  // CORI picks the two redundant big ones first — the failure mode that
  // motivates IQN.
  RoutingFixture fx;
  fx.candidates.push_back(
      MakeCandidate(0, fx.config, {{"term", Range(0, 400)}}));
  fx.candidates.push_back(
      MakeCandidate(1, fx.config, {{"term", Range(0, 400)}}));  // duplicate
  fx.candidates.push_back(
      MakeCandidate(2, fx.config, {{"term", Range(5000, 5200)}}));
  CoriRouter router;
  auto decision = router.Route(fx.Input(2));
  ASSERT_TRUE(decision.ok());
  std::set<uint64_t> picked;
  for (const auto& p : decision.value().peers) picked.insert(p.peer_id);
  EXPECT_TRUE(picked.count(0));
  EXPECT_TRUE(picked.count(1));
  EXPECT_FALSE(picked.count(2));
}

TEST(SimpleOverlapRouterTest, AvoidsPeersRedundantWithInitiator) {
  RoutingFixture fx;
  fx.local_docs = Range(0, 400);  // the initiator already has 0..399
  fx.candidates.push_back(
      MakeCandidate(0, fx.config, {{"term", Range(0, 400)}}));  // redundant
  fx.candidates.push_back(
      MakeCandidate(1, fx.config, {{"term", Range(1000, 1400)}}));  // novel
  SimpleOverlapRouter router;
  auto decision = router.Route(fx.Input(1));
  ASSERT_TRUE(decision.ok());
  ASSERT_EQ(decision.value().peers.size(), 1u);
  EXPECT_EQ(decision.value().peers[0].peer_id, 1u);
  EXPECT_GT(decision.value().peers[0].novelty, 0.0);
}

TEST(SimpleOverlapRouterTest, BlindToMutualRedundancyAmongCandidates) {
  // The documented weakness vs IQN: two candidates identical to EACH
  // OTHER (but novel vs the initiator) both rank at the top.
  RoutingFixture fx;
  fx.local_docs = Range(9000, 9100);
  fx.candidates.push_back(
      MakeCandidate(0, fx.config, {{"term", Range(0, 400)}}));
  fx.candidates.push_back(
      MakeCandidate(1, fx.config, {{"term", Range(0, 400)}}));  // same docs
  fx.candidates.push_back(
      MakeCandidate(2, fx.config, {{"term", Range(1000, 1300)}}));
  SimpleOverlapRouter router;
  auto decision = router.Route(fx.Input(2));
  ASSERT_TRUE(decision.ok());
  std::set<uint64_t> picked;
  for (const auto& p : decision.value().peers) picked.insert(p.peer_id);
  // The two mutually-redundant 400-doc peers beat the 300-doc one.
  EXPECT_TRUE(picked.count(0));
  EXPECT_TRUE(picked.count(1));
}

TEST(SimpleOverlapRouterTest, RequiresSynopsisConfig) {
  RoutingFixture fx;
  fx.candidates.push_back(MakeCandidate(0, fx.config, {{"term", Range(0, 5)}}));
  RoutingInput input = fx.Input(1);
  input.synopsis_config = nullptr;
  SimpleOverlapRouter router;
  EXPECT_FALSE(router.Route(input).ok());
}

TEST(ComputeQueryTermStatsTest, AssemblesPerTermPeerLists) {
  RoutingFixture fx;
  fx.query.terms = {"a", "b"};
  fx.candidates.push_back(MakeCandidate(0, fx.config,
                                        {{"a", Range(0, 10)},
                                         {"b", Range(10, 20)}},
                                        /*term_space_size=*/100));
  fx.candidates.push_back(
      MakeCandidate(1, fx.config, {{"a", Range(0, 10)}}, 300));
  auto stats = ComputeQueryTermStats(fx.Input(2));
  EXPECT_EQ(stats["a"].collection_frequency, 2u);
  EXPECT_EQ(stats["b"].collection_frequency, 1u);
  EXPECT_DOUBLE_EQ(stats["a"].avg_term_space, 200.0);
  EXPECT_DOUBLE_EQ(stats["b"].avg_term_space, 100.0);
}

}  // namespace
}  // namespace iqn

#include "minerva/post.h"

#include <gtest/gtest.h>

#include "synopses/bloom_filter.h"
#include "synopses/hash_sketch.h"
#include "synopses/min_wise.h"
#include "synopses/serialization.h"

namespace iqn {
namespace {

TEST(SynopsisConfigTest, MakeEmptyMipsDerivesPermutationsFromBits) {
  SynopsisConfig config;  // defaults: MIPs, 2048 bits
  auto syn = config.MakeEmpty();
  ASSERT_TRUE(syn.ok());
  EXPECT_EQ(syn.value()->type(), SynopsisType::kMinWise);
  EXPECT_EQ(static_cast<MinWiseSynopsis*>(syn.value().get())
                ->num_permutations(),
            64u);  // 2048 / 32
  EXPECT_EQ(syn.value()->SizeBits(), 2048u);
}

TEST(SynopsisConfigTest, MakeEmptyBloomUsesBitsDirectly) {
  SynopsisConfig config;
  config.type = SynopsisType::kBloomFilter;
  config.bits = 1024;
  auto syn = config.MakeEmpty();
  ASSERT_TRUE(syn.ok());
  EXPECT_EQ(syn.value()->SizeBits(), 1024u);
  EXPECT_EQ(static_cast<BloomFilter*>(syn.value().get())->num_hashes(),
            config.bloom_hashes);
}

TEST(SynopsisConfigTest, MakeEmptyHashSketchDividesBudget) {
  SynopsisConfig config;
  config.type = SynopsisType::kHashSketch;
  config.bits = 2048;
  config.hash_sketch_bitmap_bits = 64;
  auto syn = config.MakeEmpty();
  ASSERT_TRUE(syn.ok());
  EXPECT_EQ(static_cast<HashSketch*>(syn.value().get())->num_bitmaps(), 32u);
}

TEST(SynopsisConfigTest, BitsOverrideShortensSynopsis) {
  SynopsisConfig config;
  auto syn = config.MakeEmpty(1024);
  ASSERT_TRUE(syn.ok());
  EXPECT_EQ(static_cast<MinWiseSynopsis*>(syn.value().get())
                ->num_permutations(),
            32u);
}

TEST(SynopsisConfigTest, SameSeedSynopsesInteroperate) {
  SynopsisConfig config;
  auto a = config.MakeEmpty();
  auto b = config.MakeEmpty();
  ASSERT_TRUE(a.ok() && b.ok());
  a.value()->Add(1);
  b.value()->Add(1);
  auto r = a.value()->EstimateResemblance(*b.value());
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value(), 1.0);
}

TEST(SynopsisConfigTest, TinyBudgetRejected) {
  SynopsisConfig config;
  EXPECT_FALSE(config.MakeEmpty(16).ok());
}

TEST(SynopsisConfigTest, HistogramRequiresCells) {
  SynopsisConfig config;
  EXPECT_EQ(config.MakeEmptyHistogram().status().code(),
            StatusCode::kFailedPrecondition);
  config.histogram_cells = 4;
  auto hist = config.MakeEmptyHistogram();
  ASSERT_TRUE(hist.ok());
  EXPECT_EQ(hist.value().num_cells(), 4u);
  // Each cell gets bits / cells = 512 bits = 16 permutations.
  EXPECT_EQ(hist.value().SizeBits(), 4u * 16 * 32);
}

Post MakePost() {
  SynopsisConfig config;
  auto syn = config.MakeEmpty();
  EXPECT_TRUE(syn.ok());
  for (DocId id = 0; id < 100; ++id) syn.value()->Add(id);

  Post post;
  post.peer_id = 17;
  post.address = 3;
  post.term = "forest";
  post.list_length = 100;
  post.max_score = 4.5;
  post.avg_score = 1.25;
  post.term_space_size = 4200;
  post.synopsis = SerializeSynopsisToBytes(*syn.value());
  return post;
}

TEST(PostTest, SerializeRoundTrip) {
  Post post = MakePost();
  ByteWriter writer;
  post.Serialize(&writer);
  Bytes bytes = writer.Take();
  ByteReader reader(bytes);
  auto rt = Post::Deserialize(&reader);
  ASSERT_TRUE(rt.ok());
  EXPECT_EQ(rt.value().peer_id, 17u);
  EXPECT_EQ(rt.value().address, 3u);
  EXPECT_EQ(rt.value().term, "forest");
  EXPECT_EQ(rt.value().list_length, 100u);
  EXPECT_DOUBLE_EQ(rt.value().max_score, 4.5);
  EXPECT_DOUBLE_EQ(rt.value().avg_score, 1.25);
  EXPECT_EQ(rt.value().term_space_size, 4200u);
  EXPECT_EQ(rt.value().synopsis, post.synopsis);
  EXPECT_TRUE(rt.value().histogram.empty());
}

TEST(PostTest, DecodeSynopsisRecoversWorkingSynopsis) {
  Post post = MakePost();
  auto syn = post.DecodeSynopsis();
  ASSERT_TRUE(syn.ok());
  EXPECT_EQ(syn.value()->type(), SynopsisType::kMinWise);
  EXPECT_NEAR(syn.value()->EstimateCardinality(), 100.0, 40.0);
}

TEST(PostTest, DecodeHistogramAbsentIsNotFound) {
  Post post = MakePost();
  EXPECT_EQ(post.DecodeHistogram().status().code(), StatusCode::kNotFound);
}

TEST(PostTest, TruncatedDeserializeFails) {
  Post post = MakePost();
  ByteWriter writer;
  post.Serialize(&writer);
  Bytes bytes = writer.Take();
  bytes.resize(bytes.size() / 3);
  ByteReader reader(bytes);
  EXPECT_FALSE(Post::Deserialize(&reader).ok());
}

}  // namespace
}  // namespace iqn

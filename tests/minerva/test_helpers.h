// Shared builders for router tests: construct CandidatePeers whose posts
// carry real serialized synopses over explicit docId ranges.

#ifndef IQN_TESTS_MINERVA_TEST_HELPERS_H_
#define IQN_TESTS_MINERVA_TEST_HELPERS_H_

#include <map>
#include <string>
#include <vector>

#include "minerva/post.h"
#include "minerva/internal/router.h"
#include "synopses/serialization.h"

namespace iqn {
namespace test {

/// Document ranges per term for one synthetic candidate peer.
using TermDocs = std::map<std::string, std::vector<DocId>>;

inline std::vector<DocId> Range(DocId lo, DocId hi) {
  std::vector<DocId> ids;
  for (DocId id = lo; id < hi; ++id) ids.push_back(id);
  return ids;
}

inline CandidatePeer MakeCandidate(uint64_t peer_id,
                                   const SynopsisConfig& config,
                                   const TermDocs& term_docs,
                                   uint64_t term_space_size = 1000) {
  CandidatePeer cand;
  cand.peer_id = peer_id;
  cand.address = peer_id;
  for (const auto& [term, docs] : term_docs) {
    auto syn = config.MakeEmpty();
    EXPECT_TRUE(syn.ok());
    Post post;
    post.peer_id = peer_id;
    post.address = peer_id;
    post.term = term;
    post.list_length = docs.size();
    post.term_space_size = term_space_size;
    for (DocId id : docs) syn.value()->Add(id);
    post.synopsis = SerializeSynopsisToBytes(*syn.value());
    if (config.histogram_cells > 0) {
      auto hist = config.MakeEmptyHistogram();
      EXPECT_TRUE(hist.ok());
      // Synthetic score: position-independent 0.75 (mid-high cell).
      for (DocId id : docs) hist.value().Add(id, 0.75);
      ByteWriter writer;
      SerializeHistogram(hist.value(), &writer);
      post.histogram = writer.Take();
    }
    cand.posts.emplace(term, std::move(post));
  }
  return cand;
}

struct RoutingFixture {
  Query query;
  std::vector<CandidatePeer> candidates;
  std::vector<DocId> local_docs;
  SynopsisConfig config;

  RoutingFixture() {
    query.terms = {"term"};
    query.mode = QueryMode::kDisjunctive;
    query.k = 10;
  }

  RoutingInput Input(size_t max_peers) const {
    RoutingInput input;
    input.query = &query;
    input.candidates = &candidates;
    input.max_peers = max_peers;
    input.total_peers = candidates.size() + 1;
    input.local_result_docs = &local_docs;
    input.synopsis_config = &config;
    return input;
  }
};

}  // namespace test
}  // namespace iqn

#endif  // IQN_TESTS_MINERVA_TEST_HELPERS_H_
